// Command coverfloor enforces a minimum statement-coverage percentage on
// selected packages, reading a Go cover profile (as written by
// go test -coverprofile, any mode). Usage:
//
//	go test -coverprofile=cover.out -coverpkg=./... ./...
//	go run ./scripts/coverfloor -profile cover.out -floor 70 \
//	    rangeagg/internal/serve rangeagg/internal/oracle rangeagg/internal/codec
//
// Each argument names one package import path; the tool prints the
// per-package statement coverage and exits non-zero if any named
// package is below the floor or absent from the profile.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"strconv"
	"strings"
)

func main() {
	profile := flag.String("profile", "cover.out", "cover profile to read")
	floor := flag.Float64("floor", 70, "minimum percent of statements covered per package")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "coverfloor: no packages named")
		os.Exit(2)
	}

	total, covered, err := readProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "coverfloor: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range flag.Args() {
		tot, cov := total[pkg], covered[pkg]
		if tot == 0 {
			fmt.Printf("coverfloor: %-32s no statements in profile\n", pkg)
			failed = true
			continue
		}
		pct := 100 * float64(cov) / float64(tot)
		status := "ok"
		if pct < *floor {
			status = fmt.Sprintf("BELOW FLOOR %.0f%%", *floor)
			failed = true
		}
		fmt.Printf("coverfloor: %-32s %6.1f%% (%d/%d statements) %s\n", pkg, pct, cov, tot, status)
	}
	if failed {
		os.Exit(1)
	}
}

// readProfile aggregates a cover profile into per-package statement
// totals. Profile lines have the form
//
//	name.go:line.col,line.col numStmts hitCount
//
// and a block may appear once per test binary that executed it, so
// statements are deduplicated by block position before counting.
func readProfile(name string) (total, covered map[string]int, err error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	type block struct{ stmts, hits int }
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "mode:") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("malformed profile line %q", line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed statement count in %q", line)
		}
		hits, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, nil, fmt.Errorf("malformed hit count in %q", line)
		}
		b := blocks[fields[0]]
		b.stmts = stmts
		if hits > 0 {
			b.hits = 1
		}
		blocks[fields[0]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}

	total = make(map[string]int)
	covered = make(map[string]int)
	for pos, b := range blocks {
		file := pos[:strings.Index(pos, ":")]
		pkg := path.Dir(file)
		total[pkg] += b.stmts
		if b.hits > 0 {
			covered[pkg] += b.stmts
		}
	}
	return total, covered, nil
}
