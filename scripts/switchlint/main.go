// Command switchlint guards the method-registry refactor: every
// per-method dispatch must live in internal/method's descriptors, so a
// switch over the method enum or over the wire-family strings anywhere
// else is a regression. It walks the module's non-test Go sources
// (internal/method and scripts excluded) and fails on:
//
//   - a switch whose case arms reference method-enum identifiers
//     qualified by the build or method packages (e.g. `case build.SAP0:`)
//   - a switch with two or more case arms matching the wire-family
//     string literals "histogram"/"wavelet"
//
// Usage (from the module root, as CI does):
//
//	go run ./scripts/switchlint
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// methodIdents are the registry's enum identifiers; a case arm naming one
// through the build or method package is a per-method dispatch.
var methodIdents = map[string]bool{
	"Naive": true, "EquiWidth": true, "EquiDepth": true, "MaxDiff": true,
	"VOptimal": true, "PointOpt": true, "A0": true, "SAP0": true,
	"SAP1": true, "OptA": true, "OptARounded": true, "WaveTopBB": true,
	"WaveRangeOpt": true, "WaveAA2D": true, "PrefixOpt": true, "SAP2": true,
	"Segmented": true,
}

var familyStrings = map[string]bool{"histogram": true, "wavelet": true, "segmented": true}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			rel := filepath.ToSlash(path)
			if strings.HasSuffix(rel, "internal/method") || strings.HasSuffix(rel, "scripts") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		findings = append(findings, lintFile(path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "switchlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "switchlint: %d per-method dispatch(es) outside internal/method; move them into registry descriptors\n", len(findings))
		os.Exit(1)
	}
}

func lintFile(path string) []string {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", path, err)}
	}
	var findings []string
	ast.Inspect(file, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		enumHits, families := 0, map[string]bool{}
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, expr := range cc.List {
				ast.Inspect(expr, func(e ast.Node) bool {
					switch v := e.(type) {
					case *ast.SelectorExpr:
						pkg, ok := v.X.(*ast.Ident)
						if ok && (pkg.Name == "build" || pkg.Name == "method") && methodIdents[v.Sel.Name] {
							enumHits++
						}
					case *ast.BasicLit:
						if v.Kind == token.STRING {
							if s, err := strconv.Unquote(v.Value); err == nil && familyStrings[s] {
								families[s] = true
							}
						}
					}
					return true
				})
			}
		}
		pos := fset.Position(sw.Pos())
		if enumHits > 0 {
			findings = append(findings, fmt.Sprintf("%s:%d: switch dispatches on the method enum (%d case references)", pos.Filename, pos.Line, enumHits))
		}
		if len(families) >= 2 {
			findings = append(findings, fmt.Sprintf("%s:%d: switch dispatches on wire-family strings", pos.Filename, pos.Line))
		}
		return true
	})
	return findings
}
