package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: rangeagg
BenchmarkConstructScaling/A0/n=128-8         	    9270	    127486 ns/op	  131455 B/op	     266 allocs/op
BenchmarkConstructScaling/A0/n=128-8         	    9000	    130000 ns/op
BenchmarkConstructScaling/A0/n=128-8         	    9100	    125000 ns/op
BenchmarkServeHTTP/batch-256-8               	     100	   1000000 ns/op
BenchmarkServeHTTP/batch-256-8               	     100	   1200000 ns/op
PASS
ok  	rangeagg	12.3s
`

func TestParseBenchAndMedians(t *testing.T) {
	samples := parseBench(sampleOutput)
	if got := len(samples["ConstructScaling/A0/n=128"]); got != 3 {
		t.Fatalf("A0 samples = %d, want 3", got)
	}
	if got := len(samples["ServeHTTP/batch-256"]); got != 2 {
		t.Fatalf("batch samples = %d, want 2", got)
	}
	stats := reduce(samples)
	if got := stats["ConstructScaling/A0/n=128"]; got.median != 127486 || got.min != 125000 {
		t.Fatalf("odd-count stats = %+v, want median 127486 min 125000", got)
	}
	if got := stats["ServeHTTP/batch-256"]; got.median != 1100000 || got.min != 1000000 {
		t.Fatalf("even-count stats = %+v, want median 1100000 min 1000000", got)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkConstructScaling/SAP0/n=512-16": "ConstructScaling/SAP0/n=512",
		"BenchmarkServeHTTP/single-256-8":         "ServeHTTP/single-256",
		"BenchmarkFoo":                            "Foo",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// steady builds a benchStat whose median and min agree — what a genuine
// code-speed change looks like (every sample shifts together).
func steady(ns float64) benchStat { return benchStat{median: ns, min: ns} }

func TestCompareGate(t *testing.T) {
	baseline := map[string]float64{"a": 1000, "b": 1000, "c": 1000}

	// Within threshold: passes.
	report, failed := compare(baseline,
		map[string]benchStat{"a": steady(1100), "b": steady(950), "c": steady(1000)}, 15, 1)
	if failed {
		t.Fatalf("within-threshold run failed:\n%s", report)
	}

	// A synthetic 2x slowdown on one benchmark fails the gate.
	report, failed = compare(baseline,
		map[string]benchStat{"a": steady(2000), "b": steady(1000), "c": steady(1000)}, 15, 1)
	if !failed || !strings.Contains(report, "REGRESSION") {
		t.Fatalf("2x slowdown not flagged:\n%s", report)
	}

	// Noisy-neighbour contention (median inflated, fastest sample still at
	// baseline speed) is reported but does not fail the gate.
	report, failed = compare(baseline,
		map[string]benchStat{"a": {median: 2000, min: 1010}, "b": steady(1000), "c": steady(1000)}, 15, 1)
	if failed || !strings.Contains(report, "noisy") {
		t.Fatalf("contention noise mishandled:\n%s", report)
	}

	// A benchmark missing from the run fails too.
	report, failed = compare(baseline,
		map[string]benchStat{"a": steady(1000), "b": steady(1000)}, 15, 1)
	if !failed || !strings.Contains(report, "MISSING") {
		t.Fatalf("missing benchmark not flagged:\n%s", report)
	}

	// Large improvements are reported but never fail.
	report, failed = compare(baseline,
		map[string]benchStat{"a": steady(100), "b": steady(1000), "c": steady(1000)}, 15, 1)
	if failed || !strings.Contains(report, "improved") {
		t.Fatalf("improvement mishandled:\n%s", report)
	}

	// New benchmarks absent from the baseline are reported, not gated.
	report, failed = compare(baseline,
		map[string]benchStat{"a": steady(1000), "b": steady(1000), "c": steady(1000), "d": steady(5)}, 15, 1)
	if failed || !strings.Contains(report, "not in baseline") {
		t.Fatalf("new benchmark mishandled:\n%s", report)
	}
}

func TestCompareCalibrationScale(t *testing.T) {
	baseline := map[string]float64{"a": 1000, "b": 1000}

	// A host running everything 2x slower (calibration ratio 2) is not a
	// regression once scaled.
	report, failed := compare(baseline,
		map[string]benchStat{"a": steady(2000), "b": steady(2000)}, 15, 2)
	if failed {
		t.Fatalf("uniform host slowdown flagged despite calibration:\n%s", report)
	}

	// A genuine 2x code slowdown on the same 2x-slower host (4x raw) still
	// fails after scaling.
	report, failed = compare(baseline,
		map[string]benchStat{"a": steady(4000), "b": steady(2000)}, 15, 2)
	if !failed || !strings.Contains(report, "REGRESSION") {
		t.Fatalf("scaled code regression not flagged:\n%s", report)
	}
}
