// Command benchdiff is the benchmark-regression gate: it runs the gated
// benchmarks several times, takes the per-benchmark median ns/op, and
// compares it against the committed baseline (BENCH_baseline.json),
// failing when any benchmark regressed by more than the threshold.
//
//	go run ./scripts/benchdiff                 # compare against the baseline
//	go run ./scripts/benchdiff -update         # refresh the baseline (make bench-baseline)
//	go run ./scripts/benchdiff -threshold 10   # tighter gate
//
// Two defenses keep the gate honest on shared hardware. First, a fixed
// calibration loop is timed alongside the benchmarks and stored in the
// baseline; comparisons are scaled by the calibration ratio so a host
// that is uniformly slower (CPU steal, a weaker runner class) does not
// read as a code regression — and a real regression cannot hide in the
// calibration loop, which runs no repository code. Second, the gate
// compares the median-of-N ns/op but only fails when the fastest sample
// regressed past the threshold too: a real slowdown shifts every
// sample, while transient contention inflates some and leaves others
// near baseline. Improvements are reported but never fail the gate;
// refresh the baseline when they should stick.
//
// Exit status: 0 ok, 1 regression (or benchmarks missing from the run),
// 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// baselineFile is the committed BENCH_baseline.json: the flags the
// medians were collected under, and median ns/op per benchmark (names
// without the Benchmark prefix or the -GOMAXPROCS suffix, so baselines
// compare across machines with different core counts).
type baselineFile struct {
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	Go        string `json:"go"`
	Note      string `json:"note,omitempty"`
	// CalibrationNs is the reference-loop time measured alongside the
	// baseline run; comparisons are scaled by the ratio of the current
	// machine's calibration to this, so a uniformly slower (or faster)
	// host does not read as a code regression.
	CalibrationNs float64            `json:"calibration_ns"`
	NsPerOp       map[string]float64 `json:"ns_per_op"`
}

func main() {
	var (
		bench     = flag.String("bench", "ConstructScaling|ServeHTTP|PlannerPaths|SegmentedRebuild|RouterFanout|IngestSustained", "benchmark regex to gate")
		pkg       = flag.String("pkg", ".", "package pattern holding the benchmarks")
		count     = flag.Int("count", 6, "benchmark repetitions (median taken per benchmark)")
		benchtime = flag.String("benchtime", "300ms", "per-run benchtime")
		baseline  = flag.String("baseline", "BENCH_baseline.json", "committed baseline file")
		threshold = flag.Float64("threshold", 15, "max allowed regression percent on the median")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	)
	flag.Parse()

	// Collect the samples over several separate go test invocations rather
	// than one -count=N run: inside one run a benchmark's N samples are
	// back-to-back, so a single contention burst inflates them all (min
	// included); spreading them across passes minutes apart means at least
	// one pass usually sees the machine unhindered.
	passes := 3
	if *count < passes {
		passes = *count
	}
	perPass := *count / passes
	cal := calibrate()
	var outs strings.Builder
	for p := 0; p < passes; p++ {
		n := perPass
		if p == passes-1 {
			n = *count - perPass*(passes-1)
		}
		out, err := runBenchmarks(*pkg, *bench, *benchtime, n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n%s\n", err, out)
			os.Exit(2)
		}
		outs.WriteString(out)
		outs.WriteByte('\n')
		cal = math.Min(cal, calibrate())
	}
	stats := reduce(parseBench(outs.String()))
	if len(stats) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmarks matched %q\n", *bench)
		os.Exit(2)
	}

	if *update {
		meds := make(map[string]float64, len(stats))
		for name, s := range stats {
			meds[name] = s.median
		}
		bf := baselineFile{
			Bench: *bench, Benchtime: *benchtime, Count: *count,
			Go:            runtime.Version(),
			Note:          "refresh with `make bench-baseline` after intentional perf changes",
			CalibrationNs: cal,
			NsPerOp:       meds,
		}
		raw, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baseline, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: wrote %s (%d benchmarks)\n", *baseline, len(meds))
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: reading baseline: %v (run with -update to create it)\n", err)
		os.Exit(2)
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: parsing %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	scale := 1.0
	if bf.CalibrationNs > 0 && cal > 0 {
		scale = cal / bf.CalibrationNs
		fmt.Printf("benchdiff: machine scale %.2fx vs baseline (calibration %.0f -> %.0f ns)\n",
			scale, bf.CalibrationNs, cal)
	}
	report, failed := compare(bf.NsPerOp, stats, *threshold, scale)
	fmt.Print(report)
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: FAIL — median regression beyond %.0f%% (refresh via `make bench-baseline` only for intentional changes)\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: ok — %d benchmarks within %.0f%% of baseline\n", len(bf.NsPerOp), *threshold)
}

// runBenchmarks shells out to go test and returns the combined output.
func runBenchmarks(pkg, bench, benchtime string, count int) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchtime", benchtime, "-count", strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// calibrate times a fixed single-core integer workload and returns the
// fastest of several rounds in nanoseconds. The loop exercises nothing
// from the repository, so a code regression cannot hide in it, while
// host-level slowness (CPU steal, thermal throttling, a slower runner)
// inflates it in the same proportion as the benchmarks.
func calibrate() float64 {
	const rounds = 5
	best := math.MaxFloat64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		x := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < 1<<23; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calSink = x
		if ns := float64(time.Since(start).Nanoseconds()); ns < best {
			best = ns
		}
	}
	return best
}

// calSink keeps the calibration loop from being optimized away.
var calSink uint64

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.eE+]+) ns/op`)

// parseBench extracts every ns/op sample from go test -bench output,
// keyed by normalized benchmark name (Benchmark prefix and -GOMAXPROCS
// suffix stripped). With -count > 1 each benchmark yields several
// samples.
func parseBench(out string) map[string][]float64 {
	samples := make(map[string][]float64)
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		name := normalizeName(m[1])
		samples[name] = append(samples[name], ns)
	}
	return samples
}

var procsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return procsSuffix.ReplaceAllString(strings.TrimPrefix(name, "Benchmark"), "")
}

// benchStat is one benchmark's reduced samples: the median ns/op (the
// point estimate reported and stored in baselines) and the minimum (the
// noise filter — the machine's best demonstrated speed this run).
type benchStat struct {
	median float64
	min    float64
}

// reduce collapses each benchmark's samples to median and min (median is
// the mean of the two middle samples for even counts).
func reduce(samples map[string][]float64) map[string]benchStat {
	out := make(map[string]benchStat, len(samples))
	for name, s := range samples {
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		n := len(sorted)
		med := sorted[n/2]
		if n%2 == 0 {
			med = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		out[name] = benchStat{median: med, min: sorted[0]}
	}
	return out
}

// compare renders the per-benchmark delta table and reports failure when
// any baseline benchmark regressed beyond thresholdPct or is missing
// from the run (a silently vanished benchmark must not pass the gate).
// Current samples are divided by scale (this machine's calibration-loop
// time relative to the baseline machine's) before comparing, and a
// regression additionally requires both the median and the fastest
// sample to exceed the threshold: when only the median does, some
// samples still hit the baseline speed, so the slowdown is scheduler
// noise, not the code.
func compare(baseline map[string]float64, current map[string]benchStat, thresholdPct, scale float64) (string, bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	failed := false
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(&b, "%-60s MISSING from run (baseline %.0f ns/op)\n", name, base)
			failed = true
			continue
		}
		delta := 100 * (cur.median/scale - base) / base
		deltaMin := 100 * (cur.min/scale - base) / base
		status := "ok"
		switch {
		case delta > thresholdPct && deltaMin > thresholdPct:
			status = "REGRESSION"
			failed = true
		case delta > thresholdPct:
			status = fmt.Sprintf("noisy (min %+.1f%%)", deltaMin)
		case delta < -thresholdPct:
			status = "improved"
		}
		fmt.Fprintf(&b, "%-60s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n", name, base, cur.median/scale, delta, status)
	}
	extra := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(&b, "%-60s %12s    %12.0f ns/op   (new — not in baseline, refresh to gate it)\n",
			name, "-", current[name].median)
	}
	return b.String(), failed
}
