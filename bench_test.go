package rangeagg

// The benchmark harness: one benchmark per experiment table/figure of
// DESIGN.md §6 (regenerating the table body each iteration), plus
// construction-cost and query-latency ablations (E8). Run with
//
//	go test -bench=. -benchmem
//
// cmd/synbench prints the same tables with their values for inspection.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"rangeagg/internal/advisor"
	"rangeagg/internal/build"
	"rangeagg/internal/cluster"
	"rangeagg/internal/core"
	"rangeagg/internal/dataset"
	"rangeagg/internal/dp"
	"rangeagg/internal/engine"
	"rangeagg/internal/experiments"
	"rangeagg/internal/ingest"
	"rangeagg/internal/parallel"
	"rangeagg/internal/plan"
	"rangeagg/internal/prefix"
	"rangeagg/internal/serve"
)

// benchCfg keeps per-iteration work bounded: the paper's dataset with two
// representative budgets.
func benchCfg(b *testing.B) experiments.Config {
	b.Helper()
	d, err := dataset.Zipf(dataset.DefaultPaper())
	if err != nil {
		b.Fatal(err)
	}
	return experiments.Config{Data: d, Budgets: []int{16, 32}, Seed: 1}
}

func benchTable(b *testing.B, run func(experiments.Config) (*experiments.Table, error)) {
	cfg := benchCfg(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Fig1 regenerates Figure 1 (all nine series).
func BenchmarkE1Fig1(b *testing.B) { benchTable(b, experiments.Fig1) }

// BenchmarkE2PointOptRatio regenerates the POINT-OPT/OPT-A ratio table.
func BenchmarkE2PointOptRatio(b *testing.B) { benchTable(b, experiments.PointOptRatio) }

// BenchmarkE3Sap1Ratio regenerates the SAP1/OPT-A ratio table.
func BenchmarkE3Sap1Ratio(b *testing.B) { benchTable(b, experiments.Sap1Ratio) }

// BenchmarkE4Sap0Rank regenerates the SAP0 ranking table.
func BenchmarkE4Sap0Rank(b *testing.B) { benchTable(b, experiments.Sap0Rank) }

// BenchmarkE5Reopt regenerates the A-reopt improvement table.
func BenchmarkE5Reopt(b *testing.B) { benchTable(b, experiments.ReoptGain) }

// BenchmarkE6Wavelet regenerates the wavelet comparison table.
func BenchmarkE6Wavelet(b *testing.B) { benchTable(b, experiments.WaveletStudy) }

// BenchmarkE7Rounded regenerates the OPT-A-ROUNDED sweep.
func BenchmarkE7Rounded(b *testing.B) {
	cfg := benchCfg(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.RoundedSweep(cfg, 16, []int64{1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstruct measures per-method construction cost on the paper's
// dataset at 32 words (E8a).
func BenchmarkConstruct(b *testing.B) {
	counts := PaperCounts()
	for _, m := range Methods() {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Epsilon feeds the approximate families (required) and
				// OPT-A-ROUNDED's quality target; exact methods ignore it.
				if _, err := Build(counts, Options{Method: m, BudgetWords: 32, Seed: 1, Epsilon: 0.25}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConstructScaling measures how the polynomial constructions
// scale with the domain size (E8b). OPT-A is excluded here — its
// pseudo-polynomial cost is studied separately in E7/BenchmarkOptAExact.
func BenchmarkConstructScaling(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		counts, err := ZipfCounts(n, 1.8, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []Method{A0, SAP0, SAP1, PointOpt, WaveRangeOpt} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Build(counts, Options{Method: m, BudgetWords: 32, Seed: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	// The near-linear approximate families extend the grid three orders of
	// magnitude past where the exact O(n²B) DPs stop — the exact series
	// above is untouched so the regression baseline stays comparable.
	for _, n := range []int{8192, 65536, 1048576} {
		counts, err := ZipfCounts(n, 1.8, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []Method{A0Approx, SAP0Approx, PointOptApprox} {
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Build(counts, Options{Method: m, BudgetWords: 32, Seed: 1, Epsilon: 0.1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkConstructSerialVsParallel pins the DP worker pool's effect on
// the heavy constructions: the same build at pool width 1 (the serial
// rolling-row kernels) and at the machine's width. Output is identical at
// both widths; only wall-clock should differ (on multi-core hosts).
func BenchmarkConstructSerialVsParallel(b *testing.B) {
	for _, n := range []int{1024, 2048} {
		counts, err := ZipfCounts(n, 1.8, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []Method{SAP0, SAP1} {
			for _, workers := range []int{1, 0} { // 0 = GOMAXPROCS
				name := fmt.Sprintf("%s/n=%d/workers=max", m, n)
				if workers == 1 {
					name = fmt.Sprintf("%s/n=%d/workers=1", m, n)
				}
				b.Run(name, func(b *testing.B) {
					prev := parallel.SetWorkers(workers)
					defer parallel.SetWorkers(prev)
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := Build(counts, Options{Method: m, BudgetWords: 32, Seed: 1}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkDPKernel isolates the DP layer itself: the seed's 2-D
// closure-dispatch implementation (dp.SolveReference) against the
// rewritten rolling-row driver with the inlined SAP0 kernel — the
// before/after pair recorded in BENCH_dp.json.
func BenchmarkDPKernel(b *testing.B) {
	for _, n := range []int{512, 1024, 2048} {
		counts, err := ZipfCounts(n, 1.8, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		tab := prefix.NewTable(counts)
		const buckets = 10 // SAP0 units of a 32-word budget
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			cost := dp.SAP0Cost(tab)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dp.SolveReference(tab.N(), buckets, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("closure/n=%d", n), func(b *testing.B) {
			cost := dp.SAP0Cost(tab)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dp.Solve(tab.N(), buckets, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdvisorSweep measures the advisor's concurrent candidate sweep
// (the polynomial methods at one budget).
func BenchmarkAdvisorSweep(b *testing.B) {
	counts := PaperCounts()
	cfg := advisor.Config{BudgetWords: 32, Methods: []build.Method{
		build.EquiWidth, build.EquiDepth, build.MaxDiff, build.PointOpt,
		build.A0, build.SAP0, build.SAP1, build.WaveTopBB,
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := advisor.Recommend(counts, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptAExact measures the exact pseudo-polynomial DP on the
// paper's dataset across bucket budgets (E8c).
func BenchmarkOptAExact(b *testing.B) {
	counts := PaperCounts()
	for _, words := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("words=%d", words), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(counts, Options{Method: OptA, BudgetWords: words, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQuery measures per-query answering latency of each synopsis
// type (E8d).
func BenchmarkQuery(b *testing.B) {
	counts := PaperCounts()
	n := len(counts)
	queries := RandomRanges(n, 1024, 7)
	for _, m := range []Method{A0, SAP0, SAP1, WaveTopBB, WaveRangeOpt, WaveAA2D} {
		syn, err := Build(counts, Options{Method: m, BudgetWords: 32, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				sink += syn.Estimate(q.A, q.B)
			}
			_ = sink
		})
	}
}

// BenchmarkSSEEvaluation compares the O(n) prefix-identity SSE evaluator
// against the O(n²) definition (E8e) — the evaluation substrate itself.
func BenchmarkSSEEvaluation(b *testing.B) {
	counts := PaperCounts()
	syn, err := Build(counts, Options{Method: A0, BudgetWords: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = SSE(counts, syn)
		}
	})
	b.Run("workload-4k", func(b *testing.B) {
		qs := RandomRanges(len(counts), 4096, 3)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Evaluate(counts, syn, qs)
		}
	})
}

// BenchmarkE10TwoDim regenerates the 2-D extension table.
func BenchmarkE10TwoDim(b *testing.B) {
	cfg := benchCfg(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.TwoDim(cfg, 16, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9PrefixStudy regenerates the restricted-class comparison.
func BenchmarkE9PrefixStudy(b *testing.B) { benchTable(b, experiments.PrefixStudy) }

// BenchmarkQuery2D measures rectangle-query latency of the 2-D synopses.
func BenchmarkQuery2D(b *testing.B) {
	counts := make([][]int64, 64)
	for r := range counts {
		counts[r] = make([]int64, 64)
		for c := range counts[r] {
			counts[r][c] = int64((r*c)%17 + 1)
		}
	}
	queries := RandomRects(64, 64, 1024, 3)
	for _, m := range Methods2D() {
		syn, err := Build2D(counts, m, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += syn.Estimate(queries[i%len(queries)])
			}
			_ = sink
		})
	}
}

// BenchmarkE11Heuristics regenerates the heuristic-improvement study.
func BenchmarkE11Heuristics(b *testing.B) { benchTable(b, experiments.HeuristicStudy) }

// BenchmarkWarmupVsImproved contrasts the paper's §2.1.1 warm-up DP with
// the §2.1.2 improved DP on a small instance (E8f): same optimum, far
// fewer states for the improved algorithm.
func BenchmarkWarmupVsImproved(b *testing.B) {
	counts, err := ZipfCounts(24, 1.8, 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	tab := prefix.NewTable(counts)
	b.Run("warmup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OptAWarmup(tab, 4, core.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("improved", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OptA(tab, 4, core.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// serveBench builds a serving stack on a Zipf domain with one SAP1
// synopsis, plus a fixed workload of 256 synopsis queries.
func serveBench(b *testing.B) (*serve.Server, []serve.Query) {
	b.Helper()
	const n = 2048
	counts, err := ZipfCounts(n, 1.8, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New("bench", n)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		b.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "h", Metric: engine.Count, Options: build.Options{Method: build.SAP1, BudgetWords: 64}},
	}
	srv, err := serve.New(eng, specs, serve.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	rng := rand.New(rand.NewSource(9))
	qs := make([]serve.Query, 256)
	for i := range qs {
		a := rng.Intn(n)
		qs[i] = serve.Query{Synopsis: "h", A: a, B: a + rng.Intn(n-a)}
	}
	return srv, qs
}

// BenchmarkServeQuery contrasts 256 single Query calls with one
// QueryBatch over the same 256 ranges — one snapshot load and one
// synopsis lookup amortized over the batch. Each op answers 256 queries
// in both cases, so ns/op compares directly.
func BenchmarkServeQuery(b *testing.B) {
	srv, qs := serveBench(b)
	b.Run("single-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := srv.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			results, _ := srv.QueryBatch(qs)
			if results[0].Err != nil {
				b.Fatal(results[0].Err)
			}
		}
	})
}

// BenchmarkServeHTTP measures the served throughput the issue targets:
// answering 256 queries as 256 single /query requests versus one
// /query/batch request. Batching amortizes the per-request HTTP and
// JSON overhead, which dominates single-query serving cost.
func BenchmarkServeHTTP(b *testing.B) {
	srv, qs := serveBench(b)
	ts := httptest.NewServer(serve.NewHandler(srv, serve.NewMetrics()))
	b.Cleanup(ts.Close)
	client := ts.Client()

	urls := make([]string, len(qs))
	for i, q := range qs {
		urls[i] = fmt.Sprintf("%s/query?syn=h&a=%d&b=%d", ts.URL, q.A, q.B)
	}
	ranges := make([][2]int, len(qs))
	for i, q := range qs {
		ranges[i] = [2]int{q.A, q.B}
	}
	body, err := json.Marshal(map[string]any{"synopsis": "h", "ranges": ranges})
	if err != nil {
		b.Fatal(err)
	}

	do := func(b *testing.B, req *http.Request) {
		b.Helper()
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.Run("single-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, u := range urls {
				req, err := http.NewRequest(http.MethodGet, u, nil)
				if err != nil {
					b.Fatal(err)
				}
				do(b, req)
			}
		}
	})
	b.Run("batch-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/query/batch", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			do(b, req)
		}
	})
}

// plannerBench builds a serving stack for the error-budget planner: two
// Count synopses — a coarse histogram probed first (cheapest by storage
// words) and a finer one escalation reaches — plus a zipf-skewed
// workload of 256 budget queries. Each query's budget is the fine
// synopsis's own bound on its range, so the fine synopsis exactly
// satisfies it while the coarse one fails: every cache miss pays both
// synopses' estimate+bound (the wavelet's is O(coefficients)), every
// hit pays two cache probes.
func plannerBench(b testing.TB, cacheEntries int) (*serve.Server, []serve.Query) {
	b.Helper()
	const n = 2048
	counts, err := ZipfCounts(n, 1.8, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New("planner-bench", n)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		b.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "coarse", Metric: engine.Count, Options: build.Options{Method: build.EquiWidth, BudgetWords: 16}},
		{Name: "fine", Metric: engine.Count, Options: build.Options{Method: build.WaveTopBB, BudgetWords: 256}},
	}
	srv, err := serve.New(eng, specs, serve.Config{CacheEntries: cacheEntries})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)

	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.4, 4, 63)
	// Every pool range starts in the zipf head, where the coarse
	// histogram's buckets average wildly varying counts and its bound is
	// large; the wavelet keeps the head coefficients and bounds tightly.
	pool := make([][2]int, 64)
	for i := range pool {
		a := rng.Intn(48)
		pool[i] = [2]int{a, a + n/4 + rng.Intn(n/2)}
	}
	view := srv.Snapshot().View(engine.Count)
	fine := view.SourceIndex("fine")
	if fine < 0 {
		b.Fatal("fine synopsis missing from view")
	}
	budgets := make([]float64, len(pool))
	for j, r := range pool {
		bound, _, ok := view.Sources[fine].Bound(r[0], r[1])
		if !ok {
			b.Fatalf("fine synopsis has no bound on [%d,%d]", r[0], r[1])
		}
		budgets[j] = bound
	}
	qs := make([]serve.Query, 256)
	for i := range qs {
		j := zipf.Uint64()
		r := pool[j]
		qs[i] = serve.Query{Metric: engine.Count, A: r[0], B: r[1], MaxErr: &budgets[j]}
	}
	return srv, qs
}

// BenchmarkPlannerPaths measures the per-answer cost of each planner
// path in isolation (cache-hit, uncached probe, escalation to the exact
// tables) and then the headline workload the cache exists for: a
// zipf-skewed batch of 256 budget queries with the hot-range cache on
// versus off. The per-batch p99 is reported as p99-ns/batch; with the
// skewed pool almost entirely resident after the first batch, cache-on
// must beat cache-off by at least 2x.
func BenchmarkPlannerPaths(b *testing.B) {
	b.Run("cache-hit", func(b *testing.B) {
		srv, qs := plannerBench(b, 0)
		if res, _ := srv.QueryOne(qs[0]); res.Err != nil { // warm the cache
			b.Fatal(res.Err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, _ := srv.QueryOne(qs[0])
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Path != plan.PathCache {
				b.Fatalf("path %s, want cache", res.Path)
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		srv, qs := plannerBench(b, -1) // cache disabled: every op recomputes
		q := qs[0]
		q.MaxErr = nil
		q.Synopsis = "coarse"
		q.Metric = 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, _ := srv.QueryOne(q)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Path != plan.PathProbe {
				b.Fatalf("path %s, want probe", res.Path)
			}
		}
	})
	b.Run("escalate-to-exact", func(b *testing.B) {
		srv, qs := plannerBench(b, -1)
		q := qs[0]
		zero := 0.0
		q.MaxErr = &zero // no synopsis meets a zero budget
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, _ := srv.QueryOne(q)
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Path != plan.PathExact {
				b.Fatalf("path %s, want exact", res.Path)
			}
		}
	})
	for _, bc := range []struct {
		name    string
		entries int
	}{
		{"zipf-batch-256/cache-on", 0},
		{"zipf-batch-256/cache-off", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			srv, qs := plannerBench(b, bc.entries)
			if results, _ := srv.QueryBatch(qs); results[0].Err != nil { // warm
				b.Fatal(results[0].Err)
			}
			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				results, _ := srv.QueryBatch(qs)
				lat = append(lat, time.Since(start))
				if results[0].Err != nil {
					b.Fatal(results[0].Err)
				}
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			p99 := lat[len(lat)*99/100]
			b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/batch")
		})
	}
}

// BenchmarkSegmentedRebuild measures the tentpole claim of the segmented
// architecture: after a point mutation, refreshing a K=8 segmented
// synopsis (one dirty segment rebuilt, seven carried over) versus the
// full monolithic rebuild it replaces, both through the engine at
// n=65536 with the same word budget and including the per-range error
// model. The dirty path must stay well ahead (≥3× in CI's gate).
func BenchmarkSegmentedRebuild(b *testing.B) {
	const n = 65536
	d, err := dataset.Zipf(dataset.ZipfConfig{N: n, Alpha: 1.2, MaxCount: 1000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, opt build.Options) {
		eng, err := engine.New("bench", n)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Load(d.Counts); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.BuildSynopsis("s", engine.Count, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The O(1) insert rides inside the timed region: it is noise-level
			// next to the rebuild, and stopping the timer around it costs
			// more jitter than it removes.
			if err := eng.Insert(100+i%64, 1); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.BuildSynopsis("s", engine.Count, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("dirty-1-of-8", func(b *testing.B) {
		run(b, build.Options{Method: build.Segmented, BudgetWords: 256, Segments: 8})
	})
	b.Run("full-monolithic", func(b *testing.B) {
		run(b, build.Options{Method: build.A0Approx, BudgetWords: 256, Epsilon: 0.1})
	})
}

// ingestBench builds the streaming-ingest serving stack: a segmented
// synopsis over a zipf domain at n=65536, explicit-rebuild debounce (the
// benchmark drives publishes itself), and the requested maintenance
// mode. Returned queries are a zipf-skewed 256-range batch pinned to the
// synopsis — the concurrent read workload.
func ingestBench(b *testing.B, mode ingest.Mode) (*serve.Server, []serve.Query) {
	b.Helper()
	const n = 65536
	counts, err := ZipfCounts(n, 1.2, 1000, 3)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New("ingest-bench", n)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		b.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "seg", Metric: engine.Count, Options: build.Options{Method: build.Segmented, BudgetWords: 256, Segments: 8}},
	}
	srv, err := serve.New(eng, specs, serve.Config{
		Debounce: time.Hour,
		Ingest:   ingest.Config{Mode: mode},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	if err := srv.Rebuild(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	zipf := rand.NewZipf(rng, 1.3, 8, n/4)
	qs := make([]serve.Query, 256)
	for i := range qs {
		a := int(zipf.Uint64())
		qs[i] = serve.Query{Synopsis: "seg", A: a, B: a + n/8 + rng.Intn(n/4)}
	}
	return srv, qs
}

// p99Of reports the 99th-percentile batch latency as p99-ns/batch.
func p99Of(b *testing.B, lat []time.Duration) {
	b.Helper()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns/batch")
}

// BenchmarkIngestSustained measures the tentpole claim of the streaming
// maintenance layer: sustained insert→publish throughput with a
// concurrent batch-read workload, incremental maintenance versus the
// rebuild-per-mutation pattern it replaces, both at n=65536 on the same
// segmented spec. Each op is one zipf insert plus one publish, so ns/op
// is the sustained per-mutation cost (inserts/sec is also reported); the
// concurrent reader's p99 batch latency rides along as p99-ns/batch,
// with a read-only run as its reference. The incremental path must stay
// a decimal order ahead of rebuild-per-mutation, and its reader p99
// within 2x of read-only — benchdiff gates both ns/op entries against
// the committed baseline.
func BenchmarkIngestSustained(b *testing.B) {
	writes := func(b *testing.B, mode ingest.Mode) {
		srv, qs := ingestBench(b, mode)
		rng := rand.New(rand.NewSource(11))
		zipf := rand.NewZipf(rng, 1.3, 8, 65535)
		stop := make(chan struct{})
		latC := make(chan []time.Duration, 1)
		go func() {
			var lat []time.Duration
			for {
				select {
				case <-stop:
					latC <- lat
					return
				default:
				}
				start := time.Now()
				results, _ := srv.QueryBatch(qs)
				lat = append(lat, time.Since(start))
				if results[0].Err != nil {
					lat = nil // surfaces as a missing p99 metric
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.Insert(int(zipf.Uint64()), 1); err != nil {
				b.Fatal(err)
			}
			if err := srv.Rebuild(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		close(stop)
		p99Of(b, <-latC)
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "inserts/sec")
	}
	b.Run("incremental", func(b *testing.B) { writes(b, ingest.ModeIncremental) })
	b.Run("rebuild-per-mutation", func(b *testing.B) { writes(b, ingest.ModeRebuild) })
	b.Run("read-only", func(b *testing.B) {
		srv, qs := ingestBench(b, ingest.ModeIncremental)
		lat := make([]time.Duration, 0, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			results, _ := srv.QueryBatch(qs)
			lat = append(lat, time.Since(start))
			if results[0].Err != nil {
				b.Fatal(results[0].Err)
			}
		}
		b.StopTimer()
		p99Of(b, lat)
	})
}

// routerBench fronts a k-node cluster with a fan-out router: each node
// runs a full-domain engine holding only its owned slice of the zipf
// counts, behind a real HTTP server. Returned ranges mirror serveBench's
// 256-query workload so RouterFanout is comparable to ServeHTTP.
func routerBench(b *testing.B, k int) (*cluster.Router, [][2]int) {
	b.Helper()
	const n = 2048
	counts, err := ZipfCounts(n, 1.8, 1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "h", Metric: engine.Count, Options: build.Options{Method: build.SAP1, BudgetWords: 64}},
	}
	type nodeJSON struct {
		ID     string `json:"id"`
		Addr   string `json:"addr"`
		Window [2]int `json:"window"`
	}
	nodes := make([]nodeJSON, k)
	width := n / k
	for i := 0; i < k; i++ {
		lo, hi := i*width, (i+1)*width-1
		if i == k-1 {
			hi = n - 1
		}
		owned := make([]int64, n)
		copy(owned[lo:hi+1], counts[lo:hi+1])
		eng, err := engine.New(fmt.Sprintf("bn%d", i), n)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Load(owned); err != nil {
			b.Fatal(err)
		}
		srv, err := serve.New(eng, specs, serve.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		ts := httptest.NewServer(serve.NewHandler(srv, serve.NewMetrics()))
		b.Cleanup(ts.Close)
		nodes[i] = nodeJSON{ID: fmt.Sprintf("bn%d", i), Addr: ts.URL, Window: [2]int{lo, hi}}
	}
	raw, err := json.Marshal(map[string]any{"domain": n, "nodes": nodes})
	if err != nil {
		b.Fatal(err)
	}
	topo, err := cluster.Parse(raw)
	if err != nil {
		b.Fatal(err)
	}
	router := cluster.NewRouter(topo, cluster.RouterConfig{HealthEvery: -1})
	b.Cleanup(router.Close)

	rng := rand.New(rand.NewSource(9))
	ranges := make([][2]int, 256)
	for i := range ranges {
		a := rng.Intn(n)
		ranges[i] = [2]int{a, a + rng.Intn(n-a)}
	}
	return router, ranges
}

// BenchmarkRouterFanout measures the routed query path over a 4-node
// cluster: 256 single fan-out/merge round trips versus one routed batch
// (which groups sub-ranges per node into one /query/batch each). The
// batch form amortizes both the HTTP overhead and the fan-out, so it is
// the served configuration the cluster quickstart recommends.
func BenchmarkRouterFanout(b *testing.B) {
	router, ranges := routerBench(b, 4)
	ctx := context.Background()
	b.Run("route-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, rg := range ranges {
				if _, err := router.Route(ctx, cluster.Query{Synopsis: "h", A: rg[0], B: rg[1]}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := router.RouteBatch(ctx, "h", "", ranges, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
