package rangeagg

import (
	"math"
	"testing"

	"rangeagg/internal/oracle"
)

// mergeShards returns zipf, uniform and spiked shard distributions over
// one domain — the three data shapes whose union a sharded deployment
// must answer.
func mergeShards(t *testing.T, n int) [][]int64 {
	t.Helper()
	zipf, err := ZipfCounts(n, 1.8, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = 37
	}
	spiked := make([]int64, n)
	for i := 0; i < n; i += 9 {
		spiked[i] = int64(400 + 13*i)
	}
	return [][]int64{zipf, uniform, spiked}
}

// TestShardMergeDifferential checks the Mergeable contract against the
// oracle on zipf/uniform/spiked shards: the merged synopsis answers
// every range exactly as the sum of the per-shard estimates, and the
// fast SSE path over the merged synopsis agrees with the oracle's
// by-definition evaluation on the union distribution.
func TestShardMergeDifferential(t *testing.T) {
	const n = 48
	shards := mergeShards(t, n)
	global := make([]int64, n)
	for _, c := range shards {
		for i, v := range c {
			global[i] += v
		}
	}
	for _, m := range []Method{Naive, EquiDepth, A0, OptA} {
		syns := make([]Synopsis, len(shards))
		for i, c := range shards {
			syn, err := Build(c, Options{Method: m, BudgetWords: 16, Seed: 1})
			if err != nil {
				t.Fatalf("%s shard %d: %v", m, i, err)
			}
			syns[i] = syn
		}
		merged := syns[0]
		for i := 1; i < len(syns); i++ {
			var err error
			if merged, err = MergeSynopses(merged, syns[i]); err != nil {
				t.Fatalf("%s merge %d: %v", m, i, err)
			}
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				var want float64
				for _, s := range syns {
					want += s.Estimate(a, b)
				}
				got := merged.Estimate(a, b)
				if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s merged(%d,%d) = %g, want Σ shards %g", m, a, b, got, want)
				}
			}
		}
		fast := SSE(global, merged)
		slow := oracle.SSE(global, merged)
		if diff := math.Abs(fast - slow); diff > 1e-6*(1+slow) {
			t.Errorf("%s: fast SSE %g vs oracle %g", m, fast, slow)
		}
	}
}

// TestEngineMergeFromDifferential drives the same contract through the
// public engine path: the coordinator absorbs each shard engine with
// MergeFrom, after which its exact answers match the oracle on the union
// distribution and its approximate answers match the sum of the shard
// engines' answers on every range.
func TestEngineMergeFromDifferential(t *testing.T) {
	const n = 48
	shards := mergeShards(t, n)
	global := make([]int64, n)
	for _, c := range shards {
		for i, v := range c {
			global[i] += v
		}
	}
	coord, err := NewEngine("coord", n)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*Engine, len(shards))
	for i, c := range shards {
		eng, err := NewEngine("shard", n)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Load(c); err != nil {
			t.Fatal(err)
		}
		if err := eng.BuildSynopsis("s", Count, Options{Method: A0, BudgetWords: 16, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		if err := coord.MergeFrom(eng, "s"); err != nil {
			t.Fatalf("merge from shard %d: %v", i, err)
		}
	}
	info, err := coord.Describe("s")
	if err != nil {
		t.Fatal(err)
	}
	hasMergeable := false
	for _, c := range info.Capabilities {
		hasMergeable = hasMergeable || c == "mergeable"
	}
	if !hasMergeable {
		t.Errorf("merged synopsis capabilities %v lack \"mergeable\"", info.Capabilities)
	}
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			if got, want := coord.ExactCount(a, b), oracle.RangeSum(global, a, b); got != want {
				t.Fatalf("exact(%d,%d) = %d, oracle %d", a, b, got, want)
			}
			var want float64
			for _, eng := range engines {
				v, err := eng.Approx("s", a, b)
				if err != nil {
					t.Fatal(err)
				}
				want += v
			}
			got, err := coord.Approx("s", a, b)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("approx(%d,%d) = %g, want Σ shards %g", a, b, got, want)
			}
		}
	}
	// Merging a non-mergeable synopsis is refused by capability.
	other, err := NewEngine("sap", n)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Load(shards[0]); err != nil {
		t.Fatal(err)
	}
	if err := other.BuildSynopsis("w", Count, Options{Method: SAP0, BudgetWords: 15}); err != nil {
		t.Fatal(err)
	}
	if err := coord.MergeFrom(other, "w"); err == nil {
		t.Error("SAP0 merge accepted; want a capability error")
	}
}
