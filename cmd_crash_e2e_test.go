package rangeagg_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
)

// TestSynserveCrashRecovery is the durability e2e: synserve runs with a
// data directory and -fsync always, takes sequential acknowledged
// ingests, and is SIGKILLed mid-stream. A restart on the same directory
// must recover every acknowledged mutation (plus at most the one that
// was in flight when the kill landed), answer exact range counts
// identically to a never-crashed reference engine fed the same prefix,
// and serve synopsis answers matching a reference build over the
// recovered counts.
func TestSynserveCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	const domain = 64
	dir := t.TempDir()
	dataDir := filepath.Join(dir, "data")

	// A real binary (not `go run`) so SIGKILL hits the server itself.
	bin := filepath.Join(dir, "synserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/synserve").CombinedOutput(); err != nil {
		t.Fatalf("building synserve: %v\n%s", err, out)
	}
	start := func() (*exec.Cmd, string, *bufio.Scanner) {
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-domain", fmt.Sprint(domain),
			"-fsync", "always", "-syn", "h:V-OPT:32", "-debounce", "5ms")
		cmd.Dir = "."
		cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
			_, _ = cmd.Process.Wait()
		})
		sc := bufio.NewScanner(stderr)
		var addr string
		var tail []string
		for sc.Scan() {
			line := sc.Text()
			tail = append(tail, line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr = strings.Fields(line[i+len("listening on "):])[0]
				break
			}
		}
		if addr == "" {
			t.Fatalf("no listen line; stderr: %s", strings.Join(tail, "\n"))
		}
		return cmd, "http://" + addr, sc
	}

	cmd, base, _ := start()

	// opAt returns the i-th mutation of the deterministic ingest stream.
	opAt := func(i int) (value int, count int64) {
		return (i * 13) % domain, int64(1 + i%3)
	}
	ingest := func(base string, i int) error {
		v, c := opAt(i)
		body, _ := json.Marshal(map[string]any{
			"inserts": []map[string]any{{"value": v, "count": c}},
		})
		resp, err := http.Post(base+"/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ingest %d: status %d", i, resp.StatusCode)
		}
		return nil
	}

	// Sequential acknowledged ingests until the SIGKILL lands: at most
	// one op can be in flight, so recovery holds acked or acked+1 ops.
	acked := 0
	killed := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		close(killed)
	}()
	for {
		if err := ingest(base, acked); err != nil {
			break // the kill landed mid-request
		}
		acked++
		if acked >= 5000 { // the kill somehow missed; still a valid run
			_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
			break
		}
	}
	<-killed
	_, _ = cmd.Process.Wait()
	if acked == 0 {
		t.Fatal("no ingest was acknowledged before the kill")
	}

	// Restart on the same directory.
	cmd2, base2, sc2 := start()
	drain := make(chan string, 1)
	go func() {
		var rest []string
		for sc2.Scan() {
			rest = append(rest, sc2.Text())
		}
		drain <- strings.Join(rest, "\n")
	}()

	var health struct {
		Records  int64    `json:"records"`
		Synopses []string `json:"synopses"`
	}
	httpGetJSON(t, base2+"/health", &health)

	// Determine how many ops the recovered state holds: acked or acked+1.
	ref, err := engine.New("ref", domain)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < acked; i++ {
		v, c := opAt(i)
		if err := ref.Insert(v, c); err != nil {
			t.Fatal(err)
		}
	}
	recovered := acked
	if health.Records != ref.Records() {
		v, c := opAt(acked)
		if err := ref.Insert(v, c); err != nil {
			t.Fatal(err)
		}
		recovered = acked + 1
		if health.Records != ref.Records() {
			t.Fatalf("recovered %d records; acked %d ops (want the %d- or %d-op state)",
				health.Records, acked, acked, acked+1)
		}
	}
	t.Logf("acked %d ops, recovered the %d-op state", acked, recovered)

	// Exact range counts must match the reference bit-for-bit.
	for _, rg := range [][2]int{{0, domain - 1}, {0, 13}, {7, 7}, {20, 55}, {50, 63}} {
		var q struct {
			Value float64 `json:"value"`
		}
		httpGetJSON(t, fmt.Sprintf("%s/query?a=%d&b=%d", base2, rg[0], rg[1]), &q)
		if int64(q.Value) != ref.ExactCount(rg[0], rg[1]) {
			t.Errorf("exact count [%d,%d] = %g, reference %d", rg[0], rg[1], q.Value, ref.ExactCount(rg[0], rg[1]))
		}
	}

	// Synopsis answers must match a reference build on the same counts
	// (the construction is deterministic).
	if _, err := ref.BuildSynopsis("h", engine.Count, build.Options{Method: build.VOptimal, BudgetWords: 32}); err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]int{{0, domain - 1}, {5, 40}, {32, 33}} {
		var q struct {
			Value float64 `json:"value"`
		}
		httpGetJSON(t, fmt.Sprintf("%s/query?syn=h&a=%d&b=%d", base2, rg[0], rg[1]), &q)
		want, err := ref.Approx("h", rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q.Value-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("synopsis answer [%d,%d] = %v, reference %v", rg[0], rg[1], q.Value, want)
		}
	}

	// Durability gauges report the recovery.
	var metrics struct {
		Durability struct {
			Replayed int64 `json:"replayed_records"`
			Appends  int64 `json:"wal_appends"`
		} `json:"durability"`
	}
	httpGetJSON(t, base2+"/metrics", &metrics)
	if metrics.Durability.Replayed != int64(recovered) {
		t.Errorf("replayed_records = %d, want %d", metrics.Durability.Replayed, recovered)
	}

	// Graceful shutdown writes a final checkpoint; a third boot must then
	// recover replay-free with the same record count.
	if err := syscall.Kill(-cmd2.Process.Pid, syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { _, err := cmd2.Process.Wait(); waitCh <- err }()
	select {
	case <-waitCh:
	case <-time.After(30 * time.Second):
		t.Fatal("synserve did not exit after SIGINT")
	}
	if rest := <-drain; !strings.Contains(rest, "shutdown complete") {
		t.Errorf("no graceful-shutdown line; stderr tail: %s", rest)
	}

	_, base3, _ := start()
	httpGetJSON(t, base3+"/metrics", &metrics)
	if metrics.Durability.Replayed != 0 {
		t.Errorf("post-checkpoint boot replayed %d records, want 0", metrics.Durability.Replayed)
	}
	var health3 struct {
		Records int64 `json:"records"`
	}
	httpGetJSON(t, base3+"/health", &health3)
	if health3.Records != ref.Records() {
		t.Errorf("third boot holds %d records, want %d", health3.Records, ref.Records())
	}
}
