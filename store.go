package rangeagg

import (
	"io"

	"rangeagg/internal/engine"
)

// Store is a catalog of named columns, each a full Engine, with JSON
// persistence: Save records every column's distribution and synopsis
// specifications, and OpenStore restores them, rebuilding the synopses
// deterministically.
type Store struct {
	inner *engine.Store
}

// NewStore creates an empty store.
func NewStore(name string) *Store {
	return &Store{inner: engine.NewStore(name)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.inner.Name() }

// CreateColumn adds a column over [0, domain) and returns its engine.
func (s *Store) CreateColumn(name string, domain int) (*Engine, error) {
	e, err := s.inner.CreateColumn(name, domain)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e}, nil
}

// Column returns a column's engine by name.
func (s *Store) Column(name string) (*Engine, error) {
	e, err := s.inner.Column(name)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e}, nil
}

// DropColumn removes a column, reporting whether it existed.
func (s *Store) DropColumn(name string) bool { return s.inner.DropColumn(name) }

// Columns lists the column names, sorted.
func (s *Store) Columns() []string { return s.inner.Columns() }

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error { return s.inner.Save(w) }

// SaveFile writes the store to a file crash-safely: the JSON is written
// to a temp file in the destination directory, fsynced, and atomically
// renamed over the path, so a crash mid-save never truncates the
// previous good copy.
func (s *Store) SaveFile(path string) error { return s.inner.SaveFile(path) }

// OpenStoreFile restores a store from a file written by SaveFile.
func OpenStoreFile(path string) (*Store, error) {
	inner, err := engine.LoadStoreFile(path)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}

// OpenStore restores a store written by Save.
func OpenStore(r io.Reader) (*Store, error) {
	inner, err := engine.LoadStore(r)
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner}, nil
}
