package rangeagg

import (
	"fmt"

	"rangeagg/internal/stream"
	"rangeagg/internal/wavelet"
)

// Dynamic is a self-maintaining range synopsis: point updates to the
// distribution cost O(log n) and queries always reflect every update —
// the dynamic-maintenance setting of the paper's wavelet references
// [11, 17], here with the range-optimal prefix-domain selection. The full
// coefficient vector is kept exact internally (O(n) memory, like the data
// itself); StorageWords reports the size of the *published* top-B
// synopsis, which is re-selected lazily after updates.
type Dynamic struct {
	m      *stream.PrefixMaintainer
	budget int
	snap   *wavelet.PrefixSynopsis
	dirty  bool
}

// NewDynamic builds a dynamic synopsis over the initial distribution with
// the given published storage budget.
func NewDynamic(counts []int64, budgetWords int) (*Dynamic, error) {
	if budgetWords < 2 {
		return nil, fmt.Errorf("rangeagg: dynamic synopsis needs at least 2 words, got %d", budgetWords)
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("rangeagg: negative count %d at value %d", c, i)
		}
	}
	m, err := stream.NewPrefixMaintainer(counts)
	if err != nil {
		return nil, err
	}
	d := &Dynamic{m: m, budget: budgetWords, dirty: true}
	if err := d.refresh(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Dynamic) refresh() error {
	snap, err := d.m.Snapshot(d.budget / 2)
	if err != nil {
		return err
	}
	d.snap = snap
	d.dirty = false
	return nil
}

// Update applies counts[value] += delta in O(log n).
func (d *Dynamic) Update(value int, delta int64) error {
	if err := d.m.Update(value, delta); err != nil {
		return err
	}
	d.dirty = true
	return nil
}

// Estimate answers the range query from the current state, re-selecting
// the published coefficients first if updates arrived since the last
// query.
func (d *Dynamic) Estimate(a, b int) float64 {
	if d.dirty {
		if err := d.refresh(); err != nil {
			// Snapshot can only fail for b ≤ 0, excluded at construction.
			panic(err)
		}
	}
	return d.snap.Estimate(a, b)
}

// N returns the domain size.
func (d *Dynamic) N() int { return d.m.N() }

// StorageWords reports the published synopsis size.
func (d *Dynamic) StorageWords() int {
	if d.dirty {
		if err := d.refresh(); err != nil {
			panic(err)
		}
	}
	return d.snap.StorageWords()
}

// Name identifies the construction.
func (d *Dynamic) Name() string { return "WAVE-RANGEOPT(dyn)" }

// Total returns the maintained total record count.
func (d *Dynamic) Total() int64 { return d.m.Total() }
