package rangeagg

import (
	"bytes"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
)

// TestCodecNeverPanicsOnCorruption flips random bytes in serialized
// synopses and asserts the readers fail cleanly (error or a decodable
// object) instead of panicking — the property an engine loading synopses
// from disk depends on.
func TestCodecNeverPanicsOnCorruption(t *testing.T) {
	counts, err := ZipfCounts(25, 1.8, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Build(counts, Options{Method: SAP1, BudgetWords: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSynopsis(&buf, syn); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(191))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), raw...)
		flips := 1 + rng.Intn(8)
		for f := 0; f < flips; f++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadSynopsis panicked: %v", trial, r)
				}
			}()
			s, err := ReadSynopsis(bytes.NewReader(corrupt))
			if err != nil || s == nil {
				return // clean rejection
			}
			// If it decoded, metadata access must also be safe.
			_ = s.Name()
			_ = s.StorageWords()
		}()
	}
}

// TestBinaryCodecNeverPanicsOnCorruption does the same for the compact
// binary histogram format.
func TestBinaryCodecNeverPanicsOnCorruption(t *testing.T) {
	counts, err := ZipfCounts(30, 1.5, 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := Build(counts, Options{Method: A0, BudgetWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	avg, ok := syn.(*histogram.Avg)
	if !ok {
		t.Fatalf("unexpected type %T", syn)
	}
	var buf bytes.Buffer
	if err := histogram.WriteBinary(&buf, avg); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(192))
	for trial := 0; trial < 500; trial++ {
		corrupt := append([]byte(nil), raw...)
		for f := 0; f < 1+rng.Intn(6); f++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		// Also try truncation.
		if rng.Intn(3) == 0 {
			corrupt = corrupt[:rng.Intn(len(corrupt))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadBinary panicked: %v", trial, r)
				}
			}()
			_, _ = histogram.ReadBinary(bytes.NewReader(corrupt))
		}()
	}
}

// TestCodec2DNeverPanicsOnCorruption covers the 2-D JSON codec.
func TestCodec2DNeverPanicsOnCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	counts := randJoint(rng, 9, 9)
	syn, err := Build2D(counts, WaveRangeOpt2D, 16)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSynopsis2D(&buf, syn); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for trial := 0; trial < 400; trial++ {
		corrupt := append([]byte(nil), raw...)
		for f := 0; f < 1+rng.Intn(6); f++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadSynopsis2D panicked: %v", trial, r)
				}
			}()
			s, err := ReadSynopsis2D(bytes.NewReader(corrupt))
			if err != nil || s == nil {
				return
			}
			_ = s.Name()
			_ = s.StorageWords()
		}()
	}
}
