package rangeagg

import (
	"bytes"
	"math"
	"testing"
)

func TestStoreFacadeRoundTrip(t *testing.T) {
	s := NewStore("wh")
	col, err := s.CreateColumn("amount", 64)
	if err != nil {
		t.Fatal(err)
	}
	counts, _ := ZipfCounts(64, 1.5, 400, 4)
	if err := col.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := col.BuildSynopsis("h", Count, Options{Method: SAP1, BudgetWords: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateColumn("age", 16); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := OpenStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "wh" {
		t.Errorf("name = %q", back.Name())
	}
	cols := back.Columns()
	if len(cols) != 2 || cols[0] != "age" || cols[1] != "amount" {
		t.Fatalf("columns = %v", cols)
	}
	rcol, err := back.Column("amount")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := col.Approx("h", 3, 40)
	got, err := rcol.Approx("h", 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Errorf("restored approx %g, want %g", got, want)
	}
	if !back.DropColumn("age") {
		t.Error("drop failed")
	}
	if _, err := back.Column("age"); err == nil {
		t.Error("dropped column still present")
	}
}
