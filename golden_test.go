package rangeagg

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-encoding files")

// TestGoldenWireEncoding pins every method's built synopsis and wire
// encoding bit-for-bit against committed golden files: the construction is
// deterministic, so any drift in boundaries, stored values, or the codec's
// envelope shows up as a byte diff here. The goldens were generated before
// the method-registry refactor; the test proves registry dispatch produces
// output identical to the original per-method switches. Regenerate with
//
//	go test -run TestGoldenWireEncoding -update .
func TestGoldenWireEncoding(t *testing.T) {
	counts, err := ZipfCounts(64, 1.8, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		t.Run(m.String(), func(t *testing.T) {
			syn, err := Build(counts, Options{Method: m, BudgetWords: 24, Seed: 7, Epsilon: 0.5})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteSynopsis(&buf, syn); err != nil {
				t.Fatalf("encode: %v", err)
			}
			name := strings.ToLower(strings.ReplaceAll(m.String(), "-", "_")) + ".json"
			path := filepath.Join("testdata", "golden", name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("wire encoding drifted from golden %s:\n got: %s\nwant: %s",
					path, buf.Bytes(), want)
			}
		})
	}
}
