package rangeagg

import (
	"errors"
	"math"
	"strings"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/method"
)

// TestMethodEnumAligned guards the facade's Method constants against the
// registry numbering they resolve to — the public numbering is part of
// persisted configurations and must never shift.
func TestMethodEnumAligned(t *testing.T) {
	pairs := map[Method]build.Method{
		Naive: build.Naive, EquiWidth: build.EquiWidth, EquiDepth: build.EquiDepth,
		MaxDiff: build.MaxDiff, VOptimal: build.VOptimal, PointOpt: build.PointOpt,
		A0: build.A0, SAP0: build.SAP0, SAP1: build.SAP1, OptA: build.OptA,
		OptARounded: build.OptARounded, WaveTopBB: build.WaveTopBB,
		WaveRangeOpt: build.WaveRangeOpt, WaveAA2D: build.WaveAA2D,
		PrefixOpt: build.PrefixOpt, SAP2: build.SAP2, SAP0Approx: build.SAP0Approx,
		A0Approx: build.A0Approx, PointOptApprox: build.PointOptApprox,
		Segmented: build.Segmented,
	}
	if len(pairs) != method.Count() {
		t.Fatalf("pairs cover %d methods, registry has %d", len(pairs), method.Count())
	}
	for pub, internal := range pairs {
		got, err := pub.resolve()
		if err != nil {
			t.Errorf("%v: %v", pub, err)
			continue
		}
		if got != internal {
			t.Errorf("%v resolves to %v, want %v", pub, got, internal)
		}
	}
	if len(Methods()) != method.Count() {
		t.Errorf("Methods() = %d entries", len(Methods()))
	}
	// Unregistered values resolve to the typed error.
	var ue *UnknownMethodError
	if _, err := Method(99).resolve(); !errors.As(err, &ue) || ue.Method != 99 {
		t.Errorf("Method(99).resolve() = %v, want *UnknownMethodError", err)
	}
	if _, err := Build([]int64{1, 2}, Options{Method: Method(-1), BudgetWords: 8}); !errors.As(err, &ue) {
		t.Errorf("Build with Method(-1) = %v, want *UnknownMethodError", err)
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if got != m {
			t.Errorf("ParseMethod(%s) = %v, want %v", m, got, m)
		}
	}
	if _, err := ParseMethod("NOPE"); err == nil {
		t.Error("NOPE accepted")
	}
}

func TestPaperCounts(t *testing.T) {
	c := PaperCounts()
	if len(c) != 127 {
		t.Fatalf("len = %d, want 127", len(c))
	}
	c2 := PaperCounts()
	for i := range c {
		if c[i] != c2[i] {
			t.Fatal("PaperCounts not deterministic")
		}
	}
}

func TestBuildAllMethodsViaFacade(t *testing.T) {
	counts, err := ZipfCounts(31, 1.8, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Build(counts, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	base := SSE(counts, naive)
	for _, m := range Methods() {
		// Epsilon is required by the approximate families and ignored as a
		// quality knob by the rest (OPT-A-ROUNDED treats it the same way).
		syn, err := Build(counts, Options{Method: m, BudgetWords: 12, Seed: 1, Epsilon: 0.1})
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		got := SSE(counts, syn)
		if math.IsNaN(got) || got < 0 {
			t.Errorf("%s: SSE = %g", m, got)
		}
		if got > base*100 {
			t.Errorf("%s: SSE %g wildly worse than NAIVE %g", m, got, base)
		}
		if syn.N() != 31 {
			t.Errorf("%s: N = %d", m, syn.N())
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]int64{1, -1}, Options{Method: A0, BudgetWords: 8}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Build(nil, Options{Method: A0, BudgetWords: 8}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := Build([]int64{1, 2}, Options{Method: Method(99), BudgetWords: 8}); err == nil {
		t.Error("unknown method accepted")
	}
	// Approximate methods reject ε outside (0,1) with the typed error; the
	// zero default is no exception.
	var ee *InvalidEpsilonError
	for _, eps := range []float64{0, -0.5, 1, 2, math.NaN()} {
		_, err := Build([]int64{1, 2, 3}, Options{Method: SAP0Approx, BudgetWords: 8, Epsilon: eps})
		if !errors.As(err, &ee) {
			t.Errorf("SAP0Approx ε=%v: err = %v, want *InvalidEpsilonError", eps, err)
		}
	}
	// Exact methods ignore the field entirely.
	if _, err := Build([]int64{1, 2, 3}, Options{Method: A0, BudgetWords: 8, Epsilon: 0}); err != nil {
		t.Errorf("A0 with zero ε rejected: %v", err)
	}
}

func TestReoptViaFacade(t *testing.T) {
	counts := PaperCounts()
	plain, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 16, Reopt: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(re.Name(), "-reopt") {
		t.Errorf("name = %q", re.Name())
	}
	if SSE(counts, re) > SSE(counts, plain)+1e-6 {
		t.Error("reopt increased SSE")
	}
}

func TestEvaluateConsistentWithSSE(t *testing.T) {
	counts, _ := ZipfCounts(40, 1.5, 200, 3)
	syn, err := Build(counts, Options{Method: SAP0, BudgetWords: 15})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(counts, syn, AllRanges(40))
	total := SSE(counts, syn)
	if math.Abs(m.SSE-total) > 1e-6*(1+total) {
		t.Errorf("Evaluate SSE %g != SSE %g", m.SSE, total)
	}
	if m.Queries != 40*41/2 {
		t.Errorf("queries = %d", m.Queries)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	if len(AllRanges(10)) != 55 {
		t.Error("AllRanges wrong")
	}
	for _, q := range RandomRanges(20, 50, 1) {
		if q.A < 0 || q.B >= 20 || q.A > q.B {
			t.Fatalf("bad range %+v", q)
		}
	}
	for _, q := range ShortRanges(20, 50, 4, 1) {
		if q.B-q.A+1 > 4 {
			t.Fatalf("range too wide: %+v", q)
		}
	}
	if len(PointQueries(7)) != 7 {
		t.Error("PointQueries wrong")
	}
}

func TestEngineEndToEnd(t *testing.T) {
	counts := PaperCounts()
	eng, err := NewEngine("orders.amount", len(counts))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildSynopsis("opta", Count, Options{Method: OptA, BudgetWords: 32}); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildSynopsis("sums", Sum, Options{Method: A0, BudgetWords: 32}); err != nil {
		t.Fatal(err)
	}
	names := eng.SynopsisNames()
	if len(names) != 2 || names[0] != "opta" || names[1] != "sums" {
		t.Fatalf("names = %v", names)
	}

	// Approximate counts should track exact counts closely on this data.
	for _, q := range RandomRanges(eng.Domain(), 200, 9) {
		exact := float64(eng.ExactCount(q.A, q.B))
		approx, err := eng.Approx("opta", q.A, q.B)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(approx-exact) > 0.1*float64(eng.Records())+25 {
			t.Fatalf("range [%d,%d]: approx %g vs exact %g", q.A, q.B, approx, exact)
		}
	}

	info, err := eng.Describe("opta")
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "OPT-A" || info.Metric != Count || info.StorageWords > 32 {
		t.Errorf("info = %+v", info)
	}

	// Mutate, observe staleness, refresh.
	if err := eng.Insert(0, 500); err != nil {
		t.Fatal(err)
	}
	info, _ = eng.Describe("opta")
	if info.Stale == 0 {
		t.Error("no staleness after insert")
	}
	if err := eng.Refresh("opta"); err != nil {
		t.Fatal(err)
	}
	info, _ = eng.Describe("opta")
	if info.Stale != 0 {
		t.Error("stale after refresh")
	}

	rep, err := eng.Report("opta", RandomRanges(eng.Domain(), 100, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 100 || math.IsNaN(rep.RMS) {
		t.Errorf("report = %+v", rep)
	}
	if _, err := eng.SynopsisSSE("opta"); err != nil {
		t.Fatal(err)
	}
	if !eng.DropSynopsis("sums") {
		t.Error("drop failed")
	}
	if _, err := eng.Approx("sums", 0, 5); err == nil {
		t.Error("dropped synopsis still answers")
	}
}

func TestMetricString(t *testing.T) {
	if Count.String() != "COUNT" || Sum.String() != "SUM" {
		t.Errorf("metric strings: %s %s", Count, Sum)
	}
}

func TestMergeSynopses(t *testing.T) {
	c1, _ := ZipfCounts(40, 1.5, 200, 1)
	c2, _ := ZipfCounts(40, 1.2, 100, 2)
	s1, err := Build(c1, Options{Method: A0, BudgetWords: 10})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Build(c2, Options{Method: EquiDepth, BudgetWords: 12})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeSynopses(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range AllRanges(40) {
		want := s1.Estimate(q.A, q.B) + s2.Estimate(q.A, q.B)
		if got := merged.Estimate(q.A, q.B); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("merged(%d,%d) = %g, want %g", q.A, q.B, got, want)
		}
	}
	// Non-average synopses rejected.
	s3, _ := Build(c1, Options{Method: SAP0, BudgetWords: 9})
	if _, err := MergeSynopses(s1, s3); err == nil {
		t.Error("SAP0 merge accepted")
	}
	if _, err := MergeSynopses(s3, s1); err == nil {
		t.Error("SAP0 merge accepted (first arg)")
	}
}
