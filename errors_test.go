package rangeagg

import (
	"errors"
	"strings"
	"testing"
)

// TestEngineTypedErrors checks every facade entry point that resolves a
// synopsis name fails an unknown (or dropped) name with the one public
// typed error — the unknown-synopsis and unknown-metric paths used to
// fail with differently shaped ad-hoc strings.
func TestEngineTypedErrors(t *testing.T) {
	eng, err := NewEngine("typed-errors", 32)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 32)
	for i := range counts {
		counts[i] = int64(i)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	other, _ := NewEngine("other", 32)

	cases := map[string]func() error{
		"Approx": func() error { _, err := eng.Approx("ghost", 0, 5); return err },
		"ApproxWithError": func() error {
			_, err := eng.ApproxWithError("ghost", 0, 5)
			return err
		},
		"ApproxBatch": func() error {
			_, err := eng.ApproxBatch("ghost", []Range{{A: 0, B: 5}})
			return err
		},
		"Describe":    func() error { _, err := eng.Describe("ghost"); return err },
		"Refresh":     func() error { return eng.Refresh("ghost") },
		"Report":      func() error { _, err := eng.Report("ghost", []Range{{A: 0, B: 5}}); return err },
		"SynopsisSSE": func() error { _, err := eng.SynopsisSSE("ghost"); return err },
		"MergeFrom":   func() error { return eng.MergeFrom(other, "ghost") },
		"Progressive": func() error { _, err := eng.Progressive("ghost", 0, 5, 2); return err },
	}
	for name, call := range cases {
		err := call()
		if err == nil {
			t.Errorf("%s: unknown synopsis accepted", name)
			continue
		}
		var use *UnknownSynopsisError
		if !errors.As(err, &use) {
			t.Errorf("%s: error %v (%T) is not *UnknownSynopsisError", name, err, err)
			continue
		}
		if use.Name != "ghost" {
			t.Errorf("%s: error names %q, want %q", name, use.Name, "ghost")
		}
		if !strings.Contains(err.Error(), `"ghost"`) {
			t.Errorf("%s: message %q does not name the synopsis", name, err)
		}
	}

	// A dropped synopsis fails identically to one that never existed —
	// the asymmetry this suite pins down.
	if err := eng.BuildSynopsis("tmp", Count, Options{Method: EquiWidth, BudgetWords: 8}); err != nil {
		t.Fatal(err)
	}
	if !eng.DropSynopsis("tmp") {
		t.Fatal("drop failed")
	}
	var use *UnknownSynopsisError
	if _, err := eng.Approx("tmp", 0, 5); !errors.As(err, &use) {
		t.Errorf("dropped synopsis: error %v (%T) is not *UnknownSynopsisError", err, err)
	}

	if got := (&UnknownMetricError{Name: "median"}).Error(); !strings.Contains(got, `"median"`) {
		t.Errorf("UnknownMetricError message %q does not name the metric", got)
	}
}

// TestApproxWithErrorBoundsResidual checks the public per-answer error
// certificate: for an error-bounded method the bound covers the true
// residual on every probed range, and clamped-out ranges are exact.
func TestApproxWithErrorBoundsResidual(t *testing.T) {
	eng, err := NewEngine("bounds", 64)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ZipfCounts(64, 1.6, 250, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := eng.BuildSynopsis("v", Count, Options{Method: VOptimal, BudgetWords: 16}); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 64; a += 3 {
		for b := a; b < 64; b += 5 {
			ans, err := eng.ApproxWithError("v", a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !ans.Rigorous {
				t.Fatalf("[%d,%d]: bound should be rigorous", a, b)
			}
			exact := float64(eng.ExactCount(a, b))
			if resid := ans.Value - exact; resid > ans.ErrBound || -resid > ans.ErrBound {
				t.Fatalf("[%d,%d]: bound %g does not cover residual %g", a, b, ans.ErrBound, ans.Value-exact)
			}
		}
	}
	ans, err := eng.ApproxWithError("v", 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 0 || ans.ErrBound != 0 || !ans.Rigorous {
		t.Fatalf("outside-domain answer: %+v", ans)
	}
}
