package rangeagg

import (
	"bytes"
	"testing"
)

// FuzzReadSynopsis fuzzes the synopsis envelope codec: arbitrary input
// must either be rejected with an error or decode to a synopsis that
// round-trips — re-serializing and re-reading it reproduces the metadata
// and the answers. No input may panic the codec.
func FuzzReadSynopsis(f *testing.F) {
	counts, err := ZipfCounts(25, 1.8, 400, 5)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range []Method{Naive, EquiWidth, A0, SAP0, SAP1, SAP2, PointOpt, WaveTopBB, WaveRangeOpt, WaveAA2D, SAP0Approx, A0Approx, PointOptApprox} {
		syn, err := Build(counts, Options{Method: m, BudgetWords: 12, Seed: 1, Epsilon: 0.25})
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteSynopsis(&buf, syn); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, malformed := range []string{
		``,
		`{broken`,
		`{"family":"nope","payload":{}}`,
		`{"family":"histogram","payload":{"kind":"bad"}}`,
		`{"family":"histogram","payload":{"kind":"avg","n":5,"starts":[0,9],"series":[[1,2]]}}`,
		`{"family":"wavelet","payload":{"kind":"data","n":5,"pow":3,"coeffs":[{"i":99,"v":1}]}}`,
		`{"family":"wavelet","payload":{"kind":"prefix","n":-2,"pow":4}}`,
	} {
		f.Add([]byte(malformed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		syn, err := ReadSynopsis(bytes.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		if syn == nil {
			t.Fatal("nil synopsis without error")
		}
		// Metadata access must be safe on anything that decoded.
		name, n := syn.Name(), syn.N()
		_ = syn.StorageWords()
		if n <= 0 {
			t.Fatalf("decoded synopsis %q has non-positive domain %d", name, n)
		}
		// Round trip: what decoded must serialize, and the copy must agree.
		var buf bytes.Buffer
		if err := WriteSynopsis(&buf, syn); err != nil {
			t.Fatalf("decoded %q does not re-serialize: %v", name, err)
		}
		back, err := ReadSynopsis(&buf)
		if err != nil {
			t.Fatalf("re-serialized %q does not re-read: %v", name, err)
		}
		if back.Name() != name || back.N() != n {
			t.Fatalf("round trip changed metadata: %s/%d vs %s/%d", back.Name(), back.N(), name, n)
		}
		if n > 1<<16 {
			return // keep per-input work bounded
		}
		for _, q := range [][2]int{{0, 0}, {0, n - 1}, {n / 2, n - 1}} {
			if g, w := back.Estimate(q[0], q[1]), syn.Estimate(q[0], q[1]); g != w && !(g != g && w != w) {
				t.Fatalf("round trip changed Estimate(%d,%d): %g vs %g", q[0], q[1], g, w)
			}
		}
	})
}
