package rangeagg

import (
	"testing"
)

func TestRecommendFacade(t *testing.T) {
	counts := PaperCounts()
	recs, err := Recommend(counts, ShortRanges(len(counts), 200, 8, 3), 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].Failed && !recs[i].Failed && recs[i-1].SSE > recs[i].SSE {
			t.Fatalf("not ranked: %g before %g", recs[i-1].SSE, recs[i].SSE)
		}
	}
	if recs[0].Failed {
		t.Fatalf("winner failed: %+v", recs[0])
	}
	if recs[0].Method == Naive {
		t.Error("NAIVE won a range workload")
	}
}

func TestRecommendSynopsisRegistersWinner(t *testing.T) {
	counts := PaperCounts()
	eng, err := NewEngine("col", len(counts))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	win, err := eng.RecommendSynopsis("auto", Count, RandomRanges(len(counts), 100, 2), 24)
	if err != nil {
		t.Fatal(err)
	}
	info, err := eng.Describe("auto")
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != win.Method.String() {
		t.Errorf("registered %q, winner %q", info.Method, win.Method)
	}
}

func TestDynamicSynopsis(t *testing.T) {
	counts := PaperCounts()
	d, err := NewDynamic(counts, 32)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 127 || d.Name() == "" {
		t.Fatalf("metadata: n=%d name=%q", d.N(), d.Name())
	}
	if d.StorageWords() > 32 {
		t.Errorf("storage %d over budget", d.StorageWords())
	}
	before := d.Estimate(0, 126)
	if err := d.Update(0, 500); err != nil {
		t.Fatal(err)
	}
	after := d.Estimate(0, 126)
	// The full-domain estimate must track the added mass closely (the
	// prefix-domain synopsis answers the full range via P̂[n]−P̂[0]).
	if after-before < 250 {
		t.Fatalf("update not reflected: %g → %g", before, after)
	}
	if d.Total() != int64(before)+500 && d.Total() <= 0 {
		t.Errorf("total tracking broken: %d", d.Total())
	}
	// Validation.
	if err := d.Update(500, 1); err == nil {
		t.Error("out-of-domain update accepted")
	}
	if _, err := NewDynamic(counts, 1); err == nil {
		t.Error("budget 1 accepted")
	}
	if _, err := NewDynamic([]int64{-1}, 8); err == nil {
		t.Error("negative counts accepted")
	}
}

// TestDynamicMatchesStaticAfterUpdates: quality equivalence with the
// static construction on the final data.
func TestDynamicMatchesStaticAfterUpdates(t *testing.T) {
	counts := append([]int64(nil), PaperCounts()...)
	d, err := NewDynamic(counts, 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v := (i * 13) % len(counts)
		if err := d.Update(v, 7); err != nil {
			t.Fatal(err)
		}
		counts[v] += 7
	}
	static, err := Build(counts, Options{Method: WaveRangeOpt, BudgetWords: 24})
	if err != nil {
		t.Fatal(err)
	}
	dynSSE := SSE(counts, d)
	statSSE := SSE(counts, static)
	if diff := dynSSE - statSSE; diff > 1e-6*(1+statSSE) || diff < -1e-6*(1+statSSE) {
		t.Fatalf("dynamic SSE %g != static SSE %g", dynSSE, statSSE)
	}
}
