package rangeagg

import (
	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/sse"
)

// Metric selects what an engine synopsis summarizes.
type Metric int

const (
	// Count answers COUNT(*) WHERE a ≤ attr ≤ b.
	Count Metric = iota
	// Sum answers SUM(attr) WHERE a ≤ attr ≤ b.
	Sum
)

// String names the metric.
func (m Metric) String() string { return engine.Metric(m).String() }

// Engine is an in-memory single-column store that maintains the
// attribute-value distribution of ingested records and serves exact and
// approximate range aggregates through named synopses — the
// selectivity-estimation substrate the paper assumes. It is safe for
// concurrent use.
type Engine struct {
	inner *engine.Engine
}

// NewEngine creates an engine for attribute values in [0, domain).
func NewEngine(name string, domain int) (*Engine, error) {
	e, err := engine.New(name, domain)
	if err != nil {
		return nil, err
	}
	return &Engine{inner: e}, nil
}

// Load bulk-inserts counts per attribute value; len(counts) must equal the
// domain size.
func (e *Engine) Load(counts []int64) error { return e.inner.Load(counts) }

// Insert adds occurrences records with the given attribute value.
func (e *Engine) Insert(value int, occurrences int64) error {
	return e.inner.Insert(value, occurrences)
}

// Delete removes occurrences records with the given attribute value.
func (e *Engine) Delete(value int, occurrences int64) error {
	return e.inner.Delete(value, occurrences)
}

// Domain returns the attribute domain size.
func (e *Engine) Domain() int { return e.inner.Domain() }

// Records returns the total number of records.
func (e *Engine) Records() int64 { return e.inner.Records() }

// Counts returns a copy of the current distribution.
func (e *Engine) Counts() []int64 { return e.inner.Counts() }

// ExactCount answers COUNT(*) WHERE a ≤ attr ≤ b exactly, with the range
// clamped to the domain.
func (e *Engine) ExactCount(a, b int) int64 { return e.inner.ExactCount(a, b) }

// ExactSum answers SUM(attr) WHERE a ≤ attr ≤ b exactly.
func (e *Engine) ExactSum(a, b int) int64 { return e.inner.ExactSum(a, b) }

// BuildSynopsis constructs and registers a synopsis under the given name,
// replacing any existing one.
func (e *Engine) BuildSynopsis(name string, metric Metric, opt Options) error {
	im, err := opt.Method.resolve()
	if err != nil {
		return err
	}
	_, err = e.inner.BuildSynopsis(name, engine.Metric(metric), build.Options{
		Method:      im,
		BudgetWords: opt.BudgetWords,
		Reopt:       opt.Reopt,
		Seed:        opt.Seed,
		Epsilon:     opt.Epsilon,
		RoundedX:    opt.RoundedX,
		MaxStates:   opt.MaxStates,
		CoarsenTo:   opt.CoarsenTo,
		LocalSearch: opt.LocalSearch,
	})
	return err
}

// DropSynopsis removes a named synopsis, reporting whether it existed.
func (e *Engine) DropSynopsis(name string) bool { return e.inner.DropSynopsis(name) }

// SynopsisNames lists the registered synopsis names, sorted.
func (e *Engine) SynopsisNames() []string {
	list := e.inner.Synopses()
	out := make([]string, len(list))
	for i, s := range list {
		out[i] = s.Name
	}
	return out
}

// SynopsisInfo describes a registered synopsis.
type SynopsisInfo struct {
	// Name is the registration name.
	Name string
	// Method is the construction's paper name.
	Method string
	// Metric the synopsis answers.
	Metric Metric
	// StorageWords is the summary's space.
	StorageWords int
	// Stale counts data mutations since the synopsis was built.
	Stale int64
	// Capabilities are the method's registered capability flags, e.g.
	// "mergeable", "serializable".
	Capabilities []string
}

// Describe reports metadata for a registered synopsis.
func (e *Engine) Describe(name string) (SynopsisInfo, error) {
	s, err := e.inner.Synopsis(name)
	if err != nil {
		return SynopsisInfo{}, wrapEngineErr(err)
	}
	return SynopsisInfo{
		Name:         s.Name,
		Method:       s.Est.Name(),
		Metric:       Metric(s.Metric),
		StorageWords: s.Est.StorageWords(),
		Stale:        e.inner.Stale(s),
		Capabilities: Method(s.Options.Method).Capabilities(),
	}, nil
}

// MergeFrom absorbs a shard engine built over the same domain: the
// shard's records are added to this engine's distribution and its named
// synopsis is merged into this engine's (adopted if absent), so exact
// queries and the merged synopsis both cover the union of the two record
// sets afterwards, and the synopsis answers every range with exactly the
// sum of the shards' answers. The method must have the "mergeable"
// capability — the average-representation histogram family.
func (e *Engine) MergeFrom(other *Engine, name string) error {
	_, err := e.inner.MergeFrom(other.inner, name)
	return wrapEngineErr(err)
}

// Approx answers a range aggregate from a named synopsis; the range is
// clamped to the domain. An unknown name yields *UnknownSynopsisError.
func (e *Engine) Approx(name string, a, b int) (float64, error) {
	v, err := e.inner.Approx(name, a, b)
	return v, wrapEngineErr(err)
}

// ApproxAnswer is an approximate answer together with its error
// certificate: ErrBound bounds |exact − Value|. Rigorous reports
// whether the bound is a guarantee from the synopsis's error model;
// when the method has no model the bound is +Inf and Rigorous is false.
type ApproxAnswer struct {
	Value    float64
	ErrBound float64
	Rigorous bool
}

// ApproxWithError answers a range aggregate like Approx and attaches
// the synopsis's per-range error bound, computed at build time against
// the data the synopsis summarized. A fully-outside range returns the
// exact answer 0 with a zero bound.
func (e *Engine) ApproxWithError(name string, a, b int) (ApproxAnswer, error) {
	ans, err := e.inner.ApproxWithError(name, a, b)
	if err != nil {
		return ApproxAnswer{}, wrapEngineErr(err)
	}
	return ApproxAnswer{Value: ans.Value, ErrBound: ans.ErrBound, Rigorous: ans.Rigorous}, nil
}

// ApproxBatch answers a batch of range aggregates from one named synopsis.
// The synopsis is resolved once for the whole batch and the evaluation
// fans out over the shared worker pool, so large batches cost far less
// than per-query calls; every answer comes from the same estimator even
// if the synopsis is rebuilt concurrently. Ranges are clamped to the
// domain.
func (e *Engine) ApproxBatch(name string, queries []Range) ([]float64, error) {
	qs := make([]sse.Range, len(queries))
	for i, q := range queries {
		qs[i] = sse.Range{A: q.A, B: q.B}
	}
	vs, err := e.inner.ApproxBatch(name, qs)
	return vs, wrapEngineErr(err)
}

// Refresh rebuilds a registered synopsis from the current data.
func (e *Engine) Refresh(name string) error {
	_, err := e.inner.Refresh(name)
	return wrapEngineErr(err)
}

// Report evaluates a synopsis's error over a workload against the current
// exact data.
func (e *Engine) Report(name string, queries []Range) (Metrics, error) {
	qs := make([]sse.Range, len(queries))
	for i, q := range queries {
		qs[i] = sse.Range{A: q.A, B: q.B}
	}
	m, err := e.inner.Report(name, qs)
	if err != nil {
		return Metrics{}, wrapEngineErr(err)
	}
	return Metrics{Queries: m.Queries, SSE: m.SSE, MAE: m.MAE,
		MaxAbs: m.MaxAbs, RMS: m.RMS, MeanRel: m.MeanRel}, nil
}

// SynopsisSSE returns the exact SSE of a registered synopsis over all
// ranges of the current data.
func (e *Engine) SynopsisSSE(name string) (float64, error) {
	v, err := e.inner.SSE(name)
	return v, wrapEngineErr(err)
}

// SetAutoRefresh enables synopsis maintenance: any synopsis more than
// threshold mutations stale is rebuilt synchronously before answering a
// query. threshold ≤ 0 disables the policy (the default).
func (e *Engine) SetAutoRefresh(threshold int64) { e.inner.SetAutoRefresh(threshold) }

// ProgressiveStep is one state of an online-refined answer: Estimate
// blends exact mass over the scanned prefix of the range with the
// synopsis estimate of the remainder.
type ProgressiveStep struct {
	Scanned  int
	Of       int
	Estimate float64
}

// Progressive answers a range aggregate in the online-aggregation style:
// step 0 is the instant synopsis estimate, later steps refine it by exact
// scanning, and the final step is exact.
func (e *Engine) Progressive(name string, a, b, chunks int) ([]ProgressiveStep, error) {
	steps, err := e.inner.Progressive(name, a, b, chunks)
	if err != nil {
		return nil, wrapEngineErr(err)
	}
	out := make([]ProgressiveStep, len(steps))
	for i, s := range steps {
		out[i] = ProgressiveStep{Scanned: s.Scanned, Of: s.Of, Estimate: s.Estimate}
	}
	return out, nil
}
