package rangeagg

import (
	"fmt"
	"math"
	"math/rand"

	"rangeagg/internal/grid"
)

// Rect is an inclusive two-dimensional range query over a joint
// distribution: rows R1..R2 and columns C1..C2.
type Rect struct{ R1, C1, R2, C2 int }

// Synopsis2D answers approximate rectangle-sum queries over a joint
// attribute-value distribution — the higher-dimensional extension the
// paper's footnote 2 sketches.
type Synopsis2D interface {
	// Estimate approximates the rectangle sum Σ counts[R1..R2][C1..C2].
	Estimate(q Rect) float64
	// Rows and Cols are the domain sizes of the two attributes.
	Rows() int
	Cols() int
	// StorageWords is the summary's space.
	StorageWords() int
	// Name identifies the construction.
	Name() string
}

// Method2D selects a 2-D construction.
type Method2D int

const (
	// Naive2D stores the single global average.
	Naive2D Method2D = iota
	// EquiGrid2D is the classical equi-width grid histogram.
	EquiGrid2D
	// WaveTopBB2D keeps the largest 2-D Haar coefficients of the counts —
	// pointwise-optimal, the 2-D TOPBB.
	WaveTopBB2D
	// WaveRangeOpt2D keeps the range-optimal 2-D Haar coefficients of the
	// corner prefix grid (optimal for rectangle queries within its class;
	// exact argument on power-of-two corner grids).
	WaveRangeOpt2D
	// AVI2D is the attribute-value-independence baseline: one A0 synopsis
	// per marginal, combined under the independence assumption — exact on
	// product distributions, arbitrarily wrong under correlation.
	AVI2D
)

// String names the 2-D method.
func (m Method2D) String() string {
	switch m {
	case Naive2D:
		return "NAIVE-2D"
	case EquiGrid2D:
		return "EQUI-GRID"
	case WaveTopBB2D:
		return "TOPBB-2D"
	case WaveRangeOpt2D:
		return "WAVE-RANGEOPT-2D"
	case AVI2D:
		return "AVI"
	default:
		return fmt.Sprintf("Method2D(%d)", int(m))
	}
}

// Methods2D lists the 2-D methods.
func Methods2D() []Method2D {
	return []Method2D{Naive2D, EquiGrid2D, WaveTopBB2D, WaveRangeOpt2D, AVI2D}
}

// wrap2D adapts the internal estimator to the public Rect type.
type wrap2D struct {
	inner grid.Estimator2D
}

func (w wrap2D) Estimate(q Rect) float64 {
	return w.inner.Estimate(grid.Rect(q))
}
func (w wrap2D) Rows() int         { return w.inner.Rows() }
func (w wrap2D) Cols() int         { return w.inner.Cols() }
func (w wrap2D) StorageWords() int { return w.inner.StorageWords() }
func (w wrap2D) Name() string      { return w.inner.Name() }

// Build2D constructs a 2-D synopsis over the joint distribution
// counts[r][c] (rectangular, non-negative) under a word budget.
func Build2D(counts [][]int64, method Method2D, budgetWords int) (Synopsis2D, error) {
	g, err := grid.New("grid", counts)
	if err != nil {
		return nil, err
	}
	tab := grid.NewTable(g)
	var est grid.Estimator2D
	switch method {
	case Naive2D:
		est = grid.NewNaive2D(tab)
	case EquiGrid2D:
		// Budget ≈ cells + two boundary vectors; use a square grid of side
		// ~sqrt(budget).
		side := 1
		for (side+1)*(side+1)+2*(side+1) <= budgetWords {
			side++
		}
		est, err = grid.NewEquiGrid(tab, side, side)
	case WaveTopBB2D:
		b := budgetWords / 2
		if b < 1 {
			b = 1
		}
		est, err = grid.NewWave2D(g, b)
	case WaveRangeOpt2D:
		b := budgetWords / 2
		if b < 1 {
			b = 1
		}
		est, err = grid.NewRangeOpt2D(tab, b)
	case AVI2D:
		// Split the budget between the two marginal A0 synopses (minus the
		// stored total).
		half := (budgetWords - 1) / 2
		var rowSyn, colSyn Synopsis
		rowSyn, err = Build(grid.RowMarginal(g), Options{Method: A0, BudgetWords: half})
		if err != nil {
			return nil, err
		}
		colSyn, err = Build(grid.ColMarginal(g), Options{Method: A0, BudgetWords: half})
		if err != nil {
			return nil, err
		}
		est, err = grid.NewAVI(tab, rowSyn, colSyn)
	default:
		return nil, fmt.Errorf("rangeagg: unknown 2-D method %v", method)
	}
	if err != nil {
		return nil, err
	}
	return wrap2D{inner: est}, nil
}

// SSE2D computes the exact sum-squared error of a 2-D synopsis over every
// rectangle of the joint distribution. The rectangle count is
// O(rows²·cols²); use Evaluate2D with a sampled workload for large grids.
func SSE2D(counts [][]int64, s Synopsis2D) (float64, error) {
	g, err := grid.New("grid", counts)
	if err != nil {
		return 0, err
	}
	tab := grid.NewTable(g)
	inner, ok := s.(wrap2D)
	if !ok {
		return 0, fmt.Errorf("rangeagg: foreign Synopsis2D implementation %T", s)
	}
	return grid.SSEAll(tab, inner.inner), nil
}

// Evaluate2D computes error metrics of a 2-D synopsis over an explicit
// rectangle workload.
func Evaluate2D(counts [][]int64, s Synopsis2D, queries []Rect) (Metrics, error) {
	g, err := grid.New("grid", counts)
	if err != nil {
		return Metrics{}, err
	}
	tab := grid.NewTable(g)
	var m Metrics
	var relSum float64
	var relCount int
	for _, q := range queries {
		truth := tab.SumF(grid.Rect(q))
		d := truth - s.Estimate(q)
		ad := d
		if ad < 0 {
			ad = -ad
		}
		m.SSE += d * d
		m.MAE += ad
		if ad > m.MaxAbs {
			m.MaxAbs = ad
		}
		if truth != 0 {
			relSum += ad / truth
			relCount++
		}
	}
	m.Queries = len(queries)
	if m.Queries > 0 {
		m.MAE /= float64(m.Queries)
		m.RMS = math.Sqrt(m.SSE / float64(m.Queries))
	}
	if relCount > 0 {
		m.MeanRel = relSum / float64(relCount)
	}
	return m, nil
}

// RandomRects samples k rectangles uniformly over a rows×cols domain.
func RandomRects(rows, cols, k int, seed int64) []Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Rect, k)
	for i := range out {
		r1, r2 := rng.Intn(rows), rng.Intn(rows)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		c1, c2 := rng.Intn(cols), rng.Intn(cols)
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		out[i] = Rect{R1: r1, C1: c1, R2: r2, C2: c2}
	}
	return out
}
