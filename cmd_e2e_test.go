package rangeagg_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd executes one of this repository's commands via the Go toolchain.
func runCmd(t *testing.T, stdin string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\nstderr: %s", args, err, errb.String())
	}
	return out.String(), errb.String()
}

// TestCLIEndToEnd drives the full pipeline: generate → build → query →
// shell, through the real binaries.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	syn := filepath.Join(dir, "syn.json")

	_, genErr := runCmd(t, "", "./cmd/syngen", "-type", "zipf", "-n", "63", "-alpha", "1.6", "-max", "500", "-seed", "3", "-o", data)
	if !strings.Contains(genErr, "wrote zipf") {
		t.Fatalf("syngen stderr: %s", genErr)
	}
	if _, err := os.Stat(data); err != nil {
		t.Fatal(err)
	}

	_, buildErr := runCmd(t, "", "./cmd/synbuild", "-in", data, "-method", "SAP1", "-budget", "20", "-o", syn)
	if !strings.Contains(buildErr, "built SAP1") {
		t.Fatalf("synbuild stderr: %s", buildErr)
	}

	queryOut, _ := runCmd(t, "", "./cmd/synquery", "-syn", syn, "-data", data, "-q", "0:62", "-random", "25")
	for _, want := range []string{"synopsis SAP1", "s[0,62]", "workload of 25 random ranges", "SSE over all ranges"} {
		if !strings.Contains(queryOut, want) {
			t.Errorf("synquery output missing %q:\n%s", want, queryOut)
		}
	}

	shellOut, _ := runCmd(t, "load "+data+"\nbuild h count A0 12\napprox h 0 62\ncount 0 62\nquit\n", "./cmd/synshell")
	if !strings.Contains(shellOut, "built h: COUNT A0") {
		t.Errorf("synshell output:\n%s", shellOut)
	}
}

// TestCLIBenchSingleExperiment smoke-tests synbench on a small dataset.
func TestCLIBenchSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	out, _ := runCmd(t, "", "./cmd/synbench", "-exp", "sap0", "-n", "31", "-budgets", "8,16")
	for _, want := range []string{"== E4", "SAP0", "OPT-A"} {
		if !strings.Contains(out, want) {
			t.Errorf("synbench output missing %q:\n%s", want, out)
		}
	}
}
