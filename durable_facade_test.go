package rangeagg_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rangeagg"
)

// TestOpenDurableRoundTrip exercises the public durability facade: a
// durable engine takes mutations and synopsis builds, is closed, and a
// reopen recovers the exact state — counts, records, and synopsis
// answers.
func TestOpenDurableRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	d, err := rangeagg.OpenDurable(dir, rangeagg.DurableOptions{Domain: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Recovery().Fresh {
		t.Fatal("first open not fresh")
	}
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64((i * 3) % 11)
	}
	if err := d.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(10, 100); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(10, 40); err != nil {
		t.Fatal(err)
	}
	if err := d.BuildSynopsis("h", rangeagg.Count, rangeagg.Options{Method: rangeagg.VOptimal, BudgetWords: 20}); err != nil {
		t.Fatal(err)
	}
	wantCounts := d.Counts()
	wantRecords := d.Records()
	wantApprox, err := d.Approx("h", 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if stats := d.Stats(); stats.Appends != 4 {
		t.Fatalf("appends = %d, want 4", stats.Appends)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := rangeagg.OpenDurable(dir, rangeagg.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Fresh || rec.Torn || rec.Replayed != 4 {
		t.Fatalf("recovery = %+v, want 4 clean replays", rec)
	}
	if !reflect.DeepEqual(d2.Counts(), wantCounts) || d2.Records() != wantRecords {
		t.Fatal("recovered distribution differs")
	}
	if names := d2.SynopsisNames(); len(names) != 1 || names[0] != "h" {
		t.Fatalf("recovered synopses = %v", names)
	}
	got, err := d2.Approx("h", 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != wantApprox {
		t.Fatalf("recovered approx %v, want %v", got, wantApprox)
	}
	if info, err := d2.Describe("h"); err != nil || info.Name != "h" {
		t.Fatalf("Describe = %+v, %v", info, err)
	}
	batch, err := d2.ApproxBatch("h", []rangeagg.Range{{A: 0, B: 63}, {A: 5, B: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[1] != wantApprox {
		t.Fatalf("batch = %v", batch)
	}
	if got, want := d2.ExactCount(0, 63), wantRecords; got != want {
		t.Fatalf("exact count %d, want %d", got, want)
	}
	if err := d2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s := d2.Stats(); s.RecordsSinceCheckpoint != 0 {
		t.Fatalf("records since checkpoint = %d after Checkpoint", s.RecordsSinceCheckpoint)
	}

	if !d2.DropSynopsis("h") {
		t.Fatal("drop reported missing synopsis")
	}
	if d2.DropSynopsis("h") {
		t.Fatal("second drop reported success")
	}

	// A bad fsync policy is rejected up front.
	if _, err := rangeagg.OpenDurable(filepath.Join(dir, "x"), rangeagg.DurableOptions{Domain: 4, Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

// TestDurableMergeFrom absorbs a shard engine through the facade and
// checks the merge survives a restart.
func TestDurableMergeFrom(t *testing.T) {
	dir := t.TempDir()
	d, err := rangeagg.OpenDurable(dir, rangeagg.DurableOptions{Domain: 32, Fsync: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(2, 5); err != nil {
		t.Fatal(err)
	}
	if err := d.BuildSynopsis("h", rangeagg.Count, rangeagg.Options{Method: rangeagg.VOptimal, BudgetWords: 12}); err != nil {
		t.Fatal(err)
	}

	shard, err := rangeagg.NewEngine("shard", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := shard.Insert(20, 9); err != nil {
		t.Fatal(err)
	}
	if err := shard.BuildSynopsis("h", rangeagg.Count, rangeagg.Options{Method: rangeagg.VOptimal, BudgetWords: 12}); err != nil {
		t.Fatal(err)
	}
	if err := d.MergeFrom(shard, "h"); err != nil {
		t.Fatal(err)
	}
	wantCounts := d.Counts()
	wantApprox, err := d.Approx("h", 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := rangeagg.OpenDurable(dir, rangeagg.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !reflect.DeepEqual(d2.Counts(), wantCounts) {
		t.Fatal("merged counts not recovered")
	}
	if got, _ := d2.Approx("h", 0, 31); got != wantApprox {
		t.Fatalf("merged approx %v, want %v", got, wantApprox)
	}
}

// TestStoreSaveFileAtomic checks the crash-safe store save: the file
// round-trips, and overwriting goes through a temp file so no partial
// state is ever visible at the destination path.
func TestStoreSaveFileAtomic(t *testing.T) {
	st := rangeagg.NewStore("catalog")
	col, err := st.CreateColumn("c", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Insert(3, 7); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "store.json")
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := rangeagg.OpenStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	col2, err := back.Column("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := col2.ExactCount(0, 15); got != 7 {
		t.Fatalf("restored count %d, want 7", got)
	}
	// Overwrite: the new content lands fully, the directory holds no
	// temp litter.
	if err := col.Insert(4, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back2, err := rangeagg.OpenStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	col3, err := back2.Column("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := col3.ExactCount(0, 15); got != 8 {
		t.Fatalf("overwritten store holds %d records, want 8", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the store file", len(entries))
	}
}
