// Package rangeagg computes summary statistics that answer range-sum
// queries (selectivity estimation) with provable quality, reproducing
// "Optimal and Approximate Computation of Summary Statistics for Range
// Aggregates" (Gilbert, Kotidis, Muthukrishnan, Strauss — PODS 2001).
//
// The input is an attribute-value distribution: counts[i] is the number of
// records whose attribute equals i. A Synopsis built from it answers every
// range query s[a,b] = Σ counts[a..b] approximately within a storage
// budget measured in machine words. The quality metric throughout is the
// paper's sum-squared error over all n(n+1)/2 ranges.
//
// Quick start:
//
//	syn, err := rangeagg.Build(counts, rangeagg.Options{
//		Method:      rangeagg.OptA,   // the paper's range-optimal histogram
//		BudgetWords: 32,
//	})
//	est := syn.Estimate(10, 42)      // ≈ Σ counts[10..42]
//	quality := rangeagg.SSE(counts, syn)
//
// Methods span the paper's histograms (OPT-A exact pseudo-polynomial DP,
// OPT-A-ROUNDED, SAP0, SAP1, A0, POINT-OPT, NAIVE), classical baselines
// (equi-width, equi-depth, maxdiff, V-optimal), and wavelet summaries
// (TOPBB, the 2-D AA construction of the paper's §3, and a prefix-domain
// range-optimal selection). The §5 value re-optimization ("A-reopt") is
// available on any average-representation method via Options.Reopt.
//
// For a full storage engine around these synopses — record ingest, named
// synopsis lifecycle, exact and approximate COUNT/SUM queries — see
// NewEngine.
package rangeagg

import (
	"errors"
	"fmt"

	"rangeagg/internal/build"
	"rangeagg/internal/dataset"
	"rangeagg/internal/engine"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
	"rangeagg/internal/sse"
)

// Synopsis answers approximate range-sum queries over [0, N).
type Synopsis interface {
	// Estimate approximates s[a,b] for the inclusive range [a,b],
	// 0 ≤ a ≤ b < N. It panics on invalid ranges; use an Engine for
	// clamped user-facing queries.
	Estimate(a, b int) float64
	// N is the attribute domain size.
	N() int
	// StorageWords is the summary's space in machine words under the
	// paper's accounting.
	StorageWords() int
	// Name identifies the construction, e.g. "OPT-A" or "SAP0".
	Name() string
}

// Method selects a synopsis construction algorithm.
type Method int

// The available methods, named as in the paper.
const (
	// Naive stores the single global average (1 word).
	Naive Method = iota
	// EquiWidth is the classical fixed-width histogram.
	EquiWidth
	// EquiDepth is the classical quantile histogram.
	EquiDepth
	// MaxDiff places boundaries after the largest adjacent differences.
	MaxDiff
	// VOptimal is the point-query-optimal histogram of Jagadish et al.
	VOptimal
	// PointOpt is V-optimal with points weighted by their probability of
	// being covered by a random range — the paper's POINT-OPT baseline.
	PointOpt
	// A0 is the paper's fast 2B-word heuristic for range queries.
	A0
	// SAP0 is the paper's optimal suffix/average/prefix histogram
	// (3B words, O(n²B) construction).
	SAP0
	// SAP1 is the paper's optimal higher-order histogram (5B words).
	SAP1
	// OptA is the range-optimal classical histogram via the exact
	// pseudo-polynomial dynamic program (Theorems 1-2), falling back to
	// OPT-A-ROUNDED automatically when the instance is too large.
	OptA
	// OptARounded is the (1+ε)-approximate OPT-A (Theorem 4).
	OptARounded
	// WaveTopBB keeps the largest Haar coefficients of the data — the
	// classical wavelet heuristic, optimal for point queries only.
	WaveTopBB
	// WaveRangeOpt keeps the range-optimal Haar coefficients of the
	// prefix-sum array.
	WaveRangeOpt
	// WaveAA2D is the paper's §3 two-dimensional wavelet over the virtual
	// range-sum matrix.
	WaveAA2D
	// PrefixOpt is optimal for prefix queries [0,b] only — the restricted
	// class covered by pre-paper optimality results; a baseline for why
	// arbitrary ranges need the paper's algorithms.
	PrefixOpt
	// SAP2 stores quadratic suffix/prefix models per bucket (7B words) —
	// the next member of the paper's §2.2.2 higher-order family, optimal
	// for its representation.
	SAP2
	// SAP0Approx is the (1+ε)-approximate SAP0: same 3B-word
	// representation, boundaries from the near-linear sparse dynamic
	// program (internal/approx) instead of the O(n²B) exact one. Requires
	// Options.Epsilon ∈ (0,1); scales to domains of millions of values.
	SAP0Approx
	// A0Approx is the (1+ε)-approximate counterpart of A0 (2B words,
	// near-linear construction). Requires Options.Epsilon ∈ (0,1).
	A0Approx
	// PointOptApprox is the (1+ε)-approximate POINT-OPT; its weighted
	// V-optimal objective is interval-monotone, so the (1+ε) bound on the
	// construction objective is rigorous. Requires Options.Epsilon ∈ (0,1).
	PointOptApprox
	// Segmented partitions the domain into contiguous segments
	// (Options.Segments, Options.SegmentPolicy), summarizes each
	// independently, and distributes BudgetWords across segments by greedy
	// marginal gain. Answers compose across segment edges exactly; shards
	// built under the equi-width policy merge exactly.
	Segmented
)

// UnknownMethodError reports a Method value with no registry entry —
// a value outside the enum, or a corrupted persisted configuration.
type UnknownMethodError struct {
	Method Method
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("rangeagg: unknown method %d", int(e.Method))
}

// UnknownSynopsisError reports an engine query naming a synopsis that
// was never built or has been dropped. Every facade entry point that
// resolves a synopsis name returns this one type, so callers branch
// with errors.As instead of matching message shapes — and the unknown-
// name and unknown-metric paths fail with the same typed-error shape.
type UnknownSynopsisError struct {
	// Name is the synopsis name that failed to resolve.
	Name string
}

func (e *UnknownSynopsisError) Error() string {
	return fmt.Sprintf("rangeagg: no synopsis named %q", e.Name)
}

// UnknownMetricError reports an unparseable metric name (reaches the
// facade through persisted or remote configurations; the Metric enum
// itself cannot express one).
type UnknownMetricError struct {
	// Name is the metric string that failed to parse.
	Name string
}

func (e *UnknownMetricError) Error() string {
	return fmt.Sprintf("rangeagg: unknown metric %q", e.Name)
}

// wrapEngineErr translates the internal engine's typed errors into
// their public facade counterparts, passing everything else through.
func wrapEngineErr(err error) error {
	var us *engine.UnknownSynopsisError
	if errors.As(err, &us) {
		return &UnknownSynopsisError{Name: us.Name}
	}
	var um *engine.UnknownMetricError
	if errors.As(err, &um) {
		return &UnknownMetricError{Name: um.Name}
	}
	return err
}

// InvalidEpsilonError reports an approximation parameter outside (0,1)
// passed to a method that requires one (the Approximate-capability
// families: SAP0-APPROX, A0-APPROX, POINT-OPT-APPROX). A zero Epsilon —
// the field's default — is invalid for these methods: there is no
// meaningful default quality target, so the caller must choose one.
type InvalidEpsilonError struct {
	Method  Method
	Epsilon float64
}

func (e *InvalidEpsilonError) Error() string {
	return fmt.Sprintf("rangeagg: method %s requires epsilon in (0,1), got %v", e.Method, e.Epsilon)
}

// resolve validates the method against the registry and returns its
// internal ID. Every facade entry point that accepts a Method goes
// through it; an unregistered value yields *UnknownMethodError rather
// than an out-of-range cast reaching the internals.
func (m Method) resolve() (build.Method, error) {
	id := build.Method(m)
	if _, err := method.Lookup(id); err != nil {
		return 0, &UnknownMethodError{Method: m}
	}
	return id, nil
}

// validateEpsilon rejects ε outside (0,1) for Approximate-capability
// methods before the build starts (NaN fails both comparisons). Other
// methods ignore the check: their Epsilon semantics (OPT-A-ROUNDED)
// tolerate zero.
func (m Method) validateEpsilon(eps float64) error {
	d, err := method.Lookup(build.Method(m))
	if err != nil || !d.Caps.Has(method.Approximate) {
		return nil
	}
	if eps > 0 && eps < 1 {
		return nil
	}
	return &InvalidEpsilonError{Method: m, Epsilon: eps}
}

// String returns the method's paper name.
func (m Method) String() string { return build.Method(m).String() }

// Capabilities lists the method's registered capability flags (e.g.
// "mergeable", "serializable"), empty for unknown methods. Callers can
// discover what a method supports — shard merging, wire export, dynamic
// maintenance — without hard-coding method lists.
func (m Method) Capabilities() []string {
	d, err := method.Lookup(build.Method(m))
	if err != nil {
		return nil
	}
	return d.Caps.List()
}

// ParseMethod resolves a method from its paper name, e.g. "OPT-A".
func ParseMethod(s string) (Method, error) {
	im, err := build.ParseMethod(s)
	if err != nil {
		return 0, err
	}
	return Method(im), nil
}

// Methods lists all available methods.
func Methods() []Method {
	out := make([]Method, method.Count())
	for i := range out {
		out[i] = Method(i)
	}
	return out
}

// Options parameterizes Build.
type Options struct {
	// Method selects the construction algorithm.
	Method Method
	// BudgetWords is the storage budget in machine words. Each method
	// derives its bucket/coefficient count from it (e.g. OPT-A uses
	// BudgetWords/2 buckets, SAP1 BudgetWords/5). Naive ignores it.
	BudgetWords int
	// Reopt applies the paper's §5 value re-optimization after
	// construction. Valid for average-representation methods only.
	Reopt bool
	// LocalSearch applies boundary coordinate descent after construction
	// (before Reopt); average-representation methods only.
	LocalSearch bool
	// Seed drives randomized steps (OPT-A-ROUNDED's data rounding).
	Seed int64
	// Epsilon is the approximation quality target: required in (0,1) for
	// the approximate-construction methods (SAP0Approx, A0Approx,
	// PointOptApprox), where the construction objective is within (1+ε) of
	// optimal; also OPT-A-ROUNDED's quality target when RoundedX is 0.
	Epsilon float64
	// RoundedX overrides OPT-A-ROUNDED's rounding parameter directly.
	RoundedX int64
	// MaxStates bounds the exact OPT-A dynamic program's memory; 0 uses
	// a default of a few million states.
	MaxStates int
	// CoarsenTo, when positive and below the domain size, pre-aggregates
	// the domain to that many equal-width cells before running a
	// bucket-based construction and lifts the boundaries back — how the
	// quadratic algorithms scale to domains of millions of values.
	CoarsenTo int
	// Segments is the requested segment count for the Segmented method;
	// 0 selects the default (8). Other methods ignore it.
	Segments int
	// SegmentPolicy selects the Segmented method's partitioner:
	// "equi-width" (default) or "weight-balanced".
	SegmentPolicy string
}

// Build constructs a synopsis over the attribute-value distribution.
// Counts must be non-empty and non-negative.
func Build(counts []int64, opt Options) (Synopsis, error) {
	im, err := opt.Method.resolve()
	if err != nil {
		return nil, err
	}
	if err := opt.Method.validateEpsilon(opt.Epsilon); err != nil {
		return nil, err
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("rangeagg: negative count %d at value %d", c, i)
		}
	}
	return build.Build(counts, build.Options{
		Method:      im,
		BudgetWords: opt.BudgetWords,
		Reopt:       opt.Reopt,
		LocalSearch: opt.LocalSearch,
		Seed:        opt.Seed,
		Epsilon:     opt.Epsilon,
		RoundedX:      opt.RoundedX,
		MaxStates:     opt.MaxStates,
		CoarsenTo:     opt.CoarsenTo,
		Segments:      opt.Segments,
		SegmentPolicy: opt.SegmentPolicy,
	})
}

// Range is an inclusive query range.
type Range struct{ A, B int }

// Metrics aggregates estimation error over a workload.
type Metrics struct {
	// Queries is the workload size.
	Queries int
	// SSE is the sum of squared errors.
	SSE float64
	// MAE is the mean absolute error.
	MAE float64
	// MaxAbs is the worst absolute error.
	MaxAbs float64
	// RMS is sqrt(SSE/Queries).
	RMS float64
	// MeanRel is the mean relative error over queries with non-zero truth.
	MeanRel float64
}

// SSE returns the exact sum-squared error of the synopsis over all ranges
// of the distribution — the paper's quality metric. It uses the fastest
// exact evaluation path available for the synopsis type (O(n) for
// prefix-decomposable summaries).
func SSE(counts []int64, s Synopsis) float64 {
	tab := prefix.NewTable(counts)
	return sse.Of(tab, s)
}

// Evaluate computes error metrics for the synopsis over an explicit
// workload of ranges.
func Evaluate(counts []int64, s Synopsis, queries []Range) Metrics {
	tab := prefix.NewTable(counts)
	qs := make([]sse.Range, len(queries))
	for i, q := range queries {
		qs[i] = sse.Range{A: q.A, B: q.B}
	}
	m := sse.Evaluate(tab, s, qs)
	return Metrics{Queries: m.Queries, SSE: m.SSE, MAE: m.MAE,
		MaxAbs: m.MaxAbs, RMS: m.RMS, MeanRel: m.MeanRel}
}

// AllRanges enumerates every range of an n-value domain (the paper's
// workload; n(n+1)/2 queries).
func AllRanges(n int) []Range {
	return convertRanges(sse.AllRanges(n))
}

// RandomRanges samples k ranges uniformly.
func RandomRanges(n, k int, seed int64) []Range {
	return convertRanges(sse.RandomRanges(n, k, seed))
}

// ShortRanges samples k ranges of width at most maxWidth, modelling
// selective predicates.
func ShortRanges(n, k, maxWidth int, seed int64) []Range {
	return convertRanges(sse.ShortRanges(n, k, maxWidth, seed))
}

// PointQueries returns the n equality queries.
func PointQueries(n int) []Range {
	return convertRanges(sse.PointQueries(n))
}

func convertRanges(qs []sse.Range) []Range {
	out := make([]Range, len(qs))
	for i, q := range qs {
		out[i] = Range{A: q.A, B: q.B}
	}
	return out
}

// PaperCounts returns the paper's experimental dataset: 127 integer keys
// from randomly rounded Zipf(α=1.8) floats, deterministic.
func PaperCounts() []int64 {
	d, err := dataset.Zipf(dataset.DefaultPaper())
	if err != nil {
		panic(err) // the default configuration is always valid
	}
	return d.Counts
}

// ZipfCounts generates a Zipf distribution with random rounding, the
// paper's generator, with n values, tail exponent alpha, head frequency
// maxCount and a deterministic seed.
func ZipfCounts(n int, alpha, maxCount float64, seed int64) ([]int64, error) {
	d, err := dataset.Zipf(dataset.ZipfConfig{N: n, Alpha: alpha, MaxCount: maxCount, Seed: seed})
	if err != nil {
		return nil, err
	}
	return d.Counts, nil
}

// ReoptForWorkload re-optimizes the bucket values of an
// average-representation histogram for an explicit query workload instead
// of all ranges — the workload-adaptive variant of the paper's §5
// re-optimization. Buckets no query touches keep their original values.
func ReoptForWorkload(counts []int64, s Synopsis, queries []Range) (Synopsis, error) {
	avg, ok := s.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("rangeagg: workload reopt applies to average-representation histograms, not %s", s.Name())
	}
	tab := prefix.NewTable(counts)
	qs := make([]reopt.Range, len(queries))
	for i, q := range queries {
		qs[i] = reopt.Range{A: q.A, B: q.B}
	}
	return reopt.ReoptWorkload(tab, avg, qs)
}

// MergeSynopses combines two average-representation synopses built over
// the same domain from disjoint record sets (shards): the merged synopsis
// answers every range with exactly the sum of the two inputs' answers.
// The result has up to B₁+B₂−1 buckets; rebuild under a budget if space
// matters.
func MergeSynopses(a, b Synopsis) (Synopsis, error) {
	ha, ok := a.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("rangeagg: merge applies to average-representation histograms, not %s", a.Name())
	}
	hb, ok := b.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("rangeagg: merge applies to average-representation histograms, not %s", b.Name())
	}
	return histogram.MergeAvg(ha, hb)
}
