package rangeagg_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/dataset"
	"rangeagg/internal/engine"
	"rangeagg/internal/serve"
)

// TestSynserveEndToEnd drives the real binaries: it starts synserve on a
// loopback port, queries it over HTTP (single, batch, health), exports a
// served synopsis, and verifies the export with synquery — then shuts the
// server down gracefully with SIGINT and checks it drained.
func TestSynserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	dir := t.TempDir()

	d, err := dataset.Zipf(dataset.ZipfConfig{N: 63, Alpha: 1.6, MaxCount: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := filepath.Join(dir, "data.csv")
	df, err := os.Create(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(df); err != nil {
		t.Fatal(err)
	}
	df.Close()

	cmd := exec.Command("go", "run", "./cmd/synserve",
		"-addr", "127.0.0.1:0", "-data", data, "-syn", "h:SAP1:20", "-debounce", "5ms")
	cmd.Dir = "."
	// go run re-execs the built binary; a process group lets the SIGINT
	// reach it.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
		_ = cmd.Wait()
	}()

	// The server announces its bound address on stderr.
	sc := bufio.NewScanner(stderr)
	var addr string
	var tail []string
	for sc.Scan() {
		line := sc.Text()
		tail = append(tail, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr = strings.Fields(line[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen line from synserve; stderr: %s", strings.Join(tail, "\n"))
	}
	base := "http://" + addr
	drain := make(chan string, 1)
	go func() { // keep reading so the child never blocks on stderr
		var rest []string
		for sc.Scan() {
			rest = append(rest, sc.Text())
		}
		drain <- strings.Join(rest, "\n")
	}()

	var health struct {
		Status   string   `json:"status"`
		Records  int64    `json:"records"`
		Synopses []string `json:"synopses"`
	}
	httpGetJSON(t, base+"/health", &health)
	if health.Status != "ok" || len(health.Synopses) != 1 || health.Synopses[0] != "h" {
		t.Fatalf("health = %+v", health)
	}

	var single struct {
		Value   float64 `json:"value"`
		Version int64   `json:"version"`
	}
	httpGetJSON(t, base+"/query?a=0&b=62", &single)
	if single.Value != float64(health.Records) {
		t.Fatalf("full-domain exact count %g, want %d", single.Value, health.Records)
	}

	batchReq, _ := json.Marshal(map[string]any{
		"synopsis": "h", "ranges": [][2]int{{0, 62}, {3, 40}, {10, 10}},
	})
	resp, err := http.Post(base+"/query/batch", "application/json", bytes.NewReader(batchReq))
	if err != nil {
		t.Fatal(err)
	}
	var batch struct {
		Values  []float64 `json:"values"`
		Version int64     `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Values) != 3 {
		t.Fatalf("batch returned %d values", len(batch.Values))
	}

	// Export the served synopsis and cross-check it with synquery.
	resp, err = http.Get(base + "/synopsis?name=h")
	if err != nil {
		t.Fatal(err)
	}
	exported, err := os.Create(filepath.Join(dir, "syn.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exported.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	exported.Close()
	queryOut, _ := runCmd(t, "", "./cmd/synquery", "-syn", exported.Name(), "-data", data, "-q", "3:40")
	for _, want := range []string{"synopsis SAP1", "s[3,40]"} {
		if !strings.Contains(queryOut, want) {
			t.Errorf("synquery output missing %q:\n%s", want, queryOut)
		}
	}

	// Graceful shutdown: SIGINT must drain and announce completion.
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	waitCh := make(chan error, 1)
	go func() { waitCh <- cmd.Wait() }()
	select {
	case <-waitCh:
	case <-time.After(30 * time.Second):
		t.Fatal("synserve did not exit after SIGINT")
	}
	if rest := <-drain; !strings.Contains(rest, "shutdown complete") {
		t.Errorf("no graceful-shutdown line; stderr tail: %s", rest)
	}
}

func httpGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestServeHTTPSnapshotConsistencyUnderRebuildStorm is the torn-snapshot
// e2e check, run through the full HTTP stack under -race in CI: while the
// data is mutated and rebuilt continuously, every batch response — which
// mixes exact COUNT, exact SUM, and synopsis answers — must be internally
// consistent with a single data version, old or new, never a blend.
func TestServeHTTPSnapshotConsistencyUnderRebuildStorm(t *testing.T) {
	const domain = 64
	eng, err := engine.New("storm", domain)
	if err != nil {
		t.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		// One bucket per value: the histogram reproduces uniform data
		// exactly, so synopsis answers are version-checkable too.
		{Name: "h", Metric: engine.Count, Options: build.Options{Method: build.EquiWidth, BudgetWords: 2 * domain}},
	}
	srv, err := serve.New(eng, specs, serve.Config{Debounce: time.Millisecond, MaxLag: 5 * time.Millisecond, FanOut: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(serve.NewHandler(srv, serve.NewMetrics()))
	defer ts.Close()

	ones := make([]int64, domain)
	for i := range ones {
		ones[i] = 1
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := srv.Load(ones); err != nil {
					t.Error(err)
					return
				}
				_ = srv.Rebuild()
			}
		}
	}()

	// Batches of width-4 exact counts plus the full-domain count: with
	// every value equal to k, answers must be 4k and 64k from the same k.
	ranges := [][2]int{{0, 63}}
	for a := 0; a < domain; a += 4 {
		ranges = append(ranges, [2]int{a, a + 3})
	}
	check := func(kind string, values []float64) {
		k := values[0] / float64(domain)
		if k != float64(int64(k)) {
			t.Errorf("%s: non-integral k %g", kind, k)
		}
		for i, v := range values[1:] {
			if v != 4*k {
				t.Errorf("%s: torn batch: range %v saw %g with batch k=%g", kind, ranges[i+1], v, k)
			}
		}
	}

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 120; i++ {
				for _, syn := range []string{"", "h"} {
					raw, _ := json.Marshal(map[string]any{"synopsis": syn, "ranges": ranges})
					resp, err := http.Post(ts.URL+"/query/batch", "application/json", bytes.NewReader(raw))
					if err != nil {
						t.Error(err)
						return
					}
					var batch struct {
						Values []float64 `json:"values"`
					}
					err = json.NewDecoder(resp.Body).Decode(&batch)
					resp.Body.Close()
					if err != nil {
						t.Error(err)
						return
					}
					kind := "exact"
					if syn != "" {
						kind = "synopsis"
					}
					check(fmt.Sprintf("%s #%d", kind, i), batch.Values)
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
