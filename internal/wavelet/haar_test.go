package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func TestTransformRejectsNonPow2(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 9, 100} {
		if _, err := TransformPow2(make([]float64, n)); err == nil {
			t.Errorf("length %d accepted", n)
		}
		if _, err := Inverse(make([]float64, n)); err == nil {
			t.Errorf("Inverse length %d accepted", n)
		}
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 128} {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 100
		}
		coeffs, err := TransformPow2(data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if !approxEq(back[i], data[i]) {
				t.Fatalf("n=%d: round trip data[%d] = %g, want %g", n, i, back[i], data[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	// Orthonormal transform preserves the L2 norm.
	f := func(raw []int8) bool {
		n := NextPow2(len(raw))
		if n < 2 {
			n = 2
		}
		data := make([]float64, n)
		for i, v := range raw {
			data[i] = float64(v)
		}
		coeffs, err := TransformPow2(data)
		if err != nil {
			return false
		}
		var sd, sc float64
		for i := range data {
			sd += data[i] * data[i]
			sc += coeffs[i] * coeffs[i]
		}
		return approxEq(sd, sc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBasisVectorsMatchTransform(t *testing.T) {
	// Reconstructing from a single unit coefficient must produce exactly
	// the basis vector reported by BasisAt.
	n := 16
	for k := 0; k < n; k++ {
		coeffs := make([]float64, n)
		coeffs[k] = 1
		vec, err := Inverse(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got := BasisAt(n, k, i); !approxEq(got, vec[i]) {
				t.Fatalf("BasisAt(%d,%d,%d) = %g, want %g", n, k, i, got, vec[i])
			}
		}
	}
}

func TestBasisRangeSumMatchesBrute(t *testing.T) {
	n := 32
	for k := 0; k < n; k++ {
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				var want float64
				for i := a; i <= b; i++ {
					want += BasisAt(n, k, i)
				}
				if got := BasisRangeSum(n, k, a, b); !approxEq(got, want) {
					t.Fatalf("BasisRangeSum(%d,%d,%d,%d) = %g, want %g", n, k, a, b, got, want)
				}
			}
		}
	}
}

func TestPathIndicesCoverSupport(t *testing.T) {
	n := 64
	for i := 0; i < n; i++ {
		path := map[int]bool{}
		for _, k := range PathIndices(n, i) {
			path[k] = true
		}
		for k := 0; k < n; k++ {
			nonZero := BasisAt(n, k, i) != 0
			if nonZero && !path[k] {
				t.Fatalf("coefficient %d non-zero at %d but missing from path %v", k, i, PathIndices(n, i))
			}
			if !nonZero && path[k] {
				t.Fatalf("coefficient %d zero at %d but listed in path", k, i)
			}
		}
	}
}

func TestPointReconstructionViaPath(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 32
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	coeffs, _ := TransformPow2(data)
	for i := 0; i < n; i++ {
		var sum float64
		for _, k := range PathIndices(n, i) {
			sum += coeffs[k] * BasisAt(n, k, i)
		}
		if !approxEq(sum, data[i]) {
			t.Fatalf("path reconstruction at %d = %g, want %g", i, sum, data[i])
		}
	}
}

func TestTopB(t *testing.T) {
	coeffs := []float64{5, -1, 7, 0.5, -7}
	kept := TopB(coeffs, 2, false)
	// Largest |c|: indices 2 and 4 (both 7); result sorted by index.
	if len(kept) != 2 || kept[0].Index != 2 || kept[1].Index != 4 {
		t.Fatalf("TopB = %+v", kept)
	}
	// Skipping DC with b larger than available.
	kept = TopB(coeffs, 10, true)
	if len(kept) != 4 {
		t.Fatalf("TopB skipDC len = %d, want 4", len(kept))
	}
	for _, c := range kept {
		if c.Index == 0 {
			t.Fatal("DC kept despite skipDC")
		}
	}
	if got := TopB(coeffs, -3, false); len(got) != 0 {
		t.Fatalf("negative b should keep nothing, got %v", got)
	}
}

func TestPadding(t *testing.T) {
	in := []float64{1, 2, 3}
	z := PadZero(in)
	r := PadRepeat(in)
	if len(z) != 4 || len(r) != 4 {
		t.Fatalf("pad lengths %d/%d, want 4", len(z), len(r))
	}
	if z[3] != 0 || r[3] != 3 {
		t.Fatalf("pad values z=%g r=%g", z[3], r[3])
	}
	// Already a power of two: unchanged (same backing is fine).
	four := []float64{1, 2, 3, 4}
	if got := PadZero(four); len(got) != 4 {
		t.Fatal("unnecessary pad")
	}
	if NextPow2(0) != 1 || NextPow2(1) != 1 || NextPow2(5) != 8 {
		t.Fatal("NextPow2 wrong")
	}
}
