package wavelet

import (
	"fmt"
	"math"
	"sort"

	"rangeagg/internal/prefix"
)

// AA2D is the paper's §3 construction: pointwise-optimal two-dimensional
// Haar wavelets on the virtual range-sum matrix AA[i,j] = s[min(i,j),
// max(i,j)], selected without ever materializing the O(N²) matrix.
//
// The structure the paper exploits is made explicit here: writing
// AA[i,j] = P[max(i,j)+1] − P[min(i,j)] and expanding against a separable
// basis vector ψ_k ⊗ ψ_l, every pair of non-DC basis vectors with
// *disjoint* supports has coefficient exactly zero (both factor sums
// vanish), and Haar supports that overlap are nested — so only O(N log N)
// of the N² coefficients can be non-zero, each computable in time linear
// in the larger support from O(1) basis-cumulative sums. Keeping the B
// largest coefficients is the pointwise-L2-optimal approximation of AA,
// whose Frobenius error is the paper's range-sum SSE with off-diagonal
// ranges counted twice (AA is symmetric).
//
// Storage: 2 words per coefficient (a packed index pair plus the value).
type AA2D struct {
	n      int
	pow    int
	coeffs []AACoefficient
	label  string
}

// AACoefficient is one retained 2-D coefficient.
type AACoefficient struct {
	K, L  int
	Value float64
}

// NewAA2D builds the 2-D range-sum wavelet synopsis with b coefficients.
func NewAA2D(tab *prefix.Table, b int) (*AA2D, error) {
	if b <= 0 {
		return nil, fmt.Errorf("wavelet: need at least one coefficient, got %d", b)
	}
	n := tab.N()
	pow := NextPow2(n)
	// Padded prefix array of the zero-padded counts: P[t] for t in [0,pow].
	p := make([]float64, pow+1)
	copy(p, tab.P)
	for t := n + 1; t <= pow; t++ {
		p[t] = p[n]
	}
	cands := aaCandidates(p, pow)
	sort.Slice(cands, func(i, j int) bool {
		ai, aj := math.Abs(cands[i].Value), math.Abs(cands[j].Value)
		if ai != aj {
			return ai > aj
		}
		if cands[i].K != cands[j].K {
			return cands[i].K < cands[j].K
		}
		return cands[i].L < cands[j].L
	})
	if b > len(cands) {
		b = len(cands)
	}
	kept := make([]AACoefficient, b)
	copy(kept, cands[:b])
	return &AA2D{n: n, pow: pow, coeffs: kept, label: "WAVE-AA2D"}, nil
}

// aaCandidates computes every structurally non-zero 2-D coefficient.
func aaCandidates(p []float64, pow int) []AACoefficient {
	var out []AACoefficient
	add := func(k, l int) {
		v := aaCoeff(p, pow, k, l)
		if v != 0 {
			out = append(out, AACoefficient{K: k, L: l, Value: v})
		}
	}
	// DC pairs.
	add(0, 0)
	for l := 1; l < pow; l++ {
		add(0, l)
		add(l, 0)
	}
	// Nested non-DC pairs: for each root r, every d in its support subtree.
	for r := 1; r < pow; r++ {
		var walk func(d int)
		walk = func(d int) {
			if d >= pow {
				return
			}
			add(r, d)
			if d != r {
				add(d, r)
			}
			// Children of a detail coefficient d (level structure): 2d, 2d+1
			// halve the support.
			if 2*d < pow {
				walk(2 * d)
				walk(2*d + 1)
			}
		}
		// Descendants of r: its own index is the subtree root.
		walk(r)
	}
	return out
}

// aaCoeff computes ⟨AA, ψ_k ⊗ ψ_l⟩ in O(|supp k| + |supp l|) time:
//
//	T1 = Σ_j v_j·P[j+1]·U(j)   + Σ_i u_i·P[i+1]·V(<i)
//	T2 = Σ_i u_i·P[i]·V(≥i)    + Σ_j v_j·P[j]·U(>j)
//	coeff = T1 − T2
//
// with U, V the O(1) cumulative sums of the two basis vectors.
func aaCoeff(p []float64, pow, k, l int) float64 {
	kStart, kLen, _, _ := basisParams(pow, k)
	lStart, lLen, _, _ := basisParams(pow, l)
	var t1, t2 float64
	for j := lStart; j < lStart+lLen; j++ {
		vj := BasisAt(pow, l, j)
		if vj == 0 {
			continue
		}
		u0j := BasisRangeSum(pow, k, 0, j)       // U(j)
		uGt := BasisRangeSum(pow, k, j+1, pow-1) // U(>j)
		t1 += vj * p[j+1] * u0j
		t2 += vj * p[j] * uGt
	}
	for i := kStart; i < kStart+kLen; i++ {
		ui := BasisAt(pow, k, i)
		if ui == 0 {
			continue
		}
		vLt := 0.0
		if i > 0 {
			vLt = BasisRangeSum(pow, l, 0, i-1) // V(<i)
		}
		vGe := BasisRangeSum(pow, l, i, pow-1) // V(≥i)
		t1 += ui * p[i+1] * vLt
		t2 += ui * p[i] * vGe
	}
	return t1 - t2
}

// N returns the domain size.
func (s *AA2D) N() int { return s.n }

// Name identifies the construction.
func (s *AA2D) Name() string { return s.label }

// StorageWords returns 2 words per retained coefficient (packed index pair
// plus value).
func (s *AA2D) StorageWords() int { return 2 * len(s.coeffs) }

// Coefficients returns the retained coefficients.
func (s *AA2D) Coefficients() []AACoefficient { return s.coeffs }

// Estimate answers the range query [a,b] as the reconstruction
// ÂA[a,b] = Σ c_{kl}·ψ_k[a]·ψ_l[b], in O(B).
func (s *AA2D) Estimate(a, b int) float64 {
	if a < 0 || b >= s.n || a > b {
		panic(fmt.Sprintf("wavelet: invalid range [%d,%d] for n=%d", a, b, s.n))
	}
	var sum float64
	for _, c := range s.coeffs {
		fa := BasisAt(s.pow, c.K, a)
		if fa == 0 {
			continue
		}
		fb := BasisAt(s.pow, c.L, b)
		if fb == 0 {
			continue
		}
		sum += c.Value * fa * fb
	}
	return sum
}
