package wavelet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rangeagg/internal/prefix"
)

// DataSynopsis is the classical wavelet summary over the count array
// itself: the paper's TOPBB baseline, after [11, 17]. It keeps the B
// largest-magnitude orthonormal Haar coefficients of A (zero-padded to a
// power of two) — the selection that is optimal for pointwise L2 but not
// for range queries. Storage: 2 words per coefficient.
type DataSynopsis struct {
	n      int // domain size (unpadded)
	pow    int // padded transform length
	coeffs []Coefficient
	lookup map[int]float64
	label  string
}

// NewData builds the TOPBB synopsis with b coefficients.
func NewData(counts []int64, b int) (*DataSynopsis, error) {
	n := len(counts)
	if n == 0 {
		return nil, fmt.Errorf("wavelet: empty data")
	}
	if b <= 0 {
		return nil, fmt.Errorf("wavelet: need at least one coefficient, got %d", b)
	}
	data := make([]float64, n)
	for i, c := range counts {
		data[i] = float64(c)
	}
	padded := PadZero(data)
	coeffs, err := TransformPow2(padded)
	if err != nil {
		return nil, err
	}
	kept := TopB(coeffs, b, false)
	return newDataFromCoeffs(n, len(padded), kept, "TOPBB"), nil
}

func newDataFromCoeffs(n, pow int, kept []Coefficient, label string) *DataSynopsis {
	s := &DataSynopsis{n: n, pow: pow, coeffs: kept, label: label,
		lookup: make(map[int]float64, len(kept))}
	for _, c := range kept {
		s.lookup[c.Index] = c.Value
	}
	return s
}

// N returns the domain size.
func (s *DataSynopsis) N() int { return s.n }

// Name identifies the construction.
func (s *DataSynopsis) Name() string { return s.label }

// StorageWords returns 2 words per retained coefficient.
func (s *DataSynopsis) StorageWords() int { return 2 * len(s.coeffs) }

// Coefficients returns the retained coefficients (sorted by index).
func (s *DataSynopsis) Coefficients() []Coefficient { return s.coeffs }

// Estimate answers the range query [a,b] in O(B) by summing per-basis
// range inner products.
func (s *DataSynopsis) Estimate(a, b int) float64 {
	if a < 0 || b >= s.n || a > b {
		panic(fmt.Sprintf("wavelet: invalid range [%d,%d] for n=%d", a, b, s.n))
	}
	var sum float64
	for _, c := range s.coeffs {
		sum += c.Value * BasisRangeSum(s.pow, c.Index, a, b)
	}
	return sum
}

// CumEstimate returns the cumulative estimate Ĉ[t] (the reconstruction
// summed over [0, t)), making the synopsis prefix-decomposable for O(n)
// SSE evaluation.
func (s *DataSynopsis) CumEstimate(t int) float64 {
	if t <= 0 {
		return 0
	}
	var sum float64
	for _, c := range s.coeffs {
		sum += c.Value * BasisRangeSum(s.pow, c.Index, 0, t-1)
	}
	return sum
}

// PrefixSynopsis is the prefix-domain range-optimal wavelet summary: the B
// largest-magnitude non-DC Haar coefficients of the prefix-sum array
// P[0..n] (padded by repeating P[n]). A query is answered as a difference
// of two point reconstructions of P̂, each touching O(log N) coefficients.
// Storage: 2 words per coefficient.
type PrefixSynopsis struct {
	n      int // domain size; prefix array has n+1 entries
	pow    int
	coeffs []Coefficient
	lookup map[int]float64
	label  string
}

// NewRangeOpt builds the range-optimal wavelet synopsis with b
// coefficients from the data's prefix sums.
func NewRangeOpt(tab *prefix.Table, b int) (*PrefixSynopsis, error) {
	if b <= 0 {
		return nil, fmt.Errorf("wavelet: need at least one coefficient, got %d", b)
	}
	n := tab.N()
	padded := PadRepeat(tab.P)
	coeffs, err := TransformPow2(padded)
	if err != nil {
		return nil, err
	}
	kept := TopB(coeffs, b, true) // DC is free to drop: constant shifts cancel in ranges
	return newPrefixFromCoeffs(n, len(padded), kept, "WAVE-RANGEOPT"), nil
}

// NewPrefixTopB builds the heuristic that keeps the top-b coefficients of
// the prefix transform *including* the DC — provided as an ablation
// against NewRangeOpt's DC-skipping selection.
func NewPrefixTopB(tab *prefix.Table, b int) (*PrefixSynopsis, error) {
	if b <= 0 {
		return nil, fmt.Errorf("wavelet: need at least one coefficient, got %d", b)
	}
	n := tab.N()
	padded := PadRepeat(tab.P)
	coeffs, err := TransformPow2(padded)
	if err != nil {
		return nil, err
	}
	kept := TopB(coeffs, b, false)
	return newPrefixFromCoeffs(n, len(padded), kept, "WAVE-PREFIX-TOPB"), nil
}

// NewPrefixFromCoefficients assembles a prefix-domain synopsis from an
// explicit coefficient set (used by the dynamic maintainer in
// internal/stream). The indices must lie in [0, pow) with pow a power of
// two ≥ n+1.
func NewPrefixFromCoefficients(n, pow int, kept []Coefficient, label string) *PrefixSynopsis {
	if pow < n+1 || pow&(pow-1) != 0 {
		panic(fmt.Sprintf("wavelet: invalid prefix transform length %d for n=%d", pow, n))
	}
	for _, c := range kept {
		if c.Index < 0 || c.Index >= pow {
			panic(fmt.Sprintf("wavelet: coefficient index %d outside transform of length %d", c.Index, pow))
		}
	}
	return newPrefixFromCoeffs(n, pow, kept, label)
}

// NewDataFromCoefficients assembles a data-domain synopsis from an
// explicit coefficient set (used by the dynamic maintainer).
func NewDataFromCoefficients(n, pow int, kept []Coefficient, label string) *DataSynopsis {
	if pow < n || pow&(pow-1) != 0 {
		panic(fmt.Sprintf("wavelet: invalid transform length %d for n=%d", pow, n))
	}
	for _, c := range kept {
		if c.Index < 0 || c.Index >= pow {
			panic(fmt.Sprintf("wavelet: coefficient index %d outside transform of length %d", c.Index, pow))
		}
	}
	return newDataFromCoeffs(n, pow, kept, label)
}

func newPrefixFromCoeffs(n, pow int, kept []Coefficient, label string) *PrefixSynopsis {
	s := &PrefixSynopsis{n: n, pow: pow, coeffs: kept, label: label,
		lookup: make(map[int]float64, len(kept))}
	for _, c := range kept {
		s.lookup[c.Index] = c.Value
	}
	return s
}

// N returns the domain size.
func (s *PrefixSynopsis) N() int { return s.n }

// Name identifies the construction.
func (s *PrefixSynopsis) Name() string { return s.label }

// StorageWords returns 2 words per retained coefficient.
func (s *PrefixSynopsis) StorageWords() int { return 2 * len(s.coeffs) }

// Coefficients returns the retained coefficients (sorted by index).
func (s *PrefixSynopsis) Coefficients() []Coefficient { return s.coeffs }

// pointRecon reconstructs P̂[t] from the O(log N) coefficients on t's
// root-to-leaf path, without allocating.
func (s *PrefixSynopsis) pointRecon(t int) float64 {
	var sum float64
	if v, ok := s.lookup[0]; ok {
		sum += v * BasisAt(s.pow, 0, t)
	}
	for length := s.pow; length > 1; length /= 2 {
		k := s.pow/length + t/length
		if v, ok := s.lookup[k]; ok {
			sum += v * BasisAt(s.pow, k, t)
		}
	}
	return sum
}

// Estimate answers the range query [a,b] as P̂[b+1] − P̂[a], in
// O(log N) time.
func (s *PrefixSynopsis) Estimate(a, b int) float64 {
	if a < 0 || b >= s.n || a > b {
		panic(fmt.Sprintf("wavelet: invalid range [%d,%d] for n=%d", a, b, s.n))
	}
	return s.pointRecon(b+1) - s.pointRecon(a)
}

// CumEstimate returns Ĉ[t] = P̂[t] − P̂[0] (anchored so Ĉ[0] = 0, which
// changes no range answer — constant shifts cancel).
func (s *PrefixSynopsis) CumEstimate(t int) float64 {
	if t < 0 || t > s.n {
		panic(fmt.Sprintf("wavelet: cumulative position %d outside [0,%d]", t, s.n))
	}
	return s.pointRecon(t) - s.pointRecon(0)
}

// encodedSynopsis is the shared JSON wire form.
type encodedSynopsis struct {
	Kind   string        `json:"kind"` // "data", "prefix" or "aa2d"
	Label  string        `json:"label"`
	N      int           `json:"n"`
	Pow    int           `json:"pow"`
	Coeffs []Coefficient `json:"coeffs,omitempty"`
	// Pairs carries 2-D coefficients for the "aa2d" kind.
	Pairs []AACoefficient `json:"pairs,omitempty"`
}

// WriteJSON serializes a wavelet synopsis.
func WriteJSON(w io.Writer, s any) error {
	var enc encodedSynopsis
	switch v := s.(type) {
	case *DataSynopsis:
		enc = encodedSynopsis{Kind: "data", Label: v.label, N: v.n, Pow: v.pow, Coeffs: v.coeffs}
	case *PrefixSynopsis:
		enc = encodedSynopsis{Kind: "prefix", Label: v.label, N: v.n, Pow: v.pow, Coeffs: v.coeffs}
	case *AA2D:
		enc = encodedSynopsis{Kind: "aa2d", Label: v.label, N: v.n, Pow: v.pow, Pairs: v.coeffs}
	default:
		return fmt.Errorf("wavelet: cannot encode %T", s)
	}
	return json.NewEncoder(w).Encode(enc)
}

// ReadJSON deserializes a wavelet synopsis written by WriteJSON. The
// result is *DataSynopsis or *PrefixSynopsis.
func ReadJSON(r io.Reader) (any, error) {
	var enc encodedSynopsis
	if err := json.NewDecoder(r).Decode(&enc); err != nil {
		return nil, fmt.Errorf("wavelet: decoding JSON: %w", err)
	}
	if enc.N <= 0 || enc.Pow < enc.N || enc.Pow&(enc.Pow-1) != 0 {
		return nil, fmt.Errorf("wavelet: corrupt sizes n=%d pow=%d", enc.N, enc.Pow)
	}
	for _, c := range enc.Coeffs {
		if c.Index < 0 || c.Index >= enc.Pow {
			return nil, fmt.Errorf("wavelet: coefficient index %d outside transform of length %d", c.Index, enc.Pow)
		}
	}
	sort.Slice(enc.Coeffs, func(i, j int) bool { return enc.Coeffs[i].Index < enc.Coeffs[j].Index })
	switch enc.Kind {
	case "aa2d":
		for _, c := range enc.Pairs {
			if c.K < 0 || c.K >= enc.Pow || c.L < 0 || c.L >= enc.Pow {
				return nil, fmt.Errorf("wavelet: aa2d coefficient (%d,%d) outside transform of length %d", c.K, c.L, enc.Pow)
			}
		}
		return &AA2D{n: enc.N, pow: enc.Pow, coeffs: enc.Pairs, label: enc.Label}, nil
	case "data":
		return newDataFromCoeffs(enc.N, enc.Pow, enc.Coeffs, enc.Label), nil
	case "prefix":
		// Prefix transforms cover n+1 points.
		if enc.Pow < enc.N+1 {
			return nil, fmt.Errorf("wavelet: prefix transform length %d too small for n=%d", enc.Pow, enc.N)
		}
		return newPrefixFromCoeffs(enc.N, enc.Pow, enc.Coeffs, enc.Label), nil
	default:
		return nil, fmt.Errorf("wavelet: unknown kind %q", enc.Kind)
	}
}
