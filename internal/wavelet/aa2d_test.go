package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/prefix"
)

// bruteAACoeff computes ⟨AA, ψ_k ⊗ ψ_l⟩ by materializing AA.
func bruteAACoeff(tab *prefix.Table, pow, k, l int) float64 {
	aa := func(i, j int) float64 {
		lo, hi := i, j
		if lo > hi {
			lo, hi = hi, lo
		}
		// Padded positions carry zero counts; clamp into the real domain.
		if lo >= tab.N() {
			return 0
		}
		if hi >= tab.N() {
			hi = tab.N() - 1
		}
		return tab.SumF(lo, hi)
	}
	var sum float64
	for i := 0; i < pow; i++ {
		ui := BasisAt(pow, k, i)
		if ui == 0 {
			continue
		}
		for j := 0; j < pow; j++ {
			vj := BasisAt(pow, l, j)
			if vj == 0 {
				continue
			}
			sum += aa(i, j) * ui * vj
		}
	}
	return sum
}

func TestAACoeffMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	counts := randCounts(rng, 8, 30) // pow = 8
	tab := prefix.NewTable(counts)
	pow := 8
	p := make([]float64, pow+1)
	copy(p, tab.P)
	for k := 0; k < pow; k++ {
		for l := 0; l < pow; l++ {
			want := bruteAACoeff(tab, pow, k, l)
			got := aaCoeff(p, pow, k, l)
			if !approxEq(got, want) {
				t.Fatalf("aaCoeff(%d,%d) = %g, want %g", k, l, got, want)
			}
		}
	}
}

func TestAADisjointSupportsVanish(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	counts := randCounts(rng, 16, 60)
	tab := prefix.NewTable(counts)
	pow := 16
	p := make([]float64, pow+1)
	copy(p, tab.P)
	disjoint := func(k, l int) bool {
		ks, kl, _, _ := basisParams(pow, k)
		ls, ll, _, _ := basisParams(pow, l)
		return ks+kl <= ls || ls+ll <= ks
	}
	for k := 1; k < pow; k++ {
		for l := 1; l < pow; l++ {
			if !disjoint(k, l) {
				continue
			}
			if got := aaCoeff(p, pow, k, l); math.Abs(got) > 1e-9 {
				t.Fatalf("disjoint pair (%d,%d) has coefficient %g", k, l, got)
			}
		}
	}
}

func TestAA2DFullBudgetIsExact(t *testing.T) {
	// Keeping every structurally non-zero coefficient must reproduce AA
	// exactly — this also proves no non-candidate coefficient matters.
	rng := rand.New(rand.NewSource(83))
	for _, n := range []int{8, 13, 16} {
		counts := randCounts(rng, n, 50)
		tab := prefix.NewTable(counts)
		s, err := NewAA2D(tab, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				if got, want := s.Estimate(a, b), tab.SumF(a, b); !approxEq(got, want) {
					t.Fatalf("n=%d: Estimate(%d,%d) = %g, want %g", n, a, b, got, want)
				}
			}
		}
	}
}

func TestAA2DCandidateCountIsNearLinear(t *testing.T) {
	// The structure claim: O(N log N) candidates, not N².
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i*7%13 + 1)
	}
	tab := prefix.NewTable(counts)
	pow := 64
	p := make([]float64, pow+1)
	copy(p, tab.P)
	cands := aaCandidates(p, pow)
	// Ordered nested pairs: ≤ 2·N·(log2 N + 1) + 2N + 1 by the support
	// argument; allow the exact combinatorial bound with slack.
	limit := 4 * pow * (bits(pow) + 2)
	if len(cands) > limit {
		t.Fatalf("candidates = %d, want ≤ %d (structure not exploited)", len(cands), limit)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
}

func bits(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

func TestAA2DErrorDecreasesWithBudget(t *testing.T) {
	counts := make([]int64, 31)
	for i := range counts {
		counts[i] = int64(500 / (i + 1))
	}
	tab := prefix.NewTable(counts)
	prev := math.Inf(1)
	for _, b := range []int{2, 4, 8, 16, 64} {
		s, err := NewAA2D(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		got := bruteSSE(tab, s)
		// Frobenius-optimal selection is monotone in the matrix metric;
		// range SSE follows it closely — allow small slack.
		if got > prev*1.05+1e-6 {
			t.Errorf("SSE grew with budget: %g → %g at b=%d", prev, got, b)
		}
		prev = got
	}
	if prev > 1e-6 {
		// With 64 coefficients on n=31 the error should be far below the
		// naive baseline — just check it is small relative to data scale.
		t.Logf("residual SSE at b=64: %g", prev)
	}
}

func TestAA2DValidation(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	if _, err := NewAA2D(tab, 0); err == nil {
		t.Error("b=0 accepted")
	}
	s, err := NewAA2D(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.StorageWords() != 4 {
		t.Errorf("storage = %d, want 4", s.StorageWords())
	}
	defer func() {
		if recover() == nil {
			t.Error("bad range should panic")
		}
	}()
	s.Estimate(1, 5)
}
