// Package wavelet implements the paper's wavelet-based summary
// representations (§3): the Haar transform substrate, the classical
// largest-coefficient heuristic over the data domain (the paper's TOPBB
// baseline, after [11, 17]), the paper's Theorem 9 construction — 2-D
// pointwise-optimal wavelets on the virtual range-sum matrix AA, computed
// without materializing it (see AA2D) — and a fast prefix-domain variant
// that is provably range-optimal within its own coefficient class.
//
// # Prefix-domain range-optimal selection
//
// A range query is a difference of two prefix sums, so the SSE over all
// ranges of any prefix-domain approximation P̂ is N·Σe² − (Σe)² with
// e = P − P̂ (DESIGN.md §1). Expanding e in the orthonormal Haar basis of
// P: every non-DC Haar vector is orthogonal to the all-ones vector, and
// the DC component of e is a constant shift of the cumulative curve, which
// cancels out of every range answer. Hence
//
//	SSE = N · Σ_{dropped k ≥ 1} c_k²,
//
// and the optimal B-coefficient prefix-domain synopsis keeps the B
// largest-magnitude non-DC coefficients of Haar(P) — computed in
// O(N log N) time. (The DC coefficient never needs a slot at all.) The
// argument is exact when N = n+1 is a power of two — the paper's own
// dataset has n = 127 — and heuristic (repeat-last padding) otherwise.
// Optimality is within the prefix-coefficient class; the data-domain and
// AA-matrix classes are incomparable with it in general.
package wavelet

import (
	"fmt"
	"math"
	"sort"
)

// TransformPow2 computes the orthonormal Haar transform of data, whose
// length must be a power of two. Coefficient layout: index 0 is the DC
// (scaled mean); indices [2^j, 2^(j+1)) are the level-j details with
// support length N/2^j.
func TransformPow2(data []float64) ([]float64, error) {
	n := len(data)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, data)
	tmp := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			tmp[i] = (a + b) * inv      // scaling part
			tmp[half+i] = (a - b) * inv // detail part
		}
		copy(out[:length], tmp[:length])
	}
	return out, nil
}

// Inverse reconstructs the data from a full coefficient vector produced by
// TransformPow2.
func Inverse(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	tmp := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			s, d := out[i], out[half+i]
			tmp[2*i] = (s + d) * inv
			tmp[2*i+1] = (s - d) * inv
		}
		copy(out[:length], tmp[:length])
	}
	return out, nil
}

// basisParams returns, for coefficient index k in an N-point transform
// (N a power of two), the support [start, start+length) and the amplitude
// of the positive half of the orthonormal basis vector. For k = 0 the
// vector is the constant 1/√N (no negative half: half = length).
func basisParams(n, k int) (start, length, half int, amp float64) {
	if k == 0 {
		return 0, n, n, 1 / math.Sqrt(float64(n))
	}
	// Level j: k ∈ [2^j, 2^(j+1)), support N/2^j.
	j := 0
	for 1<<(j+1) <= k {
		j++
	}
	length = n >> j
	start = (k - 1<<j) * length
	half = length / 2
	amp = 1 / math.Sqrt(float64(length))
	return start, length, half, amp
}

// BasisAt returns ψ_k[i] for the N-point orthonormal Haar basis.
func BasisAt(n, k, i int) float64 {
	start, length, half, amp := basisParams(n, k)
	if i < start || i >= start+length {
		return 0
	}
	if k == 0 || i < start+half {
		return amp
	}
	return -amp
}

// BasisRangeSum returns Σ_{i∈[a,b]} ψ_k[i] in O(1).
func BasisRangeSum(n, k, a, b int) float64 {
	if a > b {
		return 0
	}
	start, length, half, amp := basisParams(n, k)
	end := start + length - 1
	if b < start || a > end {
		return 0
	}
	clamp := func(x, lo, hi int) int {
		if x < lo {
			return lo
		}
		if x > hi {
			return hi
		}
		return x
	}
	if k == 0 {
		lo, hi := clamp(a, start, end), clamp(b, start, end)
		return float64(hi-lo+1) * amp
	}
	posEnd := start + half - 1
	var sum float64
	if a <= posEnd && b >= start {
		lo, hi := clamp(a, start, posEnd), clamp(b, start, posEnd)
		sum += float64(hi-lo+1) * amp
	}
	if b > posEnd {
		lo, hi := clamp(a, posEnd+1, end), clamp(b, posEnd+1, end)
		if lo <= hi {
			sum -= float64(hi-lo+1) * amp
		}
	}
	return sum
}

// PathIndices returns the indices of the O(log N) coefficients whose basis
// vectors are non-zero at position i: the DC plus, per level with support
// length L, the detail coefficient n/L + i/L.
func PathIndices(n, i int) []int {
	idx := []int{0}
	for length := n; length > 1; length /= 2 {
		idx = append(idx, n/length+i/length)
	}
	return idx
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// PadRepeat pads data to the next power of two by repeating the last
// value (used for prefix arrays so the padded region stays flat).
func PadRepeat(data []float64) []float64 {
	p := NextPow2(len(data))
	if p == len(data) {
		return data
	}
	out := make([]float64, p)
	copy(out, data)
	last := 0.0
	if len(data) > 0 {
		last = data[len(data)-1]
	}
	for i := len(data); i < p; i++ {
		out[i] = last
	}
	return out
}

// PadZero pads data to the next power of two with zeros (used for count
// arrays so padded positions contribute no mass).
func PadZero(data []float64) []float64 {
	p := NextPow2(len(data))
	if p == len(data) {
		return data
	}
	out := make([]float64, p)
	copy(out, data)
	return out
}

// Coefficient is one retained (index, value) pair; it costs two words.
type Coefficient struct {
	Index int
	Value float64
}

// TopB returns the b coefficients of largest magnitude, optionally
// skipping the DC coefficient (index 0). Ties break toward smaller index
// for determinism. The result is sorted by index.
func TopB(coeffs []float64, b int, skipDC bool) []Coefficient {
	if b < 0 {
		b = 0
	}
	idx := make([]int, 0, len(coeffs))
	for i := range coeffs {
		if skipDC && i == 0 {
			continue
		}
		idx = append(idx, i)
	}
	sort.Slice(idx, func(x, y int) bool {
		ax, ay := math.Abs(coeffs[idx[x]]), math.Abs(coeffs[idx[y]])
		if ax != ay {
			return ax > ay
		}
		return idx[x] < idx[y]
	})
	if b > len(idx) {
		b = len(idx)
	}
	kept := idx[:b]
	sort.Ints(kept)
	out := make([]Coefficient, len(kept))
	for i, k := range kept {
		out[i] = Coefficient{Index: k, Value: coeffs[k]}
	}
	return out
}
