package wavelet

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"rangeagg/internal/prefix"
)

func randCounts(rng *rand.Rand, n int, lim int64) []int64 {
	c := make([]int64, n)
	for i := range c {
		c[i] = rng.Int63n(lim)
	}
	return c
}

// bruteSSE computes the range SSE of any estimator directly.
func bruteSSE(tab *prefix.Table, est interface{ Estimate(a, b int) float64 }) float64 {
	n := tab.N()
	var sum float64
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			d := tab.SumF(a, b) - est.Estimate(a, b)
			sum += d * d
		}
	}
	return sum
}

func TestDataSynopsisFullBIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	counts := randCounts(rng, 16, 50)
	tab := prefix.NewTable(counts)
	s, err := NewData(counts, 16)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		for b := a; b < 16; b++ {
			if got, want := s.Estimate(a, b), tab.SumF(a, b); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
}

func TestDataSynopsisPaddedDomain(t *testing.T) {
	// Non-power-of-two n: zero padding must not disturb in-domain answers
	// at full coefficient budget.
	rng := rand.New(rand.NewSource(74))
	counts := randCounts(rng, 11, 50)
	tab := prefix.NewTable(counts)
	s, err := NewData(counts, 16)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 11; a++ {
		for b := a; b < 11; b++ {
			if got, want := s.Estimate(a, b), tab.SumF(a, b); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
}

func TestPrefixSynopsisFullBIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	counts := randCounts(rng, 15, 50) // prefix array: 16 entries, power of two
	tab := prefix.NewTable(counts)
	s, err := NewRangeOpt(tab, 15) // all non-DC coefficients of a 16-transform
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 15; a++ {
		for b := a; b < 15; b++ {
			if got, want := s.Estimate(a, b), tab.SumF(a, b); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
}

func TestCumEstimateConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	counts := randCounts(rng, 15, 40)
	tab := prefix.NewTable(counts)
	d, _ := NewData(counts, 5)
	p, _ := NewRangeOpt(tab, 5)
	for _, est := range []interface {
		Estimate(a, b int) float64
		CumEstimate(t int) float64
	}{d, p} {
		if got := est.CumEstimate(0); got != 0 {
			t.Fatalf("CumEstimate(0) = %g, want 0", got)
		}
		for a := 0; a < 15; a++ {
			for b := a; b < 15; b++ {
				want := est.CumEstimate(b+1) - est.CumEstimate(a)
				if got := est.Estimate(a, b); !approxEq(got, want) {
					t.Fatalf("%T: Estimate(%d,%d)=%g but cum diff=%g", est, a, b, got, want)
				}
			}
		}
	}
}

// TestRangeOptIsOptimalAmongSubsets verifies the Theorem 9 construction:
// on power-of-two prefix lengths, no other B-subset of prefix-domain Haar
// coefficients achieves smaller range SSE.
func TestRangeOptIsOptimalAmongSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	counts := randCounts(rng, 15, 60) // N = 16
	tab := prefix.NewTable(counts)
	const b = 4
	opt, err := NewRangeOpt(tab, b)
	if err != nil {
		t.Fatal(err)
	}
	optSSE := bruteSSE(tab, opt)

	full, err := TransformPow2(PadRepeat(tab.P))
	if err != nil {
		t.Fatal(err)
	}
	pow := len(full)
	// Try many random subsets of size b (including ones with DC).
	for trial := 0; trial < 300; trial++ {
		perm := rng.Perm(pow)[:b]
		sort.Ints(perm)
		kept := make([]Coefficient, b)
		for i, k := range perm {
			kept[i] = Coefficient{Index: k, Value: full[k]}
		}
		cand := newPrefixFromCoeffs(tab.N(), pow, kept, "cand")
		if got := bruteSSE(tab, cand); got < optSSE-1e-6*(1+optSSE) {
			t.Fatalf("subset %v SSE %g beats range-opt %g", perm, got, optSSE)
		}
	}
}

// TestRangeOptSSEClosedForm: SSE = N · Σ_{dropped non-DC} c² on
// power-of-two prefix lengths.
func TestRangeOptSSEClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	counts := randCounts(rng, 31, 80) // N = 32
	tab := prefix.NewTable(counts)
	full, _ := TransformPow2(PadRepeat(tab.P))
	for _, b := range []int{1, 3, 8, 15} {
		s, err := NewRangeOpt(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		kept := map[int]bool{}
		for _, c := range s.Coefficients() {
			kept[c.Index] = true
		}
		var want float64
		for k := 1; k < len(full); k++ {
			if !kept[k] {
				want += full[k] * full[k] * float64(len(full))
			}
		}
		if got := bruteSSE(tab, s); !approxNear(got, want, 1e-6) {
			t.Fatalf("b=%d: SSE %g, closed form %g", b, got, want)
		}
	}
}

func approxNear(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// TestWaveletClassesAreSane builds the paper's n=127 Zipf shape and checks
// every wavelet method produces finite errors that decrease with budget.
// Note the classes are genuinely incomparable: the prefix-domain selection
// is optimal among prefix-coefficient subsets, the data-domain TOPBB among
// data-coefficient subsets, and the 2-D AA construction among AA-matrix
// subsets — none dominates the others on every dataset.
func TestWaveletClassesAreSane(t *testing.T) {
	counts := make([]int64, 127)
	for i := range counts {
		counts[i] = int64(1000 / math.Pow(float64(i+1), 1.8))
	}
	tab := prefix.NewTable(counts)
	prevRO, prevTB := math.Inf(1), math.Inf(1)
	for _, b := range []int{4, 8, 16, 32} {
		ro, err := NewRangeOpt(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := NewData(counts, b)
		if err != nil {
			t.Fatal(err)
		}
		roSSE := bruteSSE(tab, ro)
		tbSSE := bruteSSE(tab, tb)
		if math.IsNaN(roSSE) || math.IsNaN(tbSSE) {
			t.Fatalf("b=%d: NaN SSE", b)
		}
		if roSSE > prevRO+1e-6 {
			t.Errorf("range-opt SSE increased with budget: %g → %g at b=%d", prevRO, roSSE, b)
		}
		if tbSSE > prevTB*1.5+1e-6 { // greedy data-domain selection is not monotone in theory; allow slack
			t.Errorf("TOPBB SSE grew sharply with budget: %g → %g at b=%d", prevTB, tbSSE, b)
		}
		prevRO, prevTB = roSSE, tbSSE
	}
}

func TestPrefixTopBNeverBeatsRangeOpt(t *testing.T) {
	// Keeping the DC coefficient wastes a slot; the DC-skipping selection
	// must be at least as good on power-of-two prefix lengths.
	rng := rand.New(rand.NewSource(79))
	counts := randCounts(rng, 31, 100)
	tab := prefix.NewTable(counts)
	for _, b := range []int{2, 5, 9} {
		ro, _ := NewRangeOpt(tab, b)
		tp, _ := NewPrefixTopB(tab, b)
		if got, ref := bruteSSE(tab, ro), bruteSSE(tab, tp); got > ref+1e-6*(1+ref) {
			t.Errorf("b=%d: range-opt %g > prefix-topB %g", b, got, ref)
		}
	}
}

func TestSynopsisValidation(t *testing.T) {
	if _, err := NewData(nil, 3); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := NewData([]int64{1, 2}, 0); err == nil {
		t.Error("b=0 accepted")
	}
	tab := prefix.NewTable([]int64{1, 2})
	if _, err := NewRangeOpt(tab, 0); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewPrefixTopB(tab, -1); err == nil {
		t.Error("b<0 accepted")
	}
}

func TestEstimatePanicsOnBadRange(t *testing.T) {
	s, _ := NewData([]int64{1, 2, 3, 4}, 2)
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	s.Estimate(2, 9)
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	counts := randCounts(rng, 20, 50)
	tab := prefix.NewTable(counts)
	d, _ := NewData(counts, 6)
	p, _ := NewRangeOpt(tab, 6)
	for _, s := range []any{d, p} {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		orig := s.(interface{ Estimate(a, b int) float64 })
		back := got.(interface{ Estimate(a, b int) float64 })
		for a := 0; a < 20; a += 3 {
			for b := a; b < 20; b += 2 {
				if g, w := back.Estimate(a, b), orig.Estimate(a, b); !approxEq(g, w) {
					t.Fatalf("%T round trip Estimate(%d,%d) = %g, want %g", s, a, b, g, w)
				}
			}
		}
	}
}

func TestReadJSONRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{broken`,
		`{"kind":"nope","n":4,"pow":4,"coeffs":[]}`,
		`{"kind":"data","n":4,"pow":3,"coeffs":[]}`,                      // pow not a power of two
		`{"kind":"data","n":4,"pow":4,"coeffs":[{"Index":9,"Value":1}]}`, // index out of range
		`{"kind":"prefix","n":4,"pow":4,"coeffs":[]}`,                    // prefix needs pow ≥ n+1
		`{"kind":"data","n":0,"pow":4,"coeffs":[]}`,                      // empty domain
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestWriteJSONRejectsUnknown(t *testing.T) {
	if err := WriteJSON(&bytes.Buffer{}, 42); err == nil {
		t.Error("unknown type accepted")
	}
}
