package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-8*scale
}

func randCounts(rng *rand.Rand, n int, lim int64) []int64 {
	c := make([]int64, n)
	for i := range c {
		c[i] = rng.Int63n(lim)
	}
	return c
}

// TestOptAMatchesExhaustive is the central correctness test: the sparse
// pseudo-polynomial DP must reach exactly the optimum found by enumerating
// every bucketing, for the cumulative-rounded estimator it optimizes.
func TestOptAMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(9)
		b := 1 + rng.Intn(4)
		counts := randCounts(rng, n, 30)
		tab := prefix.NewTable(counts)
		h, st, err := OptA(tab, b, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, wantSSE, err := ExhaustiveOptA(tab, b, histogram.RoundCumulative)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(st.SSE, wantSSE) {
			t.Fatalf("trial %d (n=%d b=%d counts=%v): DP SSE %g, exhaustive %g",
				trial, n, b, counts, st.SSE, wantSSE)
		}
		// The reported SSE must equal the histogram's true SSE.
		if got := sse.Of(tab, h); !approxEq(got, st.SSE) {
			t.Fatalf("trial %d: reported SSE %g != measured %g", trial, st.SSE, got)
		}
	}
}

func TestOptAMonotoneInBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	counts := randCounts(rng, 14, 40)
	tab := prefix.NewTable(counts)
	prev := math.Inf(1)
	for b := 1; b <= 6; b++ {
		_, st, err := OptA(tab, b, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatal(err)
		}
		// Allowing one extra bucket can never hurt (the optimum over a
		// superset of bucketings).
		if st.SSE > prev+1e-6 {
			t.Fatalf("SSE increased from %g to %g at b=%d", prev, st.SSE, b)
		}
		prev = st.SSE
	}
}

func TestOptABeatsPolynomialHeuristics(t *testing.T) {
	// The exact DP is optimal over all average histograms, so its
	// (cumulative-rounded) SSE is ≤ that of A0 and POINT-OPT boundaries.
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(10)
		b := 2 + rng.Intn(3)
		counts := randCounts(rng, n, 50)
		tab := prefix.NewTable(counts)
		_, st, err := OptA(tab, b, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatal(err)
		}
		a0, err := dp.A0(tab, b, histogram.RoundCumulative)
		if err != nil {
			t.Fatal(err)
		}
		po, err := dp.PointOpt(tab, b, histogram.RoundCumulative)
		if err != nil {
			t.Fatal(err)
		}
		// POINT-OPT stores weighted means, which are outside OPT-A's
		// representation class (that slack is what reopt exploits, §5); to
		// compare against the optimum, refit its boundaries with true
		// bucket averages.
		poAvg, err := histogram.NewAvgFromBounds(tab, po.Buckets, histogram.RoundCumulative, "POINT-OPT-avg")
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range []*histogram.Avg{a0, poAvg} {
			if v := sse.Of(tab, h); v < st.SSE-1e-6 {
				t.Fatalf("trial %d: %s SSE %g beats 'optimal' %g", trial, h.Name(), v, st.SSE)
			}
		}
	}
}

func TestOptAValidation(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	if _, _, err := OptA(tab, 0, Config{}); err == nil {
		t.Error("b=0 should fail")
	}
}

func TestOptABudgetExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	counts := randCounts(rng, 40, 1000)
	tab := prefix.NewTable(counts)
	_, _, err := OptA(tab, 5, Config{MaxStates: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestOptARoundedX1IsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	counts := randCounts(rng, 12, 30)
	tab := prefix.NewTable(counts)
	res, err := OptARounded(tab, 3, 1, 7, Config{Mode: histogram.RoundCumulative})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.X != 1 {
		t.Fatalf("x=1 result not marked exact: %+v", res)
	}
	_, wantSSE, _ := ExhaustiveOptA(tab, 3, histogram.RoundCumulative)
	if got := sse.Of(tab, res.Hist); !approxEq(got, wantSSE) {
		t.Fatalf("SSE %g, want %g", got, wantSSE)
	}
}

func TestOptARoundedNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(8)
		counts := randCounts(rng, n, 60)
		tab := prefix.NewTable(counts)
		_, st, err := OptA(tab, 3, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []int64{2, 4, 8} {
			res, err := OptARounded(tab, 3, x, 7, Config{Mode: histogram.RoundCumulative})
			if err != nil {
				t.Fatal(err)
			}
			got := sse.Of(tab, res.Hist)
			if got < st.SSE-1e-6 {
				t.Fatalf("trial %d x=%d: rounded SSE %g beats exact optimum %g", trial, x, got, st.SSE)
			}
		}
	}
}

func TestOptARoundedDegradesGracefully(t *testing.T) {
	// With moderate x the rounded histogram should stay within a small
	// factor of optimal — the substance of Theorem 4 on a concrete input.
	rng := rand.New(rand.NewSource(67))
	counts := randCounts(rng, 16, 200)
	tab := prefix.NewTable(counts)
	_, st, err := OptA(tab, 4, Config{Mode: histogram.RoundCumulative})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptARounded(tab, 4, 4, 7, Config{Mode: histogram.RoundCumulative})
	if err != nil {
		t.Fatal(err)
	}
	got := sse.Of(tab, res.Hist)
	if st.SSE > 0 && got > 3*st.SSE {
		t.Fatalf("rounded SSE %g more than 3× optimal %g", got, st.SSE)
	}
}

func TestOptAAutoFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	counts := randCounts(rng, 30, 2000)
	tab := prefix.NewTable(counts)
	res, err := OptAAuto(tab, 4, 7, Config{MaxStates: 20000, Mode: histogram.RoundNone})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hist == nil {
		t.Fatal("no histogram")
	}
	if res.X == 1 {
		// Plausible but unlikely with this budget; either way the result
		// must be a valid ≤4-bucket histogram.
		t.Logf("exact fit within budget (states=%d)", res.Stats.States)
	}
	if res.Hist.Buckets.NumBuckets() > 4 {
		t.Fatalf("too many buckets: %d", res.Hist.Buckets.NumBuckets())
	}
}

func TestXForEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	counts := randCounts(rng, 50, 5000)
	tab := prefix.NewTable(counts)
	if x := XForEpsilon(tab, 5, 0); x != 1 {
		t.Errorf("eps=0 → x=%d, want 1", x)
	}
	x1 := XForEpsilon(tab, 5, 0.1)
	x2 := XForEpsilon(tab, 5, 1.0)
	if x2 < x1 {
		t.Errorf("x not monotone in eps: x(0.1)=%d x(1.0)=%d", x1, x2)
	}
	if x1 < 1 {
		t.Errorf("x must be at least 1, got %d", x1)
	}
}

func TestExhaustiveRefusesLargeN(t *testing.T) {
	tab := prefix.NewTable(make([]int64, 30))
	if _, _, err := ExhaustiveOptA(tab, 3, histogram.RoundNone); err == nil {
		t.Error("n=30 should be refused")
	}
}

// TestOptAUnroundedModeReturnsSameBoundaries checks the Mode plumbing: the
// DP optimizes the rounded estimator; RoundNone only changes answering.
func TestOptAModePlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	counts := randCounts(rng, 12, 30)
	tab := prefix.NewTable(counts)
	h1, _, err := OptA(tab, 3, Config{Mode: histogram.RoundCumulative})
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := OptA(tab, 3, Config{Mode: histogram.RoundNone})
	if err != nil {
		t.Fatal(err)
	}
	if !h1.Buckets.Equal(h2.Buckets) {
		t.Fatalf("modes changed boundaries: %v vs %v", h1.Buckets.Starts, h2.Buckets.Starts)
	}
	if h2.Mode != histogram.RoundNone {
		t.Error("mode not applied")
	}
}

// TestWarmupMatchesImproved: the §2.1.1 warm-up DP and the §2.1.2
// improved DP reach the same optimum; the warm-up generates at least as
// many states.
func TestWarmupMatchesImproved(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(8)
		b := 1 + rng.Intn(3)
		counts := randCounts(rng, n, 30)
		tab := prefix.NewTable(counts)
		_, stImproved, err := OptA(tab, b, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatal(err)
		}
		hw, stWarm, err := OptAWarmup(tab, b, Config{Mode: histogram.RoundCumulative})
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(stWarm.SSE, stImproved.SSE) {
			t.Fatalf("trial %d: warm-up SSE %g != improved %g (counts=%v b=%d)",
				trial, stWarm.SSE, stImproved.SSE, counts, b)
		}
		if got := sse.Of(tab, hw); !approxEq(got, stWarm.SSE) {
			t.Fatalf("trial %d: warm-up reported %g but measured %g", trial, stWarm.SSE, got)
		}
		if stWarm.States < stImproved.States {
			t.Logf("trial %d: warm-up states %d < improved %d (possible with heavy pruning)",
				trial, stWarm.States, stImproved.States)
		}
	}
}

func TestWarmupValidationAndBudget(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	if _, _, err := OptAWarmup(tab, 0, Config{}); err == nil {
		t.Error("b=0 accepted")
	}
	rng := rand.New(rand.NewSource(182))
	big := prefix.NewTable(randCounts(rng, 40, 1000))
	if _, _, err := OptAWarmup(big, 5, Config{MaxStates: 10}); !errors.Is(err, ErrBudget) {
		t.Error("budget not enforced")
	}
}
