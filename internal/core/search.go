package core

import (
	"fmt"
	"math"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// ExhaustiveOptA enumerates every bucketing with at most b buckets and
// returns the average histogram with the smallest SSE under the given
// rounding mode. Exponential in n — it exists as the test oracle for the
// dynamic program and for the tiny-instance benchmark role the paper gives
// the optimal histogram.
func ExhaustiveOptA(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, float64, error) {
	n := tab.N()
	if n <= 0 {
		return nil, 0, fmt.Errorf("core: empty domain")
	}
	if b <= 0 {
		return nil, 0, fmt.Errorf("core: need at least one bucket, got %d", b)
	}
	if n > 24 {
		return nil, 0, fmt.Errorf("core: exhaustive search refuses n=%d > 24", n)
	}
	bestSSE := math.Inf(1)
	var bestStarts []int
	var rec func(starts []int, next int)
	rec = func(starts []int, next int) {
		sse := avgSSE(tab, starts, mode)
		if sse < bestSSE {
			bestSSE = sse
			bestStarts = append([]int(nil), starts...)
		}
		if len(starts) >= b {
			return
		}
		for pos := next; pos < n; pos++ {
			rec(append(starts, pos), pos+1)
		}
	}
	rec([]int{0}, 1)
	bk, err := histogram.NewBucketing(n, bestStarts)
	if err != nil {
		return nil, 0, err
	}
	h, err := histogram.NewAvgFromBounds(tab, bk, mode, "OPT-A(exhaustive)")
	if err != nil {
		return nil, 0, err
	}
	return h, bestSSE, nil
}

// avgSSE evaluates the SSE of the average histogram with the given starts
// via the prefix-error identity, honouring the rounding mode (RoundAnswer
// falls back to the O(n²) definition because it is not
// prefix-decomposable).
func avgSSE(tab *prefix.Table, starts []int, mode histogram.Rounding) float64 {
	n := tab.N()
	bk := &histogram.Bucketing{N: n, Starts: starts}
	h, err := histogram.NewAvgFromBounds(tab, bk, mode, "tmp")
	if err != nil {
		return math.Inf(1)
	}
	switch mode {
	case histogram.RoundAnswer:
		var sum float64
		for a := 0; a < n; a++ {
			for bb := a; bb < n; bb++ {
				d := tab.SumF(a, bb) - h.Estimate(a, bb)
				sum += d * d
			}
		}
		return sum
	case histogram.RoundCumulative:
		return roundedSSE(tab, h)
	default:
		e := make([]float64, n+1)
		for t := 0; t <= n; t++ {
			e[t] = tab.P[t] - h.CumEstimate(t)
		}
		return prefix.SSEFromErrors(e)
	}
}
