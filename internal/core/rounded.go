package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// RoundedResult describes an OPT-A-ROUNDED (or auto) construction.
type RoundedResult struct {
	Hist *histogram.Avg
	// Stats are the exact-DP statistics of the (possibly scaled) run.
	Stats *Stats
	// X is the rounding parameter actually used; 1 means the exact DP ran
	// on the raw data.
	X int64
	// Exact reports whether the result is the provably optimal OPT-A
	// (X == 1).
	Exact bool
}

// OptARounded implements Definition 3 / Theorem 4: divide the data by x
// with unbiased randomized rounding, run the exact DP on the scaled data,
// and lift the resulting bucket boundaries back onto the original data
// (summaries are recomputed as the true bucket averages of the original
// counts, which can only improve on the paper's multiply-back). Runtime
// shrinks by roughly a factor of x because the Λ state space contracts
// by x.
func OptARounded(tab *prefix.Table, b int, x int64, seed int64, cfg Config) (*RoundedResult, error) {
	if x <= 0 {
		return nil, fmt.Errorf("core: rounding parameter x must be positive, got %d", x)
	}
	work := tab
	if x > 1 {
		rng := rand.New(rand.NewSource(seed))
		counts := tab.Counts()
		scaled := make([]int64, len(counts))
		for i, c := range counts {
			q := c / x
			if rem := c % x; rem > 0 && rng.Int63n(x) < rem {
				q++
			}
			scaled[i] = q
		}
		work = prefix.NewTable(scaled)
	}
	scaledCfg := cfg
	if x > 1 {
		scaledCfg.UpperBound = 0 // the caller's bound is in unscaled units
	}
	h, st, err := OptA(work, b, scaledCfg)
	if err != nil {
		return nil, err
	}
	label := "OPT-A"
	if x > 1 {
		label = fmt.Sprintf("OPT-A-ROUNDED(x=%d)", x)
	}
	out, err := histogram.NewAvgFromBounds(tab, h.Buckets, cfg.Mode, label)
	if err != nil {
		return nil, err
	}
	return &RoundedResult{Hist: out, Stats: st, X: x, Exact: x == 1}, nil
}

// OptAAuto runs the exact DP and, if the state budget is exceeded, retries
// OPT-A-ROUNDED with doubling x until it fits. This realizes the paper's
// recommendation of using the pseudopolynomial algorithm as a benchmark
// where feasible and its rounded approximation beyond.
//
// When the data magnitude makes the exact DP hopeless (total mass far
// above ~64·n, which drives the integral Λ state space into the millions)
// it starts directly from a scaled x instead of burning doubling retries;
// instances near or below that threshold — including the paper's dataset —
// still run exactly.
func OptAAuto(tab *prefix.Table, b int, seed int64, cfg Config) (*RoundedResult, error) {
	start := int64(1)
	if target := 64 * int64(tab.N()); tab.Total() > 4*target {
		for start*target < tab.Total() {
			start *= 2
		}
	}
	for x := start; ; x *= 2 {
		res, err := OptARounded(tab, b, x, seed, cfg)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrBudget) {
			return nil, err
		}
		if x > tab.Total() {
			return nil, fmt.Errorf("core: OPT-A did not fit the state budget even at x=%d: %w", x, err)
		}
	}
}

// XForEpsilon picks the rounding parameter x for a target error slack ε,
// using the guarantee direction of Theorem 4: rounding every count by at
// most x perturbs each cumulative error by at most n·x/2 in the worst
// case, so choosing x with N·n·x² ≤ ε·UB keeps the SSE within roughly
// (1+ε) of optimal for instances whose optimal error is near the
// heuristic upper bound UB. Returns at least 1.
func XForEpsilon(tab *prefix.Table, b int, eps float64) int64 {
	if eps <= 0 {
		return 1
	}
	ub := heuristicUpperBound(tab, b)
	if math.IsInf(ub, 1) || ub <= 0 {
		return 1
	}
	n := float64(tab.N())
	x := math.Sqrt(eps * ub / ((n + 1) * n))
	if x < 1 {
		return 1
	}
	return int64(x)
}
