// Package core implements the paper's primary contribution: the exact
// pseudo-polynomial dynamic program for the range-optimal OPT-A histogram
// (§2.1.1–2.1.2, Theorems 1–2) and its (1+ε)-approximate OPT-A-ROUNDED
// variant (§2.1.3, Theorem 4).
//
// # Formulation
//
// With the integral cumulative rounding of DESIGN.md §3.1, a k-bucket
// histogram of the prefix A[0..i-1] fixes integral pointwise errors
// e_t = P[t] − Ĉ[t] for t ≤ i, zero at bucket boundaries. Over the whole
// array the range-query SSE is exactly N·Σe² − (Σe)² (N = n+1), the
// prefix-error identity. The DP state is therefore
//
//	G(i, k, Λ) = min Σ_{t≤i} e_t²  over k-bucket histograms of A[0..i-1]
//	             with Σ_{t≤i} e_t = Λ,
//
// which is precisely the paper's improved F*(i,k,Λ) recurrence — Λ is the
// paper's Λ and G is the minimal Λ₂ — kept sparse in Λ with two admissible
// prunings: per-(i,k) dominance (a hash map keyed by Λ keeps the smallest
// Σe²) and a convexity lower bound against a heuristic upper bound: for m
// remaining positions the final SSE is at least N·q − Λ²·N/(N−m).
package core

import (
	"errors"
	"fmt"
	"math"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// ErrBudget is returned when the exact DP exceeds its state budget; the
// caller should fall back to OPT-A-ROUNDED (or raise the budget).
var ErrBudget = errors.New("core: exact OPT-A state budget exceeded")

// Config tunes the exact dynamic program.
type Config struct {
	// MaxStates caps the total number of DP states retained across all
	// layers (the memory driver — every layer is kept for backtracking);
	// 0 means DefaultMaxStates. When exceeded, OptA returns ErrBudget
	// promptly, so a failed attempt costs at most MaxStates insertions.
	MaxStates int
	// UpperBound is an optional known-achievable SSE used for pruning.
	// When 0, OptA derives one from the best of the equi-width and
	// equi-depth histograms under cumulative rounding.
	UpperBound float64
	// Mode selects the rounding mode of the returned histogram. The DP
	// itself always optimizes the cumulative-rounded estimator (see the
	// package comment); RoundNone (the default) returns the same
	// boundaries with exact real-valued answering.
	Mode histogram.Rounding
}

// DefaultMaxStates bounds DP memory to roughly a few hundred MB worst
// case; real instances stay far below it because of pruning.
const DefaultMaxStates = 4_000_000

// Stats reports what the exact DP did.
type Stats struct {
	// States is the peak number of live states in one layer.
	States int
	// Generated counts every state insertion attempt.
	Generated int64
	// Pruned counts states discarded by the lower-bound test.
	Pruned int64
	// SSE is the optimal objective value (of the cumulative-rounded
	// estimator) found by the DP.
	SSE float64
	// Buckets is the number of buckets in the optimum.
	Buckets int
}

// state is a DP cell for a fixed (position, bucket-count, Λ).
type state struct {
	q float64 // Σ e²  (float64: values can exceed int64 for huge inputs)
	// backtracking: previous boundary and its Λ.
	prevJ   int32
	prevLam int64
}

// OptA computes the range-optimal OPT-A histogram with at most b buckets
// by the exact pseudo-polynomial DP. It returns the histogram (with true
// bucket averages as values), DP statistics, and an error — ErrBudget when
// the sparse state space outgrew cfg.MaxStates.
func OptA(tab *prefix.Table, b int, cfg Config) (*histogram.Avg, *Stats, error) {
	n := tab.N()
	if n <= 0 {
		return nil, nil, fmt.Errorf("core: empty domain")
	}
	if b <= 0 {
		return nil, nil, fmt.Errorf("core: need at least one bucket, got %d", b)
	}
	if b > n {
		b = n
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	ub := cfg.UpperBound
	if ub <= 0 {
		ub = heuristicUpperBound(tab, b)
	}

	// Precompute per-bucket interior error sums: for bucket covering data
	// [j, i-1] (prefix positions j..i), lam[j][i] = Σ interior e_t and
	// q2[j][i] = Σ interior e_t². O(n³) preprocessing, O(n²) memory.
	lam, q2 := bucketErrorTables(tab)

	N := float64(n + 1)
	// layer[k][i] maps Λ → best state. Keep only layers k−1 and k.
	prev := make([]map[int64]state, n+1)
	prev[0] = map[int64]state{0: {q: 0, prevJ: -1}}
	// full[k][i] retained for backtracking.
	full := make([][]map[int64]state, b+1)
	full[0] = prev

	var st Stats
	bestSSE := math.Inf(1)
	bestK, bestI := -1, -1
	var bestLam int64
	totalStates := 0

	for k := 1; k <= b; k++ {
		cur := make([]map[int64]state, n+1)
		layerStates := 0
		for i := k; i <= n; i++ {
			m := n - i // remaining error positions after i
			denom := N - float64(m)
			var cell map[int64]state
			for j := k - 1; j < i; j++ {
				src := prev[j]
				if len(src) == 0 {
					continue
				}
				dLam := lam[j][i]
				dQ := q2[j][i]
				for lamPrev, sPrev := range src {
					nl := lamPrev + dLam
					nq := sPrev.q + dQ
					st.Generated++
					// Admissible lower bound on the final SSE from here.
					lb := N*nq - float64(nl)*float64(nl)*N/denom
					if lb > ub {
						st.Pruned++
						continue
					}
					if cell == nil {
						cell = make(map[int64]state)
					}
					if old, ok := cell[nl]; !ok || nq < old.q {
						if !ok {
							layerStates++
							totalStates++
							if totalStates > maxStates {
								return nil, &st, fmt.Errorf("%w: %d retained states at layer k=%d (budget %d)",
									ErrBudget, totalStates, k, maxStates)
							}
						}
						cell[nl] = state{q: nq, prevJ: int32(j), prevLam: lamPrev}
					}
				}
			}
			cur[i] = cell
		}
		if layerStates > st.States {
			st.States = layerStates
		}
		// Check completions at i = n with exactly k buckets. Ties in SSE
		// break toward the smaller Λ so the chosen optimum (and therefore
		// the backtracked boundaries) never depends on map iteration order:
		// construction must be bit-reproducible run to run.
		for lamVal, s := range cur[n] {
			sse := N*s.q - float64(lamVal)*float64(lamVal)
			if sse < bestSSE || (sse == bestSSE && k == bestK && lamVal < bestLam) {
				bestSSE, bestK, bestI, bestLam = sse, k, n, lamVal
			}
		}
		if bestSSE < ub {
			ub = bestSSE // tighten pruning for later layers
		}
		full[k] = cur
		prev = cur
	}
	if bestK < 0 {
		return nil, &st, fmt.Errorf("core: no feasible OPT-A solution (over-pruned?)")
	}
	st.SSE = bestSSE
	st.Buckets = bestK

	// Backtrack boundaries.
	starts := make([]int, bestK)
	i, lamVal := bestI, bestLam
	for k := bestK; k >= 1; k-- {
		s, ok := full[k][i][lamVal]
		if !ok {
			return nil, &st, fmt.Errorf("core: backtracking lost state at k=%d i=%d", k, i)
		}
		starts[k-1] = int(s.prevJ)
		i, lamVal = int(s.prevJ), s.prevLam
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, &st, err
	}
	h, err := histogram.NewAvgFromBounds(tab, bk, cfg.Mode, "OPT-A")
	if err != nil {
		return nil, &st, err
	}
	return h, &st, nil
}

// bucketErrorTables computes, for every bucket [j, i-1] in prefix-position
// form (0 ≤ j < i ≤ n), the sum and sum of squares of the interior rounded
// cumulative errors e_t = P[t] − RoundedCum(...), t ∈ (j, i).
func bucketErrorTables(tab *prefix.Table) (lam [][]int64, q2 [][]float64) {
	n := tab.N()
	lam = make([][]int64, n+1)
	q2 = make([][]float64, n+1)
	for j := 0; j <= n; j++ {
		lam[j] = make([]int64, n+1)
		q2[j] = make([]float64, n+1)
	}
	for j := 0; j < n; j++ {
		for i := j + 1; i <= n; i++ {
			// Bucket over data [j, i-1]; interior prefix positions t ∈ (j, i).
			var l int64
			var q float64
			for t := j + 1; t < i; t++ {
				e := tab.PInt[t] - tab.RoundedCum(j, i-1, t)
				l += e
				q += float64(e) * float64(e)
			}
			lam[j][i] = l
			q2[j][i] = q
		}
	}
	return lam, q2
}

// heuristicUpperBound returns an SSE achievable by some at-most-b-bucket
// cumulative-rounded average histogram, for pruning.
func heuristicUpperBound(tab *prefix.Table, b int) float64 {
	ub := math.Inf(1)
	if bk, err := histogram.EquiWidth(tab.N(), b); err == nil {
		if h, err := histogram.NewAvgFromBounds(tab, bk, histogram.RoundCumulative, "ub"); err == nil {
			if v := roundedSSE(tab, h); v < ub {
				ub = v
			}
		}
	}
	if bk, err := histogram.EquiDepth(tab, b); err == nil {
		if h, err := histogram.NewAvgFromBounds(tab, bk, histogram.RoundCumulative, "ub"); err == nil {
			if v := roundedSSE(tab, h); v < ub {
				ub = v
			}
		}
	}
	if math.IsInf(ub, 1) {
		// Single bucket always exists.
		bk := &histogram.Bucketing{N: tab.N(), Starts: []int{0}}
		if h, err := histogram.NewAvgFromBounds(tab, bk, histogram.RoundCumulative, "ub"); err == nil {
			ub = roundedSSE(tab, h)
		}
	}
	return ub
}

// roundedSSE evaluates the exact SSE of a cumulative-rounded average
// histogram via the prefix-error identity (duplicated from internal/sse to
// avoid a dependency cycle through tests; it is two lines).
func roundedSSE(tab *prefix.Table, h *histogram.Avg) float64 {
	n := tab.N()
	e := make([]float64, n+1)
	for t := 0; t <= n; t++ {
		e[t] = tab.P[t] - math.Round(h.CumEstimate(t))
	}
	return prefix.SSEFromErrors(e)
}
