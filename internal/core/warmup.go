package core

import (
	"fmt"
	"math"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// OptAWarmup is the paper's §2.1.1 warm-up algorithm: the dynamic program
// that carries BOTH running sums (Λ, Λ₂) in its state, i.e.
// E*(i,k,Λ₂,Λ), instead of the improved §2.1.2 formulation that keys on Λ
// alone and minimizes Λ₂ (OptA here). Both reach the same optimum; the
// warm-up explores every reachable (Λ, Λ₂) pair and is kept as an
// executable ablation of why the improvement matters (compare
// Stats.Generated). Use OptA for real work.
func OptAWarmup(tab *prefix.Table, b int, cfg Config) (*histogram.Avg, *Stats, error) {
	n := tab.N()
	if n <= 0 {
		return nil, nil, fmt.Errorf("core: empty domain")
	}
	if b <= 0 {
		return nil, nil, fmt.Errorf("core: need at least one bucket, got %d", b)
	}
	if b > n {
		b = n
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	ub := cfg.UpperBound
	if ub <= 0 {
		ub = heuristicUpperBound(tab, b)
	}
	lam, q2 := bucketErrorTables(tab)
	N := float64(n + 1)

	type key struct {
		lam int64
		q   int64 // Λ₂ is integral for integral data; q2 values are whole numbers
	}
	type wstate struct {
		prevJ   int32
		prevLam int64
		prevQ   int64
	}
	prev := make([]map[key]wstate, n+1)
	prev[0] = map[key]wstate{{0, 0}: {prevJ: -1}}
	full := make([][]map[key]wstate, b+1)
	full[0] = prev

	var st Stats
	bestSSE := math.Inf(1)
	bestK := -1
	var bestKey key
	totalStates := 0

	for k := 1; k <= b; k++ {
		cur := make([]map[key]wstate, n+1)
		layerStates := 0
		for i := k; i <= n; i++ {
			m := n - i
			denom := N - float64(m)
			var cell map[key]wstate
			for j := k - 1; j < i; j++ {
				src := prev[j]
				if len(src) == 0 {
					continue
				}
				dLam := lam[j][i]
				dQ := int64(q2[j][i])
				for kk := range src {
					nl := kk.lam + dLam
					nq := kk.q + dQ
					st.Generated++
					lb := N*float64(nq) - float64(nl)*float64(nl)*N/denom
					if lb > ub {
						st.Pruned++
						continue
					}
					if cell == nil {
						cell = make(map[key]wstate)
					}
					nk := key{nl, nq}
					if _, ok := cell[nk]; !ok {
						layerStates++
						totalStates++
						if totalStates > maxStates {
							return nil, &st, fmt.Errorf("%w: %d retained states at layer k=%d (budget %d)",
								ErrBudget, totalStates, k, maxStates)
						}
						cell[nk] = wstate{prevJ: int32(j), prevLam: kk.lam, prevQ: kk.q}
					}
				}
			}
			cur[i] = cell
		}
		if layerStates > st.States {
			st.States = layerStates
		}
		// Ties in SSE break toward the lexicographically smaller key so the
		// result never depends on map iteration order (see OptA).
		for kk := range cur[n] {
			sse := N*float64(kk.q) - float64(kk.lam)*float64(kk.lam)
			better := sse < bestSSE
			if sse == bestSSE && k == bestK {
				better = kk.lam < bestKey.lam || (kk.lam == bestKey.lam && kk.q < bestKey.q)
			}
			if better {
				bestSSE, bestK, bestKey = sse, k, kk
			}
		}
		if bestSSE < ub {
			ub = bestSSE
		}
		full[k] = cur
		prev = cur
	}
	if bestK < 0 {
		return nil, &st, fmt.Errorf("core: no feasible OPT-A solution (over-pruned?)")
	}
	st.SSE = bestSSE
	st.Buckets = bestK

	starts := make([]int, bestK)
	i, kk := n, bestKey
	for k := bestK; k >= 1; k-- {
		s, ok := full[k][i][kk]
		if !ok {
			return nil, &st, fmt.Errorf("core: warm-up backtracking lost state at k=%d i=%d", k, i)
		}
		starts[k-1] = int(s.prevJ)
		i, kk = int(s.prevJ), key{s.prevLam, s.prevQ}
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, &st, err
	}
	h, err := histogram.NewAvgFromBounds(tab, bk, cfg.Mode, "OPT-A(warmup)")
	if err != nil {
		return nil, &st, err
	}
	return h, &st, nil
}
