package histogram

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Estimator is the answering interface every histogram in this package
// satisfies.
type Estimator interface {
	// Estimate approximates s[a,b] for an inclusive range in [0, N).
	Estimate(a, b int) float64
	// N is the domain size.
	N() int
	// StorageWords is the paper's space accounting for the summary.
	StorageWords() int
	// Name identifies the construction.
	Name() string
}

var (
	_ Estimator = (*Avg)(nil)
	_ Estimator = (*SAP0)(nil)
	_ Estimator = (*SAP1)(nil)
	_ Estimator = (*SAP2)(nil)
)

// Encoded is the serialization form shared by the JSON and binary codecs.
type Encoded struct {
	Kind   string      `json:"kind"` // "avg", "sap0", "sap1"
	Label  string      `json:"label"`
	N      int         `json:"n"`
	Starts []int       `json:"starts"`
	Mode   int         `json:"mode,omitempty"`
	Series [][]float64 `json:"series"`
}

// Encode converts a histogram to its serialization form.
func Encode(e Estimator) (*Encoded, error) {
	switch h := e.(type) {
	case *Avg:
		return &Encoded{
			Kind: "avg", Label: h.Label, N: h.Buckets.N,
			Starts: h.Buckets.Starts, Mode: int(h.Mode),
			Series: [][]float64{h.Values},
		}, nil
	case *SAP0:
		return &Encoded{
			Kind: "sap0", Label: h.Label, N: h.Buckets.N,
			Starts: h.Buckets.Starts,
			Series: [][]float64{h.Suff, h.Pref},
		}, nil
	case *SAP1:
		return &Encoded{
			Kind: "sap1", Label: h.Label, N: h.Buckets.N,
			Starts: h.Buckets.Starts,
			Series: [][]float64{h.SuffSlope, h.SuffIntercept, h.PrefSlope, h.PrefIntercept},
		}, nil
	case *SAP2:
		return &Encoded{
			Kind: "sap2", Label: h.Label, N: h.Buckets.N,
			Starts: h.Buckets.Starts,
			Series: [][]float64{h.Suff2, h.Suff1, h.Suff0, h.Pref2, h.Pref1, h.Pref0},
		}, nil
	default:
		return nil, fmt.Errorf("histogram: cannot encode %T", e)
	}
}

// Decode reconstructs a histogram from its serialization form.
func Decode(enc *Encoded) (Estimator, error) {
	b, err := NewBucketing(enc.N, enc.Starts)
	if err != nil {
		return nil, err
	}
	need := func(k int) error {
		if len(enc.Series) != k {
			return fmt.Errorf("histogram: kind %q wants %d series, got %d", enc.Kind, k, len(enc.Series))
		}
		return nil
	}
	switch enc.Kind {
	case "avg":
		if err := need(1); err != nil {
			return nil, err
		}
		return NewAvg(b, enc.Series[0], Rounding(enc.Mode), enc.Label)
	case "sap0":
		if err := need(2); err != nil {
			return nil, err
		}
		return NewSAP0(b, enc.Series[0], enc.Series[1], enc.Label)
	case "sap1":
		if err := need(4); err != nil {
			return nil, err
		}
		return NewSAP1(b, enc.Series[0], enc.Series[1], enc.Series[2], enc.Series[3], enc.Label)
	case "sap2":
		if err := need(6); err != nil {
			return nil, err
		}
		return NewSAP2(b, enc.Series[0], enc.Series[1], enc.Series[2],
			enc.Series[3], enc.Series[4], enc.Series[5], enc.Label)
	default:
		return nil, fmt.Errorf("histogram: unknown kind %q", enc.Kind)
	}
}

// MarshalJSON / round trips via the default struct tags.

// WriteJSON serializes a histogram as JSON.
func WriteJSON(w io.Writer, e Estimator) error {
	enc, err := Encode(e)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(enc)
}

// ReadJSON deserializes a histogram from JSON.
func ReadJSON(r io.Reader) (Estimator, error) {
	var enc Encoded
	if err := json.NewDecoder(r).Decode(&enc); err != nil {
		return nil, fmt.Errorf("histogram: decoding JSON: %w", err)
	}
	return Decode(&enc)
}

// binaryMagic guards the compact binary format.
const binaryMagic = uint32(0x52414747) // "RAGG"

// WriteBinary serializes a histogram in a compact little-endian binary
// format suitable for the storage engine.
func WriteBinary(w io.Writer, e Estimator) error {
	enc, err := Encode(e)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	put := func(v any) {
		// Errors from bytes.Buffer writes are impossible; binary.Write only
		// fails on unsupported types, which the fixed call sites exclude.
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			panic(err)
		}
	}
	put(binaryMagic)
	putString(&buf, enc.Kind)
	putString(&buf, enc.Label)
	put(uint32(enc.N))
	put(uint32(enc.Mode))
	put(uint32(len(enc.Starts)))
	for _, s := range enc.Starts {
		put(uint32(s))
	}
	put(uint32(len(enc.Series)))
	for _, series := range enc.Series {
		put(uint32(len(series)))
		for _, v := range series {
			put(math.Float64bits(v))
		}
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// ReadBinary deserializes a histogram written by WriteBinary.
func ReadBinary(r io.Reader) (Estimator, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("histogram: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("histogram: bad magic %#x", magic)
	}
	var enc Encoded
	var err error
	if enc.Kind, err = getString(r); err != nil {
		return nil, err
	}
	if enc.Label, err = getString(r); err != nil {
		return nil, err
	}
	var n, mode, nStarts uint32
	for _, p := range []*uint32{&n, &mode, &nStarts} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("histogram: reading header: %w", err)
		}
	}
	const limit = 1 << 26 // refuse absurd sizes from corrupt streams
	if n > limit || nStarts > limit {
		return nil, fmt.Errorf("histogram: corrupt sizes n=%d starts=%d", n, nStarts)
	}
	enc.N = int(n)
	enc.Mode = int(mode)
	enc.Starts = make([]int, nStarts)
	for i := range enc.Starts {
		var s uint32
		if err := binary.Read(r, binary.LittleEndian, &s); err != nil {
			return nil, fmt.Errorf("histogram: reading starts: %w", err)
		}
		enc.Starts[i] = int(s)
	}
	var nSeries uint32
	if err := binary.Read(r, binary.LittleEndian, &nSeries); err != nil {
		return nil, fmt.Errorf("histogram: reading series count: %w", err)
	}
	if nSeries > 8 {
		return nil, fmt.Errorf("histogram: corrupt series count %d", nSeries)
	}
	enc.Series = make([][]float64, nSeries)
	for i := range enc.Series {
		var ln uint32
		if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
			return nil, fmt.Errorf("histogram: reading series length: %w", err)
		}
		if ln > limit {
			return nil, fmt.Errorf("histogram: corrupt series length %d", ln)
		}
		series := make([]float64, ln)
		for j := range series {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("histogram: reading series value: %w", err)
			}
			series[j] = math.Float64frombits(bits)
		}
		enc.Series[i] = series
	}
	return Decode(&enc)
}

func putString(buf *bytes.Buffer, s string) {
	if err := binary.Write(buf, binary.LittleEndian, uint32(len(s))); err != nil {
		panic(err)
	}
	buf.WriteString(s)
}

func getString(r io.Reader) (string, error) {
	var ln uint32
	if err := binary.Read(r, binary.LittleEndian, &ln); err != nil {
		return "", fmt.Errorf("histogram: reading string length: %w", err)
	}
	if ln > 1<<16 {
		return "", fmt.Errorf("histogram: corrupt string length %d", ln)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("histogram: reading string: %w", err)
	}
	return string(b), nil
}
