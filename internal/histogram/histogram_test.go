package histogram

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/prefix"
)

const eps = 1e-9

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-9*scale
}

func TestBucketingValidate(t *testing.T) {
	cases := []struct {
		n      int
		starts []int
		ok     bool
	}{
		{5, []int{0}, true},
		{5, []int{0, 2, 4}, true},
		{5, []int{1, 2}, false},    // must start at 0
		{5, []int{0, 2, 2}, false}, // not strictly increasing
		{5, []int{0, 5}, false},    // start beyond domain
		{0, []int{0}, false},       // empty domain
		{5, nil, false},            // no buckets
	}
	for _, c := range cases {
		_, err := NewBucketing(c.n, c.starts)
		if (err == nil) != c.ok {
			t.Errorf("NewBucketing(%d,%v): err=%v, want ok=%v", c.n, c.starts, err, c.ok)
		}
	}
}

func TestBucketingBoundsAndFind(t *testing.T) {
	b, err := NewBucketing(10, []int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	wantBounds := [][2]int{{0, 2}, {3, 6}, {7, 9}}
	for i, w := range wantBounds {
		lo, hi := b.Bounds(i)
		if lo != w[0] || hi != w[1] {
			t.Errorf("Bounds(%d) = (%d,%d), want %v", i, lo, hi, w)
		}
	}
	for pos := 0; pos < 10; pos++ {
		i := b.Find(pos)
		lo, hi := b.Bounds(i)
		if pos < lo || pos > hi {
			t.Errorf("Find(%d) = bucket %d [%d,%d]", pos, i, lo, hi)
		}
	}
	if b.Len(1) != 4 {
		t.Errorf("Len(1) = %d, want 4", b.Len(1))
	}
}

func TestBucketingFindPanics(t *testing.T) {
	b, _ := NewBucketing(3, []int{0})
	defer func() {
		if recover() == nil {
			t.Error("Find(-1) should panic")
		}
	}()
	b.Find(-1)
}

func TestEquiWidth(t *testing.T) {
	b, err := EquiWidth(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumBuckets() != 4 {
		t.Fatalf("buckets = %d, want 4", b.NumBuckets())
	}
	total := 0
	for i := 0; i < b.NumBuckets(); i++ {
		total += b.Len(i)
	}
	if total != 10 {
		t.Errorf("bucket widths sum to %d, want 10", total)
	}
	// More buckets than values collapses gracefully.
	b2, err := EquiWidth(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b2.NumBuckets() != 3 {
		t.Errorf("overfull equi-width = %d buckets, want 3", b2.NumBuckets())
	}
	if _, err := EquiWidth(5, 0); err == nil {
		t.Error("zero buckets should fail")
	}
}

func TestEquiDepth(t *testing.T) {
	// All mass at the right: boundaries should crowd right.
	counts := []int64{0, 0, 0, 0, 10, 10, 10, 10}
	tab := prefix.NewTable(counts)
	b, err := EquiDepth(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Starts[1] < 4 {
		t.Errorf("equi-depth ignored mass skew: starts=%v", b.Starts)
	}
	// Zero data degrades to equi-width.
	zero := prefix.NewTable(make([]int64, 8))
	bz, err := EquiDepth(zero, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bz.NumBuckets() != 4 {
		t.Errorf("zero-mass equi-depth = %d buckets", bz.NumBuckets())
	}
}

func TestMaxDiff(t *testing.T) {
	counts := []int64{1, 1, 100, 100, 1, 1}
	b, err := MaxDiff(counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The two jumps are at positions 2 and 4.
	want := []int{0, 2, 4}
	if len(b.Starts) != len(want) {
		t.Fatalf("starts = %v, want %v", b.Starts, want)
	}
	for i := range want {
		if b.Starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", b.Starts, want)
		}
	}
	if _, err := MaxDiff(nil, 3); err == nil {
		t.Error("empty counts should fail")
	}
}

// bruteEstimateAvg evaluates the paper's formula (1) directly.
func bruteEstimateAvg(b *Bucketing, values []float64, a, bb int) float64 {
	var s float64
	for i := a; i <= bb; i++ {
		s += values[b.Find(i)]
	}
	return s
}

func TestAvgEstimateMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	counts := make([]int64, 20)
	for i := range counts {
		counts[i] = rng.Int63n(40)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(20, []int{0, 4, 9, 15})
	h, err := NewAvgFromBounds(tab, b, RoundNone, "OPT-A")
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 20; a++ {
		for bb := a; bb < 20; bb++ {
			want := bruteEstimateAvg(b, h.Values, a, bb)
			if got := h.Estimate(a, bb); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, bb, got, want)
			}
		}
	}
}

func TestAvgCumExactAtBoundaries(t *testing.T) {
	counts := []int64{5, 1, 7, 2, 9, 4}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(6, []int{0, 2, 4})
	h, _ := NewAvgFromBounds(tab, b, RoundNone, "OPT-A")
	for _, boundary := range []int{0, 2, 4, 6} {
		if got := h.CumEstimate(boundary); !approxEq(got, float64(tab.PInt[boundary])) {
			t.Errorf("CumEstimate(%d) = %g, want %d", boundary, got, tab.PInt[boundary])
		}
	}
}

func TestAvgRoundingModes(t *testing.T) {
	counts := []int64{1, 2}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(2, []int{0})
	// avg = 1.5; query [0,0] unrounded = 1.5.
	h, _ := NewAvgFromBounds(tab, b, RoundNone, "x")
	if got := h.Estimate(0, 0); !approxEq(got, 1.5) {
		t.Fatalf("unrounded = %g, want 1.5", got)
	}
	h.Mode = RoundAnswer
	got := h.Estimate(0, 0)
	if got != 1 && got != 2 {
		t.Fatalf("RoundAnswer = %g, want integral neighbour", got)
	}
	h.Mode = RoundCumulative
	got = h.Estimate(0, 0)
	if got != math.Trunc(got) {
		t.Fatalf("RoundCumulative = %g, want integral", got)
	}
	// Whole-domain queries stay exact under cumulative rounding.
	if got := h.Estimate(0, 1); got != 3 {
		t.Fatalf("whole domain = %g, want 3", got)
	}
}

func TestNaive(t *testing.T) {
	tab := prefix.NewTable([]int64{2, 4, 6})
	h := NewNaive(tab)
	if h.StorageWords() != 1 {
		t.Errorf("naive storage = %d, want 1", h.StorageWords())
	}
	if got := h.Estimate(0, 2); !approxEq(got, 12) {
		t.Errorf("naive full-range = %g, want 12", got)
	}
	if got := h.Estimate(1, 1); !approxEq(got, 4) {
		t.Errorf("naive point = %g, want 4", got)
	}
}

func TestAvgStorage(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3, 4})
	b, _ := NewBucketing(4, []int{0, 2})
	h, _ := NewAvgFromBounds(tab, b, RoundNone, "x")
	if h.StorageWords() != 4 {
		t.Errorf("storage = %d, want 2B=4", h.StorageWords())
	}
}

func TestAvgSetValues(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3, 4})
	b, _ := NewBucketing(4, []int{0, 2})
	h, _ := NewAvgFromBounds(tab, b, RoundNone, "x")
	if err := h.SetValues([]float64{1}); err == nil {
		t.Error("wrong length should fail")
	}
	if err := h.SetValues([]float64{2, 5}); err != nil {
		t.Fatal(err)
	}
	if got := h.Estimate(0, 3); !approxEq(got, 2*2+2*5) {
		t.Errorf("after SetValues estimate = %g, want 14", got)
	}
}

// bruteSAP0 computes the SAP0 answer from the definition with summaries
// given, for cross-checking Estimate.
func TestSAP0DerivedAvgIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	counts := make([]int64, 24)
	for i := range counts {
		counts[i] = rng.Int63n(30)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(24, []int{0, 5, 11, 17})
	h, err := NewSAP0FromBounds(tab, b, "SAP0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.NumBuckets(); i++ {
		lo, hi := b.Bounds(i)
		if got, want := h.Avg(i), tab.Avg(lo, hi); !approxEq(got, want) {
			t.Errorf("derived avg(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestSAP0EstimateStructure(t *testing.T) {
	counts := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(8, []int{0, 3, 6})
	h, _ := NewSAP0FromBounds(tab, b, "SAP0")
	// Intra-bucket query uses avg × width.
	if got, want := h.Estimate(0, 1), 2*tab.Avg(0, 2); !approxEq(got, want) {
		t.Errorf("intra = %g, want %g", got, want)
	}
	// Inter-bucket response depends only on the buckets, not on a and b.
	if got1, got2 := h.Estimate(0, 6), h.Estimate(2, 7); !approxEq(got1, got2) {
		t.Errorf("SAP0 inter-bucket answers differ within the same bucket pair: %g vs %g", got1, got2)
	}
	// And equals suff + middle + pref.
	want := h.Suff[0] + float64(b.Len(1))*h.Avg(1) + h.Pref[2]
	if got := h.Estimate(1, 7); !approxEq(got, want) {
		t.Errorf("inter = %g, want %g", got, want)
	}
}

func TestSAP1DerivedAvgIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	counts := make([]int64, 24)
	for i := range counts {
		counts[i] = rng.Int63n(30)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(24, []int{0, 5, 11, 17})
	h, err := NewSAP1FromBounds(tab, b, "SAP1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.NumBuckets(); i++ {
		lo, hi := b.Bounds(i)
		if got, want := h.Avg(i), tab.Avg(lo, hi); !approxEq(got, want) {
			t.Errorf("derived avg(%d) = %g, want %g", i, got, want)
		}
	}
}

func TestSAP1GeneralizesAvg(t *testing.T) {
	// With suff' = pref' = bucket avg and suff = pref = 0, SAP1's answers
	// must coincide with the unrounded OPT-A answers (the paper's
	// observation at the end of §2.2.2).
	rng := rand.New(rand.NewSource(34))
	counts := make([]int64, 16)
	for i := range counts {
		counts[i] = rng.Int63n(20)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(16, []int{0, 4, 9, 13})
	avgH, _ := NewAvgFromBounds(tab, b, RoundNone, "OPT-A")
	nb := b.NumBuckets()
	slopes := make([]float64, nb)
	zeros := make([]float64, nb)
	for i := 0; i < nb; i++ {
		slopes[i] = avgH.Values[i]
	}
	ss := append([]float64(nil), slopes...)
	ps := append([]float64(nil), slopes...)
	h, err := NewSAP1(b, ss, zeros, ps, append([]float64(nil), zeros...), "SAP1-as-OPT-A")
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 16; a++ {
		for bb := a; bb < 16; bb++ {
			if got, want := h.Estimate(a, bb), avgH.Estimate(a, bb); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, bb, got, want)
			}
		}
	}
}

func TestSAP1SuffixModelUsed(t *testing.T) {
	counts := []int64{3, 1, 4, 1, 5, 9, 2, 6}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(8, []int{0, 3, 6})
	h, _ := NewSAP1FromBounds(tab, b, "SAP1")
	// Unlike SAP0, SAP1's inter-bucket answer moves with a.
	want := h.SuffSlope[0]*3 + h.SuffIntercept[0] + float64(b.Len(1))*h.Avg(1) +
		h.PrefSlope[2]*2 + h.PrefIntercept[2]
	if got := h.Estimate(0, 7); !approxEq(got, want) {
		t.Errorf("Estimate(0,7) = %g, want %g", got, want)
	}
}

func TestStorageAccounting(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3, 4, 5, 6})
	b, _ := NewBucketing(6, []int{0, 2, 4})
	s0, _ := NewSAP0FromBounds(tab, b, "SAP0")
	s1, _ := NewSAP1FromBounds(tab, b, "SAP1")
	av, _ := NewAvgFromBounds(tab, b, RoundNone, "OPT-A")
	if av.StorageWords() != 6 || s0.StorageWords() != 9 || s1.StorageWords() != 15 {
		t.Errorf("storage = %d/%d/%d, want 6/9/15", av.StorageWords(), s0.StorageWords(), s1.StorageWords())
	}
}

func TestSAP2DerivedAvgIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	counts := make([]int64, 24)
	for i := range counts {
		counts[i] = rng.Int63n(30)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(24, []int{0, 5, 11, 17})
	h, err := NewSAP2FromBounds(tab, b, "SAP2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.NumBuckets(); i++ {
		lo, hi := b.Bounds(i)
		if got, want := h.Avg(i), tab.Avg(lo, hi); !approxEq(got, want) {
			t.Errorf("derived avg(%d) = %g, want %g", i, got, want)
		}
	}
	if h.StorageWords() != 7*4 {
		t.Errorf("storage = %d, want 28", h.StorageWords())
	}
}

func TestSAP2ExactOnQuadraticPrefixData(t *testing.T) {
	// Counts that are a linear function of the index give quadratic prefix
	// sums; SAP2's suffix/prefix models then fit every query in a single
	// bucket *exactly* (inter-bucket; intra still uses the average).
	counts := make([]int64, 12)
	for i := range counts {
		counts[i] = int64(2*i + 1)
	}
	tab := prefix.NewTable(counts)
	b, _ := NewBucketing(12, []int{0, 4, 8})
	h, err := NewSAP2FromBounds(tab, b, "SAP2")
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 12; a++ {
		for bb := a; bb < 12; bb++ {
			if h.Buckets.Find(a) == h.Buckets.Find(bb) {
				continue // intra-bucket answers use the average
			}
			if got, want := h.Estimate(a, bb), tab.SumF(a, bb); !approxEq(got, want) {
				t.Fatalf("Estimate(%d,%d) = %g, want %g", a, bb, got, want)
			}
		}
	}
}
