package histogram

// Bucketed is implemented by estimators that partition the domain into
// contiguous buckets and expose that structure — what the coarsen-lift
// path needs to read boundaries off a coarse build.
type Bucketed interface {
	// BucketStarts returns the bucket start positions (ascending, first 0).
	BucketStarts() []int
	// BucketLabel returns the construction label, e.g. "A0".
	BucketLabel() string
}

func (h *Avg) BucketStarts() []int { return h.Buckets.Starts }

func (h *Avg) BucketLabel() string { return h.Label }

func (h *SAP0) BucketStarts() []int { return h.Buckets.Starts }

func (h *SAP0) BucketLabel() string { return h.Label }

func (h *SAP1) BucketStarts() []int { return h.Buckets.Starts }

func (h *SAP1) BucketLabel() string { return h.Label }

func (h *SAP2) BucketStarts() []int { return h.Buckets.Starts }

func (h *SAP2) BucketLabel() string { return h.Label }
