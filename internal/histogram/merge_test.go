package histogram

import (
	"math/rand"
	"testing"

	"rangeagg/internal/prefix"
)

func TestMergeAvgIsExactSum(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(25)
		c1 := make([]int64, n)
		c2 := make([]int64, n)
		for i := range c1 {
			c1[i] = rng.Int63n(40)
			c2[i] = rng.Int63n(40)
		}
		t1 := prefix.NewTable(c1)
		t2 := prefix.NewTable(c2)
		b1 := randStarts(rng, n)
		b2 := randStarts(rng, n)
		bk1, _ := NewBucketing(n, b1)
		bk2, _ := NewBucketing(n, b2)
		h1, _ := NewAvgFromBounds(t1, bk1, RoundNone, "shard1")
		h2, _ := NewAvgFromBounds(t2, bk2, RoundNone, "shard2")
		merged, err := MergeAvg(h1, h2)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				want := h1.Estimate(a, b) + h2.Estimate(a, b)
				if got := merged.Estimate(a, b); !approxEq(got, want) {
					t.Fatalf("trial %d: merged(%d,%d) = %g, want %g", trial, a, b, got, want)
				}
			}
		}
		if nb := merged.Buckets.NumBuckets(); nb > bk1.NumBuckets()+bk2.NumBuckets()-1 {
			t.Fatalf("merged buckets %d exceed union bound", nb)
		}
	}
}

func randStarts(rng *rand.Rand, n int) []int {
	starts := []int{0}
	for pos := 1; pos < n; pos++ {
		if rng.Intn(4) == 0 {
			starts = append(starts, pos)
		}
	}
	return starts
}

func TestMergeAvgValidation(t *testing.T) {
	t1 := prefix.NewTable([]int64{1, 2, 3})
	t2 := prefix.NewTable([]int64{1, 2})
	bk1, _ := NewBucketing(3, []int{0})
	bk2, _ := NewBucketing(2, []int{0})
	h1, _ := NewAvgFromBounds(t1, bk1, RoundNone, "a")
	h2, _ := NewAvgFromBounds(t2, bk2, RoundNone, "b")
	if _, err := MergeAvg(h1, h2); err == nil {
		t.Error("different domains accepted")
	}
	h3, _ := NewAvgFromBounds(t1, bk1, RoundAnswer, "c")
	h4, _ := NewAvgFromBounds(t1, bk1, RoundNone, "d")
	if _, err := MergeAvg(h3, h4); err == nil {
		t.Error("rounded input accepted")
	}
}

func TestMergeAvgPreservesExactAverages(t *testing.T) {
	// When each shard's data is constant within its own buckets (so the
	// stored averages describe every sub-range exactly), the merged values
	// are the true averages of the summed distribution on the refined
	// bucketing. (In general only estimate additivity holds — the test
	// above.)
	c1 := []int64{4, 4, 0, 0, 8, 8}
	c2 := []int64{1, 1, 1, 3, 3, 3}
	t1 := prefix.NewTable(c1)
	t2 := prefix.NewTable(c2)
	bk1, _ := NewBucketing(6, []int{0, 2, 4})
	bk2, _ := NewBucketing(6, []int{0, 3})
	h1, _ := NewAvgFromBounds(t1, bk1, RoundNone, "s1")
	h2, _ := NewAvgFromBounds(t2, bk2, RoundNone, "s2")
	merged, err := MergeAvg(h1, h2)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]int64, 6)
	for i := range sum {
		sum[i] = c1[i] + c2[i]
	}
	ts := prefix.NewTable(sum)
	for k := 0; k < merged.Buckets.NumBuckets(); k++ {
		lo, hi := merged.Buckets.Bounds(k)
		if want := ts.Avg(lo, hi); !approxEq(merged.Values[k], want) {
			t.Errorf("bucket %d value %g, want true average %g", k, merged.Values[k], want)
		}
	}
}
