package histogram

import (
	"fmt"

	"rangeagg/internal/prefix"
)

// SAP2 extends the paper's §2.2.2 ("more generally, we can also store
// other values") one degree further than SAP1: each bucket stores
// quadratic models for its suffix and prefix sums,
//
//	s[a, B>] ≈ S2·ℓ² + S1·ℓ + S0   (ℓ = B> − a + 1)
//	s[B<, b] ≈ P2·ℓ² + P1·ℓ + P0   (ℓ = b − B< + 1)
//
// fitted by least squares. An intercept-included LS fit has residuals
// summing to zero, so the decomposition lemma's cross-term cancellation
// still applies and the O(n²B) dynamic program remains exact for this
// representation. Storage: 7B words (boundary + six model coefficients).
type SAP2 struct {
	Buckets *Bucketing
	Suff2   []float64
	Suff1   []float64
	Suff0   []float64
	Pref2   []float64
	Pref1   []float64
	Pref0   []float64
	Label   string

	avg []float64
	cum []float64
}

// NewSAP2 assembles a SAP2 histogram from stored summaries.
func NewSAP2(b *Bucketing, s2, s1, s0, p2, p1, p0 []float64, label string) (*SAP2, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nb := b.NumBuckets()
	for _, s := range [][]float64{s2, s1, s0, p2, p1, p0} {
		if len(s) != nb {
			return nil, fmt.Errorf("histogram: SAP2 wants %d summaries per kind", nb)
		}
	}
	h := &SAP2{Buckets: b, Suff2: s2, Suff1: s1, Suff0: s0,
		Pref2: p2, Pref1: p1, Pref0: p0, Label: label}
	h.derive()
	return h, nil
}

// NewSAP2FromBounds computes the optimal (least-squares) SAP2 summaries
// for the given bucketing.
func NewSAP2FromBounds(tab *prefix.Table, b *Bucketing, label string) (*SAP2, error) {
	if b.N != tab.N() {
		return nil, fmt.Errorf("histogram: bucketing n=%d does not match data n=%d", b.N, tab.N())
	}
	nb := b.NumBuckets()
	s2 := make([]float64, nb)
	s1 := make([]float64, nb)
	s0 := make([]float64, nb)
	p2 := make([]float64, nb)
	p1 := make([]float64, nb)
	p0 := make([]float64, nb)
	for i := 0; i < nb; i++ {
		lo, hi := b.Bounds(i)
		s2[i], s1[i], s0[i] = tab.SuffixQuad(lo, hi)
		p2[i], p1[i], p0[i] = tab.PrefixQuad(lo, hi)
	}
	return NewSAP2(b, s2, s1, s0, p2, p1, p0, label)
}

func (h *SAP2) derive() {
	nb := h.Buckets.NumBuckets()
	h.avg = make([]float64, nb)
	h.cum = make([]float64, nb+1)
	for i := 0; i < nb; i++ {
		m := float64(h.Buckets.Len(i))
		// Mean of the fitted model over ℓ = 1..m equals the mean of the
		// true prefix/suffix sums (LS with intercept preserves the mean).
		meanL := (m + 1) / 2
		meanL2 := (m + 1) * (2*m + 1) / 6
		suff0 := h.Suff2[i]*meanL2 + h.Suff1[i]*meanL + h.Suff0[i]
		pref0 := h.Pref2[i]*meanL2 + h.Pref1[i]*meanL + h.Pref0[i]
		h.avg[i] = (pref0 + suff0) / (m + 1)
		h.cum[i+1] = h.cum[i] + m*h.avg[i]
	}
}

// N returns the domain size.
func (h *SAP2) N() int { return h.Buckets.N }

// Name identifies the construction.
func (h *SAP2) Name() string { return h.Label }

// StorageWords returns 7B.
func (h *SAP2) StorageWords() int { return 7 * h.Buckets.NumBuckets() }

// Avg returns the derived average of bucket i.
func (h *SAP2) Avg(i int) float64 { return h.avg[i] }

// Estimate answers the range query [a,b].
func (h *SAP2) Estimate(a, b int) float64 {
	if a < 0 || b >= h.Buckets.N || a > b {
		panic(fmt.Sprintf("histogram: invalid range [%d,%d] for n=%d", a, b, h.Buckets.N))
	}
	ba, bb := h.Buckets.Find(a), h.Buckets.Find(b)
	if ba == bb {
		return float64(b-a+1) * h.avg[ba]
	}
	_, hiA := h.Buckets.Bounds(ba)
	loB, _ := h.Buckets.Bounds(bb)
	ls := float64(hiA - a + 1)
	lp := float64(b - loB + 1)
	suffix := h.Suff2[ba]*ls*ls + h.Suff1[ba]*ls + h.Suff0[ba]
	prefixPart := h.Pref2[bb]*lp*lp + h.Pref1[bb]*lp + h.Pref0[bb]
	middle := h.cum[bb] - h.cum[ba+1]
	return suffix + middle + prefixPart
}

// String summarizes the histogram.
func (h *SAP2) String() string {
	return fmt.Sprintf("%s{buckets=%d words=%d}", h.Label, h.Buckets.NumBuckets(), h.StorageWords())
}
