package histogram

import (
	"fmt"
	"math"

	"rangeagg/internal/prefix"
)

// Rounding selects how an average histogram applies the paper's "[·]"
// integer rounding when answering queries.
type Rounding int

const (
	// RoundNone answers with the exact real-valued estimate. This is what
	// the quality experiments use for every method.
	RoundNone Rounding = iota
	// RoundAnswer rounds the final answer of each query to the nearest
	// integer — the most literal reading of the paper's equation (1).
	RoundAnswer
	// RoundCumulative rounds the cumulative estimate Ĉ[t] at each prefix
	// position and answers with differences of rounded values. This is the
	// instantiation the exact OPT-A dynamic program optimizes: it is a
	// legal "arbitrary nearby integer" rounding and keeps the estimator
	// prefix-decomposable with integral errors (DESIGN.md §3.1).
	RoundCumulative
)

// Avg is the classical histogram: one summary value per bucket. It is the
// representation behind OPT-A, A0, POINT-OPT, NAIVE, the equi-width /
// equi-depth / maxdiff baselines, and every reopt'd histogram (whose
// values are no longer bucket averages). Storage: 2B words (B−1 interior
// boundaries + B values, counted as 2B as in the paper), or 1 word for the
// single-bucket NAIVE.
type Avg struct {
	Buckets *Bucketing
	// Values holds the per-bucket summary value (the bucket average for
	// OPT-A/A0, the weighted average for POINT-OPT, the re-optimized value
	// for *-reopt).
	Values []float64
	// Mode is the rounding behaviour of Estimate.
	Mode Rounding
	// Label names the construction that produced this histogram.
	Label string

	// cum[i] = Σ_{j<i} len(j)·Values[j]; cached for O(1) middle sums.
	cum []float64
}

// NewAvg assembles an average histogram from a bucketing and values.
func NewAvg(b *Bucketing, values []float64, mode Rounding, label string) (*Avg, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(values) != b.NumBuckets() {
		return nil, fmt.Errorf("histogram: %d values for %d buckets", len(values), b.NumBuckets())
	}
	h := &Avg{Buckets: b, Values: values, Mode: mode, Label: label}
	h.rebuildCum()
	return h, nil
}

// NewAvgFromBounds computes the true bucket averages from the data for the
// given bucketing — the OPT-A representation for those boundaries.
func NewAvgFromBounds(tab *prefix.Table, b *Bucketing, mode Rounding, label string) (*Avg, error) {
	if b.N != tab.N() {
		return nil, fmt.Errorf("histogram: bucketing n=%d does not match data n=%d", b.N, tab.N())
	}
	values := make([]float64, b.NumBuckets())
	for i := range values {
		lo, hi := b.Bounds(i)
		values[i] = tab.Avg(lo, hi)
	}
	return NewAvg(b, values, mode, label)
}

// NewNaive returns the paper's NAIVE summary: the single global average.
// Its storage is a single word.
func NewNaive(tab *prefix.Table) *Avg {
	b := &Bucketing{N: tab.N(), Starts: []int{0}}
	h, err := NewAvg(b, []float64{tab.Avg(0, tab.N()-1)}, RoundNone, "NAIVE")
	if err != nil {
		panic(err) // cannot happen: the bucketing is valid by construction
	}
	return h
}

func (h *Avg) rebuildCum() {
	h.cum = make([]float64, h.Buckets.NumBuckets()+1)
	for i := 0; i < h.Buckets.NumBuckets(); i++ {
		h.cum[i+1] = h.cum[i] + float64(h.Buckets.Len(i))*h.Values[i]
	}
}

// SetValues replaces the per-bucket values (used by reopt) and refreshes
// the cached cumulative sums.
func (h *Avg) SetValues(values []float64) error {
	if len(values) != h.Buckets.NumBuckets() {
		return fmt.Errorf("histogram: %d values for %d buckets", len(values), h.Buckets.NumBuckets())
	}
	h.Values = values
	h.rebuildCum()
	return nil
}

// N returns the domain size.
func (h *Avg) N() int { return h.Buckets.N }

// Name identifies the construction.
func (h *Avg) Name() string { return h.Label }

// StorageWords returns the space accounting of the paper: 2B for a real
// histogram, 1 for the single-bucket NAIVE.
func (h *Avg) StorageWords() int {
	b := h.Buckets.NumBuckets()
	if b == 1 {
		return 1
	}
	return 2 * b
}

// CumEstimate returns the cumulative estimate Ĉ[t] = estimate of s[0,t-1],
// for t in [0,n]. The curve is piecewise linear with the bucket values as
// slopes; Ĉ[0] = 0.
func (h *Avg) CumEstimate(t int) float64 {
	if t < 0 || t > h.Buckets.N {
		panic(fmt.Sprintf("histogram: cumulative position %d outside [0,%d]", t, h.Buckets.N))
	}
	if t == 0 {
		return 0
	}
	i := h.Buckets.Find(t - 1)
	lo, _ := h.Buckets.Bounds(i)
	return h.cum[i] + float64(t-lo)*h.Values[i]
}

// Estimate answers the range query [a,b] (inclusive) with the paper's
// equation (1), applying the configured rounding.
func (h *Avg) Estimate(a, b int) float64 {
	if a < 0 || b >= h.Buckets.N || a > b {
		panic(fmt.Sprintf("histogram: invalid range [%d,%d] for n=%d", a, b, h.Buckets.N))
	}
	switch h.Mode {
	case RoundCumulative:
		return math.Round(h.CumEstimate(b+1)) - math.Round(h.CumEstimate(a))
	case RoundAnswer:
		return math.Round(h.CumEstimate(b+1) - h.CumEstimate(a))
	default:
		return h.CumEstimate(b+1) - h.CumEstimate(a)
	}
}

// BucketAvg returns the stored value of the bucket containing pos,
// answering a point query per the classical histogram assumption of
// uniformity within a bucket.
func (h *Avg) BucketAvg(pos int) float64 {
	return h.Values[h.Buckets.Find(pos)]
}

// String summarizes the histogram.
func (h *Avg) String() string {
	return fmt.Sprintf("%s{buckets=%d words=%d}", h.Label, h.Buckets.NumBuckets(), h.StorageWords())
}
