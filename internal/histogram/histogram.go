// Package histogram defines the bucketed summary representations studied
// by the paper — the classical average histogram (OPT-A / A0 / POINT-OPT
// share it), the SAP0 suffix/average/prefix histogram, and the SAP1
// higher-order histogram — together with their query-answering procedures,
// storage accounting, and serialization.
//
// Construction (choosing the bucket boundaries and summaries) lives in
// internal/dp and internal/core; this package only represents and answers.
package histogram

import (
	"fmt"
	"math"
	"sort"

	"rangeagg/internal/prefix"
)

// Bucketing is a partition of the domain [0,n) into contiguous buckets.
// Starts[i] is the first index of bucket i; Starts[0] must be 0 and the
// slice strictly increasing below N.
type Bucketing struct {
	N      int
	Starts []int
}

// NewBucketing validates and returns a bucketing.
func NewBucketing(n int, starts []int) (*Bucketing, error) {
	b := &Bucketing{N: n, Starts: starts}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Validate checks the structural invariants.
func (b *Bucketing) Validate() error {
	if b.N <= 0 {
		return fmt.Errorf("histogram: bucketing over empty domain (n=%d)", b.N)
	}
	if len(b.Starts) == 0 {
		return fmt.Errorf("histogram: bucketing with no buckets")
	}
	if b.Starts[0] != 0 {
		return fmt.Errorf("histogram: first bucket must start at 0, got %d", b.Starts[0])
	}
	for i := 1; i < len(b.Starts); i++ {
		if b.Starts[i] <= b.Starts[i-1] {
			return fmt.Errorf("histogram: starts not strictly increasing at %d", i)
		}
	}
	if last := b.Starts[len(b.Starts)-1]; last >= b.N {
		return fmt.Errorf("histogram: bucket start %d beyond domain n=%d", last, b.N)
	}
	return nil
}

// NumBuckets returns the number of buckets.
func (b *Bucketing) NumBuckets() int { return len(b.Starts) }

// Bounds returns the inclusive range [lo,hi] of bucket i.
func (b *Bucketing) Bounds(i int) (lo, hi int) {
	lo = b.Starts[i]
	if i+1 < len(b.Starts) {
		hi = b.Starts[i+1] - 1
	} else {
		hi = b.N - 1
	}
	return lo, hi
}

// Len returns the width of bucket i.
func (b *Bucketing) Len(i int) int {
	lo, hi := b.Bounds(i)
	return hi - lo + 1
}

// Find returns the index of the bucket containing position pos.
func (b *Bucketing) Find(pos int) int {
	if pos < 0 || pos >= b.N {
		panic(fmt.Sprintf("histogram: position %d outside domain n=%d", pos, b.N))
	}
	// sort.Search finds the first start > pos; the bucket is the one before.
	i := sort.Search(len(b.Starts), func(k int) bool { return b.Starts[k] > pos })
	return i - 1
}

// Equal reports whether two bucketings are identical.
func (b *Bucketing) Equal(o *Bucketing) bool {
	if b.N != o.N || len(b.Starts) != len(o.Starts) {
		return false
	}
	for i := range b.Starts {
		if b.Starts[i] != o.Starts[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (b *Bucketing) Clone() *Bucketing {
	s := make([]int, len(b.Starts))
	copy(s, b.Starts)
	return &Bucketing{N: b.N, Starts: s}
}

// EquiWidth returns the bucketing that splits [0,n) into B near-equal
// width buckets.
func EquiWidth(n, buckets int) (*Bucketing, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("histogram: need positive bucket count, got %d", buckets)
	}
	if buckets > n {
		buckets = n
	}
	starts := make([]int, buckets)
	for i := range starts {
		starts[i] = i * n / buckets
	}
	// Guard against duplicate starts when buckets ~ n.
	starts = dedupStarts(starts)
	return NewBucketing(n, starts)
}

// EquiDepth returns the bucketing whose boundaries are at the quantiles of
// the data mass: each bucket holds roughly Total/B records.
func EquiDepth(tab *prefix.Table, buckets int) (*Bucketing, error) {
	n := tab.N()
	if buckets <= 0 {
		return nil, fmt.Errorf("histogram: need positive bucket count, got %d", buckets)
	}
	if buckets > n {
		buckets = n
	}
	total := tab.Total()
	if total == 0 {
		return EquiWidth(n, buckets)
	}
	starts := make([]int, 0, buckets)
	starts = append(starts, 0)
	for i := 1; i < buckets; i++ {
		target := int64(math.Round(float64(total) * float64(i) / float64(buckets)))
		// First position whose prefix mass reaches the target.
		pos := sort.Search(n, func(k int) bool { return tab.PInt[k+1] >= target })
		if pos >= n {
			pos = n - 1
		}
		if pos <= starts[len(starts)-1] {
			pos = starts[len(starts)-1] + 1
		}
		if pos >= n {
			break
		}
		starts = append(starts, pos)
	}
	return NewBucketing(n, starts)
}

// MaxDiff returns the bucketing whose boundaries sit after the B−1 largest
// adjacent count differences, the classical MaxDiff heuristic.
func MaxDiff(counts []int64, buckets int) (*Bucketing, error) {
	n := len(counts)
	if n == 0 {
		return nil, fmt.Errorf("histogram: empty counts")
	}
	if buckets <= 0 {
		return nil, fmt.Errorf("histogram: need positive bucket count, got %d", buckets)
	}
	if buckets > n {
		buckets = n
	}
	type gap struct {
		pos  int // boundary before counts[pos]
		diff int64
	}
	gaps := make([]gap, 0, n-1)
	for i := 1; i < n; i++ {
		d := counts[i] - counts[i-1]
		if d < 0 {
			d = -d
		}
		gaps = append(gaps, gap{pos: i, diff: d})
	}
	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].diff != gaps[j].diff {
			return gaps[i].diff > gaps[j].diff
		}
		return gaps[i].pos < gaps[j].pos
	})
	cut := buckets - 1
	if cut > len(gaps) {
		cut = len(gaps)
	}
	starts := make([]int, 0, cut+1)
	starts = append(starts, 0)
	for _, g := range gaps[:cut] {
		starts = append(starts, g.pos)
	}
	sort.Ints(starts)
	starts = dedupStarts(starts)
	return NewBucketing(n, starts)
}

func dedupStarts(starts []int) []int {
	out := starts[:0]
	last := -1
	for _, s := range starts {
		if s != last {
			out = append(out, s)
			last = s
		}
	}
	return out
}
