package histogram

import (
	"fmt"

	"rangeagg/internal/prefix"
)

// SAP0 is the paper's suffix/average/prefix histogram (§2.2.1). Each
// bucket i carries a suffix summary suff(i) — the average of the bucket's
// suffix sums — and a prefix summary pref(i) — the average of its prefix
// sums. An inter-bucket query (a,b) is answered by
//
//	suff(buck(a)) + Σ_middle bucketTotal + pref(buck(b))
//
// independent of where inside their buckets a and b fall; an intra-bucket
// query uses the bucket average times the query width. The bucket average
// (and hence the exact bucket total used for the middle) is recovered from
// the stored summaries: avg = (pref + suff) / (m + 1), because the mean of
// prefix sums plus the mean of suffix sums equals s·(m+1)/m for a bucket
// with total s and width m. Storage: 3B words (Theorem 7).
type SAP0 struct {
	Buckets *Bucketing
	Suff    []float64
	Pref    []float64
	// Label names the construction ("SAP0" for the optimal DP).
	Label string

	avg []float64 // derived
	cum []float64 // derived: cumulative bucket totals
}

// NewSAP0 assembles a SAP0 histogram from its stored summaries.
func NewSAP0(b *Bucketing, suff, pref []float64, label string) (*SAP0, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if len(suff) != b.NumBuckets() || len(pref) != b.NumBuckets() {
		return nil, fmt.Errorf("histogram: SAP0 wants %d summaries, got %d/%d",
			b.NumBuckets(), len(suff), len(pref))
	}
	h := &SAP0{Buckets: b, Suff: suff, Pref: pref, Label: label}
	h.derive()
	return h, nil
}

// NewSAP0FromBounds computes the optimal SAP0 summaries (Lemma 5 part 2:
// the averages of bucket suffix and prefix sums) for the given bucketing.
func NewSAP0FromBounds(tab *prefix.Table, b *Bucketing, label string) (*SAP0, error) {
	if b.N != tab.N() {
		return nil, fmt.Errorf("histogram: bucketing n=%d does not match data n=%d", b.N, tab.N())
	}
	nb := b.NumBuckets()
	suff := make([]float64, nb)
	pref := make([]float64, nb)
	for i := 0; i < nb; i++ {
		lo, hi := b.Bounds(i)
		suff[i] = tab.SuffixMean(lo, hi)
		pref[i] = tab.PrefixMean(lo, hi)
	}
	return NewSAP0(b, suff, pref, label)
}

func (h *SAP0) derive() {
	nb := h.Buckets.NumBuckets()
	h.avg = make([]float64, nb)
	h.cum = make([]float64, nb+1)
	for i := 0; i < nb; i++ {
		m := float64(h.Buckets.Len(i))
		h.avg[i] = (h.Pref[i] + h.Suff[i]) / (m + 1)
		h.cum[i+1] = h.cum[i] + m*h.avg[i]
	}
}

// N returns the domain size.
func (h *SAP0) N() int { return h.Buckets.N }

// Name identifies the construction.
func (h *SAP0) Name() string { return h.Label }

// StorageWords returns 3B per Theorem 7.
func (h *SAP0) StorageWords() int { return 3 * h.Buckets.NumBuckets() }

// Avg returns the derived average of bucket i.
func (h *SAP0) Avg(i int) float64 { return h.avg[i] }

// Estimate answers the range query [a,b].
func (h *SAP0) Estimate(a, b int) float64 {
	if a < 0 || b >= h.Buckets.N || a > b {
		panic(fmt.Sprintf("histogram: invalid range [%d,%d] for n=%d", a, b, h.Buckets.N))
	}
	ba, bb := h.Buckets.Find(a), h.Buckets.Find(b)
	if ba == bb {
		return float64(b-a+1) * h.avg[ba]
	}
	middle := h.cum[bb] - h.cum[ba+1]
	return h.Suff[ba] + middle + h.Pref[bb]
}

// String summarizes the histogram.
func (h *SAP0) String() string {
	return fmt.Sprintf("%s{buckets=%d words=%d}", h.Label, h.Buckets.NumBuckets(), h.StorageWords())
}
