package histogram

import (
	"bytes"
	"strings"
	"testing"

	"rangeagg/internal/prefix"
)

func buildAll(t *testing.T) []Estimator {
	t.Helper()
	tab := prefix.NewTable([]int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3})
	b, err := NewBucketing(10, []int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	av, err := NewAvgFromBounds(tab, b, RoundAnswer, "OPT-A")
	if err != nil {
		t.Fatal(err)
	}
	s0, err := NewSAP0FromBounds(tab, b, "SAP0")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSAP1FromBounds(tab, b, "SAP1")
	if err != nil {
		t.Fatal(err)
	}
	return []Estimator{av, s0, s1}
}

func sameAnswers(t *testing.T, a, b Estimator) {
	t.Helper()
	if a.N() != b.N() || a.Name() != b.Name() || a.StorageWords() != b.StorageWords() {
		t.Fatalf("metadata mismatch: %v vs %v", a, b)
	}
	for x := 0; x < a.N(); x++ {
		for y := x; y < a.N(); y++ {
			if g, w := b.Estimate(x, y), a.Estimate(x, y); !approxEq(g, w) {
				t.Fatalf("%s Estimate(%d,%d) = %g, want %g", a.Name(), x, y, g, w)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for _, h := range buildAll(t) {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, h); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		sameAnswers(t, h, got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, h := range buildAll(t) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, h); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		sameAnswers(t, h, got)
	}
}

func TestReadBinaryRejectsCorruption(t *testing.T) {
	h := buildAll(t)[0]
	var buf bytes.Buffer
	if err := WriteBinary(&buf, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Bad magic.
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Empty stream.
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestReadJSONRejectsBadKind(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"kind":"nope","n":3,"starts":[0],"series":[[1]]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"kind":"sap0","n":3,"starts":[0],"series":[[1]]}`)); err == nil {
		t.Error("wrong series count accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{broken`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"kind":"avg","n":3,"starts":[2],"series":[[1]]}`)); err == nil {
		t.Error("invalid bucketing accepted")
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode(fakeEstimator{}); err == nil {
		t.Error("unknown estimator type accepted")
	}
}

type fakeEstimator struct{}

func (fakeEstimator) Estimate(a, b int) float64 { return 0 }
func (fakeEstimator) N() int                    { return 1 }
func (fakeEstimator) StorageWords() int         { return 0 }
func (fakeEstimator) Name() string              { return "fake" }
