package histogram

import "fmt"

// MergeAvg combines two average histograms built over the *same domain*
// from two disjoint record sets (shards): the result summarizes the
// summed distribution A₁+A₂ exactly as well as its inputs — it refines to
// the union of the boundary sets and adds the per-bucket values, so for
// every range, estimate_merged = estimate₁ + estimate₂ exactly (both
// answers are linear in the stored values). The price is up to B₁+B₂−1
// buckets; callers wanting a budget re-run construction on merged data.
//
// Rounding modes other than RoundNone are rejected: rounded answers do
// not add exactly.
func MergeAvg(a, b *Avg) (*Avg, error) {
	if a.Buckets.N != b.Buckets.N {
		return nil, fmt.Errorf("histogram: merge over different domains %d vs %d", a.Buckets.N, b.Buckets.N)
	}
	if a.Mode != RoundNone || b.Mode != RoundNone {
		return nil, fmt.Errorf("histogram: merge requires unrounded answering")
	}
	n := a.Buckets.N
	// Union of starts (both contain 0, both sorted).
	starts := make([]int, 0, len(a.Buckets.Starts)+len(b.Buckets.Starts))
	i, j := 0, 0
	for i < len(a.Buckets.Starts) || j < len(b.Buckets.Starts) {
		var next int
		switch {
		case i >= len(a.Buckets.Starts):
			next = b.Buckets.Starts[j]
			j++
		case j >= len(b.Buckets.Starts):
			next = a.Buckets.Starts[i]
			i++
		case a.Buckets.Starts[i] <= b.Buckets.Starts[j]:
			next = a.Buckets.Starts[i]
			if b.Buckets.Starts[j] == next {
				j++
			}
			i++
		default:
			next = b.Buckets.Starts[j]
			j++
		}
		if len(starts) == 0 || starts[len(starts)-1] != next {
			starts = append(starts, next)
		}
	}
	bk, err := NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	values := make([]float64, bk.NumBuckets())
	for k := range values {
		lo, _ := bk.Bounds(k)
		values[k] = a.Values[a.Buckets.Find(lo)] + b.Values[b.Buckets.Find(lo)]
	}
	return NewAvg(bk, values, RoundNone, a.Label+"+"+b.Label)
}
