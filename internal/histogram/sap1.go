package histogram

import (
	"fmt"

	"rangeagg/internal/prefix"
)

// SAP1 is the paper's higher-order histogram (§2.2.2). Each bucket stores
// linear models for its suffix and prefix sums:
//
//	s[a, B>] ≈ SuffSlope·(B> − a + 1) + SuffIntercept
//	s[B<, b] ≈ PrefSlope·(b − B< + 1) + PrefIntercept
//
// fitted by least squares (the optimal summaries per the paper). As in
// SAP0 the bucket averages are recovered from the stored summaries: a
// least-squares fit preserves the mean of the fitted values, so the SAP0
// means — and hence the exact bucket totals for middle pieces — are
// slope·(m+1)/2 + intercept. Storage: 5B words (Theorem 8).
type SAP1 struct {
	Buckets       *Bucketing
	SuffSlope     []float64
	SuffIntercept []float64
	PrefSlope     []float64
	PrefIntercept []float64
	Label         string

	avg []float64
	cum []float64
}

// NewSAP1 assembles a SAP1 histogram from stored summaries.
func NewSAP1(b *Bucketing, suffSlope, suffIntercept, prefSlope, prefIntercept []float64, label string) (*SAP1, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	nb := b.NumBuckets()
	for _, s := range [][]float64{suffSlope, suffIntercept, prefSlope, prefIntercept} {
		if len(s) != nb {
			return nil, fmt.Errorf("histogram: SAP1 wants %d summaries per kind", nb)
		}
	}
	h := &SAP1{
		Buckets: b, SuffSlope: suffSlope, SuffIntercept: suffIntercept,
		PrefSlope: prefSlope, PrefIntercept: prefIntercept, Label: label,
	}
	h.derive()
	return h, nil
}

// NewSAP1FromBounds computes the optimal (least-squares) SAP1 summaries
// for the given bucketing.
func NewSAP1FromBounds(tab *prefix.Table, b *Bucketing, label string) (*SAP1, error) {
	if b.N != tab.N() {
		return nil, fmt.Errorf("histogram: bucketing n=%d does not match data n=%d", b.N, tab.N())
	}
	nb := b.NumBuckets()
	ss := make([]float64, nb)
	si := make([]float64, nb)
	ps := make([]float64, nb)
	pi := make([]float64, nb)
	for i := 0; i < nb; i++ {
		lo, hi := b.Bounds(i)
		ss[i], si[i] = tab.SuffixLine(lo, hi)
		ps[i], pi[i] = tab.PrefixLine(lo, hi)
	}
	return NewSAP1(b, ss, si, ps, pi, label)
}

func (h *SAP1) derive() {
	nb := h.Buckets.NumBuckets()
	h.avg = make([]float64, nb)
	h.cum = make([]float64, nb+1)
	for i := 0; i < nb; i++ {
		m := float64(h.Buckets.Len(i))
		meanLen := (m + 1) / 2
		suff0 := h.SuffSlope[i]*meanLen + h.SuffIntercept[i]
		pref0 := h.PrefSlope[i]*meanLen + h.PrefIntercept[i]
		h.avg[i] = (pref0 + suff0) / (m + 1)
		h.cum[i+1] = h.cum[i] + m*h.avg[i]
	}
}

// N returns the domain size.
func (h *SAP1) N() int { return h.Buckets.N }

// Name identifies the construction.
func (h *SAP1) Name() string { return h.Label }

// StorageWords returns 5B per Theorem 8.
func (h *SAP1) StorageWords() int { return 5 * h.Buckets.NumBuckets() }

// Avg returns the derived average of bucket i.
func (h *SAP1) Avg(i int) float64 { return h.avg[i] }

// Estimate answers the range query [a,b].
func (h *SAP1) Estimate(a, b int) float64 {
	if a < 0 || b >= h.Buckets.N || a > b {
		panic(fmt.Sprintf("histogram: invalid range [%d,%d] for n=%d", a, b, h.Buckets.N))
	}
	ba, bb := h.Buckets.Find(a), h.Buckets.Find(b)
	if ba == bb {
		return float64(b-a+1) * h.avg[ba]
	}
	_, hiA := h.Buckets.Bounds(ba)
	loB, _ := h.Buckets.Bounds(bb)
	suffix := h.SuffSlope[ba]*float64(hiA-a+1) + h.SuffIntercept[ba]
	prefixPart := h.PrefSlope[bb]*float64(b-loB+1) + h.PrefIntercept[bb]
	middle := h.cum[bb] - h.cum[ba+1]
	return suffix + middle + prefixPart
}

// String summarizes the histogram.
func (h *SAP1) String() string {
	return fmt.Sprintf("%s{buckets=%d words=%d}", h.Label, h.Buckets.NumBuckets(), h.StorageWords())
}
