package experiments

import (
	"fmt"
	"math"
	"strings"
)

// PlotLog renders the table's rows as series on a log10 y-axis over the
// column positions, as plain text for terminals — the shape of the
// paper's Figure 1 at a glance. Rows containing non-positive values plot
// only their positive points (log scale); the NAIVE row still shows as a
// flat top line.
func PlotLog(t *Table, height int) string {
	if height < 4 {
		height = 12
	}
	// Collect the log range.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v > 0 {
				lv := math.Log10(v)
				minV = math.Min(minV, lv)
				maxV = math.Max(maxV, lv)
			}
		}
	}
	if math.IsInf(minV, 1) || minV == maxV {
		return "(nothing to plot)\n"
	}
	cols := len(t.Columns)
	colWidth := 6
	width := cols * colWidth
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	marks := "oxs+*#@%&"
	for ri, r := range t.Rows {
		mark := marks[ri%len(marks)]
		for ci, v := range r.Values {
			if v <= 0 || ci >= cols {
				continue
			}
			frac := (math.Log10(v) - minV) / (maxV - minV)
			y := int(math.Round(float64(height-1) * (1 - frac)))
			x := ci*colWidth + colWidth/2
			if y >= 0 && y < height && x < width {
				grid[y][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "log10(SSE), %.1f (top) .. %.1f (bottom)\n", maxV, minV)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n   ")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s", colWidth, c)
	}
	b.WriteByte('\n')
	for ri, r := range t.Rows {
		fmt.Fprintf(&b, "   %c = %s\n", marks[ri%len(marks)], r.Label)
	}
	return b.String()
}
