// Package experiments regenerates every figure, table and quantified
// in-text claim of the paper's evaluation (§4), plus the ablations listed
// in DESIGN.md §6. Each experiment returns a Table that cmd/synbench
// prints and EXPERIMENTS.md records; bench_test.go at the repository root
// wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"rangeagg/internal/build"
	"rangeagg/internal/core"
	"rangeagg/internal/dataset"
	"rangeagg/internal/grid"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
	"rangeagg/internal/sse"
)

// Config parameterizes an experiment run.
type Config struct {
	// Data is the attribute-value distribution; nil selects the paper's
	// dataset (127 randomly rounded Zipf(1.8) keys).
	Data *dataset.Distribution
	// Budgets are the storage budgets (words) of the sweep; nil selects
	// the default 8..64 sweep matching Figure 1's x-axis range.
	Budgets []int
	// Seed drives randomized steps.
	Seed int64
	// MaxStates bounds the exact OPT-A DP per layer (0 = default).
	MaxStates int
}

func (c Config) withDefaults() (Config, error) {
	if c.Data == nil {
		d, err := dataset.Zipf(dataset.DefaultPaper())
		if err != nil {
			return c, err
		}
		c.Data = d
	}
	if len(c.Budgets) == 0 {
		// The sweep covers Figure 1's x-axis range and extends far enough
		// that the 5-words-per-bucket SAP1 histogram has a meaningful
		// number of buckets at the top end.
		c.Budgets = []int{8, 12, 16, 24, 32, 48, 64, 96, 128}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one labelled series of values.
type Row struct {
	Label  string
	Values []float64
}

// WriteTo renders the table as aligned text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	width := 14
	fmt.Fprintf(&b, "%-18s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-18s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*s", width, formatVal(v))
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func formatVal(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// roundingFor selects each method's answering procedure as the paper
// defines it, from the registry descriptor: the average-histogram family
// answers with the integrally rounded equation (1) — the estimator the
// exact OPT-A dynamic program optimizes and the reason its Λ state space
// is integral — while SAP0, SAP1 and the wavelets answer with real
// values ("in contrast with OPT-A, the above value is not necessarily an
// integer", §2.2.1).
func roundingFor(m build.Method) histogram.Rounding {
	return method.MustLookup(m).PaperRounding
}

// forEachIndexed runs fn for every index in [0, n) concurrently over the
// shared worker pool and returns the first error in index order. Each fn
// call writes only its own per-index results, so every experiment table
// comes out deterministic regardless of pool width.
func forEachIndexed(n int, fn func(i int) error) error {
	errs := make([]error, n)
	parallel.ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildAndScore constructs a method at a budget with its paper-defined
// answering procedure and returns its exact SSE over all ranges.
func buildAndScore(counts []int64, tab *prefix.Table, opt build.Options) (float64, error) {
	opt.Rounding = roundingFor(opt.Method)
	est, err := build.Build(counts, opt)
	if err != nil {
		return math.NaN(), err
	}
	return sse.Of(tab, est), nil
}

// Fig1 reproduces Figure 1: SSE (log-scale in the paper) against storage
// words for each summary representation on the paper's dataset. The
// methods are the figure's NAIVE, POINT-OPT, A0, SAP0, SAP1, OPT-A and
// TOPBB, extended with this repository's WAVE-RANGEOPT and WAVE-AA2D.
func Fig1(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	methods := []build.Method{
		build.Naive, build.PointOpt, build.A0, build.SAP0, build.SAP1,
		build.OptA, build.WaveTopBB, build.WaveRangeOpt, build.WaveAA2D,
	}
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("Figure 1 — SSE vs storage words on %s", cfg.Data.Name),
	}
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	nb := len(cfg.Budgets)
	vals := make([]float64, len(methods)*nb)
	err = forEachIndexed(len(vals), func(idx int) error {
		m, w := methods[idx/nb], cfg.Budgets[idx%nb]
		opt := build.Options{Method: m, BudgetWords: w, Seed: cfg.Seed, MaxStates: cfg.MaxStates}
		if m == build.Naive {
			opt = build.Options{Method: m}
		}
		v, err := buildAndScore(counts, tab, opt)
		if err != nil {
			return fmt.Errorf("fig1 %s w=%d: %w", m, w, err)
		}
		vals[idx] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range methods {
		t.Rows = append(t.Rows, Row{Label: m.String(), Values: vals[mi*nb : (mi+1)*nb]})
	}
	t.Notes = append(t.Notes,
		"paper shape: NAIVE worst by orders of magnitude; OPT-A best; range-aware heuristics (A0) close behind;",
		"POINT-OPT and SAP0 clearly inferior per word; wavelet TOPBB qualitatively worse than the histograms",
		"NAIVE uses 1 word regardless of column")
	return t, nil
}

// PointOptRatio reproduces the claim "POINT-OPT is up to 8 times worse
// than OPT-A ... on average OPT-A is more than three times better".
func PointOptRatio(cfg Config) (*Table, error) {
	return ratioTable(cfg, "E2",
		"SSE(POINT-OPT) / SSE(OPT-A) per storage budget",
		build.PointOpt, build.OptA,
		"paper: max ratio up to 8, mean ratio > 3")
}

// Sap1Ratio reproduces the claim "OPT-A is 2-4 times better than SAP1 with
// respect to SSE for a given space bound".
func Sap1Ratio(cfg Config) (*Table, error) {
	return ratioTable(cfg, "E3",
		"SSE(SAP1) / SSE(OPT-A) per storage budget",
		build.SAP1, build.OptA,
		"paper: ratio between 2 and 4 (more buckets beat richer per-bucket statistics)")
}

func ratioTable(cfg Config, id, title string, num, den build.Method, note string) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	t := &Table{ID: id, Title: title}
	numRow := Row{Label: num.String()}
	denRow := Row{Label: den.String()}
	ratioRow := Row{Label: "ratio"}
	nb := len(cfg.Budgets)
	nvs := make([]float64, nb)
	dvs := make([]float64, nb)
	err = forEachIndexed(2*nb, func(idx int) error {
		m, out := num, nvs
		if idx >= nb {
			m, out = den, dvs
		}
		w := cfg.Budgets[idx%nb]
		v, err := buildAndScore(counts, tab, build.Options{Method: m, BudgetWords: w, Seed: cfg.Seed, MaxStates: cfg.MaxStates})
		if err != nil {
			return err
		}
		out[idx%nb] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	var maxRatio, sumRatio float64
	var count int
	for i, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
		nv, dv := nvs[i], dvs[i]
		r := math.NaN()
		if dv > 0 {
			r = nv / dv
			maxRatio = math.Max(maxRatio, r)
			sumRatio += r
			count++
		}
		numRow.Values = append(numRow.Values, nv)
		denRow.Values = append(denRow.Values, dv)
		ratioRow.Values = append(ratioRow.Values, r)
	}
	t.Rows = []Row{numRow, denRow, ratioRow}
	if count > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("measured: max ratio %.2f, mean ratio %.2f", maxRatio, sumRatio/float64(count)))
	}
	t.Notes = append(t.Notes, note)
	return t, nil
}

// Sap0Rank reproduces the claim that SAP0 is "inferior (in terms of SSE
// per unit storage) to all other histograms": at every budget it compares
// SAP0 to each other range-aware histogram.
func Sap0Rank(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	methods := []build.Method{build.SAP0, build.A0, build.SAP1, build.SAP2, build.OptA}
	t := &Table{ID: "E4", Title: "SAP0 vs other range-aware histograms (SSE at equal words)"}
	nb := len(cfg.Budgets)
	flat := make([]float64, len(methods)*nb)
	err = forEachIndexed(len(flat), func(idx int) error {
		m, w := methods[idx/nb], cfg.Budgets[idx%nb]
		v, err := buildAndScore(counts, tab, build.Options{Method: m, BudgetWords: w, Seed: cfg.Seed, MaxStates: cfg.MaxStates})
		if err != nil {
			return err
		}
		flat[idx] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	vals := make(map[build.Method][]float64)
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	for mi, m := range methods {
		vals[m] = flat[mi*nb : (mi+1)*nb]
	}
	for _, m := range methods {
		t.Rows = append(t.Rows, Row{Label: m.String(), Values: vals[m]})
	}
	var worstAt []string
	for i, w := range cfg.Budgets {
		worst := true
		for _, m := range methods[1:] {
			if vals[build.SAP0][i] < vals[m][i] {
				worst = false
				break
			}
		}
		if worst {
			worstAt = append(worstAt, fmt.Sprintf("w=%d", w))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SAP0 worst at: %s (of %d budgets)", strings.Join(worstAt, " "), len(cfg.Budgets)),
		"tiny budgets can starve SAP1 (5 words/bucket) below SAP0 instead",
		"paper: SAP0 was inferior per unit storage to all other tested histograms")
	return t, nil
}

// ReoptGain reproduces the §5 observation that re-optimizing the stored
// values improves histograms whose summaries are not already optimal —
// "up to 41% better than OPT-A" in the paper's preliminary experiment.
func ReoptGain(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	methods := []build.Method{build.OptA, build.A0, build.EquiWidth, build.PointOpt}
	t := &Table{ID: "E5", Title: "A-reopt: SSE improvement from re-optimized bucket values (%)"}
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	var maxGain float64
	for _, m := range methods {
		row := Row{Label: m.String() + "-reopt"}
		for _, w := range cfg.Budgets {
			opt := build.Options{Method: m, BudgetWords: w, Seed: cfg.Seed, MaxStates: cfg.MaxStates}
			plain, err := build.Build(counts, opt)
			if err != nil {
				return nil, err
			}
			avg, ok := plain.(*histogram.Avg)
			if !ok {
				return nil, fmt.Errorf("reopt experiment wants average histograms, got %T", plain)
			}
			re, err := reopt.Reopt(tab, avg)
			if err != nil {
				return nil, err
			}
			before := sse.Of(tab, avg)
			after := sse.Of(tab, re)
			gain := 0.0
			if before > 0 {
				gain = 100 * (before - after) / before
			}
			maxGain = math.Max(maxGain, gain)
			row.Values = append(row.Values, gain)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured max gain: %.1f%%", maxGain),
		"paper: reopt was up to 41% better than OPT-A on their dataset")
	return t, nil
}

// WaveletStudy compares the wavelet selections against the A0 histogram —
// the paper's qualitative wavelet finding plus this repository's two
// range-aware selections.
func WaveletStudy(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	methods := []build.Method{build.WaveTopBB, build.WaveRangeOpt, build.WaveAA2D, build.A0}
	t := &Table{ID: "E6", Title: "Wavelet selections vs A0 histogram (SSE at equal words)"}
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	nb := len(cfg.Budgets)
	vals := make([]float64, len(methods)*nb)
	err = forEachIndexed(len(vals), func(idx int) error {
		m, w := methods[idx/nb], cfg.Budgets[idx%nb]
		v, err := buildAndScore(counts, tab, build.Options{Method: m, BudgetWords: w, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		vals[idx] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range methods {
		t.Rows = append(t.Rows, Row{Label: m.String(), Values: vals[mi*nb : (mi+1)*nb]})
	}
	t.Notes = append(t.Notes, "paper: wavelet results were qualitatively worse than histogram methods")
	return t, nil
}

// RoundedSweep is the Theorem 4 ablation: OPT-A-ROUNDED's error ratio to
// the exact optimum and its DP work (generated states, the runtime driver)
// as the rounding parameter x grows.
func RoundedSweep(cfg Config, budgetWords int, xs []int64) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if budgetWords <= 0 {
		budgetWords = 16
	}
	if len(xs) == 0 {
		xs = []int64{1, 2, 4, 8, 16, 32}
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	units := (build.Options{Method: build.OptA, BudgetWords: budgetWords}).Units()

	exact, err := core.OptAAuto(tab, units, cfg.Seed, core.Config{MaxStates: cfg.MaxStates})
	if err != nil {
		return nil, err
	}
	exactSSE := sse.Of(tab, exact.Hist)

	t := &Table{ID: "E7", Title: fmt.Sprintf("OPT-A-ROUNDED sweep at %d words (exact SSE %.0f)", budgetWords, exactSSE)}
	sseRow := Row{Label: "SSE"}
	ratioRow := Row{Label: "SSE/optimal"}
	workRow := Row{Label: "DP states gen."}
	for _, x := range xs {
		t.Columns = append(t.Columns, fmt.Sprintf("x=%d", x))
		res, err := core.OptARounded(tab, units, x, cfg.Seed, core.Config{MaxStates: cfg.MaxStates})
		if err != nil {
			return nil, err
		}
		v := sse.Of(tab, res.Hist)
		sseRow.Values = append(sseRow.Values, v)
		r := math.NaN()
		if exactSSE > 0 {
			r = v / exactSSE
		}
		ratioRow.Values = append(ratioRow.Values, r)
		workRow.Values = append(workRow.Values, float64(res.Stats.Generated))
	}
	t.Rows = []Row{sseRow, ratioRow, workRow}
	t.Notes = append(t.Notes, "Theorem 4: larger x cuts DP work by ~x while error stays within (1+ε)")
	return t, nil
}

// All runs every experiment with the shared configuration.
func All(cfg Config) ([]*Table, error) {
	var out []*Table
	type gen func(Config) (*Table, error)
	for _, g := range []gen{Fig1, PointOptRatio, Sap1Ratio, Sap0Rank, ReoptGain, WaveletStudy, PrefixStudy} {
		t, err := g(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	t, err := RoundedSweep(cfg, 16, nil)
	if err != nil {
		return out, err
	}
	out = append(out, t)
	t2, err := TwoDim(cfg, 0, 0)
	if err != nil {
		return out, err
	}
	out = append(out, t2)
	t3, err := HeuristicStudy(cfg)
	if err != nil {
		return out, err
	}
	return append(out, t3), nil
}

// PrefixStudy is the restricted-query-class ablation (the paper's
// introduction: earlier optimality results covered only equality or
// hierarchical/prefix ranges). It compares the prefix-query-optimal
// histogram against OPT-A on both the prefix workload it optimizes and
// the full range workload the paper targets.
func PrefixStudy(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	n := tab.N()
	prefixQueries := make([]sse.Range, n)
	for b := 0; b < n; b++ {
		prefixQueries[b] = sse.Range{A: 0, B: b}
	}
	t := &Table{ID: "E9", Title: "PREFIX-OPT vs OPT-A: prefix-only vs all-ranges SSE"}
	rows := map[string]*Row{}
	order := []string{"PREFIX-OPT (prefix)", "OPT-A (prefix)", "PREFIX-OPT (ranges)", "OPT-A (ranges)"}
	for _, label := range order {
		rows[label] = &Row{Label: label}
	}
	methods := []build.Method{build.PrefixOpt, build.OptA}
	nb := len(cfg.Budgets)
	prefixSSE := make([]float64, len(methods)*nb)
	rangeSSE := make([]float64, len(methods)*nb)
	err = forEachIndexed(len(prefixSSE), func(idx int) error {
		m, w := methods[idx/nb], cfg.Budgets[idx%nb]
		// Both methods answer unrounded here: PREFIX-OPT's optimality
		// claim is for the real-valued prefix objective, and mixing in
		// integer rounding noise would blur the class comparison at
		// large budgets.
		est, err := build.Build(counts, build.Options{
			Method: m, BudgetWords: w, Seed: cfg.Seed,
			MaxStates: cfg.MaxStates,
		})
		if err != nil {
			return err
		}
		prefixSSE[idx] = sse.Evaluate(tab, est, prefixQueries).SSE
		rangeSSE[idx] = sse.Of(tab, est)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	for mi, m := range methods {
		name := m.String()
		rows[name+" (prefix)"].Values = prefixSSE[mi*nb : (mi+1)*nb]
		rows[name+" (ranges)"].Values = rangeSSE[mi*nb : (mi+1)*nb]
	}
	for _, label := range order {
		t.Rows = append(t.Rows, *rows[label])
	}
	t.Notes = append(t.Notes,
		"PREFIX-OPT is provably optimal on the prefix workload; the gap on the all-ranges rows",
		"is the cost of optimizing the restricted class earlier work covered")
	return t, nil
}

// TwoDim is the higher-dimensional extension study (the paper's footnote
// 2): rectangle-query SSE of the 2-D summaries on a correlated joint
// distribution, at a sweep of storage budgets.
func TwoDim(cfg Config, rows, cols int) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if rows <= 0 {
		rows = 24
	}
	if cols <= 0 {
		cols = 24
	}
	// A Zipf-marginal, diagonally correlated joint distribution.
	counts := make([][]int64, rows)
	for r := range counts {
		counts[r] = make([]int64, cols)
		for c := range counts[r] {
			d := r - c
			if d < 0 {
				d = -d
			}
			head := 2000.0 / math.Pow(float64(r+1), 1.2)
			counts[r][c] = int64(head / float64(1+d*d))
		}
	}
	g, err := grid.New("joint-zipf-diag", counts)
	if err != nil {
		return nil, err
	}
	tab := grid.NewTable(g)

	t := &Table{ID: "E10", Title: fmt.Sprintf("2-D extension — rectangle SSE on %d×%d correlated grid", rows, cols)}
	budgets := cfg.Budgets
	for _, w := range budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	type builder func(w int) (grid.Estimator2D, error)
	rowsSpec := []struct {
		label string
		build builder
	}{
		{"NAIVE-2D", func(int) (grid.Estimator2D, error) { return grid.NewNaive2D(tab), nil }},
		{"EQUI-GRID", func(w int) (grid.Estimator2D, error) {
			side := 1
			for (side+1)*(side+1)+2*(side+1) <= w {
				side++
			}
			return grid.NewEquiGrid(tab, side, side)
		}},
		{"TOPBB-2D", func(w int) (grid.Estimator2D, error) { return grid.NewWave2D(g, maxInt(1, w/2)) }},
		{"AVI", func(w int) (grid.Estimator2D, error) {
			half := maxInt(2, (w-1)/2)
			rowSyn, err := build.Build(grid.RowMarginal(g), build.Options{Method: build.A0, BudgetWords: half})
			if err != nil {
				return nil, err
			}
			colSyn, err := build.Build(grid.ColMarginal(g), build.Options{Method: build.A0, BudgetWords: half})
			if err != nil {
				return nil, err
			}
			return grid.NewAVI(tab, rowSyn, colSyn)
		}},
		{"WAVE-RANGEOPT-2D", func(w int) (grid.Estimator2D, error) { return grid.NewRangeOpt2D(tab, maxInt(1, w/2)) }},
	}
	for _, spec := range rowsSpec {
		row := Row{Label: spec.label}
		for _, w := range budgets {
			est, err := spec.build(w)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, grid.SSEAll(tab, est))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"the prefix-corner identity generalizes: WAVE-RANGEOPT-2D is optimal within its coefficient class",
		"(verified in internal/grid tests); classes remain incomparable across representations")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HeuristicStudy (E11) quantifies the paper's closing theme — cheap
// heuristics plus general improvement passes: polynomial constructions
// with boundary local search and §5 re-optimization, measured against the
// exact optimum. All rows answer unrounded so the improvement operators
// (which optimize the real-valued objective) compose cleanly.
func HeuristicStudy(cfg Config) (*Table, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	counts := cfg.Data.Counts
	tab := prefix.NewTable(counts)
	specs := []struct {
		label string
		opt   build.Options
	}{
		{"EQUI-WIDTH", build.Options{Method: build.EquiWidth}},
		{"EQUI-WIDTH-ls", build.Options{Method: build.EquiWidth, LocalSearch: true}},
		{"EQUI-WIDTH-ls-re", build.Options{Method: build.EquiWidth, LocalSearch: true, Reopt: true}},
		{"A0", build.Options{Method: build.A0}},
		{"A0-ls", build.Options{Method: build.A0, LocalSearch: true}},
		{"A0-ls-re", build.Options{Method: build.A0, LocalSearch: true, Reopt: true}},
		{"OPT-A", build.Options{Method: build.OptA}},
		{"OPT-A-re", build.Options{Method: build.OptA, Reopt: true}},
	}
	t := &Table{ID: "E11", Title: "Heuristics + local search + reopt vs the exact optimum (unrounded SSE)"}
	for _, w := range cfg.Budgets {
		t.Columns = append(t.Columns, fmt.Sprintf("w=%d", w))
	}
	nb := len(cfg.Budgets)
	vals := make([]float64, len(specs)*nb)
	err = forEachIndexed(len(vals), func(idx int) error {
		opt := specs[idx/nb].opt
		opt.BudgetWords = cfg.Budgets[idx%nb]
		opt.Seed = cfg.Seed
		opt.MaxStates = cfg.MaxStates
		est, err := build.Build(counts, opt)
		if err != nil {
			return err
		}
		vals[idx] = sse.Of(tab, est)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		t.Rows = append(t.Rows, Row{Label: spec.label, Values: vals[si*nb : (si+1)*nb]})
	}
	t.Notes = append(t.Notes,
		"the paper's closing point: improvement operators are general; ls+reopt lifts even equi-width",
		"close to the optimal curve at a fraction of the exact DP's cost")
	return t, nil
}
