package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rangeagg/internal/dataset"
)

// smallCfg keeps experiment tests fast: a 31-key Zipf slice and two
// budgets.
func smallCfg(t *testing.T) Config {
	t.Helper()
	d, err := dataset.Zipf(dataset.ZipfConfig{N: 31, Alpha: 1.8, MaxCount: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return Config{Data: d, Budgets: []int{8, 16}, Seed: 1}
}

func findRow(t *testing.T, tab *Table, label string) Row {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Label == label {
			return r
		}
	}
	t.Fatalf("table %s has no row %q (rows: %v)", tab.ID, label, tab.Rows)
	return Row{}
}

func TestFig1ShapeHolds(t *testing.T) {
	tab, err := Fig1(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 2 || len(tab.Rows) != 9 {
		t.Fatalf("unexpected table shape: %d cols %d rows", len(tab.Columns), len(tab.Rows))
	}
	naive := findRow(t, tab, "NAIVE")
	opta := findRow(t, tab, "OPT-A")
	pointOpt := findRow(t, tab, "POINT-OPT")
	for i := range tab.Columns {
		if !(naive.Values[i] > opta.Values[i]) {
			t.Errorf("col %d: NAIVE %g not worse than OPT-A %g", i, naive.Values[i], opta.Values[i])
		}
		if pointOpt.Values[i] < opta.Values[i]*0.99 {
			t.Errorf("col %d: POINT-OPT %g better than OPT-A %g", i, pointOpt.Values[i], opta.Values[i])
		}
	}
	// Every SSE must be finite and non-negative.
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("%s col %d: bad value %g", r.Label, i, v)
			}
		}
	}
}

func TestPointOptRatioAboveOne(t *testing.T) {
	tab, err := PointOptRatio(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	ratio := findRow(t, tab, "ratio")
	for i, v := range ratio.Values {
		if !(v >= 0.99) {
			t.Errorf("col %d: POINT-OPT/OPT-A ratio %g < 1", i, v)
		}
	}
}

func TestSap1RatioAboveOne(t *testing.T) {
	tab, err := Sap1Ratio(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	ratio := findRow(t, tab, "ratio")
	for i, v := range ratio.Values {
		// SAP1 at equal words has 2.5× fewer buckets; the paper (and we)
		// expect it to lose to OPT-A.
		if !(v >= 0.99) {
			t.Errorf("col %d: SAP1/OPT-A ratio %g < 1", i, v)
		}
	}
}

func TestSap0RankTable(t *testing.T) {
	tab, err := Sap0Rank(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	sap0 := findRow(t, tab, "SAP0")
	opta := findRow(t, tab, "OPT-A")
	for i := range tab.Columns {
		if sap0.Values[i] < opta.Values[i]*0.99 {
			t.Errorf("col %d: SAP0 %g beats OPT-A %g at equal words", i, sap0.Values[i], opta.Values[i])
		}
	}
}

func TestReoptGainNonNegative(t *testing.T) {
	tab, err := ReoptGain(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		for i, v := range r.Values {
			if v < -1e-6 {
				t.Errorf("%s col %d: negative gain %g%%", r.Label, i, v)
			}
		}
	}
}

func TestWaveletStudyRuns(t *testing.T) {
	tab, err := WaveletStudy(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRoundedSweep(t *testing.T) {
	tab, err := RoundedSweep(smallCfg(t), 8, []int64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := findRow(t, tab, "SSE/optimal")
	if ratio.Values[0] < 0.99 || (len(ratio.Values) > 1 && ratio.Values[1] < 0.99) {
		t.Errorf("rounded beat exact: %v", ratio.Values)
	}
	// x=1 is the exact run: ratio exactly 1 within float noise.
	if math.Abs(ratio.Values[0]-1) > 1e-9 {
		t.Errorf("x=1 ratio = %g, want 1", ratio.Values[0])
	}
}

func TestAllAndRendering(t *testing.T) {
	tabs, err := All(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 10 {
		t.Fatalf("experiments = %d, want 10", len(tabs))
	}
	var buf bytes.Buffer
	for _, tab := range tabs {
		if _, err := tab.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E9", "E10", "E11"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("rendered output missing %s", id)
		}
	}
}

func TestDefaultsUsePaperDataset(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Data.N() != 127 {
		t.Errorf("default dataset n = %d, want 127", cfg.Data.N())
	}
	if len(cfg.Budgets) == 0 {
		t.Error("no default budgets")
	}
}

func TestPlotLog(t *testing.T) {
	tab, err := Fig1(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	out := PlotLog(tab, 10)
	if !strings.Contains(out, "log10(SSE)") {
		t.Fatalf("missing header: %q", out[:40])
	}
	for _, r := range tab.Rows {
		if !strings.Contains(out, "= "+r.Label) {
			t.Errorf("legend missing %s", r.Label)
		}
	}
	// Degenerate input.
	if got := PlotLog(&Table{}, 5); !strings.Contains(got, "nothing to plot") {
		t.Errorf("empty table plot = %q", got)
	}
}

func TestTwoDim(t *testing.T) {
	cfg := smallCfg(t)
	tab, err := TwoDim(cfg, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	naive := findRow(t, tab, "NAIVE-2D")
	eg := findRow(t, tab, "EQUI-GRID")
	for i := range eg.Values {
		if eg.Values[i] > naive.Values[i] {
			t.Errorf("EQUI-GRID col %d: %g worse than naive %g", i, eg.Values[i], naive.Values[i])
		}
	}
	// Wavelets may lose to naive at tiny budgets (as in 1-D); only guard
	// against absurdity.
	for _, label := range []string{"TOPBB-2D", "WAVE-RANGEOPT-2D"} {
		r := findRow(t, tab, label)
		for i, v := range r.Values {
			if v > naive.Values[i]*20 {
				t.Errorf("%s col %d: %g absurdly worse than naive %g", label, i, v, naive.Values[i])
			}
		}
	}
}

func TestHeuristicStudy(t *testing.T) {
	tab, err := HeuristicStudy(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Row{}
	for _, r := range tab.Rows {
		rows[r.Label] = r
	}
	for i := range tab.Columns {
		// Improvement operators never worsen their base method.
		if rows["A0-ls"].Values[i] > rows["A0"].Values[i]*(1+1e-9) {
			t.Errorf("col %d: A0-ls worse than A0", i)
		}
		if rows["A0-ls-re"].Values[i] > rows["A0-ls"].Values[i]*(1+1e-9) {
			t.Errorf("col %d: reopt worsened A0-ls", i)
		}
		if rows["EQUI-WIDTH-ls"].Values[i] > rows["EQUI-WIDTH"].Values[i]*(1+1e-9) {
			t.Errorf("col %d: ls worsened EQUI-WIDTH", i)
		}
	}
}
