package advisor

import (
	"math"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/dataset"
	"rangeagg/internal/method"
	"rangeagg/internal/parallel"
	"rangeagg/internal/sse"
)

func paperCounts(t *testing.T) []int64 {
	t.Helper()
	d, err := dataset.Zipf(dataset.ZipfConfig{N: 63, Alpha: 1.8, MaxCount: 500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return d.Counts
}

func TestRecommendRanksByWorkloadError(t *testing.T) {
	counts := paperCounts(t)
	cands, err := Recommend(counts, nil, Config{BudgetWords: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := 1; i < len(cands); i++ {
		if cands[i-1].SSE > cands[i].SSE {
			t.Fatalf("not sorted: %g before %g", cands[i-1].SSE, cands[i].SSE)
		}
	}
	best, err := Best(cands)
	if err != nil {
		t.Fatal(err)
	}
	// On the all-ranges metric, the winner must be one of the range-aware
	// methods; NAIVE must rank last among successful candidates.
	if best.Method == build.Naive {
		t.Errorf("NAIVE won: %+v", best)
	}
	last := cands[len(cands)-1]
	if last.Err == nil && last.Method != build.Naive {
		// SAP1 at 24 words has only 4 buckets; either it or NAIVE ends last.
		if last.Method != build.SAP1 && last.Method != build.WaveAA2D && last.Method != build.SAP0 {
			t.Logf("unexpected last place: %+v (informational)", last)
		}
	}
}

func TestRecommendWithWorkload(t *testing.T) {
	counts := paperCounts(t)
	workload := sse.ShortRanges(len(counts), 300, 5, 7)
	cands, err := Recommend(counts, workload, Config{BudgetWords: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Err != nil {
			t.Errorf("%s failed: %v", c.Method, c.Err)
			continue
		}
		if math.IsNaN(c.RMS) || c.RMS < 0 {
			t.Errorf("%s: bad RMS %g", c.Method, c.RMS)
		}
		if c.StorageWords > 24 && c.Method != build.Naive {
			t.Errorf("%s: %d words over budget", c.Method, c.StorageWords)
		}
	}
}

func TestRecommendRestrictedMethods(t *testing.T) {
	counts := paperCounts(t)
	cands, err := Recommend(counts, nil, Config{
		BudgetWords: 16,
		Methods:     []build.Method{build.A0, build.Naive},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	if cands[0].Method != build.A0 {
		t.Errorf("winner = %s, want A0", cands[0].Method)
	}
}

// TestRecommendSweepsEpsilon pins the approximate families' ε expansion:
// each Approximate-capability method contributes one candidate per swept
// ε (with per-candidate build time and SSE, so the ranking reports the
// build-time-vs-quality trade-off), exact methods exactly one with ε = 0,
// and Require-capability filtering composes with the sweep.
func TestRecommendSweepsEpsilon(t *testing.T) {
	counts := paperCounts(t)
	cands, err := Recommend(counts, nil, Config{BudgetWords: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	perMethod := map[build.Method]map[float64]int{}
	for _, c := range cands {
		if perMethod[c.Method] == nil {
			perMethod[c.Method] = map[float64]int{}
		}
		perMethod[c.Method][c.Epsilon]++
		if c.Err == nil && c.BuildTime <= 0 {
			t.Errorf("%s(ε=%g): no build time measured", c.Method, c.Epsilon)
		}
	}
	for m, eps := range perMethod {
		d, err := method.Lookup(m)
		if err != nil {
			t.Fatal(err)
		}
		if d.Caps.Has(method.Approximate) {
			for _, want := range []float64{0.05, 0.1, 0.25} {
				if eps[want] != 1 {
					t.Errorf("%s: ε=%g appears %d times, want 1", m, want, eps[want])
				}
			}
		} else if len(eps) != 1 || eps[0] != 1 {
			t.Errorf("%s: ε set %v, want exactly {0}", m, eps)
		}
	}
	// A custom sweep replaces the default.
	cands, err = Recommend(counts, nil, Config{
		BudgetWords: 24, Seed: 1,
		Methods:  []build.Method{build.SAP0Approx},
		Epsilons: []float64{0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Epsilon != 0.5 {
		t.Fatalf("custom sweep: %+v", cands)
	}
	// Require filtering still composes: only the approximate families carry
	// the Approximate capability.
	cands, err = Recommend(counts, nil, Config{
		BudgetWords: 24, Seed: 1, Require: method.Approximate,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 9 { // 3 approx methods × 3 default ε
		t.Fatalf("Require(approximate): %d candidates, want 9", len(cands))
	}
	for _, c := range cands {
		if c.Err != nil {
			t.Errorf("%s(ε=%g): %v", c.Method, c.Epsilon, c.Err)
		}
	}
}

func TestRecommendSkipsExactOnLargeDomains(t *testing.T) {
	counts := make([]int64, 600)
	for i := range counts {
		counts[i] = int64(i % 7)
	}
	cands, err := Recommend(counts, sse.RandomRanges(600, 50, 1), Config{BudgetWords: 16, ExactLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Method == build.OptA || c.Method == build.OptARounded {
			t.Errorf("exact family not skipped: %s", c.Method)
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(nil, nil, Config{BudgetWords: 8}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := Recommend([]int64{1}, nil, Config{}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestBestSkipsFailures(t *testing.T) {
	if _, err := Best(nil); err == nil {
		t.Error("empty candidate list accepted")
	}
	cands := []Candidate{
		{Method: build.OptA, Err: errFake{}},
		{Method: build.A0, SSE: 5},
	}
	best, err := Best(cands)
	if err != nil {
		t.Fatal(err)
	}
	if best.Method != build.A0 {
		t.Errorf("best = %s", best.Method)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

// TestRecommendDeterministicAcrossPoolWidths pins the concurrent sweep's
// reproducibility: the full ranking (methods, SSEs, storage) must be
// identical at any worker-pool width.
func TestRecommendDeterministicAcrossPoolWidths(t *testing.T) {
	counts := make([]int64, 40)
	for i := range counts {
		counts[i] = int64(500 / (i + 1))
	}
	cfg := Config{BudgetWords: 16, Seed: 1}
	prev := parallel.SetWorkers(1)
	serial, err := Recommend(counts, nil, cfg)
	parallel.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		prev := parallel.SetWorkers(workers)
		got, err := Recommend(counts, nil, cfg)
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(serial) {
			t.Fatalf("w=%d: %d candidates, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].Method != serial[i].Method || got[i].SSE != serial[i].SSE ||
				got[i].StorageWords != serial[i].StorageWords {
				t.Errorf("w=%d: rank %d = %s (SSE %v), serial has %s (SSE %v)",
					workers, i, got[i].Method, got[i].SSE, serial[i].Method, serial[i].SSE)
			}
		}
	}
}
