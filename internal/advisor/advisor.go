// Package advisor recommends a synopsis method for a concrete
// distribution, storage budget and query workload, by building every
// candidate and measuring its error on the workload — the "physical
// design" layer a database would put on top of the paper's algorithms.
package advisor

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/method"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

// Candidate is one evaluated method.
type Candidate struct {
	// Method is the construction.
	Method build.Method
	// Epsilon is the approximation target the candidate was built with —
	// set for Approximate-capability methods (one candidate per swept ε),
	// zero for exact constructions.
	Epsilon float64
	// SSE over the evaluation workload.
	SSE float64
	// RMS error per query.
	RMS float64
	// StorageWords actually used (≤ the budget).
	StorageWords int
	// BuildTime is the measured construction cost.
	BuildTime time.Duration
	// Err is set when the candidate failed to build; such candidates sort
	// last.
	Err error
}

// Config tunes a recommendation run.
type Config struct {
	// BudgetWords is the storage budget each candidate gets.
	BudgetWords int
	// Methods restricts the candidate set; nil means every registered
	// method except pseudo-polynomial ones when the instance exceeds
	// ExactLimit.
	Methods []build.Method
	// Require keeps only candidates whose registered capabilities include
	// every flag in the set — e.g. method.Serializable when the chosen
	// synopsis must persist, or method.Mergeable for a sharded deployment.
	// Zero requires nothing.
	Require method.Caps
	// ExactLimit caps the domain size for which pseudo-polynomial methods
	// (the exact OPT-A dynamic program) are attempted (0 = 512).
	ExactLimit int
	// Epsilons are the approximation targets swept for Approximate-
	// capability methods: each such method contributes one candidate per ε,
	// so the ranking reports the build-time-vs-SSE trade-off alongside the
	// exact families. Nil sweeps {0.05, 0.1, 0.25}.
	Epsilons []float64
	// Seed for randomized constructions.
	Seed int64
	// MaxStates bounds the exact DP.
	MaxStates int
}

// defaultEpsilons is the ε sweep used when Config.Epsilons is nil.
var defaultEpsilons = []float64{0.05, 0.1, 0.25}

// Recommend evaluates candidate methods on the workload — concurrently,
// over the shared worker pool — and returns them ranked by workload SSE
// (ties by storage, then candidate order; the ranking is deterministic).
// The workload may be nil, in which case the paper's all-ranges metric is
// used.
func Recommend(counts []int64, queries []sse.Range, cfg Config) ([]Candidate, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("advisor: empty distribution")
	}
	if cfg.BudgetWords <= 0 {
		return nil, fmt.Errorf("advisor: need a positive budget, got %d", cfg.BudgetWords)
	}
	exactLimit := cfg.ExactLimit
	if exactLimit <= 0 {
		exactLimit = 512
	}
	candidates := cfg.Methods
	if candidates == nil {
		candidates = build.Methods()
	}
	epsilons := cfg.Epsilons
	if epsilons == nil {
		epsilons = defaultEpsilons
	}
	// One spec per build: exact methods contribute one candidate (ε = 0),
	// Approximate-capability methods one per swept ε.
	type spec struct {
		m   build.Method
		eps float64
	}
	var specs []spec
	for _, m := range candidates {
		d, err := method.Lookup(m)
		if err != nil {
			return nil, fmt.Errorf("advisor: %w", err)
		}
		if !d.Caps.Has(cfg.Require) {
			continue
		}
		// Capability-gated scale guard: the exact pseudo-polynomial DP's
		// cost grows with the data values, so it is only enumerated by
		// default on small instances. An explicit Methods list overrides.
		if cfg.Methods == nil && d.Caps.Has(method.PseudoPolynomial) && len(counts) > exactLimit {
			continue
		}
		if d.Caps.Has(method.Approximate) {
			for _, eps := range epsilons {
				specs = append(specs, spec{m: m, eps: eps})
			}
			continue
		}
		specs = append(specs, spec{m: m})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("advisor: no candidate method has the required capabilities (%s)", cfg.Require)
	}
	tab := prefix.NewTable(counts)
	// Build and score every candidate concurrently over the shared worker
	// pool. Each candidate writes only its own indexed slot, so the result
	// is deterministic regardless of pool width or scheduling.
	out := make([]Candidate, len(specs))
	parallel.ForEach(len(specs), func(idx int) {
		s := specs[idx]
		c := Candidate{Method: s.m, Epsilon: s.eps}
		start := time.Now()
		est, err := build.Build(counts, build.Options{
			Method: s.m, BudgetWords: cfg.BudgetWords,
			Seed: cfg.Seed, MaxStates: cfg.MaxStates, Epsilon: s.eps,
		})
		c.BuildTime = time.Since(start)
		if err != nil {
			c.Err = err
			c.SSE = math.Inf(1)
			out[idx] = c
			return
		}
		c.StorageWords = est.StorageWords()
		if len(queries) == 0 {
			c.SSE = sse.Of(tab, est)
			nq := tab.N() * (tab.N() + 1) / 2
			c.RMS = math.Sqrt(c.SSE / float64(nq))
		} else {
			metrics := sse.Evaluate(tab, est, queries)
			c.SSE = metrics.SSE
			c.RMS = metrics.RMS
		}
		out[idx] = c
	})
	// Ties break by storage, then candidate (= Method) order — never by
	// measured build time, which would make the ranking non-reproducible.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SSE != out[j].SSE {
			return out[i].SSE < out[j].SSE
		}
		return out[i].StorageWords < out[j].StorageWords
	})
	return out, nil
}

// Best returns the winning candidate of a Recommend run.
func Best(cands []Candidate) (Candidate, error) {
	for _, c := range cands {
		if c.Err == nil {
			return c, nil
		}
	}
	return Candidate{}, fmt.Errorf("advisor: no candidate built successfully")
}
