package plan

import (
	"math"
	"testing"
)

// FuzzPlannerBudget checks the planner's budget contract on arbitrary
// inputs: whenever a query with a finite budget succeeds, the answer's
// bound is within that budget (after the documented negative→0 clamp),
// and the exact fallback always reports a zero, rigorous bound. Sources
// have deterministic per-range bounds of very different magnitudes so
// the fuzzer exercises every path.
func FuzzPlannerBudget(f *testing.F) {
	f.Add(0, 9, 5.0, false)
	f.Add(-3, 1000, 0.0, true)
	f.Add(7, 7, math.Inf(1), false)
	f.Add(50, 40, -2.5, true)
	f.Add(0, 63, math.NaN(), false)

	p := New(128)
	v := &View{
		Version: 1, Metric: "count", Domain: 64,
		Sources: []Source{
			{
				Name: "coarse", Words: 4,
				Estimate: func(a, b int) float64 { return float64(b-a+1) * 3 },
				Bound: func(a, b int) (float64, bool, bool) {
					return float64(b-a+1) * 2, true, true
				},
			},
			{
				Name: "fine", Words: 32,
				Estimate: func(a, b int) float64 { return float64(b-a+1) * 3 },
				Bound: func(a, b int) (float64, bool, bool) {
					return float64(b-a+1) * 0.25, true, true
				},
			},
		},
		Exact: func(a, b int) float64 { return float64(b-a+1) * 3 },
	}

	f.Fuzz(func(t *testing.T, a, b int, maxErr float64, pinFine bool) {
		pinned := ""
		if pinFine {
			pinned = "fine"
		}
		ans, err := p.Query(v, pinned, a, b, maxErr)
		if err != nil {
			t.Fatalf("query(%d,%d,%g) failed: %v", a, b, maxErr, err)
		}
		if math.IsNaN(maxErr) {
			return // no budget: any bound is acceptable
		}
		budget := math.Max(maxErr, 0)
		if ans.Bound > budget {
			t.Fatalf("query(%d,%d,%g): bound %g exceeds budget %g (path %s, source %s)",
				a, b, maxErr, ans.Bound, budget, ans.Path, ans.Source)
		}
		if ans.Path == PathExact && (ans.Bound != 0 || !ans.Rigorous) {
			t.Fatalf("exact path must certify a zero bound: %+v", ans)
		}
	})
}
