package plan

import (
	"errors"
	"math"
	"testing"
)

// testView builds a two-source view: a coarse synopsis with a flat
// bound of 10 and a fine one with a flat bound of 1, over domain 100,
// with an exact fallback. Values are distinct per source so tests can
// tell who answered.
func testView(version int64) *View {
	v := &View{
		Version: version,
		Metric:  "count",
		Domain:  100,
		Sources: []Source{
			{
				Name: "fine", Words: 64,
				Estimate: func(a, b int) float64 { return float64(b-a+1) + 0.5 },
				Bound:    func(a, b int) (float64, bool, bool) { return 1, true, true },
			},
			{
				Name: "coarse", Words: 8,
				Estimate: func(a, b int) float64 { return float64(b-a+1) + 5 },
				Bound:    func(a, b int) (float64, bool, bool) { return 10, true, true },
			},
		},
		Exact: func(a, b int) float64 { return float64(b - a + 1) },
	}
	OrderSources(v.Sources)
	return v
}

func TestOrderSources(t *testing.T) {
	v := testView(1)
	if v.Sources[0].Name != "coarse" || v.Sources[1].Name != "fine" {
		t.Fatalf("want coarse (8 words) before fine (64 words), got %q, %q",
			v.Sources[0].Name, v.Sources[1].Name)
	}
	ties := []Source{{Name: "b", Words: 4}, {Name: "a", Words: 4}}
	OrderSources(ties)
	if ties[0].Name != "a" {
		t.Fatalf("equal-words tiebreak should order by name, got %q first", ties[0].Name)
	}
}

func TestPlannerPaths(t *testing.T) {
	p := New(1024)
	v := testView(1)
	noBudget := math.NaN()

	// No budget: the cheapest source answers, path probe.
	ans, err := p.Query(v, "", 10, 19, noBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "coarse" || ans.Path != PathProbe || ans.Bound != 10 {
		t.Fatalf("no-budget query: got %+v", ans)
	}

	// Same range again: served from cache.
	ans, err = p.Query(v, "", 10, 19, noBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Path != PathCache || ans.Source != "coarse" {
		t.Fatalf("repeat query should hit cache: got %+v", ans)
	}

	// Budget 5: coarse (bound 10) fails, fine (bound 1) answers.
	ans, err = p.Query(v, "", 20, 29, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "fine" || ans.Path != PathEscalate || ans.Bound != 1 {
		t.Fatalf("budget-5 query should escalate to fine: got %+v", ans)
	}

	// Budget 0.5: nothing meets it, exact answers with bound 0.
	ans, err = p.Query(v, "", 20, 29, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Path != PathExact || ans.Bound != 0 || !ans.Rigorous || ans.Value != 10 {
		t.Fatalf("budget-0.5 query should fall through to exact: got %+v", ans)
	}

	// Pinning starts the probe order at the named source.
	ans, err = p.Query(v, "fine", 30, 39, noBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "fine" || ans.Path != PathProbe {
		t.Fatalf("pinned query: got %+v", ans)
	}

	// Negative budgets clamp to zero: only exact qualifies.
	ans, err = p.Query(v, "", 40, 49, -3)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Path != PathExact {
		t.Fatalf("negative budget should mean exact: got %+v", ans)
	}
}

func TestPlannerClampAndErrors(t *testing.T) {
	p := New(0) // cache disabled: nil *Cache must be safe
	v := testView(1)

	// Fully outside the domain: exact zero.
	ans, err := p.Query(v, "", 200, 300, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 0 || ans.Bound != 0 || !ans.Rigorous {
		t.Fatalf("outside-domain query: got %+v", ans)
	}

	// Partially outside: clamped, then answered normally.
	ans, err = p.Query(v, "", -5, 9, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Value != 15 { // coarse estimate of clamped [0,9]: 10 + 5
		t.Fatalf("clamped query: got %+v", ans)
	}

	if _, err := p.Query(v, "nope", 0, 9, math.NaN()); err == nil {
		t.Fatal("unknown pinned source should error")
	}

	// Unmeetable budget with no exact fallback.
	v.Exact = nil
	if _, err := p.Query(v, "", 0, 9, 0.5); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestPlannerSourceWithoutModel checks a model-less source is treated
// as bound +Inf: it answers only when no budget is set, and every
// budget skips past it.
func TestPlannerSourceWithoutModel(t *testing.T) {
	p := New(64)
	v := &View{
		Version: 1, Metric: "count", Domain: 10,
		Sources: []Source{{
			Name: "nomodel", Words: 4,
			Estimate: func(a, b int) float64 { return 7 },
			Bound:    func(a, b int) (float64, bool, bool) { return 0, false, false },
		}},
		Exact: func(a, b int) float64 { return 5 },
	}
	ans, err := p.Query(v, "", 0, 9, math.NaN())
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != "nomodel" || !math.IsInf(ans.Bound, 1) || ans.Rigorous {
		t.Fatalf("no-budget query on model-less source: got %+v", ans)
	}
	ans, err = p.Query(v, "", 0, 9, 1e18)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Path != PathExact {
		t.Fatalf("any finite budget should skip a model-less source: got %+v", ans)
	}
}

func TestCacheVersioning(t *testing.T) {
	c := NewCache(256)
	k1 := Key{Metric: "count", Source: "s", A: 0, B: 9, Version: 1}
	c.put(k1, cached{value: 42, bound: 1, rigorous: true})
	if _, ok := c.get(Key{Metric: "count", Source: "s", A: 0, B: 9, Version: 2}); ok {
		t.Fatal("a new snapshot version must never hit an old entry")
	}
	got, ok := c.get(k1)
	if !ok || got.value != 42 {
		t.Fatalf("same-version lookup: got %+v ok=%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: got %+v", st)
	}
}

func TestCacheEviction(t *testing.T) {
	// 16 entries = 1 per shard: inserting two keys landing in the same
	// shard evicts the older.
	c := NewCache(16)
	var keys []Key
	// Find two keys on the same shard.
outer:
	for a := 0; a < 64; a++ {
		for b := a + 1; b < 64; b++ {
			k1 := Key{Metric: "m", Source: "s", A: a, B: a, Version: 1}
			k2 := Key{Metric: "m", Source: "s", A: b, B: b, Version: 1}
			if c.shard(k1) == c.shard(k2) {
				keys = []Key{k1, k2}
				break outer
			}
		}
	}
	if keys == nil {
		t.Fatal("no shard collision found in 64 keys")
	}
	c.put(keys[0], cached{value: 1})
	c.put(keys[1], cached{value: 2})
	if _, ok := c.get(keys[0]); ok {
		t.Fatal("older entry should have been evicted")
	}
	if got, ok := c.get(keys[1]); !ok || got.value != 2 {
		t.Fatalf("newest entry should survive: got %+v ok=%v", got, ok)
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.get(Key{}); ok {
		t.Fatal("nil cache should never hit")
	}
	c.put(Key{}, cached{}) // must not panic
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats: got %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache should be empty")
	}
}

func TestPathString(t *testing.T) {
	want := map[Path]string{PathCache: "cache", PathProbe: "probe", PathEscalate: "escalate", PathExact: "exact"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Path %d: got %q want %q", int(p), p.String(), s)
		}
	}
	if Path(99).String() != "Path(99)" {
		t.Errorf("out-of-range path: got %q", Path(99).String())
	}
}

// TestModelLessSkipSavesProbes is the regression test for the escalation
// fix: a shard-folded (model-less) source used to be probed on every
// budgeted query — estimate evaluated, bound found +Inf, budget missed —
// before escalation moved on. The planner now skips such sources outright
// for finite budgets; the probe counter proves no work is spent on them.
func TestModelLessSkipSavesProbes(t *testing.T) {
	p := New(0) // no cache: every probe is counted
	v := &View{
		Version: 1, Metric: "count", Domain: 100,
		Sources: []Source{
			{
				Name: "folded", Words: 4, NoModel: true,
				Estimate: func(a, b int) float64 { return 7 },
				Bound:    func(a, b int) (float64, bool, bool) { return 0, false, false },
			},
			{
				Name: "modeled", Words: 64,
				Estimate: func(a, b int) float64 { return float64(b - a + 1) },
				Bound:    func(a, b int) (float64, bool, bool) { return 1, true, true },
			},
		},
		Exact: func(a, b int) float64 { return float64(b - a + 1) },
	}
	OrderSources(v.Sources)

	// Budgeted queries: the cheap model-less source is never probed; each
	// query costs exactly one probe (the modeled source answers).
	const queries = 10
	before := p.Probes()
	for i := 0; i < queries; i++ {
		ans, err := p.Query(v, "", i, i+5, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Source != "modeled" {
			t.Fatalf("budgeted query answered by %q, want modeled", ans.Source)
		}
	}
	if got := p.Probes() - before; got != queries {
		t.Fatalf("%d budgeted queries cost %d probes, want %d (model-less source must not be probed)",
			queries, got, queries)
	}

	// No budget (NaN) and an infinite budget still answer from the
	// cheapest source, model or not.
	for _, budget := range []float64{math.NaN(), math.Inf(1)} {
		ans, err := p.Query(v, "", 0, 9, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Source != "folded" {
			t.Fatalf("budget %v: answered by %q, want the cheapest (model-less) source", budget, ans.Source)
		}
	}

	// A budget no modeled source meets falls through to exact without
	// wasting a probe on the model-less one.
	before = p.Probes()
	ans, err := p.Query(v, "", 0, 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Path != PathExact {
		t.Fatalf("unmeetable budget: got %+v, want exact fallback", ans)
	}
	if got := p.Probes() - before; got != 1 {
		t.Fatalf("unmeetable budget cost %d probes, want 1", got)
	}
}
