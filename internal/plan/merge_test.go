package plan

import (
	"math"
	"testing"
)

func TestSplitBudgetProportional(t *testing.T) {
	parts := SplitBudget(10, []int{512, 256, 256})
	want := []float64{5, 2.5, 2.5}
	var sum float64
	for i, p := range parts {
		if math.Abs(p-want[i]) > 1e-12 {
			t.Fatalf("part %d = %g, want %g", i, p, want[i])
		}
		sum += p
	}
	if math.Abs(sum-10) > 1e-9 {
		t.Fatalf("parts sum to %g, want the whole budget 10", sum)
	}
}

func TestSplitBudgetConventions(t *testing.T) {
	for _, p := range SplitBudget(math.NaN(), []int{1, 2}) {
		if !math.IsNaN(p) {
			t.Fatalf("NaN (no budget) must propagate to every part, got %g", p)
		}
	}
	for _, p := range SplitBudget(-3, []int{1, 2}) {
		if p != 0 {
			t.Fatalf("negative budgets clamp to 0, got %g", p)
		}
	}
	// All-zero weights: even split, not division by zero.
	parts := SplitBudget(4, []int{0, 0})
	for _, p := range parts {
		if p != 2 {
			t.Fatalf("zero-weight fallback: got %g, want 2", p)
		}
	}
	// A zero weight among positive ones gets nothing.
	parts = SplitBudget(6, []int{0, 3})
	if parts[0] != 0 || parts[1] != 6 {
		t.Fatalf("got %v, want [0 6]", parts)
	}
	if got := SplitBudget(1, nil); len(got) != 0 {
		t.Fatalf("empty weights: got %v", got)
	}
}

func TestMergeAnswersComposition(t *testing.T) {
	m := MergeAnswers(
		Answer{Value: 3, Bound: 0.5, Rigorous: true, Path: PathProbe},
		Answer{Value: 4, Bound: 0, Rigorous: true, Path: PathExact},
	)
	if m.Value != 7 || m.Bound != 0.5 || !m.Rigorous {
		t.Fatalf("merged = %+v", m)
	}
	if m.Path != PathExact {
		t.Fatalf("merged path = %v, want the most expensive part path", m.Path)
	}

	// One unbounded part poisons the merged bound, not the value.
	m = MergeAnswers(
		Answer{Value: 1, Bound: 0.1, Rigorous: true, Path: PathCache},
		Answer{Value: 2, Bound: math.Inf(1), Rigorous: false, Path: PathProbe},
	)
	if m.Value != 3 || !math.IsInf(m.Bound, 1) || m.Rigorous {
		t.Fatalf("merged = %+v", m)
	}

	// A non-rigorous part makes the merge non-rigorous even with finite bounds.
	m = MergeAnswers(
		Answer{Value: 1, Bound: 1, Rigorous: true, Path: PathProbe},
		Answer{Value: 1, Bound: 1, Rigorous: false, Path: PathProbe},
	)
	if m.Rigorous || m.Bound != 2 {
		t.Fatalf("merged = %+v", m)
	}

	// Zero parts: the exact zero (fully-clamped range convention).
	m = MergeAnswers()
	if m.Value != 0 || m.Bound != 0 || !m.Rigorous || m.Path != PathExact {
		t.Fatalf("empty merge = %+v", m)
	}
}

// TestMergeMeetsSplitBudget pins the contract the router relies on: when
// every per-window answer meets its SplitBudget share, the merged bound
// meets the whole budget.
func TestMergeMeetsSplitBudget(t *testing.T) {
	budget := 7.5
	weights := []int{100, 50, 25}
	parts := SplitBudget(budget, weights)
	answers := make([]Answer, len(parts))
	for i, p := range parts {
		answers[i] = Answer{Value: 1, Bound: p * 0.99, Rigorous: true, Path: PathEscalate}
	}
	m := MergeAnswers(answers...)
	if m.Bound > budget {
		t.Fatalf("merged bound %g exceeds budget %g", m.Bound, budget)
	}
	if !m.Rigorous {
		t.Fatal("merge of rigorous parts must stay rigorous")
	}
}
