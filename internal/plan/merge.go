package plan

import "math"

// This file is the cross-node composition algebra the cluster router
// builds on. A range split across disjoint domain windows composes
// exactly: COUNT and SUM are cum-diffs, so the merged value is the sum
// of the per-window values, and |exact − Σvalues| ≤ Σ per-window bounds
// by the triangle inequality. The helpers keep that reasoning in one
// audited place instead of scattered through the router.

// SplitBudget divides one error budget across windows proportionally to
// their weights (typically the window widths): part i receives
// maxErr·wᵢ/Σw, so the parts sum back to maxErr and MergeAnswers of
// per-window answers each meeting its part meets the whole budget.
// Conventions follow Planner.Query: NaN means "no budget" and propagates
// to every part; a negative budget clamps to 0; zero (or all-zero)
// weights fall back to an even split so no window is handed an
// impossible 0-of-nothing share.
func SplitBudget(maxErr float64, weights []int) []float64 {
	parts := make([]float64, len(weights))
	if len(weights) == 0 {
		return parts
	}
	if math.IsNaN(maxErr) {
		for i := range parts {
			parts[i] = math.NaN()
		}
		return parts
	}
	if maxErr < 0 {
		maxErr = 0
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += float64(w)
		}
	}
	for i, w := range weights {
		if total <= 0 {
			parts[i] = maxErr / float64(len(weights))
		} else if w > 0 {
			parts[i] = maxErr * float64(w) / total
		}
	}
	return parts
}

// MergeAnswers composes per-window answers over disjoint windows into
// one: values and bounds add (an unbounded part makes the merged bound
// +Inf), the merge is rigorous only when every part is, and the merged
// Path is the most expensive path any part took (the bound, not the
// path, is what certifies the merged answer). Merging no
// answers yields the exact zero — the same convention Planner.Query uses
// for a fully-clamped range.
func MergeAnswers(parts ...Answer) Answer {
	merged := Answer{Bound: 0, Rigorous: true, Path: PathCache, Source: "merged"}
	if len(parts) == 0 {
		return Answer{Value: 0, Bound: 0, Rigorous: true, Path: PathExact, Source: "merged"}
	}
	for _, p := range parts {
		merged.Value += p.Value
		merged.Bound += p.Bound
		merged.Rigorous = merged.Rigorous && p.Rigorous
		if p.Path > merged.Path {
			merged.Path = p.Path
		}
	}
	if math.IsInf(merged.Bound, 1) || math.IsNaN(merged.Bound) {
		merged.Bound, merged.Rigorous = math.Inf(1), false
	}
	return merged
}
