// Package plan is the error-budget query planner: given a view of the
// synopses built over one metric (plus an exact fallback) it answers
// each range query by the cheapest path whose error bound meets the
// caller's budget — hot-range cache, synopsis probe, escalation to a
// finer synopsis, or the exact prefix table — and attaches the bound it
// met to the answer. The per-range bounds come from the method layer's
// error models (method.ErrorModel); the cache is snapshot-versioned so
// a rebuild can never serve a stale answer.
package plan

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"rangeagg/internal/obs"
)

// Path names how the planner produced an answer.
type Path int

const (
	// PathCache: the answer came from the hot-range cache.
	PathCache Path = iota
	// PathProbe: the first (pinned or cheapest) synopsis met the budget.
	PathProbe
	// PathEscalate: a later, finer synopsis met the budget after earlier
	// ones failed it.
	PathEscalate
	// PathExact: no synopsis met the budget; the exact fallback answered.
	PathExact
)

var pathNames = [...]string{"cache", "probe", "escalate", "exact"}

func (p Path) String() string {
	if p < 0 || int(p) >= len(pathNames) {
		return fmt.Sprintf("Path(%d)", int(p))
	}
	return pathNames[p]
}

// ParsePath inverts String for the wire names; ok is false for unknown
// names (e.g. a newer server speaking a name this build predates).
func ParsePath(s string) (Path, bool) {
	for i, name := range pathNames {
		if name == s {
			return Path(i), true
		}
	}
	return 0, false
}

// ErrBudget reports an unmeetable budget: no synopsis bound was small
// enough and the view has no exact fallback.
var ErrBudget = errors.New("plan: no path meets the error budget")

// Source is one synopsis the planner can probe. Estimate answers the
// range; Bound returns the synopsis's error certificate for it (ok
// false when the synopsis carries no error model, in which case the
// planner treats the bound as +Inf).
type Source struct {
	// Name is the synopsis name (the cache key component and the name
	// reported in answers).
	Name string
	// Words is the synopsis's storage footprint; the planner probes
	// cheapest-first (the advisor's cost-sweep ordering).
	Words int
	// Estimate answers the range approximately.
	Estimate func(a, b int) float64
	// Bound returns the error certificate for the range.
	Bound func(a, b int) (bound float64, rigorous bool, ok bool)
	// NoModel marks a source with no error model at all (e.g. a
	// shard-folded synopsis whose model cannot survive the fold). Every
	// bound would be +Inf, so the planner skips the source outright for
	// finite budgets instead of probing it per query.
	NoModel bool
}

// View is the planner's read-only picture of one metric at one snapshot
// version: the synopses to probe (cheapest-first) and the exact
// fallback.
type View struct {
	// Version is the snapshot version; it keys the cache so answers from
	// older snapshots can never leak into newer ones.
	Version int64
	// Metric names what the view summarizes ("count", "sum").
	Metric string
	// Domain is the attribute-domain size; queries are clamped to it.
	Domain int
	// Sources are the probe candidates, cheapest-first (see OrderSources).
	Sources []Source
	// Exact answers the range exactly (bound 0); nil when unavailable.
	Exact func(a, b int) float64
}

// SourceIndex resolves a source name to its probe position, or -1.
func (v *View) SourceIndex(name string) int {
	for i := range v.Sources {
		if v.Sources[i].Name == name {
			return i
		}
	}
	return -1
}

// OrderSources sorts sources into probe order: ascending storage words
// (cheapest probe first), name as the deterministic tiebreak. This is
// the same cost axis the advisor's budget sweep walks.
func OrderSources(sources []Source) {
	sort.Slice(sources, func(i, j int) bool {
		if sources[i].Words != sources[j].Words {
			return sources[i].Words < sources[j].Words
		}
		return sources[i].Name < sources[j].Name
	})
}

// Answer is a planned query result: the value, the error certificate it
// carries, and the path that produced it.
type Answer struct {
	// Value is the (possibly approximate) answer.
	Value float64
	// Bound bounds |exact − Value|; 0 on the exact path, +Inf when the
	// answering synopsis has no error model.
	Bound float64
	// Rigorous reports whether Bound is a guarantee.
	Rigorous bool
	// Path is how the planner got here.
	Path Path
	// Source is the synopsis that answered ("exact" on the exact path).
	Source string
}

// Planner routes queries through the cheapest path meeting each one's
// error budget, caching hot ranges. The zero Planner is not usable; use
// New.
type Planner struct {
	cache *Cache

	// nprobes counts this planner's synopsis probes (estimate + bound
	// evaluations); the obs counter aggregates across planners.
	nprobes atomic.Int64

	hits, misses *obs.Counter
	probes       *obs.Counter
	answers      [len(pathNames)]*obs.Counter
	latency      [len(pathNames)]*obs.Histogram
}

// New builds a planner with a hot-range cache of about cacheEntries
// answers; cacheEntries ≤ 0 disables caching.
func New(cacheEntries int) *Planner {
	p := &Planner{
		cache:  NewCache(cacheEntries),
		hits:   obs.Default.Counter("rangeagg_plan_cache_hits_total"),
		misses: obs.Default.Counter("rangeagg_plan_cache_misses_total"),
		probes: obs.Default.Counter("rangeagg_plan_probes_total"),
	}
	for i, name := range pathNames {
		p.answers[i] = obs.Default.Counter("rangeagg_plan_answers_total", obs.L("path", name)...)
		p.latency[i] = obs.Default.Histogram("rangeagg_plan_answer_seconds", obs.L("path", name)...)
	}
	return p
}

// CacheStats reports the planner cache's cumulative hit/miss counters.
func (p *Planner) CacheStats() CacheStats { return p.cache.Stats() }

// Probes returns how many synopsis probes (estimate + bound
// evaluations) this planner has performed — the work the model-less
// skip rule and the cache save.
func (p *Planner) Probes() int64 { return p.nprobes.Load() }

// Query answers [a,b] from v by the cheapest path whose bound is within
// maxErr. pinned names the synopsis to start probing at ("" = the
// view's cheapest); on a budget miss the planner escalates through the
// finer sources and finally the exact fallback. maxErr semantics: NaN
// means no budget (the pinned/cheapest synopsis always answers);
// negative budgets clamp to 0 (only the exact path, or a synopsis with
// a zero bound, can meet them).
func (p *Planner) Query(v *View, pinned string, a, b int, maxErr float64) (Answer, error) {
	start := time.Now()
	ans, err := p.query(v, pinned, a, b, maxErr)
	if err == nil {
		p.answers[ans.Path].Inc()
		p.latency[ans.Path].Since(start)
	}
	return ans, err
}

func (p *Planner) query(v *View, pinned string, a, b int, maxErr float64) (Answer, error) {
	first := 0
	if pinned != "" {
		if first = v.SourceIndex(pinned); first < 0 {
			return Answer{}, fmt.Errorf("plan: view has no source named %q", pinned)
		}
	}
	a, b, ok := clamp(a, b, v.Domain)
	if !ok {
		// Outside the domain the answer 0 is exact regardless of path.
		return Answer{Value: 0, Bound: 0, Rigorous: true, Path: PathExact, Source: "exact"}, nil
	}
	noBudget := math.IsNaN(maxErr)
	if maxErr < 0 {
		maxErr = 0
	}
	for i := first; i < len(v.Sources); i++ {
		src := &v.Sources[i]
		if src.NoModel && !noBudget && !math.IsInf(maxErr, 1) {
			// A model-less source cannot meet a finite budget — its bound
			// is +Inf by construction — so it is skipped without probing.
			// Under no budget (NaN) or an infinite one it still answers.
			continue
		}
		key := Key{Metric: v.Metric, Source: src.Name, A: a, B: b, Version: v.Version}
		val, hit := p.cache.get(key)
		if hit {
			p.hits.Inc()
		} else {
			p.misses.Inc()
			p.probes.Inc()
			p.nprobes.Add(1)
			val.value = src.Estimate(a, b)
			val.bound, val.rigorous, ok = src.Bound(a, b)
			if !ok {
				val.bound, val.rigorous = math.Inf(1), false
			}
			p.cache.put(key, val)
		}
		if noBudget || val.bound <= maxErr {
			path := PathProbe
			switch {
			case hit:
				path = PathCache
			case i > first:
				path = PathEscalate
			}
			return Answer{Value: val.value, Bound: val.bound, Rigorous: val.rigorous,
				Path: path, Source: src.Name}, nil
		}
	}
	if v.Exact == nil {
		// A budget no synopsis meets (or an empty source list) and
		// nothing exact to fall back on.
		return Answer{}, ErrBudget
	}
	return Answer{Value: v.Exact(a, b), Bound: 0, Rigorous: true, Path: PathExact, Source: "exact"}, nil
}

// clamp intersects [a,b] with [0,domain); ok is false when the
// intersection is empty.
func clamp(a, b, domain int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= domain {
		b = domain - 1
	}
	return a, b, a <= b && domain > 0
}
