package plan

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShards fixes the shard count of the hot-range cache. Sixteen
// shards keep lock contention negligible at the serving layer's
// batch fan-out width while the per-shard LRU lists stay long enough
// to be useful.
const cacheShards = 16

// Key identifies one cached answer. Version is the snapshot version the
// answer was computed against: a rebuild bumps the version, so entries
// from the previous snapshot can never satisfy a lookup for the new one
// — staleness is impossible by construction, and dead entries age out
// of the LRU instead of needing invalidation.
type Key struct {
	// Metric is the view's metric name ("count", "sum").
	Metric string
	// Source is the synopsis the answer came from.
	Source string
	// A, B are the clamped query endpoints.
	A, B int
	// Version is the snapshot version the answer was computed against.
	Version int64
}

// cached is the stored portion of an answer: everything except the
// path, which depends on how a particular query reached it.
type cached struct {
	value    float64
	bound    float64
	rigorous bool
}

// Cache is a sharded LRU of per-range answers keyed by
// {metric, source, range, snapshot version}.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	order   *list.List // front = most recent
}

type cacheEntry struct {
	key Key
	val cached
}

// NewCache builds a cache holding about entries answers in total;
// entries ≤ 0 returns nil (caching disabled — a nil *Cache is safe to
// use and never hits).
func NewCache(entries int) *Cache {
	if entries <= 0 {
		return nil
	}
	perShard := entries / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[Key]*list.Element, perShard)
		c.shards[i].order = list.New()
	}
	return c
}

// shard picks the shard for a key by FNV-1a over its fields.
func (c *Cache) shard(k Key) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range [2]string{k.Metric, k.Source} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64
	}
	for _, v := range [3]uint64{uint64(k.A), uint64(k.B), uint64(k.Version)} {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	return &c.shards[h%cacheShards]
}

// get returns the cached answer for k, marking it most recently used.
func (c *Cache) get(k Key) (cached, bool) {
	if c == nil {
		return cached{}, false
	}
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.entries[k]
	if ok {
		s.order.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return cached{}, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// put stores an answer for k, evicting the least recently used entry of
// the shard when full.
func (c *Cache) put(k Key, v cached) {
	if c == nil {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.order.MoveToFront(el)
		return
	}
	if s.order.Len() >= s.cap {
		oldest := s.order.Back()
		if oldest != nil {
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.entries[k] = s.order.PushFront(&cacheEntry{key: k, val: v})
}

// CacheStats reports cumulative hit and miss counts.
type CacheStats struct {
	Hits, Misses int64
}

// Stats returns the cache's cumulative hit/miss counters; a nil cache
// reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Len returns the number of live entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}
