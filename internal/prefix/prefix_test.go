package prefix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-6

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= eps*scale
}

// randCounts generates a small random distribution for property tests.
func randCounts(rng *rand.Rand, n int) []int64 {
	c := make([]int64, n)
	for i := range c {
		c[i] = rng.Int63n(50)
	}
	return c
}

func TestPrefixSums(t *testing.T) {
	tab := NewTable([]int64{3, 1, 4, 1, 5})
	wantP := []int64{0, 3, 4, 8, 9, 14}
	for i, w := range wantP {
		if tab.PInt[i] != w {
			t.Fatalf("PInt[%d] = %d, want %d", i, tab.PInt[i], w)
		}
	}
	if tab.Sum(1, 3) != 6 {
		t.Errorf("Sum(1,3) = %d, want 6", tab.Sum(1, 3))
	}
	if tab.Total() != 14 {
		t.Errorf("Total = %d, want 14", tab.Total())
	}
	if got := tab.Avg(0, 4); !approxEq(got, 2.8) {
		t.Errorf("Avg = %g, want 2.8", got)
	}
}

func TestSumPanicsOnBadRange(t *testing.T) {
	tab := NewTable([]int64{1, 2})
	for _, r := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sum(%d,%d) did not panic", r[0], r[1])
				}
			}()
			tab.Sum(r[0], r[1])
		}()
	}
}

func TestWindowMomentsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := randCounts(rng, 40)
	tab := NewTable(counts)
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(41)
		hi := lo + rng.Intn(41-lo)
		var s, s2, sup float64
		for u := lo; u <= hi; u++ {
			p := tab.P[u]
			s += p
			s2 += p * p
			sup += float64(u) * p
		}
		gs, gs2, gsup := tab.WindowP(lo, hi)
		if !approxEq(gs, s) || !approxEq(gs2, s2) || !approxEq(gsup, sup) {
			t.Fatalf("WindowP(%d,%d) = (%g,%g,%g), want (%g,%g,%g)", lo, hi, gs, gs2, gsup, s, s2, sup)
		}
	}
}

func TestVarSumPAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	counts := randCounts(rng, 30)
	tab := NewTable(counts)
	for trial := 0; trial < 100; trial++ {
		lo := rng.Intn(31)
		hi := lo + rng.Intn(31-lo)
		m := float64(hi - lo + 1)
		var s float64
		for u := lo; u <= hi; u++ {
			s += tab.P[u]
		}
		mean := s / m
		var want float64
		for u := lo; u <= hi; u++ {
			d := tab.P[u] - mean
			want += d * d
		}
		if got := tab.VarSumP(lo, hi); !approxEq(got, want) {
			t.Fatalf("VarSumP(%d,%d) = %g, want %g", lo, hi, got, want)
		}
	}
}

// bruteIntra computes the intra-bucket SSE directly from the definition.
func bruteIntra(counts []int64, l, r int) float64 {
	m := float64(r - l + 1)
	var sum int64
	for i := l; i <= r; i++ {
		sum += counts[i]
	}
	avg := float64(sum) / m
	var sse float64
	for a := l; a <= r; a++ {
		var s int64
		for b := a; b <= r; b++ {
			s += counts[b]
			d := float64(s) - float64(b-a+1)*avg
			sse += d * d
		}
	}
	return sse
}

func TestIntraCostAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	counts := randCounts(rng, 25)
	tab := NewTable(counts)
	for l := 0; l < 25; l++ {
		for r := l; r < 25; r++ {
			want := bruteIntra(counts, l, r)
			if got := tab.IntraCost(l, r); !approxEq(got, want) {
				t.Fatalf("IntraCost(%d,%d) = %g, want %g", l, r, got, want)
			}
		}
	}
}

// bruteSuffixStats returns the mean and variance-sum of suffix sums
// s[x,r], x in [l,r].
func bruteSuffixStats(counts []int64, l, r int) (mean, varSum float64) {
	var ys []float64
	for x := l; x <= r; x++ {
		var s int64
		for i := x; i <= r; i++ {
			s += counts[i]
		}
		ys = append(ys, float64(s))
	}
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		varSum += (y - mean) * (y - mean)
	}
	return mean, varSum
}

func brutePrefixStats(counts []int64, l, r int) (mean, varSum float64) {
	var ys []float64
	for x := l; x <= r; x++ {
		var s int64
		for i := l; i <= x; i++ {
			s += counts[i]
		}
		ys = append(ys, float64(s))
	}
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		varSum += (y - mean) * (y - mean)
	}
	return mean, varSum
}

func TestSuffixPrefixStatsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	counts := randCounts(rng, 20)
	tab := NewTable(counts)
	for l := 0; l < 20; l++ {
		for r := l; r < 20; r++ {
			wm, wv := bruteSuffixStats(counts, l, r)
			if got := tab.SuffixMean(l, r); !approxEq(got, wm) {
				t.Fatalf("SuffixMean(%d,%d) = %g, want %g", l, r, got, wm)
			}
			if got := tab.SuffixVar(l, r); !approxEq(got, wv) {
				t.Fatalf("SuffixVar(%d,%d) = %g, want %g", l, r, got, wv)
			}
			wm, wv = brutePrefixStats(counts, l, r)
			if got := tab.PrefixMean(l, r); !approxEq(got, wm) {
				t.Fatalf("PrefixMean(%d,%d) = %g, want %g", l, r, got, wm)
			}
			if got := tab.PrefixVar(l, r); !approxEq(got, wv) {
				t.Fatalf("PrefixVar(%d,%d) = %g, want %g", l, r, got, wv)
			}
		}
	}
}

// bruteLinRSS fits y = a + b·x by least squares and returns the RSS.
func bruteLinRSS(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	var rss float64
	for i := range xs {
		d := ys[i] - a - b*xs[i]
		rss += d * d
	}
	return rss
}

func TestSuffixRSSAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	counts := randCounts(rng, 18)
	tab := NewTable(counts)
	for l := 0; l < 18; l++ {
		for r := l; r < 18; r++ {
			var xs, ys []float64
			for x := l; x <= r; x++ {
				var s int64
				for i := x; i <= r; i++ {
					s += counts[i]
				}
				xs = append(xs, float64(x))
				ys = append(ys, float64(s))
			}
			want := bruteLinRSS(xs, ys)
			if got := tab.SuffixRSS(l, r); !approxEq(got, want) {
				t.Fatalf("SuffixRSS(%d,%d) = %g, want %g", l, r, got, want)
			}
		}
	}
}

func TestPrefixRSSAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	counts := randCounts(rng, 18)
	tab := NewTable(counts)
	for l := 0; l < 18; l++ {
		for r := l; r < 18; r++ {
			var xs, ys []float64
			for x := l; x <= r; x++ {
				var s int64
				for i := l; i <= x; i++ {
					s += counts[i]
				}
				xs = append(xs, float64(x))
				ys = append(ys, float64(s))
			}
			want := bruteLinRSS(xs, ys)
			if got := tab.PrefixRSS(l, r); !approxEq(got, want) {
				t.Fatalf("PrefixRSS(%d,%d) = %g, want %g", l, r, got, want)
			}
		}
	}
}

func TestSuffixLinePredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	counts := randCounts(rng, 15)
	tab := NewTable(counts)
	for l := 0; l < 15; l++ {
		for r := l; r < 15; r++ {
			slope, intercept := tab.SuffixLine(l, r)
			var rss float64
			for x := l; x <= r; x++ {
				var s int64
				for i := x; i <= r; i++ {
					s += counts[i]
				}
				pred := slope*float64(r-x+1) + intercept
				d := float64(s) - pred
				rss += d * d
			}
			want := tab.SuffixRSS(l, r)
			if !approxEq(rss, want) {
				t.Fatalf("SuffixLine(%d,%d) RSS = %g, want %g", l, r, rss, want)
			}
		}
	}
}

func TestPrefixLinePredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	counts := randCounts(rng, 15)
	tab := NewTable(counts)
	for l := 0; l < 15; l++ {
		for r := l; r < 15; r++ {
			slope, intercept := tab.PrefixLine(l, r)
			var rss float64
			for x := l; x <= r; x++ {
				var s int64
				for i := l; i <= x; i++ {
					s += counts[i]
				}
				pred := slope*float64(x-l+1) + intercept
				d := float64(s) - pred
				rss += d * d
			}
			want := tab.PrefixRSS(l, r)
			if !approxEq(rss, want) {
				t.Fatalf("PrefixLine(%d,%d) RSS = %g, want %g", l, r, rss, want)
			}
		}
	}
}

// TestResidualsSumToZero verifies the property that makes the SAP cross
// terms vanish: suffix residuals against the mean (SAP0) and against the
// linear fit (SAP1) sum to zero within each bucket.
func TestResidualsSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	counts := randCounts(rng, 16)
	tab := NewTable(counts)
	for l := 0; l < 16; l++ {
		for r := l; r < 16; r++ {
			mean := tab.SuffixMean(l, r)
			slope, intercept := tab.SuffixLine(l, r)
			var sum0, sum1 float64
			for x := l; x <= r; x++ {
				var s int64
				for i := x; i <= r; i++ {
					s += counts[i]
				}
				sum0 += float64(s) - mean
				sum1 += float64(s) - (slope*float64(r-x+1) + intercept)
			}
			if math.Abs(sum0) > 1e-6 {
				t.Fatalf("SAP0 residual sum (%d,%d) = %g", l, r, sum0)
			}
			if math.Abs(sum1) > 1e-6 {
				t.Fatalf("SAP1 residual sum (%d,%d) = %g", l, r, sum1)
			}
		}
	}
}

func TestRoundedCum(t *testing.T) {
	tab := NewTable([]int64{1, 2, 3, 4})
	// Bucket [0,3]: S = 10, len 4, avg 2.5.
	if got := tab.RoundedCum(0, 3, 0); got != 0 {
		t.Errorf("RoundedCum start = %d, want 0", got)
	}
	if got := tab.RoundedCum(0, 3, 4); got != 10 {
		t.Errorf("RoundedCum end = %d, want 10", got)
	}
	// pos=1: 2.5 → rounds (half up) to 3.
	if got := tab.RoundedCum(0, 3, 1); got != 3 {
		t.Errorf("RoundedCum(0,3,1) = %d, want 3", got)
	}
	// pos=2: 5 exactly.
	if got := tab.RoundedCum(0, 3, 2); got != 5 {
		t.Errorf("RoundedCum(0,3,2) = %d, want 5", got)
	}
}

func TestRoundedCumNearTrueValue(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	counts := randCounts(rng, 30)
	tab := NewTable(counts)
	for l := 0; l < 30; l++ {
		for r := l; r < 30; r++ {
			avg := tab.Avg(l, r)
			for pos := l; pos <= r+1; pos++ {
				exact := tab.P[l] + float64(pos-l)*avg
				got := float64(tab.RoundedCum(l, r, pos))
				if math.Abs(got-exact) > 0.5+1e-9 {
					t.Fatalf("RoundedCum(%d,%d,%d) = %g, exact %g", l, r, pos, got, exact)
				}
			}
		}
	}
}

func TestSSEFromErrorsMatchesPairSum(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		e := make([]float64, len(raw))
		for i, v := range raw {
			e[i] = float64(v)
		}
		var want float64
		for u := 0; u < len(e); u++ {
			for v := u + 1; v < len(e); v++ {
				d := e[v] - e[u]
				want += d * d
			}
		}
		return approxEq(SSEFromErrors(e), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountsRoundTrip(t *testing.T) {
	in := []int64{5, 0, 2, 9}
	tab := NewTable(in)
	out := tab.Counts()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("Counts()[%d] = %d, want %d", i, out[i], in[i])
		}
	}
	if tab.MaxAbsCount() != 9 {
		t.Errorf("MaxAbsCount = %d, want 9", tab.MaxAbsCount())
	}
}

func TestSxxInt(t *testing.T) {
	// Direct check for m = 5: x = 0..4, mean 2, Σ(x−2)² = 4+1+0+1+4 = 10.
	if got := SxxInt(5); !approxEq(got, 10) {
		t.Errorf("SxxInt(5) = %g, want 10", got)
	}
	if got := SxxInt(1); got != 0 {
		t.Errorf("SxxInt(1) = %g, want 0", got)
	}
}
