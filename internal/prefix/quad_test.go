package prefix

import (
	"math"
	"math/rand"
	"testing"
)

// bruteQuadRSS fits y = a + b·x + c·x² by normal equations on raw x and
// returns the RSS, as the oracle for the centered closed forms.
func bruteQuadRSS(xs, ys []float64) float64 {
	n := len(xs)
	if n <= 3 {
		// Solving exactly; a quadratic interpolates ≤3 points.
		if n < 3 {
			return 0
		}
	}
	// Build the 3×3 normal equations Σ [1 x x²]ᵀ[1 x x²] β = Σ [1 x x²]ᵀ y.
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	for i := range xs {
		x := xs[i]
		y := ys[i]
		s0++
		s1 += x
		s2 += x * x
		s3 += x * x * x
		s4 += x * x * x * x
		t0 += y
		t1 += x * y
		t2 += x * x * y
	}
	m := [3][4]float64{
		{s0, s1, s2, t0},
		{s1, s2, s3, t1},
		{s2, s3, s4, t2},
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		if m[col][col] == 0 {
			return 0
		}
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var beta [3]float64
	for r := 2; r >= 0; r-- {
		v := m[r][3]
		for c := r + 1; c < 3; c++ {
			v -= m[r][c] * beta[c]
		}
		beta[r] = v / m[r][r]
	}
	var rss float64
	for i := range xs {
		x := xs[i]
		d := ys[i] - (beta[0] + beta[1]*x + beta[2]*x*x)
		rss += d * d
	}
	return rss
}

func TestQuadFitRSSAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	counts := randCounts(rng, 22)
	tab := NewTable(counts)
	for lo := 0; lo <= 22; lo++ {
		for hi := lo; hi <= 22; hi++ {
			var xs, ys []float64
			for u := lo; u <= hi; u++ {
				xs = append(xs, float64(u))
				ys = append(ys, tab.P[u])
			}
			want := bruteQuadRSS(xs, ys)
			got := tab.QuadFitRSS(lo, hi)
			if !approxEq(got, want) {
				t.Fatalf("QuadFitRSS(%d,%d) = %g, want %g", lo, hi, got, want)
			}
		}
	}
}

func TestSuffixQuadModelPredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	counts := randCounts(rng, 16)
	tab := NewTable(counts)
	for l := 0; l < 16; l++ {
		for r := l; r < 16; r++ {
			c2, c1, c0 := tab.SuffixQuad(l, r)
			var rss float64
			for x := l; x <= r; x++ {
				var s int64
				for i := x; i <= r; i++ {
					s += counts[i]
				}
				ell := float64(r - x + 1)
				d := float64(s) - (c2*ell*ell + c1*ell + c0)
				rss += d * d
			}
			if want := tab.SuffixQuadRSS(l, r); !approxEq(rss, want) {
				t.Fatalf("SuffixQuad(%d,%d) model RSS %g, want %g", l, r, rss, want)
			}
		}
	}
}

func TestPrefixQuadModelPredicts(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	counts := randCounts(rng, 16)
	tab := NewTable(counts)
	for l := 0; l < 16; l++ {
		for r := l; r < 16; r++ {
			c2, c1, c0 := tab.PrefixQuad(l, r)
			var rss float64
			for x := l; x <= r; x++ {
				var s int64
				for i := l; i <= x; i++ {
					s += counts[i]
				}
				ell := float64(x - l + 1)
				d := float64(s) - (c2*ell*ell + c1*ell + c0)
				rss += d * d
			}
			if want := tab.PrefixQuadRSS(l, r); !approxEq(rss, want) {
				t.Fatalf("PrefixQuad(%d,%d) model RSS %g, want %g", l, r, rss, want)
			}
		}
	}
}

func TestQuadResidualsSumToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	counts := randCounts(rng, 14)
	tab := NewTable(counts)
	for l := 0; l < 14; l++ {
		for r := l; r < 14; r++ {
			c2, c1, c0 := tab.SuffixQuad(l, r)
			var sum float64
			for x := l; x <= r; x++ {
				var s int64
				for i := x; i <= r; i++ {
					s += counts[i]
				}
				ell := float64(r - x + 1)
				sum += float64(s) - (c2*ell*ell + c1*ell + c0)
			}
			if math.Abs(sum) > 1e-6 {
				t.Fatalf("SAP2 suffix residual sum (%d,%d) = %g", l, r, sum)
			}
		}
	}
}

func TestQuadRSSAtMostLinearRSS(t *testing.T) {
	// The quadratic family contains the linear one, so its RSS is ≤.
	rng := rand.New(rand.NewSource(215))
	counts := randCounts(rng, 30)
	tab := NewTable(counts)
	for l := 0; l < 30; l += 2 {
		for r := l; r < 30; r += 3 {
			q := tab.SuffixQuadRSS(l, r)
			lin := tab.SuffixRSS(l, r)
			if q > lin+1e-6*(1+lin) {
				t.Fatalf("quad RSS %g > linear RSS %g at [%d,%d]", q, lin, l, r)
			}
		}
	}
}

func TestPowerSum(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4} {
		for lo := 0; lo < 6; lo++ {
			for hi := lo; hi < 12; hi++ {
				var want float64
				for u := lo; u <= hi; u++ {
					v := 1.0
					for j := 0; j < k; j++ {
						v *= float64(u)
					}
					want += v
				}
				if got := powerSum(k, lo, hi); !approxEq(got, want) {
					t.Fatalf("powerSum(%d,%d,%d) = %g, want %g", k, lo, hi, got, want)
				}
			}
		}
	}
}
