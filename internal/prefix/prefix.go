// Package prefix provides the prefix-sum substrate shared by every synopsis
// construction algorithm in this repository.
//
// For a distribution A[0..n-1] it materializes the prefix array
// P[0..n] (P[0] = 0, P[t] = A[0]+…+A[t-1]) together with cumulative moment
// tables over P, so that all the per-bucket statistics needed by the
// dynamic programs of the paper — bucket averages, suffix-sum and
// prefix-sum variances (SAP0), regression residuals (SAP1), and the
// intra-bucket range-SSE of an average fit — are available in O(1) after
// O(n) preprocessing.
//
// The central identity (DESIGN.md §1): a range query s[a,b] equals
// P[b+1] − P[a], so summary errors on ranges are differences of pointwise
// errors on P, and the SSE over all ranges of a prefix-decomposable
// estimator is N·Σe² − (Σe)² with N = n+1.
package prefix

import "fmt"

// Table holds prefix sums of a distribution and cumulative moments over
// them. All moment queries take inclusive index windows into P (valid
// indices 0..n).
type Table struct {
	n int // number of attribute values

	// PInt[t] = Σ_{i<t} A[i], exact.
	PInt []int64
	// P is PInt converted to float64 once, for the numeric layers.
	P []float64

	// Cumulative moments over P: cum*[t] = Σ_{u<t} f(u,P[u]).
	cumP   []float64 // Σ P[u]
	cumP2  []float64 // Σ P[u]²
	cumUP  []float64 // Σ u·P[u]
	cumU2P []float64 // Σ u²·P[u]
}

// NewTable builds the moment tables for counts in O(n).
func NewTable(counts []int64) *Table {
	n := len(counts)
	t := &Table{
		n:      n,
		PInt:   make([]int64, n+1),
		P:      make([]float64, n+1),
		cumP:   make([]float64, n+2),
		cumP2:  make([]float64, n+2),
		cumUP:  make([]float64, n+2),
		cumU2P: make([]float64, n+2),
	}
	for i, c := range counts {
		t.PInt[i+1] = t.PInt[i] + c
	}
	for u := 0; u <= n; u++ {
		p := float64(t.PInt[u])
		t.P[u] = p
		t.cumP[u+1] = t.cumP[u] + p
		t.cumP2[u+1] = t.cumP2[u] + p*p
		t.cumUP[u+1] = t.cumUP[u] + float64(u)*p
		t.cumU2P[u+1] = t.cumU2P[u] + float64(u)*float64(u)*p
	}
	return t
}

// N returns the domain size n.
func (t *Table) N() int { return t.n }

// Total returns the grand total s[0,n-1].
func (t *Table) Total() int64 { return t.PInt[t.n] }

// Sum returns s[a,b] = Σ_{a≤i≤b} A[i] exactly. The range is inclusive and
// must satisfy 0 ≤ a ≤ b < n.
func (t *Table) Sum(a, b int) int64 {
	t.checkRange(a, b)
	return t.PInt[b+1] - t.PInt[a]
}

// SumF is Sum as a float64.
func (t *Table) SumF(a, b int) float64 { return float64(t.Sum(a, b)) }

// Avg returns the average count over [a,b].
func (t *Table) Avg(a, b int) float64 {
	return t.SumF(a, b) / float64(b-a+1)
}

func (t *Table) checkRange(a, b int) {
	if a < 0 || b >= t.n || a > b {
		panic(fmt.Sprintf("prefix: invalid range [%d,%d] for n=%d", a, b, t.n))
	}
}

func (t *Table) checkWindow(lo, hi int) {
	if lo < 0 || hi > t.n || lo > hi {
		panic(fmt.Sprintf("prefix: invalid P window [%d,%d] for n=%d", lo, hi, t.n))
	}
}

// WindowP returns (Σ P[u], Σ P[u]², Σ u·P[u]) for u in the inclusive
// window [lo,hi] of the prefix array.
func (t *Table) WindowP(lo, hi int) (sum, sum2, sumUP float64) {
	t.checkWindow(lo, hi)
	return t.cumP[hi+1] - t.cumP[lo],
		t.cumP2[hi+1] - t.cumP2[lo],
		t.cumUP[hi+1] - t.cumUP[lo]
}

// VarSumP returns Σ_{u∈[lo,hi]} (P[u] − mean)², the non-normalized variance
// of P over the window. This is exactly the SAP0 suffix-sum error of a
// bucket (window [l..r]) and its prefix-sum error (window [l+1..r+1]); see
// DESIGN.md §3.3.
func (t *Table) VarSumP(lo, hi int) float64 {
	sum, sum2, _ := t.WindowP(lo, hi)
	m := float64(hi - lo + 1)
	v := sum2 - sum*sum/m
	if v < 0 { // numeric guard: true value is non-negative
		v = 0
	}
	return v
}

// CovUP returns Σ_{u∈[lo,hi]} (u − ū)(P[u] − mean) = Σ u·P[u] − ū·Σ P[u],
// the covariance sum of the index with P over the window, used by the SAP1
// regression residuals.
func (t *Table) CovUP(lo, hi int) float64 {
	sum, _, sumUP := t.WindowP(lo, hi)
	meanU := float64(lo+hi) / 2
	return sumUP - meanU*sum
}

// SxxInt returns Σ (x − x̄)² for x = 0..m-1 (equivalently any m consecutive
// integers): m(m²−1)/12.
func SxxInt(m int) float64 {
	mf := float64(m)
	return mf * (mf*mf - 1) / 12
}

// LinFitRSS returns the residual sum of squares of the least-squares line
// fit (with intercept) of P[u] against u over the inclusive window
// [lo,hi]. Residuals of such a fit sum to zero, which is what makes the
// SAP1 cross terms vanish (DESIGN.md §3.3).
func (t *Table) LinFitRSS(lo, hi int) float64 {
	m := hi - lo + 1
	if m <= 2 {
		return 0 // a line interpolates ≤2 points exactly
	}
	syy := t.VarSumP(lo, hi)
	sxy := t.CovUP(lo, hi)
	sxx := SxxInt(m)
	rss := syy - sxy*sxy/sxx
	if rss < 0 {
		rss = 0
	}
	return rss
}

// AvgFit returns, for the data bucket [l,r] (inclusive, 0 ≤ l ≤ r < n),
// the bucket average and the first two moments of the local prefix error
// of the average fit:
//
//	e'_t = P[t] − P[l] − (t−l)·avg     for t ∈ [l, r+1]
//
// (e'_l = e'_{r+1} = 0 by construction). The returned sums run over the
// whole window [l, r+1].
func (t *Table) AvgFit(l, r int) (avg, sumE, sumE2 float64) {
	t.checkRange(l, r)
	m := float64(r - l + 1)
	S := t.P[r+1] - t.P[l]
	avg = S / m
	lo, hi := l, r+1
	sum, sum2, sumUP := t.WindowP(lo, hi)
	cnt := float64(hi - lo + 1) // m+1
	pl := t.P[l]
	// q_t = P[t] − P[l]; d_t = t − l.
	sumQ := sum - cnt*pl
	sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
	sumD := m * (m + 1) / 2
	sumD2 := m * (m + 1) * (2*m + 1) / 6
	// Σ d_t·P[t] = Σ (t)·P[t] − l·Σ P[t]  over the window.
	sumDP := sumUP - float64(l)*sum
	sumQD := sumDP - pl*sumD
	sumE = sumQ - avg*sumD
	sumE2 = sumQ2 - 2*avg*sumQD + avg*avg*sumD2
	if sumE2 < 0 {
		sumE2 = 0
	}
	return avg, sumE, sumE2
}

// IntraCost returns the exact sum-squared error, over all range queries
// fully contained in the bucket [l,r], of answering with the (unrounded)
// bucket average: Σ_{l≤a≤b≤r} (s[a,b] − (b−a+1)·avg)². By the prefix-error
// identity this is (m+1)·Σe'² − (Σe')² with m = r−l+1.
func (t *Table) IntraCost(l, r int) float64 {
	_, sumE, sumE2 := t.AvgFit(l, r)
	m := float64(r - l + 1)
	c := (m+1)*sumE2 - sumE*sumE
	if c < 0 {
		c = 0
	}
	return c
}

// SuffixVar returns the SAP0 suffix-sum error of bucket [l,r]: the
// variance sum of the bucket's suffix sums s[x,r] over x ∈ [l,r], with the
// optimal summary (their mean) subtracted.
func (t *Table) SuffixVar(l, r int) float64 {
	t.checkRange(l, r)
	return t.VarSumP(l, r)
}

// PrefixVar returns the SAP0 prefix-sum error of bucket [l,r]: the variance
// sum of the bucket's prefix sums s[l,x] over x ∈ [l,r].
func (t *Table) PrefixVar(l, r int) float64 {
	t.checkRange(l, r)
	return t.VarSumP(l+1, r+1)
}

// SuffixRSS returns the SAP1 suffix-side error of bucket [l,r]: the RSS of
// the best linear (in the left endpoint) fit to the bucket's suffix sums.
func (t *Table) SuffixRSS(l, r int) float64 {
	t.checkRange(l, r)
	return t.LinFitRSS(l, r)
}

// PrefixRSS returns the SAP1 prefix-side error of bucket [l,r].
func (t *Table) PrefixRSS(l, r int) float64 {
	t.checkRange(l, r)
	return t.LinFitRSS(l+1, r+1)
}

// SuffixMean returns the optimal SAP0 suffix summary of bucket [l,r]: the
// mean of the suffix sums s[x,r], x ∈ [l,r].
func (t *Table) SuffixMean(l, r int) float64 {
	t.checkRange(l, r)
	sum, _, _ := t.WindowP(l, r)
	m := float64(r - l + 1)
	return t.P[r+1] - sum/m
}

// PrefixMean returns the optimal SAP0 prefix summary of bucket [l,r]: the
// mean of the prefix sums s[l,x], x ∈ [l,r].
func (t *Table) PrefixMean(l, r int) float64 {
	t.checkRange(l, r)
	sum, _, _ := t.WindowP(l+1, r+1)
	m := float64(r - l + 1)
	return sum/m - t.P[l]
}

// SuffixLine returns the optimal SAP1 suffix model (slope, intercept) so
// that s[x,r] ≈ slope·(r−x+1) + intercept for x ∈ [l,r]; the model is the
// least-squares fit against the suffix length, matching the paper's
// (B>−l+1)·suff'(i) + suff(i) answering form.
func (t *Table) SuffixLine(l, r int) (slope, intercept float64) {
	t.checkRange(l, r)
	// y(x) = s[x,r] = P[r+1] − P[x]; regress on len = r−x+1.
	// With u = x: len = r+1−u, so cov(len,y) = −cov(u,y) = cov(u,P).
	m := float64(r - l + 1)
	if m == 1 {
		return 0, t.SumF(l, r)
	}
	sum, _, _ := t.WindowP(l, r)
	covUP := t.CovUP(l, r)
	sxx := SxxInt(r - l + 1)
	// cov(u, y) = cov(u, P[r+1]−P[u]) = −covUP; cov(len,y)=covUP.
	slope = covUP / sxx
	meanLen := (float64(r-l+1) + 1) / 2 // mean of len over x∈[l,r]
	meanY := t.P[r+1] - sum/m
	intercept = meanY - slope*meanLen
	return slope, intercept
}

// PrefixLine returns the optimal SAP1 prefix model (slope, intercept) so
// that s[l,x] ≈ slope·(x−l+1) + intercept for x ∈ [l,r].
func (t *Table) PrefixLine(l, r int) (slope, intercept float64) {
	t.checkRange(l, r)
	m := float64(r - l + 1)
	if m == 1 {
		return 0, t.SumF(l, r)
	}
	// y(x) = P[x+1] − P[l]; window u = x+1 ∈ [l+1, r+1]; len = x−l+1 = u−l.
	sum, _, _ := t.WindowP(l+1, r+1)
	covUP := t.CovUP(l+1, r+1) // cov(u,P) = cov(len,y)
	sxx := SxxInt(r - l + 1)
	slope = covUP / sxx
	meanLen := (m + 1) / 2
	meanY := sum/m - t.P[l]
	intercept = meanY - slope*meanLen
	return slope, intercept
}

// RoundedCum returns the integral rounded cumulative estimate used by the
// exact OPT-A dynamic program: for position t inside bucket [l,r]
// (l ≤ t ≤ r+1), the value P[l] + round((t−l)·avg) computed exactly in
// integer arithmetic (round half away from zero; all quantities here are
// non-negative). RoundedCum(l, r, l) = P[l] and RoundedCum(l, r, r+1) =
// P[r+1] exactly.
func (t *Table) RoundedCum(l, r, pos int) int64 {
	t.checkRange(l, r)
	if pos < l || pos > r+1 {
		panic(fmt.Sprintf("prefix: pos %d outside bucket [%d,%d]", pos, l, r))
	}
	den := int64(r - l + 1)
	S := t.PInt[r+1] - t.PInt[l]
	num := int64(pos-l) * S
	// round(num/den) half up; num, den ≥ 0.
	return t.PInt[l] + (2*num+den)/(2*den)
}

// SSEFromErrors applies the prefix-error identity: given pointwise errors
// e[0..n] of a cumulative estimate, it returns the exact SSE over all
// ranges, N·Σe² − (Σe)².
func SSEFromErrors(e []float64) float64 {
	var s, s2 float64
	for _, v := range e {
		s += v
		s2 += v * v
	}
	sse := float64(len(e))*s2 - s*s
	if sse < 0 {
		sse = 0
	}
	return sse
}

// MaxAbsCount returns the largest |A[i]| recoverable from the table,
// useful for scaling decisions in the rounded DP.
func (t *Table) MaxAbsCount() int64 {
	var m int64
	for i := 1; i <= t.n; i++ {
		c := t.PInt[i] - t.PInt[i-1]
		if c > m {
			m = c
		}
		if -c > m {
			m = -c
		}
	}
	return m
}

// Counts reconstructs the underlying counts (a copy).
func (t *Table) Counts() []int64 {
	c := make([]int64, t.n)
	for i := 0; i < t.n; i++ {
		c[i] = t.PInt[i+1] - t.PInt[i]
	}
	return c
}

// Moments exposes the raw prefix and cumulative-moment slices for
// allocation-free inner loops. The inlined dynamic-program cost kernels in
// internal/dp read these directly instead of paying a method (or closure)
// call per candidate bucket — the construction hot path. The slices are
// the table's own storage: callers must treat them as read-only.
type Moments struct {
	// P[t] is the prefix sum Σ_{i<t} A[i], t in [0, n].
	P []float64
	// CumP[t] = Σ_{u<t} P[u]; CumP2 and CumUP are the P² and u·P
	// analogues. All have length n+2.
	CumP, CumP2, CumUP []float64
}

// Moments returns the raw moment slices (see the Moments type).
func (t *Table) Moments() Moments {
	return Moments{P: t.P, CumP: t.cumP, CumP2: t.cumP2, CumUP: t.cumUP}
}

// WindowU2P returns Σ u²·P[u] over the inclusive window.
func (t *Table) WindowU2P(lo, hi int) float64 {
	t.checkWindow(lo, hi)
	return t.cumU2P[hi+1] - t.cumU2P[lo]
}

// quadMoments returns the centered moments needed by the quadratic fit of
// P against u over [lo,hi]: with x = u − ū, it computes Σx², Σx⁴
// (Σx and Σx³ vanish by symmetry of consecutive integers), Σy, Σx·y,
// Σx²·y and Σy², for y = P[u].
func (t *Table) quadMoments(lo, hi int) (m, s2, s4, sy, sxy, sx2y, syy float64) {
	cnt := float64(hi - lo + 1)
	mean := float64(lo+hi) / 2
	sy, syy, sup := t.WindowP(lo, hi)
	su2p := t.WindowU2P(lo, hi)
	sxy = sup - mean*sy
	sx2y = su2p - 2*mean*sup + mean*mean*sy
	// Power sums of u over [lo,hi] via Faulhaber, then center.
	p1 := powerSum(1, lo, hi)
	p2 := powerSum(2, lo, hi)
	p3 := powerSum(3, lo, hi)
	p4 := powerSum(4, lo, hi)
	s2 = p2 - 2*mean*p1 + cnt*mean*mean
	s4 = p4 - 4*mean*p3 + 6*mean*mean*p2 - 4*mean*mean*mean*p1 + cnt*mean*mean*mean*mean
	return cnt, s2, s4, sy, sxy, sx2y, syy
}

// powerSum returns Σ_{u=lo..hi} u^k for k ≤ 4 via Faulhaber's formulas.
func powerSum(k, lo, hi int) float64 {
	f := func(n float64) float64 {
		switch k {
		case 1:
			return n * (n + 1) / 2
		case 2:
			return n * (n + 1) * (2*n + 1) / 6
		case 3:
			s := n * (n + 1) / 2
			return s * s
		case 4:
			return n * (n + 1) * (2*n + 1) * (3*n*n + 3*n - 1) / 30
		default:
			panic("prefix: powerSum supports k ≤ 4")
		}
	}
	var below float64
	if lo > 0 {
		below = f(float64(lo - 1))
	} else if lo < 0 {
		panic("prefix: powerSum needs lo ≥ 0")
	}
	return f(float64(hi)) - below
}

// quadFit fits P[u] ≈ a + b·x + c·x² (x centered at the window mean) by
// least squares and returns (a, b, c, ū, RSS). The centered normal
// equations decouple: b = Σxy/Σx²; (a, c) solve the 2×2 system
// [[m, S2], [S2, S4]]. Degenerate windows (m ≤ 3 or a singular system)
// return an exact fit with RSS 0 where possible.
func (t *Table) quadFit(lo, hi int) (a, b, c, mean, rss float64) {
	m, s2, s4, sy, sxy, sx2y, syy := t.quadMoments(lo, hi)
	mean = float64(lo+hi) / 2
	if hi-lo+1 <= 2 {
		// A line through ≤2 points: c = 0.
		if s2 > 0 {
			b = sxy / s2
		}
		a = sy / m
		return a, b, 0, mean, 0
	}
	det := m*s4 - s2*s2
	if det <= 0 {
		a = sy / m
		if s2 > 0 {
			b = sxy / s2
		}
		return a, b, 0, mean, 0
	}
	b = sxy / s2
	a = (sy*s4 - s2*sx2y) / det
	c = (m*sx2y - s2*sy) / det
	rss = syy - (a*sy + b*sxy + c*sx2y)
	if rss < 0 {
		rss = 0
	}
	return a, b, c, mean, rss
}

// QuadFitRSS returns the residual sum of squares of the least-squares
// quadratic fit of P against the index over the inclusive window.
func (t *Table) QuadFitRSS(lo, hi int) float64 {
	_, _, _, _, rss := t.quadFit(lo, hi)
	return rss
}

// SuffixQuadRSS returns the SAP2 suffix-side error of bucket [l,r]: the
// RSS of the best quadratic (in the left endpoint, equivalently in the
// suffix length — an affine reparametrization) fit to the bucket's suffix
// sums. The residuals equal those of the quadratic fit of P over [l,r].
func (t *Table) SuffixQuadRSS(l, r int) float64 {
	t.checkRange(l, r)
	return t.QuadFitRSS(l, r)
}

// PrefixQuadRSS returns the SAP2 prefix-side error of bucket [l,r].
func (t *Table) PrefixQuadRSS(l, r int) float64 {
	t.checkRange(l, r)
	return t.QuadFitRSS(l+1, r+1)
}

// SuffixQuad returns the optimal SAP2 suffix model (c2, c1, c0) so that
// s[x,r] ≈ c2·ℓ² + c1·ℓ + c0 with ℓ = r−x+1 the suffix length, x ∈ [l,r].
func (t *Table) SuffixQuad(l, r int) (c2, c1, c0 float64) {
	t.checkRange(l, r)
	// y(u) = P[r+1] − P[u] over u ∈ [l,r]; P̂(u) = a + b·x + c·x²,
	// x = u − ū, and ℓ = r+1−u ⇒ x = q − ℓ with q = r+1−ū.
	a, b, c, mean, _ := t.quadFit(l, r)
	q := float64(r+1) - mean
	pr1 := t.P[r+1]
	// ŷ(ℓ) = P[r+1] − (a + b(q−ℓ) + c(q−ℓ)²)
	c2 = -c
	c1 = b + 2*c*q
	c0 = pr1 - a - b*q - c*q*q
	return c2, c1, c0
}

// PrefixQuad returns the optimal SAP2 prefix model (c2, c1, c0) so that
// s[l,x] ≈ c2·ℓ² + c1·ℓ + c0 with ℓ = x−l+1 the prefix length, x ∈ [l,r].
func (t *Table) PrefixQuad(l, r int) (c2, c1, c0 float64) {
	t.checkRange(l, r)
	// y(x) = P[x+1] − P[l]; window u = x+1 ∈ [l+1, r+1], ℓ = u − l.
	a, b, c, mean, _ := t.quadFit(l+1, r+1)
	q := mean - float64(l) // ℓ = u − l ⇒ x = u − ū = ℓ − q
	pl := t.P[l]
	// ŷ(ℓ) = (a + b(ℓ−q) + c(ℓ−q)²) − P[l]
	c2 = c
	c1 = b - 2*c*q
	c0 = a - b*q + c*q*q - pl
	return c2, c1, c0
}
