// Package build is the synopsis composition layer: it applies the
// paper's storage accounting to turn a word budget into a
// bucket/coefficient count, runs the construction algorithm resolved
// from the method registry (internal/method), and composes the §4–5
// improvement operators (boundary local search, value re-optimization)
// and the coarsen-lift scaling path on top. It holds no per-method
// knowledge of its own — what each method *is* lives in its registry
// descriptor; this package only sequences budget → build → improve.
package build

import (
	"fmt"
	"time"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/obs"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
)

// buildSeconds times one whole Build per method ID
// (rangeagg_build_seconds{method=...}); phaseSeconds splits it into the
// construct / improve / coarsen phases
// (rangeagg_build_phase_seconds{method,phase}). These are the per-method
// build histograms the synserve banner and /metrics surface.
func buildSeconds(name string) *obs.Histogram {
	return obs.Default.Histogram("rangeagg_build_seconds", obs.L("method", name)...)
}

func phaseSeconds(name, phase string) *obs.Histogram {
	return obs.Default.Histogram("rangeagg_build_phase_seconds",
		obs.L("method", name, "phase", phase)...)
}

// Estimator answers approximate range-sum queries; it is the internal
// counterpart of the facade's Synopsis interface.
type Estimator = method.Estimator

// Method selects a synopsis construction algorithm. It is the registry's
// ID type; the facade's public enum carries the same numbering
// (TestMethodEnumAligned guards it).
type Method = method.ID

// The registered methods, re-exported so consumers keep one import.
const (
	Naive          = method.Naive
	EquiWidth      = method.EquiWidth
	EquiDepth      = method.EquiDepth
	MaxDiff        = method.MaxDiff
	VOptimal       = method.VOptimal
	PointOpt       = method.PointOpt
	A0             = method.A0
	SAP0           = method.SAP0
	SAP1           = method.SAP1
	OptA           = method.OptA
	OptARounded    = method.OptARounded
	WaveTopBB      = method.WaveTopBB
	WaveRangeOpt   = method.WaveRangeOpt
	WaveAA2D       = method.WaveAA2D
	PrefixOpt      = method.PrefixOpt
	SAP2           = method.SAP2
	SAP0Approx     = method.SAP0Approx
	A0Approx       = method.A0Approx
	PointOptApprox = method.PointOptApprox
	Segmented      = method.Segmented
)

// ParseMethod resolves a method from its paper name (case-insensitive).
func ParseMethod(s string) (Method, error) { return method.Parse(s) }

// Methods lists every registered method in enum order.
func Methods() []Method { return method.IDs() }

// Options parameterizes Build. The fields mirror the facade's public
// Options (see rangeagg.Options for per-field semantics); Rounding is
// internal-only: it selects the answering procedure of
// average-representation results (the facade always builds unrounded).
type Options struct {
	Method      Method             `json:"method"`
	BudgetWords int                `json:"budget_words"`
	Reopt       bool               `json:"reopt,omitempty"`
	LocalSearch bool               `json:"local_search,omitempty"`
	Seed        int64              `json:"seed,omitempty"`
	Epsilon     float64            `json:"epsilon,omitempty"`
	RoundedX    int64              `json:"rounded_x,omitempty"`
	MaxStates   int                `json:"max_states,omitempty"`
	CoarsenTo   int                `json:"coarsen_to,omitempty"`
	Rounding    histogram.Rounding `json:"rounding,omitempty"`
	// Segments and SegmentPolicy parameterize the SEGMENTED family's
	// partition; other methods ignore them.
	Segments      int    `json:"segments,omitempty"`
	SegmentPolicy string `json:"segment_policy,omitempty"`
}

// Units converts the word budget into the method's bucket (or
// coefficient) count under the paper's accounting, never below 1.
func (o Options) Units() int {
	words := 2 // the common accounting; unknown methods fail in Build
	if d, err := method.Lookup(o.Method); err == nil {
		words = d.WordsPerUnit
	}
	u := o.BudgetWords / words
	if u < 1 {
		u = 1
	}
	return u
}

// methodOpts translates resolved build options into the registry's
// construction parameters.
func (o Options) methodOpts() method.Opts {
	return method.Opts{
		Units:         o.Units(),
		Rounding:      o.Rounding,
		Seed:          o.Seed,
		Epsilon:       o.Epsilon,
		RoundedX:      o.RoundedX,
		MaxStates:     o.MaxStates,
		Segments:      o.Segments,
		SegmentPolicy: o.SegmentPolicy,
		BudgetWords:   o.BudgetWords,
	}
}

// Build constructs a synopsis over the attribute-value distribution.
func Build(counts []int64, opt Options) (Estimator, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("build: empty distribution")
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("build: negative count %d at value %d", c, i)
		}
	}
	d, err := method.Lookup(opt.Method)
	if err != nil {
		return nil, fmt.Errorf("build: unknown method %d", int(opt.Method))
	}
	if !d.BudgetFree && opt.BudgetWords <= 0 {
		return nil, fmt.Errorf("build: %s needs a positive storage budget, got %d words",
			d.Name, opt.BudgetWords)
	}
	defer buildSeconds(d.Name).Since(time.Now())
	if opt.CoarsenTo > 0 && opt.CoarsenTo < len(counts) && d.Caps.Has(method.BucketBased) {
		defer phaseSeconds(d.Name, "coarsen").Since(time.Now())
		return buildCoarsened(counts, d, opt)
	}
	tab := prefix.NewTable(counts)
	construct := time.Now()
	est, err := d.Build(tab, counts, opt.methodOpts())
	phaseSeconds(d.Name, "construct").Since(construct)
	if err != nil {
		return nil, err
	}
	return improve(tab, est, opt)
}

// improve applies the §4–5 improvement operators: boundary local search
// first (it re-derives true averages), then value re-optimization. Both
// are defined for the average representation only.
func improve(tab *prefix.Table, est Estimator, opt Options) (Estimator, error) {
	if !opt.LocalSearch && !opt.Reopt {
		return est, nil
	}
	defer phaseSeconds(est.Name(), "improve").Since(time.Now())
	avg, ok := est.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("build: local search / reopt apply to average-representation histograms, not %s", est.Name())
	}
	if opt.LocalSearch {
		improved, _, err := dp.ImproveBoundaries(tab, avg, 0)
		if err != nil {
			return nil, err
		}
		avg = improved
	}
	if opt.Reopt {
		re, err := reopt.Reopt(tab, avg)
		if err != nil {
			return nil, err
		}
		avg = re
	}
	return avg, nil
}

// buildCoarsened pre-aggregates the domain into opt.CoarsenTo equal-width
// cells, runs the bucket construction on the coarse distribution, and
// lifts the resulting boundaries back onto the full domain — how the
// quadratic DPs scale to domains of millions of values. Summaries are
// recomputed at full resolution (the descriptor's FromBounds hook) for
// the lifted boundaries, so only the boundary placement is approximate.
func buildCoarsened(counts []int64, d method.Descriptor, opt Options) (Estimator, error) {
	n, cells := len(counts), opt.CoarsenTo
	bound := func(i int) int { return i * n / cells } // cell i = [bound(i), bound(i+1))
	coarse := make([]int64, cells)
	for i := 0; i < cells; i++ {
		var s int64
		for j := bound(i); j < bound(i+1); j++ {
			s += counts[j]
		}
		coarse[i] = s
	}
	copt := opt
	copt.CoarsenTo = 0
	copt.LocalSearch = false // improvement operators run at full resolution
	copt.Reopt = false
	cEst, err := Build(coarse, copt)
	if err != nil {
		return nil, err
	}
	cStarts, cLabel, err := bucketStarts(cEst)
	if err != nil {
		return nil, err
	}
	starts := make([]int, len(cStarts))
	for i, s := range cStarts {
		starts[i] = bound(s)
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	tab := prefix.NewTable(counts)
	est, err := d.FromBounds(tab, bk, cLabel, opt.methodOpts())
	if err != nil {
		return nil, err
	}
	return improve(tab, est, opt)
}

// bucketStarts extracts the bucket boundaries and label of a
// bucket-partition estimator.
func bucketStarts(est Estimator) ([]int, string, error) {
	bk, ok := est.(histogram.Bucketed)
	if !ok {
		return nil, "", fmt.Errorf("build: %s has no bucket boundaries", est.Name())
	}
	return bk.BucketStarts(), bk.BucketLabel(), nil
}
