// Package build dispatches synopsis construction: it maps a (method,
// storage budget) request onto the concrete algorithms of internal/dp,
// internal/core and internal/wavelet, applies the paper's storage
// accounting to turn a word budget into a bucket/coefficient count, and
// composes the §4–5 improvement operators (boundary local search, value
// re-optimization) on top. Every layer above — the public facade, the
// engine, the advisor, the experiments — builds synopses through this
// package only.
package build

import (
	"fmt"
	"strings"

	"rangeagg/internal/core"
	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
	"rangeagg/internal/wavelet"
)

// Estimator answers approximate range-sum queries; it is the internal
// counterpart of the facade's Synopsis interface.
type Estimator interface {
	Estimate(a, b int) float64
	N() int
	StorageWords() int
	Name() string
}

// Method selects a synopsis construction algorithm. The order must stay
// aligned with the facade's public enum (rangeagg.Method converts by
// cast; TestMethodEnumAligned guards it).
type Method int

const (
	Naive Method = iota
	EquiWidth
	EquiDepth
	MaxDiff
	VOptimal
	PointOpt
	A0
	SAP0
	SAP1
	OptA
	OptARounded
	WaveTopBB
	WaveRangeOpt
	WaveAA2D
	PrefixOpt
	SAP2
)

// methodNames are the paper names, indexed by Method.
var methodNames = [...]string{
	"NAIVE", "EQUI-WIDTH", "EQUI-DEPTH", "MAXDIFF", "V-OPT", "POINT-OPT",
	"A0", "SAP0", "SAP1", "OPT-A", "OPT-A-ROUNDED", "TOPBB",
	"WAVE-RANGEOPT", "WAVE-AA2D", "PREFIX-OPT", "SAP2",
}

// String returns the method's paper name.
func (m Method) String() string {
	if m < 0 || int(m) >= len(methodNames) {
		return fmt.Sprintf("Method(%d)", int(m))
	}
	return methodNames[m]
}

// ParseMethod resolves a method from its paper name (case-insensitive).
func ParseMethod(s string) (Method, error) {
	for i, name := range methodNames {
		if strings.EqualFold(name, s) {
			return Method(i), nil
		}
	}
	return 0, fmt.Errorf("build: unknown method %q", s)
}

// Methods lists every available method in enum order.
func Methods() []Method {
	out := make([]Method, len(methodNames))
	for i := range out {
		out[i] = Method(i)
	}
	return out
}

// wordsPerUnit is the paper's storage accounting (DESIGN.md §3): words
// per bucket for histograms, per kept coefficient for wavelets.
func (m Method) wordsPerUnit() int {
	switch m {
	case Naive:
		return 1
	case SAP0:
		return 3
	case SAP1:
		return 5
	case SAP2:
		return 7
	default:
		// The average-histogram family (2 words per bucket) and the
		// wavelets (index + coefficient, 2 words each).
		return 2
	}
}

// bucketBased reports whether the method partitions the domain into
// contiguous buckets — the methods CoarsenTo can lift.
func (m Method) bucketBased() bool {
	switch m {
	case Naive, WaveTopBB, WaveRangeOpt, WaveAA2D:
		return false
	}
	return true
}

// Options parameterizes Build. The fields mirror the facade's public
// Options (see rangeagg.Options for per-field semantics); Rounding is
// internal-only: it selects the answering procedure of
// average-representation results (the facade always builds unrounded).
type Options struct {
	Method      Method             `json:"method"`
	BudgetWords int                `json:"budget_words"`
	Reopt       bool               `json:"reopt,omitempty"`
	LocalSearch bool               `json:"local_search,omitempty"`
	Seed        int64              `json:"seed,omitempty"`
	Epsilon     float64            `json:"epsilon,omitempty"`
	RoundedX    int64              `json:"rounded_x,omitempty"`
	MaxStates   int                `json:"max_states,omitempty"`
	CoarsenTo   int                `json:"coarsen_to,omitempty"`
	Rounding    histogram.Rounding `json:"rounding,omitempty"`
}

// Units converts the word budget into the method's bucket (or
// coefficient) count under the paper's accounting, never below 1.
func (o Options) Units() int {
	u := o.BudgetWords / o.Method.wordsPerUnit()
	if u < 1 {
		u = 1
	}
	return u
}

// Build constructs a synopsis over the attribute-value distribution.
func Build(counts []int64, opt Options) (Estimator, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("build: empty distribution")
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("build: negative count %d at value %d", c, i)
		}
	}
	if int(opt.Method) < 0 || int(opt.Method) >= len(methodNames) {
		return nil, fmt.Errorf("build: unknown method %d", int(opt.Method))
	}
	if opt.Method != Naive && opt.BudgetWords <= 0 {
		return nil, fmt.Errorf("build: %s needs a positive storage budget, got %d words",
			opt.Method, opt.BudgetWords)
	}
	if opt.CoarsenTo > 0 && opt.CoarsenTo < len(counts) && opt.Method.bucketBased() {
		return buildCoarsened(counts, opt)
	}
	tab := prefix.NewTable(counts)
	est, err := construct(tab, counts, opt)
	if err != nil {
		return nil, err
	}
	return improve(tab, est, opt)
}

// construct runs the method's construction algorithm, without the
// improvement operators.
func construct(tab *prefix.Table, counts []int64, opt Options) (Estimator, error) {
	b := opt.Units()
	switch opt.Method {
	case Naive:
		return histogram.NewNaive(tab), nil
	case EquiWidth:
		return dp.EquiWidthHist(tab, b, opt.Rounding)
	case EquiDepth:
		return dp.EquiDepthHist(tab, b, opt.Rounding)
	case MaxDiff:
		return dp.MaxDiffHist(tab, b, opt.Rounding)
	case VOptimal:
		return dp.VOpt(tab, b, opt.Rounding)
	case PointOpt:
		return dp.PointOpt(tab, b, opt.Rounding)
	case A0:
		return dp.A0(tab, b, opt.Rounding)
	case SAP0:
		return dp.SAP0(tab, b)
	case SAP1:
		return dp.SAP1(tab, b)
	case SAP2:
		return dp.SAP2(tab, b)
	case PrefixOpt:
		return dp.PrefixOpt(tab, b, opt.Rounding)
	case OptA:
		// Exact where feasible, automatic OPT-A-ROUNDED fallback beyond —
		// the paper's §4 recommendation.
		res, err := core.OptAAuto(tab, b, opt.Seed, core.Config{
			MaxStates: opt.MaxStates, Mode: opt.Rounding,
		})
		if err != nil {
			return nil, err
		}
		return res.Hist, nil
	case OptARounded:
		x := opt.RoundedX
		if x <= 0 {
			x = core.XForEpsilon(tab, b, opt.Epsilon)
		}
		res, err := core.OptARounded(tab, b, x, opt.Seed, core.Config{
			MaxStates: opt.MaxStates, Mode: opt.Rounding,
		})
		if err != nil {
			return nil, err
		}
		return res.Hist, nil
	case WaveTopBB:
		return wavelet.NewData(counts, b)
	case WaveRangeOpt:
		return wavelet.NewRangeOpt(tab, b)
	case WaveAA2D:
		return wavelet.NewAA2D(tab, b)
	}
	return nil, fmt.Errorf("build: unknown method %d", int(opt.Method))
}

// improve applies the §4–5 improvement operators: boundary local search
// first (it re-derives true averages), then value re-optimization. Both
// are defined for the average representation only.
func improve(tab *prefix.Table, est Estimator, opt Options) (Estimator, error) {
	if !opt.LocalSearch && !opt.Reopt {
		return est, nil
	}
	avg, ok := est.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("build: local search / reopt apply to average-representation histograms, not %s", est.Name())
	}
	if opt.LocalSearch {
		improved, _, err := dp.ImproveBoundaries(tab, avg, 0)
		if err != nil {
			return nil, err
		}
		avg = improved
	}
	if opt.Reopt {
		re, err := reopt.Reopt(tab, avg)
		if err != nil {
			return nil, err
		}
		avg = re
	}
	return avg, nil
}

// buildCoarsened pre-aggregates the domain into opt.CoarsenTo equal-width
// cells, runs the bucket construction on the coarse distribution, and
// lifts the resulting boundaries back onto the full domain — how the
// quadratic DPs scale to domains of millions of values. Summaries are
// recomputed at full resolution for the lifted boundaries, so only the
// boundary placement is approximate.
func buildCoarsened(counts []int64, opt Options) (Estimator, error) {
	n, cells := len(counts), opt.CoarsenTo
	bound := func(i int) int { return i * n / cells } // cell i = [bound(i), bound(i+1))
	coarse := make([]int64, cells)
	for i := 0; i < cells; i++ {
		var s int64
		for j := bound(i); j < bound(i+1); j++ {
			s += counts[j]
		}
		coarse[i] = s
	}
	copt := opt
	copt.CoarsenTo = 0
	copt.LocalSearch = false // improvement operators run at full resolution
	copt.Reopt = false
	cEst, err := Build(coarse, copt)
	if err != nil {
		return nil, err
	}
	cStarts, cLabel, err := bucketStarts(cEst)
	if err != nil {
		return nil, err
	}
	starts := make([]int, len(cStarts))
	for i, s := range cStarts {
		starts[i] = bound(s)
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	tab := prefix.NewTable(counts)
	var est Estimator
	switch opt.Method {
	case SAP0:
		est, err = histogram.NewSAP0FromBounds(tab, bk, cLabel)
	case SAP1:
		est, err = histogram.NewSAP1FromBounds(tab, bk, cLabel)
	case SAP2:
		est, err = histogram.NewSAP2FromBounds(tab, bk, cLabel)
	default:
		est, err = histogram.NewAvgFromBounds(tab, bk, opt.Rounding, cLabel)
	}
	if err != nil {
		return nil, err
	}
	return improve(tab, est, opt)
}

// bucketStarts extracts the bucket boundaries and label of a histogram
// estimator.
func bucketStarts(est Estimator) ([]int, string, error) {
	switch h := est.(type) {
	case *histogram.Avg:
		return h.Buckets.Starts, h.Label, nil
	case *histogram.SAP0:
		return h.Buckets.Starts, h.Label, nil
	case *histogram.SAP1:
		return h.Buckets.Starts, h.Label, nil
	case *histogram.SAP2:
		return h.Buckets.Starts, h.Label, nil
	}
	return nil, "", fmt.Errorf("build: %s has no bucket boundaries", est.Name())
}
