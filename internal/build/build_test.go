package build

import (
	"math"
	"strings"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

func testCounts() []int64 {
	// A small skewed distribution: Zipf-ish head plus a mid-domain spike.
	c := make([]int64, 48)
	for i := range c {
		c[i] = int64(400 / (i + 1))
	}
	c[30] = 250
	return c
}

func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range Methods() {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if got != m {
			t.Errorf("ParseMethod(%s) = %v, want %v", m, got, m)
		}
	}
	if got, err := ParseMethod("opt-a"); err != nil || got != OptA {
		t.Errorf("case-insensitive parse: %v, %v", got, err)
	}
	if _, err := ParseMethod("NOPE"); err == nil {
		t.Error("NOPE accepted")
	}
	if Method(99).String() == "" {
		t.Error("out-of-range String empty")
	}
}

func TestUnitsAccounting(t *testing.T) {
	cases := []struct {
		m    Method
		w, u int
	}{
		{Naive, 0, 1},
		{OptA, 32, 16},    // 2 words per bucket
		{A0, 12, 6},       // 2 words per bucket
		{SAP0, 12, 4},     // 3 words per bucket
		{SAP1, 15, 3},     // 5 words per bucket
		{SAP2, 14, 2},     // 7 words per bucket
		{WaveTopBB, 8, 4}, // 2 words per coefficient
		{SAP1, 4, 1},      // never below one bucket
	}
	for _, c := range cases {
		if got := (Options{Method: c.m, BudgetWords: c.w}).Units(); got != c.u {
			t.Errorf("%s at %d words: units = %d, want %d", c.m, c.w, got, c.u)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{Method: A0, BudgetWords: 8}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := Build([]int64{1, -2}, Options{Method: A0, BudgetWords: 8}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Build([]int64{1, 2}, Options{Method: Method(99), BudgetWords: 8}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := Build([]int64{1, 2}, Options{Method: A0}); err == nil {
		t.Error("zero budget accepted for A0")
	}
	if _, err := Build([]int64{1, 2}, Options{Method: Naive}); err != nil {
		t.Error("Naive must not need a budget")
	}
	if _, err := Build([]int64{1, 2, 3}, Options{Method: SAP0, BudgetWords: 9, Reopt: true}); err == nil {
		t.Error("reopt accepted on a non-average representation")
	}
}

func TestBuildAllMethodsWithinBudget(t *testing.T) {
	counts := testCounts()
	tab := prefix.NewTable(counts)
	naive, err := Build(counts, Options{Method: Naive})
	if err != nil {
		t.Fatal(err)
	}
	base := sse.Of(tab, naive)
	for _, m := range Methods() {
		// Epsilon feeds the approximate families; exact methods ignore it.
		est, err := Build(counts, Options{Method: m, BudgetWords: 14, Seed: 1, Epsilon: 0.1})
		if err != nil {
			t.Errorf("%s: %v", m, err)
			continue
		}
		if est.N() != len(counts) {
			t.Errorf("%s: N = %d", m, est.N())
		}
		if est.StorageWords() > 14 {
			t.Errorf("%s: %d words over the 14-word budget", m, est.StorageWords())
		}
		got := sse.Of(tab, est)
		if math.IsNaN(got) || got < 0 || (m != Naive && got > base) {
			t.Errorf("%s: SSE %g vs NAIVE %g", m, got, base)
		}
	}
}

func TestImprovementOperators(t *testing.T) {
	counts := testCounts()
	tab := prefix.NewTable(counts)
	plain, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 12})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 12, LocalSearch: true})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 12, LocalSearch: true, Reopt: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(ls.Name(), "-ls") {
		t.Errorf("local search name = %q", ls.Name())
	}
	if !strings.HasSuffix(both.Name(), "-ls-reopt") {
		t.Errorf("combined name = %q", both.Name())
	}
	s0, s1, s2 := sse.Of(tab, plain), sse.Of(tab, ls), sse.Of(tab, both)
	if s1 > s0+1e-9 || s2 > s1+1e-9 {
		t.Errorf("operators increased SSE: plain %g, ls %g, ls+reopt %g", s0, s1, s2)
	}
}

func TestCoarsenToLiftsBoundaries(t *testing.T) {
	counts := make([]int64, 600)
	for i := range counts {
		counts[i] = int64((i % 37) * (i % 11))
	}
	tab := prefix.NewTable(counts)
	for _, m := range []Method{A0, SAP0, SAP1, EquiDepth} {
		est, err := Build(counts, Options{Method: m, BudgetWords: 20, CoarsenTo: 64})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if est.N() != len(counts) {
			t.Errorf("%s: N = %d, want %d", m, est.N(), len(counts))
		}
		if est.StorageWords() > 20 {
			t.Errorf("%s: %d words over budget", m, est.StorageWords())
		}
		// Boundaries must land on coarse-cell edges (multiples of 600/64
		// rounded by the cell map i·n/C).
		starts, _, err := bucketStarts(est)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		cellEdge := make(map[int]bool, 65)
		for i := 0; i <= 64; i++ {
			cellEdge[i*600/64] = true
		}
		for _, s := range starts {
			if !cellEdge[s] {
				t.Errorf("%s: boundary %d is not a coarse-cell edge", m, s)
			}
		}
		if got := sse.Of(tab, est); math.IsNaN(got) || got < 0 {
			t.Errorf("%s: SSE = %g", m, got)
		}
	}
	// CoarsenTo at or above the domain size is a no-op, not an error.
	if _, err := Build(testCounts(), Options{Method: A0, BudgetWords: 10, CoarsenTo: 4096}); err != nil {
		t.Errorf("oversized CoarsenTo: %v", err)
	}
}

func TestRoundingPlumbed(t *testing.T) {
	counts := testCounts()
	est, err := Build(counts, Options{Method: EquiWidth, BudgetWords: 8, Rounding: histogram.RoundCumulative})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := est.(*histogram.Avg)
	if !ok {
		t.Fatalf("EquiWidth built %T", est)
	}
	if h.Mode != histogram.RoundCumulative {
		t.Errorf("mode = %v", h.Mode)
	}
	for a := 0; a < len(counts); a += 7 {
		v := h.Estimate(a, len(counts)-1)
		if v != math.Trunc(v) {
			t.Errorf("rounded estimate [%d,%d] = %g not integral", a, len(counts)-1, v)
		}
	}
}
