package build

import (
	"fmt"
	"time"

	"rangeagg/internal/method"
)

// CanRebuild reports whether opt's method supports partial rebuilds
// (has a registry Rebuild hook).
func CanRebuild(opt Options) bool {
	d, err := method.Lookup(opt.Method)
	return err == nil && d.Rebuild != nil
}

// Rebuild refreshes prev after mutations confined to the value window
// [lo,hi], via the method's registry Rebuild hook: only the affected
// sub-structures are reconstructed from counts, the rest carry over.
// opt must be the options prev was built with.
func Rebuild(counts []int64, opt Options, prev Estimator, lo, hi int) (Estimator, method.RebuildStats, error) {
	d, err := method.Lookup(opt.Method)
	if err != nil {
		return nil, method.RebuildStats{}, fmt.Errorf("build: unknown method %d", int(opt.Method))
	}
	if d.Rebuild == nil {
		return nil, method.RebuildStats{}, fmt.Errorf("build: %s does not support partial rebuilds", d.Name)
	}
	defer phaseSeconds(d.Name, "rebuild").Since(time.Now())
	return d.Rebuild(counts, prev, lo, hi, opt.methodOpts())
}

// DefaultApproxCutover is the domain size at and above which engine and
// serve substitute a method's (1+ε)-approximate counterpart for its
// exact construction: below it the quadratic DPs finish in milliseconds
// and optimality is free; above it the near-linear builder is the only
// interactive option.
const DefaultApproxCutover = 32768

// WithApprox returns the options rebuilds should construct with for a
// domain of the given size: when the domain is at or above the cutover
// and the method has a registered approximate counterpart, the
// counterpart is substituted (with a defaulted Epsilon if the caller
// did not pin one). cutover 0 selects DefaultApproxCutover; a negative
// cutover disables substitution. Explicit coarsen-lift scaling
// (CoarsenTo) wins over substitution — the caller already chose a
// scaling path.
func WithApprox(opt Options, domain, cutover int) Options {
	if cutover == 0 {
		cutover = DefaultApproxCutover
	}
	if cutover < 0 || domain < cutover || opt.CoarsenTo > 0 {
		return opt
	}
	d, err := method.Lookup(opt.Method)
	if err != nil || d.ApproxCounterpart == 0 || opt.Method == d.ApproxCounterpart {
		return opt
	}
	opt.Method = d.ApproxCounterpart
	if opt.Epsilon <= 0 || opt.Epsilon >= 1 {
		opt.Epsilon = 0.1
	}
	return opt
}
