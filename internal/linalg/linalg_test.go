package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At(0,1) = %g, want 7", m.At(0, 1))
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Error("Clone shares storage")
	}
}

func TestNewMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for 0×3")
		}
	}()
	NewMatrix(0, 3)
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	tr := m.Transpose()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(0, 2) != 5 || tr.At(1, 0) != 2 {
		t.Fatalf("Transpose wrong: %+v", tr)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{5, 6})
	if y[0] != 17 || y[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", y)
	}
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	p := m.Mul(Identity(2))
	for i := range p.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatalf("M·I != M at %d", i)
		}
	}
}

func TestSolveLUKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLUNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal position requires a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestSolveLURejectsBadShapes(t *testing.T) {
	if _, err := SolveLU(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should fail")
	}
	if _, err := SolveLU(Identity(3), []float64{1}); err == nil {
		t.Error("mismatched rhs should fail")
	}
}

func TestCholeskyFactorReproduces(t *testing.T) {
	a := FromRows([][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce A.
	p := l.Mul(l.Transpose())
	for i := range a.Data {
		if math.Abs(p.Data[i]-a.Data[i]) > 1e-9 {
			t.Fatalf("L·Lᵀ != A at %d: %g vs %g", i, p.Data[i], a.Data[i])
		}
	}
}

func TestCholeskyRejects(t *testing.T) {
	if _, err := Cholesky(FromRows([][]float64{{1, 2}, {3, 4}})); !errors.Is(err, ErrNotSPD) {
		t.Error("asymmetric matrix should be rejected")
	}
	if _, err := Cholesky(FromRows([][]float64{{-1, 0}, {0, 1}})); !errors.Is(err, ErrNotSPD) {
		t.Error("indefinite matrix should be rejected")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
}

// randSPD builds Mᵀ·M + εI which is SPD with probability 1.
func randSPD(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	spd := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		spd.Add(i, i, 0.1)
	}
	return spd
}

func TestSolveCholeskyRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x, err := SolveCholesky(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := Residual(a, x, b); r > 1e-6 {
			t.Fatalf("trial %d: residual %g", trial, r)
		}
	}
}

func TestSolveSymmetricFallsBackOnPSD(t *testing.T) {
	// Rank-1 PSD matrix: Cholesky fails, LU fails, ridge succeeds with a
	// least-squares-flavoured answer. The point is: no error, tiny residual
	// in the range of A.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	b := []float64{2, 2} // in the range of A
	x, err := SolveSymmetric(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(a, x, b); r > 1e-3 {
		t.Fatalf("residual %g too large", r)
	}
}

func TestSolversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveLU(a, b)
		x2, err2 := SolveCholesky(a, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("solver errors: %v %v", err1, err2)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x1[i])) {
				t.Fatalf("solutions disagree at %d: %g vs %g", i, x1[i], x2[i])
			}
		}
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Error("Norm2 wrong")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

// Property: for random SPD systems, solving then multiplying recovers b.
func TestQuickSolveRecoversRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveSymmetric(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
