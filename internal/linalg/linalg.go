// Package linalg provides the small dense linear-algebra kernel needed by
// the re-optimization step of the paper (solving 2xQ + g = 0 for the
// optimal per-bucket summary values): dense matrices, LU decomposition with
// partial pivoting, and Cholesky decomposition for symmetric positive
// (semi-)definite systems. Everything is stdlib-only and written for the
// B×B problem sizes of histogram synopses (tens to hundreds of rows).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrNotSPD is returned when Cholesky is attempted on a matrix that is not
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (which must be equal length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs a non-empty rectangle")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d vs %d", m.Cols, b.Rows))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether the matrix is square and symmetric within
// tolerance tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SolveLU solves A·x = b by LU decomposition with partial pivoting. A is
// not modified. Returns ErrSingular when no unique solution exists.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveLU needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d does not match matrix size %d", len(b), n)
	}
	lu := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest absolute value in the column at or below the diagonal.
		pivot := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				v1, v2 := lu.At(col, j), lu.At(pivot, j)
				lu.Set(col, j, v2)
				lu.Set(pivot, j, v1)
			}
			x[col], x[pivot] = x[pivot], x[col]
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			if f == 0 {
				continue
			}
			lu.Set(r, col, f)
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution on the upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= lu.At(i, j) * x[j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x, nil
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive definite A. Returns ErrNotSPD otherwise.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-8 * matScale(a)) {
		return nil, ErrNotSPD
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// matScale returns a magnitude scale for tolerance decisions.
func matScale(a *Matrix) float64 {
	s := 1.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > s {
			s = av
		}
	}
	return s
}

// SolveCholesky solves A·x = b for symmetric positive definite A via
// Cholesky, falling back with ErrNotSPD so callers can retry with LU.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d does not match matrix size %d", len(b), n)
	}
	// Forward solve L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back solve Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSymmetric solves A·x = b preferring Cholesky and falling back to LU
// with a tiny ridge when A is only positive semi-definite (which happens
// for degenerate bucketings, e.g. buckets never intersected separately by
// any query class).
func SolveSymmetric(a *Matrix, b []float64) ([]float64, error) {
	if x, err := SolveCholesky(a, b); err == nil {
		return x, nil
	}
	if x, err := SolveLU(a, b); err == nil {
		return x, nil
	}
	// Ridge fallback: A + λI is SPD for PSD A and small λ > 0.
	ridge := a.Clone()
	lambda := 1e-9 * matScale(a)
	if lambda == 0 {
		lambda = 1e-9
	}
	for i := 0; i < ridge.Rows; i++ {
		ridge.Add(i, i, lambda)
	}
	return SolveCholesky(ridge, b)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Residual returns ‖A·x − b‖₂, a convenience for solver verification.
func Residual(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	var s float64
	for i := range ax {
		d := ax[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
