package method

// This file registers the wavelet family: TOPBB (largest Haar
// coefficients of the data, the classical heuristic of refs [11,17]),
// WAVE-RANGEOPT (range-optimal selection on the prefix-sum domain) and
// WAVE-AA2D (the paper's §3 two-dimensional construction over the virtual
// range-sum matrix). Coefficient synopses are not bucket partitions, so
// the coarsen-lift and merge paths do not apply; the one-dimensional
// members have exact O(log n)-per-update dynamic maintenance
// (internal/stream).

import (
	"rangeagg/internal/prefix"
	"rangeagg/internal/wavelet"
)

func init() {
	Register(Descriptor{
		ID:           WaveTopBB,
		Name:         "TOPBB",
		Family:       "wavelet",
		WordsPerUnit: 2,
		Caps:         PrefixDecomposable | Dynamic | Serializable | ErrorBounded,
		Build: func(_ *prefix.Table, counts []int64, opt Opts) (Estimator, error) {
			return wavelet.NewData(counts, opt.Units)
		},
		ErrorBound: errCumulative,
	})
	Register(Descriptor{
		ID:           WaveRangeOpt,
		Name:         "WAVE-RANGEOPT",
		Family:       "wavelet",
		WordsPerUnit: 2,
		Caps:         PrefixDecomposable | Dynamic | Serializable | ErrorBounded,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return wavelet.NewRangeOpt(tab, opt.Units)
		},
		ErrorBound: errCumulative,
	})
	Register(Descriptor{
		ID:           WaveAA2D,
		Name:         "WAVE-AA2D",
		Family:       "wavelet",
		WordsPerUnit: 2,
		Caps:         TwoD | Serializable,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return wavelet.NewAA2D(tab, opt.Units)
		},
	})
}
