package method_test

import (
	"bytes"
	"strings"
	"testing"

	"rangeagg/internal/codec"
	"rangeagg/internal/dataset"
	"rangeagg/internal/method"
	"rangeagg/internal/prefix"
)

// fakeEstimator satisfies the estimator surface but belongs to no
// registered wire family.
type fakeEstimator struct{}

func (fakeEstimator) Estimate(a, b int) float64 { return 0 }
func (fakeEstimator) N() int                    { return 1 }
func (fakeEstimator) StorageWords() int         { return 1 }
func (fakeEstimator) Name() string              { return "fake" }

// TestRegistryInvariants checks every registered descriptor end to end:
// the name round-trips through Parse, the storage accounting is
// positive, Build succeeds within a small budget on a Zipf distribution,
// and Serializable descriptors round-trip through the codec
// bit-identically.
func TestRegistryInvariants(t *testing.T) {
	if got := len(method.All()); got != method.Count() {
		t.Fatalf("registry holds %d descriptors, want %d (a slot is unregistered)", got, method.Count())
	}
	data, err := dataset.Zipf(dataset.ZipfConfig{N: 32, Alpha: 1.6, MaxCount: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := data.Counts
	tab := prefix.NewTable(counts)
	const budget = 14
	for _, d := range method.All() {
		id, err := method.Parse(d.ID.String())
		if err != nil {
			t.Errorf("%s: Parse(String()) failed: %v", d.Name, err)
			continue
		}
		if id != d.ID {
			t.Errorf("%s: Parse(String()) = %v, want %v", d.Name, id, d.ID)
		}
		if d.WordsPerUnit <= 0 {
			t.Errorf("%s: WordsPerUnit = %d", d.Name, d.WordsPerUnit)
		}
		units := budget / d.WordsPerUnit
		if units < 1 {
			units = 1
		}
		est, err := d.Build(tab, counts, method.Opts{Units: units, Seed: 1, Epsilon: 0.5})
		if err != nil {
			t.Errorf("%s: Build failed: %v", d.Name, err)
			continue
		}
		if est.N() != len(counts) {
			t.Errorf("%s: N = %d, want %d", d.Name, est.N(), len(counts))
		}
		if est.StorageWords() > budget {
			t.Errorf("%s: %d words over the %d-word budget", d.Name, est.StorageWords(), budget)
		}
		if !d.Caps.Has(method.Serializable) {
			if err := codec.Write(&bytes.Buffer{}, est); err == nil ||
				!strings.Contains(err.Error(), "not serializable") {
				t.Errorf("%s: non-serializable write = %v, want 'not serializable'", d.Name, err)
			}
			continue
		}
		var first bytes.Buffer
		if err := codec.Write(&first, est); err != nil {
			t.Errorf("%s: codec write: %v", d.Name, err)
			continue
		}
		back, err := codec.Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Errorf("%s: codec read: %v", d.Name, err)
			continue
		}
		var second bytes.Buffer
		if err := codec.Write(&second, back); err != nil {
			t.Errorf("%s: codec re-write: %v", d.Name, err)
			continue
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Errorf("%s: wire form is not bit-stable across a round trip", d.Name)
		}
	}
}

// TestRegistryHookAgreement pins the capability↔hook pairings Register
// enforces, and the documented behaviour at the registry's edges.
func TestRegistryHookAgreement(t *testing.T) {
	for _, d := range method.All() {
		if d.Caps.Has(method.Mergeable) != (d.Merge != nil) {
			t.Errorf("%s: Mergeable cap and Merge hook disagree", d.Name)
		}
		if d.Caps.Has(method.BucketBased) != (d.FromBounds != nil) {
			t.Errorf("%s: BucketBased cap and FromBounds hook disagree", d.Name)
		}
	}
	if _, err := method.Parse("NOPE"); err == nil {
		t.Error("Parse accepted an unknown name")
	}
	if _, err := method.Lookup(method.ID(99)); err == nil {
		t.Error("Lookup accepted an unknown ID")
	}
	if got := method.ID(99).String(); got != "Method(99)" {
		t.Errorf("unknown ID String() = %q", got)
	}
	// An estimator no family claims is rejected with the documented error.
	if err := codec.Write(&bytes.Buffer{}, fakeEstimator{}); err == nil ||
		!strings.Contains(err.Error(), "not serializable") {
		t.Errorf("foreign estimator write = %v, want 'not serializable'", err)
	}
	// Capability sets render deterministically.
	caps := method.Mergeable | method.Serializable
	if got := caps.String(); got != "mergeable,serializable" {
		t.Errorf("Caps.String() = %q", got)
	}
}
