package method

// This file registers the (1+ε)-approximate construction families
// (internal/approx): SAP0-APPROX, A0-APPROX and POINT-OPT-APPROX. Each is
// the near-linear counterpart of its exact family — same representation,
// same wire family, same storage accounting — differing only in how the
// bucket boundaries are found, so the average-form members keep the full
// average-family capability set and SAP0-APPROX mirrors SAP0. All three
// carry the Approximate cap: they require Opts.Epsilon ∈ (0,1) and the
// built synopsis records ε in its label, e.g. "SAP0-APPROX(0.1)".

import (
	"rangeagg/internal/approx"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

func init() {
	Register(Descriptor{
		ID:           SAP0Approx,
		Name:         "SAP0-APPROX",
		Family:       "histogram",
		WordsPerUnit: 3,
		Caps:         Serializable | BucketBased | Approximate | ErrorBounded,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return approx.SAP0(tab, opt.Units, opt.Epsilon)
		},
		FromBounds: func(tab *prefix.Table, bk *histogram.Bucketing, label string, _ Opts) (Estimator, error) {
			return histogram.NewSAP0FromBounds(tab, bk, label)
		},
		ErrorBound: errSAP,
	})
	Register(Descriptor{
		ID:            A0Approx,
		Name:          "A0-APPROX",
		Family:        "histogram",
		WordsPerUnit:  2,
		Caps:          avgCaps | Approximate,
		PaperRounding: histogram.RoundCumulative,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return approx.A0(tab, opt.Units, opt.Epsilon, opt.Rounding)
		},
		FromBounds: avgFromBounds,
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	})
	Register(Descriptor{
		ID:            PointOptApprox,
		Name:          "POINT-OPT-APPROX",
		Family:        "histogram",
		WordsPerUnit:  2,
		Caps:          avgCaps | Approximate,
		PaperRounding: histogram.RoundCumulative,
		Build: func(tab *prefix.Table, counts []int64, opt Opts) (Estimator, error) {
			return approx.PointOpt(tab, counts, opt.Units, opt.Epsilon, opt.Rounding)
		},
		FromBounds: avgFromBounds,
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	})
}
