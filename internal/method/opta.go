package method

// This file registers the paper's core contribution: OPT-A, the
// range-optimal classical histogram via the exact pseudo-polynomial
// dynamic program (Theorems 1-2, with automatic OPT-A-ROUNDED fallback
// when the instance is too large — the §4 recommendation), and
// OPT-A-ROUNDED, the (1+ε)-approximate variant (Theorem 4). Both produce
// average-representation histograms and inherit the family's full
// capability set; the PseudoPolynomial flag tells the advisor to skip
// them on large instances.

import (
	"rangeagg/internal/core"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

func init() {
	Register(Descriptor{
		ID:            OptA,
		Name:          "OPT-A",
		Family:        "histogram",
		WordsPerUnit:  2,
		Caps:          avgCaps | PseudoPolynomial,
		PaperRounding: histogram.RoundCumulative,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			res, err := core.OptAAuto(tab, opt.Units, opt.Seed, core.Config{
				MaxStates: opt.MaxStates, Mode: opt.Rounding,
			})
			if err != nil {
				return nil, err
			}
			return res.Hist, nil
		},
		FromBounds: avgFromBounds,
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	})
	Register(Descriptor{
		ID:            OptARounded,
		Name:          "OPT-A-ROUNDED",
		Family:        "histogram",
		WordsPerUnit:  2,
		Caps:          avgCaps | PseudoPolynomial,
		PaperRounding: histogram.RoundCumulative,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			x := opt.RoundedX
			if x <= 0 {
				x = core.XForEpsilon(tab, opt.Units, opt.Epsilon)
			}
			res, err := core.OptARounded(tab, opt.Units, x, opt.Seed, core.Config{
				MaxStates: opt.MaxStates, Mode: opt.Rounding,
			})
			if err != nil {
				return nil, err
			}
			return res.Hist, nil
		},
		FromBounds: avgFromBounds,
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	})
}
