// Package method is the synopsis-method registry: the single place that
// knows what each of the system's synopsis families *is*. Every family
// self-registers one Descriptor carrying its paper name, storage
// accounting, construction algorithm, wire family, and capability flags;
// every other layer — build, codec, engine, serve, advisor, experiments,
// the public facade — drives off the registry instead of keeping its own
// per-method switch. Adding a synopsis family is one descriptor file in
// this package; no other layer changes.
package method

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// Estimator answers approximate range-sum queries; it is the method-layer
// counterpart of the facade's Synopsis interface.
type Estimator interface {
	Estimate(a, b int) float64
	N() int
	StorageWords() int
	Name() string
}

// ID identifies a registered synopsis method. The numbering is the
// public facade's enum (rangeagg.Method) and part of the persisted
// engine-store format; never reorder, only append.
type ID int

// The registered methods, named as in the paper.
const (
	Naive ID = iota
	EquiWidth
	EquiDepth
	MaxDiff
	VOptimal
	PointOpt
	A0
	SAP0
	SAP1
	OptA
	OptARounded
	WaveTopBB
	WaveRangeOpt
	WaveAA2D
	PrefixOpt
	SAP2
	SAP0Approx
	A0Approx
	PointOptApprox
	Segmented

	numIDs // sentinel: count of registered methods
)

// Caps is a bit set of method capabilities. Layers discover what a method
// can do from these flags instead of hard-coding method lists.
type Caps uint32

const (
	// Mergeable methods support exact shard merging: two synopses built
	// over the same domain from disjoint record sets combine (via the
	// descriptor's Merge hook) into one that answers every range with
	// exactly the sum of the two inputs' answers. Requires unrounded
	// answering at merge time (the facade's default).
	Mergeable Caps = 1 << iota
	// PrefixDecomposable methods expose a cumulative estimate Ĉ[t],
	// enabling the O(n) prefix-error SSE evaluation (internal/sse).
	PrefixDecomposable
	// Reoptimizable methods produce average-representation histograms the
	// §5 value re-optimization and boundary local search apply to.
	Reoptimizable
	// Dynamic methods have an O(log n)-per-update maintenance path
	// (internal/stream) whose snapshots are identical to rebuilds.
	Dynamic
	// TwoD methods summarize the two-dimensional virtual range-sum matrix
	// (the paper's §3 construction).
	TwoD
	// Serializable methods round-trip through the wire codec
	// (internal/codec) bit-identically.
	Serializable
	// BucketBased methods partition the domain into contiguous buckets;
	// the coarsen-lift scaling path (build.Options.CoarsenTo) applies, via
	// the descriptor's FromBounds hook.
	BucketBased
	// PseudoPolynomial methods run the exact pseudo-polynomial OPT-A
	// dynamic program, whose cost grows with the data values; the advisor
	// skips them on large instances.
	PseudoPolynomial
	// Approximate methods trade a (1+ε) factor on the construction
	// objective for near-linear build time (internal/approx); they require
	// Opts.Epsilon ∈ (0,1) and the advisor sweeps ε as a knob.
	Approximate
	// ErrorBounded methods build a per-range error model at construction
	// time (via the descriptor's ErrorBound hook), so every approximate
	// answer can carry a bound on |exact − estimate| — the substrate of
	// the error-budget planner (internal/plan).
	ErrorBounded
)

// capNames orders the flag names for List/String.
var capNames = []struct {
	flag Caps
	name string
}{
	{Mergeable, "mergeable"},
	{PrefixDecomposable, "prefix-decomposable"},
	{Reoptimizable, "reoptimizable"},
	{Dynamic, "dynamic"},
	{TwoD, "2d"},
	{Serializable, "serializable"},
	{BucketBased, "bucket-based"},
	{PseudoPolynomial, "pseudo-polynomial"},
	{Approximate, "approximate"},
	{ErrorBounded, "error-bounded"},
}

// Has reports whether every capability in want is present.
func (c Caps) Has(want Caps) bool { return c&want == want }

// List returns the set capability names, in a fixed order.
func (c Caps) List() []string {
	var out []string
	for _, cn := range capNames {
		if c.Has(cn.flag) {
			out = append(out, cn.name)
		}
	}
	return out
}

// String renders the capability set as a comma-joined list.
func (c Caps) String() string { return strings.Join(c.List(), ",") }

// Opts carries the per-build parameters a construction algorithm may use.
// Budget accounting happens in the caller (internal/build): Units is
// already the method's bucket or coefficient count.
type Opts struct {
	// Units is the bucket/coefficient count derived from the word budget.
	Units int
	// Rounding selects the answering procedure of average-representation
	// results.
	Rounding histogram.Rounding
	// Seed drives randomized steps (OPT-A-ROUNDED's data rounding).
	Seed int64
	// Epsilon is the approximation quality target: the (1+ε) construction
	// bound for Approximate methods (required, ∈ (0,1)), and OPT-A-ROUNDED's
	// rounding quality when RoundedX is 0.
	Epsilon float64
	// RoundedX overrides OPT-A-ROUNDED's rounding parameter directly.
	RoundedX int64
	// MaxStates bounds the exact OPT-A dynamic program's memory.
	MaxStates int
	// Segments is the requested segment count for the SEGMENTED family;
	// 0 selects the default.
	Segments int
	// SegmentPolicy names the SEGMENTED partition policy ("equi-width",
	// "weight-balanced"; empty = default).
	SegmentPolicy string
	// BudgetWords is the raw word budget, for methods that allocate it
	// internally (SEGMENTED splits it between segment starts and
	// per-segment buckets). 0 means derive it from Units.
	BudgetWords int
}

// RebuildStats reports how much of a partial rebuild was real work.
type RebuildStats struct {
	// Rebuilt counts sub-structures reconstructed from current data.
	Rebuilt int
	// Reused counts sub-structures carried over verbatim.
	Reused int
}

// Descriptor is everything the system knows about one synopsis method.
type Descriptor struct {
	// ID is the method's registry slot (= the public enum value).
	ID ID
	// Name is the paper name, e.g. "OPT-A".
	Name string
	// Family is the wire-envelope family tag the method serializes under.
	Family string
	// WordsPerUnit is the paper's storage accounting: words per bucket for
	// histograms, per kept coefficient for wavelets.
	WordsPerUnit int
	// BudgetFree marks methods with a fixed O(1) footprint that ignore the
	// storage budget (NAIVE).
	BudgetFree bool
	// Caps are the method's capability flags.
	Caps Caps
	// PaperRounding is the answering procedure the paper defines for the
	// method (DESIGN.md §6b): integral cumulative rounding for the
	// average-histogram family, real-valued for SAP and the wavelets. The
	// experiment harness builds with it; the facade builds unrounded.
	PaperRounding histogram.Rounding
	// Build runs the construction algorithm. tab is the prefix-moment
	// table of counts; both views are provided so data-domain methods need
	// not rebuild the raw series.
	Build func(tab *prefix.Table, counts []int64, opt Opts) (Estimator, error)
	// FromBounds reconstructs the method's representation at full
	// resolution over an explicit bucketing (the coarsen-lift path).
	// Required exactly when Caps has BucketBased.
	FromBounds func(tab *prefix.Table, bk *histogram.Bucketing, label string, opt Opts) (Estimator, error)
	// Merge combines two same-representation estimators over the same
	// domain into one answering with the exact sum (shard merging).
	// Required exactly when Caps has Mergeable.
	Merge func(a, b Estimator) (Estimator, error)
	// ErrorBound builds the per-range error model of a freshly built
	// estimator against the data it summarized (tab must be the
	// prefix-moment table of that same data). Required exactly when Caps
	// has ErrorBounded.
	ErrorBound func(tab *prefix.Table, est Estimator) (ErrorModel, error)
	// Rebuild refreshes prev after mutations confined to the value
	// window [lo,hi], reconstructing only the affected sub-structures
	// from counts and carrying the rest over. Optional (nil = the method
	// only rebuilds wholesale); engine and serve nil-check it rather
	// than gate on a capability flag.
	Rebuild func(counts []int64, prev Estimator, lo, hi int, opt Opts) (Estimator, RebuildStats, error)
	// ApproxCounterpart names the (1+ε)-approximate method that builds
	// the same representation near-linearly, if one is registered; the
	// zero value means none. Engine and serve use it to substitute the
	// approximate construction above a domain-size cutover.
	ApproxCounterpart ID
}

// registry is fixed-size and filled by the descriptor files' init
// functions; the invariant test asserts every slot is taken.
var (
	registry [numIDs]*Descriptor
	byName   = make(map[string]ID, numIDs)
)

// Register installs a descriptor; it panics on invalid or duplicate
// registrations (a programming error caught at init time).
func Register(d Descriptor) {
	if d.ID < 0 || d.ID >= numIDs {
		panic(fmt.Sprintf("method: descriptor %q has ID %d outside [0,%d)", d.Name, d.ID, numIDs))
	}
	if registry[d.ID] != nil {
		panic(fmt.Sprintf("method: duplicate registration for ID %d (%q vs %q)", d.ID, d.Name, registry[d.ID].Name))
	}
	if d.Name == "" || d.WordsPerUnit <= 0 || d.Build == nil {
		panic(fmt.Sprintf("method: descriptor %q (ID %d) is incomplete", d.Name, d.ID))
	}
	if d.Caps.Has(BucketBased) != (d.FromBounds != nil) {
		panic(fmt.Sprintf("method: descriptor %q: BucketBased cap and FromBounds hook must agree", d.Name))
	}
	if d.Caps.Has(Mergeable) != (d.Merge != nil) {
		panic(fmt.Sprintf("method: descriptor %q: Mergeable cap and Merge hook must agree", d.Name))
	}
	if d.Caps.Has(ErrorBounded) != (d.ErrorBound != nil) {
		panic(fmt.Sprintf("method: descriptor %q: ErrorBounded cap and ErrorBound hook must agree", d.Name))
	}
	key := strings.ToUpper(d.Name)
	if _, ok := byName[key]; ok {
		panic(fmt.Sprintf("method: duplicate name %q", d.Name))
	}
	dd := d
	registry[d.ID] = &dd
	byName[key] = d.ID
}

// Lookup resolves a method ID to its descriptor.
func Lookup(id ID) (Descriptor, error) {
	if id < 0 || id >= numIDs || registry[id] == nil {
		return Descriptor{}, fmt.Errorf("method: unknown method %d", int(id))
	}
	return *registry[id], nil
}

// MustLookup resolves a method ID known to be registered (e.g. one taken
// from a built synopsis); it panics on an unknown ID.
func MustLookup(id ID) Descriptor {
	d, err := Lookup(id)
	if err != nil {
		panic(err)
	}
	return d
}

// Parse resolves a method from its paper name (case-insensitive).
func Parse(s string) (ID, error) {
	if id, ok := byName[strings.ToUpper(s)]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("method: unknown method %q", s)
}

// Count returns the number of registered methods.
func Count() int { return int(numIDs) }

// IDs lists every registered method in enum order.
func IDs() []ID {
	out := make([]ID, numIDs)
	for i := range out {
		out[i] = ID(i)
	}
	return out
}

// All returns every registered descriptor in enum order.
func All() []Descriptor {
	out := make([]Descriptor, 0, numIDs)
	for i := ID(0); i < numIDs; i++ {
		if registry[i] != nil {
			out = append(out, *registry[i])
		}
	}
	return out
}

// String returns the method's paper name.
func (id ID) String() string {
	if id < 0 || id >= numIDs || registry[id] == nil {
		return fmt.Sprintf("Method(%d)", int(id))
	}
	return registry[id].Name
}

// FamilyCodec serializes one wire family of synopses. The codec envelope
// dispatches through these instead of a type switch: Write probes
// CanEncode in Rank order, Read resolves the envelope's family tag.
type FamilyCodec struct {
	// Family is the wire tag, e.g. "histogram".
	Family string
	// Rank orders CanEncode probing. The wavelet family must probe before
	// the histogram family: wavelet synopses satisfy the histogram
	// estimator interface too.
	Rank int
	// CanEncode reports whether the estimator belongs to this family.
	CanEncode func(Estimator) bool
	// Encode writes the family's payload (without the envelope).
	Encode func(io.Writer, Estimator) error
	// Decode reads the family's payload (without the envelope).
	Decode func(io.Reader) (Estimator, error)
}

var families []FamilyCodec

// RegisterFamily installs a family codec; it panics on duplicates.
func RegisterFamily(fc FamilyCodec) {
	if fc.Family == "" || fc.CanEncode == nil || fc.Encode == nil || fc.Decode == nil {
		panic(fmt.Sprintf("method: family codec %q is incomplete", fc.Family))
	}
	for _, f := range families {
		if f.Family == fc.Family {
			panic(fmt.Sprintf("method: duplicate family codec %q", fc.Family))
		}
	}
	families = append(families, fc)
	sort.SliceStable(families, func(i, j int) bool { return families[i].Rank < families[j].Rank })
}

// Families returns the registered family codecs in probe (Rank) order.
func Families() []FamilyCodec {
	return append([]FamilyCodec(nil), families...)
}

// FamilyByName resolves a family codec from its wire tag.
func FamilyByName(name string) (FamilyCodec, bool) {
	for _, f := range families {
		if f.Family == name {
			return f, true
		}
	}
	return FamilyCodec{}, false
}
