package method

// This file registers the average-representation histogram family: NAIVE,
// the classical baselines (equi-width, equi-depth, maxdiff, V-optimal),
// and the paper's range-targeted constructions POINT-OPT, A0 and
// PREFIX-OPT. All store 2 words per bucket (1 for NAIVE), answer with the
// paper's equation (1), and share the average-representation
// capabilities: exact shard merging, §5 re-optimization, prefix
// decomposition, and the coarsen-lift path.

import (
	"fmt"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// avgCaps are the capabilities every average-representation histogram
// shares.
const avgCaps = Mergeable | PrefixDecomposable | Reoptimizable | Serializable | BucketBased | ErrorBounded

// mergeAvg is the Merge hook of the average family: exact shard merging
// via boundary-union refinement (histogram.MergeAvg).
func mergeAvg(a, b Estimator) (Estimator, error) {
	ha, ok := a.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("method: merge applies to average-representation histograms, not %s", a.Name())
	}
	hb, ok := b.(*histogram.Avg)
	if !ok {
		return nil, fmt.Errorf("method: merge applies to average-representation histograms, not %s", b.Name())
	}
	return histogram.MergeAvg(ha, hb)
}

// avgFromBounds is the FromBounds hook of the average family: recompute
// true bucket averages at full resolution over lifted boundaries.
func avgFromBounds(tab *prefix.Table, bk *histogram.Bucketing, label string, opt Opts) (Estimator, error) {
	return histogram.NewAvgFromBounds(tab, bk, opt.Rounding, label)
}

// avgHistogram assembles a descriptor for one member of the average
// family, differing only in name and boundary-construction algorithm.
func avgHistogram(id ID, name string, construct func(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error)) Descriptor {
	return Descriptor{
		ID:            id,
		Name:          name,
		Family:        "histogram",
		WordsPerUnit:  2,
		Caps:          avgCaps,
		PaperRounding: histogram.RoundCumulative,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return construct(tab, opt.Units, opt.Rounding)
		},
		FromBounds: avgFromBounds,
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	}
}

func init() {
	Register(Descriptor{
		ID:           Naive,
		Name:         "NAIVE",
		Family:       "histogram",
		WordsPerUnit: 1,
		BudgetFree:   true,
		// NAIVE is a single-bucket average histogram, so it merges and
		// re-optimizes like the rest of the family; it is excluded from
		// the coarsen-lift path (nothing to lift).
		Caps:          Mergeable | PrefixDecomposable | Reoptimizable | Serializable | ErrorBounded,
		PaperRounding: histogram.RoundNone,
		Build: func(tab *prefix.Table, _ []int64, _ Opts) (Estimator, error) {
			return histogram.NewNaive(tab), nil
		},
		Merge:      mergeAvg,
		ErrorBound: errCumulative,
	})
	Register(avgHistogram(EquiWidth, "EQUI-WIDTH", dp.EquiWidthHist))
	Register(avgHistogram(EquiDepth, "EQUI-DEPTH", dp.EquiDepthHist))
	Register(avgHistogram(MaxDiff, "MAXDIFF", dp.MaxDiffHist))
	Register(avgHistogram(VOptimal, "V-OPT", dp.VOpt))
	dPointOpt := avgHistogram(PointOpt, "POINT-OPT", dp.PointOpt)
	dPointOpt.ApproxCounterpart = PointOptApprox
	Register(dPointOpt)
	dA0 := avgHistogram(A0, "A0", dp.A0)
	dA0.ApproxCounterpart = A0Approx
	Register(dA0)
	Register(avgHistogram(PrefixOpt, "PREFIX-OPT", dp.PrefixOpt))
}
