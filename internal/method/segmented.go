package method

import (
	"encoding/json"
	"fmt"
	"io"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/segment"
)

// This file registers SEGMENTED: the composed synopsis that partitions
// the domain into contiguous segments, summarizes each independently,
// and distributes one global word budget across segments by marginal
// gain (internal/segment). It is a first-class family — mergeable,
// error-bounded, serializable — so the codec, WAL, engine, and serve
// layers pick it up with zero new dispatch. It is additionally the only
// registered method with a Rebuild hook: mutations confined to a value
// window reconstruct only the owning segments.

// segmentedOpts maps registry Opts onto segment build options. The word
// budget comes from BudgetWords when the caller sets it, otherwise from
// the standard Units accounting (WordsPerUnit 2, matching the inner
// average-histogram representation).
func segmentedOpts(opt Opts) (segment.BuildOpts, error) {
	pol, err := segment.ParsePolicy(opt.SegmentPolicy)
	if err != nil {
		return segment.BuildOpts{}, err
	}
	w := opt.BudgetWords
	if w <= 0 {
		w = 2 * opt.Units
	}
	return segment.BuildOpts{
		K:           opt.Segments,
		Policy:      pol,
		BudgetWords: w,
		Epsilon:     opt.Epsilon,
	}, nil
}

func asSegmented(e Estimator) (*segment.Segmented, error) {
	s, ok := e.(*segment.Segmented)
	if !ok {
		return nil, fmt.Errorf("method: %s (%T) is not a segmented synopsis", e.Name(), e)
	}
	return s, nil
}

func init() {
	Register(Descriptor{
		ID:           Segmented,
		Name:         "SEGMENTED",
		Family:       "segmented",
		WordsPerUnit: 2,
		// Not BucketBased: the coarsen-lift path would collapse the
		// per-segment structure; segmented scaling is the per-segment
		// approximate builder instead. Not Reoptimizable: the §5 passes
		// operate on one flat bucketing.
		Caps:          Mergeable | PrefixDecomposable | Serializable | ErrorBounded,
		PaperRounding: histogram.RoundNone,
		Build: func(tab *prefix.Table, counts []int64, opt Opts) (Estimator, error) {
			o, err := segmentedOpts(opt)
			if err != nil {
				return nil, err
			}
			return segment.Build(tab, counts, o)
		},
		Merge: func(a, b Estimator) (Estimator, error) {
			sa, err := asSegmented(a)
			if err != nil {
				return nil, err
			}
			sb, err := asSegmented(b)
			if err != nil {
				return nil, err
			}
			return segment.Merge(sa, sb)
		},
		ErrorBound: func(tab *prefix.Table, est Estimator) (ErrorModel, error) {
			s, err := asSegmented(est)
			if err != nil {
				return nil, err
			}
			return segment.NewErrorModel(tab, s), nil
		},
		Rebuild: func(counts []int64, prev Estimator, lo, hi int, opt Opts) (Estimator, RebuildStats, error) {
			s, err := asSegmented(prev)
			if err != nil {
				return nil, RebuildStats{}, err
			}
			next, st, err := segment.Rebuild(counts, s, lo, hi, opt.Epsilon)
			return next, RebuildStats{Rebuilt: st.Rebuilt, Reused: st.Reused}, err
		},
	})
}

// segmentedWire is the JSON payload of the segmented family: the
// partition plus each segment's histogram in its own serialization
// form.
type segmentedWire struct {
	Label  string               `json:"label"`
	N      int                  `json:"n"`
	Starts []int                `json:"starts"`
	Segs   []*histogram.Encoded `json:"segs"`
}

func init() {
	RegisterFamily(FamilyCodec{
		Family: "segmented",
		// Probe before the wavelet and histogram families: a Segmented
		// synopsis satisfies the histogram estimator interface, so the
		// histogram family would otherwise claim (and fail to encode) it.
		Rank: -1,
		CanEncode: func(e Estimator) bool {
			_, ok := e.(*segment.Segmented)
			return ok
		},
		Encode: func(w io.Writer, e Estimator) error {
			s, err := asSegmented(e)
			if err != nil {
				return err
			}
			wire := segmentedWire{Label: s.Label, N: s.Domain, Starts: s.Starts,
				Segs: make([]*histogram.Encoded, len(s.Segs))}
			for i, seg := range s.Segs {
				enc, err := histogram.Encode(seg)
				if err != nil {
					return fmt.Errorf("method: encoding segment %d: %w", i, err)
				}
				wire.Segs[i] = enc
			}
			return json.NewEncoder(w).Encode(&wire)
		},
		Decode: func(r io.Reader) (Estimator, error) {
			var wire segmentedWire
			if err := json.NewDecoder(r).Decode(&wire); err != nil {
				return nil, fmt.Errorf("method: decoding segmented payload: %w", err)
			}
			segs := make([]*histogram.Avg, len(wire.Segs))
			for i, enc := range wire.Segs {
				if enc == nil {
					return nil, fmt.Errorf("method: segmented payload segment %d is empty", i)
				}
				est, err := histogram.Decode(enc)
				if err != nil {
					return nil, fmt.Errorf("method: decoding segment %d: %w", i, err)
				}
				avg, ok := est.(*histogram.Avg)
				if !ok {
					return nil, fmt.Errorf("method: segmented payload segment %d is %T, want an average histogram", i, est)
				}
				segs[i] = avg
			}
			return segment.New(wire.N, wire.Starts, segs, wire.Label)
		},
	})
}
