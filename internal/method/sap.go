package method

// This file registers the paper's §2.2 higher-order histogram family:
// SAP0 (suffix/average/prefix, 3 words per bucket, Theorem 7), SAP1
// (linear suffix/prefix models, 5 words, Theorem 8) and SAP2 (quadratic
// models, 7 words). They answer with real values ("not necessarily an
// integer", §2.2.1), so no rounding mode applies; the representations are
// bucket-based but not average-form, so merging and re-optimization do
// not apply.

import (
	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

func init() {
	Register(Descriptor{
		ID:           SAP0,
		Name:         "SAP0",
		Family:       "histogram",
		WordsPerUnit: 3,
		Caps:         Serializable | BucketBased | ErrorBounded,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return dp.SAP0(tab, opt.Units)
		},
		FromBounds: func(tab *prefix.Table, bk *histogram.Bucketing, label string, _ Opts) (Estimator, error) {
			return histogram.NewSAP0FromBounds(tab, bk, label)
		},
		ErrorBound:        errSAP,
		ApproxCounterpart: SAP0Approx,
	})
	Register(Descriptor{
		ID:           SAP1,
		Name:         "SAP1",
		Family:       "histogram",
		WordsPerUnit: 5,
		Caps:         Serializable | BucketBased | ErrorBounded,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return dp.SAP1(tab, opt.Units)
		},
		FromBounds: func(tab *prefix.Table, bk *histogram.Bucketing, label string, _ Opts) (Estimator, error) {
			return histogram.NewSAP1FromBounds(tab, bk, label)
		},
		ErrorBound: errSAP,
	})
	Register(Descriptor{
		ID:           SAP2,
		Name:         "SAP2",
		Family:       "histogram",
		WordsPerUnit: 7,
		Caps:         Serializable | BucketBased | ErrorBounded,
		Build: func(tab *prefix.Table, _ []int64, opt Opts) (Estimator, error) {
			return dp.SAP2(tab, opt.Units)
		},
		FromBounds: func(tab *prefix.Table, bk *histogram.Bucketing, label string, _ Opts) (Estimator, error) {
			return histogram.NewSAP2FromBounds(tab, bk, label)
		},
		ErrorBound: errSAP,
	})
}
