package method_test

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/prefix"
)

func zipfish(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(float64(200) / float64(1+rng.Intn(40)))
	}
	counts[rng.Intn(n)] += 500
	return counts
}

// TestErrorBoundCapAgreement asserts the cap↔hook pairing the registry
// enforces, and that every one-dimensional family is error-bounded (only
// the 2-D wavelet has no per-range model).
func TestErrorBoundCapAgreement(t *testing.T) {
	for _, d := range method.All() {
		if d.Caps.Has(method.ErrorBounded) != (d.ErrorBound != nil) {
			t.Errorf("%s: ErrorBounded cap and ErrorBound hook disagree", d.Name)
		}
		if d.ID == method.WaveAA2D {
			if d.Caps.Has(method.ErrorBounded) {
				t.Errorf("%s: 2-D wavelet should not claim a per-range error model", d.Name)
			}
			continue
		}
		if !d.Caps.Has(method.ErrorBounded) {
			t.Errorf("%s: every 1-D family should be error-bounded", d.Name)
		}
	}
}

// TestErrorModelCoversAllRanges builds every error-bounded family on a
// skewed distribution and checks, for every range of the domain, that the
// model's bound covers the true residual — the same contract the oracle
// suite grades at larger sizes — and that MaxBound dominates every bound.
func TestErrorModelCoversAllRanges(t *testing.T) {
	const n = 96
	counts := zipfish(n, 5)
	tab := prefix.NewTable(counts)
	for _, d := range method.All() {
		if !d.Caps.Has(method.ErrorBounded) {
			continue
		}
		opt := build.Options{Method: d.ID, BudgetWords: 18, Seed: 1}
		if d.Caps.Has(method.Approximate) {
			opt.Epsilon = 0.1
		}
		est, err := build.Build(counts, opt)
		if err != nil {
			t.Fatalf("%s: build: %v", d.Name, err)
		}
		em, err := d.ErrorBound(tab, est)
		if err != nil {
			t.Fatalf("%s: error model: %v", d.Name, err)
		}
		if !em.Rigorous() {
			t.Errorf("%s: model should be rigorous", d.Name)
		}
		maxB := em.MaxBound()
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				bound := em.Bound(a, b)
				resid := math.Abs(tab.SumF(a, b) - est.Estimate(a, b))
				if bound < resid {
					t.Fatalf("%s: range [%d,%d]: bound %g < residual %g", d.Name, a, b, bound, resid)
				}
				if bound > maxB+1e-12*(1+maxB) {
					t.Fatalf("%s: range [%d,%d]: bound %g exceeds MaxBound %g", d.Name, a, b, bound, maxB)
				}
			}
		}
	}
}

// TestErrorModelRoundingModes checks the cumulative model follows the
// average histogram's actual answering procedure under each rounding mode.
func TestErrorModelRoundingModes(t *testing.T) {
	const n = 64
	counts := zipfish(n, 9)
	tab := prefix.NewTable(counts)
	d := method.MustLookup(method.VOptimal)
	for _, mode := range []histogram.Rounding{histogram.RoundNone, histogram.RoundAnswer, histogram.RoundCumulative} {
		est, err := build.Build(counts, build.Options{Method: method.VOptimal, BudgetWords: 12,
			Rounding: mode})
		if err != nil {
			t.Fatal(err)
		}
		em, err := d.ErrorBound(tab, est)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < n; a += 3 {
			for b := a; b < n; b += 5 {
				bound := em.Bound(a, b)
				resid := math.Abs(tab.SumF(a, b) - est.Estimate(a, b))
				if bound < resid {
					t.Fatalf("mode %d: range [%d,%d]: bound %g < residual %g", mode, a, b, bound, resid)
				}
			}
		}
	}
}

// TestErrorBoundForMatchesHooks checks the representation-dispatched
// entry point used by deserialized synopses agrees with the registry
// hooks.
func TestErrorBoundForMatchesHooks(t *testing.T) {
	const n = 80
	counts := zipfish(n, 3)
	tab := prefix.NewTable(counts)
	for _, id := range []method.ID{method.SAP1, method.A0, method.WaveRangeOpt} {
		est, err := build.Build(counts, build.Options{Method: id, BudgetWords: 20})
		if err != nil {
			t.Fatal(err)
		}
		viaHook, err := method.MustLookup(id).ErrorBound(tab, est)
		if err != nil {
			t.Fatal(err)
		}
		viaDispatch, err := method.ErrorBoundFor(tab, est)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range [][2]int{{0, n - 1}, {3, 3}, {5, 40}, {n / 2, n - 2}} {
			if g, w := viaDispatch.Bound(q[0], q[1]), viaHook.Bound(q[0], q[1]); g != w {
				t.Errorf("%s [%d,%d]: dispatch bound %g, hook bound %g", id, q[0], q[1], g, w)
			}
		}
	}
}
