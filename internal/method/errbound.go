package method

// This file implements the per-range error models behind the ErrorBounded
// capability. Every model is built once, right after construction, against
// the exact data the synopsis summarized, and answers Bound(a,b) — an upper
// bound on |exact − Estimate(a,b)| — in O(log B).
//
// Two rigorous derivations cover every one-dimensional family (DESIGN.md
// §6h):
//
//   - Prefix-decomposable families (the average-histogram family and both
//     1-D wavelets): the prefix-error identity err(a,b) = e[b+1] − e[a]
//     with e[t] = P[t] − Ĉ[t] reduces every range error to a difference of
//     two pointwise cumulative errors. The model quantizes [0,n] into
//     cells and stores the min/max of e per cell; the interval
//     [min_e(cell(b+1)) − max_e(cell(a)), max_e(cell(b+1)) − min_e(cell(a))]
//     contains the true error, so its larger endpoint magnitude bounds it.
//
//   - SAP families (SAP0/1/2 and SAP0-APPROX): inter-bucket answers
//     decompose as suffixModel(a) + middle + prefixModel(b), so with
//     F[a] = err(a,n−1), G[b] = err(0,b) and T = err(0,n−1) the identity
//     err(a,b) = F[a] + G[b] − T holds exactly for every pair of distinct
//     buckets (the middle δ-terms telescope). Intra-bucket answers are
//     width·avg, prefix-decomposable within the bucket, so a per-bucket
//     anchored cumulative error w covers them. The model stores per-cell
//     min/max of F, G and w.
//
// Both models add a tiny slack proportional to the magnitudes involved so
// floating-point reassociation cannot push a reported bound below an
// observed residual; the oracle error-contract suite asserts coverage on
// 100% of grid queries with zero test-side tolerance.

import (
	"fmt"
	"math"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/segment"
)

// ErrorModel bounds a synopsis's per-range error against the data it was
// built from. Bounds refer to that build-time data; staleness accounting
// is the caller's concern (engine versions, serve snapshots).
type ErrorModel interface {
	// Bound returns an upper bound on |exact − Estimate(a,b)| for an
	// in-domain range a ≤ b.
	Bound(a, b int) float64
	// Rigorous reports whether Bound is a hard guarantee (up to the
	// floating-point slack) rather than a heuristic.
	Rigorous() bool
	// MaxBound returns an upper bound on Bound over every range.
	MaxBound() float64
}

// maxErrCells caps the error-model resolution: below this many positions
// the models are per-position (bounds tight up to fp slack); above it each
// cell covers ⌈(n+1)/maxErrCells⌉ positions and bounds widen by at most
// the within-cell spread. 4096 cells cost ~64KiB per model at n=1M.
const maxErrCells = 4096

func errCells(positions int) int {
	if positions < 1 {
		return 1
	}
	if positions > maxErrCells {
		return maxErrCells
	}
	return positions
}

// cellRange maps position t ∈ [0, positions) to its cell.
func cellIndex(t, positions, cells int) int {
	return t * cells / positions
}

// cellStats accumulates per-cell min/max over a positional array.
type cellStats struct {
	positions int
	cells     int
	min, max  []float64
}

func newCellStats(positions int) *cellStats {
	c := errCells(positions)
	s := &cellStats{positions: positions, cells: c,
		min: make([]float64, c), max: make([]float64, c)}
	for i := range s.min {
		s.min[i] = math.Inf(1)
		s.max[i] = math.Inf(-1)
	}
	return s
}

func (s *cellStats) add(t int, v float64) {
	c := cellIndex(t, s.positions, s.cells)
	if v < s.min[c] {
		s.min[c] = v
	}
	if v > s.max[c] {
		s.max[c] = v
	}
}

func (s *cellStats) at(t int) (lo, hi float64) {
	c := cellIndex(t, s.positions, s.cells)
	return s.min[c], s.max[c]
}

// global returns the overall min/max across cells (ignoring empty cells).
func (s *cellStats) global() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range s.min {
		if s.min[i] < lo {
			lo = s.min[i]
		}
		if s.max[i] > hi {
			hi = s.max[i]
		}
	}
	return lo, hi
}

// intervalBound returns max(|lo|, |hi|) — the error bound implied by the
// interval [lo, hi] known to contain the true error.
func intervalBound(lo, hi float64) float64 {
	return math.Max(math.Abs(lo), math.Abs(hi))
}

// fpSlack is the relative floating-point slack added to every reported
// bound, scaled by the magnitudes entering the interval arithmetic.
const fpSlack = 1e-9

// cumModel is the prefix-decomposable error model: per-cell min/max of the
// cumulative errors e[t] = P[t] − Ĉ[t] over t ∈ [0, n].
type cumModel struct {
	e     *cellStats
	slack float64
}

func newCumModel(tab *prefix.Table, cum func(t int) float64, extraSlack float64) *cumModel {
	n := tab.N()
	st := newCellStats(n + 1)
	maxAbs := 0.0
	for t := 0; t <= n; t++ {
		e := tab.P[t] - cum(t)
		st.add(t, e)
		if a := math.Abs(e); a > maxAbs {
			maxAbs = a
		}
	}
	return &cumModel{e: st, slack: extraSlack + fpSlack*(1+2*maxAbs)}
}

func (m *cumModel) Bound(a, b int) float64 {
	loA, hiA := m.e.at(a)
	loB, hiB := m.e.at(b + 1)
	return intervalBound(loB-hiA, hiB-loA) + m.slack
}

func (m *cumModel) Rigorous() bool { return true }

func (m *cumModel) MaxBound() float64 {
	lo, hi := m.e.global()
	return (hi - lo) + m.slack
}

// sapModel is the SAP-family error model: the F/G/T endpoint decomposition
// for inter-bucket queries plus a per-bucket anchored cumulative error for
// intra-bucket queries.
type sapModel struct {
	bk *histogram.Bucketing
	// Inter-bucket: F[a] = err(a, n−1) over a ∈ [0,n), G[b] = err(0, b)
	// over b ∈ [0,n), T = err(0, n−1). Positions of F in the last bucket
	// (and of G in the first) are never used by the inter formula; their
	// presence in a cell can only widen the interval.
	f, g *cellStats
	t    float64
	// Intra-bucket: w anchored at each bucket's start. wl[t] is the value
	// under the bucket containing t (used for endpoint a), wr[t] under the
	// bucket containing t−1 (used for endpoint b+1).
	wl, wr *cellStats
	slack  float64
}

func newSAPModel(tab *prefix.Table, est Estimator, bk *histogram.Bucketing) *sapModel {
	n := tab.N()
	m := &sapModel{bk: bk,
		f:  newCellStats(n),
		g:  newCellStats(n),
		wl: newCellStats(n + 1),
		wr: newCellStats(n + 1),
	}
	maxAbs := 0.0
	track := func(v float64) float64 {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		return v
	}
	for a := 0; a < n; a++ {
		m.f.add(a, track(est.Estimate(a, n-1)-(tab.P[n]-tab.P[a])))
	}
	for b := 0; b < n; b++ {
		m.g.add(b, track(est.Estimate(0, b)-tab.P[b+1]))
	}
	m.t = track(est.Estimate(0, n-1) - tab.P[n])
	for j := 0; j < bk.NumBuckets(); j++ {
		lo, hi := bk.Bounds(j)
		m.wl.add(lo, 0) // w_j(lo) = 0 by anchoring
		for t := lo + 1; t <= hi+1; t++ {
			w := track(est.Estimate(lo, t-1) - (tab.P[t] - tab.P[lo]))
			if t <= hi {
				m.wl.add(t, w)
			}
			m.wr.add(t, w)
		}
	}
	m.slack = fpSlack * (1 + 4*maxAbs)
	return m
}

func (m *sapModel) Bound(a, b int) float64 {
	if m.bk.Find(a) == m.bk.Find(b) {
		loA, hiA := m.wl.at(a)
		loB, hiB := m.wr.at(b + 1)
		return intervalBound(loB-hiA, hiB-loA) + m.slack
	}
	loF, hiF := m.f.at(a)
	loG, hiG := m.g.at(b)
	return intervalBound(loF+loG-m.t, hiF+hiG-m.t) + m.slack
}

func (m *sapModel) Rigorous() bool { return true }

func (m *sapModel) MaxBound() float64 {
	loL, hiL := m.wl.global()
	loR, hiR := m.wr.global()
	bound := intervalBound(loR-hiL, hiR-loL)
	if m.bk.NumBuckets() > 1 {
		loF, hiF := m.f.global()
		loG, hiG := m.g.global()
		if b := intervalBound(loF+loG-m.t, hiF+hiG-m.t); b > bound {
			bound = b
		}
	}
	return bound + m.slack
}

// errCumulative is the ErrorBound hook of every prefix-decomposable
// family. It follows the estimator's actual answering procedure: the
// rounded cumulative curve for RoundCumulative histograms (still exactly
// decomposable), and a +0.5 absolute slack for RoundAnswer ones (the
// answer differs from the cumulative difference by at most the rounding).
func errCumulative(tab *prefix.Table, est Estimator) (ErrorModel, error) {
	type cumulative interface{ CumEstimate(t int) float64 }
	c, ok := est.(cumulative)
	if !ok {
		return nil, fmt.Errorf("method: %s is not prefix-decomposable", est.Name())
	}
	cum := c.CumEstimate
	extra := 0.0
	if h, ok := est.(*histogram.Avg); ok {
		switch h.Mode {
		case histogram.RoundCumulative:
			cum = func(t int) float64 { return math.Round(c.CumEstimate(t)) }
		case histogram.RoundAnswer:
			extra = 0.5
		}
	}
	return newCumModel(tab, cum, extra), nil
}

// errSAP is the ErrorBound hook of the SAP families.
func errSAP(tab *prefix.Table, est Estimator) (ErrorModel, error) {
	var bk *histogram.Bucketing
	switch h := est.(type) {
	case *histogram.SAP0:
		bk = h.Buckets
	case *histogram.SAP1:
		bk = h.Buckets
	case *histogram.SAP2:
		bk = h.Buckets
	default:
		return nil, fmt.Errorf("method: %s is not a SAP histogram", est.Name())
	}
	return newSAPModel(tab, est, bk), nil
}

// ErrorBoundFor builds the error model for an estimator whose method is
// not known — e.g. one deserialized from the wire (cmd/synquery). It
// dispatches on the representation the same way the descriptors do.
func ErrorBoundFor(tab *prefix.Table, est Estimator) (ErrorModel, error) {
	switch e := est.(type) {
	case *histogram.SAP0, *histogram.SAP1, *histogram.SAP2:
		return errSAP(tab, est)
	case *segment.Segmented:
		return segment.NewErrorModel(tab, e), nil
	}
	return errCumulative(tab, est)
}
