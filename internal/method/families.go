package method

// This file registers the two wire families the codec envelope
// dispatches through. The wavelet family probes first (Rank 0): wavelet
// synopses expose the histogram estimator interface too, so probing the
// histogram family first would claim them.

import (
	"fmt"
	"io"

	"rangeagg/internal/histogram"
	"rangeagg/internal/wavelet"
)

func init() {
	RegisterFamily(FamilyCodec{
		Family: "wavelet",
		Rank:   0,
		CanEncode: func(e Estimator) bool {
			switch e.(type) {
			case *wavelet.DataSynopsis, *wavelet.PrefixSynopsis, *wavelet.AA2D:
				return true
			}
			return false
		},
		Encode: func(w io.Writer, e Estimator) error {
			return wavelet.WriteJSON(w, e)
		},
		Decode: func(r io.Reader) (Estimator, error) {
			s, err := wavelet.ReadJSON(r)
			if err != nil {
				return nil, err
			}
			est, ok := s.(Estimator)
			if !ok {
				return nil, fmt.Errorf("method: decoded wavelet synopsis %T is not an estimator", s)
			}
			return est, nil
		},
	})
	RegisterFamily(FamilyCodec{
		Family: "histogram",
		Rank:   1,
		CanEncode: func(e Estimator) bool {
			_, ok := e.(histogram.Estimator)
			return ok
		},
		Encode: func(w io.Writer, e Estimator) error {
			he, ok := e.(histogram.Estimator)
			if !ok {
				return fmt.Errorf("method: %T is not a histogram estimator", e)
			}
			return histogram.WriteJSON(w, he)
		},
		Decode: func(r io.Reader) (Estimator, error) {
			return histogram.ReadJSON(r)
		},
	})
}
