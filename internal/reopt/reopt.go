// Package reopt implements the paper's §5 re-optimization: for fixed
// bucket boundaries and the unrounded equation-(1) answering rule, the
// range-sum SSE is a quadratic x·Q·xᵀ + g·xᵀ + c in the vector x of stored
// bucket values, with a single minimum at 2xQ + g = 0. Solving that B×B
// system replaces the bucket averages by the globally optimal summary
// values — the paper's A-reopt, reported up to 41% better than OPT-A.
//
// Q and g are accumulated exactly in O(B³ + n) from closed-form sums over
// the O(B²) (buck(a), buck(b)) query classes (the matrix Q depends on the
// boundaries only, as the paper notes); a brute O(n²B²) builder exists in
// the tests as the oracle.
package reopt

import (
	"fmt"

	"rangeagg/internal/histogram"
	"rangeagg/internal/linalg"
	"rangeagg/internal/prefix"
)

// tri returns 1 + 2 + … + m.
func tri(m int) float64 {
	mf := float64(m)
	return mf * (mf + 1) / 2
}

// sq2 returns 1² + 2² + … + m².
func sq2(m int) float64 {
	mf := float64(m)
	return mf * (mf + 1) * (2*mf + 1) / 6
}

// BuildSystem returns the quadratic form (Q, g) of the range SSE as a
// function of the per-bucket values for the given bucketing:
//
//	SSE(x) = Σ_{a≤b} (s[a,b] − Σ_i w_i(a,b)·x_i)² = x·Q·xᵀ + g·xᵀ + const,
//
// where w_i(a,b) is the overlap of [a,b] with bucket i.
func BuildSystem(tab *prefix.Table, bk *histogram.Bucketing) (*linalg.Matrix, []float64, error) {
	if bk.N != tab.N() {
		return nil, nil, fmt.Errorf("reopt: bucketing n=%d does not match data n=%d", bk.N, tab.N())
	}
	if err := bk.Validate(); err != nil {
		return nil, nil, err
	}
	nb := bk.NumBuckets()
	q := linalg.NewMatrix(nb, nb)
	g := make([]float64, nb)

	lo := make([]int, nb)
	hi := make([]int, nb)
	m := make([]int, nb)
	for i := 0; i < nb; i++ {
		lo[i], hi[i] = bk.Bounds(i)
		m[i] = hi[i] - lo[i] + 1
	}

	// Intra-bucket query classes (p == q): queries [a,b] inside bucket p
	// with weight w_p = b−a+1.
	for p := 0; p < nb; p++ {
		mp := m[p]
		// Σ_{a≤b} (b−a+1)²: width len occurs (mp−len+1) times.
		var qpp float64
		for length := 1; length <= mp; length++ {
			qpp += float64(mp-length+1) * float64(length) * float64(length)
		}
		q.Add(p, p, qpp)
		// g_p −= 2 Σ_{a≤b} s[a,b]·(b−a+1), accumulated directly in O(mp)
		// using per-endpoint partial sums.
		var gp float64
		for b := lo[p]; b <= hi[p]; b++ {
			gp += tab.P[b+1] * tri(b-lo[p]+1)
		}
		for a := lo[p]; a <= hi[p]; a++ {
			gp -= tab.P[a] * tri(hi[p]-a+1)
		}
		g[p] -= 2 * gp
	}

	// Inter-bucket classes p < q: a ranges over bucket p, b over bucket q,
	// independently. End weights are 1..m_p and 1..m_q; middle buckets have
	// constant weight m_i.
	for p := 0; p < nb; p++ {
		// Window moments of P over bucket p's a-positions [lo_p, hi_p].
		sumPa, _, sumUPa := tab.WindowP(lo[p], hi[p])
		// Σ_a (hi_p − a + 1)·P[a] = (hi_p+1)·ΣP[a] − Σ a·P[a].
		wSumPa := float64(hi[p]+1)*sumPa - sumUPa
		for qq := p + 1; qq < nb; qq++ {
			// b-positions map to prefix entries P[b+1], b ∈ [lo_q, hi_q].
			sumPb, _, sumUPb := tab.WindowP(lo[qq]+1, hi[qq]+1)
			// Σ_b (b − lo_q + 1)·P[b+1]: with u = b+1, weight = u − lo_q.
			wSumPb := sumUPb - float64(lo[qq])*sumPb

			mp, mq := m[p], m[qq]
			fmp, fmq := float64(mp), float64(mq)

			// Q entries for the two end buckets.
			q.Add(p, p, fmq*sq2(mp))
			q.Add(qq, qq, fmp*sq2(mq))
			q.Add(p, qq, tri(mp)*tri(mq))
			q.Add(qq, p, tri(mp)*tri(mq))

			// Middle buckets.
			for mid := p + 1; mid < qq; mid++ {
				fm := float64(m[mid])
				q.Add(p, mid, fm*tri(mp)*fmq)
				q.Add(mid, p, fm*tri(mp)*fmq)
				q.Add(qq, mid, fm*tri(mq)*fmp)
				q.Add(mid, qq, fm*tri(mq)*fmp)
				q.Add(mid, mid, fm*fm*fmp*fmq)
				for mid2 := mid + 1; mid2 < qq; mid2++ {
					fm2 := float64(m[mid2])
					q.Add(mid, mid2, fm*fm2*fmp*fmq)
					q.Add(mid2, mid, fm*fm2*fmp*fmq)
				}
			}

			// g entries. Σ_{a,b} s[a,b]·w_i with s = P[b+1] − P[a].
			// i = p: (Σ_b P[b+1])·Σ_a w_p − m_q·Σ_a w_p·P[a].
			gp := sumPb*tri(mp) - fmq*wSumPa
			g[p] -= 2 * gp
			// i = q: m_p·Σ_b w_q·P[b+1] − (Σ_a P[a])·Σ_b w_q.
			gq := fmp*wSumPb - sumPa*tri(mq)
			g[qq] -= 2 * gq
			// i middle: m_i·(m_p·Σ_b P[b+1] − m_q·Σ_a P[a]).
			base := fmp*sumPb - fmq*sumPa
			for mid := p + 1; mid < qq; mid++ {
				g[mid] -= 2 * float64(m[mid]) * base
			}
		}
	}
	return q, g, nil
}

// Solve returns the value vector minimizing the quadratic form.
func Solve(q *linalg.Matrix, g []float64) ([]float64, error) {
	// 2xQ + g = 0  ⇒  Q·x = −g/2 (Q symmetric).
	rhs := make([]float64, len(g))
	for i, v := range g {
		rhs[i] = -v / 2
	}
	x, err := linalg.SolveSymmetric(q, rhs)
	if err != nil {
		return nil, fmt.Errorf("reopt: solving normal equations: %w", err)
	}
	return x, nil
}

// Reopt applies the paper's A-reopt to an average histogram: it keeps the
// bucket boundaries, replaces the stored values by the SSE-minimizing
// ones, and returns a new histogram labelled "<name>-reopt". The answering
// rule is the unrounded equation (1), so the result uses RoundNone.
func Reopt(tab *prefix.Table, h *histogram.Avg) (*histogram.Avg, error) {
	q, g, err := BuildSystem(tab, h.Buckets)
	if err != nil {
		return nil, err
	}
	x, err := Solve(q, g)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvg(h.Buckets.Clone(), x, histogram.RoundNone, h.Label+"-reopt")
}
