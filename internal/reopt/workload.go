package reopt

import (
	"fmt"

	"rangeagg/internal/histogram"
	"rangeagg/internal/linalg"
	"rangeagg/internal/prefix"
)

// Range is an inclusive query range.
type Range struct{ A, B int }

// BuildSystemWorkload accumulates the quadratic form (Q, g) of the
// sum-squared error restricted to an explicit query workload, in
// O(|W|·B²) time (each query touches at most B buckets and its weight
// vector is found in O(B) from the bucket overlaps). This generalizes the
// paper's §5 — which optimizes over *all* ranges — to the
// workload-adaptive setting its conclusion gestures at.
func BuildSystemWorkload(tab *prefix.Table, bk *histogram.Bucketing, queries []Range) (*linalg.Matrix, []float64, error) {
	if bk.N != tab.N() {
		return nil, nil, fmt.Errorf("reopt: bucketing n=%d does not match data n=%d", bk.N, tab.N())
	}
	if err := bk.Validate(); err != nil {
		return nil, nil, err
	}
	nb := bk.NumBuckets()
	q := linalg.NewMatrix(nb, nb)
	g := make([]float64, nb)
	idx := make([]int, 0, nb)
	w := make([]float64, nb)
	for _, query := range queries {
		if query.A < 0 || query.B >= bk.N || query.A > query.B {
			return nil, nil, fmt.Errorf("reopt: query [%d,%d] outside domain [0,%d)", query.A, query.B, bk.N)
		}
		idx = idx[:0]
		pa, pb := bk.Find(query.A), bk.Find(query.B)
		for i := pa; i <= pb; i++ {
			lo, hi := bk.Bounds(i)
			if query.A > lo {
				lo = query.A
			}
			if query.B < hi {
				hi = query.B
			}
			w[i] = float64(hi - lo + 1)
			idx = append(idx, i)
		}
		s := tab.SumF(query.A, query.B)
		for _, i := range idx {
			g[i] -= 2 * s * w[i]
			for _, j := range idx {
				q.Add(i, j, w[i]*w[j])
			}
		}
		for _, i := range idx {
			w[i] = 0
		}
	}
	return q, g, nil
}

// ReoptWorkload re-optimizes an average histogram's values for an
// explicit workload. Buckets never touched by any query keep their
// original values (their error contribution is zero either way, and
// pinning them keeps out-of-workload answers sensible).
func ReoptWorkload(tab *prefix.Table, h *histogram.Avg, queries []Range) (*histogram.Avg, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("reopt: empty workload")
	}
	q, g, err := BuildSystemWorkload(tab, h.Buckets, queries)
	if err != nil {
		return nil, err
	}
	nb := h.Buckets.NumBuckets()
	// Active buckets: touched by at least one query (Q_ii = Σ w_i² > 0).
	active := make([]int, 0, nb)
	for i := 0; i < nb; i++ {
		if q.At(i, i) > 0 {
			active = append(active, i)
		}
	}
	values := append([]float64(nil), h.Values...)
	if len(active) > 0 {
		sub := linalg.NewMatrix(len(active), len(active))
		rhs := make([]float64, len(active))
		for ai, i := range active {
			rhs[ai] = -g[i] / 2
			for aj, j := range active {
				sub.Set(ai, aj, q.At(i, j))
			}
		}
		x, err := linalg.SolveSymmetric(sub, rhs)
		if err != nil {
			return nil, fmt.Errorf("reopt: solving workload normal equations: %w", err)
		}
		for ai, i := range active {
			values[i] = x[ai]
		}
	}
	return histogram.NewAvg(h.Buckets.Clone(), values, histogram.RoundNone, h.Label+"-wreopt")
}
