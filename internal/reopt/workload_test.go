package reopt

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

func randQueries(rng *rand.Rand, n, k int) []Range {
	qs := make([]Range, k)
	for i := range qs {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		qs[i] = Range{A: a, B: b}
	}
	return qs
}

func workloadSSE(tab *prefix.Table, h *histogram.Avg, qs []Range) float64 {
	var sum float64
	for _, q := range qs {
		d := tab.SumF(q.A, q.B) - h.Estimate(q.A, q.B)
		sum += d * d
	}
	return sum
}

func TestBuildSystemWorkloadMatchesAllRanges(t *testing.T) {
	// On the complete workload (every range), the workload builder must
	// reproduce the closed-form all-ranges system.
	rng := rand.New(rand.NewSource(121))
	n := 18
	counts := randCounts(rng, n, 40)
	tab := prefix.NewTable(counts)
	bk := randBucketing(rng, n, 4)
	var all []Range
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			all = append(all, Range{A: a, B: b})
		}
	}
	qw, gw, err := BuildSystemWorkload(tab, bk, all)
	if err != nil {
		t.Fatal(err)
	}
	qc, gc, err := BuildSystem(tab, bk)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < qc.Rows; i++ {
		if !approxEq(gw[i], gc[i]) {
			t.Fatalf("g[%d] = %g, want %g", i, gw[i], gc[i])
		}
		for j := 0; j < qc.Cols; j++ {
			if !approxEq(qw.At(i, j), qc.At(i, j)) {
				t.Fatalf("Q[%d,%d] = %g, want %g", i, j, qw.At(i, j), qc.At(i, j))
			}
		}
	}
}

func TestReoptWorkloadMinimizes(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(20)
		counts := randCounts(rng, n, 50)
		tab := prefix.NewTable(counts)
		bk := randBucketing(rng, n, 1+rng.Intn(4))
		h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "A0")
		qs := randQueries(rng, n, 5+rng.Intn(40))
		re, err := ReoptWorkload(tab, h, qs)
		if err != nil {
			t.Fatal(err)
		}
		base := workloadSSE(tab, re, qs)
		// Never worse than the original values.
		if orig := workloadSSE(tab, h, qs); base > orig+1e-6*(1+orig) {
			t.Fatalf("trial %d: workload reopt %g worse than original %g", trial, base, orig)
		}
		// Local minimum: random perturbations of active values cannot help.
		for p := 0; p < 10; p++ {
			vals := append([]float64(nil), re.Values...)
			for i := range vals {
				vals[i] += rng.NormFloat64() * 2
			}
			cand, _ := histogram.NewAvg(bk.Clone(), vals, histogram.RoundNone, "p")
			if got := workloadSSE(tab, cand, qs); got < base-1e-6*(1+base) {
				t.Fatalf("trial %d: perturbation improved workload SSE: %g < %g", trial, got, base)
			}
		}
	}
}

func TestReoptWorkloadBeatsGlobalReoptOnRestrictedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	n := 40
	counts := randCounts(rng, n, 80)
	tab := prefix.NewTable(counts)
	bk := randBucketing(rng, n, 5)
	h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "A0")
	// Short ranges only: a workload the all-ranges optimum is not tuned for.
	var qs []Range
	for i := 0; i+3 < n; i += 2 {
		qs = append(qs, Range{A: i, B: i + 3})
	}
	global, err := Reopt(tab, h)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := ReoptWorkload(tab, h, qs)
	if err != nil {
		t.Fatal(err)
	}
	gw := workloadSSE(tab, global, qs)
	aw := workloadSSE(tab, adapted, qs)
	if aw > gw+1e-6*(1+gw) {
		t.Fatalf("workload-adapted %g worse than global reopt %g on its own workload", aw, gw)
	}
}

func TestReoptWorkloadPinsUntouchedBuckets(t *testing.T) {
	counts := []int64{10, 10, 50, 50, 90, 90}
	tab := prefix.NewTable(counts)
	bk, _ := histogram.NewBucketing(6, []int{0, 2, 4})
	h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
	// Workload touches only the first bucket.
	qs := []Range{{A: 0, B: 1}, {A: 0, B: 0}}
	re, err := ReoptWorkload(tab, h, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(re.Values[1], h.Values[1]) || !approxEq(re.Values[2], h.Values[2]) {
		t.Fatalf("untouched buckets changed: %v vs %v", re.Values, h.Values)
	}
	// Out-of-workload answers stay sensible.
	if got := re.Estimate(4, 5); math.Abs(got-180) > 1e-9 {
		t.Fatalf("untouched-bucket estimate = %g, want 180", got)
	}
}

func TestReoptWorkloadValidation(t *testing.T) {
	counts := []int64{1, 2, 3}
	tab := prefix.NewTable(counts)
	bk, _ := histogram.NewBucketing(3, []int{0})
	h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
	if _, err := ReoptWorkload(tab, h, nil); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := ReoptWorkload(tab, h, []Range{{A: 0, B: 9}}); err == nil {
		t.Error("out-of-domain query accepted")
	}
}
