package reopt

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/linalg"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-7*scale
}

func randCounts(rng *rand.Rand, n int, lim int64) []int64 {
	c := make([]int64, n)
	for i := range c {
		c[i] = rng.Int63n(lim)
	}
	return c
}

func randBucketing(rng *rand.Rand, n, b int) *histogram.Bucketing {
	starts := []int{0}
	seen := map[int]bool{0: true}
	for len(starts) < b {
		pos := 1 + rng.Intn(n-1)
		if !seen[pos] {
			seen[pos] = true
			starts = append(starts, pos)
		}
	}
	for i := 1; i < len(starts); i++ {
		for j := i; j > 0 && starts[j] < starts[j-1]; j-- {
			starts[j], starts[j-1] = starts[j-1], starts[j]
		}
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		panic(err)
	}
	return bk
}

// buildSystemBrute accumulates Q and g directly from the definition in
// O(n²·B²) — the oracle for the closed-form builder.
func buildSystemBrute(tab *prefix.Table, bk *histogram.Bucketing) (*linalg.Matrix, []float64) {
	n := tab.N()
	nb := bk.NumBuckets()
	q := linalg.NewMatrix(nb, nb)
	g := make([]float64, nb)
	w := make([]float64, nb)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			for i := range w {
				w[i] = 0
			}
			for i := a; i <= b; i++ {
				w[bk.Find(i)]++
			}
			s := tab.SumF(a, b)
			for i := 0; i < nb; i++ {
				if w[i] == 0 {
					continue
				}
				g[i] -= 2 * s * w[i]
				for j := 0; j < nb; j++ {
					if w[j] != 0 {
						q.Add(i, j, w[i]*w[j])
					}
				}
			}
		}
	}
	return q, g
}

func TestBuildSystemMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		nb := 1 + rng.Intn(min(5, n))
		counts := randCounts(rng, n, 40)
		tab := prefix.NewTable(counts)
		bk := randBucketing(rng, n, nb)
		q, g, err := BuildSystem(tab, bk)
		if err != nil {
			t.Fatal(err)
		}
		qb, gb := buildSystemBrute(tab, bk)
		for i := 0; i < q.Rows; i++ {
			if !approxEq(g[i], gb[i]) {
				t.Fatalf("trial %d: g[%d] = %g, want %g (starts=%v)", trial, i, g[i], gb[i], bk.Starts)
			}
			for j := 0; j < q.Cols; j++ {
				if !approxEq(q.At(i, j), qb.At(i, j)) {
					t.Fatalf("trial %d: Q[%d,%d] = %g, want %g (starts=%v)",
						trial, i, j, q.At(i, j), qb.At(i, j), bk.Starts)
				}
			}
		}
	}
}

func TestReoptNeverIncreasesSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(25)
		counts := randCounts(rng, n, 60)
		tab := prefix.NewTable(counts)
		bk := randBucketing(rng, n, 1+rng.Intn(5))
		h, err := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "OPT-A")
		if err != nil {
			t.Fatal(err)
		}
		r, err := Reopt(tab, h)
		if err != nil {
			t.Fatal(err)
		}
		before := sse.Of(tab, h)
		after := sse.Of(tab, r)
		if after > before+1e-6*(1+before) {
			t.Fatalf("trial %d: reopt SSE %g > original %g", trial, after, before)
		}
	}
}

func TestReoptGradientVanishes(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := 20
	counts := randCounts(rng, n, 50)
	tab := prefix.NewTable(counts)
	bk := randBucketing(rng, n, 4)
	q, g, err := BuildSystem(tab, bk)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Solve(q, g)
	if err != nil {
		t.Fatal(err)
	}
	// 2Qx + g = 0 at the optimum.
	qx := q.MulVec(x)
	for i := range qx {
		if r := 2*qx[i] + g[i]; math.Abs(r) > 1e-5*(1+math.Abs(g[i])) {
			t.Fatalf("gradient component %d = %g", i, r)
		}
	}
}

func TestReoptIsGlobalMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	n := 15
	counts := randCounts(rng, n, 40)
	tab := prefix.NewTable(counts)
	bk := randBucketing(rng, n, 3)
	h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
	r, err := Reopt(tab, h)
	if err != nil {
		t.Fatal(err)
	}
	base := sse.Of(tab, r)
	for trial := 0; trial < 30; trial++ {
		vals := append([]float64(nil), r.Values...)
		for i := range vals {
			vals[i] += rng.NormFloat64() * 3
		}
		cand, err := histogram.NewAvg(bk.Clone(), vals, histogram.RoundNone, "perturbed")
		if err != nil {
			t.Fatal(err)
		}
		if got := sse.Of(tab, cand); got < base-1e-6*(1+base) {
			t.Fatalf("perturbation improved SSE: %g < %g", got, base)
		}
	}
}

func TestReoptImprovesOnSkewedData(t *testing.T) {
	// The direction of the paper's 41% observation: on skewed data with
	// equi-width boundaries (badly placed), re-optimizing values must give
	// a strict improvement.
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(2000 / (i + 1))
	}
	tab := prefix.NewTable(counts)
	bk, _ := histogram.EquiWidth(64, 8)
	h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "EQUI-WIDTH")
	r, err := Reopt(tab, h)
	if err != nil {
		t.Fatal(err)
	}
	before := sse.Of(tab, h)
	after := sse.Of(tab, r)
	if after >= before {
		t.Fatalf("no improvement: %g >= %g", after, before)
	}
	if r.Name() != "EQUI-WIDTH-reopt" {
		t.Errorf("label = %q", r.Name())
	}
}

func TestBuildSystemValidation(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	bk := &histogram.Bucketing{N: 5, Starts: []int{0}}
	if _, _, err := BuildSystem(tab, bk); err == nil {
		t.Error("mismatched n accepted")
	}
	bad := &histogram.Bucketing{N: 3, Starts: []int{1}}
	if _, _, err := BuildSystem(tab, bad); err == nil {
		t.Error("invalid bucketing accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
