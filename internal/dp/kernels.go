package dp

import (
	"rangeagg/internal/prefix"
)

// This file holds the specialized DP inner loops for the construction
// hot paths: SAP0 (Theorem 6), SAP1 (Theorem 8), A0, and the weighted
// V-optimal family (POINT-OPT / V-OPT). Each kernel inlines its cost
// function into the candidate scan, reading the precomputed prefix-moment
// slices (prefix.Table.Moments) directly instead of paying a closure and
// several method calls per candidate, and hoists every r-dependent term —
// the float64(n−1−r) suffix weight and the window boundary moments — out
// of the inner loop (r = i−1 is fixed per cell; only l = j varies).
//
// CORRECTNESS INVARIANT: every arithmetic expression below reproduces the
// corresponding prefix.Table method (AvgFit, IntraCost, VarSumP,
// LinFitRSS, the weighted-variance closure) with the same floating-point
// operation order, so kernel and closure paths produce bit-identical DP
// tables — the equivalence property tests enforce this against
// SolveReference. Do not "simplify" the algebra here without updating
// both sides.

// sap0Kernel: cost(l,r) = IntraCost + SuffixVar·(n−1−r) + PrefixVar·l.
func sap0Kernel(tab *prefix.Table) rowKernel {
	mom := tab.Moments()
	p, cumP, cumP2, cumUP := mom.P, mom.CumP, mom.CumP2, mom.CumUP
	n := tab.N()
	return func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32) {
		for i := iLo; i < iHi; i++ {
			// Bucket [j, i−1]: r = i−1. Hoisted r-dependent terms:
			w := float64(n - i) // = float64(n−1−r)
			pI := p[i]
			cpI1, cp2I1, cupI1 := cumP[i+1], cumP2[i+1], cumUP[i+1] // windows ending at r+1 = i
			cpI, cp2I := cumP[i], cumP2[i]                          // suffix window ends at r = i−1
			jMax := i - 1
			if jMax > jHi {
				jMax = jHi
			}
			best, bestJ := inf, int32(-1)
			for j := jLo; j <= jMax; j++ {
				ej := prev[j]
				if ej >= best {
					continue // cost ≥ 0 ⇒ ej+cost can't beat best
				}
				m := float64(i - j)
				pl := p[j]
				// --- AvgFit(j, i−1) over window [j, i] ---
				avg := (pI - pl) / m
				sum := cpI1 - cumP[j]
				sum2 := cp2I1 - cumP2[j]
				sumUP := cupI1 - cumUP[j]
				cnt := m + 1
				sumQ := sum - cnt*pl
				sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
				sumD := m * (m + 1) / 2
				sumD2 := m * (m + 1) * (2*m + 1) / 6
				sumDP := sumUP - float64(j)*sum
				sumQD := sumDP - pl*sumD
				sumE := sumQ - avg*sumD
				sumE2 := sumQ2 - 2*avg*sumQD + avg*avg*sumD2
				if sumE2 < 0 {
					sumE2 = 0
				}
				// --- IntraCost ---
				intra := (m + 1) * sumE2
				intra -= sumE * sumE
				if intra < 0 {
					intra = 0
				}
				// --- SuffixVar = VarSumP(j, i−1) ---
				s1 := cpI - cumP[j]
				s2 := cp2I - cumP2[j]
				sufVar := s2 - s1*s1/m
				if sufVar < 0 {
					sufVar = 0
				}
				// --- PrefixVar = VarSumP(j+1, i) ---
				s1p := cpI1 - cumP[j+1]
				s2p := cp2I1 - cumP2[j+1]
				preVar := s2p - s1p*s1p/m
				if preVar < 0 {
					preVar = 0
				}
				c := ej + (intra + sufVar*w + preVar*float64(j))
				if c < best {
					best, bestJ = c, int32(j)
				}
			}
			cur[i] = best
			choice[i] = bestJ
		}
	}
}

// sap1Kernel: cost(l,r) = IntraCost + SuffixRSS·(n−1−r) + PrefixRSS·l,
// with SuffixRSS/PrefixRSS the linear-fit residuals of P over [l,r] and
// [l+1,r+1] (LinFitRSS).
func sap1Kernel(tab *prefix.Table) rowKernel {
	mom := tab.Moments()
	p, cumP, cumP2, cumUP := mom.P, mom.CumP, mom.CumP2, mom.CumUP
	n := tab.N()
	return func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32) {
		for i := iLo; i < iHi; i++ {
			w := float64(n - i)
			pI := p[i]
			cpI1, cp2I1, cupI1 := cumP[i+1], cumP2[i+1], cumUP[i+1]
			cpI, cp2I, cupI := cumP[i], cumP2[i], cumUP[i]
			jMax := i - 1
			if jMax > jHi {
				jMax = jHi
			}
			best, bestJ := inf, int32(-1)
			for j := jLo; j <= jMax; j++ {
				ej := prev[j]
				if ej >= best {
					continue
				}
				mi := i - j // integer bucket width
				m := float64(mi)
				pl := p[j]
				// --- AvgFit / IntraCost over window [j, i] ---
				avg := (pI - pl) / m
				sum := cpI1 - cumP[j]
				sum2 := cp2I1 - cumP2[j]
				sumUP := cupI1 - cumUP[j]
				cnt := m + 1
				sumQ := sum - cnt*pl
				sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
				sumD := m * (m + 1) / 2
				sumD2 := m * (m + 1) * (2*m + 1) / 6
				sumDP := sumUP - float64(j)*sum
				sumQD := sumDP - pl*sumD
				sumE := sumQ - avg*sumD
				sumE2 := sumQ2 - 2*avg*sumQD + avg*avg*sumD2
				if sumE2 < 0 {
					sumE2 = 0
				}
				intra := (m + 1) * sumE2
				intra -= sumE * sumE
				if intra < 0 {
					intra = 0
				}
				var sufRSS, preRSS float64
				if mi > 2 { // LinFitRSS interpolates ≤2 points exactly
					mf := m
					sxx := mf * (mf*mf - 1) / 12
					// --- SuffixRSS = LinFitRSS(j, i−1) ---
					sSum := cpI - cumP[j]
					sSum2 := cp2I - cumP2[j]
					sSumUP := cupI - cumUP[j]
					syy := sSum2 - sSum*sSum/m
					if syy < 0 {
						syy = 0
					}
					meanU := float64(j+i-1) / 2
					sxy := sSumUP - meanU*sSum
					sufRSS = syy - sxy*sxy/sxx
					if sufRSS < 0 {
						sufRSS = 0
					}
					// --- PrefixRSS = LinFitRSS(j+1, i) ---
					pSum := cpI1 - cumP[j+1]
					pSum2 := cp2I1 - cumP2[j+1]
					pSumUP := cupI1 - cumUP[j+1]
					pyy := pSum2 - pSum*pSum/m
					if pyy < 0 {
						pyy = 0
					}
					meanUp := float64(j+1+i) / 2
					pxy := pSumUP - meanUp*pSum
					preRSS = pyy - pxy*pxy/sxx
					if preRSS < 0 {
						preRSS = 0
					}
				}
				c := ej + (intra + sufRSS*w + preRSS*float64(j))
				if c < best {
					best, bestJ = c, int32(j)
				}
			}
			cur[i] = best
			choice[i] = bestJ
		}
	}
}

// a0Kernel: cost(l,r) = IntraCost + Σe'²·(n−1−r) + Σe'²·l, with Σe'² the
// second moment of the average fit's local prefix errors (AvgFit).
func a0Kernel(tab *prefix.Table) rowKernel {
	mom := tab.Moments()
	p, cumP, cumP2, cumUP := mom.P, mom.CumP, mom.CumP2, mom.CumUP
	n := tab.N()
	return func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32) {
		for i := iLo; i < iHi; i++ {
			w := float64(n - i)
			pI := p[i]
			cpI1, cp2I1, cupI1 := cumP[i+1], cumP2[i+1], cumUP[i+1]
			jMax := i - 1
			if jMax > jHi {
				jMax = jHi
			}
			best, bestJ := inf, int32(-1)
			for j := jLo; j <= jMax; j++ {
				ej := prev[j]
				if ej >= best {
					continue
				}
				m := float64(i - j)
				pl := p[j]
				avg := (pI - pl) / m
				sum := cpI1 - cumP[j]
				sum2 := cp2I1 - cumP2[j]
				sumUP := cupI1 - cumUP[j]
				cnt := m + 1
				sumQ := sum - cnt*pl
				sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
				sumD := m * (m + 1) / 2
				sumD2 := m * (m + 1) * (2*m + 1) / 6
				sumDP := sumUP - float64(j)*sum
				sumQD := sumDP - pl*sumD
				sumE := sumQ - avg*sumD
				sumE2 := sumQ2 - 2*avg*sumQD + avg*avg*sumD2
				if sumE2 < 0 {
					sumE2 = 0
				}
				intra := (m + 1) * sumE2
				intra -= sumE * sumE
				if intra < 0 {
					intra = 0
				}
				c := ej + (intra + sumE2*w + sumE2*float64(j))
				if c < best {
					best, bestJ = c, int32(j)
				}
			}
			cur[i] = best
			choice[i] = bestJ
		}
	}
}

// weightedKernel: the weighted V-optimal cost (POINT-OPT / V-OPT) over
// precomputed Σw, Σw·A, Σw·A² prefix tables: weighted variance of the
// bucket, zero for zero-weight buckets.
func weightedKernel(cw, cwa, cwa2 []float64) rowKernel {
	return func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32) {
		for i := iLo; i < iHi; i++ {
			cwI, cwaI, cwa2I := cw[i], cwa[i], cwa2[i] // r+1 = i
			jMax := i - 1
			if jMax > jHi {
				jMax = jHi
			}
			best, bestJ := inf, int32(-1)
			for j := jLo; j <= jMax; j++ {
				ej := prev[j]
				if ej >= best {
					continue
				}
				var cost float64
				if sw := cwI - cw[j]; sw != 0 {
					swa := cwaI - cwa[j]
					swa2 := cwa2I - cwa2[j]
					cost = swa2 - swa*swa/sw
					if cost < 0 {
						cost = 0
					}
				}
				c := ej + cost
				if c < best {
					best, bestJ = c, int32(j)
				}
			}
			cur[i] = best
			choice[i] = bestJ
		}
	}
}

// Closure forms of the specialized costs, retained for the equivalence
// property tests (they drive SolveReference against the kernels above)
// and for external callers that need the raw per-bucket cost.

// SAP0Cost returns the SAP0 per-bucket cost function of Theorem 6.
func SAP0Cost(tab *prefix.Table) CostFunc {
	n := tab.N()
	return func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixVar(l, r)*float64(n-1-r) +
			tab.PrefixVar(l, r)*float64(l)
	}
}

// SAP1Cost returns the SAP1 per-bucket cost function of Theorem 8.
func SAP1Cost(tab *prefix.Table) CostFunc {
	n := tab.N()
	return func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixRSS(l, r)*float64(n-1-r) +
			tab.PrefixRSS(l, r)*float64(l)
	}
}

// A0Cost returns the A0 per-bucket cost function (cross term ignored).
func A0Cost(tab *prefix.Table) CostFunc {
	n := tab.N()
	return func(l, r int) float64 {
		_, _, sumE2 := tab.AvgFit(l, r)
		return tab.IntraCost(l, r) + sumE2*float64(n-1-r) + sumE2*float64(l)
	}
}

// Fused closure forms of the hottest costs. The approximate construction
// path (internal/approx) evaluates costs point-wise — one (l,r) pair per
// oracle probe instead of a whole DP row — so it cannot amortize the
// kernel's row-level hoisting, and the method-call closures above cost
// several prefix.Table calls per evaluation. These closures read the raw
// moment slices directly, replicating the kernels' algebra (same
// floating-point operation order, same clamps), and are what the sparse
// DP spends nearly all of its time in at n = 10⁶.

// FusedSAP0Cost returns the SAP0 per-bucket cost of Theorem 6, computed
// with sap0Kernel's fused moment algebra. Values match SAP0Cost.
func FusedSAP0Cost(tab *prefix.Table) CostFunc {
	mom := tab.Moments()
	p, cumP, cumP2, cumUP := mom.P, mom.CumP, mom.CumP2, mom.CumUP
	n := tab.N()
	return func(l, r int) float64 {
		i, j := r+1, l
		w := float64(n - i)
		m := float64(i - j)
		pl := p[j]
		// --- AvgFit(j, i−1) over window [j, i] ---
		avg := (p[i] - pl) / m
		sum := cumP[i+1] - cumP[j]
		sum2 := cumP2[i+1] - cumP2[j]
		sumUP := cumUP[i+1] - cumUP[j]
		cnt := m + 1
		sumQ := sum - cnt*pl
		sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
		sumD := m * (m + 1) / 2
		sumD2 := m * (m + 1) * (2*m + 1) / 6
		sumDP := sumUP - float64(j)*sum
		sumQD := sumDP - pl*sumD
		sumE := sumQ - avg*sumD
		sumE2 := sumQ2 - 2*avg*sumQD + avg*avg*sumD2
		if sumE2 < 0 {
			sumE2 = 0
		}
		intra := (m + 1) * sumE2
		intra -= sumE * sumE
		if intra < 0 {
			intra = 0
		}
		// --- SuffixVar = VarSumP(j, i−1) ---
		s1 := cumP[i] - cumP[j]
		s2 := cumP2[i] - cumP2[j]
		sufVar := s2 - s1*s1/m
		if sufVar < 0 {
			sufVar = 0
		}
		// --- PrefixVar = VarSumP(j+1, i) ---
		s1p := cumP[i+1] - cumP[j+1]
		s2p := cumP2[i+1] - cumP2[j+1]
		preVar := s2p - s1p*s1p/m
		if preVar < 0 {
			preVar = 0
		}
		return intra + sufVar*w + preVar*float64(j)
	}
}

// FusedA0Cost returns the A0 per-bucket cost (cross term ignored),
// computed with a0Kernel's fused moment algebra. Values match A0Cost.
func FusedA0Cost(tab *prefix.Table) CostFunc {
	mom := tab.Moments()
	p, cumP, cumP2, cumUP := mom.P, mom.CumP, mom.CumP2, mom.CumUP
	n := tab.N()
	return func(l, r int) float64 {
		i, j := r+1, l
		w := float64(n - i)
		m := float64(i - j)
		pl := p[j]
		avg := (p[i] - pl) / m
		sum := cumP[i+1] - cumP[j]
		sum2 := cumP2[i+1] - cumP2[j]
		sumUP := cumUP[i+1] - cumUP[j]
		cnt := m + 1
		sumQ := sum - cnt*pl
		sumQ2 := sum2 - 2*pl*sum + cnt*pl*pl
		sumD := m * (m + 1) / 2
		sumD2 := m * (m + 1) * (2*m + 1) / 6
		sumDP := sumUP - float64(j)*sum
		sumQD := sumDP - pl*sumD
		sumE := sumQ - avg*sumD
		sumE2 := sumQ2 - 2*avg*sumQD + avg*avg*sumD2
		if sumE2 < 0 {
			sumE2 = 0
		}
		intra := (m + 1) * sumE2
		intra -= sumE * sumE
		if intra < 0 {
			intra = 0
		}
		return intra + sumE2*w + sumE2*float64(j)
	}
}

// WeightedVarCost returns the weighted V-optimal per-bucket cost (the
// weighted variance of [l,r]) over tables from WeightedMomentTables.
func WeightedVarCost(cw, cwa, cwa2 []float64) CostFunc {
	return weightedCost(cw, cwa, cwa2)
}

// weightedCost returns the weighted V-optimal closure over the same
// moment tables the kernel reads.
func weightedCost(cw, cwa, cwa2 []float64) CostFunc {
	return func(l, r int) float64 {
		sw := cw[r+1] - cw[l]
		swa := cwa[r+1] - cwa[l]
		swa2 := cwa2[r+1] - cwa2[l]
		if sw == 0 {
			return 0
		}
		c := swa2 - swa*swa/sw
		if c < 0 {
			c = 0
		}
		return c
	}
}
