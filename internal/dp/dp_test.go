package dp

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-8*scale
}

func randCounts(rng *rand.Rand, n int) []int64 {
	c := make([]int64, n)
	for i := range c {
		c[i] = rng.Int63n(50)
	}
	return c
}

// enumerateBucketings calls fn with every partition of [0,n) into at most
// b non-empty contiguous buckets.
func enumerateBucketings(n, b int, fn func(starts []int)) {
	var rec func(starts []int, next int)
	rec = func(starts []int, next int) {
		fn(starts)
		if len(starts) >= b {
			return
		}
		for pos := next; pos < n; pos++ {
			rec(append(starts, pos), pos+1)
		}
	}
	rec([]int{0}, 1)
}

func TestSolveMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		b := 1 + rng.Intn(4)
		// Random additive cost table.
		costTable := make([][]float64, n)
		for l := range costTable {
			costTable[l] = make([]float64, n)
			for r := l; r < n; r++ {
				costTable[l][r] = rng.Float64() * 100
			}
		}
		cost := func(l, r int) float64 { return costTable[l][r] }
		_, got, err := Solve(n, b, cost)
		if err != nil {
			t.Fatal(err)
		}
		best := math.MaxFloat64
		enumerateBucketings(n, b, func(starts []int) {
			var total float64
			for i, s := range starts {
				e := n - 1
				if i+1 < len(starts) {
					e = starts[i+1] - 1
				}
				total += cost(s, e)
			}
			if total < best {
				best = total
			}
		})
		if !approxEq(got, best) {
			t.Fatalf("trial %d: Solve=%g exhaustive=%g", trial, got, best)
		}
	}
}

func TestSolveValidation(t *testing.T) {
	cost := func(l, r int) float64 { return 0 }
	if _, _, err := Solve(0, 3, cost); err == nil {
		t.Error("n=0 should fail")
	}
	if _, _, err := Solve(5, 0, cost); err == nil {
		t.Error("B=0 should fail")
	}
	// B > n collapses to B = n.
	starts, _, err := Solve(3, 10, cost)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) > 3 {
		t.Errorf("starts = %v, want at most 3 buckets", starts)
	}
}

// TestSAP0DPIsOptimal verifies Theorem 6: the DP's histogram achieves the
// minimum true range-SSE over all bucketings with at most B buckets.
func TestSAP0DPIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(6)
		b := 2 + rng.Intn(2)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		h, err := SAP0(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		got := sse.Brute(tab, h)
		best := math.MaxFloat64
		enumerateBucketings(n, b, func(starts []int) {
			bk, err := histogram.NewBucketing(n, append([]int(nil), starts...))
			if err != nil {
				t.Fatal(err)
			}
			cand, err := histogram.NewSAP0FromBounds(tab, bk, "SAP0")
			if err != nil {
				t.Fatal(err)
			}
			if v := sse.Brute(tab, cand); v < best {
				best = v
			}
		})
		if got > best+1e-6*(1+best) {
			t.Fatalf("trial %d: DP SSE %g > exhaustive optimum %g", trial, got, best)
		}
	}
}

// TestSAP1DPIsOptimal verifies Theorem 8 analogously.
func TestSAP1DPIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(5)
		b := 2 + rng.Intn(2)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		h, err := SAP1(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		got := sse.Brute(tab, h)
		best := math.MaxFloat64
		enumerateBucketings(n, b, func(starts []int) {
			bk, err := histogram.NewBucketing(n, append([]int(nil), starts...))
			if err != nil {
				t.Fatal(err)
			}
			cand, err := histogram.NewSAP1FromBounds(tab, bk, "SAP1")
			if err != nil {
				t.Fatal(err)
			}
			if v := sse.Brute(tab, cand); v < best {
				best = v
			}
		})
		if got > best+1e-6*(1+best) {
			t.Fatalf("trial %d: DP SSE %g > exhaustive optimum %g", trial, got, best)
		}
	}
}

// TestSAP1BeatsAvgAtFixedBoundaries verifies the paper's §2.2.2 claim: for
// the same bucket boundaries, the optimal SAP1 summaries give SSE no worse
// than the plain average histogram (which is a feasible SAP1 summary).
func TestSAP1BeatsAvgAtFixedBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(20)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		// Random bucketing.
		starts := []int{0}
		for pos := 1; pos < n; pos++ {
			if rng.Intn(4) == 0 {
				starts = append(starts, pos)
			}
		}
		bk, err := histogram.NewBucketing(n, starts)
		if err != nil {
			t.Fatal(err)
		}
		avgH, err := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "OPT-A")
		if err != nil {
			t.Fatal(err)
		}
		sap1H, err := histogram.NewSAP1FromBounds(tab, bk, "SAP1")
		if err != nil {
			t.Fatal(err)
		}
		a := sse.Brute(tab, avgH)
		s := sse.Brute(tab, sap1H)
		if s > a+1e-6*(1+a) {
			t.Fatalf("trial %d: SAP1 SSE %g > OPT-A SSE %g at same boundaries", trial, s, a)
		}
	}
}

func TestA0Builds(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	counts := randCounts(rng, 40)
	tab := prefix.NewTable(counts)
	h, err := A0(tab, 6, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "A0" {
		t.Errorf("name = %q", h.Name())
	}
	if h.Buckets.NumBuckets() > 6 {
		t.Errorf("buckets = %d > 6", h.Buckets.NumBuckets())
	}
	// A0's values are the true bucket averages.
	for i := 0; i < h.Buckets.NumBuckets(); i++ {
		lo, hi := h.Buckets.Bounds(i)
		if !approxEq(h.Values[i], tab.Avg(lo, hi)) {
			t.Errorf("bucket %d value %g != avg %g", i, h.Values[i], tab.Avg(lo, hi))
		}
	}
}

// TestA0NearOptimalOnSmall checks A0 lands close to (but not necessarily
// at) the best average-histogram bucketing — it ignores the cross term, so
// exact optimality is not guaranteed, but on small inputs it should be
// within a small factor.
func TestA0NearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	n, b := 10, 3
	counts := randCounts(rng, n)
	tab := prefix.NewTable(counts)
	h, err := A0(tab, b, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	got := sse.Brute(tab, h)
	best := math.MaxFloat64
	enumerateBucketings(n, b, func(starts []int) {
		bk, _ := histogram.NewBucketing(n, append([]int(nil), starts...))
		cand, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
		if v := sse.Brute(tab, cand); v < best {
			best = v
		}
	})
	if got > 4*best+1e-9 {
		t.Fatalf("A0 SSE %g more than 4× optimum %g", got, best)
	}
}

func TestVOptMinimizesPointError(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	n, b := 10, 3
	counts := randCounts(rng, n)
	tab := prefix.NewTable(counts)
	h, err := VOpt(tab, b, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	pointErr := func(bk *histogram.Bucketing) float64 {
		var s float64
		for i := 0; i < n; i++ {
			idx := bk.Find(i)
			lo, hi := bk.Bounds(idx)
			d := float64(counts[i]) - tab.Avg(lo, hi)
			s += d * d
		}
		return s
	}
	got := pointErr(h.Buckets)
	best := math.MaxFloat64
	enumerateBucketings(n, b, func(starts []int) {
		bk, _ := histogram.NewBucketing(n, append([]int(nil), starts...))
		if v := pointErr(bk); v < best {
			best = v
		}
	})
	if !approxEq(got, best) && got > best {
		t.Fatalf("VOpt point error %g > optimum %g", got, best)
	}
}

func TestPointOptMinimizesWeightedError(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	n, b := 9, 3
	counts := randCounts(rng, n)
	tab := prefix.NewTable(counts)
	h, err := PointOpt(tab, b, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	w := func(i int) float64 { return float64(i+1) * float64(n-i) }
	weightedErr := func(bk *histogram.Bucketing, values []float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			d := float64(counts[i]) - values[bk.Find(i)]
			s += w(i) * d * d
		}
		return s
	}
	got := weightedErr(h.Buckets, h.Values)
	best := math.MaxFloat64
	enumerateBucketings(n, b, func(starts []int) {
		bk, _ := histogram.NewBucketing(n, append([]int(nil), starts...))
		// Optimal values for fixed boundaries are the weighted means.
		values := make([]float64, bk.NumBuckets())
		for i := range values {
			lo, hi := bk.Bounds(i)
			var sw, swa float64
			for j := lo; j <= hi; j++ {
				sw += w(j)
				swa += w(j) * float64(counts[j])
			}
			values[i] = swa / sw
		}
		if v := weightedErr(bk, values); v < best {
			best = v
		}
	})
	if got > best+1e-6*(1+best) {
		t.Fatalf("PointOpt weighted error %g > optimum %g", got, best)
	}
}

func TestBaselineConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	counts := randCounts(rng, 30)
	tab := prefix.NewTable(counts)
	for _, build := range []func(*prefix.Table, int, histogram.Rounding) (*histogram.Avg, error){
		EquiWidthHist, EquiDepthHist, MaxDiffHist,
	} {
		h, err := build(tab, 5, histogram.RoundNone)
		if err != nil {
			t.Fatal(err)
		}
		if h.Buckets.NumBuckets() > 5 {
			t.Errorf("%s: %d buckets > 5", h.Name(), h.Buckets.NumBuckets())
		}
		// Whole-domain query is exact for true-average histograms.
		if got, want := h.Estimate(0, 29), tab.SumF(0, 29); !approxEq(got, want) {
			t.Errorf("%s: full-range estimate %g, want %g", h.Name(), got, want)
		}
	}
}

func TestConstructorsRejectBadB(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	if _, err := SAP0(tab, 0); err == nil {
		t.Error("SAP0 B=0 should fail")
	}
	if _, err := SAP1(tab, -1); err == nil {
		t.Error("SAP1 B<0 should fail")
	}
	if _, err := A0(tab, 0, histogram.RoundNone); err == nil {
		t.Error("A0 B=0 should fail")
	}
	if _, err := PointOpt(tab, 0, histogram.RoundNone); err == nil {
		t.Error("PointOpt B=0 should fail")
	}
}

// TestSAP0CostEqualsSSE cross-checks that the DP objective equals the true
// SSE of the produced histogram (the decomposition lemma end to end).
func TestSAP0CostEqualsSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	counts := randCounts(rng, 30)
	tab := prefix.NewTable(counts)
	n := tab.N()
	cost := func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixVar(l, r)*float64(n-1-r) +
			tab.PrefixVar(l, r)*float64(l)
	}
	starts, total, err := Solve(n, 5, cost)
	if err != nil {
		t.Fatal(err)
	}
	bk, _ := histogram.NewBucketing(n, starts)
	h, _ := histogram.NewSAP0FromBounds(tab, bk, "SAP0")
	if got := sse.Brute(tab, h); !approxEq(got, total) {
		t.Fatalf("DP objective %g != true SSE %g", total, got)
	}
}

// TestSAP2DPIsOptimal: the quadratic-model DP is exact for its
// representation, like SAP0/SAP1.
func TestSAP2DPIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 5; trial++ {
		n := 6 + rng.Intn(5)
		b := 2
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		h, err := SAP2(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		got := sse.Brute(tab, h)
		best := math.MaxFloat64
		enumerateBucketings(n, b, func(starts []int) {
			bk, _ := histogram.NewBucketing(n, append([]int(nil), starts...))
			cand, err := histogram.NewSAP2FromBounds(tab, bk, "SAP2")
			if err != nil {
				t.Fatal(err)
			}
			if v := sse.Brute(tab, cand); v < best {
				best = v
			}
		})
		if got > best+1e-6*(1+best) {
			t.Fatalf("trial %d: DP SSE %g > exhaustive optimum %g (counts=%v)", trial, got, best, counts)
		}
	}
}

// TestSAP2BeatsSAP1AtFixedBoundaries: the quadratic summary family
// contains the linear one.
func TestSAP2BeatsSAP1AtFixedBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(20)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		starts := []int{0}
		for pos := 1; pos < n; pos++ {
			if rng.Intn(5) == 0 {
				starts = append(starts, pos)
			}
		}
		bk, _ := histogram.NewBucketing(n, starts)
		h1, err := histogram.NewSAP1FromBounds(tab, bk, "SAP1")
		if err != nil {
			t.Fatal(err)
		}
		h2, err := histogram.NewSAP2FromBounds(tab, bk, "SAP2")
		if err != nil {
			t.Fatal(err)
		}
		s1 := sse.Brute(tab, h1)
		s2 := sse.Brute(tab, h2)
		if s2 > s1+1e-6*(1+s1) {
			t.Fatalf("trial %d: SAP2 SSE %g > SAP1 SSE %g at same boundaries", trial, s2, s1)
		}
	}
}
