package dp

import (
	"math/rand"
	"testing"

	"rangeagg/internal/dataset"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
)

// The rewritten DP (rolling rows, pruning, parallel layers, inlined
// kernels) must reproduce the seed implementation bit-for-bit: same
// bucket starts, same total cost (exact float equality), at every pool
// width. SolveReference is the seed oracle.

func equivDatasets(t *testing.T) map[string][]int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	uniform := make([]int64, 96)
	for i := range uniform {
		uniform[i] = int64(rng.Intn(50))
	}
	spike := make([]int64, 80)
	for i := range spike {
		spike[i] = 1
	}
	spike[17], spike[63] = 5000, 900
	zipf, err := dataset.Zipf(dataset.ZipfConfig{N: 150, Alpha: 1.3, MaxCount: 800, Permute: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := dataset.Zipf(dataset.DefaultPaper())
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]int64{
		"uniform":    uniform,
		"spike":      spike,
		"zipf":       zipf.Counts,
		"paper-zipf": paper.Counts, // the 127-key rounded Zipf(1.8) input
	}
}

func sameSolution(t *testing.T, label string, wantStarts []int, wantTotal float64, gotStarts []int, gotTotal float64) {
	t.Helper()
	if gotTotal != wantTotal { // exact: the paths must be bit-identical
		t.Fatalf("%s: total = %v, want %v", label, gotTotal, wantTotal)
	}
	if len(gotStarts) != len(wantStarts) {
		t.Fatalf("%s: %d buckets, want %d", label, len(gotStarts), len(wantStarts))
	}
	for i := range gotStarts {
		if gotStarts[i] != wantStarts[i] {
			t.Fatalf("%s: starts[%d] = %d, want %d (%v vs %v)",
				label, i, gotStarts[i], wantStarts[i], gotStarts, wantStarts)
		}
	}
}

// TestSolveMatchesReference checks the generic closure path (rolling rows
// + pruning + parallel layers) against the seed DP for every specialized
// cost function, at pool widths 1 and 4.
func TestSolveMatchesReference(t *testing.T) {
	for name, counts := range equivDatasets(t) {
		tab := prefix.NewTable(counts)
		costs := map[string]CostFunc{
			"sap0": SAP0Cost(tab),
			"sap1": SAP1Cost(tab),
			"a0":   A0Cost(tab),
		}
		for _, b := range []int{1, 2, 5, 11} {
			for cname, cost := range costs {
				wantStarts, wantTotal, err := SolveReference(tab.N(), b, cost)
				if err != nil {
					t.Fatalf("%s/%s/b=%d: reference: %v", name, cname, b, err)
				}
				for _, workers := range []int{1, 4} {
					prevW := parallel.SetWorkers(workers)
					starts, total, err := Solve(tab.N(), b, cost)
					parallel.SetWorkers(prevW)
					if err != nil {
						t.Fatalf("%s/%s/b=%d/w=%d: %v", name, cname, b, workers, err)
					}
					sameSolution(t, name+"/"+cname, wantStarts, wantTotal, starts, total)
				}
			}
		}
	}
}

// TestKernelsMatchClosures checks each inlined kernel against the closure
// form of the same cost on the parallel driver — this is the test that
// pins the kernels' floating-point operation order.
func TestKernelsMatchClosures(t *testing.T) {
	for name, counts := range equivDatasets(t) {
		tab := prefix.NewTable(counts)
		n := tab.N()
		// Weighted V-optimal moments for the POINT-OPT weights.
		cw := make([]float64, n+1)
		cwa := make([]float64, n+1)
		cwa2 := make([]float64, n+1)
		for i := 0; i < n; i++ {
			a := float64(counts[i])
			w := float64(i+1) * float64(n-i)
			cw[i+1] = cw[i] + w
			cwa[i+1] = cwa[i] + w*a
			cwa2[i+1] = cwa2[i] + w*a*a
		}
		pairs := []struct {
			label  string
			kernel rowKernel
			cost   CostFunc
		}{
			{"sap0", sap0Kernel(tab), SAP0Cost(tab)},
			{"sap1", sap1Kernel(tab), SAP1Cost(tab)},
			{"a0", a0Kernel(tab), A0Cost(tab)},
			{"pointopt", weightedKernel(cw, cwa, cwa2), weightedCost(cw, cwa, cwa2)},
		}
		for _, b := range []int{1, 3, 8, 16} {
			for _, p := range pairs {
				wantStarts, wantTotal, err := SolveReference(n, b, p.cost)
				if err != nil {
					t.Fatalf("%s/%s/b=%d: reference: %v", name, p.label, b, err)
				}
				for _, workers := range []int{1, 4} {
					prevW := parallel.SetWorkers(workers)
					starts, total, err := solveLayers(n, b, p.kernel)
					parallel.SetWorkers(prevW)
					if err != nil {
						t.Fatalf("%s/%s/b=%d/w=%d: %v", name, p.label, b, workers, err)
					}
					sameSolution(t, name+"/"+p.label, wantStarts, wantTotal, starts, total)
				}
			}
		}
	}
}

// TestSolveEdgeCases pins the rewritten driver's behaviour on the
// boundaries the seed handled: n=1, B>n, invalid inputs.
func TestSolveEdgeCases(t *testing.T) {
	unit := func(l, r int) float64 { return float64(r - l + 1) }
	if _, _, err := Solve(0, 3, unit); err == nil {
		t.Error("n=0: want error")
	}
	if _, _, err := Solve(5, 0, unit); err == nil {
		t.Error("B=0: want error")
	}
	starts, total, err := Solve(1, 1, unit)
	if err != nil || len(starts) != 1 || starts[0] != 0 || total != 1 {
		t.Errorf("n=1: starts=%v total=%v err=%v", starts, total, err)
	}
	// B > n must clamp, matching the reference.
	ws, wt, err := SolveReference(4, 9, unit)
	if err != nil {
		t.Fatal(err)
	}
	gs, gt, err := Solve(4, 9, unit)
	if err != nil {
		t.Fatal(err)
	}
	sameSolution(t, "clamp", ws, wt, gs, gt)
}
