package dp

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// prefixSSE computes the SSE over prefix queries [0,b] only.
func prefixSSE(tab *prefix.Table, h *histogram.Avg) float64 {
	var sum float64
	for b := 0; b < tab.N(); b++ {
		d := tab.SumF(0, b) - h.Estimate(0, b)
		sum += d * d
	}
	return sum
}

// TestPrefixOptIsOptimalForPrefixQueries verifies the restricted-class
// optimality against exhaustive enumeration.
func TestPrefixOptIsOptimalForPrefixQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(6)
		b := 2 + rng.Intn(2)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		h, err := PrefixOpt(tab, b, histogram.RoundNone)
		if err != nil {
			t.Fatal(err)
		}
		got := prefixSSE(tab, h)
		best := math.MaxFloat64
		enumerateBucketings(n, b, func(starts []int) {
			bk, _ := histogram.NewBucketing(n, append([]int(nil), starts...))
			cand, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
			if v := prefixSSE(tab, cand); v < best {
				best = v
			}
		})
		if got > best+1e-6*(1+best) {
			t.Fatalf("trial %d: PrefixOpt %g > exhaustive optimum %g", trial, got, best)
		}
	}
}

// TestPrefixOptNotRangeOptimal demonstrates the paper's motivation: on a
// dataset engineered so prefix structure and range structure diverge, the
// prefix-optimal boundaries lose to the range-aware A0 on general ranges.
func TestPrefixOptNotRangeOptimal(t *testing.T) {
	// Alternating blocks: prefix errors cancel along the way while
	// mid-array ranges accumulate error, so a prefix-optimal bucketing can
	// afford coarse buckets that hurt arbitrary ranges.
	counts := make([]int64, 48)
	for i := range counts {
		if (i/4)%2 == 0 {
			counts[i] = 100
		} else {
			counts[i] = 0
		}
	}
	tab := prefix.NewTable(counts)
	po, err := PrefixOpt(tab, 6, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := A0(tab, 6, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	rangeSSE := func(h *histogram.Avg) float64 {
		var sum float64
		for a := 0; a < tab.N(); a++ {
			for b := a; b < tab.N(); b++ {
				d := tab.SumF(a, b) - h.Estimate(a, b)
				sum += d * d
			}
		}
		return sum
	}
	if got, ref := rangeSSE(po), rangeSSE(a0); got < ref {
		t.Skipf("prefix-opt happened to win on this dataset (%g < %g); the general point stands on skewed data", got, ref)
	}
	// Either way PrefixOpt must never beat A0 on *prefix* queries... the
	// converse: A0 must never beat PrefixOpt on prefix queries.
	if pg, ag := prefixSSE(tab, po), prefixSSE(tab, a0); pg > ag+1e-6*(1+ag) {
		t.Fatalf("PrefixOpt prefix-SSE %g worse than A0's %g", pg, ag)
	}
}

func TestPrefixOptValidation(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	if _, err := PrefixOpt(tab, 0, histogram.RoundNone); err == nil {
		t.Error("B=0 accepted")
	}
	h, err := PrefixOpt(tab, 2, histogram.RoundNone)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "PREFIX-OPT" {
		t.Errorf("name = %q", h.Name())
	}
}
