package dp

import (
	"fmt"
	"math"

	"rangeagg/internal/parallel"
)

const inf = math.MaxFloat64

// rowKernel fills one contiguous span of a DP layer: for every cell
// i in [iLo, iHi) it must set cur[i] to the best cost of covering the
// first i values with exactly k buckets and choice[i] to the j achieving
// it (last bucket = [j, i−1]), scanning candidate boundaries j ascending
// over [jLo, min(i−1, jHi)] and reading the previous layer's row in prev.
//
// Kernels must preserve two invariants so that every kernel — serial,
// parallel, generic or specialized — produces bit-identical tables:
//
//  1. candidates are scanned in ascending j with a strict `c < best`
//     improvement test (first winner kept on ties), and
//  2. a candidate may be skipped only when prev[j] ≥ best, which is
//     admissible because bucket costs are non-negative: the candidate's
//     total prev[j]+cost can then never pass the strict test.
//
// Skip rule 2 also subsumes the infeasible-state check: infeasible prev
// entries hold +inf and are never evaluated.
type rowKernel func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32)

// chunkGrain is the number of DP cells a worker claims at a time. Cells
// have linearly growing cost in i, so dynamic chunking keeps the layer
// balanced; 32 cells amortize the atomic fetch without starving workers.
const chunkGrain = 32

// solveLayers is the shared driver behind every interval dynamic program
// in this package. It runs the O(n²·B) DP with two rolling 1-D rows
// (instead of full (B+1)×(n+1) tables) and a flattened int32 backtracking
// matrix, parallelizing each layer over the shared worker pool: every cell
// of layer k depends only on layer k−1, so rows within a layer are
// embarrassingly parallel. Results are identical at any pool width because
// cells are assigned by index and each kernel call is deterministic.
func solveLayers(n, maxBuckets int, kernel rowKernel) (starts []int, total float64, err error) {
	starts, total, _, err = solveLayersCurve(n, maxBuckets, kernel)
	return starts, total, err
}

// solveLayersCurve is solveLayers, additionally surfacing the per-layer
// optima finals[k] = best cost of covering all n values with exactly k
// buckets (finals[0] = +inf). The layer DP computes these anyway; the
// segment allocator reads them as the error-vs-space curve of one
// segment.
func solveLayersCurve(n, maxBuckets int, kernel rowKernel) (starts []int, total float64, finals []float64, err error) {
	if n <= 0 {
		return nil, 0, nil, fmt.Errorf("dp: empty domain (n=%d)", n)
	}
	if maxBuckets <= 0 {
		return nil, 0, nil, fmt.Errorf("dp: need at least one bucket, got %d", maxBuckets)
	}
	if maxBuckets > n {
		maxBuckets = n
	}
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		prev[i] = inf
	}
	prev[0] = 0 // layer 0: zero buckets cover exactly zero values
	// choice[k*(n+1)+i] is the backtracking pointer of cell (k, i).
	choice := make([]int32, (maxBuckets+1)*(n+1))
	finals = make([]float64, maxBuckets+1)
	finals[0] = inf
	for k := 1; k <= maxBuckets; k++ {
		// Feasible window of the previous layer: layer 0 is feasible only
		// at j=0; layer k−1 ≥ 1 is feasible exactly on [k−1, n]. Scanning
		// only this window replaces the seed's linear skip over inf cells.
		jLo, jHi := k-1, n
		if k == 1 {
			jHi = 0
		}
		row := choice[k*(n+1) : (k+1)*(n+1)]
		for i := 0; i < k; i++ {
			cur[i] = inf
			row[i] = -1
		}
		cells := n - k + 1 // cells i = k..n
		parallel.ForEachChunk(cells, chunkGrain, func(lo, hi int) {
			kernel(jLo, jHi, k+lo, k+hi, prev, cur, row)
		})
		finals[k] = cur[n]
		prev, cur = cur, prev
	}
	bestK, bestCost := 0, inf
	for k := 1; k <= maxBuckets; k++ {
		if finals[k] < bestCost {
			bestCost, bestK = finals[k], k
		}
	}
	if bestK == 0 {
		return nil, 0, nil, fmt.Errorf("dp: no feasible bucketing for n=%d B=%d", n, maxBuckets)
	}
	starts = make([]int, bestK)
	i := n
	for k := bestK; k >= 1; k-- {
		j := int(choice[k*(n+1)+i])
		starts[k-1] = j
		i = j
	}
	return starts, bestCost, finals, nil
}

// closureKernel adapts an arbitrary CostFunc to a rowKernel. Specialized
// methods (SAP0, SAP1, A0, the weighted V-optimal family) bypass this via
// the inlined kernels in kernels.go; everything else (SAP2, PREFIX-OPT,
// external callers of Solve) pays one closure call per candidate.
func closureKernel(cost CostFunc) rowKernel {
	return func(jLo, jHi, iLo, iHi int, prev, cur []float64, choice []int32) {
		for i := iLo; i < iHi; i++ {
			jMax := i - 1
			if jMax > jHi {
				jMax = jHi
			}
			best, bestJ := inf, int32(-1)
			for j := jLo; j <= jMax; j++ {
				ej := prev[j]
				if ej >= best {
					continue
				}
				c := ej + cost(j, i-1)
				if c < best {
					best, bestJ = c, int32(j)
				}
			}
			cur[i] = best
			choice[i] = bestJ
		}
	}
}

// Solve finds starts of the partition of [0,n) into at most maxBuckets
// non-empty contiguous buckets minimizing Σ cost(bucket), by the standard
// O(n²·B) interval dynamic program. The cost function must be
// non-negative (the pruning rule relies on it). Layers are parallelized
// over the shared worker pool; the result is identical at any pool width.
func Solve(n, maxBuckets int, cost CostFunc) (starts []int, total float64, err error) {
	return solveLayers(n, maxBuckets, closureKernel(cost))
}

// SolveCurve runs the same layered DP as Solve but returns the whole
// error-vs-space curve instead of just its minimum: curve[k] is the
// optimal cost of partitioning [0,n) into exactly k non-empty contiguous
// buckets, for k = 1..min(maxBuckets, n); curve[0] is +inf (zero buckets
// cover nothing). The curve is what a budget allocator needs — marginal
// gains curve[k]−curve[k+1] per added bucket — and costs no more than one
// Solve (the per-layer optima fall out of the rolling rows).
//
// The curve is not forced monotone: for costs that are not non-increasing
// in bucket count the caller applies a running minimum.
func SolveCurve(n, maxBuckets int, cost CostFunc) ([]float64, error) {
	_, _, finals, err := solveLayersCurve(n, maxBuckets, closureKernel(cost))
	return finals, err
}

// SolveReference is the seed implementation of Solve — full 2-D tables, a
// serial scan, one closure call per inner iteration, no pruning. It is
// retained verbatim as the correctness oracle for the equivalence
// property tests and as the baseline side of the construction benchmarks
// (BENCH_dp.json); new code should call Solve.
func SolveReference(n, maxBuckets int, cost CostFunc) (starts []int, total float64, err error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("dp: empty domain (n=%d)", n)
	}
	if maxBuckets <= 0 {
		return nil, 0, fmt.Errorf("dp: need at least one bucket, got %d", maxBuckets)
	}
	if maxBuckets > n {
		maxBuckets = n
	}
	e := make([][]float64, maxBuckets+1)
	choice := make([][]int, maxBuckets+1)
	for k := range e {
		e[k] = make([]float64, n+1)
		choice[k] = make([]int, n+1)
		for i := range e[k] {
			e[k][i] = inf
			choice[k][i] = -1
		}
	}
	e[0][0] = 0
	for k := 1; k <= maxBuckets; k++ {
		for i := k; i <= n; i++ {
			best := inf
			bestJ := -1
			for j := k - 1; j < i; j++ {
				if e[k-1][j] == inf {
					continue
				}
				c := e[k-1][j] + cost(j, i-1)
				if c < best {
					best, bestJ = c, j
				}
			}
			e[k][i] = best
			choice[k][i] = bestJ
		}
	}
	bestK, bestCost := 0, inf
	for k := 1; k <= maxBuckets; k++ {
		if e[k][n] < bestCost {
			bestCost, bestK = e[k][n], k
		}
	}
	if bestK == 0 {
		return nil, 0, fmt.Errorf("dp: no feasible bucketing for n=%d B=%d", n, maxBuckets)
	}
	starts = make([]int, bestK)
	i := n
	for k := bestK; k >= 1; k-- {
		j := choice[k][i]
		starts[k-1] = j
		i = j
	}
	return starts, bestCost, nil
}
