package dp

import (
	"fmt"
	"testing"

	"rangeagg/internal/dataset"
	"rangeagg/internal/prefix"
)

// The three DP implementations, worst (seed) to best: the seed's 2-D
// tables with closure dispatch (SolveReference), the rolling-row pruned
// driver still paying a closure per candidate (Solve), and the fully
// inlined prefix-moment kernels (what dp.SAP0/SAP1/A0/PointOpt run).
// BENCH_dp.json records a measured triple.
func benchSolvers(b *testing.B, makeCost func(*prefix.Table) CostFunc, makeKernel func(*prefix.Table) rowKernel) {
	for _, n := range []int{512, 1024, 2048} {
		d, err := dataset.Zipf(dataset.ZipfConfig{N: n, Alpha: 1.8, MaxCount: 1000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		tab := prefix.NewTable(d.Counts)
		const buckets = 10
		b.Run(fmt.Sprintf("reference/n=%d", n), func(b *testing.B) {
			cost := makeCost(tab)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := SolveReference(n, buckets, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("closure/n=%d", n), func(b *testing.B) {
			cost := makeCost(tab)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Solve(n, buckets, cost); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("kernel/n=%d", n), func(b *testing.B) {
			kernel := makeKernel(tab)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := solveLayers(n, buckets, kernel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveSAP0(b *testing.B) { benchSolvers(b, SAP0Cost, sap0Kernel) }

func BenchmarkSolveSAP1(b *testing.B) { benchSolvers(b, SAP1Cost, sap1Kernel) }
