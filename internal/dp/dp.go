// Package dp implements the polynomial-time histogram construction
// algorithms of the paper: the O(n²B) dynamic programs for SAP0 and SAP1
// (optimal, via the decomposition lemma), the A0 heuristic (same DP with
// the cross term ignored), the POINT-OPT weighted V-optimal baseline, and
// the classical equi-width / equi-depth / maxdiff heuristics.
//
// All of them share one generic interval dynamic program: given a cost
// function cost(l, r) for making [l,r] a single bucket such that the total
// objective is the sum of bucket costs, Solve finds the optimal partition
// of [0,n) into at most B buckets.
package dp

import (
	"fmt"
	"math"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// CostFunc returns the cost of making the inclusive interval [l,r] a
// single bucket. It must be non-negative.
type CostFunc func(l, r int) float64

// Solve finds starts of the partition of [0,n) into at most maxBuckets
// non-empty contiguous buckets minimizing Σ cost(bucket), by the standard
// O(n²·B) interval dynamic program.
func Solve(n, maxBuckets int, cost CostFunc) (starts []int, total float64, err error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("dp: empty domain (n=%d)", n)
	}
	if maxBuckets <= 0 {
		return nil, 0, fmt.Errorf("dp: need at least one bucket, got %d", maxBuckets)
	}
	if maxBuckets > n {
		maxBuckets = n
	}
	const inf = math.MaxFloat64
	// e[k][i]: best cost of covering the first i values with exactly k
	// buckets; choice[k][i]: the j achieving it (last bucket = [j, i-1]).
	e := make([][]float64, maxBuckets+1)
	choice := make([][]int, maxBuckets+1)
	for k := range e {
		e[k] = make([]float64, n+1)
		choice[k] = make([]int, n+1)
		for i := range e[k] {
			e[k][i] = inf
			choice[k][i] = -1
		}
	}
	e[0][0] = 0
	for k := 1; k <= maxBuckets; k++ {
		for i := k; i <= n; i++ {
			best := inf
			bestJ := -1
			for j := k - 1; j < i; j++ {
				if e[k-1][j] == inf {
					continue
				}
				c := e[k-1][j] + cost(j, i-1)
				if c < best {
					best, bestJ = c, j
				}
			}
			e[k][i] = best
			choice[k][i] = bestJ
		}
	}
	bestK, bestCost := 0, inf
	for k := 1; k <= maxBuckets; k++ {
		if e[k][n] < bestCost {
			bestCost, bestK = e[k][n], k
		}
	}
	if bestK == 0 {
		return nil, 0, fmt.Errorf("dp: no feasible bucketing for n=%d B=%d", n, maxBuckets)
	}
	starts = make([]int, bestK)
	i := n
	for k := bestK; k >= 1; k-- {
		j := choice[k][i]
		starts[k-1] = j
		i = j
	}
	return starts, bestCost, nil
}

// SAP0 constructs the range-optimal SAP0 histogram (Theorem 6) with at
// most b buckets: O(n²B) time via the decomposition lemma.
func SAP0(tab *prefix.Table, b int) (*histogram.SAP0, error) {
	n := tab.N()
	cost := func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixVar(l, r)*float64(n-1-r) +
			tab.PrefixVar(l, r)*float64(l)
	}
	starts, _, err := Solve(n, b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP0FromBounds(tab, bk, "SAP0")
}

// SAP1 constructs the range-optimal SAP1 histogram (Theorem 8) with at
// most b buckets.
func SAP1(tab *prefix.Table, b int) (*histogram.SAP1, error) {
	n := tab.N()
	cost := func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixRSS(l, r)*float64(n-1-r) +
			tab.PrefixRSS(l, r)*float64(l)
	}
	starts, _, err := Solve(n, b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP1FromBounds(tab, bk, "SAP1")
}

// A0 constructs the paper's A0 heuristic: the SAP0-style dynamic program
// over the average-only representation, with the (non-vanishing) cross
// term of equation (2) ignored. The suffix and prefix deviations of a
// bucket against the average-based answering both equal Σ e'² over the
// bucket's local prefix errors (DESIGN.md §3.3), so the per-bucket cost is
// intra + Σe'²·(n−1−r) + Σe'²·l. The result is a 2B-word average
// histogram; it is not optimal.
func A0(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	n := tab.N()
	cost := func(l, r int) float64 {
		_, _, sumE2 := tab.AvgFit(l, r)
		return tab.IntraCost(l, r) + sumE2*float64(n-1-r) + sumE2*float64(l)
	}
	starts, _, err := Solve(n, b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "A0")
}

// PrefixOpt constructs the histogram that is optimal for *prefix* range
// queries only — queries of the form [0,b]. This is the restricted query
// class (hierarchical/prefix ranges, the paper's reference [9]) that
// earlier optimality results covered; the paper's point is that it is not
// optimal for arbitrary ranges. The error of query [0,b] is the single
// prefix error e_{b+1}, so the objective Σ_t e_t² is additive over
// buckets with no cross terms and the plain O(n²B) DP is exact.
func PrefixOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	cost := func(l, r int) float64 {
		_, _, sumE2 := tab.AvgFit(l, r)
		return sumE2
	}
	starts, _, err := Solve(tab.N(), b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(tab.N(), starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "PREFIX-OPT")
}

// VOpt constructs the classical (unweighted) V-optimal histogram of [6]:
// bucket boundaries minimizing Σ_i (A[i] − avg(buck(i)))², i.e. optimal
// for uniform point queries. Provided for ablations.
func VOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	n := tab.N()
	counts := tab.Counts()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return weightedVOpt(tab, counts, w, b, mode, "V-OPT")
}

// PointOpt constructs the paper's POINT-OPT baseline: the V-optimal
// histogram with per-point probabilities adjusted to the chance that the
// point is covered by a uniformly random range query, w_i ∝ (i+1)(n−i).
// The bucket value is the weighted average and the construction minimizes
// the weighted point-query error — not the range SSE, which is the point
// of the comparison.
func PointOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	n := tab.N()
	counts := tab.Counts()
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i+1) * float64(n-i)
	}
	return weightedVOpt(tab, counts, w, b, mode, "POINT-OPT")
}

// weightedVOpt runs the weighted V-optimal DP: bucket value = weighted
// mean, bucket cost = weighted variance, both O(1) from moment tables.
func weightedVOpt(tab *prefix.Table, counts []int64, w []float64, b int, mode histogram.Rounding, label string) (*histogram.Avg, error) {
	n := len(counts)
	cw := make([]float64, n+1)  // Σ w
	cwa := make([]float64, n+1) // Σ w·A
	cwa2 := make([]float64, n+1)
	for i := 0; i < n; i++ {
		a := float64(counts[i])
		cw[i+1] = cw[i] + w[i]
		cwa[i+1] = cwa[i] + w[i]*a
		cwa2[i+1] = cwa2[i] + w[i]*a*a
	}
	cost := func(l, r int) float64 {
		sw := cw[r+1] - cw[l]
		swa := cwa[r+1] - cwa[l]
		swa2 := cwa2[r+1] - cwa2[l]
		if sw == 0 {
			return 0
		}
		c := swa2 - swa*swa/sw
		if c < 0 {
			c = 0
		}
		return c
	}
	starts, _, err := Solve(n, b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	values := make([]float64, bk.NumBuckets())
	for i := range values {
		lo, hi := bk.Bounds(i)
		sw := cw[hi+1] - cw[lo]
		swa := cwa[hi+1] - cwa[lo]
		if sw == 0 {
			values[i] = tab.Avg(lo, hi)
		} else {
			values[i] = swa / sw
		}
	}
	return histogram.NewAvg(bk, values, mode, label)
}

// EquiWidthHist returns the equi-width average histogram baseline.
func EquiWidthHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.EquiWidth(tab.N(), b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "EQUI-WIDTH")
}

// EquiDepthHist returns the equi-depth average histogram baseline.
func EquiDepthHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.EquiDepth(tab, b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "EQUI-DEPTH")
}

// MaxDiffHist returns the maxdiff average histogram baseline.
func MaxDiffHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.MaxDiff(tab.Counts(), b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "MAXDIFF")
}

// SAP2 constructs the range-optimal SAP2 histogram — the quadratic-model
// member of the paper's §2.2.2 family — with at most b buckets, by the
// same decomposition-lemma dynamic program (quadratic LS residuals sum to
// zero, so the cross terms still vanish).
func SAP2(tab *prefix.Table, b int) (*histogram.SAP2, error) {
	n := tab.N()
	cost := func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixQuadRSS(l, r)*float64(n-1-r) +
			tab.PrefixQuadRSS(l, r)*float64(l)
	}
	starts, _, err := Solve(n, b, cost)
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP2FromBounds(tab, bk, "SAP2")
}
