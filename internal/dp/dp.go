// Package dp implements the polynomial-time histogram construction
// algorithms of the paper: the O(n²B) dynamic programs for SAP0 and SAP1
// (optimal, via the decomposition lemma), the A0 heuristic (same DP with
// the cross term ignored), the POINT-OPT weighted V-optimal baseline, and
// the classical equi-width / equi-depth / maxdiff heuristics.
//
// All of them share one generic interval dynamic program: given a cost
// function cost(l, r) for making [l,r] a single bucket such that the total
// objective is the sum of bucket costs, Solve finds the optimal partition
// of [0,n) into at most B buckets.
package dp

import (
	"strings"
	"time"

	"rangeagg/internal/histogram"
	"rangeagg/internal/obs"
	"rangeagg/internal/prefix"
)

// timedSolve runs the shared layer driver under a per-kernel latency
// histogram (rangeagg_dp_solve_seconds{kernel=...}) — the DP core is
// where a synopsis build spends almost all of its time, so this is the
// number the bench-regression gate and /metrics.prom watch.
func timedSolve(kernel string, n, b int, k rowKernel) ([]int, float64, error) {
	h := obs.Default.Histogram("rangeagg_dp_solve_seconds", obs.L("kernel", strings.ToLower(kernel))...)
	defer h.Since(time.Now())
	return solveLayers(n, b, k)
}

// CostFunc returns the cost of making the inclusive interval [l,r] a
// single bucket. It must be non-negative.
type CostFunc func(l, r int) float64

// SAP0 constructs the range-optimal SAP0 histogram (Theorem 6) with at
// most b buckets: O(n²B) time via the decomposition lemma, run through
// the inlined SAP0 kernel (kernels.go) on the parallel layer driver.
func SAP0(tab *prefix.Table, b int) (*histogram.SAP0, error) {
	n := tab.N()
	starts, _, err := timedSolve("SAP0", n, b, sap0Kernel(tab))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP0FromBounds(tab, bk, "SAP0")
}

// SAP1 constructs the range-optimal SAP1 histogram (Theorem 8) with at
// most b buckets.
func SAP1(tab *prefix.Table, b int) (*histogram.SAP1, error) {
	n := tab.N()
	starts, _, err := timedSolve("SAP1", n, b, sap1Kernel(tab))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP1FromBounds(tab, bk, "SAP1")
}

// A0 constructs the paper's A0 heuristic: the SAP0-style dynamic program
// over the average-only representation, with the (non-vanishing) cross
// term of equation (2) ignored. The suffix and prefix deviations of a
// bucket against the average-based answering both equal Σ e'² over the
// bucket's local prefix errors (DESIGN.md §3.3), so the per-bucket cost is
// intra + Σe'²·(n−1−r) + Σe'²·l. The result is a 2B-word average
// histogram; it is not optimal.
func A0(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	n := tab.N()
	starts, _, err := timedSolve("A0", n, b, a0Kernel(tab))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "A0")
}

// PrefixOpt constructs the histogram that is optimal for *prefix* range
// queries only — queries of the form [0,b]. This is the restricted query
// class (hierarchical/prefix ranges, the paper's reference [9]) that
// earlier optimality results covered; the paper's point is that it is not
// optimal for arbitrary ranges. The error of query [0,b] is the single
// prefix error e_{b+1}, so the objective Σ_t e_t² is additive over
// buckets with no cross terms and the plain O(n²B) DP is exact.
func PrefixOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	cost := func(l, r int) float64 {
		_, _, sumE2 := tab.AvgFit(l, r)
		return sumE2
	}
	starts, _, err := timedSolve("PREFIX-OPT", tab.N(), b, closureKernel(cost))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(tab.N(), starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "PREFIX-OPT")
}

// VOpt constructs the classical (unweighted) V-optimal histogram of [6]:
// bucket boundaries minimizing Σ_i (A[i] − avg(buck(i)))², i.e. optimal
// for uniform point queries. Provided for ablations.
func VOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	n := tab.N()
	counts := tab.Counts()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return weightedVOpt(tab, counts, w, b, mode, "V-OPT")
}

// PointOpt constructs the paper's POINT-OPT baseline: the V-optimal
// histogram with per-point probabilities adjusted to the chance that the
// point is covered by a uniformly random range query, w_i ∝ (i+1)(n−i).
// The bucket value is the weighted average and the construction minimizes
// the weighted point-query error — not the range SSE, which is the point
// of the comparison.
func PointOpt(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	return weightedVOpt(tab, tab.Counts(), PointOptWeights(tab.N()), b, mode, "POINT-OPT")
}

// PointOptWeights returns POINT-OPT's per-point weights w_i ∝ (i+1)(n−i):
// the (unnormalized) probability that point i is covered by a uniformly
// random range query.
func PointOptWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i+1) * float64(n-i)
	}
	return w
}

// WeightedMomentTables precomputes the Σw, Σw·A, Σw·A² prefix tables the
// weighted V-optimal cost (weightedKernel, WeightedVarCost) reads.
func WeightedMomentTables(counts []int64, w []float64) (cw, cwa, cwa2 []float64) {
	n := len(counts)
	cw = make([]float64, n+1)  // Σ w
	cwa = make([]float64, n+1) // Σ w·A
	cwa2 = make([]float64, n+1)
	for i := 0; i < n; i++ {
		a := float64(counts[i])
		cw[i+1] = cw[i] + w[i]
		cwa[i+1] = cwa[i] + w[i]*a
		cwa2[i+1] = cwa2[i] + w[i]*a*a
	}
	return cw, cwa, cwa2
}

// weightedVOpt runs the weighted V-optimal DP: bucket value = weighted
// mean, bucket cost = weighted variance, both O(1) from moment tables.
func weightedVOpt(tab *prefix.Table, counts []int64, w []float64, b int, mode histogram.Rounding, label string) (*histogram.Avg, error) {
	n := len(counts)
	cw, cwa, cwa2 := WeightedMomentTables(counts, w)
	starts, _, err := timedSolve(label, n, b, weightedKernel(cw, cwa, cwa2))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	values := make([]float64, bk.NumBuckets())
	for i := range values {
		lo, hi := bk.Bounds(i)
		sw := cw[hi+1] - cw[lo]
		swa := cwa[hi+1] - cwa[lo]
		if sw == 0 {
			values[i] = tab.Avg(lo, hi)
		} else {
			values[i] = swa / sw
		}
	}
	return histogram.NewAvg(bk, values, mode, label)
}

// EquiWidthHist returns the equi-width average histogram baseline.
func EquiWidthHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.EquiWidth(tab.N(), b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "EQUI-WIDTH")
}

// EquiDepthHist returns the equi-depth average histogram baseline.
func EquiDepthHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.EquiDepth(tab, b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "EQUI-DEPTH")
}

// MaxDiffHist returns the maxdiff average histogram baseline.
func MaxDiffHist(tab *prefix.Table, b int, mode histogram.Rounding) (*histogram.Avg, error) {
	bk, err := histogram.MaxDiff(tab.Counts(), b)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvgFromBounds(tab, bk, mode, "MAXDIFF")
}

// SAP2 constructs the range-optimal SAP2 histogram — the quadratic-model
// member of the paper's §2.2.2 family — with at most b buckets, by the
// same decomposition-lemma dynamic program (quadratic LS residuals sum to
// zero, so the cross terms still vanish).
func SAP2(tab *prefix.Table, b int) (*histogram.SAP2, error) {
	n := tab.N()
	cost := func(l, r int) float64 {
		return tab.IntraCost(l, r) +
			tab.SuffixQuadRSS(l, r)*float64(n-1-r) +
			tab.PrefixQuadRSS(l, r)*float64(l)
	}
	starts, _, err := timedSolve("SAP2", n, b, closureKernel(cost))
	if err != nil {
		return nil, err
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, err
	}
	return histogram.NewSAP2FromBounds(tab, bk, "SAP2")
}
