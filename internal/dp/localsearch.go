package dp

import (
	"fmt"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// ImproveBoundaries applies the local-search improvement the paper's §4
// mentions ("heuristics and local search improvements"): coordinate
// descent on the bucket boundaries of an average histogram under the
// unrounded range SSE. Each pass moves every interior boundary to its
// best position between its neighbouring boundaries (all candidates
// scored with the O(n) prefix-identity evaluator); passes repeat until no
// boundary moves or maxPasses is reached. The result's values are the
// true bucket averages for the final boundaries.
//
// It returns the improved histogram and the number of passes that made a
// change. The SSE never increases.
func ImproveBoundaries(tab *prefix.Table, h *histogram.Avg, maxPasses int) (*histogram.Avg, int, error) {
	if h.N() != tab.N() {
		return nil, 0, fmt.Errorf("dp: histogram n=%d does not match data n=%d", h.N(), tab.N())
	}
	if maxPasses <= 0 {
		maxPasses = 8
	}
	n := tab.N()
	starts := append([]int(nil), h.Buckets.Starts...)
	nb := len(starts)
	best := avgSSEForStarts(tab, starts)
	passes := 0
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 1; i < nb; i++ {
			lo := starts[i-1] + 1
			hi := n - 1
			if i+1 < nb {
				hi = starts[i+1] - 1
			}
			bestPos, bestVal := starts[i], best
			orig := starts[i]
			for pos := lo; pos <= hi; pos++ {
				if pos == orig {
					continue
				}
				starts[i] = pos
				if v := avgSSEForStarts(tab, starts); v < bestVal {
					bestVal, bestPos = v, pos
				}
			}
			starts[i] = bestPos
			if bestPos != orig {
				best = bestVal
				improved = true
			}
		}
		if !improved {
			break
		}
		passes++
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		return nil, passes, err
	}
	out, err := histogram.NewAvgFromBounds(tab, bk, h.Mode, h.Label+"-ls")
	if err != nil {
		return nil, passes, err
	}
	return out, passes, nil
}

// avgSSEForStarts evaluates the unrounded range SSE of the average
// histogram with the given starts in O(n) via the prefix-error identity,
// without building a histogram object.
func avgSSEForStarts(tab *prefix.Table, starts []int) float64 {
	n := tab.N()
	var sumE, sumE2 float64
	for bi := 0; bi < len(starts); bi++ {
		lo := starts[bi]
		hi := n - 1
		if bi+1 < len(starts) {
			hi = starts[bi+1] - 1
		}
		_, e, e2 := tab.AvgFit(lo, hi)
		// AvgFit sums over the window [lo, hi+1]; its endpoints are zero,
		// and adjacent buckets share exactly one zero endpoint, so plain
		// accumulation double-counts nothing.
		sumE += e
		sumE2 += e2
	}
	N := float64(n + 1)
	sse := N*sumE2 - sumE*sumE
	if sse < 0 {
		sse = 0
	}
	return sse
}
