package dp

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

func TestAvgSSEForStartsMatchesEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(25)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		starts := []int{0}
		for pos := 1; pos < n; pos++ {
			if rng.Intn(4) == 0 {
				starts = append(starts, pos)
			}
		}
		bk, _ := histogram.NewBucketing(n, starts)
		h, _ := histogram.NewAvgFromBounds(tab, bk, histogram.RoundNone, "x")
		want := sse.Of(tab, h)
		got := avgSSEForStarts(tab, starts)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("trial %d: fast %g, evaluator %g", trial, got, want)
		}
	}
}

func TestImproveBoundariesNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	for trial := 0; trial < 15; trial++ {
		n := 12 + rng.Intn(30)
		counts := randCounts(rng, n)
		tab := prefix.NewTable(counts)
		h, err := EquiWidthHist(tab, 2+rng.Intn(5), histogram.RoundNone)
		if err != nil {
			t.Fatal(err)
		}
		improved, _, err := ImproveBoundaries(tab, h, 5)
		if err != nil {
			t.Fatal(err)
		}
		before := sse.Of(tab, h)
		after := sse.Of(tab, improved)
		if after > before+1e-8*(1+before) {
			t.Fatalf("trial %d: local search worsened %g → %g", trial, before, after)
		}
	}
}

func TestImproveBoundariesReachesGoodSolutions(t *testing.T) {
	// On the skewed Zipf shape, equi-width is terrible; local search from
	// it should close most of the gap to A0.
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(2000 / (i + 1))
	}
	tab := prefix.NewTable(counts)
	ew, _ := EquiWidthHist(tab, 8, histogram.RoundNone)
	improved, passes, err := ImproveBoundaries(tab, ew, 10)
	if err != nil {
		t.Fatal(err)
	}
	if passes == 0 {
		t.Fatal("no passes changed anything on a clearly improvable start")
	}
	a0, _ := A0(tab, 8, histogram.RoundNone)
	ewSSE := sse.Of(tab, ew)
	lsSSE := sse.Of(tab, improved)
	a0SSE := sse.Of(tab, a0)
	if lsSSE > ewSSE/2 {
		t.Errorf("local search improved too little: %g → %g", ewSSE, lsSSE)
	}
	if lsSSE > 10*a0SSE {
		t.Errorf("local search SSE %g still ≫ A0 %g", lsSSE, a0SSE)
	}
	t.Logf("equi-width %.3g → local search %.3g (A0 %.3g)", ewSSE, lsSSE, a0SSE)
}

func TestImproveBoundariesValidation(t *testing.T) {
	tab := prefix.NewTable([]int64{1, 2, 3})
	other := prefix.NewTable([]int64{1, 2})
	h, _ := EquiWidthHist(other, 2, histogram.RoundNone)
	if _, _, err := ImproveBoundaries(tab, h, 3); err == nil {
		t.Error("mismatched sizes accepted")
	}
	// Single bucket: nothing to move, no error.
	one, _ := EquiWidthHist(tab, 1, histogram.RoundNone)
	out, passes, err := ImproveBoundaries(tab, one, 3)
	if err != nil || passes != 0 || out.Buckets.NumBuckets() != 1 {
		t.Errorf("single-bucket case: passes=%d err=%v", passes, err)
	}
}
