// Package codec serializes synopses behind a family-tagged envelope so a
// single Read call can restore any synopsis this module builds. It is the
// wire form shared by the public facade (rangeagg.WriteSynopsis /
// ReadSynopsis), the serving layer's synopsis-export endpoint, and the
// synbuild/synquery tools. Family dispatch comes from the method
// registry's family codecs (method.RegisterFamily); this package holds no
// per-family knowledge.
package codec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rangeagg/internal/method"
)

// envelope wraps a serialized synopsis with its family so Read can
// dispatch.
type envelope struct {
	Family  string          `json:"family"` // "histogram" or "wavelet"
	Payload json.RawMessage `json:"payload"`
}

// Write serializes any estimator built by this module as JSON. Estimators
// with no serialization form (foreign implementations, composite 2-D
// synopses) are rejected with an error.
func Write(w io.Writer, s method.Estimator) error {
	for _, fc := range method.Families() {
		if !fc.CanEncode(s) {
			continue
		}
		var payload bytes.Buffer
		if err := fc.Encode(&payload, s); err != nil {
			return fmt.Errorf("rangeagg: synopsis type %T is not serializable: %w", s, err)
		}
		return json.NewEncoder(w).Encode(envelope{Family: fc.Family, Payload: payload.Bytes()})
	}
	return fmt.Errorf("rangeagg: synopsis type %T is not serializable", s)
}

// Read deserializes a synopsis written by Write.
func Read(r io.Reader) (method.Estimator, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("rangeagg: decoding synopsis envelope: %w", err)
	}
	fc, ok := method.FamilyByName(env.Family)
	if !ok {
		return nil, fmt.Errorf("rangeagg: unknown synopsis family %q", env.Family)
	}
	return fc.Decode(bytes.NewReader(env.Payload))
}
