// Package codec serializes synopses behind a family-tagged envelope so a
// single Read call can restore any synopsis this module builds. It is the
// wire form shared by the public facade (rangeagg.WriteSynopsis /
// ReadSynopsis), the serving layer's synopsis-export endpoint, and the
// synbuild/synquery tools.
package codec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"rangeagg/internal/build"
	"rangeagg/internal/histogram"
	"rangeagg/internal/wavelet"
)

// envelope wraps a serialized synopsis with its family so Read can
// dispatch.
type envelope struct {
	Family  string          `json:"family"` // "histogram" or "wavelet"
	Payload json.RawMessage `json:"payload"`
}

// Write serializes any estimator built by this module as JSON. Estimators
// with no serialization form (foreign implementations, composite 2-D
// synopses) are rejected with an error.
func Write(w io.Writer, s build.Estimator) error {
	var payload bytes.Buffer
	var family string
	switch v := s.(type) {
	case *wavelet.DataSynopsis, *wavelet.PrefixSynopsis, *wavelet.AA2D:
		family = "wavelet"
		if err := wavelet.WriteJSON(&payload, v); err != nil {
			return err
		}
	case histogram.Estimator:
		// One interface check covers the whole histogram family;
		// histogram.Encode rejects members with no wire form.
		family = "histogram"
		if err := histogram.WriteJSON(&payload, v); err != nil {
			return fmt.Errorf("rangeagg: synopsis type %T is not serializable: %w", s, err)
		}
	default:
		return fmt.Errorf("rangeagg: synopsis type %T is not serializable", s)
	}
	return json.NewEncoder(w).Encode(envelope{Family: family, Payload: payload.Bytes()})
}

// Read deserializes a synopsis written by Write.
func Read(r io.Reader) (build.Estimator, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("rangeagg: decoding synopsis envelope: %w", err)
	}
	switch env.Family {
	case "histogram":
		est, err := histogram.ReadJSON(bytes.NewReader(env.Payload))
		if err != nil {
			return nil, err
		}
		return est, nil
	case "wavelet":
		v, err := wavelet.ReadJSON(bytes.NewReader(env.Payload))
		if err != nil {
			return nil, err
		}
		s, ok := v.(build.Estimator)
		if !ok {
			return nil, fmt.Errorf("rangeagg: decoded wavelet %T is not a synopsis", v)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("rangeagg: unknown synopsis family %q", env.Family)
	}
}
