package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})

	// An observation exactly on a bound lands in that bound's bucket
	// (bounds are inclusive upper limits, matching Prometheus `le`).
	h.Observe(1 * time.Millisecond)   // == bounds[0]
	h.Observe(500 * time.Microsecond) // < bounds[0]
	h.Observe(5 * time.Millisecond)   // (bounds[0], bounds[1]]
	h.Observe(50 * time.Millisecond)  // (bounds[1], bounds[2]]
	h.Observe(2 * time.Second)        // overflow
	h.Observe(-1 * time.Second)       // clamped to 0, first bucket

	snap := h.Snapshot()
	want := []int64{3, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 6 {
		t.Errorf("count = %d, want 6", snap.Count)
	}
	if snap.MaxSeconds != 2 {
		t.Errorf("max = %g, want 2", snap.MaxSeconds)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}

	// 100 observations spread 1..100ms: quantiles should land in the
	// right order of magnitude despite bucketing.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	snap := h.Snapshot()
	p50 := snap.Quantile(0.50)
	p99 := snap.Quantile(0.99)
	if p50 < 0.02 || p50 > 0.07 {
		t.Errorf("p50 = %gs, want ~0.05s", p50)
	}
	if p99 < 0.06 || p99 > 0.1 {
		t.Errorf("p99 = %gs, want ~0.099s", p99)
	}
	if p99 < p50 {
		t.Errorf("p99 %g < p50 %g", p99, p50)
	}
	// Quantiles never exceed the observed maximum.
	if q := snap.Quantile(1.0); q > snap.MaxSeconds {
		t.Errorf("p100 = %g beyond max %g", q, snap.MaxSeconds)
	}
	if mean := snap.Mean(); mean < 0.04 || mean > 0.06 {
		t.Errorf("mean = %gs, want ~0.0505s", mean)
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001})
	h.Observe(5 * time.Second)
	if got := h.Snapshot().Quantile(0.5); got != 5 {
		t.Errorf("overflow quantile = %g, want the observed max 5", got)
	}
}

func TestNewHistogramPanicsOnUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-ascending bounds")
		}
	}()
	NewHistogram([]float64{0.1, 0.1})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("requests_total", L("endpoint", "query")...)
	c2 := r.Counter("requests_total", L("endpoint", "query")...)
	if c1 != c2 {
		t.Error("same (name, labels) returned distinct counters")
	}
	if c3 := r.Counter("requests_total", L("endpoint", "health")...); c3 == c1 {
		t.Error("different labels returned the same counter")
	}
	// Label order does not create a new series.
	h1 := r.Histogram("latency_seconds", L("a", "1", "b", "2")...)
	h2 := r.Histogram("latency_seconds", L("b", "2", "a", "1")...)
	if h1 != h2 {
		t.Error("label order created a second series")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("widgets_total")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Histogram("widgets_total")
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_seconds", L("worker", string(rune('a'+g)))...).Observe(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*200 {
		t.Errorf("counter = %d, want 1600", got)
	}
	series := 0
	r.EachHistogram("shared_seconds", func(_ string, _ []Label, snap HistSnapshot) {
		series++
		if snap.Count != 200 {
			t.Errorf("histogram count = %d, want 200", snap.Count)
		}
	})
	if series != 8 {
		t.Errorf("series = %d, want 8", series)
	}
}

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("rangeagg_test_requests_total", L("endpoint", "query")...).Add(3)
	r.Counter("rangeagg_test_requests_total", L("endpoint", "health")...).Inc()
	r.Gauge("rangeagg_test_version").Set(42)
	h := r.Histogram("rangeagg_test_seconds", L("op", `odd"label\with`+"\n"+`breaks`)...)
	h.Observe(1500 * time.Nanosecond) // second bucket (le 2e-06)
	h.Observe(3 * time.Microsecond)   // third bucket (le 4e-06)

	var sb strings.Builder
	if err := WriteText(&sb, r); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := `# TYPE rangeagg_test_requests_total counter
rangeagg_test_requests_total{endpoint="health"} 1
rangeagg_test_requests_total{endpoint="query"} 3
# TYPE rangeagg_test_seconds histogram
rangeagg_test_seconds_bucket{op="odd\"label\\with\nbreaks",le="1e-06"} 0
rangeagg_test_seconds_bucket{op="odd\"label\\with\nbreaks",le="2e-06"} 1
rangeagg_test_seconds_bucket{op="odd\"label\\with\nbreaks",le="4e-06"} 2
`
	if !strings.HasPrefix(got, want) {
		t.Errorf("exposition prefix mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`rangeagg_test_seconds_bucket{op="odd\"label\\with\nbreaks",le="+Inf"} 2`,
		"rangeagg_test_seconds_count{op=", // count present with labels
		"# TYPE rangeagg_test_version gauge",
		"rangeagg_test_version 42",
	} {
		if !strings.Contains(got, line) {
			t.Errorf("exposition missing %q:\n%s", line, got)
		}
	}
	// Exactly one TYPE line per family even with several series.
	if n := strings.Count(got, "# TYPE rangeagg_test_requests_total"); n != 1 {
		t.Errorf("TYPE lines for requests_total = %d, want 1", n)
	}
	// The sum line carries the seconds total.
	if !strings.Contains(got, "rangeagg_test_seconds_sum{") {
		t.Errorf("missing _sum:\n%s", got)
	}
}

func TestWriteTextMergesRegistries(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("zz_total").Inc()
	b.Counter("aa_total").Add(2)
	var sb strings.Builder
	if err := WriteText(&sb, a, nil, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	ia, iz := strings.Index(got, "aa_total"), strings.Index(got, "zz_total")
	if ia < 0 || iz < 0 || ia > iz {
		t.Errorf("merged output not sorted across registries:\n%s", got)
	}
}

func TestLPanicsOnOddCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd label list")
		}
	}()
	L("just-a-key")
}
