package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes every series of the given registries in the
// Prometheus text exposition format (version 0.0.4), merged and sorted
// by metric name so the output is deterministic. Histograms are written
// with cumulative `le` buckets plus `_sum` and `_count`; counters and
// gauges as single samples. Later registries win nothing — series are
// emitted per registry; callers pass disjoint registries (e.g. a
// handler's endpoint registry plus the process Default).
func WriteText(w io.Writer, regs ...*Registry) error {
	bw := bufio.NewWriter(w)
	all := make([]*series, 0, 64)
	for _, r := range regs {
		if r != nil {
			all = append(all, r.sorted()...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return labelKey(all[i].labels) < labelKey(all[j].labels)
	})
	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			bw.WriteString("# TYPE ")
			bw.WriteString(s.name)
			bw.WriteString(" ")
			bw.WriteString(s.kind())
			bw.WriteString("\n")
			lastName = s.name
		}
		switch {
		case s.c != nil:
			writeSample(bw, s.name, s.labels, "", "", float64(s.c.Value()))
		case s.g != nil:
			writeSample(bw, s.name, s.labels, "", "", float64(s.g.Value()))
		case s.h != nil:
			snap := s.h.Snapshot()
			var cum int64
			for i, b := range snap.Bounds {
				cum += snap.Counts[i]
				writeSample(bw, s.name+"_bucket", s.labels, "le", formatFloat(b), float64(cum))
			}
			cum += snap.Counts[len(snap.Bounds)]
			writeSample(bw, s.name+"_bucket", s.labels, "le", "+Inf", float64(cum))
			writeSample(bw, s.name+"_sum", s.labels, "", "", snap.SumSeconds)
			writeSample(bw, s.name+"_count", s.labels, "", "", float64(cum))
		}
	}
	return bw.Flush()
}

// writeSample writes one `name{labels} value` line, appending the extra
// (key, value) label when key is non-empty (the histogram `le` label).
func writeSample(bw *bufio.Writer, name string, labels []Label, extraKey, extraVal string, v float64) {
	bw.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		bw.WriteString("{")
		first := true
		for _, l := range labels {
			if !first {
				bw.WriteString(",")
			}
			first = false
			bw.WriteString(l.Key)
			bw.WriteString("=\"")
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteString("\"")
		}
		if extraKey != "" {
			if !first {
				bw.WriteString(",")
			}
			bw.WriteString(extraKey)
			bw.WriteString("=\"")
			bw.WriteString(escapeLabel(extraVal))
			bw.WriteString("\"")
		}
		bw.WriteString("}")
	}
	bw.WriteString(" ")
	bw.WriteString(formatFloat(v))
	bw.WriteString("\n")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
