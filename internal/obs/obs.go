// Package obs is the zero-dependency observability core shared by every
// layer of this repository: lock-free fixed-bucket latency histograms and
// counters behind a process-wide registry, lightweight span tracing with
// an in-memory ring of recent traces and a slow-op log (trace.go), and
// Prometheus text exposition (prom.go).
//
// Hot paths grab a metric handle once (a package-level var or a field)
// and observe through it; Observe/Add are a handful of atomic operations
// and never take a lock. Registration (Counter/Gauge/Histogram lookup)
// takes a read lock and is meant for setup or coarse-grained call sites
// such as a synopsis build.
//
// Metric names follow Prometheus conventions (`rangeagg_*_seconds`,
// `rangeagg_*_total`); span names follow the `layer.op` convention
// (`serve.rebuild`, `wal.checkpoint`). See DESIGN.md §6f.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric series (e.g. method="SAP0").
type Label struct {
	Key, Value string
}

// L builds a label list from alternating key, value strings. It panics on
// an odd count — labels are always programmer-supplied literals.
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// labelKey canonicalizes a label set (sorted by key) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := ""
	for _, l := range ls {
		key += l.Key + "\x00" + l.Value + "\x01"
	}
	return key
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the value to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depth, data version).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bucket upper bounds in seconds:
// exponential, 1µs doubling to ~67s (27 buckets plus the implicit +Inf
// overflow). They span everything this system times, from a WAL append
// to a coarsened million-value DP build.
var DefBuckets = func() []float64 {
	bounds := make([]float64, 27)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram is a lock-free fixed-bucket latency histogram: observations
// land in the first bucket whose upper bound is ≥ the value, plus running
// count, sum, and max. All methods are safe for concurrent use; Observe
// is a bucket search over a small fixed array and four atomic adds.
type Histogram struct {
	bounds  []float64 // ascending upper bounds in seconds; +Inf implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

// NewHistogram creates a standalone histogram with the given bucket upper
// bounds (seconds, ascending); nil selects DefBuckets. Registry lookups
// always use DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s := float64(ns) / 1e9
	// Binary search over the fixed bounds; the slice never changes, so
	// this is lock-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Since observes the elapsed time from start until now — the deferred
// one-liner form: defer h.Since(time.Now()).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram's state. Buckets
// are per-bucket (not cumulative) counts; Counts[len(Bounds)] is the
// overflow bucket.
type HistSnapshot struct {
	Bounds     []float64
	Counts     []int64
	Count      int64
	SumSeconds float64
	MaxSeconds float64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the atomic reads, so Count can differ from ΣCounts by the
// few observations in flight; fine for monitoring.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:     h.bounds,
		Counts:     make([]int64, len(h.buckets)),
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
		MaxSeconds: float64(h.maxNs.Load()) / 1e9,
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds by linear
// interpolation inside the bucket holding the target rank; the overflow
// bucket answers with the observed maximum. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.MaxSeconds
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if hi > s.MaxSeconds && s.MaxSeconds > lo {
			hi = s.MaxSeconds // never report past the observed max
		}
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return s.MaxSeconds
}

// Mean returns the mean observation in seconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// Registry is a named collection of metric series. The zero value is not
// usable; use NewRegistry. A name holds exactly one metric kind — looking
// it up as another kind panics (it would make the exposition emit two
// conflicting TYPE lines).
type Registry struct {
	mu      sync.RWMutex
	series  map[string]*series // keyed by name + canonical labels
	ordered []*series          // registration order; sorted at exposition
}

type series struct {
	name   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (s *series) kind() string {
	switch {
	case s.c != nil:
		return "counter"
	case s.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Default is the process-wide registry every instrumented layer records
// into. Tests that need isolation create their own with NewRegistry.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// lookup returns the series for (name, labels), creating it via mk on
// first use and verifying the kind otherwise.
func (r *Registry) lookup(name string, labels []Label, kind string, mk func(*series)) *series {
	key := name + "\x02" + labelKey(labels)
	r.mu.RLock()
	s, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if s, ok = r.series[key]; !ok {
			s = &series{name: name, labels: append([]Label(nil), labels...)}
			mk(s)
			r.series[key] = s
			r.ordered = append(r.ordered, s)
		}
		r.mu.Unlock()
	}
	if s.kind() != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, s.kind(), kind))
	}
	return s
}

// Counter returns the counter registered under (name, labels), creating
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, "counter", func(s *series) { s.c = &Counter{} }).c
}

// Gauge returns the gauge registered under (name, labels).
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, "gauge", func(s *series) { s.g = &Gauge{} }).g
}

// Histogram returns the histogram registered under (name, labels), with
// the default latency buckets.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, "histogram", func(s *series) { s.h = NewHistogram(nil) }).h
}

// sorted returns every series ordered by (name, canonical labels) — the
// deterministic iteration the exposition and JSON summaries use.
func (r *Registry) sorted() []*series {
	r.mu.RLock()
	out := append([]*series(nil), r.ordered...)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// EachHistogram calls fn for every histogram series whose name matches
// (empty name = all), in deterministic order.
func (r *Registry) EachHistogram(name string, fn func(name string, labels []Label, snap HistSnapshot)) {
	for _, s := range r.sorted() {
		if s.h == nil || (name != "" && s.name != name) {
			continue
		}
		fn(s.name, s.labels, s.h.Snapshot())
	}
}

// EachCounter calls fn for every counter series whose name matches
// (empty name = all), in deterministic order.
func (r *Registry) EachCounter(name string, fn func(name string, labels []Label, value int64)) {
	for _, s := range r.sorted() {
		if s.c == nil || (name != "" && s.name != name) {
			continue
		}
		fn(s.name, s.labels, s.c.Value())
	}
}
