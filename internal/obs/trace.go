package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one completed span as recorded in the trace ring (and
// served by GET /trace). All durations are wall-clock.
type SpanData struct {
	Name       string            `json:"name"`
	TraceID    string            `json:"trace"`
	SpanID     string            `json:"span"`
	ParentID   string            `json:"parent,omitempty"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Span is one in-flight timed operation. Create with Start, optionally
// annotate with SetAttr, and End exactly once. A nil *Span is inert, so
// callers never need to nil-check.
type Span struct {
	tracer  *Tracer
	name    string
	trace   uint64
	id      uint64
	parent  uint64
	start   time.Time
	mu      sync.Mutex
	attrs   map[string]string
	ended   bool
	endHook func(d time.Duration)
}

type ctxKey struct{}

// Tracer records completed spans into a fixed ring buffer (newest
// overwrite oldest) and mirrors spans at or above a configurable
// threshold into a separate slow-op ring plus an optional log function.
type Tracer struct {
	mu    sync.Mutex
	ring  []SpanData
	next  int
	total int

	slowRing  []SpanData
	slowNext  int
	slowTotal int

	slowNanos atomic.Int64
	slowLog   atomic.Pointer[func(SpanData)]

	ids atomic.Uint64
}

// DefaultTracer is the process-wide tracer behind the package-level Start
// and the /trace endpoint. 256 recent spans cover a full
// build→checkpoint→query cycle with room to spare.
var DefaultTracer = NewTracer(256)

// NewTracer creates a tracer keeping the given number of recent spans
// (and half as many slow ops, at least 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	slowCap := capacity / 2
	if slowCap < 16 {
		slowCap = 16
	}
	t := &Tracer{ring: make([]SpanData, capacity), slowRing: make([]SpanData, slowCap)}
	// Seed the ID space per tracer so concurrent processes don't collide
	// in merged trace views.
	t.ids.Store(uint64(time.Now().UnixNano()) << 16)
	return t
}

// SetSlowThreshold sets the duration at or above which a completed span
// is mirrored into the slow-op ring and passed to the slow-op logger.
// Zero (the default) disables slow-op capture.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNanos.Store(d.Nanoseconds()) }

// SetSlowLogger installs fn to be called (synchronously, outside the
// ring lock) for every slow span; nil removes it.
func (t *Tracer) SetSlowLogger(fn func(SpanData)) {
	if fn == nil {
		t.slowLog.Store(nil)
		return
	}
	t.slowLog.Store(&fn)
}

// Start begins a span under the tracer. The returned context carries the
// span, so nested Start calls build a parent→child chain; the span must
// be ended exactly once.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{tracer: t, name: name, id: t.ids.Add(1), start: time.Now()}
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		s.trace, s.parent = parent.trace, parent.id
	} else {
		s.trace = s.id
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start begins a span under the default tracer.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer.Start(ctx, name)
}

// SetAttr attaches (or replaces) a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// SetAttrInt attaches an integer attribute on the span.
func (s *Span) SetAttrInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// OnEnd registers fn to run with the span's duration when it ends —
// the hook that feeds a latency histogram from a span without timing
// the operation twice.
func (s *Span) OnEnd(fn func(d time.Duration)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.endHook = fn
	s.mu.Unlock()
}

// Duration returns the span's elapsed time so far (or its final duration
// after End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End completes the span and records it in the tracer's ring. Later End
// calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	hook := s.endHook
	attrs := s.attrs
	s.mu.Unlock()

	data := SpanData{
		Name:       s.name,
		TraceID:    fmt.Sprintf("%016x", s.trace),
		SpanID:     fmt.Sprintf("%016x", s.id),
		Start:      s.start,
		DurationMs: float64(d.Nanoseconds()) / 1e6,
	}
	if s.parent != 0 {
		data.ParentID = fmt.Sprintf("%016x", s.parent)
	}
	if len(attrs) > 0 {
		data.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			data.Attrs[k] = v
		}
	}
	s.tracer.record(data, d)
	if hook != nil {
		hook(d)
	}
}

func (t *Tracer) record(data SpanData, d time.Duration) {
	slow := t.slowNanos.Load()
	isSlow := slow > 0 && d.Nanoseconds() >= slow
	t.mu.Lock()
	t.ring[t.next] = data
	t.next = (t.next + 1) % len(t.ring)
	t.total++
	if isSlow {
		t.slowRing[t.slowNext] = data
		t.slowNext = (t.slowNext + 1) % len(t.slowRing)
		t.slowTotal++
	}
	t.mu.Unlock()
	if isSlow {
		if fn := t.slowLog.Load(); fn != nil {
			(*fn)(data)
		}
	}
}

func copyRing(ring []SpanData, next, total int) []SpanData {
	n := total
	if n > len(ring) {
		n = len(ring)
	}
	out := make([]SpanData, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent entry: newest first.
		idx := (next - 1 - i + 2*len(ring)) % len(ring)
		out = append(out, ring[idx])
	}
	return out
}

// Recent returns the recorded spans, newest first.
func (t *Tracer) Recent() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyRing(t.ring, t.next, t.total)
}

// SlowOps returns the spans that crossed the slow threshold, newest
// first.
func (t *Tracer) SlowOps() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return copyRing(t.slowRing, t.slowNext, t.slowTotal)
}

// Recorded returns how many spans have ever completed under the tracer.
func (t *Tracer) Recorded() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Recent returns the default tracer's recorded spans, newest first.
func Recent() []SpanData { return DefaultTracer.Recent() }

// SlowOps returns the default tracer's slow spans, newest first.
func SlowOps() []SpanData { return DefaultTracer.SlowOps() }

// SetSlowThreshold configures the default tracer's slow-op threshold.
func SetSlowThreshold(d time.Duration) { DefaultTracer.SetSlowThreshold(d) }

// SetSlowLogger configures the default tracer's slow-op logger.
func SetSlowLogger(fn func(SpanData)) { DefaultTracer.SetSlowLogger(fn) }
