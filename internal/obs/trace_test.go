package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChaining(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "serve.rebuild")
	_, child := tr.Start(ctx, "engine.build_synopses")
	child.SetAttr("method", "SAP0")
	child.SetAttrInt("specs", 2)
	child.End()
	root.End()

	spans := tr.Recent()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "serve.rebuild" || spans[1].Name != "engine.build_synopses" {
		t.Fatalf("order = %s, %s; want serve.rebuild, engine.build_synopses", spans[0].Name, spans[1].Name)
	}
	if spans[1].ParentID != spans[0].SpanID {
		t.Errorf("child parent %q != root span %q", spans[1].ParentID, spans[0].SpanID)
	}
	if spans[1].TraceID != spans[0].TraceID {
		t.Errorf("child trace %q != root trace %q", spans[1].TraceID, spans[0].TraceID)
	}
	if spans[0].ParentID != "" {
		t.Errorf("root has parent %q", spans[0].ParentID)
	}
	if spans[1].Attrs["method"] != "SAP0" || spans[1].Attrs["specs"] != "2" {
		t.Errorf("child attrs = %v", spans[1].Attrs)
	}
}

func TestSpanNilAndDoubleEndSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v") // must not panic
	s.OnEnd(func(time.Duration) {})
	s.End()
	if s.Duration() != 0 {
		t.Error("nil span has nonzero duration")
	}

	tr := NewTracer(4)
	_, sp := tr.Start(context.Background(), "x")
	ends := 0
	sp.OnEnd(func(time.Duration) { ends++ })
	sp.End()
	sp.End()
	if ends != 1 {
		t.Errorf("end hook ran %d times, want 1", ends)
	}
	if tr.Recorded() != 1 {
		t.Errorf("recorded %d spans, want 1", tr.Recorded())
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, sp := tr.Start(context.Background(), fmt.Sprintf("op%d", i))
		sp.End()
	}
	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
	for i, want := range []string{"op9", "op8", "op7", "op6"} {
		if spans[i].Name != want {
			t.Errorf("spans[%d] = %s, want %s (newest first)", i, spans[i].Name, want)
		}
	}
	if tr.Recorded() != 10 {
		t.Errorf("recorded = %d, want 10", tr.Recorded())
	}
}

func TestSlowOpCaptureAndLogger(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSlowThreshold(time.Nanosecond) // everything is slow
	var mu sync.Mutex
	var logged []string
	tr.SetSlowLogger(func(sp SpanData) {
		mu.Lock()
		logged = append(logged, sp.Name)
		mu.Unlock()
	})
	_, sp := tr.Start(context.Background(), "wal.checkpoint")
	sp.End()

	if slow := tr.SlowOps(); len(slow) != 1 || slow[0].Name != "wal.checkpoint" {
		t.Fatalf("slow ops = %v", slow)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 || logged[0] != "wal.checkpoint" {
		t.Fatalf("logged = %v", logged)
	}
}

func TestSlowOpThresholdFilters(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSlowThreshold(time.Hour) // nothing is slow
	_, sp := tr.Start(context.Background(), "fast")
	sp.End()
	if slow := tr.SlowOps(); len(slow) != 0 {
		t.Fatalf("slow ops = %v, want none", slow)
	}
	// Zero threshold disables capture entirely.
	tr.SetSlowThreshold(0)
	_, sp = tr.Start(context.Background(), "untracked")
	sp.End()
	if slow := tr.SlowOps(); len(slow) != 0 {
		t.Fatalf("slow ops with zero threshold = %v, want none", slow)
	}
}

// TestConcurrentSpanRecording exercises the tracer from many goroutines
// (run under -race in CI): concurrent Start/SetAttr/End against one
// tracer, with a slow logger installed, must be data-race free and lose
// no completed spans.
func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(64)
	tr.SetSlowThreshold(time.Nanosecond)
	tr.SetSlowLogger(func(SpanData) {})
	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, root := tr.Start(context.Background(), "outer")
				root.SetAttrInt("g", int64(g))
				_, child := tr.Start(ctx, "inner")
				child.SetAttr("i", fmt.Sprint(i))
				child.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Recorded(), goroutines*perG*2; got != want {
		t.Errorf("recorded %d spans, want %d", got, want)
	}
	if got := len(tr.Recent()); got != 64 {
		t.Errorf("ring holds %d, want full 64", got)
	}
}

func TestOnEndFeedsHistogram(t *testing.T) {
	tr := NewTracer(4)
	h := NewHistogram(nil)
	_, sp := tr.Start(context.Background(), "timed")
	sp.OnEnd(h.Observe)
	sp.End()
	if h.Count() != 1 {
		t.Errorf("histogram count = %d, want 1 observation from span end", h.Count())
	}
}
