// Package fsx holds the small filesystem primitives the durability layer
// is built from: crash-safe whole-file replacement (write to a temp file
// in the target directory, fsync, rename over the destination, fsync the
// directory) and directory fsync. A crash at any point leaves either the
// previous complete file or the new complete file, never a truncated or
// interleaved one.
package fsx

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path with the bytes produced by write,
// crash-safely. The data is written to a temporary file in path's
// directory (so the final rename stays within one filesystem), fsynced,
// renamed over path, and the directory entry is fsynced. On any error the
// previous contents of path are untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("fsx: creating temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("fsx: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fsx: syncing %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fsx: closing %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fsx: renaming into %s: %w", path, err)
	}
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so that renames and removals inside it are
// durable. On filesystems that do not support fsync on directories the
// error is surfaced to the caller.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsx: opening directory %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsx: syncing directory %s: %w", dir, err)
	}
	return nil
}
