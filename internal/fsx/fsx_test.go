package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreatesAndOverwrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	for _, want := range []string{"first", "second, longer content"} {
		err := WriteFileAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, want)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Fatalf("read %q, want %q", got, want)
		}
	}
}

// A failing writer must leave the previous file intact and no temp
// litter behind — that is the whole point of the temp+rename protocol.
func TestWriteFileAtomicFailureKeepsOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("original clobbered: %q", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}
