// Package parallel provides the bounded worker pool shared by every
// concurrent construction path in this repository: the layer-parallel
// dynamic programs of internal/dp, the advisor's candidate sweep, the
// experiments fan-out, and the engine's batch synopsis builds.
//
// The pool is a process-global budget of extra worker goroutines, capped
// at Workers() (GOMAXPROCS by default, overridable with SetWorkers or the
// RANGEAGG_WORKERS environment variable). Helpers never block waiting for
// a slot: when the budget is exhausted — including when a parallel region
// is nested inside another — the caller simply runs the work inline. That
// makes nesting (an experiment building a synopsis whose DP parallelizes
// its own layers) safe by construction: no deadlocks, and the total number
// of running workers stays bounded instead of multiplying.
//
// All helpers assign work by index, so callers that write results into
// per-index slots get deterministic, scheduling-independent output.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"rangeagg/internal/obs"
)

// Pool fan-out counters: how many parallel regions ran, how many of them
// had to run fully inline (pool exhausted or single-worker), and how many
// extra worker goroutines were spawned in total. Handles are resolved
// once; observing is one atomic add per region, off the per-chunk path.
var (
	poolRegions = obs.Default.Counter("rangeagg_pool_regions_total")
	poolInline  = obs.Default.Counter("rangeagg_pool_inline_total")
	poolWorkers = obs.Default.Counter("rangeagg_pool_workers_total")
)

// maxWorkers is the configured concurrency width (≥ 1).
var maxWorkers atomic.Int64

// inflight counts extra worker goroutines currently running across all
// parallel regions; it never exceeds maxWorkers − 1 (the caller's own
// goroutine is the remaining worker).
var inflight atomic.Int64

func init() {
	w := runtime.GOMAXPROCS(0)
	if v := os.Getenv("RANGEAGG_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			w = n
		}
	}
	maxWorkers.Store(int64(w))
}

// Workers returns the current concurrency width.
func Workers() int { return int(maxWorkers.Load()) }

// SetWorkers sets the concurrency width and returns the previous value.
// n ≤ 0 resets to GOMAXPROCS. Safe for concurrent use; regions already
// running keep the width they started with.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// tryAcquire reserves one extra-worker slot if the global budget allows.
func tryAcquire() bool {
	limit := maxWorkers.Load() - 1
	for {
		cur := inflight.Load()
		if cur >= limit {
			return false
		}
		if inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func release() { inflight.Add(-1) }

// ForEachChunk runs fn over the index range [0, n) split into chunks of
// at most grain consecutive indices, distributing chunks dynamically over
// the pool. fn(lo, hi) must process indices [lo, hi). fn is called
// concurrently from multiple goroutines; distinct calls never overlap in
// index range. ForEachChunk returns when all indices are processed.
func ForEachChunk(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	want := Workers()
	if chunks < want {
		want = chunks
	}
	var next atomic.Int64
	drain := func() {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	poolRegions.Inc()
	if want <= 1 {
		poolInline.Inc()
		drain()
		return
	}
	var wg sync.WaitGroup
	spawned := 0
	for i := 1; i < want; i++ {
		if !tryAcquire() {
			break
		}
		spawned++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			drain()
		}()
	}
	if spawned == 0 {
		poolInline.Inc()
	} else {
		poolWorkers.Add(int64(spawned))
	}
	drain()
	wg.Wait()
}

// ForEach runs fn for every index in [0, n), one index per task, over the
// pool. Use for coarse-grained tasks (building a whole synopsis); prefer
// ForEachChunk for fine-grained loops.
func ForEach(n int, fn func(i int)) {
	ForEachChunk(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs heterogeneous tasks concurrently over the pool and returns when
// all have completed — the fork/join form of ForEach for a fixed set of
// different jobs (e.g. rebuilding a serving snapshot's prefix tables and
// synopses together).
func Do(fns ...func()) {
	ForEach(len(fns), func(i int) { fns[i]() })
}
