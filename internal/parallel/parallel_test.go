package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	defer SetWorkers(SetWorkers(8))
	for _, n := range []int{0, 1, 7, 100, 1000} {
		seen := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForEachChunkDisjointCoverage(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	const n = 517
	seen := make([]int32, n)
	ForEachChunk(n, 13, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestNestedRegionsComplete(t *testing.T) {
	defer SetWorkers(SetWorkers(3))
	var total atomic.Int64
	ForEach(10, func(i int) {
		ForEach(10, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 100 {
		t.Fatalf("nested total = %d, want 100", total.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(5)
	if Workers() != 5 {
		t.Errorf("Workers() = %d, want 5", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("reset Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(prev)
}

func TestSerialWidthRunsInline(t *testing.T) {
	defer SetWorkers(SetWorkers(1))
	var count int // no atomics: width 1 must be strictly sequential
	ForEachChunk(100, 7, func(lo, hi int) { count += hi - lo })
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}
