package engine

import "rangeagg/internal/build"

// dirtyWindow accumulates the value range mutated since a synopsis was
// last built. Engines keep one per rebuild-capable synopsis (methods
// with a registry Rebuild hook): point mutations widen the window,
// bulk operations (Load, shard absorption) mark everything, and the
// build path captures-and-resets the window under the same lock as the
// counts snapshot, so a window always describes exactly the mutations
// the snapshot contains.
type dirtyWindow struct {
	any, all bool
	lo, hi   int
}

func (w *dirtyWindow) markValue(v int) {
	if w.all {
		return
	}
	if !w.any {
		w.any, w.lo, w.hi = true, v, v
		return
	}
	if v < w.lo {
		w.lo = v
	}
	if v > w.hi {
		w.hi = v
	}
}

func (w *dirtyWindow) markAll() {
	w.any, w.all = true, true
}

// merge widens w to cover o — the restore path when a build that
// captured o fails and its mutations must stay pending.
func (w *dirtyWindow) merge(o dirtyWindow) {
	if !o.any {
		return
	}
	if o.all {
		w.markAll()
		return
	}
	w.markValue(o.lo)
	w.markValue(o.hi)
}

// markDirtyValue records a point mutation in every watched window.
// Callers hold e.mu.
func (e *Engine) markDirtyValue(v int) {
	for _, w := range e.watch {
		w.markValue(v)
	}
}

// markDirtyAll records a bulk mutation in every watched window.
// Callers hold e.mu.
func (e *Engine) markDirtyAll() {
	for _, w := range e.watch {
		w.markAll()
	}
}

// resetWatch starts (or stops) dirty tracking for a freshly installed
// synopsis: rebuild-capable and incrementally-maintained synopses get a
// clean window, others drop any stale one. Callers hold e.mu.
func (e *Engine) resetWatch(name string, opt build.Options) {
	if build.CanRebuild(opt) || e.maint[name] != nil {
		e.watch[name] = &dirtyWindow{}
	} else {
		delete(e.watch, name)
	}
}

// SetApproxCutover configures the domain size at and above which
// synopsis builds substitute the method's (1+ε)-approximate
// counterpart (build.WithApprox): 0 restores the default
// (build.DefaultApproxCutover), a negative value disables
// substitution. Registered synopses keep their original options; only
// the construction is substituted.
func (e *Engine) SetApproxCutover(cutover int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.approxCutover = cutover
}
