package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rangeagg/internal/build"
)

func TestStoreColumnLifecycle(t *testing.T) {
	s := NewStore("warehouse")
	if s.Name() != "warehouse" {
		t.Errorf("name = %q", s.Name())
	}
	a, err := s.CreateColumn("amount", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateColumn("amount", 16); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := s.CreateColumn("bad", 0); err == nil {
		t.Error("zero-domain column accepted")
	}
	if _, err := s.CreateColumn("age", 8); err != nil {
		t.Fatal(err)
	}
	got, err := s.Column("amount")
	if err != nil || got != a {
		t.Fatalf("Column lookup: %v %v", got, err)
	}
	if _, err := s.Column("missing"); err == nil {
		t.Error("missing column lookup succeeded")
	}
	cols := s.Columns()
	if len(cols) != 2 || cols[0] != "age" || cols[1] != "amount" {
		t.Errorf("Columns = %v", cols)
	}
	if !s.DropColumn("age") || s.DropColumn("age") {
		t.Error("drop semantics wrong")
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore("warehouse")
	amount, err := s.CreateColumn("amount", 32)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 32)
	for i := range counts {
		counts[i] = int64(200 / (i + 1))
	}
	if err := amount.Load(counts); err != nil {
		t.Fatal(err)
	}
	if _, err := amount.BuildSynopsis("h", Count, build.Options{Method: build.A0, BudgetWords: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := amount.BuildSynopsis("s", Sum, build.Options{Method: build.SAP0, BudgetWords: 12, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	age, err := s.CreateColumn("age", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := age.Insert(3, 100); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "warehouse" || len(restored.Columns()) != 2 {
		t.Fatalf("restored: %s %v", restored.Name(), restored.Columns())
	}
	ra, err := restored.Column("amount")
	if err != nil {
		t.Fatal(err)
	}
	if ra.Records() != amount.Records() {
		t.Errorf("records %d, want %d", ra.Records(), amount.Records())
	}
	// Rebuilt synopses answer identically (deterministic construction).
	for _, name := range []string{"h", "s"} {
		want, err := amount.Approx(name, 2, 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ra.Approx(name, 2, 20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("synopsis %q: %g, want %g", name, got, want)
		}
	}
	rage, _ := restored.Column("age")
	if rage.ExactCount(3, 3) != 100 {
		t.Error("age column data lost")
	}
}

func TestLoadStoreRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{broken`,
		`{"name":"x","columns":[{"name":"c","domain":4,"counts":[1,2]}]}`,                                                              // count/domain mismatch
		`{"name":"x","columns":[{"name":"c","domain":0,"counts":[]}]}`,                                                                 // bad domain
		`{"name":"x","columns":[{"name":"c","domain":2,"counts":[1,-2]}]}`,                                                             // negative
		`{"name":"x","columns":[{"name":"c","domain":2,"counts":[1,2],"synopses":[{"name":"s","metric":0,"options":{"Method":99}}]}]}`, // bad method
	}
	for _, c := range cases {
		if _, err := LoadStore(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
