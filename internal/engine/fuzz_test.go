package engine

import (
	"sync"
	"testing"

	"rangeagg/internal/build"
)

// FuzzEngineQuery drives an engine through arbitrary interleavings of
// loads, inserts, deletes, synopsis builds, rebuilds (including one racing
// a query), and exact/approximate queries decoded from the fuzz input.
// The invariants: no operation panics, exact answers are never negative,
// and the record total never goes negative.
func FuzzEngineQuery(f *testing.F) {
	f.Add([]byte{16, 0, 1, 2, 3})
	f.Add([]byte{32, 3, 0, 4, 10, 20, 5, 0, 31, 7, 10, 0, 31})
	f.Add([]byte{8, 1, 3, 9, 2, 3, 9, 3, 1, 6, 0, 7, 8, 9, 5, 200, 200})
	f.Add([]byte{64, 0, 3, 2, 10, 3, 3, 4, 0, 63, 6, 1, 62, 9, 0, 63})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		domain := 4 + int(data[0])%61 // 4..64
		eng, err := New("fuzz", domain)
		if err != nil {
			t.Fatal(err)
		}
		// next yields the following byte of the op stream, zero when
		// exhausted, so every prefix of an input is a valid program.
		pos := 1
		next := func() int {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return int(b)
		}
		methods := []build.Method{build.Naive, build.EquiWidth, build.SAP0, build.A0}
		built := false
		for pos < len(data) {
			switch next() % 10 {
			case 0: // bulk load derived from the stream
				counts := make([]int64, domain)
				for i := range counts {
					counts[i] = int64(next() % 16)
				}
				if err := eng.Load(counts); err != nil {
					t.Fatalf("load of valid counts failed: %v", err)
				}
			case 1:
				_ = eng.Insert(next()%domain, int64(next()%32+1))
			case 2:
				// May legitimately fail (more deletes than records).
				_ = eng.Delete(next()%domain, int64(next()%32+1))
			case 3:
				metric := Metric(next() % 2)
				opt := build.Options{Method: methods[next()%len(methods)], BudgetWords: next()%32 + 1}
				if _, err := eng.BuildSynopsis("f", metric, opt); err != nil {
					t.Fatalf("building %v: %v", opt, err)
				}
				built = true
			case 4:
				if built {
					if _, err := eng.Approx("f", next()%domain, next()%domain); err != nil {
						t.Fatalf("approx: %v", err)
					}
				}
			case 5:
				a, b := next()-64, next()-64 // exercise clamping on both sides
				if c := eng.ExactCount(a, b); c < 0 {
					t.Fatalf("ExactCount(%d,%d) = %d < 0", a, b, c)
				}
			case 6:
				a, b := next()-64, next()-64
				if s := eng.ExactSum(a, b); s < 0 {
					t.Fatalf("ExactSum(%d,%d) = %d < 0", a, b, s)
				}
			case 7:
				if built {
					if _, err := eng.Refresh("f"); err != nil {
						t.Fatalf("refresh: %v", err)
					}
				}
			case 8:
				if built {
					if _, err := eng.Progressive("f", next()%domain, next()%domain, next()%8); err != nil {
						t.Fatalf("progressive: %v", err)
					}
				}
			case 9: // a rebuild racing a query batch — the serving pattern
				if built {
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						_, _ = eng.Refresh("f")
					}()
					if _, err := eng.ApproxBatch("f", nil); err != nil {
						t.Fatalf("batch during rebuild: %v", err)
					}
					_ = eng.ExactCount(0, domain-1)
					wg.Wait()
				}
			}
			if eng.Records() < 0 {
				t.Fatalf("negative record total %d", eng.Records())
			}
		}
	})
}
