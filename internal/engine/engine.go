// Package engine is the approximate-query-processing substrate the paper
// assumes around its algorithms: an in-memory single-column store that
// ingests records, maintains the attribute-value distribution, builds and
// serves named synopses under word budgets, and answers exact and
// approximate COUNT and SUM range queries with per-synopsis staleness and
// error accounting.
package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"rangeagg/internal/build"
	"rangeagg/internal/ingest"
	"rangeagg/internal/method"
	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

// Metric selects what a synopsis summarizes.
type Metric int

const (
	// Count summarizes the number of records per attribute value; range
	// queries are COUNT(*) WHERE attr BETWEEN a AND b.
	Count Metric = iota
	// Sum summarizes Σ attr per value (value × frequency); range queries
	// are SUM(attr) WHERE attr BETWEEN a AND b.
	Sum
)

// String names the metric.
func (m Metric) String() string {
	if m == Sum {
		return "SUM"
	}
	return "COUNT"
}

// ParseMetric resolves a metric from its name (case-insensitive).
func ParseMetric(s string) (Metric, error) {
	switch strings.ToUpper(s) {
	case "COUNT", "":
		return Count, nil
	case "SUM":
		return Sum, nil
	}
	return 0, &UnknownMetricError{Scope: "engine", Name: s}
}

// Engine is a single-column store over the integer domain [0, domain).
type Engine struct {
	mu      sync.RWMutex
	name    string
	domain  int
	counts  []int64
	records int64
	version int64 // bumped on every mutation

	// autoRefresh, when positive, rebuilds a synopsis before answering if
	// more than this many mutations happened since it was built.
	autoRefresh int64

	// approxCutover configures build.WithApprox substitution for rebuilds
	// (0 = default, negative = disabled).
	approxCutover int

	synopses map[string]*Synopsis
	// watch tracks the mutated value window per rebuild-capable synopsis.
	watch map[string]*dirtyWindow
	// maint holds the incremental-maintenance state of synopses opted in
	// through EnableIngest, keyed like synopses/watch.
	maint map[string]*ingest.State
}

// Synopsis is a built summary registered under a name.
type Synopsis struct {
	Name string
	// Metric the synopsis answers.
	Metric Metric
	// Options used to build it.
	Options build.Options
	// Est is the underlying estimator.
	Est build.Estimator
	// ErrModel bounds the estimator's per-range error against the data it
	// was built from (nil when the method has no error model). Bounds
	// refer to the data at Version; staleness widens them unaccounted.
	ErrModel method.ErrorModel
	// Version of the engine data when built; staleness is the number of
	// mutations since.
	Version int64
}

// New creates an engine for attribute values in [0, domain).
func New(name string, domain int) (*Engine, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("engine: domain must be positive, got %d", domain)
	}
	return &Engine{
		name:     name,
		domain:   domain,
		counts:   make([]int64, domain),
		synopses: make(map[string]*Synopsis),
		watch:    make(map[string]*dirtyWindow),
		maint:    make(map[string]*ingest.State),
	}, nil
}

// Load bulk-inserts a whole distribution (counts per value).
func (e *Engine) Load(counts []int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(counts) != e.domain {
		return fmt.Errorf("engine: load of %d values into domain %d", len(counts), e.domain)
	}
	// Track the span of loaded mass so the dirty windows stay precise: a
	// load confined to a value window keeps partial rebuilds and
	// incremental maintenance partial instead of going fully dirty.
	lo, hi := -1, -1
	for v, c := range counts {
		if c < 0 {
			return fmt.Errorf("engine: negative count %d at value %d", c, v)
		}
		if c > 0 {
			if lo < 0 {
				lo = v
			}
			hi = v
		}
		e.counts[v] += c
		e.records += c
	}
	// An all-zero load mutates nothing: the version (the staleness clock)
	// stays put and no window dirties.
	if lo >= 0 {
		e.version++
		e.markDirtyValue(lo)
		e.markDirtyValue(hi)
	}
	return nil
}

// Replace overwrites the whole distribution with counts — unlike Load,
// which adds on top of the existing data. It is the replication install
// path: a replica receiving a primary's checkpoint swaps its state for
// the checkpoint's counts wholesale, so its exact tables and synopses
// converge to the primary's after the next rebuild.
func (e *Engine) Replace(counts []int64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(counts) != e.domain {
		return fmt.Errorf("engine: replace of %d values into domain %d", len(counts), e.domain)
	}
	var records int64
	for v, c := range counts {
		if c < 0 {
			return fmt.Errorf("engine: negative count %d at value %d", c, v)
		}
		records += c
	}
	copy(e.counts, counts)
	e.records = records
	e.version++
	e.markDirtyAll()
	return nil
}

// Insert adds occurrences records with the given attribute value.
func (e *Engine) Insert(value int, occurrences int64) error {
	if occurrences <= 0 {
		return fmt.Errorf("engine: occurrences must be positive, got %d", occurrences)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if value < 0 || value >= e.domain {
		return fmt.Errorf("engine: value %d outside domain [0,%d)", value, e.domain)
	}
	e.counts[value] += occurrences
	e.records += occurrences
	e.version++
	e.markDirtyValue(value)
	return nil
}

// Delete removes occurrences records with the given attribute value.
func (e *Engine) Delete(value int, occurrences int64) error {
	if occurrences <= 0 {
		return fmt.Errorf("engine: occurrences must be positive, got %d", occurrences)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if value < 0 || value >= e.domain {
		return fmt.Errorf("engine: value %d outside domain [0,%d)", value, e.domain)
	}
	if e.counts[value] < occurrences {
		return fmt.Errorf("engine: cannot delete %d of value %d (only %d present)",
			occurrences, value, e.counts[value])
	}
	e.counts[value] -= occurrences
	e.records -= occurrences
	e.version++
	e.markDirtyValue(value)
	return nil
}

// Name returns the engine's name.
func (e *Engine) Name() string { return e.name }

// Domain returns the attribute domain size.
func (e *Engine) Domain() int { return e.domain }

// Records returns the total number of records.
func (e *Engine) Records() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.records
}

// Counts returns a copy of the current distribution.
func (e *Engine) Counts() []int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]int64, len(e.counts))
	copy(out, e.counts)
	return out
}

// Version returns the data version, bumped on every mutation.
func (e *Engine) Version() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version
}

// MetricCounts returns the per-value series a synopsis of the metric
// summarizes (the raw distribution for Count, value×frequency for Sum)
// together with the data version it was read at — the coherent snapshot a
// serving layer builds from.
func (e *Engine) MetricCounts(m Metric) ([]int64, int64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.metricCounts(m), e.version
}

// metricCounts derives the per-value series a synopsis of the metric
// summarizes. Callers hold the lock.
func (e *Engine) metricCounts(m Metric) []int64 {
	out := make([]int64, len(e.counts))
	switch m {
	case Sum:
		for v, c := range e.counts {
			out[v] = int64(v) * c
		}
	default:
		copy(out, e.counts)
	}
	return out
}

// ExactCount answers COUNT(*) WHERE a ≤ attr ≤ b exactly. The range is
// clamped to the domain; an inverted or fully-outside range counts zero.
func (e *Engine) ExactCount(a, b int) int64 {
	return e.exact(Count, a, b)
}

// ExactSum answers SUM(attr) WHERE a ≤ attr ≤ b exactly.
func (e *Engine) ExactSum(a, b int) int64 {
	return e.exact(Sum, a, b)
}

func (e *Engine) exact(m Metric, a, b int) int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	a, b, ok := clamp(a, b, e.domain)
	if !ok {
		return 0
	}
	var s int64
	for v := a; v <= b; v++ {
		if m == Sum {
			s += int64(v) * e.counts[v]
		} else {
			s += e.counts[v]
		}
	}
	return s
}

func clamp(a, b, domain int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= domain {
		b = domain - 1
	}
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}

// BuildSynopsis constructs and registers a synopsis under the given name,
// replacing any previous one with that name. When the previous synopsis
// under the name has the same spec, its method supports partial rebuilds,
// and the mutations since it was built are confined to a value window,
// only the affected sub-structures are reconstructed (the dirty-segment
// path); everything else is a full build. Domains at or above the approx
// cutover construct through the method's (1+ε)-approximate counterpart
// while the registered options stay as given.
func (e *Engine) BuildSynopsis(name string, metric Metric, opt build.Options) (*Synopsis, error) {
	e.mu.Lock()
	counts := e.metricCounts(metric)
	version := e.version
	eff := build.WithApprox(opt, e.domain, e.approxCutover)
	prev := e.synopses[name]
	st := e.maint[name]
	var win dirtyWindow
	captured := false
	if !build.CanRebuild(opt) && st == nil {
		delete(e.watch, name)
	} else {
		// The window must exist before the unlocked build so concurrent
		// mutations land in it. A window created late (previous synopsis
		// installed by a path without tracking) starts fully dirty.
		w := e.watch[name]
		if w == nil {
			w = &dirtyWindow{}
			if prev != nil {
				w.markAll()
			}
			e.watch[name] = w
		}
		if prev != nil && prev.Metric == metric && prev.Options == opt {
			win, *w = *w, dirtyWindow{}
			captured = true
		}
	}
	e.mu.Unlock()

	if captured && !win.any && prev.Version == version {
		// Nothing mutated since the previous build: it is already current.
		return prev, nil
	}
	partial := captured && win.any && !win.all

	var est build.Estimator
	var err error
	switch {
	case partial && st != nil && ingest.CanMaintain(prev.Est):
		// Incremental maintenance: absorb the confined window through the
		// ingest ladder; only an escalation rebuilds.
		var out ingest.Outcome
		est, out, err = ingest.Maintain(counts, prev.Est, win.lo, win.hi, st)
		if err == nil && out.Action == ingest.Escalate {
			if build.CanRebuild(opt) {
				est, _, err = build.Rebuild(counts, opt, prev.Est, win.lo, win.hi)
			} else {
				est, err = build.Build(counts, eff)
			}
			if err == nil {
				st.Reset()
			}
		}
	case partial && build.CanRebuild(opt):
		est, _, err = build.Rebuild(counts, opt, prev.Est, win.lo, win.hi)
	default:
		est, err = build.Build(counts, eff)
	}
	if err == nil {
		var em method.ErrorModel
		if em, err = errModelFor(opt, counts, est); err == nil {
			s := &Synopsis{Name: name, Metric: metric, Options: opt, Est: est, ErrModel: em, Version: version}
			e.mu.Lock()
			defer e.mu.Unlock()
			e.synopses[name] = s
			return s, nil
		}
		err = fmt.Errorf("engine: error model for %q: %w", name, err)
	} else {
		err = fmt.Errorf("engine: building synopsis %q: %w", name, err)
	}
	if captured {
		// The captured mutations were not absorbed into any synopsis; put
		// them back so the next rebuild still covers them.
		e.mu.Lock()
		if w, ok := e.watch[name]; ok {
			w.merge(win)
		}
		e.mu.Unlock()
	}
	return nil, err
}

// errModelFor builds the per-range error model of a freshly constructed
// estimator when its method is error-bounded; counts must be the series
// the estimator was built from.
func errModelFor(opt build.Options, counts []int64, est build.Estimator) (method.ErrorModel, error) {
	d, err := method.Lookup(opt.Method)
	if err != nil || !d.Caps.Has(method.ErrorBounded) {
		return nil, nil
	}
	return d.ErrorBound(prefix.NewTable(counts), est)
}

// SynopsisSpec names one synopsis of a BuildSynopses batch.
type SynopsisSpec struct {
	Name    string
	Metric  Metric
	Options build.Options
}

// BuildSynopses constructs the specified synopses concurrently over the
// shared worker pool and registers them atomically: either every build
// succeeds and all synopses are installed (replacing same-named ones), or
// none is registered and the first failure (in spec order) is returned.
// All builds see the same snapshot of the data.
func (e *Engine) BuildSynopses(specs []SynopsisSpec) ([]*Synopsis, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	_, span := obs.Start(context.Background(), "engine.build_synopses")
	span.SetAttrInt("specs", int64(len(specs)))
	span.SetAttr("engine", e.name)
	defer span.End()
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if seen[sp.Name] {
			return nil, fmt.Errorf("engine: duplicate synopsis name %q in batch", sp.Name)
		}
		seen[sp.Name] = true
	}
	e.mu.Lock()
	version := e.version
	cutover := e.approxCutover
	countsByMetric := map[Metric][]int64{}
	// Reset (or create) the dirty windows at the snapshot, so mutations
	// landing during the unlocked builds are tracked for the next partial
	// rebuild. The previous windows are kept aside to restore on failure.
	prevWins := make(map[string]dirtyWindow)
	for _, sp := range specs {
		if _, ok := countsByMetric[sp.Metric]; !ok {
			countsByMetric[sp.Metric] = e.metricCounts(sp.Metric)
		}
		if w, ok := e.watch[sp.Name]; ok {
			prevWins[sp.Name] = *w
		}
		e.resetWatch(sp.Name, sp.Options)
	}
	e.mu.Unlock()

	restoreWins := func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		for name, win := range prevWins {
			if w, ok := e.watch[name]; ok {
				w.merge(win)
			}
		}
	}

	out := make([]*Synopsis, len(specs))
	errs := make([]error, len(specs))
	parallel.ForEach(len(specs), func(i int) {
		sp := specs[i]
		est, err := build.Build(countsByMetric[sp.Metric], build.WithApprox(sp.Options, e.domain, cutover))
		if err != nil {
			errs[i] = fmt.Errorf("engine: building synopsis %q: %w", sp.Name, err)
			return
		}
		em, err := errModelFor(sp.Options, countsByMetric[sp.Metric], est)
		if err != nil {
			errs[i] = fmt.Errorf("engine: error model for %q: %w", sp.Name, err)
			return
		}
		out[i] = &Synopsis{Name: sp.Name, Metric: sp.Metric, Options: sp.Options, Est: est, ErrModel: em, Version: version}
	})
	for _, err := range errs {
		if err != nil {
			restoreWins()
			return nil, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range out {
		e.synopses[s.Name] = s
	}
	return out, nil
}

// MergeFrom absorbs a shard engine built over the same domain: the
// shard's records are added to this engine's distribution and the named
// synopsis is merged through the method registry's Merge hook, so the
// merged estimator answers every range with exactly the sum of the two
// inputs' answers (the Mergeable capability; average-representation
// histograms built unrounded). If this engine has no synopsis under the
// name yet, the shard's is adopted as-is. The shard is read once at the
// start (a point-in-time merge); the absorption is a mutation, so this
// engine's other synopses become stale.
func (e *Engine) MergeFrom(other *Engine, name string) (*Synopsis, error) {
	if other == nil || other == e {
		return nil, fmt.Errorf("engine: merge requires a distinct source engine")
	}
	if other.Domain() != e.domain {
		return nil, fmt.Errorf("engine: cannot merge domain %d into domain %d", other.Domain(), e.domain)
	}
	other.mu.RLock()
	shardCounts := make([]int64, len(other.counts))
	copy(shardCounts, other.counts)
	o, ok := other.synopses[name]
	other.mu.RUnlock()
	if !ok {
		return nil, &UnknownSynopsisError{Scope: "engine: source engine", Name: name}
	}
	return e.AbsorbShard(name, shardCounts, o.Metric, o.Options, o.Est)
}

// AbsorbShard is the replayable core of MergeFrom: it adds a shard's
// per-value counts to this engine's distribution and merges the shard's
// estimator into the registered synopsis of the same name (adopting it
// under the given metric and options when none is registered). The
// method — and, when present, the local synopsis's method — must have
// the Mergeable capability. The durability layer logs exactly these
// arguments, so replaying the record reproduces the absorption.
func (e *Engine) AbsorbShard(name string, shardCounts []int64, metric Metric, opts build.Options, est build.Estimator) (*Synopsis, error) {
	_, span := obs.Start(context.Background(), "engine.absorb_shard")
	span.SetAttr("synopsis", name)
	defer span.End()
	if est == nil {
		return nil, fmt.Errorf("engine: absorbing %q: nil shard estimator", name)
	}
	if len(shardCounts) != e.domain {
		return nil, fmt.Errorf("engine: cannot merge domain %d into domain %d", len(shardCounts), e.domain)
	}
	var shardRecords int64
	for v, c := range shardCounts {
		if c < 0 {
			return nil, fmt.Errorf("engine: absorbing %q: negative shard count at value %d", name, v)
		}
		shardRecords += c
	}
	d, err := method.Lookup(opts.Method)
	if err != nil {
		return nil, fmt.Errorf("engine: merging %q: %w", name, err)
	}
	if !d.Caps.Has(method.Mergeable) {
		return nil, fmt.Errorf("engine: %s synopses are not mergeable", d.Name)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if mine, ok := e.synopses[name]; ok {
		if mine.Metric != metric {
			return nil, fmt.Errorf("engine: synopsis %q answers %s here but %s in the source",
				name, mine.Metric, metric)
		}
		dm, err := method.Lookup(mine.Options.Method)
		if err != nil {
			return nil, fmt.Errorf("engine: merging %q: %w", name, err)
		}
		if !dm.Caps.Has(method.Mergeable) {
			return nil, fmt.Errorf("engine: %s synopses are not mergeable", dm.Name)
		}
		merged, err := dm.Merge(mine.Est, est)
		if err != nil {
			return nil, fmt.Errorf("engine: merging %q: %w", name, err)
		}
		est, opts = merged, mine.Options
	}
	for v, c := range shardCounts {
		e.counts[v] += c
	}
	e.records += shardRecords
	e.version++
	e.markDirtyAll()
	// The merged estimator now summarizes the union distribution, so its
	// error model is rebuilt against the post-merge data. A model failure
	// is not fatal: the absorption (a logged, replayable mutation) already
	// happened, so the synopsis just serves without bounds.
	em, _ := errModelFor(opts, e.metricCounts(metric), est)
	s := &Synopsis{Name: name, Metric: metric, Options: opts, Est: est, ErrModel: em, Version: e.version}
	e.synopses[name] = s
	// The merged estimator reflects the post-merge distribution exactly,
	// so its window starts clean (everything else stays fully dirty from
	// the absorption above).
	e.resetWatch(name, opts)
	return s, nil
}

// InstallSynopsis registers a pre-built estimator under the given name
// at the current data version, replacing any previous one. It is the
// recovery path's way to restore checkpointed synopses bit-identically
// instead of rebuilding them; the estimator must span the engine's
// domain.
func (e *Engine) InstallSynopsis(name string, metric Metric, opts build.Options, est build.Estimator) *Synopsis {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Recovered estimators get their error model rebuilt against the
	// recovered data; a failure leaves the synopsis serving unbounded.
	em, _ := errModelFor(opts, e.metricCounts(metric), est)
	s := &Synopsis{Name: name, Metric: metric, Options: opts, Est: est, ErrModel: em, Version: e.version}
	e.synopses[name] = s
	// A restored estimator may predate replayed mutations, so its first
	// rebuild is always a full one.
	e.resetWatch(name, opts)
	if w, ok := e.watch[name]; ok {
		w.markAll()
	}
	return s
}

// DropSynopsis removes a named synopsis; it reports whether it existed.
func (e *Engine) DropSynopsis(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.synopses[name]
	delete(e.synopses, name)
	delete(e.watch, name)
	delete(e.maint, name)
	return ok
}

// Synopsis returns a registered synopsis by name.
func (e *Engine) Synopsis(name string) (*Synopsis, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s, ok := e.synopses[name]
	if !ok {
		return nil, &UnknownSynopsisError{Scope: "engine", Name: name}
	}
	return s, nil
}

// Synopses lists the registered synopses sorted by name.
func (e *Engine) Synopses() []*Synopsis {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Synopsis, 0, len(e.synopses))
	for _, s := range e.synopses {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stale reports how many mutations have happened since the synopsis was
// built.
func (e *Engine) Stale(s *Synopsis) int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.version - s.Version
}

// SetAutoRefresh enables the maintenance policy: a synopsis more than
// threshold mutations stale is rebuilt synchronously before answering.
// threshold ≤ 0 disables the policy (the default).
func (e *Engine) SetAutoRefresh(threshold int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.autoRefresh = threshold
}

// Approx answers a range query from a named synopsis, applying the
// auto-refresh maintenance policy if enabled. The range is clamped; a
// fully-outside range returns 0.
func (e *Engine) Approx(name string, a, b int) (float64, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return 0, err
	}
	e.mu.RLock()
	threshold := e.autoRefresh
	stale := e.version - s.Version
	e.mu.RUnlock()
	if threshold > 0 && stale > threshold {
		// Rebuild from current data; a concurrent refresh of the same
		// synopsis is harmless (last build wins, both are fresh).
		if s, err = e.BuildSynopsis(s.Name, s.Metric, s.Options); err != nil {
			return 0, fmt.Errorf("engine: auto-refresh of %q: %w", name, err)
		}
	}
	a, b, ok := clamp(a, b, e.domain)
	if !ok {
		return 0, nil
	}
	e.observeQuery(name, a, b)
	return s.Est.Estimate(a, b), nil
}

// ApproxAnswer is an approximate answer together with its error
// certificate: a bound on |exact − Value|. Rigorous reports whether the
// bound is a guarantee from the synopsis's error model; when the
// synopsis carries no model the bound is +Inf and Rigorous is false.
type ApproxAnswer struct {
	Value    float64
	ErrBound float64
	Rigorous bool
}

// ApproxWithError answers a range query like Approx and attaches the
// synopsis's per-range error bound. A fully-outside range returns the
// exact answer 0 with a zero bound.
func (e *Engine) ApproxWithError(name string, a, b int) (ApproxAnswer, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return ApproxAnswer{}, err
	}
	e.mu.RLock()
	threshold := e.autoRefresh
	stale := e.version - s.Version
	e.mu.RUnlock()
	if threshold > 0 && stale > threshold {
		if s, err = e.BuildSynopsis(s.Name, s.Metric, s.Options); err != nil {
			return ApproxAnswer{}, fmt.Errorf("engine: auto-refresh of %q: %w", name, err)
		}
	}
	a, b, ok := clamp(a, b, e.domain)
	if !ok {
		return ApproxAnswer{Value: 0, ErrBound: 0, Rigorous: true}, nil
	}
	e.observeQuery(name, a, b)
	ans := ApproxAnswer{Value: s.Est.Estimate(a, b), ErrBound: math.Inf(1)}
	if s.ErrModel != nil {
		ans.ErrBound = s.ErrModel.Bound(a, b)
		ans.Rigorous = s.ErrModel.Rigorous()
	}
	return ans, nil
}

// ApproxBatch answers a batch of range queries from one named synopsis,
// resolving the synopsis and the maintenance policy once for the whole
// batch and fanning the evaluation out over the shared worker pool. Every
// answer comes from the same estimator, so the batch is internally
// consistent even if a concurrent rebuild replaces the synopsis mid-way.
func (e *Engine) ApproxBatch(name string, queries []sse.Range) ([]float64, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	threshold := e.autoRefresh
	stale := e.version - s.Version
	e.mu.RUnlock()
	if threshold > 0 && stale > threshold {
		if s, err = e.BuildSynopsis(s.Name, s.Metric, s.Options); err != nil {
			return nil, fmt.Errorf("engine: auto-refresh of %q: %w", name, err)
		}
	}
	est, domain := s.Est, e.domain
	maintained := e.maintState(name)
	out := make([]float64, len(queries))
	parallel.ForEachChunk(len(queries), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a, b, ok := clamp(queries[i].A, queries[i].B, domain)
			if !ok {
				continue
			}
			if maintained != nil {
				maintained.Observe(a, b)
			}
			out[i] = est.Estimate(a, b)
		}
	})
	return out, nil
}

// Refresh rebuilds a registered synopsis from the current data with its
// original options.
func (e *Engine) Refresh(name string) (*Synopsis, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return nil, err
	}
	return e.BuildSynopsis(s.Name, s.Metric, s.Options)
}

// Report aggregates a synopsis's error over a workload of ranges against
// the current exact data.
func (e *Engine) Report(name string, queries []sse.Range) (sse.Metrics, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return sse.Metrics{}, err
	}
	e.mu.RLock()
	tab := prefix.NewTable(e.metricCounts(s.Metric))
	e.mu.RUnlock()
	return sse.Evaluate(tab, s.Est, queries), nil
}

// SSE returns the exact sum-squared error of a synopsis over all ranges
// of the current data.
func (e *Engine) SSE(name string) (float64, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return 0, err
	}
	e.mu.RLock()
	tab := prefix.NewTable(e.metricCounts(s.Metric))
	e.mu.RUnlock()
	return sse.Of(tab, s.Est), nil
}

// ProgressiveStep is one state of an online-refined answer.
type ProgressiveStep struct {
	// Scanned is how many values of the range have been read exactly.
	Scanned int
	// Of is the range width.
	Of int
	// Estimate is the blended answer at this point: exact mass over the
	// scanned prefix plus the synopsis estimate of the rest.
	Estimate float64
}

// Progressive answers a COUNT or SUM range query in the online-aggregation
// style the paper's introduction motivates: the first step is the pure
// synopsis estimate, each later step replaces more of it with exactly
// scanned data, and the final step is exact. It returns one step per
// chunk (at most chunks+1 and at least 2 for a non-empty range).
func (e *Engine) Progressive(name string, a, b, chunks int) ([]ProgressiveStep, error) {
	s, err := e.Synopsis(name)
	if err != nil {
		return nil, err
	}
	if chunks <= 0 {
		chunks = 10
	}
	a, b, ok := clamp(a, b, e.domain)
	if !ok {
		return []ProgressiveStep{{Scanned: 0, Of: 0, Estimate: 0}}, nil
	}
	e.mu.RLock()
	counts := e.metricCounts(s.Metric)
	e.mu.RUnlock()

	width := b - a + 1
	chunk := (width + chunks - 1) / chunks
	steps := make([]ProgressiveStep, 0, chunks+1)
	steps = append(steps, ProgressiveStep{Scanned: 0, Of: width, Estimate: s.Est.Estimate(a, b)})
	var exact float64
	pos := a
	for pos <= b {
		end := pos + chunk - 1
		if end > b {
			end = b
		}
		for i := pos; i <= end; i++ {
			exact += float64(counts[i])
		}
		est := exact
		if end < b {
			est += s.Est.Estimate(end+1, b)
		}
		steps = append(steps, ProgressiveStep{Scanned: end - a + 1, Of: width, Estimate: est})
		pos = end + 1
	}
	return steps, nil
}
