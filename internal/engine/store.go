package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"rangeagg/internal/build"
	"rangeagg/internal/fsx"
)

// Store manages multiple named columns, each a full Engine with its own
// distribution and synopses — the catalog level of the substrate. It also
// persists itself: Save writes every column's distribution and synopsis
// specifications; Load restores them, rebuilding the synopses
// deterministically from the recorded options (synopses are derived data,
// so specs — not estimator bytes — are the durable form).
type Store struct {
	mu   sync.RWMutex
	name string
	cols map[string]*Engine
}

// NewStore creates an empty store.
func NewStore(name string) *Store {
	return &Store{name: name, cols: make(map[string]*Engine)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// CreateColumn adds a column over the domain [0, domain). The name must
// be new.
func (s *Store) CreateColumn(name string, domain int) (*Engine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.cols[name]; exists {
		return nil, fmt.Errorf("engine: column %q already exists", name)
	}
	e, err := New(name, domain)
	if err != nil {
		return nil, err
	}
	s.cols[name] = e
	return e, nil
}

// Column returns a column by name.
func (s *Store) Column(name string) (*Engine, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.cols[name]
	if !ok {
		return nil, fmt.Errorf("engine: no column named %q", name)
	}
	return e, nil
}

// DropColumn removes a column, reporting whether it existed.
func (s *Store) DropColumn(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cols[name]
	delete(s.cols, name)
	return ok
}

// Columns lists the column names, sorted.
func (s *Store) Columns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.cols))
	for n := range s.cols {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// storeWire is the persistence format.
type storeWire struct {
	Name    string       `json:"name"`
	Columns []columnWire `json:"columns"`
}

type columnWire struct {
	Name     string         `json:"name"`
	Domain   int            `json:"domain"`
	Counts   []int64        `json:"counts"`
	Synopses []synopsisWire `json:"synopses"`
}

type synopsisWire struct {
	Name    string        `json:"name"`
	Metric  Metric        `json:"metric"`
	Options build.Options `json:"options"`
}

// Save writes the store — distributions plus synopsis specifications — as
// JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.cols))
	for n := range s.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	wire := storeWire{Name: s.name}
	for _, n := range names {
		e := s.cols[n]
		cw := columnWire{Name: n, Domain: e.Domain(), Counts: e.Counts()}
		for _, syn := range e.Synopses() {
			cw.Synopses = append(cw.Synopses, synopsisWire{
				Name: syn.Name, Metric: syn.Metric, Options: syn.Options,
			})
		}
		wire.Columns = append(wire.Columns, cw)
	}
	s.mu.RUnlock()
	return json.NewEncoder(w).Encode(wire)
}

// SaveFile writes the store to a file crash-safely: the JSON goes to a
// temp file in the destination directory, is fsynced, and atomically
// renamed over the path, so a crash mid-save never truncates or corrupts
// the previous good copy.
func (s *Store) SaveFile(path string) error {
	return fsx.WriteFileAtomic(path, s.Save)
}

// LoadStoreFile restores a store from a file written by SaveFile (or any
// Save output on disk).
func LoadStoreFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadStore(f)
}

// LoadStore restores a store written by Save, rebuilding every synopsis
// from its recorded options against the restored data.
func LoadStore(r io.Reader) (*Store, error) {
	var wire storeWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("engine: decoding store: %w", err)
	}
	s := NewStore(wire.Name)
	for _, cw := range wire.Columns {
		e, err := s.CreateColumn(cw.Name, cw.Domain)
		if err != nil {
			return nil, err
		}
		if len(cw.Counts) != cw.Domain {
			return nil, fmt.Errorf("engine: column %q has %d counts for domain %d",
				cw.Name, len(cw.Counts), cw.Domain)
		}
		if err := e.Load(cw.Counts); err != nil {
			return nil, fmt.Errorf("engine: column %q: %w", cw.Name, err)
		}
		for _, sw := range cw.Synopses {
			if _, err := e.BuildSynopsis(sw.Name, sw.Metric, sw.Options); err != nil {
				return nil, fmt.Errorf("engine: rebuilding synopsis %q of column %q: %w",
					sw.Name, cw.Name, err)
			}
		}
	}
	return s, nil
}
