package engine

import "fmt"

// UnknownSynopsisError reports a lookup of a synopsis name that is not
// (or no longer) registered. Every layer that resolves synopsis names —
// the engine, the serving snapshots, the facade — returns this one type,
// so callers branch with errors.As instead of matching message shapes.
type UnknownSynopsisError struct {
	// Scope names the layer that failed the lookup ("engine", "serve").
	Scope string
	// Name is the synopsis name that failed to resolve.
	Name string
}

func (e *UnknownSynopsisError) Error() string {
	return fmt.Sprintf("%s: no synopsis named %q", e.Scope, e.Name)
}

// UnknownMetricError reports an unparseable metric name. It is the typed
// counterpart of UnknownSynopsisError for the other identifier queries
// carry, giving the two error paths one shape.
type UnknownMetricError struct {
	// Scope names the layer that failed the parse ("engine", "serve").
	Scope string
	// Name is the metric string that failed to parse.
	Name string
}

func (e *UnknownMetricError) Error() string {
	return fmt.Sprintf("%s: unknown metric %q", e.Scope, e.Name)
}
