package engine

import (
	"strings"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/segment"
)

func newSegEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e, err := New("seg", n)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64((i*29)%13) * 7
	}
	if err := e.Load(counts); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSegmentedPartialRebuild checks the dirty-segment path end to end: a
// point mutation after a segmented build makes the next build of the same
// spec reconstruct only the owning segment, carrying every clean
// segment's histogram over by pointer.
func TestSegmentedPartialRebuild(t *testing.T) {
	e := newSegEngine(t, 512)
	opt := build.Options{Method: build.Segmented, BudgetWords: 40, Segments: 8}
	prev, err := e.BuildSynopsis("s", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(100, 50); err != nil {
		t.Fatal(err)
	}
	next, err := e.BuildSynopsis("s", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if next == prev {
		t.Fatal("mutated engine returned the previous synopsis unchanged")
	}
	ps, ns := prev.Est.(*segment.Segmented), next.Est.(*segment.Segmented)
	dirty := ps.Find(100)
	for i := range ns.Segs {
		if i == dirty {
			if ns.Segs[i] == ps.Segs[i] {
				t.Errorf("dirty segment %d was not rebuilt", i)
			}
		} else if ns.Segs[i] != ps.Segs[i] {
			t.Errorf("clean segment %d was rebuilt instead of reused", i)
		}
	}
	// The refreshed synopsis serves the new data within its own bound.
	ans, err := e.ApproxWithError("s", 90, 110)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(e.ExactCount(90, 110))
	if d := ans.Value - exact; d > ans.ErrBound || -d > ans.ErrBound {
		t.Errorf("post-rebuild answer %g off exact %g beyond bound %g", ans.Value, exact, ans.ErrBound)
	}
}

// TestSegmentedSynopsisReuse checks the clean fast path: rebuilding an
// unchanged spec on unchanged data returns the existing synopsis.
func TestSegmentedSynopsisReuse(t *testing.T) {
	e := newSegEngine(t, 256)
	opt := build.Options{Method: build.Segmented, BudgetWords: 30, Segments: 4}
	first, err := e.BuildSynopsis("s", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.BuildSynopsis("s", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("clean rebuild did not reuse the existing synopsis")
	}
	// A bulk load with mass across the whole domain dirties everything:
	// the next build is a fresh synopsis, not the reused pointer. (A load
	// of all zeros is a no-op and would keep the reuse fast path.)
	bulk := make([]int64, 256)
	for i := range bulk {
		bulk[i] = 1
	}
	if err := e.Load(bulk); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := e.BuildSynopsis("s", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt == first {
		t.Error("bulk load did not force a rebuild")
	}
}

// TestApproxCutoverSubstitution pins the cutover default and checks the
// engine substitutes the (1+ε)-approximate construction at or above it
// while registered options keep the exact method.
func TestApproxCutoverSubstitution(t *testing.T) {
	if build.DefaultApproxCutover != 32768 {
		t.Fatalf("DefaultApproxCutover = %d, want 32768", build.DefaultApproxCutover)
	}
	e := newSegEngine(t, 64)
	opt := build.Options{Method: build.A0, BudgetWords: 12}

	// Domain 64 is under any sensible default; the exact DP builds.
	s, err := e.BuildSynopsis("exact", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s.Est.Name(), "APPROX") {
		t.Errorf("domain under cutover built %q, want the exact construction", s.Est.Name())
	}

	// Lowering the cutover below the domain switches construction to the
	// approximate counterpart; the synopsis still registers as A0.
	e.SetApproxCutover(32)
	s, err = e.BuildSynopsis("approx", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Est.Name(), "A0-APPROX") {
		t.Errorf("domain over cutover built %q, want the approximate construction", s.Est.Name())
	}
	if s.Options.Method != build.A0 {
		t.Errorf("registered method changed to %v; substitution must not leak into options", s.Options.Method)
	}

	// A negative cutover disables substitution outright.
	e.SetApproxCutover(-1)
	s, err = e.BuildSynopsis("disabled", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s.Est.Name(), "APPROX") {
		t.Errorf("disabled cutover still built %q", s.Est.Name())
	}
}
