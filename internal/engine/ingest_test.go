package engine

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/histogram"
	"rangeagg/internal/ingest"
	"rangeagg/internal/prefix"
	"rangeagg/internal/sse"
)

// TestIngestOracleDifferential is the tentpole's correctness pin at the
// engine layer: after any interleaving of inserts and deletes, the
// incrementally maintained synopsis either equals a from-scratch build
// over the same boundaries bit-exactly (absorb path — forced here by
// disabling reopt and setting an untrippable drift threshold), or its
// refreshed error model still covers the true residual on every range.
func TestIngestOracleDifferential(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(11))
	e, err := New("col", n)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]int64, n)
	for i := range initial {
		initial[i] = int64(rng.Intn(40))
	}
	if err := e.Load(initial); err != nil {
		t.Fatal(err)
	}
	opt := build.Options{Method: build.A0, BudgetWords: 24}
	syn, err := e.BuildSynopsis("m", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("m", ingest.Config{Mode: ingest.ModeIncremental, ReoptEvery: -1, DriftThreshold: 1e18}); err != nil {
		t.Fatal(err)
	}
	boundaries := syn.Est.(*histogram.Avg).Buckets

	for batch := 0; batch < 25; batch++ {
		for j := 0; j < 1+rng.Intn(6); j++ {
			v := rng.Intn(n)
			if rng.Intn(3) == 0 {
				cur := e.Counts()[v]
				if cur > 0 {
					d := 1 + rng.Int63n(cur)
					if err := e.Delete(v, d); err != nil {
						t.Fatalf("delete: %v", err)
					}
				}
			} else if err := e.Insert(v, 1+rng.Int63n(9)); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
		syn, err = e.BuildSynopsis("m", Count, opt)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		counts := e.Counts()

		// Absorb-path bit-exactness: same boundaries, from-scratch values.
		got := syn.Est.(*histogram.Avg)
		if !got.Buckets.Equal(boundaries) {
			t.Fatalf("batch %d: boundaries moved without repair/escalate", batch)
		}
		want, err := histogram.NewAvgFromBounds(prefix.NewTable(counts), boundaries, histogram.RoundNone, "want")
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("batch %d bucket %d: maintained %v, from-scratch %v (bit-exact required)",
					batch, i, got.Values[i], want.Values[i])
			}
		}

		// The error model is rebuilt against the maintained estimator, so
		// its rigorous bound must cover the oracle residual on every range.
		if syn.ErrModel == nil || !syn.ErrModel.Rigorous() {
			t.Fatalf("batch %d: maintained synopsis lost its rigorous error model", batch)
		}
		for a := 0; a < n; a += 7 {
			for b := a; b < n; b += 13 {
				resid := math.Abs(syn.Est.Estimate(a, b) - float64(e.ExactCount(a, b)))
				if bound := syn.ErrModel.Bound(a, b); resid > bound+1e-6 {
					t.Fatalf("batch %d: residual %g exceeds bound %g on [%d,%d]", batch, resid, bound, a, b)
				}
			}
		}
	}
}

// TestIngestSegmentedEscalation drives a maintained SEGMENTED synopsis
// into repair and then escalation; BuildSynopsis must hand the
// escalation to the dirty-segment rebuild and come back with a current,
// covered synopsis — and maintenance must resume afterwards.
func TestIngestSegmentedEscalation(t *testing.T) {
	const n = 512
	e, err := New("col", n)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]int64, n)
	for i := range initial {
		initial[i] = 10
	}
	if err := e.Load(initial); err != nil {
		t.Fatal(err)
	}
	opt := build.Options{Method: build.Segmented, BudgetWords: 64, Segments: 4}
	if _, err = e.BuildSynopsis("seg", Count, opt); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("seg", ingest.Config{Mode: ingest.ModeIncremental, ReoptEvery: -1, DriftThreshold: 1.2}); err != nil {
		t.Fatal(err)
	}
	mag := int64(1 << 10)
	for batch := 0; batch < 40; batch++ {
		v := (batch * 37) % n
		if err := e.Insert(v, mag); err != nil {
			t.Fatal(err)
		}
		mag *= 2
		syn, err := e.BuildSynopsis("seg", Count, opt)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if syn.Version != e.Version() {
			t.Fatalf("batch %d: published synopsis is stale (version %d vs %d)", batch, syn.Version, e.Version())
		}
		// Whatever rung ran, the answer stays bounded by the fresh model.
		a, b := v/2, v/2+n/4
		if b > n-1 {
			b = n - 1
		}
		resid := math.Abs(syn.Est.Estimate(a, b) - float64(e.ExactCount(a, b)))
		if bound := syn.ErrModel.Bound(a, b); resid > bound+1e-6 {
			t.Fatalf("batch %d: residual %g exceeds bound %g", batch, resid, bound)
		}
	}
}

func TestEnableIngestValidation(t *testing.T) {
	e, err := New("col", 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i % 7)
	}
	if err := e.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("missing", ingest.Config{Mode: ingest.ModeIncremental}); err == nil {
		t.Fatal("enabled ingest for unknown synopsis")
	}
	// A wavelet synopsis is not a maintainable representation.
	if _, err := e.BuildSynopsis("w", Count, build.Options{Method: build.WaveTopBB, BudgetWords: 16}); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("w", ingest.Config{Mode: ingest.ModeIncremental}); err == nil {
		t.Fatal("enabled ingest for non-maintainable estimator")
	}
	if _, err := e.BuildSynopsis("h", Count, build.Options{Method: build.A0, BudgetWords: 12}); err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("h", ingest.Config{Mode: ingest.ModeIncremental}); err != nil {
		t.Fatal(err)
	}
	if !e.DisableIngest("h") || e.DisableIngest("h") {
		t.Fatal("DisableIngest did not report the transition")
	}
	// Queries on a maintained synopsis feed the drift trigger; on a
	// non-maintained one they are a no-op — both must answer fine.
	if err := e.EnableIngest("h", ingest.Config{Mode: ingest.ModeIncremental}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Approx("h", 3, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApproxWithError("h", 3, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApproxBatch("h", []sse.Range{{A: 0, B: 10}, {A: 5, B: 60}}); err != nil {
		t.Fatal(err)
	}
	if !e.DropSynopsis("h") {
		t.Fatal("drop failed")
	}
	if err := e.EnableIngest("h", ingest.Config{Mode: ingest.ModeIncremental}); err == nil {
		t.Fatal("enabled ingest for dropped synopsis")
	}
}

// TestLoadMarksPreciseWindow pins the satellite fix: a bulk Load whose
// non-zero mass is confined to a narrow window must leave the dirty
// window partial, so a maintained (or dirty-segment) synopsis absorbs
// instead of rebuilding from scratch.
func TestLoadMarksPreciseWindow(t *testing.T) {
	const n = 256
	e, err := New("col", n)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([]int64, n)
	for i := range initial {
		initial[i] = int64(i%9 + 1)
	}
	if err := e.Load(initial); err != nil {
		t.Fatal(err)
	}
	opt := build.Options{Method: build.A0, BudgetWords: 20}
	syn, err := e.BuildSynopsis("m", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.EnableIngest("m", ingest.Config{Mode: ingest.ModeIncremental, ReoptEvery: -1, DriftThreshold: 1e18}); err != nil {
		t.Fatal(err)
	}
	boundaries := syn.Est.(*histogram.Avg).Buckets

	// Additional mass confined to [30,45]: under the old markDirtyAll
	// behaviour this forced a full build (new boundaries, different
	// label); with the precise window the ladder absorbs on the same
	// boundaries.
	batch := make([]int64, n)
	for v := 30; v <= 45; v++ {
		batch[v] = 100
	}
	if err := e.Load(batch); err != nil {
		t.Fatal(err)
	}
	syn, err = e.BuildSynopsis("m", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := syn.Est.(*histogram.Avg)
	if !ok || !got.Buckets.Equal(boundaries) {
		t.Fatal("partial bulk load was not absorbed in place")
	}
	want, err := histogram.NewAvgFromBounds(prefix.NewTable(e.Counts()), boundaries, histogram.RoundNone, "want")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("bucket %d: %v != %v after bulk-load absorb", i, got.Values[i], want.Values[i])
		}
	}

	// An all-zero load mutates nothing and must not dirty the window.
	if err := e.Load(make([]int64, n)); err != nil {
		t.Fatal(err)
	}
	again, err := e.BuildSynopsis("m", Count, opt)
	if err != nil {
		t.Fatal(err)
	}
	if again != syn {
		t.Fatal("no-op load invalidated the synopsis")
	}
}
