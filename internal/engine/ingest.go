package engine

import (
	"fmt"

	"rangeagg/internal/build"
	"rangeagg/internal/ingest"
)

// EnableIngest switches a registered synopsis to incremental
// maintenance: from now on BuildSynopsis absorbs confined mutation
// windows through the ingest ladder (absorb / reopt / repair) and only
// escalations fall back to the rebuild paths. The synopsis must already
// be built and its representation maintainable (ingest.CanMaintain).
func (e *Engine) EnableIngest(name string, cfg ingest.Config) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.synopses[name]
	if !ok {
		return &UnknownSynopsisError{Scope: "engine", Name: name}
	}
	if !ingest.CanMaintain(s.Est) {
		return fmt.Errorf("engine: synopsis %q (%T) is not maintainable", name, s.Est)
	}
	e.maint[name] = ingest.NewState(cfg)
	// Maintenance needs a mutation window even for methods without a
	// registry Rebuild hook. A window created now can only vouch for
	// mutations from now on, so it starts fully dirty unless the synopsis
	// is current.
	if e.watch[name] == nil {
		w := &dirtyWindow{}
		if s.Version != e.version {
			w.markAll()
		}
		e.watch[name] = w
	}
	return nil
}

// DisableIngest returns a synopsis to the rebuild-only paths, reporting
// whether maintenance was enabled. The mutation window is dropped when
// the method cannot use it for partial rebuilds.
func (e *Engine) DisableIngest(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.maint[name]
	delete(e.maint, name)
	if s, reg := e.synopses[name]; reg && !build.CanRebuild(s.Options) {
		delete(e.watch, name)
	}
	return ok
}

// maintState returns the maintenance state of a synopsis, or nil.
func (e *Engine) maintState(name string) *ingest.State {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.maint[name]
}

// observeQuery feeds an answered range into the synopsis's drift
// trigger when it is under maintenance.
func (e *Engine) observeQuery(name string, a, b int) {
	if st := e.maintState(name); st != nil {
		st.Observe(a, b)
	}
}
