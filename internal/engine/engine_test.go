package engine

import (
	"math"
	"sync"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/obs"
	"rangeagg/internal/sse"
)

func newLoaded(t *testing.T) *Engine {
	t.Helper()
	e, err := New("test", 32)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 32)
	for i := range counts {
		counts[i] = int64((i*13)%7) * 10
	}
	if err := e.Load(counts); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", 0); err == nil {
		t.Error("domain 0 accepted")
	}
}

func TestLoadAndExactCount(t *testing.T) {
	e := newLoaded(t)
	counts := e.Counts()
	var want int64
	for v := 3; v <= 10; v++ {
		want += counts[v]
	}
	if got := e.ExactCount(3, 10); got != want {
		t.Errorf("ExactCount(3,10) = %d, want %d", got, want)
	}
	// Clamping.
	if got := e.ExactCount(-5, 100); got != e.Records() {
		t.Errorf("clamped full count = %d, want %d", got, e.Records())
	}
	if got := e.ExactCount(10, 3); got != 0 {
		t.Errorf("inverted range = %d, want 0", got)
	}
}

func TestExactSum(t *testing.T) {
	e, _ := New("s", 5)
	if err := e.Load([]int64{0, 2, 0, 1, 3}); err != nil {
		t.Fatal(err)
	}
	// SUM over [1,4] = 1·2 + 3·1 + 4·3 = 17.
	if got := e.ExactSum(1, 4); got != 17 {
		t.Errorf("ExactSum = %d, want 17", got)
	}
}

func TestLoadValidation(t *testing.T) {
	e, _ := New("x", 4)
	if err := e.Load([]int64{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := e.Load([]int64{1, -2, 3, 4}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestInsertDelete(t *testing.T) {
	e, _ := New("x", 8)
	if err := e.Insert(3, 5); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(9, 1); err == nil {
		t.Error("out-of-domain insert accepted")
	}
	if err := e.Insert(3, 0); err == nil {
		t.Error("zero occurrences accepted")
	}
	if got := e.ExactCount(3, 3); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if err := e.Delete(3, 2); err != nil {
		t.Fatal(err)
	}
	if got := e.ExactCount(3, 3); got != 3 {
		t.Errorf("count after delete = %d, want 3", got)
	}
	if err := e.Delete(3, 10); err == nil {
		t.Error("overdelete accepted")
	}
	if e.Records() != 3 {
		t.Errorf("records = %d, want 3", e.Records())
	}
}

func TestSynopsisLifecycle(t *testing.T) {
	e := newLoaded(t)
	s, err := e.BuildSynopsis("main", Count, build.Options{Method: build.A0, BudgetWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stale(s) != 0 {
		t.Errorf("fresh synopsis stale = %d", e.Stale(s))
	}
	got, err := e.Approx("main", 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(e.Records())) > 1e-6 {
		t.Errorf("full-range approx = %g, want %d", got, e.Records())
	}
	// Mutations make it stale; Refresh resets.
	if err := e.Insert(0, 100); err != nil {
		t.Fatal(err)
	}
	if e.Stale(s) == 0 {
		t.Error("mutation did not raise staleness")
	}
	s2, err := e.Refresh("main")
	if err != nil {
		t.Fatal(err)
	}
	if e.Stale(s2) != 0 {
		t.Error("refreshed synopsis still stale")
	}
	// Listing and dropping.
	if got := e.Synopses(); len(got) != 1 || got[0].Name != "main" {
		t.Errorf("Synopses = %v", got)
	}
	if !e.DropSynopsis("main") {
		t.Error("drop failed")
	}
	if e.DropSynopsis("main") {
		t.Error("double drop succeeded")
	}
	if _, err := e.Approx("main", 0, 3); err == nil {
		t.Error("query on dropped synopsis succeeded")
	}
}

func TestSumSynopsis(t *testing.T) {
	e := newLoaded(t)
	// A0 stores true bucket averages, so the full-domain SUM estimate is
	// exact (the middle pieces of equation (1) are exact).
	if _, err := e.BuildSynopsis("sums", Sum, build.Options{Method: build.A0, BudgetWords: 12}); err != nil {
		t.Fatal(err)
	}
	approx, err := e.Approx("sums", 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(e.ExactSum(0, 31))
	if math.Abs(approx-want) > 1e-6*(1+want) {
		t.Errorf("full-range SUM approx = %g, want %g", approx, want)
	}
	// SAP answers are model-based even for the full range; just require a
	// sane relative error.
	if _, err := e.BuildSynopsis("sums-sap", Sum, build.Options{Method: build.SAP0, BudgetWords: 12}); err != nil {
		t.Fatal(err)
	}
	sapApprox, err := e.Approx("sums-sap", 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sapApprox-want) > 0.5*want {
		t.Errorf("SAP0 full-range SUM approx = %g, want within 50%% of %g", sapApprox, want)
	}
}

func TestApproxClamping(t *testing.T) {
	e := newLoaded(t)
	if _, err := e.BuildSynopsis("m", Count, build.Options{Method: build.EquiWidth, BudgetWords: 8}); err != nil {
		t.Fatal(err)
	}
	got, err := e.Approx("m", -10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-float64(e.Records())) > 1e-6 {
		t.Errorf("clamped approx = %g", got)
	}
	if got, _ := e.Approx("m", 50, 60); got != 0 {
		t.Errorf("outside-domain approx = %g, want 0", got)
	}
}

func TestReportAndSSE(t *testing.T) {
	e := newLoaded(t)
	if _, err := e.BuildSynopsis("m", Count, build.Options{Method: build.SAP1, BudgetWords: 15}); err != nil {
		t.Fatal(err)
	}
	m, err := e.Report("m", sse.AllRanges(32))
	if err != nil {
		t.Fatal(err)
	}
	total, err := e.SSE("m")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.SSE-total) > 1e-6*(1+total) {
		t.Errorf("Report SSE %g != SSE() %g", m.SSE, total)
	}
	if m.Queries != 32*33/2 {
		t.Errorf("queries = %d", m.Queries)
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	e := newLoaded(t)
	if _, err := e.BuildSynopsis("m", Count, build.Options{Method: build.MaxDiff, BudgetWords: 10}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					_ = e.ExactCount(i%32, 31)
				case 1:
					_, _ = e.Approx("m", 0, i%32)
				case 2:
					_ = e.Insert(i%32, 1)
				case 3:
					_ = e.Counts()
				}
			}
		}(g)
	}
	wg.Wait()
	if e.Records() < int64(32) {
		t.Error("records lost")
	}
}

func TestAutoRefresh(t *testing.T) {
	e := newLoaded(t)
	if _, err := e.BuildSynopsis("m", Count, build.Options{Method: build.A0, BudgetWords: 16}); err != nil {
		t.Fatal(err)
	}
	e.SetAutoRefresh(5)
	// Make the synopsis very stale and shift the data substantially.
	for i := 0; i < 10; i++ {
		if err := e.Insert(0, 1000); err != nil {
			t.Fatal(err)
		}
	}
	// The policy must rebuild before answering, so the point query at 0
	// reflects the new mass.
	got, err := e.Approx("m", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got < 5000 {
		t.Fatalf("auto-refresh did not happen: approx(0,0) = %g", got)
	}
	s, err := e.Synopsis("m")
	if err != nil {
		t.Fatal(err)
	}
	if e.Stale(s) != 0 {
		t.Errorf("stale after auto-refresh: %d", e.Stale(s))
	}
	// Disabled policy leaves stale synopses alone.
	e.SetAutoRefresh(0)
	for i := 0; i < 10; i++ {
		if err := e.Insert(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Approx("m", 0, 0); err != nil {
		t.Fatal(err)
	}
	s, _ = e.Synopsis("m")
	if e.Stale(s) == 0 {
		t.Error("disabled auto-refresh still rebuilt")
	}
}

func TestProgressive(t *testing.T) {
	e := newLoaded(t)
	if _, err := e.BuildSynopsis("m", Count, build.Options{Method: build.EquiWidth, BudgetWords: 6}); err != nil {
		t.Fatal(err)
	}
	steps, err := e.Progressive("m", 3, 28, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 2 {
		t.Fatalf("steps = %d", len(steps))
	}
	// First step is the pure synopsis answer.
	syn, _ := e.Approx("m", 3, 28)
	if math.Abs(steps[0].Estimate-syn) > 1e-9 {
		t.Errorf("first step %g != synopsis %g", steps[0].Estimate, syn)
	}
	// Final step is exact and fully scanned.
	last := steps[len(steps)-1]
	if last.Scanned != last.Of {
		t.Errorf("final step scanned %d of %d", last.Scanned, last.Of)
	}
	if want := float64(e.ExactCount(3, 28)); math.Abs(last.Estimate-want) > 1e-9 {
		t.Errorf("final step %g != exact %g", last.Estimate, want)
	}
	// Scanned counts increase strictly.
	for i := 1; i < len(steps); i++ {
		if steps[i].Scanned <= steps[i-1].Scanned {
			t.Errorf("scanned not increasing at %d", i)
		}
	}
	// Degenerate inputs.
	if steps, err := e.Progressive("m", 50, 60, 4); err != nil || len(steps) != 1 {
		t.Errorf("outside-domain: %v %v", steps, err)
	}
	if _, err := e.Progressive("missing", 0, 3, 4); err == nil {
		t.Error("missing synopsis accepted")
	}
	// chunks <= 0 defaults sanely.
	if steps, err := e.Progressive("m", 0, 31, 0); err != nil || len(steps) < 2 {
		t.Errorf("default chunks: %v %v", len(steps), err)
	}
}

func TestBuildSynopsesBatch(t *testing.T) {
	e := newLoaded(t)
	specs := []SynopsisSpec{
		{Name: "a0", Metric: Count, Options: build.Options{Method: build.A0, BudgetWords: 12}},
		{Name: "sap0", Metric: Count, Options: build.Options{Method: build.SAP0, BudgetWords: 12}},
		{Name: "sums", Metric: Sum, Options: build.Options{Method: build.EquiDepth, BudgetWords: 10}},
	}
	out, err := e.BuildSynopses(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(specs) {
		t.Fatalf("built %d of %d", len(out), len(specs))
	}
	for i, s := range out {
		if s.Name != specs[i].Name {
			t.Errorf("out[%d] = %q, want %q (results must keep spec order)", i, s.Name, specs[i].Name)
		}
	}
	// Batch results must be identical to sequential builds of the same specs.
	for _, sp := range specs {
		single, err := build.Build(e.metricCounts(sp.Metric), sp.Options)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Synopsis(sp.Name)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < e.Domain(); a += 3 {
			for b := a; b < e.Domain(); b += 5 {
				if got.Est.Estimate(a, b) != single.Estimate(a, b) {
					t.Fatalf("%s: batch estimate differs from sequential at [%d,%d]", sp.Name, a, b)
				}
			}
		}
	}
	// A failing spec aborts the whole batch without registering anything.
	bad := []SynopsisSpec{
		{Name: "ok", Metric: Count, Options: build.Options{Method: build.A0, BudgetWords: 12}},
		{Name: "boom", Metric: Count, Options: build.Options{Method: build.A0}}, // zero budget
	}
	if _, err := e.BuildSynopses(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if _, err := e.Synopsis("ok"); err == nil {
		t.Error("failed batch still registered a synopsis")
	}
	// Duplicate names are rejected up front.
	dup := []SynopsisSpec{
		{Name: "x", Metric: Count, Options: build.Options{Method: build.Naive}},
		{Name: "x", Metric: Count, Options: build.Options{Method: build.Naive}},
	}
	if _, err := e.BuildSynopses(dup); err == nil {
		t.Error("duplicate names accepted")
	}
	if out, err := e.BuildSynopses(nil); err != nil || out != nil {
		t.Errorf("empty batch: %v %v", out, err)
	}
}

// TestBuildSynopsesSpan checks the engine's build span reaches the
// process tracer with its batch attributes — the piece of the
// build→query trace the serve layer relies on for engine-driven builds.
func TestBuildSynopsesSpan(t *testing.T) {
	e := newLoaded(t)
	before := obs.DefaultTracer.Recorded()
	specs := []SynopsisSpec{
		{Name: "traced", Metric: Count, Options: build.Options{Method: build.A0, BudgetWords: 12}},
	}
	if _, err := e.BuildSynopses(specs); err != nil {
		t.Fatal(err)
	}
	if obs.DefaultTracer.Recorded() <= before {
		t.Fatal("BuildSynopses recorded no span")
	}
	for _, sp := range obs.Recent() {
		if sp.Name == "engine.build_synopses" && sp.Attrs["specs"] == "1" {
			return
		}
	}
	t.Fatal("no engine.build_synopses span with specs=1 in the recent ring")
}
