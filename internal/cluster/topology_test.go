package cluster

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustParse(t *testing.T, js string) *Topology {
	t.Helper()
	topo, err := Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyParseAndNormalize(t *testing.T) {
	topo := mustParse(t, `{
		"domain": 100,
		"nodes": [
			{"id": "b", "addr": "localhost:9002/", "window": [40, 99]},
			{"id": "a", "addr": "http://localhost:9001", "window": [0, 39],
			 "replicas": ["localhost:9003"]}
		]
	}`)
	// Nodes are sorted by window, addrs normalized to scheme + no slash.
	if topo.Nodes[0].ID != "a" || topo.Nodes[1].ID != "b" {
		t.Fatalf("nodes not sorted by window: %v, %v", topo.Nodes[0].ID, topo.Nodes[1].ID)
	}
	if got := topo.Nodes[1].Addr; got != "http://localhost:9002" {
		t.Fatalf("addr not normalized: %q", got)
	}
	if got := topo.Nodes[0].Replicas[0]; got != "http://localhost:9003" {
		t.Fatalf("replica addr not normalized: %q", got)
	}
	if eps := topo.Nodes[0].Endpoints(); len(eps) != 2 || eps[0] != topo.Nodes[0].Addr {
		t.Fatalf("endpoints must lead with the primary: %v", eps)
	}
}

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name, js, wantErr string
	}{
		{"gap", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[0,3]},{"id":"b","addr":"x:2","window":[5,9]}]}`, "owned by no node"},
		{"overlap", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[0,5]},{"id":"b","addr":"x:2","window":[5,9]}]}`, "overlap"},
		{"short", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[0,8]}]}`, "owned by no node"},
		{"dup id", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[0,4]},{"id":"a","addr":"x:2","window":[5,9]}]}`, "duplicate node id"},
		{"no nodes", `{"domain":10,"nodes":[]}`, "no nodes"},
		{"bad domain", `{"domain":0,"nodes":[{"id":"a","addr":"x:1","window":[0,0]}]}`, "must be positive"},
		{"window outside", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[0,10]}]}`, "invalid for domain"},
		{"inverted window", `{"domain":10,"nodes":[{"id":"a","addr":"x:1","window":[4,2]},{"id":"b","addr":"x:2","window":[5,9]}]}`, "invalid for domain"},
		{"no addr", `{"domain":10,"nodes":[{"id":"a","window":[0,9]}]}`, "no addr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.js))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

func TestSplitAndClamp(t *testing.T) {
	topo := mustParse(t, `{"domain":100,"nodes":[
		{"id":"a","addr":"x:1","window":[0,29]},
		{"id":"b","addr":"x:2","window":[30,69]},
		{"id":"c","addr":"x:3","window":[70,99]}]}`)

	parts := topo.Split(10, 80)
	if len(parts) != 3 {
		t.Fatalf("want 3 parts, got %d: %v", len(parts), parts)
	}
	want := []Window{{10, 29}, {30, 69}, {70, 80}}
	total := 0
	for i, p := range parts {
		if p.Window != want[i] {
			t.Fatalf("part %d: window %v, want %v", i, p.Window, want[i])
		}
		if p.Node != i {
			t.Fatalf("part %d owned by node %d", i, p.Node)
		}
		total += p.Window.Width()
	}
	if total != 71 {
		t.Fatalf("parts cover %d values, want 71", total)
	}

	// A range inside one window yields exactly one part.
	if parts := topo.Split(35, 35); len(parts) != 1 || parts[0].Node != 1 {
		t.Fatalf("single-window split: %v", parts)
	}

	// Clamp clips to the domain and reports empty intersections.
	if a, b, ok := topo.Clamp(-5, 200); !ok || a != 0 || b != 99 {
		t.Fatalf("clamp(-5,200) = %d,%d,%v", a, b, ok)
	}
	if _, _, ok := topo.Clamp(120, 140); ok {
		t.Fatal("clamp outside the domain must report empty")
	}
}

func TestWindowJSONRoundTrip(t *testing.T) {
	data, err := json.Marshal(Window{Lo: 3, Hi: 17})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[3,17]" {
		t.Fatalf("window marshals as %s, want [3,17]", data)
	}
	var w Window
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	if w != (Window{Lo: 3, Hi: 17}) {
		t.Fatalf("round-trip gave %+v", w)
	}
}
