package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rangeagg/internal/serve"
)

// startRouterHandler fronts a healthy 2-node cluster with the router's
// HTTP surface.
func startRouterHandler(t *testing.T, counts []int64) (*Router, *httptest.Server) {
	t.Helper()
	router := startCluster(t, counts, 2, RouterConfig{})
	ts := httptest.NewServer(NewHandler(router, serve.NewMetrics()))
	t.Cleanup(ts.Close)
	return router, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHandlerQueryAndTopology(t *testing.T) {
	counts := make([]int64, 64)
	var exact float64
	for i := range counts {
		counts[i] = int64(i % 5)
		if i >= 10 && i <= 50 {
			exact += float64(i % 5)
		}
	}
	_, ts := startRouterHandler(t, counts)

	got := getJSON(t, ts.URL+"/query?a=10&b=50&maxerr=0", http.StatusOK)
	if got["value"].(float64) != exact {
		t.Fatalf("routed value %v, want %v", got["value"], exact)
	}
	if got["partial"].(bool) {
		t.Fatalf("healthy cluster answered partial: %v", got)
	}
	if got["err"].(float64) != 0 || got["rigorous"].(bool) != true {
		t.Fatalf("exact answer bound: %v ± %v", got["err"], got["rigorous"])
	}
	if n := len(got["windows"].([]any)); n != 2 {
		t.Fatalf("want 2 window reports, got %d", n)
	}

	// Bad parameters are 400s.
	for _, q := range []string{"/query?a=x&b=5", "/query?a=1", "/query?a=1&b=5&maxerr=-1"} {
		if resp, err := http.Get(ts.URL + q); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s: status %d, want 400", q, resp.StatusCode)
			}
		}
	}

	topo := getJSON(t, ts.URL+"/topology", http.StatusOK)
	if int(topo["domain"].(float64)) != 64 {
		t.Fatalf("topology domain %v", topo["domain"])
	}

	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["ready"].(bool) != true || health["role"].(string) != "router" {
		t.Fatalf("router healthz: %v", health)
	}

	batch := postJSON(t, ts.URL+"/query/batch", map[string]any{
		"ranges": [][2]int{{0, 63}, {30, 40}}, "maxerr": 0.0,
	}, http.StatusOK)
	values := batch["values"].([]any)
	if len(values) != 2 {
		t.Fatalf("batch values: %v", values)
	}
	served := batch["served"].([]any)
	if served[0].(bool) != true || served[1].(bool) != true {
		t.Fatalf("batch served flags: %v", served)
	}

	// Metrics endpoints respond.
	getJSON(t, ts.URL+"/metrics", http.StatusOK)
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rangeagg_router_subqueries_total") {
		t.Fatal("prometheus exposition misses the router series")
	}
}

func TestHandlerIngestAndLoadForwarding(t *testing.T) {
	counts := make([]int64, 64)
	router, ts := startRouterHandler(t, counts)

	// A full-domain load splits across the two owners.
	load := make([]int64, 64)
	for i := range load {
		load[i] = int64(i)
	}
	res := postJSON(t, ts.URL+"/load", map[string]any{"counts": load}, http.StatusOK)
	if nodes := res["nodes"].([]any); len(nodes) != 2 {
		t.Fatalf("load should reach both owners, got %v", nodes)
	}

	// Ingest routes each mutation to its value's owner (value 5 → n0,
	// value 60 → n1).
	res = postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": 5, "count": 3}, {"value": 60, "count": 7}},
	}, http.StatusOK)
	if nodes := res["nodes"].([]any); len(nodes) != 2 {
		t.Fatalf("ingest should reach both owners, got %v", nodes)
	}
	// A single-owner ingest only touches that owner.
	res = postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": 5, "count": 1}},
	}, http.StatusOK)
	if nodes := res["nodes"].([]any); len(nodes) != 1 || nodes[0].(string) != "n0" {
		t.Fatalf("single-owner ingest reached %v", nodes)
	}

	// The routed data is queryable once the owners republish; poll since
	// node rebuilds are debounced.
	wantTotal := 0.0
	for i := range load {
		wantTotal += float64(i)
	}
	wantTotal += 3 + 7 + 1
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := getJSON(t, ts.URL+"/query?a=0&b=63&maxerr=0", http.StatusOK)
		if got["value"].(float64) == wantTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("routed total %v never reached %v", got["value"], wantTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Validation errors.
	resp, err := http.Post(ts.URL+"/load", "application/json",
		bytes.NewReader([]byte(`{"counts":[1,2,3]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short load: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/ingest", "application/json",
		bytes.NewReader([]byte(fmt.Sprintf(`{"inserts":[{"value":%d,"count":1}]}`, 999))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-domain ingest: status %d", resp.StatusCode)
	}

	_ = router
}

func TestHandlerDegradedHealthz(t *testing.T) {
	counts := make([]int64, 64)
	windows := evenWindows(64, 2)
	live := startNode(t, counts, windows[0])
	dead := httptest.NewServer(nil)
	dead.Close()
	topo := &Topology{Domain: 64, Nodes: []Node{
		{ID: "n0", Addr: live.URL, Window: windows[0]},
		{ID: "n1", Addr: dead.URL, Window: windows[1]},
	}}
	if err := topo.validate(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(topo, RouterConfig{HealthEvery: -1, Backoff: time.Millisecond, Attempts: 2, Timeout: time.Second})
	t.Cleanup(router.Close)
	router.CheckHealth()

	ts := httptest.NewServer(NewHandler(router, serve.NewMetrics()))
	t.Cleanup(ts.Close)
	body := getJSON(t, ts.URL+"/healthz", http.StatusServiceUnavailable)
	if body["ready"].(bool) {
		t.Fatalf("router with an unreachable window must be unready: %v", body)
	}
	if nodes := body["nodes"].([]any); len(nodes) != 2 {
		t.Fatalf("want both endpoints reported, got %v", nodes)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := startRouterHandler(t, make([]int64, 64))
	resp, err := http.Post(ts.URL+"/query", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /query: status %d, want 405", resp.StatusCode)
	}
}
