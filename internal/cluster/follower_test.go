package cluster

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rangeagg/internal/engine"
	"rangeagg/internal/serve"
	"rangeagg/internal/wal"
)

// startPrimary runs a durable node: WAL-backed server exposing
// /checkpoint, the replication pull source.
func startPrimary(t *testing.T, domain int) (*serve.Server, *wal.DB, *httptest.Server) {
	t.Helper()
	db, _, err := wal.Open(t.TempDir(), wal.Options{
		Name: "primary", Domain: domain, Fsync: wal.FsyncOff, CheckpointEvery: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(db.Engine(), clusterSpecs(), serve.Config{Debounce: time.Hour, WAL: db})
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(s, serve.NewMetrics()))
	t.Cleanup(func() { ts.Close(); s.Close(); db.Close() })
	return s, db, ts
}

// startReplica runs a bare non-durable node with no synopses of its
// own; it converges on the primary's shape through spec adoption.
func startReplica(t *testing.T, domain int) *serve.Server {
	t.Helper()
	eng, err := engine.New("replica", domain)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(eng, nil, serve.Config{Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func exactCount(t *testing.T, s *serve.Server, a, b int) float64 {
	t.Helper()
	zero := 0.0
	res, _ := s.QueryOne(serve.Query{Metric: engine.Count, A: a, B: b, MaxErr: &zero})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Value
}

// TestFollowerReplication walks the full replication cycle: pull and
// install, skip when unchanged, converge again after new writes.
func TestFollowerReplication(t *testing.T) {
	const domain = 128
	primary, _, ts := startPrimary(t, domain)
	for v := 0; v < domain; v += 3 {
		if err := primary.Insert(v, int64(v%7)+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Rebuild(); err != nil {
		t.Fatal(err)
	}

	replica := startReplica(t, domain)
	f := &Follower{Primary: ts.URL, Server: replica, AdoptSpecs: true,
		Client: ts.Client(), Every: time.Hour}
	f.Primary = normalizeAddr(f.Primary)

	if err := f.PullOnce(); err != nil {
		t.Fatal(err)
	}
	if f.Applied() == 0 {
		t.Fatal("install did not record the checkpoint index")
	}
	for _, rg := range [][2]int{{0, domain - 1}, {10, 90}, {64, 64}} {
		if got, want := exactCount(t, replica, rg[0], rg[1]), exactCount(t, primary, rg[0], rg[1]); got != want {
			t.Fatalf("replica [%d,%d] = %v, primary %v", rg[0], rg[1], got, want)
		}
	}
	// The replica adopted the primary's synopsis specs.
	names := replica.Snapshot().Names()
	if len(names) != 2 {
		t.Fatalf("replica synopses %v, want the primary's h and s", names)
	}

	// Steady state: an unchanged checkpoint index skips the reinstall.
	rebuilds := replica.Rebuilds()
	if err := f.PullOnce(); err != nil {
		t.Fatal(err)
	}
	if replica.Rebuilds() != rebuilds {
		t.Fatal("unchanged checkpoint must not trigger a reinstall")
	}

	// New writes on the primary: the next pull converges again (the
	// /checkpoint handler folds un-checkpointed records into a fresh
	// checkpoint, so lag is bounded by the pull interval).
	prevApplied := f.Applied()
	if err := primary.Insert(5, 100); err != nil {
		t.Fatal(err)
	}
	if err := primary.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := f.PullOnce(); err != nil {
		t.Fatal(err)
	}
	if f.Applied() <= prevApplied {
		t.Fatalf("applied index did not advance: %d -> %d", prevApplied, f.Applied())
	}
	if got, want := exactCount(t, replica, 0, domain-1), exactCount(t, primary, 0, domain-1); got != want {
		t.Fatalf("replica diverged after new writes: %v vs %v", got, want)
	}
}

// TestFollowerHealthReporting pins the replica readiness contract: a
// follower is unready until its first install, ready while synced, and
// unready again when pulls fail.
func TestFollowerHealthReporting(t *testing.T) {
	const domain = 64
	primary, _, ts := startPrimary(t, domain)
	if err := primary.Insert(3, 9); err != nil {
		t.Fatal(err)
	}

	replica := startReplica(t, domain)
	f := &Follower{Primary: ts.URL, Server: replica, AdoptSpecs: true, Every: time.Hour}
	f.Start()
	defer f.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := replica.Health()
		if h.Follow != nil && h.Follow.Synced {
			if !h.Ready {
				t.Fatalf("synced replica must be ready: %+v", h)
			}
			if h.Follow.Applied == 0 {
				t.Fatalf("synced replica must report its checkpoint index: %+v", h.Follow)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never synced: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Primary gone: the next pull fails and the replica reports unready
	// (it keeps serving its installed state, but the router deprioritizes
	// it).
	ts.Close()
	if err := f.PullOnce(); err == nil {
		t.Fatal("pull from a dead primary must fail")
	}
	replica.SetFollowState(serve.FollowState{Primary: f.Primary, Applied: f.Applied(), Synced: false, PulledAt: time.Now(), Err: "connection refused"})
	if h := replica.Health(); h.Ready {
		t.Fatalf("unsynced replica must be unready: %+v", h)
	}
}

// TestInstallCheckpointRefusals pins the install guard rails: durable
// nodes refuse (their WAL owns their data) and domain mismatches are
// rejected.
func TestInstallCheckpointRefusals(t *testing.T) {
	primary, db, _ := startPrimary(t, 64)
	if err := primary.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rc, _, _, err := db.OpenNewestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	ck, err := wal.DecodeCheckpoint(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}

	if err := primary.InstallCheckpoint(ck, true); err == nil || !strings.Contains(err.Error(), "durable") {
		t.Fatalf("durable node must refuse an install, got %v", err)
	}

	wrong := startReplica(t, 32)
	if err := wrong.InstallCheckpoint(ck, true); err == nil || !strings.Contains(err.Error(), "domain") {
		t.Fatalf("domain mismatch must be rejected, got %v", err)
	}

	right := startReplica(t, 64)
	if err := right.InstallCheckpoint(ck, true); err != nil {
		t.Fatal(err)
	}
	if got := exactCount(t, right, 0, 63); got != 1 {
		t.Fatalf("installed state answers %v, want 1", got)
	}
}
