package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/dataset"
	"rangeagg/internal/engine"
	"rangeagg/internal/serve"
)

func clusterSpecs() []engine.SynopsisSpec {
	return []engine.SynopsisSpec{
		{Name: "h", Metric: engine.Count, Options: build.Options{Method: build.EquiWidth, BudgetWords: 16}},
		{Name: "s", Metric: engine.Sum, Options: build.Options{Method: build.SAP0, BudgetWords: 24}},
	}
}

// startNode runs one segment owner: a full-domain serve.Server whose
// counts are zero outside its owned window (design choice (a): global
// coordinates everywhere, no translation).
func startNode(t *testing.T, counts []int64, w Window) *httptest.Server {
	t.Helper()
	eng, err := engine.New("node", len(counts))
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int64, len(counts))
	copy(owned[w.Lo:w.Hi+1], counts[w.Lo:w.Hi+1])
	if err := eng.Load(owned); err != nil {
		t.Fatal(err)
	}
	// Short debounce: nodes republish promptly after routed writes land.
	s, err := serve.New(eng, clusterSpecs(), serve.Config{Debounce: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewHandler(s, serve.NewMetrics()))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts
}

// evenWindows splits [0,domain) into k contiguous windows.
func evenWindows(domain, k int) []Window {
	ws := make([]Window, k)
	per := domain / k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + per - 1
		if i == k-1 {
			hi = domain - 1
		}
		ws[i] = Window{Lo: lo, Hi: hi}
		lo = hi + 1
	}
	return ws
}

// startCluster runs k nodes over counts and a router fronting them.
// The health poller is disabled; tests sweep explicitly when they need
// observations.
func startCluster(t *testing.T, counts []int64, k int, cfg RouterConfig) *Router {
	t.Helper()
	windows := evenWindows(len(counts), k)
	nodes := make([]Node, k)
	for i, w := range windows {
		ts := startNode(t, counts, w)
		nodes[i] = Node{ID: fmt.Sprintf("n%d", i), Addr: ts.URL, Window: w}
	}
	topo := &Topology{Domain: len(counts), Nodes: nodes}
	if err := topo.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.HealthEvery == 0 {
		cfg.HealthEvery = -1
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	r := NewRouter(topo, cfg)
	t.Cleanup(r.Close)
	return r
}

// startReference runs one full-domain node holding all the data — the
// oracle the routed answers must match bit-exactly.
func startReference(t *testing.T, counts []int64) *serve.Server {
	t.Helper()
	eng, err := engine.New("ref", len(counts))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(eng, clusterSpecs(), serve.Config{Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// boundaryRanges builds ranges that straddle every window boundary of a
// k-node split, plus full-domain, single-window, and single-value
// ranges.
func boundaryRanges(domain, k int) [][2]int {
	var rs [][2]int
	for _, w := range evenWindows(domain, k)[:k-1] {
		b := w.Hi
		rs = append(rs,
			[2]int{b, b + 1},                // tightest straddle
			[2]int{b - 5, b + 5},            // small straddle
			[2]int{0, b},                    // prefix ending on a boundary
			[2]int{b + 1, domain - 1},       // suffix starting after one
			[2]int{b / 2, (b + domain) / 2}, // wide straddle
		)
	}
	rs = append(rs, [2]int{0, domain - 1}, [2]int{3, 7}, [2]int{domain / 2, domain / 2})
	return rs
}

func testDistributions(t *testing.T, n int) map[string][]int64 {
	t.Helper()
	zipf, err := dataset.Zipf(dataset.ZipfConfig{N: n, Alpha: 1.8, MaxCount: 1000, Permute: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := dataset.Uniform(n, 0, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	spiked, err := dataset.Spikes(n, 9, 5000, 13)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]int64{"zipf": zipf.Counts, "uniform": uni.Counts, "spiked": spiked.Counts}
}

// TestRouterOracleDifferential pins the cluster's core guarantee: a
// routed exact query (maxerr=0 escalates every node to its exact
// tables) equals the single-node answer bit-for-bit, for COUNT and SUM,
// across distributions, cluster sizes, and ranges straddling every
// window boundary. Exact answers are integer-valued and far below 2^53,
// so float64 addition across windows is lossless and == is the right
// comparison.
func TestRouterOracleDifferential(t *testing.T) {
	const n = 256
	for name, counts := range testDistributions(t, n) {
		for _, k := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				router := startCluster(t, counts, k, RouterConfig{})
				ref := startReference(t, counts)
				zero := 0.0
				for _, metric := range []engine.Metric{engine.Count, engine.Sum} {
					for _, rg := range boundaryRanges(n, k) {
						want, _ := ref.QueryOne(serve.Query{Metric: metric, A: rg[0], B: rg[1], MaxErr: &zero})
						if want.Err != nil {
							t.Fatal(want.Err)
						}
						res, err := router.Route(context.Background(),
							Query{Metric: metric.String(), A: rg[0], B: rg[1], MaxErr: &zero})
						if err != nil {
							t.Fatalf("%s [%d,%d]: %v", metric, rg[0], rg[1], err)
						}
						if res.Partial {
							t.Fatalf("%s [%d,%d]: unexpected partial answer: %+v", metric, rg[0], rg[1], res.Windows)
						}
						if res.Answer.Value != want.Value {
							t.Fatalf("%s [%d,%d]: routed %v, single-node %v (diff %g)",
								metric, rg[0], rg[1], res.Answer.Value, want.Value, res.Answer.Value-want.Value)
						}
						if res.Answer.Bound != 0 || !res.Answer.Rigorous {
							t.Fatalf("%s [%d,%d]: exact answer carries bound %v rigorous=%v",
								metric, rg[0], rg[1], res.Answer.Bound, res.Answer.Rigorous)
						}
					}
				}
			})
		}
	}
}

// TestRouterBatchOracleDifferential pins the same guarantee for the
// batched path, which groups sub-ranges per node.
func TestRouterBatchOracleDifferential(t *testing.T) {
	const n = 256
	counts := testDistributions(t, n)["zipf"]
	for _, k := range []int{2, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			router := startCluster(t, counts, k, RouterConfig{})
			ref := startReference(t, counts)
			ranges := boundaryRanges(n, k)
			zero := 0.0
			res, err := router.RouteBatch(context.Background(), "", "COUNT", ranges, &zero)
			if err != nil {
				t.Fatal(err)
			}
			if res.Partial {
				t.Fatalf("unexpected partial batch: %+v", res.Windows)
			}
			qs := make([]serve.Query, len(ranges))
			for i, rg := range ranges {
				qs[i] = serve.Query{Metric: engine.Count, A: rg[0], B: rg[1], MaxErr: &zero}
			}
			want, _ := ref.QueryBatch(qs)
			for i := range ranges {
				if !res.Served[i] {
					t.Fatalf("range %v not served in a healthy cluster", ranges[i])
				}
				if res.Values[i] != want[i].Value {
					t.Fatalf("range %v: routed %v, single-node %v", ranges[i], res.Values[i], want[i].Value)
				}
				if res.Errs[i] == nil || *res.Errs[i] != 0 {
					t.Fatalf("range %v: exact batch answer carries bound %v", ranges[i], res.Errs[i])
				}
			}
		})
	}
}

// TestRouterBudgetSplit pins the budget contract: a routed answer with
// maxerr carries a merged rigorous bound within the budget, and the
// true error is within the bound.
func TestRouterBudgetSplit(t *testing.T) {
	const n = 256
	counts := testDistributions(t, n)["zipf"]
	router := startCluster(t, counts, 4, RouterConfig{})
	ref := startReference(t, counts)
	budget := 25.0
	zero := 0.0
	for _, rg := range boundaryRanges(n, 4) {
		res, err := router.Route(context.Background(), Query{Metric: "COUNT", A: rg[0], B: rg[1], MaxErr: &budget})
		if err != nil {
			t.Fatal(err)
		}
		if res.Answer.Bound > budget {
			t.Fatalf("[%d,%d]: merged bound %g exceeds budget %g", rg[0], rg[1], res.Answer.Bound, budget)
		}
		if !res.Answer.Rigorous {
			t.Fatalf("[%d,%d]: bound not rigorous", rg[0], rg[1])
		}
		exact, _ := ref.QueryOne(serve.Query{Metric: engine.Count, A: rg[0], B: rg[1], MaxErr: &zero})
		if diff := abs(res.Answer.Value - exact.Value); diff > res.Answer.Bound {
			t.Fatalf("[%d,%d]: true error %g exceeds claimed bound %g", rg[0], rg[1], diff, res.Answer.Bound)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestRouterFailoverToReplica kills a node's primary and checks the
// router serves its window from the replica — and says so.
func TestRouterFailoverToReplica(t *testing.T) {
	const n = 128
	counts := testDistributions(t, n)["uniform"]
	windows := evenWindows(n, 2)

	deadPrimary := httptest.NewServer(nil)
	deadPrimary.Close() // connection refused from now on
	replica := startNode(t, counts, windows[0])
	live := startNode(t, counts, windows[1])

	topo := &Topology{Domain: n, Nodes: []Node{
		{ID: "n0", Addr: deadPrimary.URL, Window: windows[0], Replicas: []string{replica.URL}},
		{ID: "n1", Addr: live.URL, Window: windows[1]},
	}}
	if err := topo.validate(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(topo, RouterConfig{HealthEvery: -1, Backoff: time.Millisecond, Timeout: time.Second})
	t.Cleanup(router.Close)

	zero := 0.0
	res, err := router.Route(context.Background(), Query{Metric: "COUNT", A: 10, B: n - 10, MaxErr: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("replica failover must not degrade to partial: %+v", res.Windows)
	}
	var exact int64
	for i := 10; i <= n-10; i++ {
		exact += counts[i]
	}
	if res.Answer.Value != float64(exact) {
		t.Fatalf("failover answer %v, want %d", res.Answer.Value, exact)
	}
	foundReplica := false
	for _, w := range res.Windows {
		if w.Node == "n0" {
			if !w.Replica || w.Endpoint != normalizeAddr(replica.URL) {
				t.Fatalf("n0's window should be served by the replica: %+v", w)
			}
			if w.Attempts < 2 {
				t.Fatalf("failover with cold health state should need >1 attempt, got %d", w.Attempts)
			}
			foundReplica = true
		}
	}
	if !foundReplica {
		t.Fatalf("no report for n0: %+v", res.Windows)
	}

	// After a health sweep the dead primary is known dead: the replica is
	// tried first and the window is served on the first attempt.
	router.CheckHealth()
	res, err = router.Route(context.Background(), Query{Metric: "COUNT", A: 10, B: n - 10, MaxErr: &zero})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Windows {
		if w.Node == "n0" && w.Attempts != 1 {
			t.Fatalf("with health state the replica should answer first try, got %d attempts", w.Attempts)
		}
	}
}

// TestRouterPartialAnswer kills a whole node (no replicas) and checks
// the partial-answer contract: the other windows still answer exactly,
// the failed window is reported, and the merged value is the partial
// sum — never a silently wrong total.
func TestRouterPartialAnswer(t *testing.T) {
	const n = 128
	counts := testDistributions(t, n)["spiked"]
	windows := evenWindows(n, 2)

	live := startNode(t, counts, windows[0])
	dead := httptest.NewServer(nil)
	dead.Close()

	topo := &Topology{Domain: n, Nodes: []Node{
		{ID: "n0", Addr: live.URL, Window: windows[0]},
		{ID: "n1", Addr: dead.URL, Window: windows[1]},
	}}
	if err := topo.validate(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(topo, RouterConfig{HealthEvery: -1, Backoff: time.Millisecond, Attempts: 2, Timeout: time.Second})
	t.Cleanup(router.Close)

	zero := 0.0
	res, err := router.Route(context.Background(), Query{Metric: "COUNT", A: 0, B: n - 1, MaxErr: &zero})
	if err != nil {
		t.Fatalf("a partial answer is a result, not an error: %v", err)
	}
	if !res.Partial {
		t.Fatal("losing a window must mark the answer partial")
	}
	var statuses []string
	for _, w := range res.Windows {
		statuses = append(statuses, w.Node+"="+w.Status)
	}
	if len(res.Windows) != 2 || res.Windows[0].Status != "exact" || res.Windows[1].Status != "failed" {
		t.Fatalf("window reports: %v", statuses)
	}
	var partial int64
	for i := windows[0].Lo; i <= windows[0].Hi; i++ {
		partial += counts[i]
	}
	if res.Answer.Value != float64(partial) {
		t.Fatalf("partial value %v, want the served windows' sum %d", res.Answer.Value, partial)
	}

	// A range entirely inside the live window is unaffected.
	res, err = router.Route(context.Background(), Query{Metric: "COUNT", A: 0, B: windows[0].Hi, MaxErr: &zero})
	if err != nil || res.Partial {
		t.Fatalf("live-window query: err=%v partial=%v", err, res.Partial)
	}

	// A range entirely inside the dead window fails outright.
	if _, err = router.Route(context.Background(), Query{Metric: "COUNT", A: windows[1].Lo, B: n - 1, MaxErr: &zero}); err == nil {
		t.Fatal("a query all of whose windows failed must return an error")
	}
}

// TestRouterBatchPartial pins the batch Served contract when one node
// is down: ranges touching the dead window are flagged unserved, ranges
// inside live windows stay bit-exact.
func TestRouterBatchPartial(t *testing.T) {
	const n = 128
	counts := testDistributions(t, n)["uniform"]
	windows := evenWindows(n, 2)
	live := startNode(t, counts, windows[0])
	dead := httptest.NewServer(nil)
	dead.Close()

	topo := &Topology{Domain: n, Nodes: []Node{
		{ID: "n0", Addr: live.URL, Window: windows[0]},
		{ID: "n1", Addr: dead.URL, Window: windows[1]},
	}}
	if err := topo.validate(); err != nil {
		t.Fatal(err)
	}
	router := NewRouter(topo, RouterConfig{HealthEvery: -1, Backoff: time.Millisecond, Attempts: 2, Timeout: time.Second})
	t.Cleanup(router.Close)

	b := windows[0].Hi
	ranges := [][2]int{
		{0, b},         // live only
		{b - 3, b + 3}, // straddles into the dead window
		{b + 1, n - 1}, // dead only
	}
	zero := 0.0
	res, err := router.RouteBatch(context.Background(), "", "COUNT", ranges, &zero)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("batch touching a dead window must be partial")
	}
	if !res.Served[0] || res.Served[1] || res.Served[2] {
		t.Fatalf("served flags %v, want [true false false]", res.Served)
	}
	var exact int64
	for i := 0; i <= b; i++ {
		exact += counts[i]
	}
	if res.Values[0] != float64(exact) {
		t.Fatalf("served range value %v, want %d", res.Values[0], exact)
	}
}

// TestRouterOutsideDomain pins the zero-answer convention for ranges
// that miss the domain entirely.
func TestRouterOutsideDomain(t *testing.T) {
	counts := make([]int64, 64)
	router := startCluster(t, counts, 2, RouterConfig{})
	res, err := router.Route(context.Background(), Query{Metric: "COUNT", A: 100, B: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Answer.Value != 0 || res.Answer.Bound != 0 || !res.Answer.Rigorous {
		t.Fatalf("out-of-domain range must answer an exact zero: %+v", res.Answer)
	}
}
