package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
	"rangeagg/internal/plan"
)

// Router metrics (process-wide): fan-out latency per routed query,
// per-attempt sub-query latency, and the degradation counters the
// cluster dashboards alarm on.
var (
	fanoutSeconds   = obs.Default.Histogram("rangeagg_router_fanout_seconds")
	subquerySeconds = obs.Default.Histogram("rangeagg_router_subquery_seconds")
	subqueriesTotal = obs.Default.Counter("rangeagg_router_subqueries_total")
	retriesTotal    = obs.Default.Counter("rangeagg_router_retries_total")
	failoversTotal  = obs.Default.Counter("rangeagg_router_failovers_total")
	degradedTotal   = obs.Default.Counter("rangeagg_router_degraded_total")
)

// RouterConfig tunes the router; zero values select the defaults.
type RouterConfig struct {
	// Timeout bounds each sub-query attempt (default 2s).
	Timeout time.Duration
	// Attempts caps the attempts per window — the first try plus
	// failover retries across the owner's endpoints (default: one per
	// endpoint plus one, so a flapping primary gets a second chance).
	Attempts int
	// Backoff is the base retry delay; it doubles per attempt with up to
	// 50% jitter (default 25ms).
	Backoff time.Duration
	// HealthEvery is the health-poll interval (default 1s); negative
	// disables the background poller (observations then come only from
	// explicit CheckHealth calls, as in tests).
	HealthEvery time.Duration
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = time.Second
	}
	return c
}

// Query is one routed request, mirroring serve.Query with the metric as
// its wire name.
type Query struct {
	Synopsis string
	Metric   string
	A, B     int
	MaxErr   *float64
}

// WindowReport says how one window of a routed query was served; the
// partial-answer contract is the list of these. Status is "exact"
// (served with a zero bound), "approx" (served with a nonzero or
// unknown bound), or "failed" (no owner endpoint answered — the merged
// value is missing this window's contribution).
type WindowReport struct {
	Window   Window `json:"range"`
	Node     string `json:"node"`
	Endpoint string `json:"endpoint,omitempty"`
	Status   string `json:"status"`
	// Replica is true when a failover replica (not the primary) served
	// the window.
	Replica  bool   `json:"replica,omitempty"`
	Attempts int    `json:"attempts"`
	Path     string `json:"path,omitempty"`
	Err      string `json:"err,omitempty"`
}

// RouteResult is one merged answer plus the per-window account of how
// it was assembled. When Partial is true some windows failed: Answer
// covers only the served windows and its bound certifies nothing about
// the missing ones — the caller sees exactly which ranges those are.
type RouteResult struct {
	Answer   plan.Answer
	Partial  bool
	Windows  []WindowReport
	Versions map[string]int64
}

// BatchResult is the routed batch answer: per-range values and bounds
// (nil bound = unbounded), Served flags (false when a failed window
// truncates that range's value), and the shared window reports.
type BatchResult struct {
	Values   []float64
	Errs     []*float64
	Served   []bool
	Partial  bool
	Windows  []WindowReport
	Versions map[string]int64
}

// Router fans queries out across a topology's segment owners and merges
// the answers. It is stateless apart from health observations: any
// number of routers can front the same topology. Safe for concurrent
// use; Close stops the health poller.
type Router struct {
	topo   *Topology
	cfg    RouterConfig
	client *http.Client
	health *healthTracker

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewRouter builds a router over a validated topology and starts its
// health poller (unless disabled).
func NewRouter(topo *Topology, cfg RouterConfig) *Router {
	cfg = cfg.withDefaults()
	client := &http.Client{Timeout: cfg.Timeout}
	r := &Router{
		topo:   topo,
		cfg:    cfg,
		client: client,
		health: newHealthTracker(topo, client),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.healthLoop()
	return r
}

// Topology returns the router's validated topology.
func (r *Router) Topology() *Topology { return r.topo }

// Close stops the health poller.
func (r *Router) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	<-r.done
}

// CheckHealth sweeps every endpoint's /healthz once, synchronously.
func (r *Router) CheckHealth() { r.health.checkAll() }

// NodeHealths reports the latest health observation per endpoint.
func (r *Router) NodeHealths() []NodeHealth { return r.health.snapshot() }

// Ready reports whether every window has at least one endpoint not
// known to be dead — the router's own /healthz readiness.
func (r *Router) Ready() bool {
	for i := range r.topo.Nodes {
		anyUsable := false
		for _, ep := range r.topo.Nodes[i].Endpoints() {
			if nh, ok := r.health.get(ep); !ok || nh.Live {
				anyUsable = true
				break
			}
		}
		if !anyUsable {
			return false
		}
	}
	return true
}

func (r *Router) healthLoop() {
	defer close(r.done)
	if r.cfg.HealthEvery < 0 {
		<-r.stop
		return
	}
	r.health.checkAll()
	tick := time.NewTicker(r.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.health.checkAll()
		}
	}
}

// maxAttempts resolves the per-window attempt cap for a node.
func (r *Router) maxAttempts(n *Node) int {
	if r.cfg.Attempts > 0 {
		return r.cfg.Attempts
	}
	return len(n.Endpoints()) + 1
}

// backoff sleeps before retry attempt (1-based), exponential with up to
// 50% jitter, honoring cancellation.
func (r *Router) backoff(ctx context.Context, attempt int) {
	d := r.cfg.Backoff << (attempt - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// permanentError marks a sub-query failure retries cannot fix (the node
// rejected the request itself, e.g. an unknown synopsis name).
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

// Route answers one query across the cluster. The merged value is the
// sum of the per-window answers (exact by cum-diff composition over the
// disjoint windows); the merged bound is the sum of the per-window
// bounds. A finite MaxErr is divided across the windows proportionally
// to their widths, so the merged bound meets it whenever every window's
// owner does. Windows whose owner (and replicas) cannot be reached
// within the attempt budget are reported failed and the result is
// Partial — never silently wrong.
//
// An error is returned only when no window was served at all; a partial
// answer is a result, not an error.
func (r *Router) Route(ctx context.Context, q Query) (RouteResult, error) {
	start := time.Now()
	defer func() { fanoutSeconds.Since(start) }()

	res := RouteResult{Versions: make(map[string]int64)}
	a, b, ok := r.topo.Clamp(q.A, q.B)
	if !ok {
		// Fully outside the domain: the exact zero, served by no node.
		res.Answer = plan.MergeAnswers()
		return res, nil
	}
	parts := r.topo.Split(a, b)
	weights := make([]int, len(parts))
	for i, p := range parts {
		weights[i] = p.Window.Width()
	}
	budgets := r.splitBudget(q.MaxErr, weights)

	answers := make([]plan.Answer, len(parts))
	reports := make([]WindowReport, len(parts))
	versions := make([]int64, len(parts))
	served := make([]bool, len(parts))
	tasks := make([]func(), len(parts))
	for i := range parts {
		i := i
		tasks[i] = func() {
			answers[i], versions[i], reports[i], served[i] =
				r.subQuery(ctx, q, parts[i], budgets[i])
		}
	}
	parallel.Do(tasks...)

	var ok0 []plan.Answer
	var firstErr string
	for i := range parts {
		res.Windows = append(res.Windows, reports[i])
		if served[i] {
			ok0 = append(ok0, answers[i])
			res.Versions[r.topo.Nodes[parts[i].Node].ID] = versions[i]
		} else {
			res.Partial = true
			if firstErr == "" {
				firstErr = reports[i].Err
			}
		}
	}
	res.Answer = plan.MergeAnswers(ok0...)
	if res.Partial {
		degradedTotal.Inc()
		if len(ok0) == 0 {
			return res, fmt.Errorf("cluster: no window served: %s", firstErr)
		}
	}
	return res, nil
}

// splitBudget turns the optional MaxErr into per-window budgets (NaN =
// no budget, matching the planner convention).
func (r *Router) splitBudget(maxErr *float64, weights []int) []float64 {
	budget := math.NaN()
	if maxErr != nil {
		budget = *maxErr
	}
	return plan.SplitBudget(budget, weights)
}

// subQuery serves one window from its owner, failing over through the
// health-ordered endpoints with backoff between attempts.
func (r *Router) subQuery(ctx context.Context, q Query, p Part, budget float64) (plan.Answer, int64, WindowReport, bool) {
	node := &r.topo.Nodes[p.Node]
	rep := WindowReport{Window: p.Window, Node: node.ID}
	endpoints := r.health.order(node.Endpoints())
	maxAttempts := r.maxAttempts(node)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			retriesTotal.Inc()
			r.backoff(ctx, attempt)
			if ctx.Err() != nil {
				rep.Status, rep.Err = "failed", ctx.Err().Error()
				return plan.Answer{}, 0, rep, false
			}
		}
		ep := endpoints[attempt%len(endpoints)]
		rep.Attempts = attempt + 1
		ans, version, err := r.queryEndpoint(ctx, ep, q, p.Window, budget)
		if err == nil {
			rep.Endpoint = ep
			rep.Replica = ep != node.Addr
			rep.Path = ans.Path.String()
			if ans.Bound == 0 && ans.Rigorous {
				rep.Status = "exact"
			} else {
				rep.Status = "approx"
			}
			if rep.Replica {
				failoversTotal.Inc()
			}
			return ans, version, rep, true
		}
		rep.Err = err.Error()
		var pe *permanentError
		if errors.As(err, &pe) {
			break
		}
	}
	rep.Status = "failed"
	return plan.Answer{}, 0, rep, false
}

// queryEndpoint performs one GET /query attempt against one endpoint.
func (r *Router) queryEndpoint(ctx context.Context, endpoint string, q Query, w Window, budget float64) (plan.Answer, int64, error) {
	start := time.Now()
	subqueriesTotal.Inc()
	defer func() { subquerySeconds.Since(start) }()

	v := url.Values{}
	v.Set("a", strconv.Itoa(w.Lo))
	v.Set("b", strconv.Itoa(w.Hi))
	if q.Metric != "" {
		v.Set("metric", q.Metric)
	}
	if q.Synopsis != "" {
		v.Set("syn", q.Synopsis)
	}
	if !math.IsNaN(budget) {
		v.Set("maxerr", strconv.FormatFloat(budget, 'g', -1, 64))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint+"/query?"+v.Encode(), nil)
	if err != nil {
		return plan.Answer{}, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return plan.Answer{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return plan.Answer{}, 0, httpError(resp)
	}
	var body struct {
		Value    float64  `json:"value"`
		Version  int64    `json:"version"`
		Path     string   `json:"path"`
		Source   string   `json:"source"`
		Err      *float64 `json:"err"`
		Rigorous bool     `json:"rigorous"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return plan.Answer{}, 0, fmt.Errorf("decoding answer from %s: %w", endpoint, err)
	}
	ans := plan.Answer{Value: body.Value, Bound: math.Inf(1), Source: body.Source}
	if body.Err != nil {
		ans.Bound, ans.Rigorous = *body.Err, body.Rigorous
	}
	if path, ok := plan.ParsePath(body.Path); ok {
		ans.Path = path
	} else {
		ans.Path = plan.PathProbe
	}
	return ans, body.Version, nil
}

// httpError classifies a non-200 response: 4xx are permanent (the
// request itself is bad — retrying another endpoint cannot help), 5xx
// and everything else are transient.
func httpError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if data, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
		if json.Unmarshal(data, &body) == nil && body.Error != "" {
			msg = fmt.Sprintf("%s: %s", resp.Status, body.Error)
		}
	}
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		return &permanentError{msg: msg}
	}
	return fmt.Errorf("%s", msg)
}

// RouteBatch answers a batch of ranges (sharing one synopsis, metric,
// and budget, like the node batch API) across the cluster with one
// batched sub-request per owning node: R ranges over K nodes cost at
// most K·(1+retries) HTTP round-trips, not R·K. Each range's budget is
// split across its windows by width; a node receives the minimum of its
// sub-range budgets (batch sub-requests carry one budget), which is
// conservative — every sub-range bound then fits its own share, so each
// merged range bound meets the whole budget.
func (r *Router) RouteBatch(ctx context.Context, synopsis, metric string, ranges [][2]int, maxErr *float64) (BatchResult, error) {
	start := time.Now()
	defer func() { fanoutSeconds.Since(start) }()

	res := BatchResult{
		Values:   make([]float64, len(ranges)),
		Errs:     make([]*float64, len(ranges)),
		Served:   make([]bool, len(ranges)),
		Versions: make(map[string]int64),
	}
	bounds := make([]float64, len(ranges)) // accumulating per-range bound
	rigorous := make([]bool, len(ranges))
	for i := range ranges {
		res.Served[i], rigorous[i] = true, true
	}

	// Split every range and group the parts per owning node.
	type subRange struct {
		rangeIdx int
		w        Window
		budget   float64
	}
	perNode := make([][]subRange, len(r.topo.Nodes))
	for i, rg := range ranges {
		a, b, ok := r.topo.Clamp(rg[0], rg[1])
		if !ok {
			continue // exact zero, no node involved
		}
		parts := r.topo.Split(a, b)
		weights := make([]int, len(parts))
		for j, p := range parts {
			weights[j] = p.Window.Width()
		}
		budgets := r.splitBudget(maxErr, weights)
		for j, p := range parts {
			perNode[p.Node] = append(perNode[p.Node], subRange{rangeIdx: i, w: p.Window, budget: budgets[j]})
		}
	}

	type nodeResult struct {
		values  []float64
		errs    []*float64
		version int64
		report  WindowReport
		ok      bool
	}
	results := make([]nodeResult, len(r.topo.Nodes))
	var tasks []func()
	for ni := range r.topo.Nodes {
		if len(perNode[ni]) == 0 {
			continue
		}
		ni := ni
		tasks = append(tasks, func() {
			subs := perNode[ni]
			subRanges := make([][2]int, len(subs))
			budget := math.NaN()
			for j, s := range subs {
				subRanges[j] = [2]int{s.w.Lo, s.w.Hi}
				if !math.IsNaN(s.budget) && (math.IsNaN(budget) || s.budget < budget) {
					budget = s.budget
				}
			}
			values, errs, version, report, ok := r.batchNode(ctx, ni, synopsis, metric, subRanges, budget)
			results[ni] = nodeResult{values: values, errs: errs, version: version, report: report, ok: ok}
		})
	}
	parallel.Do(tasks...)

	var firstErr string
	anyServed := false
	for ni := range r.topo.Nodes {
		subs := perNode[ni]
		if len(subs) == 0 {
			continue
		}
		nr := &results[ni]
		res.Windows = append(res.Windows, nr.report)
		if !nr.ok {
			res.Partial = true
			if firstErr == "" {
				firstErr = nr.report.Err
			}
			for _, s := range subs {
				res.Served[s.rangeIdx] = false
			}
			continue
		}
		anyServed = true
		res.Versions[r.topo.Nodes[ni].ID] = nr.version
		for j, s := range subs {
			res.Values[s.rangeIdx] += nr.values[j]
			if nr.errs[j] == nil {
				bounds[s.rangeIdx] = math.Inf(1)
				rigorous[s.rangeIdx] = false
			} else {
				bounds[s.rangeIdx] += *nr.errs[j]
			}
		}
	}
	for i := range ranges {
		if res.Served[i] && !math.IsInf(bounds[i], 1) && rigorous[i] {
			bound := bounds[i]
			res.Errs[i] = &bound
		}
	}
	if res.Partial {
		degradedTotal.Inc()
		if !anyServed {
			return res, fmt.Errorf("cluster: no window served: %s", firstErr)
		}
	}
	return res, nil
}

// batchNode sends one node its batched sub-ranges, failing over through
// its endpoints like subQuery. The report covers the node's whole owned
// window (its sub-ranges all lie inside it).
func (r *Router) batchNode(ctx context.Context, ni int, synopsis, metric string, subRanges [][2]int, budget float64) ([]float64, []*float64, int64, WindowReport, bool) {
	node := &r.topo.Nodes[ni]
	rep := WindowReport{Window: node.Window, Node: node.ID}
	endpoints := r.health.order(node.Endpoints())
	maxAttempts := r.maxAttempts(node)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			retriesTotal.Inc()
			r.backoff(ctx, attempt)
			if ctx.Err() != nil {
				rep.Status, rep.Err = "failed", ctx.Err().Error()
				return nil, nil, 0, rep, false
			}
		}
		ep := endpoints[attempt%len(endpoints)]
		rep.Attempts = attempt + 1
		values, errs, version, err := r.batchEndpoint(ctx, ep, synopsis, metric, subRanges, budget)
		if err == nil {
			rep.Endpoint = ep
			rep.Replica = ep != node.Addr
			rep.Status = "approx"
			allExact := true
			for _, e := range errs {
				if e == nil || *e != 0 {
					allExact = false
					break
				}
			}
			if allExact {
				rep.Status = "exact"
			}
			if rep.Replica {
				failoversTotal.Inc()
			}
			return values, errs, version, rep, true
		}
		rep.Err = err.Error()
		var pe *permanentError
		if errors.As(err, &pe) {
			break
		}
	}
	rep.Status = "failed"
	return nil, nil, 0, rep, false
}

// batchEndpoint performs one POST /query/batch attempt.
func (r *Router) batchEndpoint(ctx context.Context, endpoint, synopsis, metric string, subRanges [][2]int, budget float64) ([]float64, []*float64, int64, error) {
	start := time.Now()
	subqueriesTotal.Inc()
	defer func() { subquerySeconds.Since(start) }()

	reqBody := map[string]any{"ranges": subRanges}
	if synopsis != "" {
		reqBody["synopsis"] = synopsis
	}
	if metric != "" {
		reqBody["metric"] = metric
	}
	if !math.IsNaN(budget) {
		reqBody["maxerr"] = budget
	}
	data, err := json.Marshal(reqBody)
	if err != nil {
		return nil, nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint+"/query/batch", bytes.NewReader(data))
	if err != nil {
		return nil, nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, 0, httpError(resp)
	}
	var body struct {
		Values  []float64  `json:"values"`
		Errs    []*float64 `json:"errs"`
		Version int64      `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, nil, 0, fmt.Errorf("decoding batch from %s: %w", endpoint, err)
	}
	if len(body.Values) != len(subRanges) {
		return nil, nil, 0, &permanentError{msg: fmt.Sprintf("%s returned %d values for %d ranges", endpoint, len(body.Values), len(subRanges))}
	}
	if body.Errs == nil {
		body.Errs = make([]*float64, len(subRanges))
	}
	return body.Values, body.Errs, body.Version, nil
}
