package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
	"rangeagg/internal/serve"
)

// NewHandler exposes a Router over HTTP/JSON with the same query
// surface as a single node, so clients (synquery among them) can point
// at a router instead of a node without changing shape:
//
//	GET  /healthz       router readiness (every window reachable) plus
//	                    the latest health observation per node endpoint
//	GET  /topology      the validated topology descriptor
//	GET  /query         one routed query: ?a=&b=[&syn=][&metric=][&maxerr=]
//	POST /query/batch   {"synopsis","metric","ranges":[[a,b],...],"maxerr"}
//	POST /ingest        {"inserts":[{"value","count"}],"deletes":[...]}
//	                    — mutations forwarded to each value's owner
//	POST /load          {"counts":[...]} — a full-domain load split into
//	                    per-owner slices
//	GET  /metrics       per-endpoint request/error/latency stats (JSON)
//	GET  /metrics.prom  the same plus the process-wide obs series
//
// Routed answers add the partial-answer contract to the node response:
// "partial" plus a "windows" list reporting, for every owned window the
// range touched, whether it was served exactly, approximately, or not
// at all.
func NewHandler(r *Router, m *serve.Metrics) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, method string, fn func(w http.ResponseWriter, req *http.Request) (int, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
			start := time.Now()
			status, err := 0, error(nil)
			if req.Method != method {
				status = http.StatusMethodNotAllowed
				err = fmt.Errorf("method %s not allowed", req.Method)
			} else {
				status, err = fn(w, req)
			}
			if err != nil {
				routerWriteJSON(w, status, map[string]string{"error": err.Error()})
			}
			m.Observe(strings.TrimPrefix(pattern, "/"), time.Since(start), err != nil)
		})
	}

	handle("/healthz", http.MethodGet, func(w http.ResponseWriter, req *http.Request) (int, error) {
		ready := r.Ready()
		status := http.StatusOK
		if !ready {
			status = http.StatusServiceUnavailable
		}
		body := map[string]any{
			"status": map[bool]string{true: "ok", false: "degraded"}[ready],
			"ready":  ready,
			"role":   "router",
			"nodes":  r.NodeHealths(),
		}
		routerWriteJSON(w, status, body)
		return 0, nil
	})

	handle("/topology", http.MethodGet, func(w http.ResponseWriter, req *http.Request) (int, error) {
		routerWriteJSON(w, http.StatusOK, r.Topology())
		return 0, nil
	})

	handle("/query", http.MethodGet, func(w http.ResponseWriter, req *http.Request) (int, error) {
		q, err := queryFromURL(req)
		if err != nil {
			return http.StatusBadRequest, err
		}
		res, err := r.Route(req.Context(), q)
		if err != nil {
			return http.StatusBadGateway, err
		}
		resp := map[string]any{
			"value":    res.Answer.Value,
			"path":     res.Answer.Path.String(),
			"source":   res.Answer.Source,
			"partial":  res.Partial,
			"windows":  res.Windows,
			"versions": res.Versions,
		}
		if !math.IsInf(res.Answer.Bound, 1) {
			resp["err"] = res.Answer.Bound
			resp["rigorous"] = res.Answer.Rigorous
		}
		routerWriteJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	handle("/query/batch", http.MethodPost, func(w http.ResponseWriter, req *http.Request) (int, error) {
		var body struct {
			Synopsis string   `json:"synopsis"`
			Metric   string   `json:"metric"`
			Ranges   [][2]int `json:"ranges"`
			MaxErr   *float64 `json:"maxerr"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding batch request: %w", err)
		}
		if body.MaxErr != nil && (*body.MaxErr < 0 || math.IsNaN(*body.MaxErr)) {
			return http.StatusBadRequest, fmt.Errorf("maxerr must be a non-negative number, got %g", *body.MaxErr)
		}
		res, err := r.RouteBatch(req.Context(), body.Synopsis, body.Metric, body.Ranges, body.MaxErr)
		if err != nil {
			return http.StatusBadGateway, err
		}
		routerWriteJSON(w, http.StatusOK, map[string]any{
			"values":   res.Values,
			"errs":     res.Errs,
			"served":   res.Served,
			"partial":  res.Partial,
			"windows":  res.Windows,
			"versions": res.Versions,
		})
		return 0, nil
	})

	handle("/ingest", http.MethodPost, func(w http.ResponseWriter, req *http.Request) (int, error) {
		var body struct {
			Inserts []mutation `json:"inserts"`
			Deletes []mutation `json:"deletes"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding ingest request: %w", err)
		}
		applied, err := r.forwardIngest(req, body.Inserts, body.Deletes)
		if err != nil {
			return http.StatusBadGateway, err
		}
		routerWriteJSON(w, http.StatusOK, map[string]any{"ok": true, "nodes": applied})
		return 0, nil
	})

	handle("/load", http.MethodPost, func(w http.ResponseWriter, req *http.Request) (int, error) {
		var body struct {
			Counts []int64 `json:"counts"`
		}
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding load request: %w", err)
		}
		if len(body.Counts) != r.topo.Domain {
			return http.StatusBadRequest, fmt.Errorf("load carries %d counts, topology domain is %d",
				len(body.Counts), r.topo.Domain)
		}
		applied, err := r.forwardLoad(req, body.Counts)
		if err != nil {
			return http.StatusBadGateway, err
		}
		routerWriteJSON(w, http.StatusOK, map[string]any{"ok": true, "nodes": applied})
		return 0, nil
	})

	handle("/metrics", http.MethodGet, func(w http.ResponseWriter, req *http.Request) (int, error) {
		routerWriteJSON(w, http.StatusOK, map[string]any{"endpoints": m.Snapshot()})
		return 0, nil
	})

	handle("/metrics.prom", http.MethodGet, func(w http.ResponseWriter, req *http.Request) (int, error) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WriteText(w, m.Registry(), obs.Default); err != nil {
			return http.StatusInternalServerError, err
		}
		return 0, nil
	})

	return mux
}

// mutation is one ingest entry, routed to its value's owner.
type mutation struct {
	Value int   `json:"value"`
	Count int64 `json:"count"`
}

// queryFromURL parses the router query parameters (the node's surface;
// the metric stays a wire name — owning nodes validate it).
func queryFromURL(req *http.Request) (Query, error) {
	var q Query
	v := req.URL.Query()
	a, err := strconv.Atoi(v.Get("a"))
	if err != nil {
		return q, fmt.Errorf("parameter a: %w", err)
	}
	b, err := strconv.Atoi(v.Get("b"))
	if err != nil {
		return q, fmt.Errorf("parameter b: %w", err)
	}
	q.A, q.B = a, b
	q.Synopsis = v.Get("syn")
	q.Metric = v.Get("metric")
	if s := v.Get("maxerr"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return q, fmt.Errorf("parameter maxerr: %w", err)
		}
		if f < 0 || math.IsNaN(f) {
			return q, fmt.Errorf("maxerr must be a non-negative number, got %g", f)
		}
		q.MaxErr = &f
	}
	return q, nil
}

// forwardIngest splits the mutations by owning node and forwards each
// node's share to its primary (writes do not fail over: the primary is
// the write authority, replicas converge through replication).
func (r *Router) forwardIngest(req *http.Request, inserts, deletes []mutation) ([]string, error) {
	ins := make([][]mutation, len(r.topo.Nodes))
	dels := make([][]mutation, len(r.topo.Nodes))
	owner := func(value int) (int, error) {
		for i := range r.topo.Nodes {
			if w := r.topo.Nodes[i].Window; value >= w.Lo && value <= w.Hi {
				return i, nil
			}
		}
		return 0, fmt.Errorf("value %d is outside the domain [0,%d)", value, r.topo.Domain)
	}
	for _, mu := range inserts {
		i, err := owner(mu.Value)
		if err != nil {
			return nil, err
		}
		ins[i] = append(ins[i], mu)
	}
	for _, mu := range deletes {
		i, err := owner(mu.Value)
		if err != nil {
			return nil, err
		}
		dels[i] = append(dels[i], mu)
	}
	return r.forwardToPrimaries(req, func(i int) (any, bool) {
		if len(ins[i]) == 0 && len(dels[i]) == 0 {
			return nil, false
		}
		return map[string]any{"inserts": ins[i], "deletes": dels[i]}, true
	}, "/ingest")
}

// forwardLoad splits a full-domain load into one full-domain slice per
// node, zero outside its window (each node's engine spans the whole
// domain; only its owned window carries data).
func (r *Router) forwardLoad(req *http.Request, counts []int64) ([]string, error) {
	return r.forwardToPrimaries(req, func(i int) (any, bool) {
		w := r.topo.Nodes[i].Window
		slice := make([]int64, len(counts))
		copy(slice[w.Lo:w.Hi+1], counts[w.Lo:w.Hi+1])
		return map[string]any{"counts": slice}, true
	}, "/load")
}

// forwardToPrimaries POSTs each node's body to its primary on the
// bounded pool; any failure fails the whole request (writes have no
// partial-answer mode — the caller retries).
func (r *Router) forwardToPrimaries(req *http.Request, body func(i int) (any, bool), path string) ([]string, error) {
	type result struct {
		node string
		err  error
	}
	results := make([]result, len(r.topo.Nodes))
	tasks := make([]func(), 0, len(r.topo.Nodes))
	for i := range r.topo.Nodes {
		b, ok := body(i)
		if !ok {
			continue
		}
		i, b := i, b
		tasks = append(tasks, func() {
			n := &r.topo.Nodes[i]
			results[i].node = n.ID
			data, err := json.Marshal(b)
			if err != nil {
				results[i].err = err
				return
			}
			post, err := http.NewRequestWithContext(req.Context(), http.MethodPost, n.Addr+path, bytes.NewReader(data))
			if err != nil {
				results[i].err = err
				return
			}
			post.Header.Set("Content-Type", "application/json")
			resp, err := r.client.Do(post)
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				results[i].err = httpError(resp)
			}
		})
	}
	parallel.Do(tasks...)
	var applied []string
	for _, res := range results {
		if res.node == "" {
			continue
		}
		if res.err != nil {
			return nil, fmt.Errorf("forwarding to %s: %w", res.node, res.err)
		}
		applied = append(applied, res.node)
	}
	return applied, nil
}

func routerWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
