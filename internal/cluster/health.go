package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
)

// replicaLagGauge exports each replica's lag behind its primary in
// records (primary WAL applied index minus the replica's installed
// checkpoint index), refreshed on every health sweep.
func replicaLagGauge(node, replica string) *obs.Gauge {
	return obs.Default.Gauge("rangeagg_router_replica_lag_records",
		obs.L("node", node, "replica", replica)...)
}

// NodeHealth is the router's last observation of one endpoint.
type NodeHealth struct {
	Endpoint string `json:"endpoint"`
	// Live: the endpoint answered /healthz at all (any status).
	Live bool `json:"live"`
	// Ready: it answered 200 (snapshot fresh, replication synced).
	Ready bool `json:"ready"`
	// Version is the endpoint's served snapshot data version.
	Version int64 `json:"version"`
	// Applied is the endpoint's WAL applied index (primaries) or its
	// installed checkpoint index (replicas); 0 when neither applies.
	Applied   uint64    `json:"applied"`
	Err       string    `json:"err,omitempty"`
	CheckedAt time.Time `json:"checked_at"`
}

// healthzBody is the slice of serve's /healthz response the router
// consumes.
type healthzBody struct {
	Ready   bool   `json:"ready"`
	Version int64  `json:"version"`
	Applied uint64 `json:"applied"`
	Follow  *struct {
		Applied uint64 `json:"applied"`
	} `json:"follow"`
}

// healthTracker polls every endpoint's /healthz on an interval and
// keeps the latest observation per endpoint. The router consults it to
// order failover candidates (ready endpoints before live ones before
// dead ones) — observations are advisory: a query still attempts a
// "dead" endpoint last rather than giving up on a window whose state
// may be seconds stale.
type healthTracker struct {
	topo   *Topology
	client *http.Client

	mu    sync.RWMutex
	state map[string]NodeHealth
}

func newHealthTracker(topo *Topology, client *http.Client) *healthTracker {
	return &healthTracker{topo: topo, client: client, state: make(map[string]NodeHealth)}
}

// checkAll sweeps every endpoint concurrently on the bounded pool and
// refreshes the replica-lag gauges.
func (h *healthTracker) checkAll() {
	type target struct{ node, endpoint string }
	var targets []target
	for i := range h.topo.Nodes {
		n := &h.topo.Nodes[i]
		for _, ep := range n.Endpoints() {
			targets = append(targets, target{node: n.ID, endpoint: ep})
		}
	}
	results := make([]NodeHealth, len(targets))
	tasks := make([]func(), len(targets))
	for i := range targets {
		i := i
		tasks[i] = func() { results[i] = h.probe(targets[i].endpoint) }
	}
	parallel.Do(tasks...)

	h.mu.Lock()
	for _, r := range results {
		h.state[r.Endpoint] = r
	}
	h.mu.Unlock()

	// Replica lag: primary applied minus replica applied, clamped at 0
	// (a replica can observe a fresher checkpoint than our last primary
	// probe).
	for i := range h.topo.Nodes {
		n := &h.topo.Nodes[i]
		if len(n.Replicas) == 0 {
			continue
		}
		primary, ok := h.get(n.Addr)
		if !ok || !primary.Live {
			continue
		}
		for _, rep := range n.Replicas {
			if r, ok := h.get(rep); ok && r.Live {
				lag := int64(primary.Applied) - int64(r.Applied)
				if lag < 0 {
					lag = 0
				}
				replicaLagGauge(n.ID, rep).Set(lag)
			}
		}
	}
}

// probe fetches one endpoint's /healthz.
func (h *healthTracker) probe(endpoint string) NodeHealth {
	nh := NodeHealth{Endpoint: endpoint, CheckedAt: time.Now()}
	resp, err := h.client.Get(endpoint + "/healthz")
	if err != nil {
		nh.Err = err.Error()
		return nh
	}
	defer resp.Body.Close()
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		nh.Err = fmt.Sprintf("decoding healthz: %v", err)
		return nh
	}
	nh.Live = true
	nh.Ready = resp.StatusCode == http.StatusOK && body.Ready
	nh.Version = body.Version
	nh.Applied = body.Applied
	if body.Follow != nil {
		nh.Applied = body.Follow.Applied
	}
	return nh
}

// get returns the last observation of an endpoint.
func (h *healthTracker) get(endpoint string) (NodeHealth, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	nh, ok := h.state[endpoint]
	return nh, ok
}

// order sorts endpoints for attempt order without reordering peers:
// ready first, then live-but-degraded, then unknown, then known-dead.
// Within a class the topology's preference order (primary before
// replicas) is preserved.
func (h *healthTracker) order(endpoints []string) []string {
	class := func(ep string) int {
		nh, ok := h.get(ep)
		switch {
		case ok && nh.Live && nh.Ready:
			return 0
		case ok && nh.Live:
			return 1
		case !ok:
			return 2
		default:
			return 3
		}
	}
	out := append([]string(nil), endpoints...)
	// Insertion sort keeps the stable preference order and the lists are
	// tiny (primary + a couple of replicas).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && class(out[j]) < class(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// snapshot exports the tracker state for the router's /healthz.
func (h *healthTracker) snapshot() []NodeHealth {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]NodeHealth, 0, len(h.state))
	for i := range h.topo.Nodes {
		for _, ep := range h.topo.Nodes[i].Endpoints() {
			if nh, ok := h.state[ep]; ok {
				out = append(out, nh)
			}
		}
	}
	return out
}
