// Package cluster turns the single-process server into a horizontally
// scalable system: a static topology assigns each synserve node an
// owned window of the attribute domain (plus optional replicas fed by
// checkpoint replication), and a stateless router splits every range
// query across the owning nodes, fans the sub-queries out on the
// bounded pool, and merges the answers exactly.
//
// The composition is the same cum-diff argument the SEGMENTED family
// rests on: COUNT and SUM over [a,b] are differences of cumulative
// sums, so a range split across disjoint windows is answered exactly by
// the sum of the per-window answers, and per-window error bounds add
// (plan.MergeAnswers). Error budgets split proportionally to window
// weight (plan.SplitBudget), so a routed budgeted answer meets the
// whole budget whenever every node meets its share — which it always
// does when live, because every node holds exact tables to escalate to.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Window is one inclusive range [Lo,Hi] of the attribute domain; it
// marshals as the two-element array [lo,hi] in topology JSON.
type Window struct {
	Lo, Hi int
}

// MarshalJSON encodes the window as [lo,hi].
func (w Window) MarshalJSON() ([]byte, error) { return json.Marshal([2]int{w.Lo, w.Hi}) }

// UnmarshalJSON decodes a [lo,hi] array.
func (w *Window) UnmarshalJSON(b []byte) error {
	var a [2]int
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	w.Lo, w.Hi = a[0], a[1]
	return nil
}

// Width is the number of domain values the window covers.
func (w Window) Width() int { return w.Hi - w.Lo + 1 }

// Intersect clips [a,b] to the window; ok is false when they are
// disjoint.
func (w Window) Intersect(a, b int) (Window, bool) {
	if a < w.Lo {
		a = w.Lo
	}
	if b > w.Hi {
		b = w.Hi
	}
	return Window{Lo: a, Hi: b}, a <= b
}

// Node is one segment owner: the synserve instance at Addr serves the
// window's data (its engine spans the full domain with counts outside
// the window zero, so sub-queries use global coordinates unchanged).
// Replicas list synserve instances that replicate this node's state by
// pulling its checkpoints; the router fails over to them in order.
type Node struct {
	ID       string   `json:"id"`
	Addr     string   `json:"addr"`
	Window   Window   `json:"window"`
	Replicas []string `json:"replicas,omitempty"`
}

// Endpoints returns the node's query targets in preference order:
// primary first, then replicas.
func (n *Node) Endpoints() []string {
	out := make([]string, 0, 1+len(n.Replicas))
	out = append(out, n.Addr)
	out = append(out, n.Replicas...)
	return out
}

// Topology is the static cluster descriptor: the domain size and the
// nodes whose windows tile it. It is validated once at load; the router
// treats it as immutable.
type Topology struct {
	Domain int    `json:"domain"`
	Nodes  []Node `json:"nodes"`
}

// Part is one piece of a split range: the sub-window and the index of
// the node owning it.
type Part struct {
	Node   int
	Window Window
}

// Split intersects [a,b] with every owned window, returning the parts
// in window order. The caller clamps to the domain first; Split on a
// clamped non-empty range always returns ≥1 part because the windows
// tile the domain.
func (t *Topology) Split(a, b int) []Part {
	var parts []Part
	for i := range t.Nodes {
		if w, ok := t.Nodes[i].Window.Intersect(a, b); ok {
			parts = append(parts, Part{Node: i, Window: w})
		}
	}
	return parts
}

// Clamp intersects [a,b] with the domain; ok is false when empty.
func (t *Topology) Clamp(a, b int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= t.Domain {
		b = t.Domain - 1
	}
	return a, b, a <= b
}

// Parse decodes and validates a topology descriptor.
func Parse(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: parsing topology: %w", err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading topology: %w", err)
	}
	return Parse(data)
}

// validate enforces the invariants the router's exactness argument
// needs: unique node IDs, usable endpoints, and windows that tile the
// domain — disjoint and complete, so every range splits into exactly
// one sub-range per owning node and the cum-diff composition is exact.
func (t *Topology) validate() error {
	if t.Domain <= 0 {
		return fmt.Errorf("cluster: topology domain must be positive, got %d", t.Domain)
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	seen := make(map[string]bool, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ID == "" {
			return fmt.Errorf("cluster: node %d has no id", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has no addr", n.ID)
		}
		n.Addr = normalizeAddr(n.Addr)
		for j, r := range n.Replicas {
			if r == "" {
				return fmt.Errorf("cluster: node %q replica %d has no addr", n.ID, j)
			}
			n.Replicas[j] = normalizeAddr(r)
		}
		if n.Window.Lo > n.Window.Hi || n.Window.Lo < 0 || n.Window.Hi >= t.Domain {
			return fmt.Errorf("cluster: node %q window [%d,%d] invalid for domain %d",
				n.ID, n.Window.Lo, n.Window.Hi, t.Domain)
		}
	}
	// Sort nodes by window so Split returns parts in domain order and
	// the tiling check is a linear walk.
	sort.SliceStable(t.Nodes, func(i, j int) bool { return t.Nodes[i].Window.Lo < t.Nodes[j].Window.Lo })
	next := 0
	for i := range t.Nodes {
		w := t.Nodes[i].Window
		if w.Lo != next {
			if w.Lo < next {
				return fmt.Errorf("cluster: windows of %q and %q overlap at %d",
					t.Nodes[i-1].ID, t.Nodes[i].ID, w.Lo)
			}
			return fmt.Errorf("cluster: domain values [%d,%d] are owned by no node", next, w.Lo-1)
		}
		next = w.Hi + 1
	}
	if next != t.Domain {
		return fmt.Errorf("cluster: domain values [%d,%d] are owned by no node", next, t.Domain-1)
	}
	return nil
}

// normalizeAddr gives bare host:port addresses an http scheme and
// strips trailing slashes, so endpoints join cleanly with paths.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}
