package cluster

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rangeagg/internal/serve"
	"rangeagg/internal/wal"
)

// Follower is the replica side of snapshot replication: it pulls the
// primary's newest checkpoint on an interval and installs it into the
// local server (engine replace + synchronous rebuild), so the replica
// converges on the primary's state within one pull interval plus a
// rebuild. The primary forces a fresh checkpoint on every /checkpoint
// request when it has un-checkpointed records, so the replica's lag is
// bounded by the pull interval, not the primary's checkpoint cadence.
type Follower struct {
	// Primary is the primary's base endpoint (scheme://host:port).
	Primary string
	// Server is the local replica server to install into.
	Server *serve.Server
	// Every is the pull interval (default 2s).
	Every time.Duration
	// Client is the HTTP client (default: 30s timeout — checkpoints can
	// be large).
	Client *http.Client
	// AdoptSpecs registers synopsis specs from the checkpoint that the
	// replica lacks (default behavior for bare replicas).
	AdoptSpecs bool

	applied   uint64 // last installed checkpoint index
	installed bool   // at least one successful install

	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// Start begins the pull loop; the first pull runs immediately.
func (f *Follower) Start() {
	if f.Every <= 0 {
		f.Every = 2 * time.Second
	}
	if f.Client == nil {
		f.Client = &http.Client{Timeout: 30 * time.Second}
	}
	f.Primary = normalizeAddr(f.Primary)
	// Publish not-synced before the first pull: a replica must report
	// unready until it has installed real state, or a router could route
	// to an empty engine.
	f.Server.SetFollowState(serve.FollowState{Primary: f.Primary})
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go f.loop()
}

// Stop ends the pull loop and waits for it to exit.
func (f *Follower) Stop() {
	f.closeOnce.Do(func() { close(f.stop) })
	<-f.done
}

func (f *Follower) loop() {
	defer close(f.done)
	f.pullAndReport()
	tick := time.NewTicker(f.Every)
	defer tick.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
			f.pullAndReport()
		}
	}
}

func (f *Follower) pullAndReport() {
	err := f.PullOnce()
	st := serve.FollowState{
		Primary:  f.Primary,
		Applied:  f.applied,
		Synced:   f.installed && err == nil,
		PulledAt: time.Now(),
	}
	if err != nil {
		st.Err = err.Error()
		// A failed pull leaves the last installed state serving; the
		// replica stays synced=false until a pull succeeds again, so the
		// router deprioritizes it rather than dropping it.
		st.Synced = false
	}
	f.Server.SetFollowState(st)
}

// PullOnce fetches the primary's newest checkpoint and installs it,
// skipping the install when the checkpoint index is unchanged (the
// common steady-state case: no new writes, nothing to do).
func (f *Follower) PullOnce() error {
	resp, err := f.Client.Get(f.Primary + "/checkpoint")
	if err != nil {
		return fmt.Errorf("pulling checkpoint: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pulling checkpoint: %s", resp.Status)
	}
	// Fast path: the primary advertises the checkpoint index in a
	// header; identical index means identical state — skip the decode,
	// install, and rebuild entirely.
	if h := resp.Header.Get("X-Checkpoint-Applied"); h != "" && f.installed {
		if idx, err := strconv.ParseUint(h, 10, 64); err == nil && idx == f.applied {
			return nil
		}
	}
	ck, err := wal.DecodeCheckpoint(resp.Body)
	if err != nil {
		return fmt.Errorf("decoding checkpoint: %w", err)
	}
	if err := f.Server.InstallCheckpoint(ck, f.AdoptSpecs); err != nil {
		return fmt.Errorf("installing checkpoint: %w", err)
	}
	f.applied = ck.Applied
	f.installed = true
	return nil
}

// Applied is the index of the last installed checkpoint.
func (f *Follower) Applied() uint64 { return f.applied }
