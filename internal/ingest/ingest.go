// Package ingest maintains built synopses incrementally under streaming
// mutations, replacing the rebuild-per-write pattern with a decision
// ladder whose cost is proportional to the delta:
//
//  1. absorb — recompute only the bucket values covering the mutated
//     window from the fresh prefix table. For average-representation
//     histograms this reproduces, bit for bit, the values a from-scratch
//     build over the same boundaries would store (prefix sums of integer
//     counts are exact in float64 below 2^53, and the identical
//     tab.Avg code path is used), so absorption is not an approximation
//     of a rebuild: it is one, minus the redundant work.
//  2. reopt — every ReoptEvery absorbed batches, re-solve the paper's §5
//     normal equations 2xQ+g=0 (internal/reopt) on the fixed boundaries,
//     restoring the SSE-optimal values without touching the partition.
//  3. repair — when the workload-driven SSE-drift trigger fires, move
//     bucket boundaries by local search (internal/dp.ImproveBoundaries)
//     instead of re-running the construction DP.
//  4. escalate — when drift persists after a repair, hand the synopsis
//     back to the caller for a dirty-segment rebuild (internal/segment)
//     or a full build; maintenance restarts from the rebuilt state.
//
// The drift trigger follows Buccafurri et al.'s probabilistic framing
// (PAPERS.md): the quantity that matters is the error the *observed*
// workload sees, not the all-ranges SSE, so each State keeps a sampled
// ring of recently answered ranges and compares the synopsis's SSE over
// that ring against a baseline captured right after the last build,
// reopt, or repair. A ratio above DriftThreshold means the data under
// the hot ranges has shifted enough that value maintenance alone no
// longer holds the error — time to move boundaries (repair) or re-plan
// the layout (escalate).
package ingest

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/obs"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
	"rangeagg/internal/segment"
	"rangeagg/internal/sse"
)

// Maintenance metrics (process-wide): one counter per ladder action, the
// rebuilds the ladder made unnecessary, and the latency of each
// maintenance batch — the sustained-throughput signal (batches/sec is
// the histogram count over wall time, and each batch acknowledges every
// mutation absorbed since the last one).
var (
	absorbedTotal    = obs.Default.Counter("rangeagg_ingest_absorbed_total")
	reoptimizedTotal = obs.Default.Counter("rangeagg_ingest_reoptimized_total")
	repairedTotal    = obs.Default.Counter("rangeagg_ingest_repaired_total")
	escalatedTotal   = obs.Default.Counter("rangeagg_ingest_escalated_total")
	rebuildsAvoided  = obs.Default.Counter("rangeagg_ingest_rebuilds_avoided_total")
	maintainSeconds  = obs.Default.Histogram("rangeagg_ingest_maintain_seconds")
)

// Mode selects how a serving layer reacts to point mutations.
type Mode int

const (
	// ModeRebuild (the zero value) keeps the pre-ingest behaviour: every
	// mutation window is handed to the rebuild paths.
	ModeRebuild Mode = iota
	// ModeIncremental maintains maintainable synopses in place through
	// the absorb/reopt/repair/escalate ladder.
	ModeIncremental
)

// String names the mode (the -ingest-mode flag values).
func (m Mode) String() string {
	if m == ModeIncremental {
		return "incremental"
	}
	return "rebuild"
}

// ParseMode resolves a mode from its flag spelling.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "", "rebuild":
		return ModeRebuild, nil
	case "incremental":
		return ModeIncremental, nil
	}
	return 0, fmt.Errorf("ingest: unknown mode %q (want rebuild or incremental)", s)
}

// Config tunes one synopsis's maintenance; zero values select defaults.
type Config struct {
	// Mode gates maintenance; ModeRebuild disables it entirely.
	Mode Mode
	// DriftThreshold is the ratio of current workload SSE to the
	// post-build baseline above which the ladder stops trusting value
	// maintenance (first trip repairs boundaries, a trip persisting past
	// a repair escalates). Default 4; values ≤ 1 select the default.
	DriftThreshold float64
	// ReoptEvery is how many absorbed batches pass between value
	// re-optimizations (§5 normal equations). Default 16; negative
	// disables reopt.
	ReoptEvery int
	// RepairPasses caps the local-search passes of a boundary repair.
	// Default 2.
	RepairPasses int
	// WorkloadWindow sizes the sampled ring of observed query ranges the
	// drift trigger evaluates over. Default 256. Until queries arrive, a
	// deterministic dyadic grid stands in.
	WorkloadWindow int
}

// Enabled reports whether the configuration asks for maintenance.
func (c Config) Enabled() bool { return c.Mode == ModeIncremental }

func (c Config) withDefaults() Config {
	if c.DriftThreshold <= 1 {
		c.DriftThreshold = 4
	}
	if c.ReoptEvery == 0 {
		c.ReoptEvery = 16
	}
	if c.RepairPasses <= 0 {
		c.RepairPasses = 2
	}
	if c.WorkloadWindow <= 0 {
		c.WorkloadWindow = 256
	}
	return c
}

// Action is one rung of the maintenance ladder.
type Action int

const (
	// Absorb recomputed only the bucket values under the mutated window.
	Absorb Action = iota
	// Reopt additionally re-solved the §5 normal equations on the fixed
	// boundaries.
	Reopt
	// Repair moved bucket boundaries by local search after the drift
	// trigger fired.
	Repair
	// Escalate means maintenance declined: drift persisted through a
	// repair, and the caller must rebuild (dirty segments or full).
	Escalate
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Reopt:
		return "reopt"
	case Repair:
		return "repair"
	case Escalate:
		return "escalate"
	}
	return "absorb"
}

// Outcome reports what one maintenance batch did.
type Outcome struct {
	// Action is the highest rung the batch reached.
	Action Action
	// Buckets is how many bucket values the absorb step recomputed.
	Buckets int
	// Segments is how many segments the window touched (0 for flat
	// histograms).
	Segments int
	// Drift is the workload-SSE ratio at the decision point (1 ≈ no
	// drift since the baseline was captured).
	Drift float64
}

// State is the per-synopsis maintenance state: the absorb counter
// driving periodic reopt, the repaired/escalate arm of the drift
// ladder, and the sampled query ring the trigger evaluates over. It is
// safe for concurrent use; Maintain calls are serialized internally.
type State struct {
	cfg Config

	mu sync.Mutex
	// absorbs counts batches since the last value reopt.
	absorbs int
	// repaired records that a boundary repair already answered a drift
	// trip; the next trip escalates instead of repairing again.
	repaired bool
	// baseline is the workload SSE captured after the last build, reopt,
	// or repair; baselineSet distinguishes a true zero from "not yet
	// measured".
	baseline    float64
	baselineSet bool
	// ring holds sampled observed query ranges (filled to ringLen, then
	// overwritten round-robin at ringPos).
	ring    []sse.Range
	ringLen int
	ringPos int

	// tick drives 1-in-sampleEvery Observe sampling; atomic so the query
	// hot path only takes the mutex for the observations it keeps.
	tick atomic.Uint64
}

// sampleEvery is the Observe sampling rate: recording every query would
// put a mutex on the read hot path for no trigger-quality gain.
const sampleEvery = 8

// NewState creates maintenance state for one synopsis.
func NewState(cfg Config) *State {
	cfg = cfg.withDefaults()
	return &State{cfg: cfg, ring: make([]sse.Range, 0, cfg.WorkloadWindow)}
}

// Observe feeds one answered query range into the drift trigger's
// sampled workload ring. Out-of-domain ranges are clamped at evaluation
// time, so callers pass what they answered.
func (st *State) Observe(a, b int) {
	if st.tick.Add(1)%sampleEvery != 1 { // always take the first observation
		return
	}
	st.mu.Lock()
	r := sse.Range{A: a, B: b}
	if st.ringLen < cap(st.ring) {
		st.ring = append(st.ring, r)
		st.ringLen++
	} else {
		st.ring[st.ringPos] = r
		st.ringPos = (st.ringPos + 1) % st.ringLen
	}
	st.mu.Unlock()
}

// Reset clears the maintenance state after the caller rebuilt the
// synopsis (the escalate hand-off, or any out-of-band rebuild): the
// absorb counter restarts, the repair arm re-arms, and the next Maintain
// captures a fresh drift baseline against the rebuilt estimator. The
// observed-query ring is kept — the workload did not change, the
// synopsis did.
func (st *State) Reset() {
	st.mu.Lock()
	st.absorbs = 0
	st.repaired = false
	st.baselineSet = false
	st.mu.Unlock()
}

// CanMaintain reports whether the ladder knows how to maintain this
// estimator representation: flat average-representation histograms
// (*histogram.Avg — the shape behind OPT-A, A0, the equi-* baselines and
// their approximate counterparts) and segmented synopses whose inner
// histograms are that same shape. Other families keep the rebuild path.
func CanMaintain(est method.Estimator) bool {
	switch est.(type) {
	case *histogram.Avg, *segment.Segmented:
		return true
	}
	return false
}

// Maintain runs one maintenance batch: series is the full current
// per-value series the synopsis summarizes, prev the estimator built
// from some earlier version of it, and [lo,hi] the value window known
// to contain every mutation in between. It returns the maintained
// estimator and what the ladder did; on Escalate the estimator is nil
// and the caller must rebuild (then call State.Reset). The returned
// estimator shares no mutable structure with prev — prev keeps serving
// concurrently, untouched.
func Maintain(series []int64, prev method.Estimator, lo, hi int, st *State) (method.Estimator, Outcome, error) {
	start := time.Now()
	var out Outcome
	if prev == nil {
		return nil, out, fmt.Errorf("ingest: maintain requires a previous estimator")
	}
	n := prev.N()
	if len(series) != n {
		return nil, out, fmt.Errorf("ingest: series spans %d values, synopsis %d", len(series), n)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if lo > hi {
		return nil, out, fmt.Errorf("ingest: empty maintenance window [%d,%d]", lo, hi)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	tab := prefix.NewTable(series)

	// Absorb, then reopt on schedule.
	var next method.Estimator
	var err error
	doReopt := st.cfg.ReoptEvery > 0 && st.absorbs+1 >= st.cfg.ReoptEvery
	switch h := prev.(type) {
	case *histogram.Avg:
		var nh *histogram.Avg
		nh, out.Buckets, err = absorbAvg(tab, h, lo, hi)
		if err == nil && doReopt {
			nh, err = reoptAvg(tab, nh)
		}
		next = nh
	case *segment.Segmented:
		next, out.Buckets, out.Segments, err = absorbSeg(series, h, lo, hi, doReopt)
	default:
		return nil, out, fmt.Errorf("ingest: cannot maintain %T", prev)
	}
	if err != nil {
		return nil, out, err
	}
	if doReopt {
		out.Action = Reopt
		st.absorbs = 0
	} else {
		st.absorbs++
	}

	// Drift trigger: the maintained synopsis's SSE over the observed
	// workload against the baseline captured after the last
	// build/reopt/repair.
	w := st.workload(n)
	now := sse.Evaluate(tab, next, w).SSE
	if doReopt || !st.baselineSet {
		st.baseline = now
		st.baselineSet = true
	}
	out.Drift = driftRatio(now, st.baseline)
	if out.Drift > st.cfg.DriftThreshold {
		if st.repaired {
			// A repair already answered one trip and drift came back:
			// boundaries and values cannot hold this workload, re-plan.
			escalatedTotal.Inc()
			out.Action = Escalate
			maintainSeconds.Since(start)
			return nil, out, nil
		}
		next, err = repair(tab, series, next, lo, hi, st.cfg.RepairPasses)
		if err != nil {
			return nil, out, err
		}
		out.Action = Repair
		st.repaired = true
		st.baseline = sse.Evaluate(tab, next, w).SSE
	} else if out.Drift <= 1 {
		// Drift fully recovered (reopt or data shifting back): re-arm the
		// repair rung so a future trip repairs before escalating.
		st.repaired = false
	}

	switch out.Action {
	case Reopt:
		reoptimizedTotal.Inc()
	case Repair:
		repairedTotal.Inc()
	default:
		absorbedTotal.Inc()
	}
	rebuildsAvoided.Inc()
	maintainSeconds.Since(start)
	return next, out, nil
}

// driftRatio guards the now/baseline quotient against an (exactly or
// numerically) zero baseline: a synopsis that was exact on the workload
// counts as drifted only once its error is meaningfully non-zero.
func driftRatio(now, baseline float64) float64 {
	const floor = 1e-9
	if baseline < floor {
		baseline = floor
	}
	return now / baseline
}

// workload returns the query set the drift trigger evaluates over: the
// sampled ring of observed ranges clamped to the domain, or — before
// any query has been observed — a deterministic dyadic grid (sixteen
// equal cells, both halves, and the full range) so cold synopses still
// drift-check. Caller holds st.mu.
func (st *State) workload(n int) []sse.Range {
	if st.ringLen > 0 {
		out := make([]sse.Range, 0, st.ringLen)
		for _, r := range st.ring[:st.ringLen] {
			a, b := r.A, r.B
			if a < 0 {
				a = 0
			}
			if b > n-1 {
				b = n - 1
			}
			if a <= b {
				out = append(out, sse.Range{A: a, B: b})
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	cells := 16
	if cells > n {
		cells = n
	}
	out := make([]sse.Range, 0, cells+3)
	for i := 0; i < cells; i++ {
		a := i * n / cells
		b := (i+1)*n/cells - 1
		if a <= b {
			out = append(out, sse.Range{A: a, B: b})
		}
	}
	if n > 1 {
		out = append(out, sse.Range{A: 0, B: n/2 - 1}, sse.Range{A: n / 2, B: n - 1})
	}
	out = append(out, sse.Range{A: 0, B: n - 1})
	return out
}

// absorbAvg recomputes the values of the buckets intersecting [lo,hi]
// as the true bucket averages off the fresh prefix table — exactly what
// histogram.NewAvgFromBounds stores for those boundaries — and leaves
// every other bucket's value untouched. The bucketing is shared with
// the previous histogram (it is immutable); the value slice is cloned.
func absorbAvg(tab *prefix.Table, h *histogram.Avg, lo, hi int) (*histogram.Avg, int, error) {
	bk := h.Buckets
	p, q := bk.Find(lo), bk.Find(hi)
	values := append([]float64(nil), h.Values...)
	for i := p; i <= q; i++ {
		blo, bhi := bk.Bounds(i)
		values[i] = tab.Avg(blo, bhi)
	}
	nh, err := histogram.NewAvg(bk, values, h.Mode, h.Label)
	if err != nil {
		return nil, 0, err
	}
	return nh, q - p + 1, nil
}

// reoptAvg re-solves the §5 normal equations 2xQ+g=0 for the histogram's
// boundaries and stores the optimal values, keeping mode and label (the
// maintained synopsis keeps its published identity; reopt.Reopt's
// "-reopt" suffix is for one-shot construction pipelines).
func reoptAvg(tab *prefix.Table, h *histogram.Avg) (*histogram.Avg, error) {
	q, g, err := reopt.BuildSystem(tab, h.Buckets)
	if err != nil {
		return nil, err
	}
	x, err := reopt.Solve(q, g)
	if err != nil {
		return nil, err
	}
	return histogram.NewAvg(h.Buckets, x, h.Mode, h.Label)
}

// absorbSeg maintains a segmented synopsis: segments intersecting
// [lo,hi] get their inner histogram's touched bucket values recomputed
// from the segment's own sub-table (and, when doReopt, their values
// re-optimized on the segment's fixed inner boundaries); every other
// segment is carried verbatim. The composition's cumulative totals are
// rebuilt by segment.New.
func absorbSeg(series []int64, s *segment.Segmented, lo, hi int, doReopt bool) (*segment.Segmented, int, int, error) {
	first, last := s.Find(lo), s.Find(hi)
	segs := append([]*histogram.Avg(nil), s.Segs...)
	buckets := 0
	for i := first; i <= last; i++ {
		sLo, sHi := s.SegmentBounds(i)
		sub := prefix.NewTable(series[sLo : sHi+1])
		wLo, wHi := lo, hi
		if wLo < sLo {
			wLo = sLo
		}
		if wHi > sHi {
			wHi = sHi
		}
		nh, nb, err := absorbAvg(sub, s.Segs[i], wLo-sLo, wHi-sLo)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("ingest: absorbing into segment %d: %w", i, err)
		}
		if doReopt {
			if nh, err = reoptAvg(sub, nh); err != nil {
				return nil, 0, 0, fmt.Errorf("ingest: reoptimizing segment %d: %w", i, err)
			}
		}
		segs[i] = nh
		buckets += nb
	}
	next, err := segment.New(s.Domain, append([]int(nil), s.Starts...), segs, s.Label)
	if err != nil {
		return nil, 0, 0, err
	}
	return next, buckets, last - first + 1, nil
}

// repair moves bucket boundaries by local search — coordinate descent
// with every candidate scored by the prefix-identity SSE — instead of
// re-running the construction DP. For segmented synopses only the
// segments under the mutated window are repaired; the partition itself
// never moves (that is what escalation is for).
func repair(tab *prefix.Table, series []int64, est method.Estimator, lo, hi, passes int) (method.Estimator, error) {
	switch h := est.(type) {
	case *histogram.Avg:
		out, _, err := dp.ImproveBoundaries(tab, h, passes)
		if err != nil {
			return nil, err
		}
		out.Label = h.Label
		return out, nil
	case *segment.Segmented:
		first, last := h.Find(lo), h.Find(hi)
		segs := append([]*histogram.Avg(nil), h.Segs...)
		for i := first; i <= last; i++ {
			sLo, sHi := h.SegmentBounds(i)
			sub := prefix.NewTable(series[sLo : sHi+1])
			out, _, err := dp.ImproveBoundaries(sub, h.Segs[i], passes)
			if err != nil {
				return nil, fmt.Errorf("ingest: repairing segment %d: %w", i, err)
			}
			out.Label = h.Segs[i].Label
			segs[i] = out
		}
		return segment.New(h.Domain, append([]int(nil), h.Starts...), segs, h.Label)
	}
	return nil, fmt.Errorf("ingest: cannot repair %T", est)
}
