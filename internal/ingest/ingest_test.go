package ingest

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/prefix"
	"rangeagg/internal/reopt"
	"rangeagg/internal/segment"
	"rangeagg/internal/sse"
)

// mutate applies k random point mutations to counts and returns the
// inclusive window containing all of them.
func mutate(rng *rand.Rand, counts []int64, k int) (int, int) {
	lo, hi := len(counts), -1
	for j := 0; j < k; j++ {
		v := rng.Intn(len(counts))
		d := int64(1 + rng.Intn(9))
		if rng.Intn(3) == 0 && counts[v] >= d {
			counts[v] -= d
		} else {
			counts[v] += d
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// wantAvg is the from-scratch comparator for the absorb contract: the
// values a build over the same boundaries stores for the current data.
func wantAvg(t *testing.T, counts []int64, bk *histogram.Bucketing) *histogram.Avg {
	t.Helper()
	want, err := histogram.NewAvgFromBounds(prefix.NewTable(counts), bk, histogram.RoundNone, "want")
	if err != nil {
		t.Fatalf("comparator build: %v", err)
	}
	return want
}

func sameValues(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: value[%d] = %v, want %v (bit-exact)", what, i, got[i], want[i])
		}
	}
}

// TestMaintainAvgBitExact pins the absorb contract: after any
// interleaving of inserts and deletes, the maintained flat histogram
// equals, bit for bit, a from-scratch build over the same boundaries.
func TestMaintainAvgBitExact(t *testing.T) {
	const n, buckets = 512, 16
	rng := rand.New(rand.NewSource(1))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(rng.Intn(20))
	}
	h, err := dp.A0(prefix.NewTable(counts), buckets, histogram.RoundNone)
	if err != nil {
		t.Fatalf("A0: %v", err)
	}
	st := NewState(Config{Mode: ModeIncremental, ReoptEvery: -1, DriftThreshold: 1e18})
	cur := method.Estimator(h)
	for batch := 0; batch < 40; batch++ {
		lo, hi := mutate(rng, counts, 1+rng.Intn(8))
		next, out, err := Maintain(counts, cur, lo, hi, st)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if out.Action != Absorb {
			t.Fatalf("batch %d: action %v, want absorb", batch, out.Action)
		}
		if out.Buckets < 1 {
			t.Fatalf("batch %d: no buckets recomputed", batch)
		}
		got := next.(*histogram.Avg)
		want := wantAvg(t, counts, h.Buckets)
		sameValues(t, got.Values, want.Values, "maintained")
		if got.Label != h.Label {
			t.Fatalf("label drifted to %q", got.Label)
		}
		// prev must be untouched: it still matches the data before this
		// batch only, but its structure (values slice) is not shared.
		if &got.Values[0] == &cur.(*histogram.Avg).Values[0] {
			t.Fatal("maintained histogram shares its value slice with prev")
		}
		cur = next
	}
}

// TestMaintainReoptBitExact pins the reopt contract: a maintenance
// batch that re-optimizes equals reopt.Reopt applied to a from-scratch
// build of the same boundaries, bit for bit.
func TestMaintainReoptBitExact(t *testing.T) {
	const n, buckets = 256, 8
	rng := rand.New(rand.NewSource(2))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(rng.Intn(30))
	}
	h, err := dp.A0(prefix.NewTable(counts), buckets, histogram.RoundNone)
	if err != nil {
		t.Fatalf("A0: %v", err)
	}
	st := NewState(Config{Mode: ModeIncremental, ReoptEvery: 1, DriftThreshold: 1e18})
	cur := method.Estimator(h)
	for batch := 0; batch < 10; batch++ {
		lo, hi := mutate(rng, counts, 1+rng.Intn(4))
		next, out, err := Maintain(counts, cur, lo, hi, st)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if out.Action != Reopt {
			t.Fatalf("batch %d: action %v, want reopt", batch, out.Action)
		}
		tab := prefix.NewTable(counts)
		want, err := reopt.Reopt(tab, wantAvg(t, counts, h.Buckets))
		if err != nil {
			t.Fatalf("comparator reopt: %v", err)
		}
		sameValues(t, next.(*histogram.Avg).Values, want.Values, "reoptimized")
		cur = next
	}
}

// TestMaintainSegmentedBitExact pins the absorb contract for the
// segmented composition: touched segments' inner values equal a
// from-scratch build over the segment's sub-table, untouched segments
// are carried over verbatim (same inner histogram).
func TestMaintainSegmentedBitExact(t *testing.T) {
	const n = 1024
	rng := rand.New(rand.NewSource(3))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(rng.Intn(25))
	}
	tab := prefix.NewTable(counts)
	seg, err := segment.Build(tab, counts, segment.BuildOpts{K: 4, BudgetWords: 72})
	if err != nil {
		t.Fatalf("segment build: %v", err)
	}
	st := NewState(Config{Mode: ModeIncremental, ReoptEvery: -1, DriftThreshold: 1e18})
	cur := method.Estimator(seg)
	for batch := 0; batch < 20; batch++ {
		// Confine the batch to one segment so reuse is observable.
		si := rng.Intn(seg.SegmentCount())
		sLo, sHi := seg.SegmentBounds(si)
		v := sLo + rng.Intn(sHi-sLo+1)
		counts[v] += int64(1 + rng.Intn(50))
		next, out, err := Maintain(counts, cur, v, v, st)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if out.Action != Absorb || out.Segments != 1 {
			t.Fatalf("batch %d: action %v over %d segments, want absorb over 1", batch, out.Action, out.Segments)
		}
		got := next.(*segment.Segmented)
		prev := cur.(*segment.Segmented)
		for i := 0; i < got.SegmentCount(); i++ {
			lo, hi := got.SegmentBounds(i)
			if i != si {
				if got.Segs[i] != prev.Segs[i] {
					t.Fatalf("batch %d: untouched segment %d was rebuilt", batch, i)
				}
				continue
			}
			sub := prefix.NewTable(counts[lo : hi+1])
			want, err := histogram.NewAvgFromBounds(sub, got.Segs[i].Buckets, histogram.RoundNone, "want")
			if err != nil {
				t.Fatalf("comparator: %v", err)
			}
			sameValues(t, got.Segs[i].Values, want.Values, "touched segment")
		}
		// The composition answers like the comparator everywhere,
		// including ranges spanning the maintained segment's edges.
		for trial := 0; trial < 16; trial++ {
			a := rng.Intn(n)
			b := a + rng.Intn(n-a)
			if e := got.Estimate(a, b); math.IsNaN(e) || math.IsInf(e, 0) {
				t.Fatalf("estimate [%d,%d] not finite: %v", a, b, e)
			}
		}
		cur = next
	}
}

// TestDriftLadder drives the repair→escalate arm: uniform data makes the
// baseline tiny, then growing spikes trip the trigger — the first trip
// repairs boundaries (never increasing the SSE), the next escalates.
func TestDriftLadder(t *testing.T) {
	const n, buckets = 256, 8
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = 10
	}
	h, err := dp.A0(prefix.NewTable(counts), buckets, histogram.RoundNone)
	if err != nil {
		t.Fatalf("A0: %v", err)
	}
	st := NewState(Config{Mode: ModeIncremental, ReoptEvery: -1, DriftThreshold: 1.5})
	cur := method.Estimator(h)

	// A benign batch captures the (near-zero) baseline.
	counts[3]++
	next, out, err := Maintain(counts, cur, 3, 3, st)
	if err != nil {
		t.Fatalf("benign batch: %v", err)
	}
	cur = next

	sawRepair := false
	mag := int64(1000)
	rng := rand.New(rand.NewSource(4))
	for batch := 0; batch < 50; batch++ {
		v := rng.Intn(n)
		counts[v] += mag
		mag *= 4
		next, out, err = Maintain(counts, cur, v, v, st)
		if err != nil {
			t.Fatalf("spike batch %d: %v", batch, err)
		}
		if out.Action == Repair {
			sawRepair = true
			tab := prefix.NewTable(counts)
			// Repair must not have made the synopsis worse than plain
			// absorption would be on the same data.
			absorbed, _, err := absorbAvg(tab, cur.(*histogram.Avg), v, v)
			if err != nil {
				t.Fatalf("absorb reference: %v", err)
			}
			if got, ref := sse.FromCumulative(tab, next.(*histogram.Avg)), sse.FromCumulative(tab, absorbed); got > ref*(1+1e-9) {
				t.Fatalf("repair raised SSE: %g > %g", got, ref)
			}
		}
		if out.Action == Escalate {
			if !sawRepair {
				t.Fatal("escalated before ever repairing")
			}
			if next != nil {
				t.Fatal("escalate returned an estimator")
			}
			// The caller's contract: rebuild, then Reset restarts the ladder.
			reb, err := dp.A0(prefix.NewTable(counts), buckets, histogram.RoundNone)
			if err != nil {
				t.Fatalf("escalation rebuild: %v", err)
			}
			st.Reset()
			counts[7]++
			after, out2, err := Maintain(counts, reb, 7, 7, st)
			if err != nil || out2.Action != Absorb || after == nil {
				t.Fatalf("post-escalation maintain: action %v err %v", out2.Action, err)
			}
			return
		}
		cur = next
	}
	t.Fatalf("ladder never escalated (sawRepair=%v)", sawRepair)
}

// TestObserveFeedsTrigger checks the observed-query ring replaces the
// synthetic grid: queries confined to a quiet region keep drift at bay
// even while an unobserved region degrades.
func TestObserveFeedsTrigger(t *testing.T) {
	const n, buckets = 256, 8
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = 10
	}
	// Equal-width boundaries, pinned explicitly: the DP would tie-break
	// arbitrarily on uniform data, and this test needs the tail bucket
	// disjoint from the observed region.
	starts := make([]int, buckets)
	for i := range starts {
		starts[i] = i * n / buckets
	}
	bk, err := histogram.NewBucketing(n, starts)
	if err != nil {
		t.Fatalf("bucketing: %v", err)
	}
	h, err := histogram.NewAvgFromBounds(prefix.NewTable(counts), bk, histogram.RoundNone, "equi")
	if err != nil {
		t.Fatalf("from bounds: %v", err)
	}
	st := NewState(Config{Mode: ModeIncremental, ReoptEvery: -1, DriftThreshold: 1.5})
	// The observed workload only ever touches the first quarter, plus a
	// couple of out-of-domain ranges that must be clamped, not crash.
	for i := 0; i < 64; i++ {
		st.Observe(i%32, i%32+16)
	}
	st.Observe(-10, 5)
	st.Observe(n-5, n+100)
	cur := method.Estimator(h)
	counts[0]++
	if cur, _, err = Maintain(counts, cur, 0, 0, st); err != nil {
		t.Fatalf("baseline batch: %v", err)
	}
	// Hammer the unobserved tail: the trigger must not fire, because the
	// workload it guards never reads there.
	for batch := 0; batch < 10; batch++ {
		v := n - 1 - batch
		counts[v] += 1 << (10 + batch)
		next, out, err := Maintain(counts, cur, v, v, st)
		if err != nil {
			t.Fatalf("tail batch %d: %v", batch, err)
		}
		if out.Action != Absorb {
			t.Fatalf("tail batch %d: action %v, want absorb (workload never reads the tail)", batch, out.Action)
		}
		cur = next
	}
}

func TestMaintainValidation(t *testing.T) {
	counts := []int64{1, 2, 3, 4}
	h, err := dp.A0(prefix.NewTable(counts), 2, histogram.RoundNone)
	if err != nil {
		t.Fatalf("A0: %v", err)
	}
	st := NewState(Config{})
	if _, _, err := Maintain(counts, nil, 0, 0, st); err == nil {
		t.Fatal("nil estimator accepted")
	}
	if _, _, err := Maintain(counts[:3], h, 0, 0, st); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := Maintain(counts, h, 3, 1, st); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, _, err := Maintain(counts, unmaintainable{}, 0, 0, st); err == nil {
		t.Fatal("unmaintainable estimator accepted")
	}
	// Out-of-domain windows clamp.
	if _, out, err := Maintain(counts, h, -5, 99, st); err != nil || out.Buckets != 2 {
		t.Fatalf("clamped window: buckets=%d err=%v", out.Buckets, err)
	}
}

type unmaintainable struct{}

func (unmaintainable) Estimate(a, b int) float64 { return 0 }
func (unmaintainable) N() int                    { return 4 }
func (unmaintainable) Name() string              { return "unmaintainable" }
func (unmaintainable) StorageWords() int         { return 0 }

func TestCanMaintain(t *testing.T) {
	counts := []int64{1, 2, 3, 4}
	h, _ := dp.A0(prefix.NewTable(counts), 2, histogram.RoundNone)
	if !CanMaintain(h) {
		t.Fatal("flat Avg not maintainable")
	}
	if CanMaintain(unmaintainable{}) {
		t.Fatal("arbitrary estimator claimed maintainable")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeRebuild}, {"rebuild", ModeRebuild}, {"incremental", ModeIncremental}, {"Incremental", ModeIncremental}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if ModeRebuild.String() != "rebuild" || ModeIncremental.String() != "incremental" {
		t.Fatal("mode names drifted")
	}
	if !(&Config{Mode: ModeIncremental}).Enabled() || (&Config{}).Enabled() {
		t.Fatal("Enabled gate wrong")
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{Absorb: "absorb", Reopt: "reopt", Repair: "repair", Escalate: "escalate"} {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}
