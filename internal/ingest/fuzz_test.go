package ingest

import (
	"math"
	"testing"

	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/method"
	"rangeagg/internal/prefix"
	"rangeagg/internal/segment"
	"rangeagg/internal/sse"
)

// FuzzIngestMaintain drives random insert/delete interleavings through
// the full maintenance ladder on both maintainable shapes and checks the
// tentpole invariant: every non-escalated batch yields a structurally
// valid, finite estimator over the current data, and as long as the
// ladder has only absorbed (no reopt or repair since the last build) the
// flat histogram is bit-exact against a from-scratch build over the same
// boundaries. Escalations are honoured with a real rebuild, exactly as
// the serving layers do.
func FuzzIngestMaintain(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x05, 0x81, 0x20, 0x03})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})
	f.Add([]byte{0x07, 0x3f, 0x7f, 0x42, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		const n, buckets = 64, 8
		counts := make([]int64, n)
		for i := range counts {
			counts[i] = 5
		}
		flat, err := dp.A0(prefix.NewTable(counts), buckets, histogram.RoundNone)
		if err != nil {
			t.Fatalf("A0: %v", err)
		}
		// Drive a segmented twin through the same mutation stream.
		seg, err := segment.Build(prefix.NewTable(counts), counts, segment.BuildOpts{K: 4, BudgetWords: 24})
		if err != nil {
			t.Fatalf("segment build: %v", err)
		}
		targets := []struct {
			name string
			est  method.Estimator
			st   *State
			pure bool // only absorbs since the last (re)build
		}{
			{name: "flat", est: flat, st: NewState(Config{Mode: ModeIncremental, DriftThreshold: 2, ReoptEvery: 4}), pure: true},
			{name: "segmented", est: seg, st: NewState(Config{Mode: ModeIncremental, DriftThreshold: 2, ReoptEvery: 4}), pure: true},
		}

		for off := 0; off+3 <= len(data); off += 3 {
			op, pos, raw := data[off], int(data[off+1])%n, int64(1+data[off+2]%16)
			lo, hi := pos, pos
			if op&1 == 0 || counts[pos] < raw {
				counts[pos] += raw
			} else {
				counts[pos] -= raw
			}
			if op&2 != 0 { // widen the reported window occasionally
				hi = pos + int(op>>4)
				if hi > n-1 {
					hi = n - 1
				}
			}
			for i := range targets {
				tg := &targets[i]
				next, out, err := Maintain(counts, tg.est, lo, hi, tg.st)
				if err != nil {
					t.Fatalf("%s: maintain: %v", tg.name, err)
				}
				if out.Action == Escalate {
					if next != nil {
						t.Fatalf("%s: escalate returned an estimator", tg.name)
					}
					tab := prefix.NewTable(counts)
					if tg.name == "flat" {
						tg.est, err = dp.A0(tab, buckets, histogram.RoundNone)
					} else {
						tg.est, err = segment.Build(tab, counts, segment.BuildOpts{K: 4, BudgetWords: 24})
					}
					if err != nil {
						t.Fatalf("%s: escalation rebuild: %v", tg.name, err)
					}
					tg.st.Reset()
					tg.pure = true
					continue
				}
				if next == nil {
					t.Fatalf("%s: nil estimator without escalation", tg.name)
				}
				if next.N() != n {
					t.Fatalf("%s: domain shrank to %d", tg.name, next.N())
				}
				if out.Action != Absorb {
					tg.pure = false
				}
				if full := sse.Of(prefix.NewTable(counts), next); math.IsNaN(full) || math.IsInf(full, 0) || full < 0 {
					t.Fatalf("%s: SSE not finite/non-negative: %v", tg.name, full)
				}
				if h, ok := next.(*histogram.Avg); ok && tg.pure {
					want, err := histogram.NewAvgFromBounds(prefix.NewTable(counts), h.Buckets, histogram.RoundNone, "want")
					if err != nil {
						t.Fatalf("comparator: %v", err)
					}
					for j := range want.Values {
						if h.Values[j] != want.Values[j] {
							t.Fatalf("flat absorb not bit-exact at bucket %d: %v != %v", j, h.Values[j], want.Values[j])
						}
					}
				}
				tg.est = next
			}
		}
	})
}
