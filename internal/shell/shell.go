// Package shell implements the command language of cmd/synshell: an
// interactive (and scriptable) front end to the approximate-query engine.
// Every command is a single line; Exec is deterministic and returns all
// output through the configured writer, which makes the language fully
// testable without a terminal.
package shell

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"rangeagg"
	"rangeagg/internal/dataset"
)

// Shell holds one session's state: a store of columns, one of which is
// current. Commands that create data (create/gen/load) add a new column
// and make it current.
type Shell struct {
	out     io.Writer
	store   *rangeagg.Store
	eng     *rangeagg.Engine // current column
	cur     string
	nextCol int
}

// New creates a shell writing command output to out.
func New(out io.Writer) *Shell {
	return &Shell{out: out, store: rangeagg.NewStore("shell")}
}

// addColumn registers a fresh column in the store and makes it current.
func (s *Shell) addColumn(base string, domain int) (*rangeagg.Engine, error) {
	s.nextCol++
	name := fmt.Sprintf("%s%d", base, s.nextCol)
	e, err := s.store.CreateColumn(name, domain)
	if err != nil {
		return nil, err
	}
	s.eng, s.cur = e, name
	return e, nil
}

// Exec runs one command line. It returns quit=true for the quit/exit
// command. Errors are returned (not printed), so callers decide whether
// to abort (scripts) or continue (interactive use).
func (s *Shell) Exec(line string) (quit bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return false, nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	switch cmd {
	case "quit", "exit":
		return true, nil
	case "help":
		s.help()
		return false, nil
	case "create":
		return false, s.create(args)
	case "gen":
		return false, s.gen(args)
	case "load":
		return false, s.load(args)
	case "insert", "delete":
		return false, s.mutate(cmd, args)
	case "build":
		return false, s.build(args)
	case "recommend":
		return false, s.recommend(args)
	case "drop":
		return false, s.drop(args)
	case "list":
		return false, s.list()
	case "describe":
		return false, s.describe(args)
	case "count", "sum":
		return false, s.exact(cmd, args)
	case "approx":
		return false, s.approx(args)
	case "report":
		return false, s.report(args)
	case "progressive":
		return false, s.progressive(args)
	case "sse":
		return false, s.sse(args)
	case "autorefresh":
		return false, s.autoRefresh(args)
	case "columns":
		return false, s.columns()
	case "use":
		return false, s.use(args)
	case "save":
		return false, s.save(args)
	case "open":
		return false, s.open(args)
	default:
		return false, fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func (s *Shell) help() {
	fmt.Fprint(s.out, `commands:
  create <domain>                        new engine over values [0,domain)
  gen zipf <n> <alpha> <max> <seed>      create + load a Zipf dataset
  load <file.csv>                        load a distribution CSV
  insert <value> <count>                 add records
  delete <value> <count>                 remove records
  build <name> <count|sum> <METHOD> <budget> [reopt]
  recommend <name> <count|sum> <budget>  advisor picks the method
  drop <name>                            remove a synopsis
  list                                   list synopses
  describe <name>                        synopsis metadata
  count <a> <b>                          exact COUNT over [a,b]
  sum <a> <b>                            exact SUM over [a,b]
  approx <name> <a> <b>                  approximate answer
  report <name> <k>                      error report on k random ranges
  progressive <name> <a> <b> <chunks>    online-refined answer
  sse <name>                             SSE over all ranges
  autorefresh <threshold>                rebuild stale synopses on query
  columns                                list store columns
  use <column>                           switch the current column
  save <file> | open <file>              persist / restore the whole store
  quit
`)
}

func (s *Shell) needEngine() error {
	if s.eng == nil {
		return fmt.Errorf("no engine: run create or gen first")
	}
	return nil
}

func atoi(name, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

func (s *Shell) create(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: create <domain>")
	}
	domain, err := atoi("domain", args[0])
	if err != nil {
		return err
	}
	if _, err := s.addColumn("col", domain); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "column %s over [0,%d)\n", s.cur, domain)
	return nil
}

func (s *Shell) gen(args []string) error {
	if len(args) != 5 || args[0] != "zipf" {
		return fmt.Errorf("usage: gen zipf <n> <alpha> <max> <seed>")
	}
	n, err := atoi("n", args[1])
	if err != nil {
		return err
	}
	alpha, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return fmt.Errorf("bad alpha %q", args[2])
	}
	maxC, err := strconv.ParseFloat(args[3], 64)
	if err != nil {
		return fmt.Errorf("bad max %q", args[3])
	}
	seed, err := strconv.ParseInt(args[4], 10, 64)
	if err != nil {
		return fmt.Errorf("bad seed %q", args[4])
	}
	counts, err := rangeagg.ZipfCounts(n, alpha, maxC, seed)
	if err != nil {
		return err
	}
	eng, err := s.addColumn("zipf", n)
	if err != nil {
		return err
	}
	if err := eng.Load(counts); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "generated zipf(n=%d, a=%g) into column %s: %d records\n", n, alpha, s.cur, eng.Records())
	return nil
}

func (s *Shell) load(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: load <file.csv>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := dataset.ReadCSV(f)
	if err != nil {
		return err
	}
	eng, err := s.addColumn("csv", d.N())
	if err != nil {
		return err
	}
	if err := eng.Load(d.Counts); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "loaded %s into column %s: %d values, %d records\n", d.Name, s.cur, d.N(), eng.Records())
	return nil
}

func (s *Shell) mutate(cmd string, args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: %s <value> <count>", cmd)
	}
	value, err := atoi("value", args[0])
	if err != nil {
		return err
	}
	count, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad count %q", args[1])
	}
	if cmd == "insert" {
		err = s.eng.Insert(value, count)
	} else {
		err = s.eng.Delete(value, count)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "ok (%d records)\n", s.eng.Records())
	return nil
}

func parseMetric(v string) (rangeagg.Metric, error) {
	switch strings.ToLower(v) {
	case "count":
		return rangeagg.Count, nil
	case "sum":
		return rangeagg.Sum, nil
	default:
		return 0, fmt.Errorf("bad metric %q (count or sum)", v)
	}
}

func (s *Shell) build(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) < 4 || len(args) > 5 {
		return fmt.Errorf("usage: build <name> <count|sum> <METHOD> <budget> [reopt]")
	}
	metric, err := parseMetric(args[1])
	if err != nil {
		return err
	}
	method, err := rangeagg.ParseMethod(args[2])
	if err != nil {
		return err
	}
	budget, err := atoi("budget", args[3])
	if err != nil {
		return err
	}
	opt := rangeagg.Options{Method: method, BudgetWords: budget, Seed: 1}
	if len(args) == 5 {
		if args[4] != "reopt" {
			return fmt.Errorf("bad option %q (only reopt)", args[4])
		}
		opt.Reopt = true
	}
	if err := s.eng.BuildSynopsis(args[0], metric, opt); err != nil {
		return err
	}
	info, err := s.eng.Describe(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "built %s: %s %s, %d words\n", info.Name, info.Metric, info.Method, info.StorageWords)
	return nil
}

func (s *Shell) recommend(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("usage: recommend <name> <count|sum> <budget>")
	}
	metric, err := parseMetric(args[1])
	if err != nil {
		return err
	}
	budget, err := atoi("budget", args[2])
	if err != nil {
		return err
	}
	workload := rangeagg.RandomRanges(s.eng.Domain(), 200, 1)
	win, err := s.eng.RecommendSynopsis(args[0], metric, workload, budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "advisor picked %s (RMS %.3f, %d words)\n",
		win.Method, win.RMS, win.StorageWords)
	return nil
}

func (s *Shell) drop(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: drop <name>")
	}
	if !s.eng.DropSynopsis(args[0]) {
		return fmt.Errorf("no synopsis named %q", args[0])
	}
	fmt.Fprintln(s.out, "dropped")
	return nil
}

func (s *Shell) list() error {
	if err := s.needEngine(); err != nil {
		return err
	}
	names := s.eng.SynopsisNames()
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(s.out, "(no synopses)")
		return nil
	}
	for _, n := range names {
		info, err := s.eng.Describe(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%-12s %-6s %-16s %4d words  stale %d\n",
			info.Name, info.Metric, info.Method, info.StorageWords, info.Stale)
	}
	return nil
}

func (s *Shell) describe(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: describe <name>")
	}
	info, err := s.eng.Describe(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "name=%s metric=%s method=%s words=%d stale=%d\n",
		info.Name, info.Metric, info.Method, info.StorageWords, info.Stale)
	return nil
}

func (s *Shell) exact(cmd string, args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: %s <a> <b>", cmd)
	}
	a, err := atoi("a", args[0])
	if err != nil {
		return err
	}
	b, err := atoi("b", args[1])
	if err != nil {
		return err
	}
	if cmd == "count" {
		fmt.Fprintf(s.out, "%d\n", s.eng.ExactCount(a, b))
	} else {
		fmt.Fprintf(s.out, "%d\n", s.eng.ExactSum(a, b))
	}
	return nil
}

func (s *Shell) approx(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("usage: approx <name> <a> <b>")
	}
	a, err := atoi("a", args[1])
	if err != nil {
		return err
	}
	b, err := atoi("b", args[2])
	if err != nil {
		return err
	}
	v, err := s.eng.Approx(args[0], a, b)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%.2f\n", v)
	return nil
}

func (s *Shell) report(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: report <name> <queries>")
	}
	k, err := atoi("queries", args[1])
	if err != nil {
		return err
	}
	if k <= 0 {
		return fmt.Errorf("need a positive query count")
	}
	m, err := s.eng.Report(args[0], rangeagg.RandomRanges(s.eng.Domain(), k, 1))
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "queries=%d rms=%.3f mae=%.3f max=%.3f mean-rel=%.4f\n",
		m.Queries, m.RMS, m.MAE, m.MaxAbs, m.MeanRel)
	return nil
}

func (s *Shell) progressive(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 4 {
		return fmt.Errorf("usage: progressive <name> <a> <b> <chunks>")
	}
	a, err := atoi("a", args[1])
	if err != nil {
		return err
	}
	b, err := atoi("b", args[2])
	if err != nil {
		return err
	}
	chunks, err := atoi("chunks", args[3])
	if err != nil {
		return err
	}
	steps, err := s.eng.Progressive(args[0], a, b, chunks)
	if err != nil {
		return err
	}
	for _, st := range steps {
		fmt.Fprintf(s.out, "scanned %4d/%-4d  estimate %.2f\n", st.Scanned, st.Of, st.Estimate)
	}
	return nil
}

func (s *Shell) sse(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: sse <name>")
	}
	v, err := s.eng.SynopsisSSE(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "%.6g\n", v)
	return nil
}

func (s *Shell) columns() error {
	names := s.store.Columns()
	if len(names) == 0 {
		fmt.Fprintln(s.out, "(no columns)")
		return nil
	}
	for _, n := range names {
		marker := " "
		if n == s.cur {
			marker = "*"
		}
		col, err := s.store.Column(n)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%s %-10s domain %d, %d records, %d synopses\n",
			marker, n, col.Domain(), col.Records(), len(col.SynopsisNames()))
	}
	return nil
}

func (s *Shell) use(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: use <column>")
	}
	col, err := s.store.Column(args[0])
	if err != nil {
		return err
	}
	s.eng, s.cur = col, args[0]
	fmt.Fprintf(s.out, "using column %s\n", s.cur)
	return nil
}

func (s *Shell) save(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: save <file>")
	}
	// Crash-safe: temp file + fsync + atomic rename, so an interrupted
	// save never clobbers the previous copy.
	if err := s.store.SaveFile(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "saved %d columns to %s\n", len(s.store.Columns()), args[0])
	return nil
}

func (s *Shell) open(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: open <file>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := rangeagg.OpenStore(f)
	if err != nil {
		return err
	}
	s.store = store
	s.eng, s.cur = nil, ""
	if cols := store.Columns(); len(cols) > 0 {
		col, err := store.Column(cols[0])
		if err != nil {
			return err
		}
		s.eng, s.cur = col, cols[0]
	}
	fmt.Fprintf(s.out, "opened %d columns; current = %q\n", len(store.Columns()), s.cur)
	return nil
}

func (s *Shell) autoRefresh(args []string) error {
	if err := s.needEngine(); err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: autorefresh <threshold>")
	}
	threshold, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad threshold %q", args[0])
	}
	s.eng.SetAutoRefresh(threshold)
	fmt.Fprintf(s.out, "auto-refresh threshold = %d\n", threshold)
	return nil
}
