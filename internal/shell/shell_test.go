package shell

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rangeagg/internal/dataset"
)

// run executes a script of newline-separated commands and returns the
// accumulated output; it fails the test on any command error.
func run(t *testing.T, script string) string {
	t.Helper()
	var buf bytes.Buffer
	sh := New(&buf)
	for _, line := range strings.Split(script, "\n") {
		quit, err := sh.Exec(line)
		if err != nil {
			t.Fatalf("command %q: %v", line, err)
		}
		if quit {
			break
		}
	}
	return buf.String()
}

// mustFail executes a single command on a fresh or prepared shell and
// asserts it errors.
func mustFail(t *testing.T, sh *Shell, line string) {
	t.Helper()
	if _, err := sh.Exec(line); err == nil {
		t.Errorf("command %q should fail", line)
	}
}

func TestEndToEndScript(t *testing.T) {
	out := run(t, `
# comments and blank lines are ignored
gen zipf 64 1.8 500 3
build h count A0 16
build s sum SAP0 18
describe h
count 0 63
sum 0 63
approx h 0 63
report h 50
sse h
list
drop s
autorefresh 10
insert 0 100
delete 0 50
quit
`)
	for _, want := range []string{
		"generated zipf(n=64",
		"built h: COUNT A0, 16 words",
		"built s: SUM SAP0, 18 words",
		"name=h metric=COUNT method=A0",
		"dropped",
		"auto-refresh threshold = 10",
		"ok (",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestApproxTracksExact(t *testing.T) {
	out := run(t, `
gen zipf 64 1.8 500 3
build h count OPT-A 24
count 0 63
approx h 0 63
`)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	exact := lines[len(lines)-2]
	approx := lines[len(lines)-1]
	if !strings.HasPrefix(approx, exact) {
		t.Errorf("full-domain approx %q should match exact %q", approx, exact)
	}
}

func TestLoadFromCSV(t *testing.T) {
	d, err := dataset.Zipf(dataset.ZipfConfig{N: 20, Alpha: 1.5, MaxCount: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := run(t, "load "+path+"\ncount 0 19")
	if !strings.Contains(out, "20 values") {
		t.Errorf("load output: %s", out)
	}
}

func TestRecommendCommand(t *testing.T) {
	out := run(t, `
gen zipf 48 1.8 300 3
recommend auto count 16
list
`)
	if !strings.Contains(out, "advisor picked") {
		t.Errorf("no advisor output:\n%s", out)
	}
	if !strings.Contains(out, "auto") {
		t.Errorf("winner not registered:\n%s", out)
	}
}

func TestBuildReoptOption(t *testing.T) {
	out := run(t, `
gen zipf 48 1.8 300 3
build r count EQUI-WIDTH 16 reopt
describe r
`)
	if !strings.Contains(out, "EQUI-WIDTH-reopt") {
		t.Errorf("reopt not applied:\n%s", out)
	}
}

func TestErrorsAreReported(t *testing.T) {
	var buf bytes.Buffer
	sh := New(&buf)
	mustFail(t, sh, "bogus")
	mustFail(t, sh, "count 0 3")    // no engine
	mustFail(t, sh, "create")       // missing arg
	mustFail(t, sh, "create x")     // bad number
	mustFail(t, sh, "gen zipf 1 2") // wrong arity
	if _, err := sh.Exec("create 16"); err != nil {
		t.Fatal(err)
	}
	mustFail(t, sh, "build h count NOPE 8")    // bad method
	mustFail(t, sh, "build h nope A0 8")       // bad metric
	mustFail(t, sh, "build h count A0 8 fast") // bad option
	mustFail(t, sh, "approx missing 0 3")      // unknown synopsis
	mustFail(t, sh, "drop missing")
	mustFail(t, sh, "insert 99 1") // out of domain
	mustFail(t, sh, "load /nonexistent/file.csv")
	mustFail(t, sh, "report missing 10")
	mustFail(t, sh, "sse missing")
	mustFail(t, sh, "autorefresh zz")
}

func TestHelpAndQuit(t *testing.T) {
	var buf bytes.Buffer
	sh := New(&buf)
	if quit, err := sh.Exec("help"); err != nil || quit {
		t.Fatalf("help: quit=%v err=%v", quit, err)
	}
	if !strings.Contains(buf.String(), "commands:") {
		t.Error("help output missing")
	}
	if quit, _ := sh.Exec("quit"); !quit {
		t.Error("quit did not quit")
	}
	if quit, _ := sh.Exec("exit"); !quit {
		t.Error("exit did not quit")
	}
}

func TestStoreCommands(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	out := run(t, `
gen zipf 32 1.5 200 1
build h count A0 12
create 16
insert 3 50
columns
use zipf1
describe h
save `+path+`
`)
	for _, want := range []string{
		"generated zipf(n=32, a=1.5) into column zipf1",
		"column col2 over [0,16)",
		"* col2",
		"  zipf1",
		"using column zipf1",
		"name=h",
		"saved 2 columns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// A fresh shell restores the store and can query the rebuilt synopsis.
	out2 := run(t, "open "+path+"\ncolumns\nuse zipf1\napprox h 0 31")
	for _, want := range []string{"opened 2 columns", "zipf1"} {
		if !strings.Contains(out2, want) {
			t.Errorf("restore output missing %q:\n%s", want, out2)
		}
	}
}

func TestStoreCommandErrors(t *testing.T) {
	var buf bytes.Buffer
	sh := New(&buf)
	mustFail(t, sh, "use nope")
	mustFail(t, sh, "use")
	mustFail(t, sh, "save")
	mustFail(t, sh, "open /nonexistent/store.json")
	mustFail(t, sh, "save /nonexistent-dir/x.json")
	if _, err := sh.Exec("columns"); err != nil {
		t.Errorf("columns on empty store should succeed: %v", err)
	}
	if !strings.Contains(buf.String(), "(no columns)") {
		t.Error("empty-store message missing")
	}
}

func TestProgressiveCommand(t *testing.T) {
	out := run(t, `
gen zipf 32 1.5 200 1
build h count A0 8
progressive h 0 31 4
`)
	if !strings.Contains(out, "scanned   32/32") {
		t.Errorf("missing final exact step:\n%s", out)
	}
	var buf bytes.Buffer
	sh := New(&buf)
	mustFail(t, sh, "progressive h 0 3 2") // no engine
}
