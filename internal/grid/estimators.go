package grid

import (
	"fmt"
)

// Naive2D stores the single global average (1 word).
type Naive2D struct {
	rows, cols int
	avg        float64
}

// NewNaive2D builds the global-average summary.
func NewNaive2D(t *Table) *Naive2D {
	full := Rect{R1: 0, C1: 0, R2: t.rows - 1, C2: t.cols - 1}
	return &Naive2D{
		rows: t.rows, cols: t.cols,
		avg: t.SumF(full) / float64(t.rows*t.cols),
	}
}

// Rows returns the first-dimension domain size.
func (n *Naive2D) Rows() int { return n.rows }

// Cols returns the second-dimension domain size.
func (n *Naive2D) Cols() int { return n.cols }

// StorageWords returns 1.
func (n *Naive2D) StorageWords() int { return 1 }

// Name identifies the construction.
func (n *Naive2D) Name() string { return "NAIVE-2D" }

// Estimate answers a rectangle query by area × average.
func (n *Naive2D) Estimate(q Rect) float64 {
	if !q.Valid(n.rows, n.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v", q))
	}
	return n.avg * float64(q.R2-q.R1+1) * float64(q.C2-q.C1+1)
}

// EquiGrid partitions the domain into a gr×gc grid of cells, each storing
// its average — the classical multidimensional equi-width histogram.
// Storage: gr·gc values + the two boundary vectors ≈ gr·gc + gr + gc
// words.
type EquiGrid struct {
	rows, cols int
	rowStarts  []int
	colStarts  []int
	avgs       [][]float64 // [cellRow][cellCol]
}

// NewEquiGrid builds a gr×gc equi-width grid histogram.
func NewEquiGrid(t *Table, gr, gc int) (*EquiGrid, error) {
	if gr <= 0 || gc <= 0 {
		return nil, fmt.Errorf("grid: need positive grid dimensions, got %d×%d", gr, gc)
	}
	if gr > t.rows {
		gr = t.rows
	}
	if gc > t.cols {
		gc = t.cols
	}
	e := &EquiGrid{rows: t.rows, cols: t.cols}
	e.rowStarts = equiStarts(t.rows, gr)
	e.colStarts = equiStarts(t.cols, gc)
	gr, gc = len(e.rowStarts), len(e.colStarts)
	e.avgs = make([][]float64, gr)
	for i := range e.avgs {
		e.avgs[i] = make([]float64, gc)
		r1, r2 := e.rowBounds(i)
		for j := range e.avgs[i] {
			c1, c2 := e.colBounds(j)
			area := float64((r2 - r1 + 1) * (c2 - c1 + 1))
			e.avgs[i][j] = t.SumF(Rect{R1: r1, C1: c1, R2: r2, C2: c2}) / area
		}
	}
	return e, nil
}

func equiStarts(n, parts int) []int {
	starts := make([]int, 0, parts)
	last := -1
	for i := 0; i < parts; i++ {
		s := i * n / parts
		if s != last {
			starts = append(starts, s)
			last = s
		}
	}
	return starts
}

func (e *EquiGrid) rowBounds(i int) (int, int) {
	lo := e.rowStarts[i]
	hi := e.rows - 1
	if i+1 < len(e.rowStarts) {
		hi = e.rowStarts[i+1] - 1
	}
	return lo, hi
}

func (e *EquiGrid) colBounds(j int) (int, int) {
	lo := e.colStarts[j]
	hi := e.cols - 1
	if j+1 < len(e.colStarts) {
		hi = e.colStarts[j+1] - 1
	}
	return lo, hi
}

// Rows returns the first-dimension domain size.
func (e *EquiGrid) Rows() int { return e.rows }

// Cols returns the second-dimension domain size.
func (e *EquiGrid) Cols() int { return e.cols }

// StorageWords counts the cell values plus the two boundary vectors.
func (e *EquiGrid) StorageWords() int {
	return len(e.rowStarts)*len(e.colStarts) + len(e.rowStarts) + len(e.colStarts)
}

// Name identifies the construction.
func (e *EquiGrid) Name() string { return "EQUI-GRID" }

// Estimate answers a rectangle query by accumulating cell overlaps.
func (e *EquiGrid) Estimate(q Rect) float64 {
	if !q.Valid(e.rows, e.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v", q))
	}
	var sum float64
	for i := range e.rowStarts {
		r1, r2 := e.rowBounds(i)
		if r2 < q.R1 || r1 > q.R2 {
			continue
		}
		rOverlap := float64(min(r2, q.R2) - max(r1, q.R1) + 1)
		for j := range e.colStarts {
			c1, c2 := e.colBounds(j)
			if c2 < q.C1 || c1 > q.C2 {
				continue
			}
			cOverlap := float64(min(c2, q.C2) - max(c1, q.C1) + 1)
			sum += e.avgs[i][j] * rOverlap * cOverlap
		}
	}
	return sum
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AVI is the classic attribute-value-independence estimator every
// commercial optimizer falls back to: it keeps one 1-D synopsis per
// marginal and estimates a rectangle as
//
//	ŝ(rect) = rowEst(r1..r2) · colEst(c1..c2) / total,
//
// exact when the joint distribution is a product of its marginals and
// arbitrarily wrong under correlation — the baseline the 2-D synopses
// exist to beat.
type AVI struct {
	rows, cols int
	total      float64
	rowEst     Marginal
	colEst     Marginal
}

// Marginal answers approximate 1-D range sums (any rangeagg synopsis fits).
type Marginal interface {
	Estimate(a, b int) float64
	StorageWords() int
	Name() string
}

// NewAVI combines two marginal synopses into the independence estimator.
func NewAVI(t *Table, rowEst, colEst Marginal) (*AVI, error) {
	if rowEst == nil || colEst == nil {
		return nil, fmt.Errorf("grid: AVI needs both marginal synopses")
	}
	full := Rect{R1: 0, C1: 0, R2: t.rows - 1, C2: t.cols - 1}
	return &AVI{
		rows: t.rows, cols: t.cols,
		total:  t.SumF(full),
		rowEst: rowEst, colEst: colEst,
	}, nil
}

// RowMarginal extracts the row-sums vector of a grid (for building the
// row synopsis).
func RowMarginal(g *Grid) []int64 {
	out := make([]int64, g.Rows())
	for r, row := range g.Counts {
		for _, v := range row {
			out[r] += v
		}
	}
	return out
}

// ColMarginal extracts the column-sums vector of a grid.
func ColMarginal(g *Grid) []int64 {
	out := make([]int64, g.Cols())
	for _, row := range g.Counts {
		for c, v := range row {
			out[c] += v
		}
	}
	return out
}

// Rows returns the first-dimension domain size.
func (a *AVI) Rows() int { return a.rows }

// Cols returns the second-dimension domain size.
func (a *AVI) Cols() int { return a.cols }

// StorageWords sums the marginal synopses plus the stored total.
func (a *AVI) StorageWords() int {
	return a.rowEst.StorageWords() + a.colEst.StorageWords() + 1
}

// Name identifies the construction.
func (a *AVI) Name() string { return "AVI" }

// Estimate applies the independence assumption.
func (a *AVI) Estimate(q Rect) float64 {
	if !q.Valid(a.rows, a.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v", q))
	}
	if a.total == 0 {
		return 0
	}
	return a.rowEst.Estimate(q.R1, q.R2) * a.colEst.Estimate(q.C1, q.C2) / a.total
}
