package grid

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-8*scale
}

func randGrid(rng *rand.Rand, rows, cols int, lim int64) *Grid {
	counts := make([][]int64, rows)
	for r := range counts {
		counts[r] = make([]int64, cols)
		for c := range counts[r] {
			counts[r][c] = rng.Int63n(lim)
		}
	}
	g, err := New("rand", counts)
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := New("x", [][]int64{{1, 2}, {3}}); err == nil {
		t.Error("ragged accepted")
	}
	if _, err := New("x", [][]int64{{1, -2}}); err == nil {
		t.Error("negative accepted")
	}
	g, err := New("x", [][]int64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows() != 2 || g.Cols() != 3 || g.Total() != 21 {
		t.Errorf("basic accessors wrong: %d %d %d", g.Rows(), g.Cols(), g.Total())
	}
}

func TestTableSumsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	g := randGrid(rng, 7, 9, 30)
	tab := NewTable(g)
	for _, q := range AllRects(7, 9) {
		var want int64
		for r := q.R1; r <= q.R2; r++ {
			for c := q.C1; c <= q.C2; c++ {
				want += g.Counts[r][c]
			}
		}
		if got := tab.Sum(q); got != want {
			t.Fatalf("Sum(%+v) = %d, want %d", q, got, want)
		}
	}
}

func TestTableSumPanics(t *testing.T) {
	g := randGrid(rand.New(rand.NewSource(1)), 3, 3, 5)
	tab := NewTable(g)
	defer func() {
		if recover() == nil {
			t.Error("invalid rect accepted")
		}
	}()
	tab.Sum(Rect{R1: 0, C1: 0, R2: 3, C2: 0})
}

func TestNaive2D(t *testing.T) {
	g, _ := New("x", [][]int64{{2, 2}, {2, 2}})
	tab := NewTable(g)
	n := NewNaive2D(tab)
	if n.StorageWords() != 1 {
		t.Errorf("storage = %d", n.StorageWords())
	}
	if got := n.Estimate(Rect{0, 0, 1, 1}); !approxEq(got, 8) {
		t.Errorf("full estimate = %g, want 8", got)
	}
	if got := n.Estimate(Rect{0, 0, 0, 0}); !approxEq(got, 2) {
		t.Errorf("cell estimate = %g, want 2", got)
	}
}

func TestEquiGridExactOnAlignedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	g := randGrid(rng, 8, 8, 40)
	tab := NewTable(g)
	e, err := NewEquiGrid(tab, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Queries aligned to cell boundaries are exact (cells are averaged).
	full := Rect{0, 0, 7, 7}
	if got, want := e.Estimate(full), tab.SumF(full); !approxEq(got, want) {
		t.Errorf("full = %g, want %g", got, want)
	}
	cell := Rect{R1: 2, C1: 4, R2: 3, C2: 5}
	if got, want := e.Estimate(cell), tab.SumF(cell); !approxEq(got, want) {
		t.Errorf("cell-aligned = %g, want %g", got, want)
	}
}

func TestEquiGridMatchesBruteDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	g := randGrid(rng, 6, 10, 25)
	tab := NewTable(g)
	e, err := NewEquiGrid(tab, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: per-position average lookup.
	avgAt := func(r, c int) float64 {
		var i, j int
		for i = len(e.rowStarts) - 1; e.rowStarts[i] > r; i-- {
		}
		for j = len(e.colStarts) - 1; e.colStarts[j] > c; j-- {
		}
		return e.avgs[i][j]
	}
	for _, q := range AllRects(6, 10) {
		var want float64
		for r := q.R1; r <= q.R2; r++ {
			for c := q.C1; c <= q.C2; c++ {
				want += avgAt(r, c)
			}
		}
		if got := e.Estimate(q); !approxEq(got, want) {
			t.Fatalf("Estimate(%+v) = %g, want %g", q, got, want)
		}
	}
}

func TestEquiGridValidation(t *testing.T) {
	g := randGrid(rand.New(rand.NewSource(2)), 4, 4, 5)
	tab := NewTable(g)
	if _, err := NewEquiGrid(tab, 0, 2); err == nil {
		t.Error("zero grid accepted")
	}
	// Oversized grid collapses.
	e, err := NewEquiGrid(tab, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.rowStarts) > 4 || len(e.colStarts) > 4 {
		t.Errorf("grid not collapsed: %d×%d", len(e.rowStarts), len(e.colStarts))
	}
}

func TestWave2DFullBudgetIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	for _, dims := range [][2]int{{8, 8}, {5, 9}} { // aligned and padded
		g := randGrid(rng, dims[0], dims[1], 30)
		tab := NewTable(g)
		w, err := NewWave2D(g, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range AllRects(dims[0], dims[1]) {
			if got, want := w.Estimate(q), tab.SumF(q); !approxEq(got, want) {
				t.Fatalf("dims %v: Estimate(%+v) = %g, want %g", dims, q, got, want)
			}
		}
	}
}

func TestRangeOpt2DFullBudgetIsExact(t *testing.T) {
	// With every non-DC-factor coefficient kept, rectangle answers are
	// exact: the dropped DC-factor coefficients never matter. Corner grid
	// 8×8 (rows=cols=7) is exactly power-of-two.
	rng := rand.New(rand.NewSource(135))
	g := randGrid(rng, 7, 7, 40)
	tab := NewTable(g)
	s, err := NewRangeOpt2D(tab, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range AllRects(7, 7) {
		if got, want := s.Estimate(q), tab.SumF(q); !approxEq(got, want) {
			t.Fatalf("Estimate(%+v) = %g, want %g", q, got, want)
		}
	}
}

func TestRangeOpt2DClosedForm(t *testing.T) {
	// SSE over all rectangles = Nr·Nc·Σ_{dropped k,l≥1} c² on
	// power-of-two corner grids.
	rng := rand.New(rand.NewSource(136))
	g := randGrid(rng, 7, 15, 25) // corner grids 8 and 16
	tab := NewTable(g)
	// Full transform for the reference.
	powR, powC := 8, 16
	m := make([][]float64, powR)
	for u := range m {
		m[u] = make([]float64, powC)
		for v := range m[u] {
			su, sv := u, v
			if su > 7 {
				su = 7
			}
			if sv > 15 {
				sv = 15
			}
			m[u][v] = float64(tab.P[su][sv])
		}
	}
	coeffs, err := transform2D(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{2, 6, 20} {
		s, err := NewRangeOpt2D(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		kept := map[[2]int]bool{}
		for _, c := range s.Coefficients() {
			kept[[2]int{c.K, c.L}] = true
		}
		var want float64
		for k := 1; k < powR; k++ {
			for l := 1; l < powC; l++ {
				if !kept[[2]int{k, l}] {
					want += coeffs[k][l] * coeffs[k][l]
				}
			}
		}
		want *= float64(powR * powC)
		got := SSEAll(tab, s)
		if !approxEq(got, want) {
			t.Fatalf("b=%d: SSE %g, closed form %g", b, got, want)
		}
	}
}

func TestRangeOpt2DOptimalAmongSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	g := randGrid(rng, 7, 7, 30)
	tab := NewTable(g)
	const b = 5
	opt, err := NewRangeOpt2D(tab, b)
	if err != nil {
		t.Fatal(err)
	}
	optSSE := SSEAll(tab, opt)
	// Random same-size subsets (possibly wasting slots on DC factors)
	// cannot beat the selection.
	powR, powC := 8, 8
	m := make([][]float64, powR)
	for u := range m {
		m[u] = make([]float64, powC)
		for v := range m[u] {
			su, sv := u, v
			if su > 7 {
				su = 7
			}
			if sv > 7 {
				sv = 7
			}
			m[u][v] = float64(tab.P[su][sv])
		}
	}
	coeffs, _ := transform2D(m)
	for trial := 0; trial < 150; trial++ {
		cand := &RangeOpt2D{rows: 7, cols: 7, powR: powR, powC: powC,
			lookup: map[int64]float64{}, label: "cand"}
		for len(cand.lookup) < b {
			k, l := rng.Intn(powR), rng.Intn(powC)
			key := int64(k)<<32 | int64(l)
			if _, dup := cand.lookup[key]; !dup {
				cand.lookup[key] = coeffs[k][l]
				cand.coeffs = append(cand.coeffs, Coefficient2D{K: k, L: l, Value: coeffs[k][l]})
			}
		}
		if got := SSEAll(tab, cand); got < optSSE-1e-6*(1+optSSE) {
			t.Fatalf("trial %d: subset SSE %g beats optimal %g", trial, got, optSSE)
		}
	}
}

func TestWave2DValidation(t *testing.T) {
	g := randGrid(rand.New(rand.NewSource(3)), 4, 4, 5)
	tab := NewTable(g)
	if _, err := NewWave2D(g, 0); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := NewRangeOpt2D(tab, -1); err == nil {
		t.Error("b<0 accepted")
	}
	w, _ := NewWave2D(g, 3)
	if w.StorageWords() != 6 {
		t.Errorf("storage = %d, want 6", w.StorageWords())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid rect accepted")
		}
	}()
	w.Estimate(Rect{0, 0, 9, 9})
}

func TestSSEWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(138))
	g := randGrid(rng, 6, 6, 20)
	tab := NewTable(g)
	n := NewNaive2D(tab)
	all := AllRects(6, 6)
	if len(all) != 21*21 {
		t.Fatalf("AllRects count = %d, want 441", len(all))
	}
	if got := SSE(tab, n, all); got != SSEAll(tab, n) {
		t.Errorf("SSE/SSEAll mismatch")
	}
}

func TestErrorDecreasesWithBudget2D(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	g := randGrid(rng, 7, 7, 60)
	tab := NewTable(g)
	prev := math.Inf(1)
	for _, b := range []int{1, 4, 16, 49} {
		s, err := NewRangeOpt2D(tab, b)
		if err != nil {
			t.Fatal(err)
		}
		got := SSEAll(tab, s)
		if got > prev+1e-6 {
			t.Errorf("SSE grew with budget at b=%d: %g → %g", b, prev, got)
		}
		prev = got
	}
}

func TestJSONRoundTrip2D(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	g := randGrid(rng, 9, 13, 40)
	tab := NewTable(g)
	eg, err := NewEquiGrid(tab, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWave2D(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := NewRangeOpt2D(tab, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Estimator2D{NewNaive2D(tab), eg, w2, ro} {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, s); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if back.Rows() != s.Rows() || back.Cols() != s.Cols() || back.StorageWords() != s.StorageWords() {
			t.Fatalf("%s: metadata mismatch", s.Name())
		}
		for _, q := range AllRects(9, 13) {
			if got, want := back.Estimate(q), s.Estimate(q); !approxEq(got, want) {
				t.Fatalf("%s: Estimate(%+v) = %g, want %g", s.Name(), q, got, want)
			}
		}
	}
}

func TestReadJSON2DRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{broken`,
		`{"kind":"nope","rows":3,"cols":3}`,
		`{"kind":"naive","rows":0,"cols":3}`,
		`{"kind":"equigrid","rows":3,"cols":3}`, // no cells
		`{"kind":"equigrid","rows":3,"cols":3,"rowStarts":[1],"colStarts":[0]}`,        // bad start
		`{"kind":"wave","rows":4,"cols":4,"powR":3,"powC":4}`,                          // non-pow2
		`{"kind":"wave","rows":4,"cols":4,"powR":2,"powC":4}`,                          // too small
		`{"kind":"rangeopt","rows":4,"cols":4,"powR":4,"powC":4}`,                      // corner too small
		`{"kind":"wave","rows":4,"cols":4,"powR":4,"powC":4,"coeffs":[{"K":9,"L":0}]}`, // bad index
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestWriteJSON2DRejectsForeign(t *testing.T) {
	if err := WriteJSON(&bytes.Buffer{}, fake2D{}); err == nil {
		t.Error("foreign estimator accepted")
	}
}

type fake2D struct{}

func (fake2D) Estimate(q Rect) float64 { return 0 }
func (fake2D) Rows() int               { return 1 }
func (fake2D) Cols() int               { return 1 }
func (fake2D) StorageWords() int       { return 0 }
func (fake2D) Name() string            { return "fake" }

func TestAVIExactOnProductDistributions(t *testing.T) {
	// Independent joint distribution: AVI with exact marginals is exact.
	rowM := []int64{1, 4, 2, 3}
	colM := []int64{2, 0, 5, 1, 2}
	counts := make([][]int64, 4)
	for r := range counts {
		counts[r] = make([]int64, 5)
		for c := range counts[r] {
			counts[r][c] = rowM[r] * colM[c]
		}
	}
	g, _ := New("product", counts)
	tab := NewTable(g)
	avi, err := NewAVI(tab, exactMarginal(RowMarginal(g)), exactMarginal(ColMarginal(g)))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range AllRects(4, 5) {
		if got, want := avi.Estimate(q), tab.SumF(q); !approxEq(got, want) {
			t.Fatalf("AVI(%+v) = %g, want %g", q, got, want)
		}
	}
}

// exactMarginal wraps a counts vector as a perfect Marginal.
type exactVec []int64

func exactMarginal(v []int64) Marginal { return exactVec(v) }

func (v exactVec) Estimate(a, b int) float64 {
	var s int64
	for i := a; i <= b; i++ {
		s += v[i]
	}
	return float64(s)
}
func (v exactVec) StorageWords() int { return len(v) }
func (v exactVec) Name() string      { return "exact" }

func TestAVIFailsUnderCorrelation(t *testing.T) {
	// Perfectly diagonal data: marginals are uniform, independence is
	// maximally wrong on the diagonal cells.
	n := 8
	counts := make([][]int64, n)
	for r := range counts {
		counts[r] = make([]int64, n)
		counts[r][r] = 10
	}
	g, _ := New("diag", counts)
	tab := NewTable(g)
	avi, _ := NewAVI(tab, exactMarginal(RowMarginal(g)), exactMarginal(ColMarginal(g)))
	// True diagonal cell = 10; AVI says 10·10/80 = 1.25.
	got := avi.Estimate(Rect{R1: 3, C1: 3, R2: 3, C2: 3})
	if math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("AVI diagonal cell = %g, want 1.25", got)
	}
	// And a 2-D synopsis with enough budget is far better on the diagonal.
	ro, err := NewRangeOpt2D(tab, 30)
	if err != nil {
		t.Fatal(err)
	}
	aviSSE := SSEAll(tab, avi)
	roSSE := SSEAll(tab, ro)
	if roSSE >= aviSSE {
		t.Errorf("2-D synopsis %g not better than AVI %g on correlated data", roSSE, aviSSE)
	}
}

func TestAVIValidation(t *testing.T) {
	g, _ := New("x", [][]int64{{1}})
	tab := NewTable(g)
	if _, err := NewAVI(tab, nil, exactMarginal([]int64{1})); err == nil {
		t.Error("nil marginal accepted")
	}
	// Zero-mass grid answers 0 everywhere.
	zg, _ := New("z", [][]int64{{0, 0}, {0, 0}})
	ztab := NewTable(zg)
	avi, err := NewAVI(ztab, exactMarginal(RowMarginal(zg)), exactMarginal(ColMarginal(zg)))
	if err != nil {
		t.Fatal(err)
	}
	if got := avi.Estimate(Rect{0, 0, 1, 1}); got != 0 {
		t.Errorf("zero-mass AVI = %g", got)
	}
}
