// Package grid extends the paper's machinery to two-dimensional
// (joint) attribute-value distributions — the "straightforward extension
// ... to higher dimensions" of the paper's footnote 2. It provides the 2-D
// prefix-sum substrate, rectangle range queries, and summary
// representations: the global average, an equi-grid bucket histogram, the
// classical pointwise top-B 2-D Haar synopsis, and a provably
// range-optimal 2-D wavelet selection.
//
// # The 2-D prefix-corner identity
//
// A rectangle sum is the four-corner combination of the corner prefix grid
// PP (PP[u][v] = Σ counts[<u][<v]):
//
//	s(rect) = PP[u2][v2] − PP[u1][v2] − PP[u2][v1] + PP[u1][v1].
//
// Expand the corner error E = PP − P̂P in the separable 2-D Haar basis
// ψ_k ⊗ ψ_l. A coefficient with k = 0 or l = 0 has a constant factor, and
// constants cancel in the corner combination — those coefficients are
// *free* to drop. For k, l ≥ 1 the rectangle-error cross terms factor into
// two copies of the 1-D quantity N·⟨ψ_k,ψ_k'⟩ − (Σψ_k)(Σψ_k'), which is
// N·δ_kk' for non-DC Haar vectors. Hence, over all rectangles,
//
//	SSE = N_r · N_c · Σ_{dropped k,l ≥ 1} c_kl²,
//
// and keeping the B largest |c_kl| with k, l ≥ 1 is optimal within the
// corner-grid coefficient class — the exact 2-D analogue of the 1-D
// prefix-domain selection (exact on power-of-two corner grids).
package grid

import (
	"fmt"
)

// Grid is a two-dimensional attribute-value distribution:
// Counts[r][c] = number of records with first attribute r and second c.
type Grid struct {
	Name   string
	Counts [][]int64
}

// New validates and wraps a 2-D count matrix (rectangular, non-negative).
func New(name string, counts [][]int64) (*Grid, error) {
	if len(counts) == 0 || len(counts[0]) == 0 {
		return nil, fmt.Errorf("grid: empty matrix")
	}
	width := len(counts[0])
	for r, row := range counts {
		if len(row) != width {
			return nil, fmt.Errorf("grid: ragged row %d (%d vs %d)", r, len(row), width)
		}
		for c, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("grid: negative count %d at (%d,%d)", v, r, c)
			}
		}
	}
	return &Grid{Name: name, Counts: counts}, nil
}

// Rows returns the first-dimension domain size.
func (g *Grid) Rows() int { return len(g.Counts) }

// Cols returns the second-dimension domain size.
func (g *Grid) Cols() int { return len(g.Counts[0]) }

// Total returns the total record count.
func (g *Grid) Total() int64 {
	var t int64
	for _, row := range g.Counts {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Rect is an inclusive 2-D range query.
type Rect struct{ R1, C1, R2, C2 int }

// Valid reports whether the rectangle is well-formed within the grid.
func (q Rect) Valid(rows, cols int) bool {
	return q.R1 >= 0 && q.C1 >= 0 && q.R2 < rows && q.C2 < cols &&
		q.R1 <= q.R2 && q.C1 <= q.C2
}

// Table holds the 2-D prefix sums of a grid.
type Table struct {
	rows, cols int
	// P[u][v] = Σ_{r<u, c<v} counts[r][c]; dimensions (rows+1)×(cols+1).
	P [][]int64
}

// NewTable builds the corner prefix grid in O(rows·cols).
func NewTable(g *Grid) *Table {
	rows, cols := g.Rows(), g.Cols()
	p := make([][]int64, rows+1)
	for u := range p {
		p[u] = make([]int64, cols+1)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			p[r+1][c+1] = g.Counts[r][c] + p[r][c+1] + p[r+1][c] - p[r][c]
		}
	}
	return &Table{rows: rows, cols: cols, P: p}
}

// Rows returns the first-dimension domain size.
func (t *Table) Rows() int { return t.rows }

// Cols returns the second-dimension domain size.
func (t *Table) Cols() int { return t.cols }

// Sum returns the exact rectangle sum.
func (t *Table) Sum(q Rect) int64 {
	if !q.Valid(t.rows, t.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v for %d×%d", q, t.rows, t.cols))
	}
	return t.P[q.R2+1][q.C2+1] - t.P[q.R1][q.C2+1] - t.P[q.R2+1][q.C1] + t.P[q.R1][q.C1]
}

// SumF is Sum as float64.
func (t *Table) SumF(q Rect) float64 { return float64(t.Sum(q)) }

// Estimator2D answers approximate rectangle sums.
type Estimator2D interface {
	Estimate(q Rect) float64
	Rows() int
	Cols() int
	StorageWords() int
	Name() string
}

// AllRects enumerates every rectangle of a rows×cols grid. The count is
// rows(rows+1)/2 · cols(cols+1)/2 — use only for small grids.
func AllRects(rows, cols int) []Rect {
	var out []Rect
	for r1 := 0; r1 < rows; r1++ {
		for r2 := r1; r2 < rows; r2++ {
			for c1 := 0; c1 < cols; c1++ {
				for c2 := c1; c2 < cols; c2++ {
					out = append(out, Rect{R1: r1, C1: c1, R2: r2, C2: c2})
				}
			}
		}
	}
	return out
}

// SSE computes the exact sum-squared error of an estimator over a
// workload of rectangles.
func SSE(t *Table, est Estimator2D, queries []Rect) float64 {
	var sum float64
	for _, q := range queries {
		d := t.SumF(q) - est.Estimate(q)
		sum += d * d
	}
	return sum
}

// SSEAll computes the exact SSE over every rectangle, via the corner-error
// expansion when the estimator exposes a corner grid (O((rows·cols)²)
// otherwise).
func SSEAll(t *Table, est Estimator2D) float64 {
	return SSE(t, est, AllRects(t.rows, t.cols))
}
