package grid

import (
	"encoding/json"
	"fmt"
	"io"
)

// encoded2D is the JSON wire form of the 2-D synopses.
type encoded2D struct {
	Kind      string          `json:"kind"` // "naive", "equigrid", "wave", "rangeopt"
	Rows      int             `json:"rows"`
	Cols      int             `json:"cols"`
	Avg       float64         `json:"avg,omitempty"`
	RowStarts []int           `json:"rowStarts,omitempty"`
	ColStarts []int           `json:"colStarts,omitempty"`
	CellAvgs  [][]float64     `json:"cellAvgs,omitempty"`
	PowR      int             `json:"powR,omitempty"`
	PowC      int             `json:"powC,omitempty"`
	Coeffs    []Coefficient2D `json:"coeffs,omitempty"`
	Label     string          `json:"label,omitempty"`
}

// WriteJSON serializes a 2-D synopsis.
func WriteJSON(w io.Writer, s Estimator2D) error {
	var enc encoded2D
	switch v := s.(type) {
	case *Naive2D:
		enc = encoded2D{Kind: "naive", Rows: v.rows, Cols: v.cols, Avg: v.avg}
	case *EquiGrid:
		enc = encoded2D{Kind: "equigrid", Rows: v.rows, Cols: v.cols,
			RowStarts: v.rowStarts, ColStarts: v.colStarts, CellAvgs: v.avgs}
	case *Wave2D:
		enc = encoded2D{Kind: "wave", Rows: v.rows, Cols: v.cols,
			PowR: v.powR, PowC: v.powC, Coeffs: v.coeffs, Label: v.label}
	case *RangeOpt2D:
		enc = encoded2D{Kind: "rangeopt", Rows: v.rows, Cols: v.cols,
			PowR: v.powR, PowC: v.powC, Coeffs: v.coeffs, Label: v.label}
	default:
		return fmt.Errorf("grid: cannot encode %T", s)
	}
	return json.NewEncoder(w).Encode(enc)
}

// ReadJSON deserializes a 2-D synopsis written by WriteJSON.
func ReadJSON(r io.Reader) (Estimator2D, error) {
	var enc encoded2D
	if err := json.NewDecoder(r).Decode(&enc); err != nil {
		return nil, fmt.Errorf("grid: decoding JSON: %w", err)
	}
	if enc.Rows <= 0 || enc.Cols <= 0 {
		return nil, fmt.Errorf("grid: corrupt dimensions %d×%d", enc.Rows, enc.Cols)
	}
	switch enc.Kind {
	case "naive":
		return &Naive2D{rows: enc.Rows, cols: enc.Cols, avg: enc.Avg}, nil
	case "equigrid":
		e := &EquiGrid{rows: enc.Rows, cols: enc.Cols,
			rowStarts: enc.RowStarts, colStarts: enc.ColStarts, avgs: enc.CellAvgs}
		if err := e.validate(); err != nil {
			return nil, err
		}
		return e, nil
	case "wave", "rangeopt":
		if err := validatePow2Pair(enc.PowR, enc.PowC); err != nil {
			return nil, err
		}
		for _, c := range enc.Coeffs {
			if c.K < 0 || c.K >= enc.PowR || c.L < 0 || c.L >= enc.PowC {
				return nil, fmt.Errorf("grid: coefficient (%d,%d) outside %d×%d transform", c.K, c.L, enc.PowR, enc.PowC)
			}
		}
		if enc.Kind == "wave" {
			if enc.PowR < enc.Rows || enc.PowC < enc.Cols {
				return nil, fmt.Errorf("grid: transform %d×%d smaller than domain %d×%d", enc.PowR, enc.PowC, enc.Rows, enc.Cols)
			}
			return &Wave2D{rows: enc.Rows, cols: enc.Cols, powR: enc.PowR, powC: enc.PowC,
				coeffs: enc.Coeffs, label: enc.Label}, nil
		}
		if enc.PowR < enc.Rows+1 || enc.PowC < enc.Cols+1 {
			return nil, fmt.Errorf("grid: corner transform %d×%d too small for domain %d×%d", enc.PowR, enc.PowC, enc.Rows, enc.Cols)
		}
		s := &RangeOpt2D{rows: enc.Rows, cols: enc.Cols, powR: enc.PowR, powC: enc.PowC,
			coeffs: enc.Coeffs, label: enc.Label, lookup: make(map[int64]float64, len(enc.Coeffs))}
		for _, c := range s.coeffs {
			s.lookup[int64(c.K)<<32|int64(c.L)] = c.Value
		}
		return s, nil
	default:
		return nil, fmt.Errorf("grid: unknown kind %q", enc.Kind)
	}
}

func validatePow2Pair(r, c int) error {
	if r <= 0 || r&(r-1) != 0 || c <= 0 || c&(c-1) != 0 {
		return fmt.Errorf("grid: corrupt transform lengths %d×%d", r, c)
	}
	return nil
}

// validate checks a decoded equi-grid for structural sanity.
func (e *EquiGrid) validate() error {
	if len(e.rowStarts) == 0 || len(e.colStarts) == 0 {
		return fmt.Errorf("grid: equi-grid without cells")
	}
	if e.rowStarts[0] != 0 || e.colStarts[0] != 0 {
		return fmt.Errorf("grid: equi-grid starts must begin at 0")
	}
	for i := 1; i < len(e.rowStarts); i++ {
		if e.rowStarts[i] <= e.rowStarts[i-1] || e.rowStarts[i] >= e.rows {
			return fmt.Errorf("grid: bad row starts")
		}
	}
	for j := 1; j < len(e.colStarts); j++ {
		if e.colStarts[j] <= e.colStarts[j-1] || e.colStarts[j] >= e.cols {
			return fmt.Errorf("grid: bad col starts")
		}
	}
	if len(e.avgs) != len(e.rowStarts) {
		return fmt.Errorf("grid: cell matrix has %d rows, want %d", len(e.avgs), len(e.rowStarts))
	}
	for _, row := range e.avgs {
		if len(row) != len(e.colStarts) {
			return fmt.Errorf("grid: cell matrix has %d cols, want %d", len(row), len(e.colStarts))
		}
	}
	return nil
}
