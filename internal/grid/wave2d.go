package grid

import (
	"fmt"
	"math"
	"sort"

	"rangeagg/internal/wavelet"
)

// transform2D computes the separable 2-D orthonormal Haar transform of a
// matrix whose dimensions are powers of two: 1-D transform of every row,
// then of every column. out[k][l] = Σ ψ_k[r]·ψ_l[c]·m[r][c].
func transform2D(m [][]float64) ([][]float64, error) {
	rows := len(m)
	if rows == 0 {
		return nil, fmt.Errorf("grid: empty matrix")
	}
	cols := len(m[0])
	out := make([][]float64, rows)
	for r, row := range m {
		tr, err := wavelet.TransformPow2(row)
		if err != nil {
			return nil, err
		}
		out[r] = tr
	}
	col := make([]float64, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = out[r][c]
		}
		tc, err := wavelet.TransformPow2(col)
		if err != nil {
			return nil, err
		}
		for r := 0; r < rows; r++ {
			out[r][c] = tc[r]
		}
	}
	return out, nil
}

// Coefficient2D is one retained 2-D coefficient (2 words: packed index
// pair + value).
type Coefficient2D struct {
	K, L  int // row-basis and column-basis indices
	Value float64
}

// selectTop keeps the b largest-magnitude coefficients, optionally
// restricted to k ≥ 1 and l ≥ 1 (the range-optimal class).
func selectTop(coeffs [][]float64, b int, skipDCFactors bool) []Coefficient2D {
	var all []Coefficient2D
	for k, row := range coeffs {
		for l, v := range row {
			if skipDCFactors && (k == 0 || l == 0) {
				continue
			}
			if v != 0 {
				all = append(all, Coefficient2D{K: k, L: l, Value: v})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		ai, aj := math.Abs(all[i].Value), math.Abs(all[j].Value)
		if ai != aj {
			return ai > aj
		}
		if all[i].K != all[j].K {
			return all[i].K < all[j].K
		}
		return all[i].L < all[j].L
	})
	if b > len(all) {
		b = len(all)
	}
	return append([]Coefficient2D(nil), all[:b]...)
}

// Wave2D is the classical pointwise top-B 2-D Haar synopsis over the
// count matrix (zero-padded) — the 2-D analogue of TOPBB.
type Wave2D struct {
	rows, cols int
	powR, powC int
	coeffs     []Coefficient2D
	label      string
}

// NewWave2D keeps the b largest 2-D Haar coefficients of the counts.
func NewWave2D(g *Grid, b int) (*Wave2D, error) {
	if b <= 0 {
		return nil, fmt.Errorf("grid: need at least one coefficient, got %d", b)
	}
	rows, cols := g.Rows(), g.Cols()
	powR, powC := wavelet.NextPow2(rows), wavelet.NextPow2(cols)
	m := make([][]float64, powR)
	for r := range m {
		m[r] = make([]float64, powC)
		if r < rows {
			for c, v := range g.Counts[r] {
				m[r][c] = float64(v)
			}
		}
	}
	coeffs, err := transform2D(m)
	if err != nil {
		return nil, err
	}
	return &Wave2D{
		rows: rows, cols: cols, powR: powR, powC: powC,
		coeffs: selectTop(coeffs, b, false), label: "TOPBB-2D",
	}, nil
}

// Rows returns the first-dimension domain size.
func (w *Wave2D) Rows() int { return w.rows }

// Cols returns the second-dimension domain size.
func (w *Wave2D) Cols() int { return w.cols }

// StorageWords returns 2 words per coefficient.
func (w *Wave2D) StorageWords() int { return 2 * len(w.coeffs) }

// Name identifies the construction.
func (w *Wave2D) Name() string { return w.label }

// Estimate answers a rectangle query in O(B): each separable basis
// function has an O(1) rectangle inner product.
func (w *Wave2D) Estimate(q Rect) float64 {
	if !q.Valid(w.rows, w.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v", q))
	}
	var sum float64
	for _, c := range w.coeffs {
		rs := wavelet.BasisRangeSum(w.powR, c.K, q.R1, q.R2)
		if rs == 0 {
			continue
		}
		cs := wavelet.BasisRangeSum(w.powC, c.L, q.C1, q.C2)
		if cs == 0 {
			continue
		}
		sum += c.Value * rs * cs
	}
	return sum
}

// RangeOpt2D is the provably range-optimal 2-D wavelet synopsis: the top-B
// coefficients with both factors non-DC of the Haar transform of the
// corner prefix grid (see the package comment for the optimality
// argument; exact on power-of-two corner grids, repeat-last padding
// otherwise).
type RangeOpt2D struct {
	rows, cols int
	powR, powC int
	coeffs     []Coefficient2D
	lookup     map[int64]float64
	label      string
}

// NewRangeOpt2D builds the range-optimal 2-D synopsis with b coefficients.
func NewRangeOpt2D(t *Table, b int) (*RangeOpt2D, error) {
	if b <= 0 {
		return nil, fmt.Errorf("grid: need at least one coefficient, got %d", b)
	}
	rows, cols := t.rows, t.cols
	powR, powC := wavelet.NextPow2(rows+1), wavelet.NextPow2(cols+1)
	m := make([][]float64, powR)
	for u := range m {
		m[u] = make([]float64, powC)
		su := u
		if su > rows {
			su = rows
		}
		for v := range m[u] {
			sv := v
			if sv > cols {
				sv = cols
			}
			m[u][v] = float64(t.P[su][sv])
		}
	}
	coeffs, err := transform2D(m)
	if err != nil {
		return nil, err
	}
	s := &RangeOpt2D{
		rows: rows, cols: cols, powR: powR, powC: powC,
		coeffs: selectTop(coeffs, b, true), label: "WAVE-RANGEOPT-2D",
	}
	s.lookup = make(map[int64]float64, len(s.coeffs))
	for _, c := range s.coeffs {
		s.lookup[int64(c.K)<<32|int64(c.L)] = c.Value
	}
	return s, nil
}

// Rows returns the first-dimension domain size.
func (s *RangeOpt2D) Rows() int { return s.rows }

// Cols returns the second-dimension domain size.
func (s *RangeOpt2D) Cols() int { return s.cols }

// StorageWords returns 2 words per coefficient.
func (s *RangeOpt2D) StorageWords() int { return 2 * len(s.coeffs) }

// Name identifies the construction.
func (s *RangeOpt2D) Name() string { return s.label }

// Coefficients returns the retained coefficients.
func (s *RangeOpt2D) Coefficients() []Coefficient2D { return s.coeffs }

// corner reconstructs P̂P[u][v] from the O(log²) coefficients whose
// supports cover (u,v), without allocating. Only k,l ≥ 1 coefficients are
// ever stored, so the DC paths are skipped.
func (s *RangeOpt2D) corner(u, v int) float64 {
	var sum float64
	for lr := s.powR; lr > 1; lr /= 2 {
		k := s.powR/lr + u/lr
		fk := wavelet.BasisAt(s.powR, k, u)
		if fk == 0 {
			continue
		}
		for lc := s.powC; lc > 1; lc /= 2 {
			l := s.powC/lc + v/lc
			if c, ok := s.lookup[int64(k)<<32|int64(l)]; ok {
				sum += c * fk * wavelet.BasisAt(s.powC, l, v)
			}
		}
	}
	return sum
}

// Estimate answers a rectangle query as the four-corner combination of
// the reconstructed prefix grid, in O(log² N) time.
func (s *RangeOpt2D) Estimate(q Rect) float64 {
	if !q.Valid(s.rows, s.cols) {
		panic(fmt.Sprintf("grid: invalid rectangle %+v", q))
	}
	return s.corner(q.R2+1, q.C2+1) - s.corner(q.R1, q.C2+1) -
		s.corner(q.R2+1, q.C1) + s.corner(q.R1, q.C1)
}
