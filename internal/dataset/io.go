package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV writes the distribution as "index,count" lines with a comment
// header carrying the name.
func (d *Distribution) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# dataset: %s\n", d.Name); err != nil {
		return err
	}
	for i, c := range d.Counts {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", i, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a distribution written by WriteCSV. Lines may be either
// "index,count" or bare "count"; indices must be dense and increasing when
// present. Blank lines are ignored.
func ReadCSV(r io.Reader) (*Distribution, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	name := "csv"
	var counts []int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# dataset:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Split(text, ",")
		var countField string
		switch len(fields) {
		case 1:
			countField = fields[0]
		case 2:
			idx, err := strconv.Atoi(strings.TrimSpace(fields[0]))
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad index %q: %v", line, fields[0], err)
			}
			if idx != len(counts) {
				return nil, fmt.Errorf("dataset: line %d: index %d out of order (want %d)", line, idx, len(counts))
			}
			countField = fields[1]
		default:
			return nil, fmt.Errorf("dataset: line %d: want 1 or 2 fields, got %d", line, len(fields))
		}
		c, err := strconv.ParseInt(strings.TrimSpace(countField), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad count %q: %v", line, countField, err)
		}
		counts = append(counts, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(name, counts)
}

// jsonDist is the JSON wire form of a Distribution.
type jsonDist struct {
	Name   string  `json:"name"`
	Counts []int64 `json:"counts"`
}

// WriteJSON writes the distribution as a JSON object.
func (d *Distribution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(jsonDist{Name: d.Name, Counts: d.Counts})
}

// ReadJSON reads a distribution written by WriteJSON.
func ReadJSON(r io.Reader) (*Distribution, error) {
	var jd jsonDist
	if err := json.NewDecoder(r).Decode(&jd); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	return New(jd.Name, jd.Counts)
}

// ReadValues reads raw attribute values, one integer per line (blank
// lines and #-comments ignored), and builds their distribution via
// FromValues.
func ReadValues(name string, r io.Reader) (*Distribution, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var values []int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("dataset: line %d: bad value %q: %v", line, text, err)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return FromValues(name, values)
}
