package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomRound rounds x up or down to a neighbouring integer, each with
// probability 1/2, exactly as the paper's dataset construction describes
// ("random rounding, up or down with probability 1/2"). Integral inputs are
// returned unchanged. The result is never negative for non-negative input.
func RandomRound(x float64, rng *rand.Rand) int64 {
	fl := math.Floor(x)
	if x == fl {
		return int64(fl)
	}
	v := int64(fl)
	if rng.Intn(2) == 1 {
		v++
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ZipfConfig parameterizes the paper's dataset generator.
type ZipfConfig struct {
	// N is the number of attribute values (the paper uses 127).
	N int
	// Alpha is the Zipf tail exponent (the paper uses 1.8).
	Alpha float64
	// MaxCount scales the head of the distribution: the float frequency of
	// rank 1 before rounding. The paper does not state its scale; 1000 is
	// this repository's default (see DefaultPaper).
	MaxCount float64
	// Permute shuffles the ranked frequencies across the domain. The paper
	// does not state an order; ranked (decreasing) is the default.
	Permute bool
	// Seed makes the random rounding (and permutation) deterministic.
	Seed int64
}

// DefaultPaper returns the configuration reproducing the paper's dataset:
// 127 integer keys from randomly rounded Zipf(α=1.8) floats.
func DefaultPaper() ZipfConfig {
	return ZipfConfig{N: 127, Alpha: 1.8, MaxCount: 1000, Seed: 1}
}

// Zipf generates the paper's dataset: float frequencies C/rank^α randomly
// rounded to integers.
func Zipf(cfg ZipfConfig) (*Distribution, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: Zipf N must be positive, got %d", cfg.N)
	}
	if err := checkFinite("Alpha", cfg.Alpha); err != nil {
		return nil, err
	}
	if err := checkFinite("MaxCount", cfg.MaxCount); err != nil {
		return nil, err
	}
	if cfg.MaxCount < 0 {
		return nil, fmt.Errorf("dataset: Zipf MaxCount must be non-negative, got %g", cfg.MaxCount)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	counts := make([]int64, cfg.N)
	for i := range counts {
		rank := float64(i + 1)
		counts[i] = RandomRound(cfg.MaxCount/math.Pow(rank, cfg.Alpha), rng)
	}
	if cfg.Permute {
		rng.Shuffle(len(counts), func(i, j int) {
			counts[i], counts[j] = counts[j], counts[i]
		})
	}
	name := fmt.Sprintf("zipf(n=%d,a=%.2g)", cfg.N, cfg.Alpha)
	return New(name, counts)
}

// Uniform generates n counts drawn uniformly from [lo, hi].
func Uniform(n int, lo, hi int64, seed int64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: Uniform n must be positive, got %d", n)
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("dataset: Uniform needs 0 <= lo <= hi, got [%d,%d]", lo, hi)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = lo + rng.Int63n(hi-lo+1)
	}
	return New(fmt.Sprintf("uniform(n=%d)", n), counts)
}

// Gauss generates n counts shaped like a (discretized, truncated) Gaussian
// bump centred mid-domain with the given peak height and relative width
// sigma (as a fraction of n). Counts are randomly rounded.
func Gauss(n int, peak float64, sigma float64, seed int64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: Gauss n must be positive, got %d", n)
	}
	if peak < 0 || sigma <= 0 {
		return nil, fmt.Errorf("dataset: Gauss needs peak >= 0 and sigma > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	mu := float64(n-1) / 2
	s := sigma * float64(n)
	for i := range counts {
		z := (float64(i) - mu) / s
		counts[i] = RandomRound(peak*math.Exp(-z*z/2), rng)
	}
	return New(fmt.Sprintf("gauss(n=%d)", n), counts)
}

// MultiModal overlays k Gaussian bumps at evenly spaced centres, a standard
// hard case for bucket-boundary placement.
func MultiModal(n, k int, peak float64, seed int64) (*Distribution, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("dataset: MultiModal needs positive n and k, got n=%d k=%d", n, k)
	}
	if peak < 0 {
		return nil, fmt.Errorf("dataset: MultiModal needs peak >= 0, got %g", peak)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	s := float64(n) / float64(4*k)
	if s < 1 {
		s = 1
	}
	for i := range counts {
		var v float64
		for m := 0; m < k; m++ {
			mu := (float64(m) + 0.5) * float64(n) / float64(k)
			z := (float64(i) - mu) / s
			v += peak * math.Exp(-z*z/2)
		}
		counts[i] = RandomRound(v, rng)
	}
	return New(fmt.Sprintf("multimodal(n=%d,k=%d)", n, k), counts)
}

// Cusp generates the "cusp" distribution common in histogram papers: counts
// increase linearly to the middle of the domain and decrease after it, with
// multiplicative noise.
func Cusp(n int, peak float64, noise float64, seed int64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: Cusp n must be positive, got %d", n)
	}
	if peak < 0 || noise < 0 {
		return nil, fmt.Errorf("dataset: Cusp needs peak >= 0 and noise >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	mid := float64(n-1) / 2
	for i := range counts {
		frac := 1 - math.Abs(float64(i)-mid)/math.Max(mid, 1)
		v := peak * frac * (1 + noise*(rng.Float64()*2-1))
		if v < 0 {
			v = 0
		}
		counts[i] = RandomRound(v, rng)
	}
	return New(fmt.Sprintf("cusp(n=%d)", n), counts)
}

// SelfSimilar generates an 80/20-style self-similar distribution (the
// classic b-model): recursively, a fraction h of the mass lands in the
// first half of each interval. n is rounded up to a power of two and the
// result truncated back to n.
func SelfSimilar(n int, total int64, h float64, seed int64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: SelfSimilar n must be positive, got %d", n)
	}
	if total < 0 || h <= 0 || h >= 1 {
		return nil, fmt.Errorf("dataset: SelfSimilar needs total >= 0 and 0 < h < 1")
	}
	pow := 1
	for pow < n {
		pow *= 2
	}
	rng := rand.New(rand.NewSource(seed))
	mass := make([]float64, pow)
	mass[0] = float64(total)
	for width := pow; width > 1; width /= 2 {
		for start := 0; start < pow; start += width {
			m := mass[start]
			mass[start] = m * h
			mass[start+width/2] = m * (1 - h)
		}
	}
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = RandomRound(mass[i], rng)
	}
	return New(fmt.Sprintf("selfsimilar(n=%d,h=%.2g)", n, h), counts)
}

// Spikes generates a mostly-zero domain with k uniformly placed spikes of
// the given height — the worst case for averaging-based buckets.
func Spikes(n, k int, height int64, seed int64) (*Distribution, error) {
	if n <= 0 || k <= 0 || k > n {
		return nil, fmt.Errorf("dataset: Spikes needs 0 < k <= n, got n=%d k=%d", n, k)
	}
	if height < 0 {
		return nil, fmt.Errorf("dataset: Spikes height must be non-negative, got %d", height)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	perm := rng.Perm(n)
	for i := 0; i < k; i++ {
		counts[perm[i]] = height
	}
	return New(fmt.Sprintf("spikes(n=%d,k=%d)", n, k), counts)
}
