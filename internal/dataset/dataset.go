// Package dataset provides attribute-value distributions — the input to
// every synopsis in this repository — together with the synthetic
// generators used by the paper's experimental study and by the wider
// synopsis literature, and simple CSV/JSON persistence.
//
// A Distribution is the frequency vector of a single numeric attribute:
// element i holds the number of records whose attribute value equals i
// (after the usual discretization of the attribute domain). All counts are
// non-negative int64 values.
package dataset

import (
	"errors"
	"fmt"
	"math"
)

// Distribution is an attribute-value distribution: Counts[i] is the number
// of database records whose attribute value is i. Counts must be
// non-negative.
type Distribution struct {
	// Name identifies the dataset (used in reports and file headers).
	Name string
	// Counts holds the per-value frequencies.
	Counts []int64
}

// ErrEmpty is returned when a distribution has no values.
var ErrEmpty = errors.New("dataset: empty distribution")

// ErrNegative is returned when a distribution holds a negative count.
var ErrNegative = errors.New("dataset: negative count")

// New builds a distribution from counts, validating them.
func New(name string, counts []int64) (*Distribution, error) {
	d := &Distribution{Name: name, Counts: counts}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Validate checks the structural invariants of the distribution.
func (d *Distribution) Validate() error {
	if len(d.Counts) == 0 {
		return ErrEmpty
	}
	for i, c := range d.Counts {
		if c < 0 {
			return fmt.Errorf("%w: index %d holds %d", ErrNegative, i, c)
		}
	}
	return nil
}

// N returns the domain size (number of distinct attribute values).
func (d *Distribution) N() int { return len(d.Counts) }

// Total returns the total number of records, Σ Counts[i].
func (d *Distribution) Total() int64 {
	var t int64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// Max returns the largest frequency.
func (d *Distribution) Max() int64 {
	var m int64
	for _, c := range d.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Mean returns the average frequency.
func (d *Distribution) Mean() float64 {
	if len(d.Counts) == 0 {
		return 0
	}
	return float64(d.Total()) / float64(len(d.Counts))
}

// Variance returns the population variance of the frequencies.
func (d *Distribution) Variance() float64 {
	n := len(d.Counts)
	if n == 0 {
		return 0
	}
	mean := d.Mean()
	var ss float64
	for _, c := range d.Counts {
		dev := float64(c) - mean
		ss += dev * dev
	}
	return ss / float64(n)
}

// Skew returns a crude skew indicator: max frequency over mean frequency.
// It is 1 for a perfectly uniform distribution and grows with skew.
func (d *Distribution) Skew() float64 {
	mean := d.Mean()
	if mean == 0 {
		return 0
	}
	return float64(d.Max()) / mean
}

// RangeSum returns s[a,b] = Σ_{a≤i≤b} Counts[i] computed directly.
// It is the exact answer every synopsis approximates. Panics if the range
// is invalid; use Clamp for user input.
func (d *Distribution) RangeSum(a, b int) int64 {
	if a < 0 || b >= len(d.Counts) || a > b {
		panic(fmt.Sprintf("dataset: invalid range [%d,%d] for n=%d", a, b, len(d.Counts)))
	}
	var s int64
	for i := a; i <= b; i++ {
		s += d.Counts[i]
	}
	return s
}

// Clamp restricts a query range to the domain and reports whether anything
// remains of it.
func (d *Distribution) Clamp(a, b int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= len(d.Counts) {
		b = len(d.Counts) - 1
	}
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}

// Clone returns a deep copy of the distribution.
func (d *Distribution) Clone() *Distribution {
	c := make([]int64, len(d.Counts))
	copy(c, d.Counts)
	return &Distribution{Name: d.Name, Counts: c}
}

// Floats returns the counts converted to float64, a convenience for the
// numeric layers (wavelets, regression moments).
func (d *Distribution) Floats() []float64 {
	f := make([]float64, len(d.Counts))
	for i, c := range d.Counts {
		f[i] = float64(c)
	}
	return f
}

// String implements fmt.Stringer with a short summary, not the raw counts.
func (d *Distribution) String() string {
	return fmt.Sprintf("%s{n=%d total=%d max=%d skew=%.2f}",
		d.Name, d.N(), d.Total(), d.Max(), d.Skew())
}

// checkFinite guards generator parameters.
func checkFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("dataset: parameter %s is not finite", name)
	}
	return nil
}

// FromValues builds a distribution from raw attribute values (one entry
// per record): the domain is [min, max] shifted to start at 0, and the
// returned offset maps a raw value v to index v−offset. Useful for
// ingesting a real column dump.
func FromValues(name string, values []int64) (*Distribution, int64, error) {
	if len(values) == 0 {
		return nil, 0, ErrEmpty
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo + 1
	const maxDomain = 1 << 26
	if span > maxDomain {
		return nil, 0, fmt.Errorf("dataset: value span %d exceeds the %d-value domain limit; bucket the values first", span, maxDomain)
	}
	counts := make([]int64, span)
	for _, v := range values {
		counts[v-lo]++
	}
	d, err := New(name, counts)
	if err != nil {
		return nil, 0, err
	}
	return d, lo, nil
}
