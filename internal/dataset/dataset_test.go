package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New("empty", nil); err == nil {
		t.Fatal("want error for empty counts")
	}
	if _, err := New("neg", []int64{1, -2, 3}); err == nil {
		t.Fatal("want error for negative count")
	}
	d, err := New("ok", []int64{1, 2, 3})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3", d.N())
	}
}

func TestStats(t *testing.T) {
	d, _ := New("d", []int64{2, 4, 6})
	if got := d.Total(); got != 12 {
		t.Errorf("Total = %d, want 12", got)
	}
	if got := d.Max(); got != 6 {
		t.Errorf("Max = %d, want 6", got)
	}
	if got := d.Mean(); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
	wantVar := ((2.0-4)*(2.0-4) + 0 + (6.0-4)*(6.0-4)) / 3
	if got := d.Variance(); math.Abs(got-wantVar) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, wantVar)
	}
	if got := d.Skew(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Skew = %g, want 1.5", got)
	}
}

func TestRangeSum(t *testing.T) {
	d, _ := New("d", []int64{1, 2, 3, 4, 5})
	cases := []struct {
		a, b int
		want int64
	}{
		{0, 4, 15}, {0, 0, 1}, {4, 4, 5}, {1, 3, 9},
	}
	for _, c := range cases {
		if got := d.RangeSum(c.a, c.b); got != c.want {
			t.Errorf("RangeSum(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRangeSumPanicsOnBadRange(t *testing.T) {
	d, _ := New("d", []int64{1, 2, 3})
	for _, r := range [][2]int{{-1, 2}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RangeSum(%d,%d) did not panic", r[0], r[1])
				}
			}()
			d.RangeSum(r[0], r[1])
		}()
	}
}

func TestClamp(t *testing.T) {
	d, _ := New("d", []int64{1, 2, 3})
	a, b, ok := d.Clamp(-5, 10)
	if !ok || a != 0 || b != 2 {
		t.Errorf("Clamp(-5,10) = (%d,%d,%v), want (0,2,true)", a, b, ok)
	}
	if _, _, ok := d.Clamp(5, 7); ok {
		t.Error("Clamp(5,7) should report empty")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d, _ := New("d", []int64{1, 2, 3})
	c := d.Clone()
	c.Counts[0] = 99
	if d.Counts[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestRandomRoundUnbiasedAndIntegral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Integral input returned unchanged.
	if got := RandomRound(5, rng); got != 5 {
		t.Fatalf("RandomRound(5) = %d", got)
	}
	// Fractional input rounds to a neighbour, roughly evenly.
	const trials = 20000
	var up int
	for i := 0; i < trials; i++ {
		v := RandomRound(2.5, rng)
		if v != 2 && v != 3 {
			t.Fatalf("RandomRound(2.5) = %d, want 2 or 3", v)
		}
		if v == 3 {
			up++
		}
	}
	frac := float64(up) / trials
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("up fraction %.3f, want near 0.5", frac)
	}
}

func TestRandomRoundNeverNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1e6))
		return RandomRound(x, rng) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfPaperDataset(t *testing.T) {
	d, err := Zipf(DefaultPaper())
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 127 {
		t.Fatalf("N = %d, want 127", d.N())
	}
	if d.Counts[0] != 1000 {
		t.Errorf("head count = %d, want 1000 (MaxCount is integral)", d.Counts[0])
	}
	// Zipf ranked output decays: the head dominates the tail.
	if d.Counts[0] <= d.Counts[126]*10 {
		t.Errorf("no visible decay: head=%d tail=%d", d.Counts[0], d.Counts[126])
	}
	// Deterministic under the same seed.
	d2, _ := Zipf(DefaultPaper())
	for i := range d.Counts {
		if d.Counts[i] != d2.Counts[i] {
			t.Fatalf("not deterministic at %d: %d vs %d", i, d.Counts[i], d2.Counts[i])
		}
	}
}

func TestZipfPermute(t *testing.T) {
	cfg := DefaultPaper()
	cfg.Permute = true
	d, err := Zipf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _ := Zipf(DefaultPaper())
	if d.Total() != ranked.Total() {
		t.Errorf("permutation changed total: %d vs %d", d.Total(), ranked.Total())
	}
}

func TestZipfRejectsBadConfig(t *testing.T) {
	bad := []ZipfConfig{
		{N: 0, Alpha: 1.8, MaxCount: 10},
		{N: 5, Alpha: math.NaN(), MaxCount: 10},
		{N: 5, Alpha: 1.8, MaxCount: -1},
		{N: 5, Alpha: 1.8, MaxCount: math.Inf(1)},
	}
	for _, cfg := range bad {
		if _, err := Zipf(cfg); err == nil {
			t.Errorf("Zipf(%+v) should fail", cfg)
		}
	}
}

func TestGenerators(t *testing.T) {
	gens := map[string]func() (*Distribution, error){
		"uniform":     func() (*Distribution, error) { return Uniform(50, 0, 100, 1) },
		"gauss":       func() (*Distribution, error) { return Gauss(50, 200, 0.1, 1) },
		"multimodal":  func() (*Distribution, error) { return MultiModal(60, 3, 100, 1) },
		"cusp":        func() (*Distribution, error) { return Cusp(50, 100, 0.2, 1) },
		"selfsimilar": func() (*Distribution, error) { return SelfSimilar(50, 10000, 0.8, 1) },
		"spikes":      func() (*Distribution, error) { return Spikes(50, 5, 500, 1) },
	}
	for name, gen := range gens {
		d, err := gen()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid output: %v", name, err)
		}
		if d.Total() == 0 {
			t.Errorf("%s: generated an all-zero dataset", name)
		}
	}
}

func TestGeneratorsRejectBadParams(t *testing.T) {
	if _, err := Uniform(0, 0, 10, 1); err == nil {
		t.Error("Uniform n=0 should fail")
	}
	if _, err := Uniform(5, 10, 2, 1); err == nil {
		t.Error("Uniform hi<lo should fail")
	}
	if _, err := Gauss(5, -1, 0.1, 1); err == nil {
		t.Error("Gauss peak<0 should fail")
	}
	if _, err := MultiModal(5, 0, 10, 1); err == nil {
		t.Error("MultiModal k=0 should fail")
	}
	if _, err := Cusp(-1, 10, 0, 1); err == nil {
		t.Error("Cusp n<0 should fail")
	}
	if _, err := SelfSimilar(5, 100, 1.5, 1); err == nil {
		t.Error("SelfSimilar h>1 should fail")
	}
	if _, err := Spikes(5, 9, 10, 1); err == nil {
		t.Error("Spikes k>n should fail")
	}
}

func TestGaussIsPeakedInTheMiddle(t *testing.T) {
	d, err := Gauss(101, 1000, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	mid := d.Counts[50]
	if mid < d.Counts[0] || mid < d.Counts[100] {
		t.Errorf("Gauss not peaked: mid=%d edges=%d,%d", mid, d.Counts[0], d.Counts[100])
	}
}

func TestSelfSimilarSkew(t *testing.T) {
	d, err := SelfSimilar(64, 100000, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	// With h=0.9 almost all mass sits at index 0.
	if d.Counts[0] < d.Total()/2 {
		t.Errorf("SelfSimilar(h=0.9) head=%d of total=%d, want majority", d.Counts[0], d.Total())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d, _ := Zipf(ZipfConfig{N: 20, Alpha: 1.5, MaxCount: 100, Seed: 3})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name {
		t.Errorf("name = %q, want %q", got.Name, d.Name)
	}
	if len(got.Counts) != len(d.Counts) {
		t.Fatalf("len = %d, want %d", len(got.Counts), len(d.Counts))
	}
	for i := range d.Counts {
		if got.Counts[i] != d.Counts[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, got.Counts[i], d.Counts[i])
		}
	}
}

func TestReadCSVBareCounts(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("3\n1\n4\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 1, 4}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d", i, d.Counts[i], w)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0,1\n2,5\n", // index gap
		"a,1\n",      // bad index
		"0,x\n",      // bad count
		"0,1,2,3\n",  // too many fields
		"0,-4\n",     // negative count caught by validation
		"",           // empty
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d, _ := New("jt", []int64{5, 0, 7})
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "jt" || got.N() != 3 || got.Counts[2] != 7 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","counts":[-1]}`)); err == nil {
		t.Error("negative count should fail validation")
	}
	if _, err := ReadJSON(strings.NewReader(`{broken`)); err == nil {
		t.Error("malformed JSON should fail")
	}
}

func TestStringSummary(t *testing.T) {
	d, _ := New("demo", []int64{1, 3})
	s := d.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "n=2") {
		t.Errorf("String() = %q", s)
	}
}

func TestFromValues(t *testing.T) {
	d, offset, err := FromValues("raw", []int64{10, 12, 10, 15, 12, 10})
	if err != nil {
		t.Fatal(err)
	}
	if offset != 10 {
		t.Errorf("offset = %d, want 10", offset)
	}
	if d.N() != 6 { // domain 10..15
		t.Fatalf("N = %d, want 6", d.N())
	}
	want := []int64{3, 0, 2, 0, 0, 1}
	for i, w := range want {
		if d.Counts[i] != w {
			t.Fatalf("counts[%d] = %d, want %d", i, d.Counts[i], w)
		}
	}
	if _, _, err := FromValues("empty", nil); err == nil {
		t.Error("empty values accepted")
	}
	if _, _, err := FromValues("huge", []int64{0, 1 << 40}); err == nil {
		t.Error("huge span accepted")
	}
	// Negative raw values are fine — the offset shifts them.
	d2, off2, err := FromValues("neg", []int64{-5, -3, -5})
	if err != nil {
		t.Fatal(err)
	}
	if off2 != -5 || d2.Counts[0] != 2 || d2.Counts[2] != 1 {
		t.Errorf("negative handling: off=%d counts=%v", off2, d2.Counts)
	}
}

func TestReadValues(t *testing.T) {
	in := "# header\n5\n\n7\n5\n"
	d, off, err := ReadValues("raw", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if off != 5 || d.N() != 3 || d.Counts[0] != 2 || d.Counts[2] != 1 {
		t.Errorf("parsed: off=%d counts=%v", off, d.Counts)
	}
	if _, _, err := ReadValues("bad", strings.NewReader("5\nxyz\n")); err == nil {
		t.Error("bad line accepted")
	}
	if _, _, err := ReadValues("empty", strings.NewReader("# only comments\n")); err == nil {
		t.Error("no values accepted")
	}
}
