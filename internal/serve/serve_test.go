package serve

import (
	"sync"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
)

func testSpecs() []engine.SynopsisSpec {
	return []engine.SynopsisSpec{
		{Name: "h", Metric: engine.Count, Options: build.Options{Method: build.EquiWidth, BudgetWords: 16}},
		{Name: "s", Metric: engine.Sum, Options: build.Options{Method: build.SAP0, BudgetWords: 24}},
	}
}

func newTestServer(t *testing.T, domain int, cfg Config) (*engine.Engine, *Server) {
	t.Helper()
	eng, err := engine.New("test", domain)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, testSpecs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return eng, s
}

func TestSnapshotExactAndApprox(t *testing.T) {
	eng, s := newTestServer(t, 64, Config{})
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i % 5)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if got, want := snap.ExactCount(0, 63), eng.ExactCount(0, 63); got != want {
		t.Fatalf("ExactCount = %d, want %d", got, want)
	}
	if got, want := snap.ExactSum(3, 40), eng.ExactSum(3, 40); got != want {
		t.Fatalf("ExactSum = %d, want %d", got, want)
	}
	// Clamping matches the engine: outside ranges count zero.
	if got := snap.ExactCount(80, 90); got != 0 {
		t.Fatalf("outside range = %d, want 0", got)
	}
	if _, err := snap.Approx("h", 0, 63); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Approx("nope", 0, 1); err == nil {
		t.Fatal("unknown synopsis accepted")
	}
	if got := snap.Names(); len(got) != 2 || got[0] != "h" || got[1] != "s" {
		t.Fatalf("Names = %v", got)
	}
}

func TestQueryBatchMatchesSingleQueries(t *testing.T) {
	eng, s := newTestServer(t, 128, Config{FanOut: 8})
	counts := make([]int64, 128)
	for i := range counts {
		counts[i] = int64((i * 7) % 11)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	var qs []Query
	for a := 0; a < 128; a += 3 {
		qs = append(qs,
			Query{A: a, B: a + 17, Metric: engine.Count},
			Query{A: a, B: a + 17, Metric: engine.Sum},
			Query{Synopsis: "h", A: a, B: a + 17},
		)
	}
	results, version := s.QueryBatch(qs)
	if version != s.Snapshot().Version {
		t.Fatalf("batch version %d, snapshot version %d", version, s.Snapshot().Version)
	}
	for i, q := range qs {
		want, err := s.Query(q)
		if err != nil || results[i].Err != nil {
			t.Fatalf("query %d: errors %v / %v", i, err, results[i].Err)
		}
		if results[i].Value != want {
			t.Fatalf("query %d: batch %g, single %g", i, results[i].Value, want)
		}
	}
	// Unknown synopsis fails per-query, not the batch.
	results, _ = s.QueryBatch([]Query{{Synopsis: "nope", A: 0, B: 1}, {A: 0, B: 1}})
	if results[0].Err == nil || results[1].Err != nil {
		t.Fatalf("per-query errors wrong: %v / %v", results[0].Err, results[1].Err)
	}
}

func TestDebouncedRebuildConverges(t *testing.T) {
	eng, s := newTestServer(t, 32, Config{Debounce: 5 * time.Millisecond, MaxLag: 50 * time.Millisecond})
	before := s.Snapshot().Version
	if err := s.Insert(7, 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Version == before {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never caught up past version %d", before)
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := s.Snapshot().ExactCount(7, 7), eng.ExactCount(7, 7); got != want {
		t.Fatalf("after rebuild ExactCount = %d, want %d", got, want)
	}
}

func TestMaxLagBoundsStalenessUnderSustainedWrites(t *testing.T) {
	_, s := newTestServer(t, 32, Config{Debounce: 20 * time.Millisecond, MaxLag: 60 * time.Millisecond})
	before := s.Rebuilds()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Insert(1, 1) // keeps resetting the quiet period
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Rebuilds() == before {
		t.Fatal("sustained writes starved the rebuild past MaxLag")
	}
}

func TestAddDropSynopsis(t *testing.T) {
	eng, s := newTestServer(t, 32, Config{})
	if err := eng.Load(make([]int64, 32)); err != nil {
		t.Fatal(err)
	}
	err := s.AddSynopsis(engine.SynopsisSpec{
		Name: "w", Metric: engine.Count,
		Options: build.Options{Method: build.WaveTopBB, BudgetWords: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot().Approx("w", 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSynopsis(testSpecs()[0]); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if !s.DropSynopsis("w") {
		t.Fatal("drop of existing synopsis reported false")
	}
	if _, err := s.Snapshot().Approx("w", 0, 5); err == nil {
		t.Fatal("dropped synopsis still served")
	}
	if s.DropSynopsis("w") {
		t.Fatal("double drop reported true")
	}
}

func TestRebuildFailureKeepsOldSnapshot(t *testing.T) {
	_, s := newTestServer(t, 32, Config{})
	good := s.Snapshot()
	// A bad spec (zero budget on a budgeted method) must fail the rebuild
	// without unpublishing the good snapshot, and must be rolled back.
	err := s.AddSynopsis(engine.SynopsisSpec{
		Name: "bad", Metric: engine.Count,
		Options: build.Options{Method: build.VOptimal},
	})
	if err == nil {
		t.Fatal("zero-budget spec accepted")
	}
	if s.Snapshot() != good {
		t.Fatal("failed rebuild replaced the snapshot")
	}
	if err := s.Rebuild(); err != nil {
		t.Fatalf("rebuild after rollback: %v", err)
	}
	if s.LastError() != nil {
		t.Fatalf("LastError not cleared: %v", s.LastError())
	}
}

func TestNewRejectsBadSpec(t *testing.T) {
	eng, err := engine.New("test", 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, []engine.SynopsisSpec{{Name: "bad", Options: build.Options{Method: build.VOptimal}}}, Config{}); err == nil {
		t.Fatal("invalid initial spec accepted")
	}
}

// TestSnapshotNeverTornUnderConcurrentRebuilds is the serving layer's core
// invariant: a batch issued during a storm of mutations and rebuilds
// answers entirely from one snapshot. With every count equal to k at
// version k, any mixed state is detectable from the answers alone.
func TestSnapshotNeverTornUnderConcurrentRebuilds(t *testing.T) {
	const domain = 64
	_, s := newTestServer(t, domain, Config{Debounce: time.Millisecond, MaxLag: 5 * time.Millisecond})
	ones := make([]int64, domain)
	for i := range ones {
		ones[i] = 1
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Load(ones); err != nil {
					t.Error(err)
					return
				}
				_ = s.Rebuild()
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			qs := make([]Query, 0, 32)
			for a := 0; a < domain; a += 4 {
				qs = append(qs, Query{A: a, B: a + 3, Metric: engine.Count})
			}
			for i := 0; i < 300; i++ {
				results, _ := s.QueryBatch(qs)
				k := results[0].Value / 4 // counts are uniform: s[a,a+3] = 4k
				for j, res := range results {
					if res.Err != nil {
						t.Error(res.Err)
						return
					}
					if res.Value != 4*k {
						t.Errorf("torn batch: query %d saw %g, batch started at k=%g", j, res.Value, k)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestMergeSynopsisSurvivesRebuild(t *testing.T) {
	eng, s := newTestServer(t, 64, Config{})
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(3 + i%11)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	local, err := s.Snapshot().Synopsis("h")
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := make([]int64, 64)
	for i := range shardCounts {
		shardCounts[i] = int64(40 - i%7)
	}
	shard, err := build.Build(shardCounts, build.Options{Method: build.EquiDepth, BudgetWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MergeSynopsis("h", shard); err != nil {
		t.Fatal(err)
	}
	want := local.Est.Estimate(5, 40) + shard.Estimate(5, 40)
	got, err := s.Snapshot().Approx("h", 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged answer %g, want local+shard %g", got, want)
	}
	// The shard contribution survives a full rebuild: the fresh local
	// synopsis is re-merged with the accepted shard estimator.
	if err := eng.Insert(7, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	fresh, err := s.Snapshot().Synopsis("h")
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Est.StorageWords() <= local.Est.StorageWords() {
		t.Errorf("rebuilt synopsis has %d words; expected the shard's boundary union to add buckets over %d",
			fresh.Est.StorageWords(), local.Est.StorageWords())
	}
	after, err := s.Snapshot().Approx("h", 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if after <= got-1e-9 {
		t.Errorf("post-rebuild answer %g lost the shard contribution (%g before, +100 inserted)", after, got)
	}

	// Capability and validation errors.
	if err := s.MergeSynopsis("s", shard); err == nil {
		t.Error("merge into SAP0 accepted; want a capability error")
	}
	if err := s.MergeSynopsis("nope", shard); err == nil {
		t.Error("merge into unknown synopsis accepted")
	}
	small, err := build.Build([]int64{1, 2, 3}, build.Options{Method: build.EquiWidth, BudgetWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.MergeSynopsis("h", small); err == nil {
		t.Error("domain-mismatched shard accepted")
	}
	// Dropping the synopsis clears its shard inbox.
	if !s.DropSynopsis("h") {
		t.Fatal("DropSynopsis(h) = false")
	}
	s.shardMu.RLock()
	pending := len(s.shards["h"])
	s.shardMu.RUnlock()
	if pending != 0 {
		t.Errorf("%d shard estimators survived DropSynopsis", pending)
	}
}
