package serve

import (
	"sort"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/method"
	"rangeagg/internal/plan"
	"rangeagg/internal/prefix"
)

// Synopsis is one published estimator inside a snapshot.
type Synopsis struct {
	// Name is the registration name.
	Name string
	// Metric the synopsis answers.
	Metric engine.Metric
	// Options used to build it.
	Options build.Options
	// Est is the immutable estimator.
	Est build.Estimator
	// ErrModel is the per-range error model built against the snapshot's
	// data, or nil when the method has none or the synopsis folds remote
	// shards (whose records the local error model cannot see).
	ErrModel method.ErrorModel
}

// Snapshot is one immutable, internally consistent view of a column: the
// exact prefix tables and every published synopsis, all derived from the
// same data version. Queries read a snapshot through an atomic pointer and
// never see state from two versions at once; rebuilds construct a fresh
// snapshot off the hot path and swap it in whole.
type Snapshot struct {
	// Version is the engine data version the snapshot was built from.
	Version int64
	// Domain is the attribute domain size.
	Domain int
	// Records is the total number of records at Version.
	Records int64

	count *prefix.Table // exact COUNT path
	sum   *prefix.Table // exact SUM path
	syns  map[string]*Synopsis

	// epoch is the publish sequence number keying the planner cache. It
	// is NOT Version: shard merges and spec changes publish new snapshots
	// (new estimators, same engine data), so the data version alone would
	// let cached answers leak across them.
	epoch int64
	// views are the planner's per-metric pictures of the snapshot
	// (indexed by engine.Count/engine.Sum), built once at publish time.
	views [2]*plan.View
}

// ExactCount answers COUNT(*) WHERE a ≤ attr ≤ b from the snapshot. The
// range is clamped to the domain; a fully-outside range counts zero.
func (s *Snapshot) ExactCount(a, b int) int64 { return s.exact(engine.Count, a, b) }

// ExactSum answers SUM(attr) WHERE a ≤ attr ≤ b from the snapshot.
func (s *Snapshot) ExactSum(a, b int) int64 { return s.exact(engine.Sum, a, b) }

func (s *Snapshot) exact(m engine.Metric, a, b int) int64 {
	a, b, ok := clamp(a, b, s.Domain)
	if !ok {
		return 0
	}
	if m == engine.Sum {
		return s.sum.Sum(a, b)
	}
	return s.count.Sum(a, b)
}

// Approx answers a range aggregate from a named synopsis in the snapshot;
// the range is clamped to the domain.
func (s *Snapshot) Approx(name string, a, b int) (float64, error) {
	syn, ok := s.syns[name]
	if !ok {
		return 0, &engine.UnknownSynopsisError{Scope: "serve", Name: name}
	}
	a, b, ok2 := clamp(a, b, s.Domain)
	if !ok2 {
		return 0, nil
	}
	return syn.Est.Estimate(a, b), nil
}

// Synopsis returns a published synopsis by name.
func (s *Snapshot) Synopsis(name string) (*Synopsis, error) {
	syn, ok := s.syns[name]
	if !ok {
		return nil, &engine.UnknownSynopsisError{Scope: "serve", Name: name}
	}
	return syn, nil
}

// View returns the planner's picture of one metric at this snapshot:
// every synopsis of the metric as a probe source (cheapest-first) plus
// the exact prefix table as the fallback.
func (s *Snapshot) View(m engine.Metric) *plan.View {
	return s.views[m]
}

// buildViews derives the per-metric planner views; called once by
// Rebuild after the prefix tables and synopses are in place.
func (s *Snapshot) buildViews() {
	for _, m := range [2]engine.Metric{engine.Count, engine.Sum} {
		tab := s.count
		if m == engine.Sum {
			tab = s.sum
		}
		v := &plan.View{
			Version: s.epoch,
			Metric:  m.String(),
			Domain:  s.Domain,
			Exact:   func(a, b int) float64 { return float64(tab.Sum(a, b)) },
		}
		for _, syn := range s.syns {
			if syn.Metric != m {
				continue
			}
			em := syn.ErrModel
			v.Sources = append(v.Sources, plan.Source{
				Name:     syn.Name,
				Words:    syn.Est.StorageWords(),
				Estimate: syn.Est.Estimate,
				Bound: func(a, b int) (float64, bool, bool) {
					if em == nil {
						return 0, false, false
					}
					return em.Bound(a, b), em.Rigorous(), true
				},
				NoModel: em == nil,
			})
		}
		plan.OrderSources(v.Sources)
		s.views[m] = v
	}
}

// Names lists the published synopsis names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.syns))
	for n := range s.syns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func clamp(a, b, domain int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= domain {
		b = domain - 1
	}
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}
