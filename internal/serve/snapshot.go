package serve

import (
	"fmt"
	"sort"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/prefix"
)

// Synopsis is one published estimator inside a snapshot.
type Synopsis struct {
	// Name is the registration name.
	Name string
	// Metric the synopsis answers.
	Metric engine.Metric
	// Options used to build it.
	Options build.Options
	// Est is the immutable estimator.
	Est build.Estimator
}

// Snapshot is one immutable, internally consistent view of a column: the
// exact prefix tables and every published synopsis, all derived from the
// same data version. Queries read a snapshot through an atomic pointer and
// never see state from two versions at once; rebuilds construct a fresh
// snapshot off the hot path and swap it in whole.
type Snapshot struct {
	// Version is the engine data version the snapshot was built from.
	Version int64
	// Domain is the attribute domain size.
	Domain int
	// Records is the total number of records at Version.
	Records int64

	count *prefix.Table // exact COUNT path
	sum   *prefix.Table // exact SUM path
	syns  map[string]*Synopsis
}

// ExactCount answers COUNT(*) WHERE a ≤ attr ≤ b from the snapshot. The
// range is clamped to the domain; a fully-outside range counts zero.
func (s *Snapshot) ExactCount(a, b int) int64 { return s.exact(engine.Count, a, b) }

// ExactSum answers SUM(attr) WHERE a ≤ attr ≤ b from the snapshot.
func (s *Snapshot) ExactSum(a, b int) int64 { return s.exact(engine.Sum, a, b) }

func (s *Snapshot) exact(m engine.Metric, a, b int) int64 {
	a, b, ok := clamp(a, b, s.Domain)
	if !ok {
		return 0
	}
	if m == engine.Sum {
		return s.sum.Sum(a, b)
	}
	return s.count.Sum(a, b)
}

// Approx answers a range aggregate from a named synopsis in the snapshot;
// the range is clamped to the domain.
func (s *Snapshot) Approx(name string, a, b int) (float64, error) {
	syn, ok := s.syns[name]
	if !ok {
		return 0, fmt.Errorf("serve: no synopsis named %q", name)
	}
	a, b, ok2 := clamp(a, b, s.Domain)
	if !ok2 {
		return 0, nil
	}
	return syn.Est.Estimate(a, b), nil
}

// Synopsis returns a published synopsis by name.
func (s *Snapshot) Synopsis(name string) (*Synopsis, error) {
	syn, ok := s.syns[name]
	if !ok {
		return nil, fmt.Errorf("serve: no synopsis named %q", name)
	}
	return syn, nil
}

// Names lists the published synopsis names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.syns))
	for n := range s.syns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func clamp(a, b, domain int) (int, int, bool) {
	if a < 0 {
		a = 0
	}
	if b >= domain {
		b = domain - 1
	}
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}
