package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/codec"
	"rangeagg/internal/engine"
	"rangeagg/internal/wal"
)

func newTestHandler(t *testing.T) (*Server, *Metrics, *httptest.Server) {
	t.Helper()
	eng, err := engine.New("http-test", 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i % 7)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	s, err := New(eng, testSpecs(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	ts := httptest.NewServer(NewHandler(s, m))
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, m, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHandlerHealthQueryBatch(t *testing.T) {
	s, _, ts := newTestHandler(t)

	health := getJSON(t, ts.URL+"/health", http.StatusOK)
	if health["status"] != "ok" || health["domain"].(float64) != 64 {
		t.Fatalf("health = %v", health)
	}

	// Exact single query.
	q := getJSON(t, ts.URL+"/query?a=0&b=63", http.StatusOK)
	if got, want := q["value"].(float64), float64(s.Snapshot().ExactCount(0, 63)); got != want {
		t.Fatalf("exact query = %g, want %g", got, want)
	}
	// SUM metric and synopsis path.
	getJSON(t, ts.URL+"/query?a=3&b=40&metric=SUM", http.StatusOK)
	getJSON(t, ts.URL+"/query?a=3&b=40&syn=h", http.StatusOK)
	// Errors.
	getJSON(t, ts.URL+"/query?a=3&b=40&syn=nope", http.StatusNotFound)
	getJSON(t, ts.URL+"/query?a=x&b=40", http.StatusBadRequest)
	getJSON(t, ts.URL+"/query?a=0&b=1&metric=MEDIAN", http.StatusBadRequest)

	// Batch answers match singles and report one version.
	ranges := [][2]int{{0, 5}, {10, 20}, {0, 63}, {-5, 100}}
	batch := postJSON(t, ts.URL+"/query/batch",
		map[string]any{"synopsis": "h", "ranges": ranges}, http.StatusOK)
	values := batch["values"].([]any)
	if len(values) != len(ranges) {
		t.Fatalf("batch returned %d values for %d ranges", len(values), len(ranges))
	}
	for i, rg := range ranges {
		single := getJSON(t, fmt.Sprintf("%s/query?a=%d&b=%d&syn=h", ts.URL, rg[0], rg[1]), http.StatusOK)
		if values[i].(float64) != single["value"].(float64) {
			t.Fatalf("range %v: batch %v, single %v", rg, values[i], single["value"])
		}
	}
	postJSON(t, ts.URL+"/query/batch", map[string]any{"synopsis": "nope", "ranges": ranges}, http.StatusNotFound)
	postJSON(t, ts.URL+"/query/batch", map[string]any{"metric": "MEDIAN", "ranges": ranges}, http.StatusBadRequest)
}

func TestHandlerIngestLoadRebuild(t *testing.T) {
	s, _, ts := newTestHandler(t)
	version := s.Snapshot().Version

	postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": 3, "count": 10}},
		"deletes": []map[string]any{{"value": 3, "count": 4}},
	}, http.StatusOK)
	postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": -1, "count": 10}},
	}, http.StatusBadRequest)

	counts := make([]int64, 64)
	counts[5] = 99
	postJSON(t, ts.URL+"/load", map[string]any{"counts": counts}, http.StatusOK)
	postJSON(t, ts.URL+"/load", map[string]any{"counts": []int64{1}}, http.StatusBadRequest)

	reb := postJSON(t, ts.URL+"/rebuild", nil, http.StatusOK)
	if int64(reb["version"].(float64)) <= version {
		t.Fatalf("rebuild did not advance the version: %v", reb)
	}
	// Load accumulates: value 5 had count 5 (5 % 7) before the bulk load.
	q := getJSON(t, ts.URL+"/query?a=5&b=5", http.StatusOK)
	if q["value"].(float64) != 104 {
		t.Fatalf("loaded data not served: %v", q)
	}
}

func TestHandlerSynopsisExportRoundTrips(t *testing.T) {
	s, _, ts := newTestHandler(t)
	resp, err := http.Get(ts.URL + "/synopsis?name=h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	est, err := codec.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	want, _ := snap.Approx("h", 3, 40)
	if got := est.Estimate(3, 40); got != want {
		t.Fatalf("exported synopsis answers %g, server %g", got, want)
	}
	getJSON(t, ts.URL+"/synopsis?name=nope", http.StatusNotFound)
}

func TestHandlerMetricsAndMethodChecks(t *testing.T) {
	_, _, ts := newTestHandler(t)
	getJSON(t, ts.URL+"/health", http.StatusOK)
	getJSON(t, ts.URL+"/query?a=0&b=1", http.StatusOK)
	getJSON(t, ts.URL+"/query?a=x&b=1", http.StatusBadRequest)
	// Wrong method is rejected and counted as an error.
	resp, err := http.Post(ts.URL+"/health", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /health status %d", resp.StatusCode)
	}

	stats := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	query := stats["query"].(map[string]any)
	if query["requests"].(float64) != 2 || query["errors"].(float64) != 1 {
		t.Fatalf("query stats = %v", query)
	}
	health := stats["health"].(map[string]any)
	if health["requests"].(float64) != 2 || health["errors"].(float64) != 1 {
		t.Fatalf("health stats = %v", health)
	}
}

func TestHandlerSynopsisMerge(t *testing.T) {
	s, _, ts := newTestHandler(t)
	before := getJSON(t, ts.URL+"/query?syn=h&a=5&b=40", http.StatusOK)["value"].(float64)

	shardCounts := make([]int64, 64)
	for i := range shardCounts {
		shardCounts[i] = int64(25 + i%4)
	}
	shard, err := build.Build(shardCounts, build.Options{Method: build.EquiDepth, BudgetWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := codec.Write(&wire, shard); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/synopsis/merge?name=h", "application/json", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}
	after := getJSON(t, ts.URL+"/query?syn=h&a=5&b=40", http.StatusOK)["value"].(float64)
	want := before + shard.Estimate(5, 40)
	if diff := after - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("post-merge answer %g, want %g", after, want)
	}
	// The merged synopsis stays exportable and the export includes the
	// shard contribution.
	exp, err := http.Get(ts.URL + "/synopsis?name=h")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Body.Close()
	if exp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", exp.StatusCode)
	}
	est, err := codec.Read(exp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(5, 40); got-after > 1e-9 || after-got > 1e-9 {
		t.Fatalf("exported estimate %g, served %g", got, after)
	}
	// A merge into a non-mergeable synopsis is refused with 409.
	wire.Reset()
	if err := codec.Write(&wire, shard); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/synopsis/merge?name=s", "application/json", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("SAP0 merge status %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	// A garbage body is a 400.
	resp, err = http.Post(ts.URL+"/synopsis/merge?name=h", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage merge status %d, want %d", resp.StatusCode, http.StatusBadRequest)
	}
	_ = s
}

// TestHandlerDurabilityMetrics runs the handler over a WAL-backed server
// and checks the /metrics durability block: gauges appear, count the
// logged mutations, and a recovered server reports its replay (and
// re-seeds accepted shard merges from the log).
func TestHandlerDurabilityMetrics(t *testing.T) {
	dir := t.TempDir()
	db, rec, err := wal.Open(dir, wal.Options{Domain: 64})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db.Engine(), testSpecs(), Config{WAL: db})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	ts := httptest.NewServer(NewHandler(s, m))

	postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": 3, "count": 5}, {"value": 40, "count": 2}},
	}, http.StatusOK)
	counts := make([]int64, 64)
	counts[10] = 7
	postJSON(t, ts.URL+"/load", map[string]any{"counts": counts}, http.StatusOK)

	// An accepted shard merge is logged before it is acknowledged.
	shardCounts := make([]int64, 64)
	for i := range shardCounts {
		shardCounts[i] = int64(1 + i%3)
	}
	shard, err := build.Build(shardCounts, build.Options{Method: build.EquiWidth, BudgetWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := codec.Write(&wire, shard); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/synopsis/merge?name=h", "application/json", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}

	stats := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	dur, ok := stats["durability"].(map[string]any)
	if !ok {
		t.Fatalf("no durability block in /metrics: %v", stats)
	}
	if got := dur["wal_appends"].(float64); got != 4 { // 2 inserts + load + merge
		t.Fatalf("wal_appends = %v, want 4", got)
	}
	if dur["wal_bytes"].(float64) <= 0 {
		t.Fatalf("wal_bytes = %v, want > 0", dur["wal_bytes"])
	}
	if got := dur["replayed_records"].(float64); got != 0 {
		t.Fatalf("replayed_records = %v on a fresh dir", got)
	}
	if _, ok := dur["last_checkpoint_age_s"]; !ok {
		t.Fatal("no last_checkpoint_age_s gauge")
	}
	mergedAnswer := getJSON(t, ts.URL+"/query?syn=h&a=0&b=63", http.StatusOK)["value"].(float64)

	ts.Close()
	s.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: the replay count surfaces in the gauges and the accepted
	// shard merge is re-seeded into the rebuilt synopsis.
	db2, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if len(rec.Shards) != 1 {
		t.Fatalf("recovered %d shard merges, want 1", len(rec.Shards))
	}
	s2, err := New(db2.Engine(), testSpecs(), Config{WAL: db2, RecoveredShards: rec.Shards})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewHandler(s2, NewMetrics()))
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	stats = getJSON(t, ts2.URL+"/metrics", http.StatusOK)
	dur = stats["durability"].(map[string]any)
	if got := dur["replayed_records"].(float64); got != 4 {
		t.Fatalf("replayed_records = %v after restart, want 4", got)
	}
	got := getJSON(t, ts2.URL+"/query?syn=h&a=0&b=63", http.StatusOK)["value"].(float64)
	if got-mergedAnswer > 1e-9 || mergedAnswer-got > 1e-9 {
		t.Fatalf("recovered merged answer %g, pre-restart %g", got, mergedAnswer)
	}
	// A plain (non-durable) server exposes no durability block.
	_, _, plain := newTestHandler(t)
	if _, ok := getJSON(t, plain.URL+"/metrics", http.StatusOK)["durability"]; ok {
		t.Fatal("non-durable server reports durability gauges")
	}
}

// TestHandlerObservabilityEndpoints drives a build→checkpoint→query
// cycle against a WAL-backed server and checks the three observability
// surfaces: /metrics latency quantiles, /metrics.prom Prometheus text,
// and /trace span coverage.
func TestHandlerObservabilityEndpoints(t *testing.T) {
	dir := t.TempDir()
	db, _, err := wal.Open(dir, wal.Options{Domain: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s, err := New(db.Engine(), testSpecs(), Config{WAL: db})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	ts := httptest.NewServer(NewHandler(s, m))
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Build (rebuild), checkpoint, and query so spans and histograms of
	// every layer exist.
	postJSON(t, ts.URL+"/ingest", map[string]any{
		"inserts": []map[string]any{{"value": 3, "count": 5}},
	}, http.StatusOK)
	postJSON(t, ts.URL+"/rebuild", nil, http.StatusOK)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		getJSON(t, ts.URL+"/query?a=0&b=10", http.StatusOK)
	}
	postJSON(t, ts.URL+"/query/batch",
		map[string]any{"ranges": [][2]int{{0, 5}, {6, 20}}}, http.StatusOK)

	// /metrics JSON: endpoint stats now carry latency quantiles, and the
	// per-method build block reports the synopsis constructions.
	stats := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	query := stats["query"].(map[string]any)
	for _, k := range []string{"p50_ms", "p95_ms", "p99_ms", "max_ms", "mean_ms"} {
		if _, ok := query[k].(float64); !ok {
			t.Fatalf("query stats missing %s: %v", k, query)
		}
	}
	if query["p50_ms"].(float64) > query["p99_ms"].(float64) {
		t.Fatalf("p50 > p99: %v", query)
	}
	builds, ok := stats["builds"].(map[string]any)
	if !ok || len(builds) == 0 {
		t.Fatalf("no builds block in /metrics: %v", stats)
	}

	// /metrics.prom: Prometheus text with per-endpoint latency histogram
	// series and the process-wide build-phase and WAL series.
	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	prom := string(raw)
	for _, want := range []string{
		"# TYPE rangeagg_http_request_seconds histogram",
		`rangeagg_http_request_seconds_bucket{endpoint="query",le="+Inf"}`,
		`rangeagg_http_requests_total{endpoint="query"} 5`,
		"# TYPE rangeagg_build_seconds histogram",
		"rangeagg_build_phase_seconds_bucket",
		"rangeagg_wal_append_seconds_count",
		"rangeagg_serve_rebuild_seconds_count",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics.prom missing %q", want)
		}
	}

	// /trace: recent spans cover the whole build→checkpoint→query cycle
	// (plus the WAL recovery from opening the data dir).
	trace := getJSON(t, ts.URL+"/trace", http.StatusOK)
	spans, ok := trace["spans"].([]any)
	if !ok {
		t.Fatalf("no spans in /trace: %v", trace)
	}
	seen := map[string]bool{}
	for _, sp := range spans {
		seen[sp.(map[string]any)["name"].(string)] = true
	}
	for _, want := range []string{"serve.rebuild", "wal.recover", "wal.checkpoint", "serve.query_batch"} {
		if !seen[want] {
			t.Errorf("/trace missing span %q (saw %v)", want, seen)
		}
	}
	if _, ok := trace["slow_ops"]; !ok {
		t.Error("/trace missing slow_ops")
	}
}
