package serve

import (
	"math"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/ingest"
	"rangeagg/internal/plan"
)

func incrementalCfg() Config {
	return Config{
		Debounce: time.Hour, // rebuilds only when the tests call Rebuild
		Ingest:   ingest.Config{Mode: ingest.ModeIncremental, ReoptEvery: -1, DriftThreshold: 1e18},
	}
}

func newIngestServer(t *testing.T, domain int, cfg Config) (*engine.Engine, *Server) {
	t.Helper()
	eng, err := engine.New("test", domain)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, domain)
	for i := range counts {
		counts[i] = int64(i%11 + 1)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "flat", Metric: engine.Count, Options: build.Options{Method: build.A0, BudgetWords: 24}},
		{Name: "seg", Metric: engine.Count, Options: build.Options{Method: build.Segmented, BudgetWords: 48, Segments: 4}},
	}
	s, err := New(eng, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return eng, s
}

// TestServeIncrementalMaintains pins the serving-layer ladder: confined
// inserts are absorbed (not rebuilt), the maintenance counters advance,
// and every published answer stays inside its rigorous bound.
func TestServeIncrementalMaintains(t *testing.T) {
	_, s := newIngestServer(t, 256, incrementalCfg())
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 8; batch++ {
		v := 10 + batch*7
		if err := s.Insert(v, 50); err != nil {
			t.Fatal(err)
		}
		if err := s.Rebuild(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		snap := s.Snapshot()
		for _, name := range []string{"flat", "seg"} {
			syn, err := snap.Synopsis(name)
			if err != nil {
				t.Fatal(err)
			}
			if syn.ErrModel == nil {
				t.Fatalf("batch %d %s: maintained publish lost its error model", batch, name)
			}
			exact := float64(snap.ExactCount(0, 255))
			resid := math.Abs(syn.Est.Estimate(0, 255) - exact)
			if bound := syn.ErrModel.Bound(0, 255); resid > bound+1e-6 {
				t.Fatalf("batch %d %s: residual %g exceeds bound %g", batch, name, resid, bound)
			}
		}
	}
	st := s.IngestStats()
	// Two maintained synopses, eight confined batches each.
	if st.Absorbed != 16 || st.RebuildsAvoided != 16 || st.Escalated != 0 {
		t.Fatalf("ingest stats = %+v, want 16 absorbed, 16 avoided", st)
	}
}

// TestServeMaintainedPublishFreshCache pins planner-cache freshness
// across maintained publishes: a cached probe answer must not survive a
// publish that absorbed new data — the epoch bump invalidates it.
func TestServeMaintainedPublishFreshCache(t *testing.T) {
	_, s := newIngestServer(t, 256, incrementalCfg())
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	res, _ := s.QueryOne(Query{Synopsis: "flat", A: 20, B: 120})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	again, _ := s.QueryOne(Query{Synopsis: "flat", A: 20, B: 120})
	if again.Path != plan.PathCache {
		t.Fatalf("repeat before publish: path %v, want cache hit", again.Path)
	}

	// Mass lands inside the queried range; the publish is a maintained
	// absorb, not a rebuild — the cache must still be invalidated.
	if err := s.Insert(60, 10_000); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if st := s.IngestStats(); st.Absorbed == 0 {
		t.Fatalf("publish did not maintain: %+v", st)
	}
	after, _ := s.QueryOne(Query{Synopsis: "flat", A: 20, B: 120})
	if after.Err != nil {
		t.Fatal(after.Err)
	}
	if after.Path == plan.PathCache {
		t.Fatal("stale cache hit served across a maintained publish")
	}
	// The bucket holding value 60 may stretch past the query range, so
	// only part of the absorbed mass lands in the estimate — but the jump
	// must still dwarf the pre-insert answer.
	if math.Abs(after.Value-res.Value) < 1_000 {
		t.Fatalf("maintained publish not visible: %g vs %g before 10k inserts in range", after.Value, res.Value)
	}
	// And the exact path agrees with the engine post-publish.
	zero := 0.0
	exact, _ := s.QueryOne(Query{Synopsis: "flat", A: 20, B: 120, MaxErr: &zero})
	if exact.Value != float64(s.Snapshot().ExactCount(20, 120)) {
		t.Fatalf("exact path stale: %g", exact.Value)
	}
}

// TestServeLoadPartialWindow pins the satellite fix at the serving
// layer: a bulk /load whose mass is confined to a narrow window keeps
// the rebuild partial, so untouched segments are reused instead of
// re-run through the DP.
func TestServeLoadPartialWindow(t *testing.T) {
	// Rebuild-mode config: the segmented spec exercises the dirty-segment
	// path, which reports reuse through SegmentStats.
	eng, s := newIngestServer(t, 512, Config{Debounce: time.Hour})
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	before := s.SegmentStats()

	batch := make([]int64, 512)
	for v := 40; v <= 70; v++ {
		batch[v] = 25
	}
	if err := s.Load(batch); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	after := s.SegmentStats()
	if after.Reused <= before.Reused {
		t.Fatalf("confined bulk load reused no segments: before %+v after %+v", before, after)
	}
	if got, want := s.Snapshot().ExactCount(40, 70), eng.ExactCount(40, 70); got != want {
		t.Fatalf("post-load snapshot stale: %d vs %d", got, want)
	}

	// A load spanning the whole domain still goes full.
	wide := make([]int64, 512)
	wide[0], wide[511] = 1, 1
	if err := s.Load(wide); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
}

// TestServeEscalationRebuilds drives drift through the serving layer:
// when maintenance escalates, Rebuild falls back to the rebuild paths,
// counts the escalation, and keeps publishing covered answers.
func TestServeEscalationRebuilds(t *testing.T) {
	cfg := Config{
		Debounce: time.Hour,
		Ingest:   ingest.Config{Mode: ingest.ModeIncremental, ReoptEvery: -1, DriftThreshold: 1.1},
	}
	_, s := newIngestServer(t, 256, cfg)
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	mag := int64(1 << 8)
	for batch := 0; batch < 30; batch++ {
		if err := s.Insert((batch*53)%256, mag); err != nil {
			t.Fatal(err)
		}
		mag *= 2
		if err := s.Rebuild(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		snap := s.Snapshot()
		syn, err := snap.Synopsis("seg")
		if err != nil {
			t.Fatal(err)
		}
		exact := float64(snap.ExactCount(0, 255))
		resid := math.Abs(syn.Est.Estimate(0, 255) - exact)
		if bound := syn.ErrModel.Bound(0, 255); resid > bound+1e-6 {
			t.Fatalf("batch %d: residual %g exceeds bound %g", batch, resid, bound)
		}
	}
	st := s.IngestStats()
	if st.Escalated == 0 {
		t.Fatalf("drift ladder never escalated under exploding inserts: %+v", st)
	}
	if st.Repaired == 0 {
		t.Fatalf("ladder escalated without ever repairing: %+v", st)
	}
	if st.Absorbed+st.Reoptimized+st.Repaired != st.RebuildsAvoided {
		t.Fatalf("avoided-rebuild accounting off: %+v", st)
	}
}

// TestServeRebuildModeUnchanged pins that the default mode keeps the
// pre-ingest behaviour: no maintenance state, no counters.
func TestServeRebuildModeUnchanged(t *testing.T) {
	_, s := newIngestServer(t, 128, Config{Debounce: time.Hour})
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(5, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if st := s.IngestStats(); st != (IngestStats{}) {
		t.Fatalf("rebuild mode accrued ingest stats: %+v", st)
	}
}
