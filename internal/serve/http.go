package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rangeagg/internal/codec"
	"rangeagg/internal/engine"
	"rangeagg/internal/method"
)

// NewHandler exposes a Server over HTTP/JSON:
//
//	GET  /health            liveness, data version, synopsis names
//	GET  /query             one query: ?a=&b=[&syn=][&metric=COUNT|SUM]
//	POST /query/batch       {"synopsis","metric","ranges":[[a,b],...]}
//	POST /ingest            {"inserts":[{"value","count"}],"deletes":[...]}
//	POST /load              {"counts":[...]}
//	POST /rebuild           force a snapshot rebuild now
//	GET  /synopsis          ?name= — synopsis in the synquery wire format
//	POST /synopsis/merge    ?name= — merge a shard's synopsis (wire format body)
//	GET  /metrics           per-endpoint request/error/latency counters
//
// Every response is JSON; errors are {"error": "..."} with an HTTP status.
// All observations land in m (which may be shared with other handlers).
func NewHandler(s *Server, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, method string, fn func(w http.ResponseWriter, r *http.Request) (int, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			status, err := 0, error(nil)
			if r.Method != method {
				status = http.StatusMethodNotAllowed
				err = fmt.Errorf("method %s not allowed", r.Method)
			} else {
				status, err = fn(w, r)
			}
			if err != nil {
				writeJSON(w, status, map[string]string{"error": err.Error()})
			}
			m.Observe(strings.TrimPrefix(pattern, "/"), time.Since(start), err != nil)
		})
	}

	handle("/health", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		snap := s.Snapshot()
		resp := map[string]any{
			"status":   "ok",
			"domain":   snap.Domain,
			"records":  snap.Records,
			"version":  snap.Version,
			"rebuilds": s.Rebuilds(),
			"synopses": snap.Names(),
		}
		if err := s.LastError(); err != nil {
			resp["last_rebuild_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	handle("/query", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		q, err := queryFromURL(r)
		if err != nil {
			return http.StatusBadRequest, err
		}
		snap := s.Snapshot()
		var value float64
		if q.Synopsis == "" {
			value = float64(snap.exact(q.Metric, q.A, q.B))
		} else if value, err = snap.Approx(q.Synopsis, q.A, q.B); err != nil {
			return http.StatusNotFound, err
		}
		writeJSON(w, http.StatusOK, map[string]any{"value": value, "version": snap.Version})
		return 0, nil
	})

	handle("/query/batch", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Synopsis string   `json:"synopsis"`
			Metric   string   `json:"metric"`
			Ranges   [][2]int `json:"ranges"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding batch request: %w", err)
		}
		metric, err := engine.ParseMetric(req.Metric)
		if err != nil {
			return http.StatusBadRequest, err
		}
		qs := make([]Query, len(req.Ranges))
		for i, rg := range req.Ranges {
			qs[i] = Query{Synopsis: req.Synopsis, Metric: metric, A: rg[0], B: rg[1]}
		}
		results, version := s.QueryBatch(qs)
		values := make([]float64, len(results))
		for i, res := range results {
			if res.Err != nil {
				return http.StatusNotFound, res.Err
			}
			values[i] = res.Value
		}
		writeJSON(w, http.StatusOK, map[string]any{"values": values, "version": version})
		return 0, nil
	})

	handle("/ingest", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Inserts []struct {
				Value int   `json:"value"`
				Count int64 `json:"count"`
			} `json:"inserts"`
			Deletes []struct {
				Value int   `json:"value"`
				Count int64 `json:"count"`
			} `json:"deletes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding ingest request: %w", err)
		}
		for _, in := range req.Inserts {
			if err := s.Insert(in.Value, in.Count); err != nil {
				return http.StatusBadRequest, err
			}
		}
		for _, del := range req.Deletes {
			if err := s.Delete(del.Value, del.Count); err != nil {
				return http.StatusBadRequest, err
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return 0, nil
	})

	handle("/load", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Counts []int64 `json:"counts"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding load request: %w", err)
		}
		if err := s.Load(req.Counts); err != nil {
			return http.StatusBadRequest, err
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return 0, nil
	})

	handle("/rebuild", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		if err := s.Rebuild(); err != nil {
			return http.StatusInternalServerError, err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version": s.Snapshot().Version, "rebuilds": s.Rebuilds(),
		})
		return 0, nil
	})

	handle("/synopsis", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		syn, err := s.Snapshot().Synopsis(r.URL.Query().Get("name"))
		if err != nil {
			return http.StatusNotFound, err
		}
		if d, err := method.Lookup(syn.Options.Method); err == nil && !d.Caps.Has(method.Serializable) {
			return http.StatusConflict, fmt.Errorf("serve: %s synopses are not serializable", d.Name)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := codec.Write(w, syn.Est); err != nil {
			return http.StatusInternalServerError, err
		}
		return 0, nil
	})

	handle("/synopsis/merge", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		name := r.URL.Query().Get("name")
		est, err := codec.Read(r.Body)
		if err != nil {
			return http.StatusBadRequest, err
		}
		if err := s.MergeSynopsis(name, est); err != nil {
			return http.StatusConflict, err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "version": s.Snapshot().Version,
		})
		return 0, nil
	})

	handle("/metrics", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		resp := make(map[string]any)
		for name, ep := range m.Snapshot() {
			resp[name] = ep
		}
		if s.cfg.WAL != nil {
			// Durability gauges: log traffic, fsync work, checkpoint
			// freshness, and the records replayed at startup.
			resp["durability"] = s.cfg.WAL.Stats()
		}
		writeJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	return mux
}

func queryFromURL(r *http.Request) (Query, error) {
	var q Query
	v := r.URL.Query()
	metric, err := engine.ParseMetric(v.Get("metric"))
	if err != nil {
		return q, err
	}
	a, err := strconv.Atoi(v.Get("a"))
	if err != nil {
		return q, fmt.Errorf("parameter a: %w", err)
	}
	b, err := strconv.Atoi(v.Get("b"))
	if err != nil {
		return q, fmt.Errorf("parameter b: %w", err)
	}
	return Query{Synopsis: v.Get("syn"), Metric: metric, A: a, B: b}, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be I/O errors on a
	// dead client; there is nothing useful to do with them.
	_ = json.NewEncoder(w).Encode(v)
}
