package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rangeagg/internal/codec"
	"rangeagg/internal/engine"
	"rangeagg/internal/method"
	"rangeagg/internal/obs"
)

// NewHandler exposes a Server over HTTP/JSON:
//
//	GET  /health            liveness, data version, synopsis names
//	GET  /healthz           readiness: snapshot version, staleness vs
//	                        MaxLag, replication state; 503 when not ready
//	GET  /checkpoint        stream the newest atomic checkpoint (durable
//	                        nodes only) — the replication pull source
//	GET  /query             one query: ?a=&b=[&syn=][&metric=COUNT|SUM]
//	POST /query/batch       {"synopsis","metric","ranges":[[a,b],...]}
//	POST /ingest            {"inserts":[{"value","count"}],"deletes":[...]}
//	POST /load              {"counts":[...]}
//	POST /rebuild           force a snapshot rebuild now
//	GET  /synopsis          ?name= — synopsis in the synquery wire format
//	POST /synopsis/merge    ?name= — merge a shard's synopsis (wire format body)
//	GET  /metrics           per-endpoint request/error/latency stats (JSON,
//	                        with p50/p95/p99), per-method build timings,
//	                        and the durability gauges when WAL-backed
//	GET  /metrics.prom      the same plus every process-wide obs series in
//	                        Prometheus text exposition format
//	GET  /trace             recent obs spans (newest first) and slow ops
//
// Every response is JSON; errors are {"error": "..."} with an HTTP status.
// All observations land in m (which may be shared with other handlers).
func NewHandler(s *Server, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, method string, fn func(w http.ResponseWriter, r *http.Request) (int, error)) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			status, err := 0, error(nil)
			if r.Method != method {
				status = http.StatusMethodNotAllowed
				err = fmt.Errorf("method %s not allowed", r.Method)
			} else {
				status, err = fn(w, r)
			}
			if err != nil {
				writeJSON(w, status, map[string]string{"error": err.Error()})
			}
			m.Observe(strings.TrimPrefix(pattern, "/"), time.Since(start), err != nil)
		})
	}

	handle("/health", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		snap := s.Snapshot()
		resp := map[string]any{
			"status":   "ok",
			"domain":   snap.Domain,
			"records":  snap.Records,
			"version":  snap.Version,
			"rebuilds": s.Rebuilds(),
			"synopses": snap.Names(),
		}
		if err := s.LastError(); err != nil {
			resp["last_rebuild_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	handle("/healthz", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		h := s.Health()
		status := http.StatusOK
		if !h.Ready {
			// Load balancers and the cluster router key on the status code;
			// the body carries the full readiness detail either way.
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
		return 0, nil
	})

	handle("/checkpoint", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		db := s.cfg.WAL
		if db == nil {
			return http.StatusConflict, fmt.Errorf("serve: node is not durable; no checkpoint to stream")
		}
		// Keep replica lag bounded by the pull interval, not the
		// checkpoint cadence: fold any records logged since the last
		// checkpoint into a fresh one before streaming. With nothing new
		// this is free.
		if db.Stats().RecordsSinceCkpt > 0 {
			if err := db.Checkpoint(); err != nil {
				return http.StatusInternalServerError, err
			}
		}
		rc, applied, size, err := db.OpenNewestCheckpoint()
		if err != nil {
			return http.StatusInternalServerError, err
		}
		defer rc.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.Header().Set("X-Checkpoint-Applied", strconv.FormatUint(applied, 10))
		// Copy errors past the header write are a dead client.
		_, _ = io.Copy(w, rc)
		return 0, nil
	})

	handle("/query", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		q, err := queryFromURL(r)
		if err != nil {
			return http.StatusBadRequest, err
		}
		res, version := s.QueryOne(q)
		if res.Err != nil {
			return http.StatusNotFound, res.Err
		}
		resp := map[string]any{
			"value":   res.Value,
			"version": version,
			"path":    res.Path.String(),
			"source":  res.Source,
		}
		// JSON cannot encode +Inf: a model-less answer simply omits the
		// bound instead of carrying a sentinel.
		if !math.IsInf(res.Bound, 1) {
			resp["err"] = res.Bound
			resp["rigorous"] = res.Rigorous
		}
		writeJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	handle("/query/batch", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Synopsis string   `json:"synopsis"`
			Metric   string   `json:"metric"`
			Ranges   [][2]int `json:"ranges"`
			MaxErr   *float64 `json:"maxerr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding batch request: %w", err)
		}
		metric, err := engine.ParseMetric(req.Metric)
		if err != nil {
			return http.StatusBadRequest, err
		}
		if req.MaxErr != nil && (*req.MaxErr < 0 || math.IsNaN(*req.MaxErr)) {
			return http.StatusBadRequest, fmt.Errorf("maxerr must be a non-negative number, got %g", *req.MaxErr)
		}
		qs := make([]Query, len(req.Ranges))
		for i, rg := range req.Ranges {
			qs[i] = Query{Synopsis: req.Synopsis, Metric: metric, A: rg[0], B: rg[1], MaxErr: req.MaxErr}
		}
		results, version := s.QueryBatch(qs)
		values := make([]float64, len(results))
		errs := make([]*float64, len(results))
		for i, res := range results {
			if res.Err != nil {
				return http.StatusNotFound, res.Err
			}
			values[i] = res.Value
			if !math.IsInf(res.Bound, 1) {
				bound := res.Bound
				errs[i] = &bound
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"values": values, "errs": errs, "version": version})
		return 0, nil
	})

	handle("/ingest", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Inserts []struct {
				Value int   `json:"value"`
				Count int64 `json:"count"`
			} `json:"inserts"`
			Deletes []struct {
				Value int   `json:"value"`
				Count int64 `json:"count"`
			} `json:"deletes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding ingest request: %w", err)
		}
		for _, in := range req.Inserts {
			if err := s.Insert(in.Value, in.Count); err != nil {
				return http.StatusBadRequest, err
			}
		}
		for _, del := range req.Deletes {
			if err := s.Delete(del.Value, del.Count); err != nil {
				return http.StatusBadRequest, err
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return 0, nil
	})

	handle("/load", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		var req struct {
			Counts []int64 `json:"counts"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return http.StatusBadRequest, fmt.Errorf("decoding load request: %w", err)
		}
		if err := s.Load(req.Counts); err != nil {
			return http.StatusBadRequest, err
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
		return 0, nil
	})

	handle("/rebuild", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		if err := s.Rebuild(); err != nil {
			return http.StatusInternalServerError, err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"version": s.Snapshot().Version, "rebuilds": s.Rebuilds(),
		})
		return 0, nil
	})

	handle("/synopsis", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		syn, err := s.Snapshot().Synopsis(r.URL.Query().Get("name"))
		if err != nil {
			return http.StatusNotFound, err
		}
		if d, err := method.Lookup(syn.Options.Method); err == nil && !d.Caps.Has(method.Serializable) {
			return http.StatusConflict, fmt.Errorf("serve: %s synopses are not serializable", d.Name)
		}
		w.Header().Set("Content-Type", "application/json")
		if err := codec.Write(w, syn.Est); err != nil {
			return http.StatusInternalServerError, err
		}
		return 0, nil
	})

	handle("/synopsis/merge", http.MethodPost, func(w http.ResponseWriter, r *http.Request) (int, error) {
		name := r.URL.Query().Get("name")
		est, err := codec.Read(r.Body)
		if err != nil {
			return http.StatusBadRequest, err
		}
		if err := s.MergeSynopsis(name, est); err != nil {
			return http.StatusConflict, err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "version": s.Snapshot().Version,
		})
		return 0, nil
	})

	handle("/metrics", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		resp := make(map[string]any)
		for name, ep := range m.Snapshot() {
			resp[name] = ep
		}
		if builds := buildSummary(); len(builds) > 0 {
			// Per-method synopsis build histograms (process-wide): how
			// long each family's builds take across all rebuilds so far.
			resp["builds"] = builds
		}
		if s.cfg.WAL != nil {
			// Durability gauges: log traffic, fsync work, checkpoint
			// freshness, and the records replayed at startup.
			resp["durability"] = s.cfg.WAL.Stats()
		}
		if st := s.SegmentStats(); st.Rebuilt+st.Reused+st.SynopsesReused > 0 {
			// Partial-rebuild work avoidance: segments rebuilt vs carried
			// over, and whole synopses reused across snapshot swaps.
			resp["segments"] = st
		}
		if st := s.IngestStats(); st.RebuildsAvoided+st.Escalated > 0 {
			// Incremental-maintenance ladder: batches absorbed, values
			// re-optimized, boundaries repaired, escalations, and the
			// rebuilds all of that made unnecessary.
			resp["ingest"] = st
		}
		writeJSON(w, http.StatusOK, resp)
		return 0, nil
	})

	handle("/metrics.prom", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The handler's endpoint series plus every process-wide series
		// (build phases, DP kernels, WAL durability, pool fan-out).
		if err := obs.WriteText(w, m.Registry(), obs.Default); err != nil {
			return http.StatusInternalServerError, err
		}
		return 0, nil
	})

	handle("/trace", http.MethodGet, func(w http.ResponseWriter, r *http.Request) (int, error) {
		writeJSON(w, http.StatusOK, map[string]any{
			"spans":    obs.Recent(),
			"slow_ops": obs.SlowOps(),
		})
		return 0, nil
	})

	return mux
}

// BuildStats is the /metrics "builds" entry for one synopsis method.
type BuildStats struct {
	Count int64   `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// buildSummary condenses the per-method build histograms recorded by
// internal/build into method → quantile stats.
func buildSummary() map[string]BuildStats {
	out := make(map[string]BuildStats)
	obs.Default.EachHistogram("rangeagg_build_seconds", func(name string, labels []obs.Label, snap obs.HistSnapshot) {
		methodName := ""
		for _, l := range labels {
			if l.Key == "method" {
				methodName = l.Value
			}
		}
		if methodName == "" || snap.Count == 0 {
			return
		}
		out[methodName] = BuildStats{
			Count: snap.Count,
			P50Ms: snap.Quantile(0.50) * 1e3,
			P95Ms: snap.Quantile(0.95) * 1e3,
			P99Ms: snap.Quantile(0.99) * 1e3,
			MaxMs: snap.MaxSeconds * 1e3,
		}
	})
	return out
}

func queryFromURL(r *http.Request) (Query, error) {
	var q Query
	v := r.URL.Query()
	metric, err := engine.ParseMetric(v.Get("metric"))
	if err != nil {
		return q, err
	}
	a, err := strconv.Atoi(v.Get("a"))
	if err != nil {
		return q, fmt.Errorf("parameter a: %w", err)
	}
	b, err := strconv.Atoi(v.Get("b"))
	if err != nil {
		return q, fmt.Errorf("parameter b: %w", err)
	}
	q = Query{Synopsis: v.Get("syn"), Metric: metric, A: a, B: b}
	if me := v.Get("maxerr"); me != "" {
		f, err := strconv.ParseFloat(me, 64)
		if err != nil {
			return q, fmt.Errorf("parameter maxerr: %w", err)
		}
		if f < 0 || math.IsNaN(f) {
			return q, fmt.Errorf("maxerr must be a non-negative number, got %g", f)
		}
		q.MaxErr = &f
	}
	return q, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past the header write can only be I/O errors on a
	// dead client; there is nothing useful to do with them.
	_ = json.NewEncoder(w).Encode(v)
}
