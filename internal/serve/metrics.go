package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// EndpointStats aggregates one endpoint's traffic.
type EndpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	nanos    atomic.Int64
	maxNanos atomic.Int64
}

func (e *EndpointStats) observe(d time.Duration, failed bool) {
	e.requests.Add(1)
	if failed {
		e.errors.Add(1)
	}
	n := d.Nanoseconds()
	e.nanos.Add(n)
	for {
		cur := e.maxNanos.Load()
		if n <= cur || e.maxNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

// EndpointSnapshot is the exported view of one endpoint's stats.
type EndpointSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Metrics tracks per-endpoint request counts, error counts, and latency.
// It is safe for concurrent use.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointStats
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*EndpointStats)}
}

func (m *Metrics) endpoint(name string) *EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		e = &EndpointStats{}
		m.endpoints[name] = e
	}
	return e
}

// Observe records one request against an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	m.endpoint(endpoint).observe(d, failed)
}

// Snapshot exports every endpoint's current stats.
func (m *Metrics) Snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, e := range m.endpoints {
		req := e.requests.Load()
		s := EndpointSnapshot{
			Requests: req,
			Errors:   e.errors.Load(),
			MaxMs:    float64(e.maxNanos.Load()) / 1e6,
		}
		if req > 0 {
			s.MeanMs = float64(e.nanos.Load()) / float64(req) / 1e6
		}
		out[name] = s
	}
	return out
}
