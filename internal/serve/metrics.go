package serve

import (
	"sync"
	"time"

	"rangeagg/internal/obs"
)

// endpointHandles are one endpoint's metric handles, resolved once per
// endpoint so the per-request path is a few atomic operations.
type endpointHandles struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// EndpointSnapshot is the exported view of one endpoint's stats: request
// and error counts plus the latency distribution (quantiles from the obs
// fixed-bucket histogram, not a running mean alone).
type EndpointSnapshot struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Metrics tracks per-endpoint request counts, error counts, and latency
// histograms. Each Metrics owns its own obs.Registry, so concurrent
// handlers (and tests) never share endpoint series; the registry is
// exposed for the Prometheus endpoint to merge with the process-wide
// obs.Default. It is safe for concurrent use.
type Metrics struct {
	reg       *obs.Registry
	mu        sync.Mutex
	endpoints map[string]*endpointHandles
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{reg: obs.NewRegistry(), endpoints: make(map[string]*endpointHandles)}
}

// Registry exposes the underlying obs registry (for Prometheus
// exposition alongside obs.Default).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

func (m *Metrics) endpoint(name string) *endpointHandles {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.endpoints[name]
	if !ok {
		labels := obs.L("endpoint", name)
		e = &endpointHandles{
			requests: m.reg.Counter("rangeagg_http_requests_total", labels...),
			errors:   m.reg.Counter("rangeagg_http_errors_total", labels...),
			latency:  m.reg.Histogram("rangeagg_http_request_seconds", labels...),
		}
		m.endpoints[name] = e
	}
	return e
}

// Observe records one request against an endpoint.
func (m *Metrics) Observe(endpoint string, d time.Duration, failed bool) {
	e := m.endpoint(endpoint)
	e.requests.Inc()
	if failed {
		e.errors.Inc()
	}
	e.latency.Observe(d)
}

// Snapshot exports every endpoint's current stats.
func (m *Metrics) Snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	handles := make([]*endpointHandles, 0, len(m.endpoints))
	for name, e := range m.endpoints {
		names = append(names, name)
		handles = append(handles, e)
	}
	m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(names))
	for i, e := range handles {
		h := e.latency.Snapshot()
		out[names[i]] = EndpointSnapshot{
			Requests: e.requests.Value(),
			Errors:   e.errors.Value(),
			MeanMs:   h.Mean() * 1e3,
			P50Ms:    h.Quantile(0.50) * 1e3,
			P95Ms:    h.Quantile(0.95) * 1e3,
			P99Ms:    h.Quantile(0.99) * 1e3,
			MaxMs:    h.MaxSeconds * 1e3,
		}
	}
	return out
}
