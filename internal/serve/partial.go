package serve

import "time"

// window accumulates the value range mutated since the last snapshot
// rebuild captured it. The server keeps one global window (all specs
// summarize the same column): ingest wrappers widen it, bulk paths and
// the public MarkDirty mark everything, and Rebuild captures-and-resets
// it before reading the engine — a mutation landing in between marks
// the fresh window and is also in the counts just read, so the worst
// case is an over-rebuild, never a stale reuse.
type window struct {
	any, all bool
	lo, hi   int
}

func (w *window) markValue(v int) {
	if w.all {
		return
	}
	if !w.any {
		w.any, w.lo, w.hi = true, v, v
		return
	}
	if v < w.lo {
		w.lo = v
	}
	if v > w.hi {
		w.hi = v
	}
}

func (w *window) markAll() {
	w.any, w.all = true, true
}

// merge widens w to cover o — the restore path when a rebuild that
// captured o fails and its mutations must stay pending.
func (w *window) merge(o window) {
	if !o.any {
		return
	}
	if o.all {
		w.markAll()
		return
	}
	w.markValue(o.lo)
	w.markValue(o.hi)
}

// markValue records a point mutation in the rebuild window.
func (s *Server) markValue(v int) {
	s.winMu.Lock()
	s.win.markValue(v)
	s.stampDirtyLocked()
	s.winMu.Unlock()
}

// markRange records a mutation confined to the inclusive value span
// [lo,hi] — the bulk-load path whose window is known.
func (s *Server) markRange(lo, hi int) {
	s.winMu.Lock()
	s.win.markValue(lo)
	s.win.markValue(hi)
	s.stampDirtyLocked()
	s.winMu.Unlock()
}

// markAll records a bulk (or unlocatable) mutation.
func (s *Server) markAll() {
	s.winMu.Lock()
	s.win.markAll()
	s.stampDirtyLocked()
	s.winMu.Unlock()
}

// stampDirtyLocked records when the window first became dirty — the
// /healthz staleness clock. Caller holds winMu.
func (s *Server) stampDirtyLocked() {
	if s.dirtyAt == 0 {
		s.dirtyAt = time.Now().UnixNano()
	}
}

// SegmentStats reports how much snapshot-rebuild work the segmented
// paths saved: Rebuilt/Reused count segments across partial rebuilds
// (from the method layer's RebuildStats), SynopsesReused counts whole
// synopses carried into a fresh snapshot verbatim because nothing
// changed for them.
type SegmentStats struct {
	Rebuilt        int64 `json:"rebuilt"`
	Reused         int64 `json:"reused"`
	SynopsesReused int64 `json:"synopses_reused"`
}

// SegmentStats returns the server's cumulative partial-rebuild counters.
func (s *Server) SegmentStats() SegmentStats {
	return SegmentStats{
		Rebuilt:        s.segRebuilt.Load(),
		Reused:         s.segReused.Load(),
		SynopsesReused: s.synReused.Load(),
	}
}

// IngestStats reports what the incremental-maintenance ladder did on
// this server: one count per ladder action across all maintained
// synopses and publishes, plus the rebuilds those batches made
// unnecessary (every non-escalated batch is one avoided rebuild of its
// synopsis).
type IngestStats struct {
	Absorbed        int64 `json:"absorbed"`
	Reoptimized     int64 `json:"reoptimized"`
	Repaired        int64 `json:"repaired"`
	Escalated       int64 `json:"escalated"`
	RebuildsAvoided int64 `json:"rebuilds_avoided"`
}

// IngestStats returns the server's cumulative maintenance counters.
func (s *Server) IngestStats() IngestStats {
	return IngestStats{
		Absorbed:        s.ingAbsorbed.Load(),
		Reoptimized:     s.ingReopt.Load(),
		Repaired:        s.ingRepaired.Load(),
		Escalated:       s.ingEscalated.Load(),
		RebuildsAvoided: s.ingAvoided.Load(),
	}
}
