// Package serve is the concurrent query-serving layer in front of the
// engine: it publishes each column's exact prefix tables and synopses as
// one immutable Snapshot behind an atomic pointer, answers single and
// batched range-aggregate queries from whatever snapshot is current, and
// rebuilds snapshots off the hot path behind a mutation-driven debouncer.
// Queries never take the engine lock and never block on a rebuild; a
// rebuild never publishes partial state (old snapshot or new, never a
// mix).
package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/ingest"
	"rangeagg/internal/method"
	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
	"rangeagg/internal/plan"
	"rangeagg/internal/prefix"
	"rangeagg/internal/wal"
)

// Serving-layer metrics (process-wide): snapshot rebuild latency and
// swap count, the published data version, and per-batch query latency.
// Endpoint-level HTTP latency lives in Metrics (metrics.go) instead, so
// each handler keeps its own registry.
var (
	rebuildSeconds    = obs.Default.Histogram("rangeagg_serve_rebuild_seconds")
	queryBatchSeconds = obs.Default.Histogram("rangeagg_serve_query_batch_seconds")
	snapshotSwaps     = obs.Default.Counter("rangeagg_serve_snapshot_swaps_total")
	snapshotVersion   = obs.Default.Gauge("rangeagg_serve_snapshot_version")
)

// Config tunes the server; zero values select the defaults.
type Config struct {
	// Debounce is the quiet period after a mutation before the automatic
	// rebuild fires (default 50ms). Further mutations inside the window
	// push the rebuild back, up to MaxLag.
	Debounce time.Duration
	// MaxLag caps how stale the published snapshot may grow while
	// mutations keep arriving (default 20×Debounce).
	MaxLag time.Duration
	// FanOut is the smallest batch QueryBatch spreads over the worker
	// pool; smaller batches evaluate inline (default 128).
	FanOut int
	// CacheEntries sizes the planner's hot-range answer cache (default
	// 4096 entries); a negative value disables caching.
	CacheEntries int
	// ApproxCutover is the domain size at and above which snapshot
	// rebuilds construct through a method's (1+ε)-approximate
	// counterpart (registered specs keep their original options). 0
	// selects build.DefaultApproxCutover; a negative value disables the
	// substitution.
	ApproxCutover int
	// WAL, when non-nil, makes the server durable: the engine must be
	// the DB's engine, every mutation path (ingest, load, shard merge)
	// appends its log record before the call acknowledges, and a
	// checkpoint piggybacks on the debounced rebuild once enough records
	// accumulate.
	WAL *wal.DB
	// RecoveredShards seeds the shard-merge inbox from crash recovery
	// without re-logging. Entries whose name has no registered spec are
	// ignored.
	RecoveredShards []wal.ShardMerge
	// NodeID names this node in /healthz (cluster deployments); empty is
	// fine for standalone servers.
	NodeID string
	// Ingest configures incremental synopsis maintenance
	// (internal/ingest). In ModeIncremental, rebuilds whose mutations are
	// confined to a value window maintain maintainable synopses in place
	// through the absorb/reopt/repair ladder, escalating to the
	// dirty-segment or full rebuild paths only when the workload-driven
	// SSE-drift trigger persists past a repair. The zero value
	// (ModeRebuild) keeps the pre-ingest rebuild-per-window behaviour.
	Ingest ingest.Config
}

func (c Config) withDefaults() Config {
	if c.Debounce <= 0 {
		c.Debounce = 50 * time.Millisecond
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 20 * c.Debounce
	}
	if c.FanOut <= 0 {
		c.FanOut = 128
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Server publishes snapshots of one engine column and serves queries from
// them. It is safe for concurrent use.
type Server struct {
	eng *engine.Engine
	cfg Config

	// planner routes budgeted and synopsis queries through the cheapest
	// path meeting each one's error bound, caching hot ranges.
	planner *plan.Planner

	snap atomic.Pointer[Snapshot]

	// rebuildMu serializes snapshot construction; queries never take it.
	rebuildMu sync.Mutex
	specMu    sync.RWMutex
	specs     []engine.SynopsisSpec

	// shardMu guards shards: per-synopsis estimators received from remote
	// shards (MergeSynopsis). A rebuild folds them into the freshly built
	// local synopsis, so shard contributions survive snapshot swaps.
	shardMu sync.RWMutex
	shards  map[string][]build.Estimator

	// winMu guards win, the mutated value window Rebuild's partial path
	// consumes, and dirtyAt, the unix-nano timestamp of the oldest
	// mutation not yet reflected in the served snapshot (0 = none) —
	// the /healthz staleness signal.
	winMu   sync.Mutex
	win     window
	dirtyAt int64

	// swappedAt is when the served snapshot was published (unix nanos).
	swappedAt atomic.Int64
	// follow is the replication state a Follower reports (nil when this
	// node follows no primary).
	follow atomic.Pointer[FollowState]

	// Partial-rebuild counters (see SegmentStats).
	segRebuilt atomic.Int64
	segReused  atomic.Int64
	synReused  atomic.Int64

	// ingMu guards ingStates, the per-synopsis maintenance state created
	// lazily by Rebuild's maintained path (Config.Ingest incremental).
	ingMu     sync.RWMutex
	ingStates map[string]*ingest.State

	// Maintenance counters (see IngestStats).
	ingAbsorbed  atomic.Int64
	ingReopt     atomic.Int64
	ingRepaired  atomic.Int64
	ingEscalated atomic.Int64
	ingAvoided   atomic.Int64

	rebuilds atomic.Int64
	lastErr  atomic.Pointer[rebuildError]

	dirty     chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

type rebuildError struct{ err error }

// Query is one range-aggregate request. A named Synopsis answers
// approximately from the snapshot's estimator; an empty name answers
// exactly (per Metric) from the snapshot's prefix tables. A non-nil
// MaxErr is an error budget: the planner answers by the cheapest path
// whose error bound is within it, escalating through finer synopses and
// finally the exact tables. Synopsis and MaxErr compose — the named
// synopsis is probed first, escalation starts from there.
type Query struct {
	Synopsis string
	Metric   engine.Metric
	A, B     int
	MaxErr   *float64
}

// Result is one answer. Err is set per query (e.g. unknown synopsis
// name); the batch as a whole never fails. Bound bounds |exact − Value|
// (+Inf when the answering synopsis has no error model); Rigorous
// reports whether it is a guarantee; Path and Source say how the
// planner answered.
type Result struct {
	Value    float64
	Bound    float64
	Rigorous bool
	Path     plan.Path
	Source   string
	Err      error
}

// New builds the initial snapshot synchronously (so a successfully
// constructed Server always serves) and starts the rebuild debouncer.
// Callers must Close the server to stop it.
func New(eng *engine.Engine, specs []engine.SynopsisSpec, cfg Config) (*Server, error) {
	s := &Server{
		eng:       eng,
		cfg:       cfg.withDefaults(),
		specs:     append([]engine.SynopsisSpec(nil), specs...),
		shards:    make(map[string][]build.Estimator),
		ingStates: make(map[string]*ingest.State),
		dirty:     make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	cacheEntries := s.cfg.CacheEntries
	if cacheEntries < 0 {
		cacheEntries = 0 // plan.New(≤0) disables the cache
	}
	s.planner = plan.New(cacheEntries)
	for _, sh := range cfg.RecoveredShards {
		for _, sp := range s.specs {
			if sp.Name == sh.Name {
				s.shards[sh.Name] = append(s.shards[sh.Name], sh.Est)
				break
			}
		}
	}
	if err := s.Rebuild(); err != nil {
		return nil, err
	}
	if s.cfg.WAL != nil {
		// Checkpoints carry the serving specs so replicas (and recovery)
		// can rebuild this node's full serving shape from counts alone.
		s.cfg.WAL.SetDeclaredSpecs(s.specs)
	}
	go s.debounceLoop()
	return s, nil
}

// Close stops the debouncer. The last published snapshot keeps serving.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Rebuilds returns the number of snapshots published so far.
func (s *Server) Rebuilds() int64 { return s.rebuilds.Load() }

// LastError reports the most recent rebuild failure, or nil. A failed
// rebuild keeps the previous snapshot serving.
func (s *Server) LastError() error {
	if p := s.lastErr.Load(); p != nil {
		return p.err
	}
	return nil
}

// Insert forwards to the engine — through the write-ahead log when the
// server is durable, so the record is on the log before the call
// returns — and schedules a debounced rebuild.
func (s *Server) Insert(value int, occurrences int64) error {
	var err error
	if s.cfg.WAL != nil {
		err = s.cfg.WAL.Insert(value, occurrences)
	} else {
		err = s.eng.Insert(value, occurrences)
	}
	if err != nil {
		return err
	}
	s.markValue(value)
	s.signalDirty()
	return nil
}

// Delete forwards to the engine (via the write-ahead log when durable)
// and schedules a debounced rebuild.
func (s *Server) Delete(value int, occurrences int64) error {
	var err error
	if s.cfg.WAL != nil {
		err = s.cfg.WAL.Delete(value, occurrences)
	} else {
		err = s.eng.Delete(value, occurrences)
	}
	if err != nil {
		return err
	}
	s.markValue(value)
	s.signalDirty()
	return nil
}

// Load forwards a bulk load to the engine (via the write-ahead log when
// durable) and schedules a debounced rebuild. The mutation window is
// marked with the precise span of the loaded mass — not the whole
// domain — so a load confined to a value window keeps segmented
// rebuilds and incremental maintenance partial.
func (s *Server) Load(counts []int64) error {
	var err error
	if s.cfg.WAL != nil {
		err = s.cfg.WAL.Load(counts)
	} else {
		err = s.eng.Load(counts)
	}
	if err != nil {
		return err
	}
	lo, hi := loadSpan(counts)
	switch {
	case lo < 0:
		// An all-zero load changes no counts; signal anyway so the served
		// version converges with the engine's bump.
	case lo == 0 && hi == len(counts)-1:
		s.markAll()
	default:
		s.markRange(lo, hi)
	}
	s.signalDirty()
	return nil
}

// loadSpan returns the inclusive span of non-zero entries, or (-1,-1)
// when there are none.
func loadSpan(counts []int64) (int, int) {
	lo, hi := -1, -1
	for v, c := range counts {
		if c != 0 {
			if lo < 0 {
				lo = v
			}
			hi = v
		}
	}
	return lo, hi
}

// MarkDirty tells the debouncer the engine data changed. Callers that
// mutate the engine directly (not through the server's ingest wrappers)
// use it to keep the served snapshot converging; since the mutation's
// location is unknown here, the next rebuild is a full one.
func (s *Server) MarkDirty() {
	s.markAll()
	s.signalDirty()
}

// signalDirty schedules a debounced rebuild without touching the
// mutation window (the ingest wrappers already marked it precisely).
func (s *Server) signalDirty() {
	select {
	case s.dirty <- struct{}{}:
	default: // a rebuild is already pending
	}
}

// AddSynopsis registers a synopsis spec and publishes a snapshot that
// includes it.
func (s *Server) AddSynopsis(spec engine.SynopsisSpec) error {
	s.specMu.Lock()
	for _, sp := range s.specs {
		if sp.Name == spec.Name {
			s.specMu.Unlock()
			return fmt.Errorf("serve: synopsis %q already registered", spec.Name)
		}
	}
	s.specs = append(s.specs, spec)
	s.specMu.Unlock()
	if err := s.Rebuild(); err != nil {
		// Roll the bad spec back so later rebuilds keep succeeding.
		s.specMu.Lock()
		for i, sp := range s.specs {
			if sp.Name == spec.Name {
				s.specs = append(s.specs[:i], s.specs[i+1:]...)
				break
			}
		}
		s.specMu.Unlock()
		return err
	}
	return nil
}

// DropSynopsis removes a synopsis spec and publishes a snapshot without
// it, reporting whether it existed.
func (s *Server) DropSynopsis(name string) bool {
	s.specMu.Lock()
	found := false
	for i, sp := range s.specs {
		if sp.Name == name {
			s.specs = append(s.specs[:i], s.specs[i+1:]...)
			found = true
			break
		}
	}
	s.specMu.Unlock()
	if found {
		s.shardMu.Lock()
		delete(s.shards, name)
		s.shardMu.Unlock()
		s.ingMu.Lock()
		delete(s.ingStates, name)
		s.ingMu.Unlock()
		if s.cfg.WAL != nil {
			// Purge the durable inbox too so recovery cannot resurrect
			// shard merges for the dropped synopsis.
			_, _ = s.cfg.WAL.DropSynopsis(name)
		}
		// Dropping a spec cannot fail construction of the others.
		_ = s.Rebuild()
	}
	return found
}

// MergeSynopsis accepts a remote shard's estimator for the named
// synopsis: every published snapshot from now on serves the local
// synopsis merged with all accepted shard estimators, answering each
// range with the sum of local and shard estimates. The synopsis's
// method must have the Mergeable capability and the estimator must be a
// compatible representation over the same domain (validated against the
// current snapshot before the shard is accepted). Note the shard's
// records are known to this server only through its estimator: exact
// (synopsis-less) queries keep answering from local data alone.
func (s *Server) MergeSynopsis(name string, est build.Estimator) error {
	s.specMu.RLock()
	var spec *engine.SynopsisSpec
	for i := range s.specs {
		if s.specs[i].Name == name {
			spec = &s.specs[i]
			break
		}
	}
	s.specMu.RUnlock()
	if spec == nil {
		return &engine.UnknownSynopsisError{Scope: "serve", Name: name}
	}
	d, err := method.Lookup(spec.Options.Method)
	if err != nil {
		return fmt.Errorf("serve: merging into %q: %w", name, err)
	}
	if !d.Caps.Has(method.Mergeable) {
		return fmt.Errorf("serve: %s synopses are not mergeable", d.Name)
	}
	if est.N() != s.eng.Domain() {
		return fmt.Errorf("serve: shard domain %d does not match %d", est.N(), s.eng.Domain())
	}
	// Dry-run against the served synopsis so an incompatible shard is
	// rejected here instead of poisoning every later rebuild.
	if cur, err := s.Snapshot().Synopsis(name); err == nil {
		if _, err := d.Merge(cur.Est, est); err != nil {
			return fmt.Errorf("serve: merging into %q: %w", name, err)
		}
	}
	if s.cfg.WAL != nil {
		// Append before acknowledging: an accepted shard survives a
		// crash from here on.
		if err := s.cfg.WAL.LogShardMerge(name, est); err != nil {
			return err
		}
	}
	s.shardMu.Lock()
	s.shards[name] = append(s.shards[name], est)
	s.shardMu.Unlock()
	return s.Rebuild()
}

// ingestState returns — creating on first use — the maintenance state
// of a synopsis. Creation only happens on Rebuild's maintained path
// (serialized by rebuildMu), so concurrent readers almost always stay
// on the RLock.
func (s *Server) ingestState(name string) *ingest.State {
	s.ingMu.RLock()
	st := s.ingStates[name]
	s.ingMu.RUnlock()
	if st != nil {
		return st
	}
	s.ingMu.Lock()
	if st = s.ingStates[name]; st == nil {
		st = ingest.NewState(s.cfg.Ingest)
		s.ingStates[name] = st
	}
	s.ingMu.Unlock()
	return st
}

// observeQuery feeds an answered range into a maintained synopsis's
// drift trigger (sampled; no-op unless incremental ingest is on and the
// synopsis has been maintained at least once).
func (s *Server) observeQuery(name string, a, b int) {
	if !s.cfg.Ingest.Enabled() {
		return
	}
	s.ingMu.RLock()
	st := s.ingStates[name]
	s.ingMu.RUnlock()
	if st != nil {
		st.Observe(a, b)
	}
}

// Query answers one request from the current snapshot.
func (s *Server) Query(q Query) (float64, error) {
	res, _ := s.QueryOne(q)
	return res.Value, res.Err
}

// QueryOne answers one request from the current snapshot with the full
// planned result (value, error bound, path) and the snapshot version.
func (s *Server) QueryOne(q Query) (Result, int64) {
	snap := s.snap.Load()
	return s.answer(snap, q), snap.Version
}

// CacheStats reports the planner's hot-range cache hit/miss counters.
func (s *Server) CacheStats() plan.CacheStats { return s.planner.CacheStats() }

// answer resolves one query against a pinned snapshot. Synopsis-less
// queries without a budget take the exact fast path; everything else
// goes through the planner, which attaches the error bound and caches
// hot ranges under the snapshot's version.
func (s *Server) answer(snap *Snapshot, q Query) Result {
	if q.Synopsis == "" && q.MaxErr == nil {
		return Result{Value: float64(snap.exact(q.Metric, q.A, q.B)),
			Rigorous: true, Path: plan.PathExact, Source: "exact"}
	}
	metric := q.Metric
	if q.Synopsis != "" {
		syn, ok := snap.syns[q.Synopsis]
		if !ok {
			return Result{Err: &engine.UnknownSynopsisError{Scope: "serve", Name: q.Synopsis}}
		}
		// A pinned synopsis answers its own metric, whatever the query
		// says (matching the pre-planner Approx semantics).
		metric = syn.Metric
		s.observeQuery(q.Synopsis, q.A, q.B)
	}
	maxErr := math.NaN() // planner convention: NaN = no budget
	if q.MaxErr != nil {
		maxErr = *q.MaxErr
	}
	ans, err := s.planner.Query(snap.View(metric), q.Synopsis, q.A, q.B, maxErr)
	if err != nil {
		return Result{Err: err}
	}
	return Result{Value: ans.Value, Bound: ans.Bound, Rigorous: ans.Rigorous,
		Path: ans.Path, Source: ans.Source}
}

// QueryBatch answers a batch of requests from one snapshot grab: every
// answer in the batch reflects the same data version (returned alongside
// the results), so concurrent rebuilds can never tear a batch. Large
// batches fan out over the shared worker pool.
func (s *Server) QueryBatch(qs []Query) ([]Result, int64) {
	_, span := obs.Start(context.Background(), "serve.query_batch")
	span.SetAttrInt("queries", int64(len(qs)))
	span.OnEnd(queryBatchSeconds.Observe)
	defer span.End()
	snap := s.snap.Load()
	out := make([]Result, len(qs))
	answer := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = s.answer(snap, qs[i])
		}
	}
	if len(qs) >= s.cfg.FanOut {
		parallel.ForEachChunk(len(qs), 64, answer)
	} else {
		answer(0, len(qs))
	}
	return out, snap.Version
}

// Rebuild constructs a fresh snapshot from the engine's current data —
// prefix tables and every registered synopsis, built concurrently over
// the worker pool — and atomically swaps it in. On failure the previous
// snapshot keeps serving and the error is retained for LastError.
//
// Rebuild avoids redoing work the mutation window proves unnecessary:
// a spec whose previous synopsis was built from the same data version
// with no mutations since is carried over verbatim (estimator and error
// model); a spec whose method supports partial rebuilds refreshes only
// the structures covering the mutated window; everything else is built
// from scratch, substituting the method's (1+ε)-approximate counterpart
// on large domains (Config.ApproxCutover). The partial and reuse paths
// trust that direct engine mutators call MarkDirty (which widens the
// window to everything); the ingest wrappers mark precisely.
func (s *Server) Rebuild() error {
	_, span := obs.Start(context.Background(), "serve.rebuild")
	span.OnEnd(rebuildSeconds.Observe)
	defer span.End()
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()

	s.specMu.RLock()
	specs := append([]engine.SynopsisSpec(nil), s.specs...)
	s.specMu.RUnlock()
	span.SetAttrInt("specs", int64(len(specs)))

	// Capture the mutation window BEFORE reading the engine: a mutation
	// landing in between marks the fresh window and is also in the counts
	// read below, so the worst case is an over-rebuild, never stale
	// reuse. On failure the captured window is merged back so the pending
	// mutations are not lost.
	s.winMu.Lock()
	win := s.win
	dirtyAt := s.dirtyAt
	s.win = window{}
	s.dirtyAt = 0
	s.winMu.Unlock()
	fail := func(err error) error {
		s.winMu.Lock()
		s.win.merge(win)
		// Restore the staleness clock: the captured mutations are still
		// pending, so /healthz must keep aging them.
		if dirtyAt != 0 && (s.dirtyAt == 0 || dirtyAt < s.dirtyAt) {
			s.dirtyAt = dirtyAt
		}
		s.winMu.Unlock()
		s.lastErr.Store(&rebuildError{err: err})
		return err
	}

	// One locked read of the engine; the SUM series is derived locally so
	// both metrics come from the same version.
	counts, version := s.eng.MetricCounts(engine.Count)
	sums := make([]int64, len(counts))
	var records int64
	for v, c := range counts {
		sums[v] = int64(v) * c
		records += c
	}

	prev := s.snap.Load()
	// One shard-inbox snapshot drives both the build-mode decisions and
	// the fold below, so a shard arriving mid-rebuild cannot fold into a
	// reused estimator (its own Rebuild call is already queued).
	s.shardMu.RLock()
	shardsFor := make([][]build.Estimator, len(specs))
	for i, sp := range specs {
		shardsFor[i] = s.shards[sp.Name]
	}
	s.shardMu.RUnlock()

	snap := &Snapshot{
		Version: version,
		Domain:  len(counts),
		Records: records,
		syns:    make(map[string]*Synopsis, len(specs)),
	}
	ests := make([]build.Estimator, len(specs))
	ems := make([]method.ErrorModel, len(specs))
	errs := make([]error, len(specs))
	stats := make([]method.RebuildStats, len(specs))
	reused := make([]bool, len(specs))
	outcomes := make([]*ingest.Outcome, len(specs))
	tasks := []func(){
		func() { snap.count = prefix.NewTable(counts) },
		func() { snap.sum = prefix.NewTable(sums) },
	}
	for i := range specs {
		i, sp := i, specs[i]
		var prevSyn *Synopsis
		if prev != nil {
			prevSyn = prev.syns[sp.Name]
		}
		sameSpec := prevSyn != nil && len(shardsFor[i]) == 0 &&
			prevSyn.Metric == sp.Metric && prevSyn.Options == sp.Options
		if sameSpec && !win.any && prev.Version == version {
			// Nothing changed for this spec: carry estimator and error
			// model into the new snapshot verbatim.
			ests[i], ems[i], reused[i] = prevSyn.Est, prevSyn.ErrModel, true
			s.synReused.Add(1)
			continue
		}
		partial := sameSpec && win.any && !win.all && build.CanRebuild(sp.Options)
		var st *ingest.State
		if s.cfg.Ingest.Enabled() && sameSpec && win.any && !win.all && ingest.CanMaintain(prevSyn.Est) {
			st = s.ingestState(sp.Name)
		}
		tasks = append(tasks, func() {
			series := counts
			if sp.Metric == engine.Sum {
				series = sums
			}
			if st != nil {
				// Incremental maintenance: absorb the confined window
				// through the ingest ladder. Only an escalation (drift
				// persisting past a boundary repair) falls through to the
				// rebuild paths below, restarting maintenance from the
				// rebuilt synopsis.
				var out ingest.Outcome
				ests[i], out, errs[i] = ingest.Maintain(series, prevSyn.Est, win.lo, win.hi, st)
				outcomes[i] = &out
				if errs[i] != nil || out.Action != ingest.Escalate {
					return
				}
				defer func() {
					if errs[i] == nil {
						st.Reset()
					}
				}()
			}
			if partial {
				ests[i], stats[i], errs[i] = build.Rebuild(series, sp.Options, prevSyn.Est, win.lo, win.hi)
				return
			}
			ests[i], errs[i] = build.Build(series, build.WithApprox(sp.Options, len(counts), s.cfg.ApproxCutover))
		})
	}
	parallel.Do(tasks...)
	for i, err := range errs {
		if err != nil {
			return fail(fmt.Errorf("serve: building synopsis %q: %w", specs[i].Name, err))
		}
	}
	var segR, segU int64
	for i := range stats {
		segR += int64(stats[i].Rebuilt)
		segU += int64(stats[i].Reused)
	}
	if segR+segU > 0 {
		s.segRebuilt.Add(segR)
		s.segReused.Add(segU)
	}
	for _, out := range outcomes {
		if out == nil {
			continue
		}
		switch out.Action {
		case ingest.Escalate:
			s.ingEscalated.Add(1)
			continue // the fall-through rebuild happened; nothing avoided
		case ingest.Reopt:
			s.ingReopt.Add(1)
		case ingest.Repair:
			s.ingRepaired.Add(1)
		default:
			s.ingAbsorbed.Add(1)
		}
		s.ingAvoided.Add(1)
	}
	// Fold accepted shard estimators into the fresh local synopses, in
	// arrival order, so shard contributions survive the snapshot swap.
	sharded := make([]bool, len(specs))
	for i, sp := range specs {
		sharded[i] = len(shardsFor[i]) > 0
		for _, shard := range shardsFor[i] {
			merged, err := method.MustLookup(sp.Options.Method).Merge(ests[i], shard)
			if err != nil {
				return fail(fmt.Errorf("serve: merging shard into %q: %w", sp.Name, err))
			}
			ests[i] = merged
		}
	}
	// Error models, built concurrently against the snapshot's own prefix
	// tables. Shard-folded synopses get none: their answers cover remote
	// records the local tables cannot see, so no local bound is valid (the
	// planner skips them outright under finite budgets). A model failure
	// just leaves that synopsis serving unbounded. Reused synopses carried
	// their model over above.
	var mtasks []func()
	for i, sp := range specs {
		d, err := method.Lookup(sp.Options.Method)
		if sharded[i] || reused[i] || err != nil || !d.Caps.Has(method.ErrorBounded) {
			continue
		}
		tab := snap.count
		if sp.Metric == engine.Sum {
			tab = snap.sum
		}
		i, d, tab := i, d, tab
		mtasks = append(mtasks, func() { ems[i], _ = d.ErrorBound(tab, ests[i]) })
	}
	if len(mtasks) > 0 {
		parallel.Do(mtasks...)
	}
	for i, sp := range specs {
		snap.syns[sp.Name] = &Synopsis{Name: sp.Name, Metric: sp.Metric, Options: sp.Options, Est: ests[i], ErrModel: ems[i]}
	}
	snap.epoch = s.rebuilds.Add(1)
	snap.buildViews()
	s.snap.Store(snap)
	s.swappedAt.Store(time.Now().UnixNano())
	s.lastErr.Store(&rebuildError{})
	snapshotSwaps.Inc()
	snapshotVersion.Set(snap.Version)
	span.SetAttrInt("version", snap.Version)
	return nil
}

// debounceLoop turns MarkDirty signals into background rebuilds: it waits
// for a quiet period after the last mutation before rebuilding, but never
// lets the snapshot lag more than MaxLag behind a mutation.
func (s *Server) debounceLoop() {
	defer close(s.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.dirty:
		}
		deadline := time.Now().Add(s.cfg.MaxLag)
		timer.Reset(s.cfg.Debounce)
	quiet:
		for {
			select {
			case <-s.stop:
				timer.Stop()
				return
			case <-s.dirty:
				d := s.cfg.Debounce
				if rem := time.Until(deadline); rem < d {
					d = rem
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(d)
			case <-timer.C:
				break quiet
			}
		}
		if err := s.Rebuild(); err == nil && s.cfg.WAL != nil {
			// Checkpoints piggyback on the debounced rebuild: the engine
			// is quiescing, so the captured state is the one just served.
			_, _ = s.cfg.WAL.MaybeCheckpoint()
		} // a failed rebuild keeps the old snapshot; LastError reports it
	}
}
