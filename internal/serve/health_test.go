package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestHealthzReadiness pins the readiness contract: ready while the
// snapshot is fresh, 503 once mutations older than MaxLag are still
// unpublished, ready again after the rebuild.
func TestHealthzReadiness(t *testing.T) {
	_, s := newTestServer(t, 64, Config{Debounce: time.Hour, MaxLag: 20 * time.Millisecond, NodeID: "n0"})

	h := s.Health()
	if !h.Ready || h.Status != "ok" || h.NodeID != "n0" {
		t.Fatalf("fresh server must be ready: %+v", h)
	}

	// A mutation starts the staleness clock; with the debouncer parked
	// the snapshot goes stale past MaxLag.
	if err := s.Insert(3, 5); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	h = s.Health()
	if h.Ready || h.Status != "degraded" {
		t.Fatalf("stale server must be degraded: %+v", h)
	}
	if h.StalenessS <= 0 {
		t.Fatalf("staleness must be reported: %+v", h)
	}

	// Publishing clears the staleness.
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if h = s.Health(); !h.Ready || h.StalenessS != 0 {
		t.Fatalf("rebuilt server must be ready again: %+v", h)
	}
	if h.SnapshotAgeS < 0 {
		t.Fatalf("snapshot age must be non-negative: %+v", h)
	}
}

// TestHealthzEndpoint pins the HTTP side: 200 when ready, 503 when not.
func TestHealthzEndpoint(t *testing.T) {
	s, _, ts := newTestHandler(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready node /healthz: %d", resp.StatusCode)
	}

	// An unsynced follower forces 503 regardless of snapshot freshness.
	s.SetFollowState(FollowState{Primary: "http://primary", Synced: false, PulledAt: time.Now(), Err: "refused"})
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced follower /healthz: %d, want 503", resp.StatusCode)
	}

	h := s.Health()
	if h.Follow == nil || h.Follow.Primary != "http://primary" || h.Follow.LastErr != "refused" {
		t.Fatalf("follow state not republished: %+v", h.Follow)
	}

	// Synced again: readiness returns.
	s.SetFollowState(FollowState{Primary: "http://primary", Applied: 7, Synced: true, PulledAt: time.Now()})
	if h = s.Health(); !h.Ready || h.Follow.Applied != 7 {
		t.Fatalf("synced follower must be ready: %+v", h)
	}
}

// TestCheckpointEndpointRequiresWAL pins the 409 for non-durable nodes.
func TestCheckpointEndpointRequiresWAL(t *testing.T) {
	_, _, ts := newTestHandler(t)
	resp, err := http.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("non-durable /checkpoint: %d, want 409", resp.StatusCode)
	}
}
