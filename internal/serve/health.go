package serve

import (
	"fmt"
	"time"

	"rangeagg/internal/engine"
	"rangeagg/internal/wal"
)

// This file is the node side of the cluster layer: the /healthz
// readiness contract the router polls, and the checkpoint install path
// a replica uses to converge on its primary's state.

// HealthStatus is the /healthz body: liveness plus the snapshot-version
// and staleness readiness signal the cluster router (or any load
// balancer) keys on. Ready is false while mutations older than MaxLag
// are still waiting for a rebuild, and — on a replica — until the first
// checkpoint install succeeded, so a router never routes to a node
// serving state it knows to be stale or empty.
type HealthStatus struct {
	Status   string `json:"status"` // "ok" or "degraded" (mirrors Ready)
	Ready    bool   `json:"ready"`
	NodeID   string `json:"node,omitempty"`
	Version  int64  `json:"version"`
	Epoch    int64  `json:"epoch"`
	Domain   int    `json:"domain"`
	Records  int64  `json:"records"`
	Rebuilds int64  `json:"rebuilds"`
	// SnapshotAgeS is the time since the served snapshot was published.
	SnapshotAgeS float64 `json:"snapshot_age_s"`
	// StalenessS is the age of the oldest mutation not yet reflected in
	// the served snapshot (0 when the snapshot is current).
	StalenessS float64 `json:"staleness_s"`
	MaxLagS    float64 `json:"max_lag_s"`
	// Applied is the write-ahead log's last record index (durable nodes
	// only); replicas report the index of their installed checkpoint
	// under Follow instead.
	Applied uint64 `json:"applied,omitempty"`
	// Follow describes replication state when this node follows a
	// primary.
	Follow *FollowStatus `json:"follow,omitempty"`
}

// FollowStatus is the replication block of a replica's health report.
type FollowStatus struct {
	Primary string `json:"primary"`
	// Applied is the log index of the installed checkpoint; the primary's
	// Applied minus this is the replica's lag in records.
	Applied      uint64  `json:"applied"`
	Synced       bool    `json:"synced"`
	LastPullAgeS float64 `json:"last_pull_age_s"`
	LastErr      string  `json:"last_err,omitempty"`
}

// FollowState is what a replication follower reports into its server
// (SetFollowState) after each pull attempt; /healthz republishes it.
type FollowState struct {
	Primary  string
	Applied  uint64
	Synced   bool
	PulledAt time.Time
	Err      string
}

// SetFollowState publishes the follower's replication state for
// /healthz. Safe for concurrent use.
func (s *Server) SetFollowState(st FollowState) { s.follow.Store(&st) }

// Health reports the node's liveness and readiness.
func (s *Server) Health() HealthStatus {
	snap := s.snap.Load()
	now := time.Now()
	h := HealthStatus{
		NodeID:   s.cfg.NodeID,
		Version:  snap.Version,
		Epoch:    snap.epoch,
		Domain:   snap.Domain,
		Records:  snap.Records,
		Rebuilds: s.Rebuilds(),
		MaxLagS:  s.cfg.MaxLag.Seconds(),
	}
	if at := s.swappedAt.Load(); at > 0 {
		h.SnapshotAgeS = now.Sub(time.Unix(0, at)).Seconds()
	}
	s.winMu.Lock()
	dirtyAt := s.dirtyAt
	s.winMu.Unlock()
	if dirtyAt > 0 {
		h.StalenessS = now.Sub(time.Unix(0, dirtyAt)).Seconds()
	}
	h.Ready = h.StalenessS <= h.MaxLagS
	if s.cfg.WAL != nil {
		h.Applied = s.cfg.WAL.Applied()
	}
	if st := s.follow.Load(); st != nil {
		h.Follow = &FollowStatus{Primary: st.Primary, Applied: st.Applied, Synced: st.Synced, LastErr: st.Err}
		if !st.PulledAt.IsZero() {
			h.Follow.LastPullAgeS = now.Sub(st.PulledAt).Seconds()
		}
		h.Ready = h.Ready && st.Synced
	}
	if h.Ready {
		h.Status = "ok"
	} else {
		h.Status = "degraded"
	}
	return h
}

// InstallCheckpoint replaces the node's data with a primary's decoded
// checkpoint and synchronously publishes a snapshot of it — the replica
// side of snapshot replication. With adoptSpecs, synopsis specs the
// checkpoint carries that this node lacks are registered first, so a
// bare replica converges on the primary's full serving shape. Durable
// nodes refuse the install: their write-ahead log is the authority on
// their data, and replacing state behind it would diverge recovery.
func (s *Server) InstallCheckpoint(ck *wal.CheckpointData, adoptSpecs bool) error {
	if s.cfg.WAL != nil {
		return fmt.Errorf("serve: refusing checkpoint install on a durable node (the WAL owns its data)")
	}
	if ck.Domain != s.eng.Domain() {
		return fmt.Errorf("serve: checkpoint spans domain %d, node serves %d", ck.Domain, s.eng.Domain())
	}
	if adoptSpecs {
		s.specMu.Lock()
		for _, sp := range ck.Specs {
			known := false
			for _, have := range s.specs {
				if have.Name == sp.Name {
					known = true
					break
				}
			}
			if !known {
				s.specs = append(s.specs, engine.SynopsisSpec{Name: sp.Name, Metric: sp.Metric, Options: sp.Options})
			}
		}
		s.specMu.Unlock()
	}
	if err := s.eng.Replace(ck.Counts); err != nil {
		return err
	}
	s.markAll()
	return s.Rebuild()
}
