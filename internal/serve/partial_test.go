package serve

import (
	"math"
	"strings"
	"testing"
	"time"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/segment"
)

func newSegServer(t *testing.T, domain int, cfg Config) (*engine.Engine, *Server) {
	t.Helper()
	eng, err := engine.New("seg", domain)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, domain)
	for i := range counts {
		counts[i] = int64((i*31)%11) * 5
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	specs := []engine.SynopsisSpec{{
		Name: "seg", Metric: engine.Count,
		Options: build.Options{Method: build.Segmented, BudgetWords: 40, Segments: 8},
	}}
	s, err := New(eng, specs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return eng, s
}

// TestServePartialRebuild checks the server's dirty-window path: a point
// insert followed by a rebuild reconstructs only the owning segment of
// the segmented synopsis and bumps the rebuilt/reused counters.
func TestServePartialRebuild(t *testing.T) {
	_, s := newSegServer(t, 512, Config{Debounce: time.Hour})
	prev, err := s.Snapshot().Synopsis("seg")
	if err != nil {
		t.Fatal(err)
	}
	before := s.SegmentStats()

	if err := s.Insert(100, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	next, err := s.Snapshot().Synopsis("seg")
	if err != nil {
		t.Fatal(err)
	}
	ps, ns := prev.Est.(*segment.Segmented), next.Est.(*segment.Segmented)
	dirty := ps.Find(100)
	for i := range ns.Segs {
		if i == dirty {
			if ns.Segs[i] == ps.Segs[i] {
				t.Errorf("dirty segment %d was not rebuilt", i)
			}
		} else if ns.Segs[i] != ps.Segs[i] {
			t.Errorf("clean segment %d was rebuilt instead of reused", i)
		}
	}
	st := s.SegmentStats()
	if st.Rebuilt-before.Rebuilt != 1 || st.Reused-before.Reused != int64(len(ns.Segs)-1) {
		t.Errorf("stats delta = %+v − %+v, want 1 rebuilt / %d reused", st, before, len(ns.Segs)-1)
	}
	// The refreshed snapshot answers the mutated range within its bound.
	res, _ := s.QueryOne(Query{Synopsis: "seg", A: 90, B: 110})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	exact := float64(s.Snapshot().ExactCount(90, 110))
	if d := math.Abs(res.Value - exact); d > res.Bound {
		t.Errorf("answer %g off exact %g beyond bound %g", res.Value, exact, res.Bound)
	}
}

// TestServeSynopsisReuse checks the clean fast path: a rebuild with no
// mutations since the last one carries the synopsis (estimator and error
// model) into the new snapshot verbatim.
func TestServeSynopsisReuse(t *testing.T) {
	_, s := newSegServer(t, 256, Config{Debounce: time.Hour})
	prev, err := s.Snapshot().Synopsis("seg")
	if err != nil {
		t.Fatal(err)
	}
	before := s.SegmentStats().SynopsesReused
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	next, err := s.Snapshot().Synopsis("seg")
	if err != nil {
		t.Fatal(err)
	}
	if next.Est != prev.Est || next.ErrModel != prev.ErrModel {
		t.Error("clean rebuild did not carry the synopsis over verbatim")
	}
	if got := s.SegmentStats().SynopsesReused - before; got != 1 {
		t.Errorf("SynopsesReused delta = %d, want 1", got)
	}
	// MarkDirty (an untracked external mutation) forces a full rebuild
	// even though the engine data is unchanged.
	s.markAll()
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	full, err := s.Snapshot().Synopsis("seg")
	if err != nil {
		t.Fatal(err)
	}
	if full.Est == next.Est {
		t.Error("MarkDirty did not force a rebuild")
	}
}

// TestServeApproxCutover pins the serve-layer cutover config: lowering it
// below the domain makes full rebuilds construct through the approximate
// counterpart while registered options keep the exact method.
func TestServeApproxCutover(t *testing.T) {
	eng, err := engine.New("cutover", 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i % 7)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	specs := []engine.SynopsisSpec{{
		Name: "a", Metric: engine.Count,
		Options: build.Options{Method: build.A0, BudgetWords: 12},
	}}
	s, err := New(eng, specs, Config{Debounce: time.Hour, ApproxCutover: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	syn, err := s.Snapshot().Synopsis("a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(syn.Est.Name(), "A0-APPROX") {
		t.Errorf("domain over cutover built %q, want the approximate construction", syn.Est.Name())
	}
	if syn.Options.Method != build.A0 {
		t.Errorf("registered method changed to %v", syn.Options.Method)
	}

	// The default config (cutover 0 → 32768) leaves a 64-value domain on
	// the exact path.
	s2, err := New(eng, specs, Config{Debounce: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	syn, err = s2.Snapshot().Synopsis("a")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(syn.Est.Name(), "APPROX") {
		t.Errorf("default cutover built %q on a small domain", syn.Est.Name())
	}
}
