package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rangeagg/internal/build"
	"rangeagg/internal/engine"
	"rangeagg/internal/plan"
)

// TestPlannerQueryPaths exercises the serving layer's budget routing:
// pinned-synopsis probes, escalation to the exact tables on a tight
// budget, and cache hits on repeats — with the bound covering the true
// residual throughout.
func TestPlannerQueryPaths(t *testing.T) {
	eng, s := newTestServer(t, 64, Config{})
	counts := make([]int64, 64)
	for i := range counts {
		counts[i] = int64(i % 9)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	exact := float64(s.Snapshot().ExactCount(5, 40))

	// Pinned synopsis, no budget: probe path with a rigorous bound
	// covering the residual.
	res, _ := s.QueryOne(Query{Synopsis: "h", A: 5, B: 40})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Path != plan.PathProbe || res.Source != "h" || !res.Rigorous {
		t.Fatalf("pinned query: %+v", res)
	}
	if resid := res.Value - exact; resid > res.Bound || -resid > res.Bound {
		t.Fatalf("bound %g does not cover residual %g", res.Bound, res.Value-exact)
	}

	// Repeat: cache hit, same answer.
	res2, _ := s.QueryOne(Query{Synopsis: "h", A: 5, B: 40})
	if res2.Path != plan.PathCache || res2.Value != res.Value || res2.Bound != res.Bound {
		t.Fatalf("repeat query: %+v (first %+v)", res2, res)
	}

	// Budget 0: must escalate to the exact tables.
	zero := 0.0
	res3, _ := s.QueryOne(Query{Synopsis: "h", A: 5, B: 40, MaxErr: &zero})
	if res3.Err != nil {
		t.Fatal(res3.Err)
	}
	if res3.Path != plan.PathExact || res3.Value != exact || res3.Bound != 0 {
		t.Fatalf("zero-budget query: %+v, want exact %g", res3, exact)
	}

	// Budget query without a pinned synopsis: the planner picks a path
	// for the metric and respects the budget.
	budget := 5.0
	res4, _ := s.QueryOne(Query{Metric: engine.Count, A: 5, B: 40, MaxErr: &budget})
	if res4.Err != nil {
		t.Fatal(res4.Err)
	}
	if res4.Bound > budget {
		t.Fatalf("bound %g exceeds budget %g", res4.Bound, budget)
	}
}

// TestRebuildStormNoStaleAnswers hammers the server with bulk loads
// (each bumping the data version) while queriers spam the same ranges
// through the caching planner. Every load adds one record per value, so
// after v loads each count is exactly v, and the NAIVE synopsis answers
// width·v exactly — so any cached answer leaking across snapshots shows
// up as a value disagreeing with the batch's own version. Run with
// -race this also shakes out cache/rebuild data races.
func TestRebuildStormNoStaleAnswers(t *testing.T) {
	eng, err := engine.New("storm", 64)
	if err != nil {
		t.Fatal(err)
	}
	specs := []engine.SynopsisSpec{
		{Name: "n", Metric: engine.Count, Options: build.Options{Method: build.Naive, BudgetWords: 4}},
	}
	s, err := New(eng, specs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		iters    = 150
		queriers = 4
	)
	ranges := [][2]int{{0, 63}, {5, 40}, {10, 10}, {0, 31}, {32, 63}}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, queriers)
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := make([]Query, len(ranges))
			for i, r := range ranges {
				qs[i] = Query{Synopsis: "n", A: r[0], B: r[1]}
			}
			for !stop.Load() {
				results, version := s.QueryBatch(qs)
				for i, res := range results {
					if res.Err != nil {
						errCh <- res.Err
						return
					}
					width := float64(ranges[i][1] - ranges[i][0] + 1)
					if want := width * float64(version); res.Value != want {
						errCh <- &staleAnswer{got: res.Value, want: want, version: version}
						return
					}
				}
			}
		}()
	}
	ones := make([]int64, 64)
	for i := range ones {
		ones[i] = 1
	}
	for k := 1; k <= iters; k++ {
		if err := eng.Load(ones); err != nil {
			t.Fatal(err)
		}
		if err := s.Rebuild(); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

type staleAnswer struct {
	got, want float64
	version   int64
}

func (e *staleAnswer) Error() string {
	return fmt.Sprintf("stale answer: got %g, want %g at version %d", e.got, e.want, e.version)
}

// TestZipfWorkloadHitRate checks the hot-range cache earns its keep on
// a skewed workload: a zipf-popular pool of ranges queried repeatedly
// against one snapshot must hit more than half the time.
func TestZipfWorkloadHitRate(t *testing.T) {
	eng, s := newTestServer(t, 256, Config{})
	counts := make([]int64, 256)
	for i := range counts {
		counts[i] = int64((i * 13) % 31)
	}
	if err := eng.Load(counts); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.4, 4, 63) // 64 distinct ranges, heavily skewed
	pool := make([][2]int, 64)
	for i := range pool {
		a := rng.Intn(200)
		pool[i] = [2]int{a, a + rng.Intn(55)}
	}
	before := s.CacheStats()
	const queries = 2000
	for i := 0; i < queries; i++ {
		r := pool[zipf.Uint64()]
		res, _ := s.QueryOne(Query{Synopsis: "h", A: r[0], B: r[1]})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := s.CacheStats()
	hits, misses := st.Hits-before.Hits, st.Misses-before.Misses
	if total := hits + misses; total < queries {
		t.Fatalf("expected at least %d lookups, saw %d", queries, total)
	}
	if rate := float64(hits) / float64(hits+misses); rate <= 0.5 {
		t.Fatalf("zipf workload hit rate %.3f, want > 0.5 (hits %d, misses %d)", rate, hits, misses)
	}
}

// TestServeTypedErrors checks the serving layer fails unknown-name
// lookups with the engine's typed error on every path.
func TestServeTypedErrors(t *testing.T) {
	eng, s := newTestServer(t, 64, Config{})
	if err := eng.Load(make([]int64, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()

	var use *engine.UnknownSynopsisError
	for name, err := range map[string]error{
		"Snapshot.Approx":   func() error { _, err := snap.Approx("ghost", 0, 1); return err }(),
		"Snapshot.Synopsis": func() error { _, err := snap.Synopsis("ghost"); return err }(),
		"Server.Query":      func() error { _, err := s.Query(Query{Synopsis: "ghost", A: 0, B: 1}); return err }(),
		"MergeSynopsis":     s.MergeSynopsis("ghost", nil),
	} {
		if !errors.As(err, &use) {
			t.Errorf("%s: error %v (%T) is not *engine.UnknownSynopsisError", name, err, err)
		} else if use.Name != "ghost" || use.Scope != "serve" {
			t.Errorf("%s: error fields %+v", name, use)
		}
	}
}

// TestQueryMaxErrJSON pins the /query?maxerr= JSON contract: the
// response carries value, err, rigorous, path, source and version; a
// model-less or invalid budget is rejected with a 400.
func TestQueryMaxErrJSON(t *testing.T) {
	_, _, ts := newTestHandler(t)

	// Generous budget: the pinned synopsis answers (probe) with a bound.
	resp := getJSON(t, ts.URL+"/query?syn=h&a=3&b=40&maxerr=100", http.StatusOK)
	for _, key := range []string{"value", "err", "rigorous", "path", "source", "version"} {
		if _, ok := resp[key]; !ok {
			t.Fatalf("response missing %q: %v", key, resp)
		}
	}
	if resp["path"] != "probe" || resp["source"] != "h" || resp["rigorous"] != true {
		t.Fatalf("budget-100 response: %v", resp)
	}
	if resp["err"].(float64) > 100 {
		t.Fatalf("bound %v exceeds budget", resp["err"])
	}

	// Zero budget: exact path, zero bound.
	resp = getJSON(t, ts.URL+"/query?syn=h&a=3&b=40&maxerr=0", http.StatusOK)
	if resp["path"] != "exact" || resp["err"].(float64) != 0 || resp["source"] != "exact" {
		t.Fatalf("zero-budget response: %v", resp)
	}

	// Negative and malformed budgets: 400.
	getJSON(t, ts.URL+"/query?syn=h&a=3&b=40&maxerr=-1", http.StatusBadRequest)
	getJSON(t, ts.URL+"/query?syn=h&a=3&b=40&maxerr=bogus", http.StatusBadRequest)

	// Batch with a budget: every answer carries its bound within it.
	raw := postJSONRaw(t, ts.URL+"/query/batch",
		`{"synopsis":"h","metric":"COUNT","ranges":[[0,10],[3,40],[60,63]],"maxerr":100}`, http.StatusOK)
	var batch struct {
		Values  []float64  `json:"values"`
		Errs    []*float64 `json:"errs"`
		Version int64      `json:"version"`
	}
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Values) != 3 || len(batch.Errs) != 3 {
		t.Fatalf("batch response: %s", raw)
	}
	for i, e := range batch.Errs {
		if e == nil {
			t.Fatalf("errs[%d] missing: %s", i, raw)
		}
		if *e > 100 {
			t.Fatalf("errs[%d] = %g exceeds budget", i, *e)
		}
	}

	// Batch with a bad budget: 400.
	postJSONRaw(t, ts.URL+"/query/batch",
		`{"synopsis":"h","metric":"COUNT","ranges":[[0,10]],"maxerr":-3}`, http.StatusBadRequest)
}

func postJSONRaw(t *testing.T, url, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, raw)
	}
	return raw
}
