package segment

import (
	"fmt"

	"rangeagg/internal/dp"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
)

// Allocator tuning. The curves exist only to rank marginal gains, so
// they are computed at bounded resolution: a segment wider than
// curveCells is pre-aggregated to curveCells equal-width cells first
// (the advisor's coarsen trick), and no segment's curve extends past
// maxCurveUnits buckets. Both caps are independent of the budget, which
// keeps the greedy allocation monotone in W (a bigger budget replays
// the same gain sequences further, it never reorders them).
const (
	curveCells    = 512
	maxCurveUnits = 128
)

// Plan is a budget allocation across one segment partition: Units[i]
// buckets for the segment starting at Starts[i], every entry ≥ 1.
type Plan struct {
	Starts []int
	Units  []int
}

// TotalUnits sums the allocated buckets.
func (p *Plan) TotalUnits() int {
	t := 0
	for _, u := range p.Units {
		t += u
	}
	return t
}

// curveFor computes the error-vs-space curve of one segment: curve[u] =
// (coarsened) optimal A0 cost of summarizing counts[lo..hi] with u
// buckets, non-increasing in u (running minimum applied). The A0 fused
// cost is the same range-SSE surrogate the advisor's sweep and the
// approximate builder optimize, so the allocator ranks segments on the
// axis the per-segment builds will actually minimize.
func curveFor(counts []int64, lo, hi int) ([]float64, error) {
	width := hi - lo + 1
	series := counts[lo : hi+1]
	if width > curveCells {
		coarse := make([]int64, curveCells)
		for c := 0; c < curveCells; c++ {
			a, b := c*width/curveCells, (c+1)*width/curveCells
			var s int64
			for j := a; j < b; j++ {
				s += series[j]
			}
			coarse[c] = s
		}
		series = coarse
		width = curveCells
	}
	maxB := maxCurveUnits
	if maxB > width {
		maxB = width
	}
	tab := prefix.NewTable(series)
	curve, err := dp.SolveCurve(width, maxB, dp.FusedA0Cost(tab))
	if err != nil {
		return nil, err
	}
	// Force monotone non-increasing: adding a bucket can only help the
	// true objective, but per-layer DP optima need not be monotone for
	// the fused surrogate. Running min keeps every marginal gain ≥ 0.
	for u := 2; u < len(curve); u++ {
		if curve[u] > curve[u-1] {
			curve[u] = curve[u-1]
		}
	}
	return curve, nil
}

// Allocate distributes totalUnits buckets across the segments of the
// partition by greedy marginal gain: every segment gets one bucket,
// then each remaining bucket goes to the segment whose curve drops the
// most for it (ΔSSE per added bucket; every bucket costs the same two
// words, so per-bucket and per-word ranking coincide). Ties break to
// the lowest segment index, making the allocation deterministic and —
// because the curves do not depend on the budget — monotone in
// totalUnits: growing the budget never shrinks any segment's share.
// Per-segment curves are computed concurrently on the shared pool.
func Allocate(counts []int64, starts []int, totalUnits int) (*Plan, error) {
	if err := validStarts(len(counts), starts); err != nil {
		return nil, err
	}
	k := len(starts)
	if totalUnits < k {
		return nil, fmt.Errorf("segment: %d units cannot cover %d segments (one bucket each minimum)", totalUnits, k)
	}
	curves := make([][]float64, k)
	errs := make([]error, k)
	parallel.ForEach(k, func(i int) {
		lo, hi := segBounds(len(counts), starts, i)
		curves[i], errs[i] = curveFor(counts, lo, hi)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("segment: allocation curve for segment %d: %w", i, err)
		}
	}
	units := make([]int, k)
	for i := range units {
		units[i] = 1
	}
	for remaining := totalUnits - k; remaining > 0; remaining-- {
		best, bestGain := -1, -1.0
		for i := 0; i < k; i++ {
			u := units[i]
			if u+1 >= len(curves[i]) {
				continue // segment at its curve cap (or at one bucket per value)
			}
			if gain := curves[i][u] - curves[i][u+1]; gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break // every segment saturated; leave the rest of the budget unused
		}
		units[best]++
	}
	return &Plan{Starts: append([]int(nil), starts...), Units: units}, nil
}
