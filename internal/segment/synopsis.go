package segment

import (
	"fmt"
	"sort"

	"rangeagg/internal/histogram"
)

// Segmented is the composed synopsis: one average-representation
// histogram per contiguous segment, each built over the segment's own
// sub-domain. Its cumulative curve is the running composition of the
// per-segment curves, so Estimate answers every range — including
// ranges spanning segment edges — as a difference of two cumulative
// reads, exactly like a monolithic prefix-decomposable histogram.
//
// Storage accounting: one word per segment start plus each segment's
// own histogram words.
type Segmented struct {
	// Domain is the full attribute-domain size.
	Domain int
	// Starts are the segment start positions (ascending, first 0).
	Starts []int
	// Segs holds the per-segment estimators; Segs[i].N() is segment i's
	// width. All answer unrounded (RoundNone) so composition is exact.
	Segs []*histogram.Avg
	// Label names the construction, e.g. "SEGMENTED(8,equi-width)".
	Label string

	// prefTotals[i] = Ĉ at segment i's start: the sum of every earlier
	// segment's full cumulative estimate. Cached so CumEstimate is one
	// segment lookup plus one inner read.
	prefTotals []float64
}

// New assembles a segmented synopsis, validating that the segments tile
// the domain and every inner histogram answers unrounded.
func New(domain int, starts []int, segs []*histogram.Avg, label string) (*Segmented, error) {
	if err := validStarts(domain, starts); err != nil {
		return nil, err
	}
	if len(segs) != len(starts) {
		return nil, fmt.Errorf("segment: %d estimators for %d segments", len(segs), len(starts))
	}
	for i, seg := range segs {
		lo, hi := segBounds(domain, starts, i)
		if seg == nil {
			return nil, fmt.Errorf("segment: segment %d has no estimator", i)
		}
		if seg.N() != hi-lo+1 {
			return nil, fmt.Errorf("segment: segment %d estimator spans %d values, want %d", i, seg.N(), hi-lo+1)
		}
		if seg.Mode != histogram.RoundNone {
			return nil, fmt.Errorf("segment: segment %d answers rounded; composition requires unrounded answering", i)
		}
	}
	s := &Segmented{Domain: domain, Starts: starts, Segs: segs, Label: label}
	s.rebuildPrefTotals()
	return s, nil
}

func (s *Segmented) rebuildPrefTotals() {
	s.prefTotals = make([]float64, len(s.Segs)+1)
	for i, seg := range s.Segs {
		s.prefTotals[i+1] = s.prefTotals[i] + seg.CumEstimate(seg.N())
	}
}

// N returns the domain size.
func (s *Segmented) N() int { return s.Domain }

// Name identifies the construction.
func (s *Segmented) Name() string { return s.Label }

// StorageWords is one word per segment start plus the per-segment
// histogram words.
func (s *Segmented) StorageWords() int {
	w := len(s.Starts)
	for _, seg := range s.Segs {
		w += seg.StorageWords()
	}
	return w
}

// SegmentCount returns the number of segments.
func (s *Segmented) SegmentCount() int { return len(s.Starts) }

// SegmentBounds returns the inclusive range [lo,hi] of segment i.
func (s *Segmented) SegmentBounds(i int) (lo, hi int) {
	return segBounds(s.Domain, s.Starts, i)
}

// Find returns the index of the segment containing position pos.
func (s *Segmented) Find(pos int) int {
	if pos < 0 || pos >= s.Domain {
		panic(fmt.Sprintf("segment: position %d outside domain n=%d", pos, s.Domain))
	}
	i := sort.Search(len(s.Starts), func(k int) bool { return s.Starts[k] > pos })
	return i - 1
}

// CumEstimate returns the composed cumulative estimate Ĉ[t] for
// t ∈ [0,n]: the cached total of every segment before the one holding
// position t−1, plus that segment's own cumulative read. Ĉ[0] = 0.
func (s *Segmented) CumEstimate(t int) float64 {
	if t < 0 || t > s.Domain {
		panic(fmt.Sprintf("segment: cumulative position %d outside [0,%d]", t, s.Domain))
	}
	if t == 0 {
		return 0
	}
	i := s.Find(t - 1)
	return s.prefTotals[i] + s.Segs[i].CumEstimate(t-s.Starts[i])
}

// Estimate answers the inclusive range [a,b] as the difference of two
// composed cumulative reads — the same evaluation for intra-segment and
// edge-spanning ranges, so covered segments compose with exact edge
// handling (no per-segment summation whose association could drift).
func (s *Segmented) Estimate(a, b int) float64 {
	if a < 0 || b >= s.Domain || a > b {
		panic(fmt.Sprintf("segment: invalid range [%d,%d] for n=%d", a, b, s.Domain))
	}
	return s.CumEstimate(b+1) - s.CumEstimate(a)
}

// Merge combines two segmented synopses built over the same domain and
// the same partition from disjoint record sets: each segment pair
// merges exactly (histogram.MergeAvg), so for every range
// estimate_merged = estimate_a + estimate_b. Shards must agree on the
// partition — guaranteed for the equi-width policy; weight-balanced
// shards must be split by one coordinator.
func Merge(a, b *Segmented) (*Segmented, error) {
	if a.Domain != b.Domain {
		return nil, fmt.Errorf("segment: merge over different domains %d vs %d", a.Domain, b.Domain)
	}
	if len(a.Starts) != len(b.Starts) {
		return nil, fmt.Errorf("segment: merge over different partitions (%d vs %d segments)", len(a.Starts), len(b.Starts))
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			return nil, fmt.Errorf("segment: merge over different partitions (segment %d starts at %d vs %d)",
				i, a.Starts[i], b.Starts[i])
		}
	}
	segs := make([]*histogram.Avg, len(a.Segs))
	for i := range segs {
		m, err := histogram.MergeAvg(a.Segs[i], b.Segs[i])
		if err != nil {
			return nil, fmt.Errorf("segment: merging segment %d: %w", i, err)
		}
		segs[i] = m
	}
	return New(a.Domain, append([]int(nil), a.Starts...), segs, a.Label+"+"+b.Label)
}
