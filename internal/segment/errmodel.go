package segment

import (
	"math"

	"rangeagg/internal/prefix"
)

// The error model is the prefix-error identity organized per segment:
// err(a,b) = e[b+1] − e[a] with e[t] = P[t] − Ĉ[t], where Ĉ is the
// Segmented synopsis's composed cumulative curve — so the bound is as
// tight as the monolithic cumulative model, while the min/max cells are
// kept per segment and never straddle a segment edge. A query endpoint
// on a boundary reads the cells of exactly the segment whose histogram
// evaluates it (the same ownership CumEstimate uses), which is the
// "exact edge handling" the planner's composition relies on: the error
// regime of one segment can never bleed into a neighbour's cells.

// maxModelCells caps the total cell count across all segments; each
// segment gets an equal share, at least one cell, at most one cell per
// owned position.
const maxModelCells = 4096

// segCells holds the per-cell min/max of e over one segment's owned
// positions [base, base+span).
type segCells struct {
	base, span, cells int
	min, max          []float64
}

func newSegCells(base, span, cells int) *segCells {
	if cells > span {
		cells = span
	}
	if cells < 1 {
		cells = 1
	}
	s := &segCells{base: base, span: span, cells: cells,
		min: make([]float64, cells), max: make([]float64, cells)}
	for i := range s.min {
		s.min[i] = math.Inf(1)
		s.max[i] = math.Inf(-1)
	}
	return s
}

func (s *segCells) add(t int, v float64) {
	c := (t - s.base) * s.cells / s.span
	if v < s.min[c] {
		s.min[c] = v
	}
	if v > s.max[c] {
		s.max[c] = v
	}
}

func (s *segCells) at(t int) (lo, hi float64) {
	c := (t - s.base) * s.cells / s.span
	return s.min[c], s.max[c]
}

// ErrModel bounds the per-range error of a Segmented synopsis against
// the data it was built from. It satisfies method.ErrorModel.
type ErrModel struct {
	syn    *Segmented
	segs   []*segCells
	lo, hi float64 // global min/max of e
	slack  float64
}

// NewErrorModel walks the cumulative errors e[t] = P[t] − Ĉ[t] once and
// files each position under the segment that evaluates it: position 0
// under segment 0, position t ≥ 1 under the segment containing value
// t−1. tab must be the prefix table of the series the synopsis was
// built from.
func NewErrorModel(tab *prefix.Table, s *Segmented) *ErrModel {
	n := tab.N()
	k := len(s.Starts)
	perSeg := maxModelCells / k
	if perSeg < 1 {
		perSeg = 1
	}
	m := &ErrModel{syn: s, segs: make([]*segCells, k), lo: math.Inf(1), hi: math.Inf(-1)}
	for i := range m.segs {
		lo, hi := segBounds(n, s.Starts, i)
		base, span := lo+1, hi-lo+1 // owns positions lo+1 .. hi+1
		if i == 0 {
			base, span = 0, span+1 // segment 0 additionally owns position 0
		}
		m.segs[i] = newSegCells(base, span, perSeg)
	}
	maxAbs := 0.0
	for t := 0; t <= n; t++ {
		e := tab.P[t] - s.CumEstimate(t)
		m.segs[m.owner(t)].add(t, e)
		if e < m.lo {
			m.lo = e
		}
		if e > m.hi {
			m.hi = e
		}
		if a := math.Abs(e); a > maxAbs {
			maxAbs = a
		}
	}
	m.slack = 1e-9 * (4 + 4*maxAbs)
	return m
}

// owner maps position t ∈ [0,n] to the segment whose cells hold it.
func (m *ErrModel) owner(t int) int {
	if t == 0 {
		return 0
	}
	return m.syn.Find(t - 1)
}

func (m *ErrModel) at(t int) (lo, hi float64) {
	return m.segs[m.owner(t)].at(t)
}

// Bound returns an upper bound on |exact − Estimate(a,b)|: the true
// error lies in the interval difference of the two endpoint cells.
func (m *ErrModel) Bound(a, b int) float64 {
	loA, hiA := m.at(a)
	loB, hiB := m.at(b + 1)
	return math.Max(math.Abs(loB-hiA), math.Abs(hiB-loA)) + m.slack
}

// Rigorous reports that Bound is a guarantee (up to fp slack).
func (m *ErrModel) Rigorous() bool { return true }

// MaxBound bounds Bound over every range by the global spread of e.
func (m *ErrModel) MaxBound() float64 { return (m.hi - m.lo) + m.slack }

// SegmentMaxBound bounds the error of any range fully inside segment i
// — the per-segment view the planner's composition walks (a range
// confined to one segment can never see another segment's error
// spread).
func (m *ErrModel) SegmentMaxBound(i int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	s := m.segs[i]
	for c := 0; c < s.cells; c++ {
		if s.min[c] < lo {
			lo = s.min[c]
		}
		if s.max[c] > hi {
			hi = s.max[c]
		}
	}
	if i > 0 {
		// A range inside segment i can anchor its left endpoint on the
		// boundary position owned by segment i−1.
		plo, phi := m.segs[i-1].at(s.base - 1)
		if plo < lo {
			lo = plo
		}
		if phi > hi {
			hi = phi
		}
	}
	return (hi - lo) + m.slack
}
