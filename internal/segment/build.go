package segment

import (
	"fmt"

	"rangeagg/internal/approx"
	"rangeagg/internal/dp"
	"rangeagg/internal/histogram"
	"rangeagg/internal/obs"
	"rangeagg/internal/parallel"
	"rangeagg/internal/prefix"
)

// innerExactCutover is the segment width above which the per-segment
// build switches from the exact layer DP to the (1+eps)-approximate
// partitioner. Segments at or below it are cheap enough for the
// optimal table; above it the exact DP's quadratic layer cost
// dominates the whole build.
const innerExactCutover = 2048

// defaultEpsilon is the approximation slack used for wide segments when
// the caller does not pin one.
const defaultEpsilon = 0.1

// DefaultSegments is the segment count used when the caller does not
// request one.
const DefaultSegments = 8

// BuildOpts selects the partition and budget of one segmented build.
type BuildOpts struct {
	// K is the requested segment count; 0 means DefaultSegments. The
	// effective count is clamped so every segment can afford at least
	// one bucket out of BudgetWords.
	K int
	// Policy selects the partitioner.
	Policy Policy
	// BudgetWords is the global storage budget W shared by the whole
	// synopsis: segment starts plus all per-segment bucket words.
	BudgetWords int
	// Epsilon is the approximation slack for segments wider than the
	// exact-DP cutover; values outside (0,1) select the default.
	Epsilon float64
}

// Stats reports how much of a rebuild was real work.
type Stats struct {
	// Rebuilt counts segments whose histogram was reconstructed.
	Rebuilt int
	// Reused counts segments carried over verbatim.
	Reused int
}

func effectiveEpsilon(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		return defaultEpsilon
	}
	return eps
}

// clampK bounds the segment count so the budget is structurally
// feasible: K starts-words plus two words per bucket with at least one
// bucket per segment needs W ≥ 3K, so K ≤ W/3 guarantees the unit pool
// (W−K)/2 covers the per-segment minimum.
func clampK(k, n, w int) int {
	if k <= 0 {
		k = DefaultSegments
	}
	if k > n {
		k = n
	}
	if cap := w / 3; k > cap {
		k = cap
	}
	if k < 1 {
		k = 1
	}
	return k
}

// buildSeg summarizes one segment's sub-series with b buckets: the
// exact layer DP up to innerExactCutover values, the (1+eps)
// partitioner above. Inner histograms always answer unrounded —
// composition and the error model need the raw cumulative curve.
func buildSeg(counts []int64, lo, hi, b int, eps float64) (*histogram.Avg, error) {
	sub := prefix.NewTable(counts[lo : hi+1])
	if hi-lo+1 <= innerExactCutover {
		return dp.A0(sub, b, histogram.RoundNone)
	}
	return approx.A0(sub, b, eps, histogram.RoundNone)
}

// Build constructs a segmented synopsis over tab/counts: split the
// domain under the policy, distribute the word budget across segments
// by marginal gain, then build every segment concurrently on the shared
// pool. counts must be the series tab was built from.
func Build(tab *prefix.Table, counts []int64, o BuildOpts) (*Segmented, error) {
	n := tab.N()
	if n != len(counts) {
		return nil, fmt.Errorf("segment: prefix table spans %d values, counts %d", n, len(counts))
	}
	if o.BudgetWords < 3 {
		return nil, fmt.Errorf("segment: budget %d words cannot hold one segment (start + one bucket needs 3)", o.BudgetWords)
	}
	k := clampK(o.K, n, o.BudgetWords)
	starts, err := Split(tab, k, o.Policy)
	if err != nil {
		return nil, err
	}
	// Split may return fewer segments than requested; the unit pool only
	// grows from that.
	totalUnits := (o.BudgetWords - len(starts)) / 2
	plan, err := Allocate(counts, starts, totalUnits)
	if err != nil {
		return nil, err
	}
	eps := effectiveEpsilon(o.Epsilon)
	segs := make([]*histogram.Avg, len(starts))
	errs := make([]error, len(starts))
	parallel.ForEach(len(starts), func(i int) {
		lo, hi := segBounds(n, starts, i)
		segs[i], errs[i] = buildSeg(counts, lo, hi, plan.Units[i], eps)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("segment: building segment %d: %w", i, err)
		}
	}
	label := fmt.Sprintf("SEGMENTED(%d,%s)", len(starts), o.Policy)
	return New(n, starts, segs, label)
}

// Rebuild refreshes a segmented synopsis after mutations confined to
// the value window [lo,hi]: segments intersecting the window are
// reconstructed from the current counts with their previous bucket
// allocation, every other segment's histogram is carried over verbatim.
// The partition and per-segment budgets are preserved — a rebuild
// answers "the data changed here", not "re-plan the layout"; a full
// Build re-splits and re-allocates.
func Rebuild(counts []int64, prev *Segmented, lo, hi int, eps float64) (*Segmented, Stats, error) {
	var st Stats
	if prev == nil {
		return nil, st, fmt.Errorf("segment: rebuild requires a previous synopsis")
	}
	n := prev.Domain
	if len(counts) != n {
		return nil, st, fmt.Errorf("segment: rebuild counts span %d values, synopsis %d", len(counts), n)
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if lo > hi {
		return nil, st, fmt.Errorf("segment: empty rebuild window [%d,%d]", lo, hi)
	}
	eps = effectiveEpsilon(eps)
	first, last := prev.Find(lo), prev.Find(hi)
	segs := make([]*histogram.Avg, len(prev.Segs))
	errs := make([]error, len(prev.Segs))
	parallel.ForEach(len(prev.Segs), func(i int) {
		if i < first || i > last {
			segs[i] = prev.Segs[i]
			return
		}
		sLo, sHi := segBounds(n, prev.Starts, i)
		segs[i], errs[i] = buildSeg(counts, sLo, sHi, prev.Segs[i].Buckets.NumBuckets(), eps)
	})
	for i, err := range errs {
		if err != nil {
			return nil, st, fmt.Errorf("segment: rebuilding segment %d: %w", i, err)
		}
	}
	st.Rebuilt = last - first + 1
	st.Reused = len(prev.Segs) - st.Rebuilt
	obs.Default.Counter("rangeagg_segment_rebuilt_total").Add(int64(st.Rebuilt))
	obs.Default.Counter("rangeagg_segment_reused_total").Add(int64(st.Reused))
	next, err := New(n, append([]int(nil), prev.Starts...), segs, prev.Label)
	if err != nil {
		return nil, st, err
	}
	return next, st, nil
}
