package segment

import (
	"math"
	"math/rand"
	"testing"

	"rangeagg/internal/prefix"
)

// zipfish builds a deterministic skewed series: heavy head, long tail,
// a few spikes — enough structure that weight-balanced splits and the
// allocator have something to react to.
func zipfish(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int64, n)
	for i := range counts {
		counts[i] = int64(float64(400) / math.Pow(float64(i+1), 1.2))
		if rng.Intn(16) == 0 {
			counts[i] += int64(rng.Intn(200))
		}
	}
	return counts
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"", EquiWidth},
		{"equi-width", EquiWidth},
		{"weight-balanced", WeightBalanced},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if c.in != "" && got.String() != c.in {
			t.Errorf("Policy(%v).String() = %q, want %q", got, got.String(), c.in)
		}
	}
	if _, err := ParsePolicy("fancy"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

func TestSplitPolicies(t *testing.T) {
	const n, k = 64, 8
	counts := zipfish(n, 3)
	tab := prefix.NewTable(counts)

	ew, err := Split(tab, k, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ew {
		if want := i * n / k; s != want {
			t.Errorf("equi-width start[%d] = %d, want %d", i, s, want)
		}
	}

	wb, err := Split(tab, k, WeightBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if err := validStarts(n, wb); err != nil {
		t.Fatalf("weight-balanced starts invalid: %v", err)
	}
	// Skewed data concentrates mass at the head, so the weight-balanced
	// partition must cut the head finer than equal width would.
	if len(wb) > 2 && wb[1] >= n/k {
		t.Errorf("weight-balanced first boundary %d not finer than equi-width %d on skewed data", wb[1], n/k)
	}
}

func TestAllocateSanityAndMonotone(t *testing.T) {
	const n, k = 256, 4
	counts := zipfish(n, 5)
	tab := prefix.NewTable(counts)
	starts, err := Split(tab, k, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Allocate(counts, starts, len(starts)-1); err == nil {
		t.Error("Allocate accepted a unit pool smaller than the segment count")
	}

	prevUnits := make([]int, len(starts))
	for _, total := range []int{4, 8, 16, 32, 64} {
		pl, err := Allocate(counts, starts, total)
		if err != nil {
			t.Fatal(err)
		}
		if got := pl.TotalUnits(); got > total {
			t.Errorf("total=%d: allocated %d units over budget", total, got)
		}
		for i, u := range pl.Units {
			if u < 1 {
				t.Errorf("total=%d: segment %d allocated %d units (< 1)", total, i, u)
			}
			// Budget-independent curves make the greedy allocation
			// monotone: growing the pool never shrinks any segment.
			if u < prevUnits[i] {
				t.Errorf("total=%d: segment %d shrank from %d to %d units", total, i, prevUnits[i], u)
			}
		}
		copy(prevUnits, pl.Units)
	}
}

func TestBuildBudgetAndComposition(t *testing.T) {
	const n, w = 512, 40
	counts := zipfish(n, 7)
	tab := prefix.NewTable(counts)

	for _, p := range []Policy{EquiWidth, WeightBalanced} {
		s, err := Build(tab, counts, BuildOpts{K: 8, Policy: p, BudgetWords: w})
		if err != nil {
			t.Fatal(err)
		}
		if s.StorageWords() > w {
			t.Errorf("%v: storage %d words over budget %d", p, s.StorageWords(), w)
		}
		if s.N() != n {
			t.Errorf("%v: N() = %d, want %d", p, s.N(), n)
		}
		// Per-segment answers must compose: the full-domain estimate is
		// exactly the sum of the per-segment estimates (the cumulative
		// curve is a running composition, so this is an identity).
		var sum float64
		for i := 0; i < s.SegmentCount(); i++ {
			lo, hi := s.SegmentBounds(i)
			if s.Find(lo) != i || s.Find(hi) != i {
				t.Fatalf("%v: Find does not invert SegmentBounds(%d)", p, i)
			}
			sum += s.Estimate(lo, hi)
		}
		if full := s.Estimate(0, n-1); math.Abs(full-sum) > 1e-6*(1+math.Abs(full)) {
			t.Errorf("%v: full-range estimate %g != per-segment sum %g", p, full, sum)
		}
	}

	if _, err := Build(tab, counts, BuildOpts{BudgetWords: 2}); err == nil {
		t.Error("Build accepted a budget below the one-segment minimum")
	}
	if _, err := Build(tab, counts[:n-1], BuildOpts{BudgetWords: 20}); err == nil {
		t.Error("Build accepted a counts slice shorter than the prefix table")
	}
}

func TestErrorModelCoverage(t *testing.T) {
	const n, w = 96, 24
	counts := zipfish(n, 9)
	tab := prefix.NewTable(counts)
	s, err := Build(tab, counts, BuildOpts{K: 4, BudgetWords: w})
	if err != nil {
		t.Fatal(err)
	}
	m := NewErrorModel(tab, s)
	if !m.Rigorous() {
		t.Fatal("segmented error model must be rigorous")
	}
	maxB := m.MaxBound()
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			exact := float64(tab.Sum(a, b))
			bound := m.Bound(a, b)
			if errAbs := math.Abs(s.Estimate(a, b) - exact); errAbs > bound {
				t.Fatalf("range [%d,%d]: |err| %g exceeds bound %g", a, b, errAbs, bound)
			}
			if bound > maxB+1e-9 {
				t.Fatalf("range [%d,%d]: bound %g exceeds MaxBound %g", a, b, bound, maxB)
			}
		}
	}
	// Ranges confined to one segment stay under that segment's bound.
	for i := 0; i < s.SegmentCount(); i++ {
		lo, hi := s.SegmentBounds(i)
		segB := m.SegmentMaxBound(i)
		if segB > maxB+1e-9 {
			t.Errorf("segment %d: SegmentMaxBound %g exceeds MaxBound %g", i, segB, maxB)
		}
		for a := lo; a <= hi; a++ {
			for b := a; b <= hi; b++ {
				if bound := m.Bound(a, b); bound > segB+1e-9 {
					t.Fatalf("segment %d range [%d,%d]: bound %g exceeds SegmentMaxBound %g", i, a, b, bound, segB)
				}
			}
		}
	}
}

func TestRebuildWindow(t *testing.T) {
	const n, w = 512, 40
	counts := zipfish(n, 11)
	tab := prefix.NewTable(counts)
	prev, err := Build(tab, counts, BuildOpts{K: 8, BudgetWords: w})
	if err != nil {
		t.Fatal(err)
	}

	// Mutate a single value; only its owning segment should rebuild.
	mut := append([]int64(nil), counts...)
	mut[100] += 500
	next, st, err := Rebuild(mut, prev, 100, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirty := prev.Find(100)
	if st.Rebuilt != 1 || st.Reused != prev.SegmentCount()-1 {
		t.Errorf("stats = %+v, want 1 rebuilt / %d reused", st, prev.SegmentCount()-1)
	}
	for i := range next.Segs {
		if i == dirty {
			if next.Segs[i] == prev.Segs[i] {
				t.Errorf("dirty segment %d was not rebuilt", i)
			}
		} else if next.Segs[i] != prev.Segs[i] {
			t.Errorf("clean segment %d was not carried over verbatim", i)
		}
	}
	// The refreshed synopsis must be a valid summary of the new data:
	// its error model over the new counts still covers every range.
	mtab := prefix.NewTable(mut)
	m := NewErrorModel(mtab, next)
	for _, q := range [][2]int{{0, n - 1}, {100, 100}, {90, 110}, {0, 100}, {100, n - 1}} {
		exact := float64(mtab.Sum(q[0], q[1]))
		if errAbs := math.Abs(next.Estimate(q[0], q[1]) - exact); errAbs > m.Bound(q[0], q[1]) {
			t.Errorf("range %v: |err| %g exceeds bound %g after rebuild", q, errAbs, m.Bound(q[0], q[1]))
		}
	}

	// A full-window rebuild reconstructs every segment and, on unchanged
	// data, reproduces the previous answers exactly (the inner builds
	// are deterministic).
	all, st, err := Rebuild(counts, prev, 0, n-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != prev.SegmentCount() || st.Reused != 0 {
		t.Errorf("full-window stats = %+v", st)
	}
	for _, q := range [][2]int{{0, n - 1}, {13, 77}, {200, 501}} {
		if got, want := all.Estimate(q[0], q[1]), prev.Estimate(q[0], q[1]); got != want {
			t.Errorf("range %v: full-window rebuild answers %g, original %g", q, got, want)
		}
	}

	if _, _, err := Rebuild(mut, nil, 0, 0, 0); err == nil {
		t.Error("Rebuild accepted a nil previous synopsis")
	}
	if _, _, err := Rebuild(mut[:n-1], prev, 0, 0, 0); err == nil {
		t.Error("Rebuild accepted a counts slice of the wrong length")
	}
	if _, _, err := Rebuild(mut, prev, 10, 5, 0); err == nil {
		t.Error("Rebuild accepted an empty window")
	}
}

func TestMergeAdditivity(t *testing.T) {
	const n, w = 256, 32
	a := zipfish(n, 13)
	b := zipfish(n, 17)
	ta, tb := prefix.NewTable(a), prefix.NewTable(b)

	// Equi-width shards over the same domain agree on the partition.
	sa, err := Build(ta, a, BuildOpts{K: 4, BudgetWords: w})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Build(tb, b, BuildOpts{K: 4, BudgetWords: w})
	if err != nil {
		t.Fatal(err)
	}
	// Merge needs identical partitions and bucketings; a shard built
	// against the coordinator's layout (full-window rebuild of sa's
	// structure over b's data) always qualifies.
	sb2, _, err := Rebuild(b, sa, 0, n-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(sa, sb2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]int{{0, n - 1}, {0, 0}, {60, 70}, {63, 64}, {10, 200}} {
		want := sa.Estimate(q[0], q[1]) + sb2.Estimate(q[0], q[1])
		if got := merged.Estimate(q[0], q[1]); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("range %v: merged %g, want sum %g", q, got, want)
		}
	}

	if _, err := Merge(sa, sb); err == nil {
		// sa and sb have the same partition but independently allocated
		// bucketings; only identical bucketings merge. If allocation
		// happened to coincide this merge succeeds — tolerate that.
		t.Log("independent builds happened to share a bucketing")
	}
	wb, err := Build(tb, b, BuildOpts{K: 3, Policy: WeightBalanced, BudgetWords: w})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(sa, wb); err == nil {
		t.Error("Merge accepted shards with different partitions")
	}
}

func TestClampK(t *testing.T) {
	cases := []struct{ k, n, w, want int }{
		{0, 1 << 20, 100, 8},   // default
		{8, 4, 100, 4},         // at most one segment per value
		{8, 1 << 20, 9, 3},     // W/3 feasibility cap
		{8, 1 << 20, 2, 1},     // never below one
		{16, 1 << 20, 300, 16}, // explicit request honored
	}
	for _, c := range cases {
		if got := clampK(c.k, c.n, c.w); got != c.want {
			t.Errorf("clampK(%d,%d,%d) = %d, want %d", c.k, c.n, c.w, got, c.want)
		}
	}
}
