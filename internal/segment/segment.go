// Package segment is the segmented-synopsis core: it partitions the
// attribute domain into K contiguous segments (the Storyboard
// composition the ROADMAP's production-scale mode needs), summarizes
// each segment independently on the shared worker pool, and distributes
// one global word budget across the segments by greedy marginal ΔSSE
// per word, read off the layer DP's error-vs-space curves. The
// resulting Segmented estimator is prefix-decomposable — its cumulative
// curve is the running composition of the per-segment curves — so range
// answers compose across segment edges exactly and the prefix-error
// identity yields a rigorous per-range error model organized per
// segment.
//
// The package is representation-level only (like internal/histogram):
// it knows nothing about the method registry. internal/method wires it
// in as the SEGMENTED family; engine and serve reach it exclusively
// through registry hooks.
package segment

import (
	"fmt"

	"rangeagg/internal/histogram"
	"rangeagg/internal/prefix"
)

// Policy selects how the domain is split into segments.
type Policy int

const (
	// EquiWidth splits the domain into K near-equal-width segments —
	// data-independent boundaries, so shards built over the same domain
	// always agree on the partition (the mergeable deployment).
	EquiWidth Policy = iota
	// WeightBalanced places segment boundaries at the quantiles of the
	// data mass, so each segment summarizes roughly Total/K records —
	// finer segments where the mass concentrates.
	WeightBalanced
)

// String names the policy as ParsePolicy accepts it.
func (p Policy) String() string {
	if p == WeightBalanced {
		return "weight-balanced"
	}
	return "equi-width"
}

// ParsePolicy resolves a policy name; the empty string selects the
// default (equi-width).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "equi-width":
		return EquiWidth, nil
	case "weight-balanced":
		return WeightBalanced, nil
	}
	return 0, fmt.Errorf("segment: unknown partition policy %q (want equi-width or weight-balanced)", s)
}

// Split partitions [0,n) into at most k contiguous segments under the
// policy and returns the segment start positions (ascending, first 0).
// Fewer than k segments come back when the domain is too small or the
// mass too concentrated for distinct boundaries.
func Split(tab *prefix.Table, k int, p Policy) ([]int, error) {
	if k <= 0 {
		return nil, fmt.Errorf("segment: need a positive segment count, got %d", k)
	}
	var bk *histogram.Bucketing
	var err error
	switch p {
	case WeightBalanced:
		bk, err = histogram.EquiDepth(tab, k)
	default:
		bk, err = histogram.EquiWidth(tab.N(), k)
	}
	if err != nil {
		return nil, err
	}
	starts := make([]int, len(bk.Starts))
	copy(starts, bk.Starts)
	return starts, nil
}

// validStarts checks the structural invariants of a segment-start slice
// over domain n.
func validStarts(n int, starts []int) error {
	bk := &histogram.Bucketing{N: n, Starts: starts}
	if err := bk.Validate(); err != nil {
		return fmt.Errorf("segment: invalid segment starts: %w", err)
	}
	return nil
}

// segBounds returns the inclusive range [lo,hi] of segment i of the
// partition.
func segBounds(n int, starts []int, i int) (lo, hi int) {
	lo = starts[i]
	if i+1 < len(starts) {
		hi = starts[i+1] - 1
	} else {
		hi = n - 1
	}
	return lo, hi
}
